// Quickstart: stand up a secure memory system with the paper's preferred
// configuration (split counters + GCM authentication over a Merkle tree),
// write and read real data through it, and look at what the protection
// machinery did.
package main

import (
	"fmt"
	"log"

	"secmem/internal/cache"
	"secmem/internal/config"
	"secmem/internal/core"
)

func main() {
	// The paper's machine (Section 5), shrunk to a 4 MB protected space so
	// the functional (real-crypto) mode stays instant.
	cfg := config.Default()
	cfg.MemBytes = 4 << 20
	cfg.L2 = cache.Config{Name: "L2", SizeBytes: 64 << 10, Ways: 8, BlockBytes: 64, LatencyCycles: 10}
	cfg.CounterCache = cache.Config{Name: "SNC", SizeBytes: 8 << 10, Ways: 8, BlockBytes: 64, LatencyCycles: 2}
	cfg.Functional = true // move real bytes, compute real AES/GHASH

	mem, err := core.NewMemSystem(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("secure memory: %s, %s requirement, %d-bit MACs, %d-level Merkle tree\n\n",
		cfg.SchemeName(), cfg.Req, cfg.MACBits, mem.Controller().Layout().Geo.NumLevels())

	// Write a secret, then read it back through the full path.
	secret := []byte("attack at dawn — memo 7, eyes only")
	done, err := mem.WriteBytes(0, 0x1000, secret)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("write of %d bytes complete at cycle %d\n", len(secret), done)

	// Push everything off-chip: the data now lives in DRAM only as
	// AES-counter-mode ciphertext with a GCM MAC in the tree.
	mem.Drain(done)
	var ct [64]byte
	mem.Controller().DRAM().ReadBlock(0x1000, ct[:])
	fmt.Printf("DRAM ciphertext:  %x...\n", ct[:24])

	buf := make([]byte, len(secret))
	res, err := mem.ReadBytes(done+1000, 0x1000, buf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read back:        %q\n", buf) //secmemlint:ignore secretflow the demo prints the plaintext it wrote and read back on purpose
	fmt.Printf("data ready at cycle %d, authenticated at cycle %d (+%d cycles of GCM+tree)\n\n",
		res.DataReady, res.AuthDone, res.AuthDone-res.DataReady)

	st := mem.Controller().Stats
	fmt.Printf("controller: %d fills, %d write-backs, %d counter fetches, %d Merkle node fetches\n",
		st.Fills, st.WriteBacks, st.CtrFetches, st.MacFetches)
	fmt.Printf("tamper events: %d (an honest run must report zero)\n", st.TamperDetected)
}
