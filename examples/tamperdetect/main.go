// Tamperdetect: mount the active hardware attacks the paper defends
// against — spot tampering, block splicing, and replay — against the
// simulated DRAM, and watch GCM + Merkle-tree authentication catch each
// one.
package main

import (
	"bytes"
	"fmt"
	"log"

	"secmem/internal/cache"
	"secmem/internal/config"
	"secmem/internal/core"
	"secmem/internal/dram"
)

func newSystem() *core.MemSystem {
	cfg := config.Default()
	cfg.MemBytes = 4 << 20
	cfg.L2 = cache.Config{Name: "L2", SizeBytes: 64 << 10, Ways: 8, BlockBytes: 64, LatencyCycles: 10}
	cfg.CounterCache = cache.Config{Name: "SNC", SizeBytes: 8 << 10, Ways: 8, BlockBytes: 64, LatencyCycles: 2}
	cfg.Functional = true
	mem, err := core.NewMemSystem(cfg)
	if err != nil {
		log.Fatal(err)
	}
	return mem
}

func report(name string, mem *core.MemSystem, before uint64) {
	after := mem.Controller().Stats.TamperDetected
	verdict := "NOT DETECTED (!!)"
	if after > before {
		verdict = fmt.Sprintf("DETECTED (%d authentication failure(s))", after-before)
	}
	fmt.Printf("%-28s %s\n", name+":", verdict)
}

func main() {
	fmt.Println("Active attacks against off-chip memory (Split+GCM, 64-bit MACs)")
	fmt.Println()

	// --- Attack 1: spot tampering (bit flip) -----------------------------
	mem := newSystem()
	mem.WriteBytes(0, 0x2000, bytes.Repeat([]byte{0xAA}, 64))
	mem.Drain(100)
	atk := dram.NewAttacker(mem.Controller().DRAM())
	before := mem.Controller().Stats.TamperDetected
	atk.FlipBit(0x2000, 300)
	mem.ReadBytes(1000, 0x2000, make([]byte, 64))
	report("bit flip in ciphertext", mem, before)

	// --- Attack 2: splice (copy block A over block B) ---------------------
	mem = newSystem()
	mem.WriteBytes(0, 0x2000, bytes.Repeat([]byte{1}, 64))
	mem.WriteBytes(0, 0x3000, bytes.Repeat([]byte{2}, 64))
	mem.Drain(100)
	atk = dram.NewAttacker(mem.Controller().DRAM())
	before = mem.Controller().Stats.TamperDetected
	atk.Splice(0x2000, 0x3000)
	mem.ReadBytes(1000, 0x3000, make([]byte, 64))
	report("splice (relocation)", mem, before)

	// --- Attack 3: replay (roll data+MAC back together) -------------------
	// The Merkle tree exists precisely for this one: the old data and its
	// old MAC are self-consistent, but the parent level has moved on.
	mem = newSystem()
	mem.WriteBytes(0, 0x2000, []byte("account balance: $1,000,000.00"))
	mem.Drain(100)
	atk = dram.NewAttacker(mem.Controller().DRAM())
	atk.Record(0x2000) // snapshot the million-dollar version
	mem.WriteBytes(200, 0x2000, []byte("account balance: $0.37        "))
	mem.Drain(300)
	before = mem.Controller().Stats.TamperDetected
	atk.Replay(0x2000)
	mem.ReadBytes(1000, 0x2000, make([]byte, 64))
	report("replay (rollback)", mem, before)

	// --- Honest control ----------------------------------------------------
	mem = newSystem()
	mem.WriteBytes(0, 0x2000, bytes.Repeat([]byte{7}, 64))
	mem.Drain(100)
	before = mem.Controller().Stats.TamperDetected
	mem.ReadBytes(1000, 0x2000, make([]byte, 64))
	if mem.Controller().Stats.TamperDetected == before {
		fmt.Printf("%-28s no false positive\n", "honest read (control):")
	} else {
		fmt.Printf("%-28s FALSE POSITIVE (!!)\n", "honest read (control):")
	}

	fmt.Println()
	fmt.Println("Lazy vs safe: with the lazy requirement the paper warns that an")
	fmt.Println("attack is detected only after the tainted data was already used;")
	fmt.Println("the safe requirement blocks the load until the check completes.")
}
