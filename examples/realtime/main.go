// Realtime contrasts the two counter-overflow strategies from the paper's
// real-time-systems argument (Sections 1-2): small monolithic counters
// force whole-memory re-encryption "freezes" when any counter wraps, while
// split counters re-encrypt one 4 KB page in the background under an RSR
// and never stall the processor.
package main

import (
	"fmt"
	"log"

	"secmem/internal/cache"
	"secmem/internal/config"
	"secmem/internal/core"
	"secmem/internal/cpu"
	"secmem/internal/trace"
)

func run(cfg config.SystemConfig, bench string, instr uint64) (*core.MemSystem, cpu.Result) {
	mem, err := core.NewMemSystem(cfg)
	if err != nil {
		log.Fatal(err)
	}
	gen := trace.NewGenerator(trace.Get(bench), 1)
	res := cpu.New(cfg, mem).Run(gen, instr)
	return mem, res
}

func main() {
	const bench = "twolf" // concentrated write set: fast counters
	const instr = 24_000_000

	// Keep the paper's 512 MB memory (the workload profiles assume it);
	// shrink the L2 and minor counters so overflows happen at demo scale.
	base := config.Default()
	base.Auth = config.AuthNone
	base.AuthenticateCounters = false
	base.L2 = cache.Config{Name: "L2", SizeBytes: 128 << 10, Ways: 8, BlockBytes: 64, LatencyCycles: 10}

	mono := base
	mono.Enc = config.EncCounterMono
	mono.MonoCounterBits = 8

	split := base
	split.Enc = config.EncCounterSplit
	split.MinorBits = 4 // overflow every 16 write-backs: worst case for split

	fmt.Printf("workload: %s, %d instructions, 512 MB protected memory\n\n", bench, instr)

	memM, resM := run(mono, bench, instr)
	stM := memM.Controller().Stats
	freezeSec := float64(stM.FreezeCycles) / (mono.ClockGHz * 1e9)
	fmt.Println("Mono8b (8-bit monolithic counters):")
	fmt.Printf("  whole-memory re-encryptions: %d\n", stM.FullReencEvents)
	fmt.Printf("  total freeze time if charged: %d cycles (%.1f ms) — the\n",
		stM.FreezeCycles, freezeSec*1e3)
	fmt.Printf("  processor would be unresponsive for %.2f ms per event,\n",
		freezeSec*1e3/float64(max(1, stM.FullReencEvents)))
	fmt.Println("  which is what breaks real-time deadlines.")
	fmt.Printf("  IPC (freeze NOT charged, paper methodology): %.3f\n\n", resM.IPC())

	memS, resS := run(split, bench, instr)
	rsr := memS.Controller().RSRs().Stats
	fmt.Println("Split (4-bit minors + 64-bit majors, 8 RSRs):")
	fmt.Printf("  page re-encryptions: %d, all in the background\n", rsr.PageReencs)
	fmt.Printf("  mean page re-encryption: %.0f cycles (%.2f us)\n",
		rsr.MeanCycles(), rsr.MeanCycles()/(split.ClockGHz*1e3))
	fmt.Printf("  longest: %d cycles; max concurrent: %d of %d RSRs\n",
		rsr.MaxCycles, rsr.MaxConcurrent, split.RSRs)
	fmt.Printf("  write-back stall cycles caused: %d\n", rsr.StallCycles)
	fmt.Printf("  blocks found on-chip and handled lazily: %s\n",
		pct(rsr.OnChipFraction()))
	fmt.Printf("  IPC (re-encryption fully charged): %.3f\n\n", resS.IPC())

	fmt.Println("The split scheme's worst pause is microseconds of extra memory")
	fmt.Println("traffic overlapped with execution; the monolithic scheme's is a")
	fmt.Println("millisecond-scale freeze — the paper's Section 2 argument.")
}

func pct(v float64) string { return fmt.Sprintf("%.0f%%", 100*v) }

func max(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
