// Counterreplay demonstrates the pitfall the paper identifies in Section
// 4.3: a data block can stay on-chip while its counter block is displaced
// to memory. If the attacker rolls that counter block back, the next
// write-back of the block re-uses an encryption pad — and since
// counter-mode ciphertext is plaintext XOR pad, the attacker can XOR two
// ciphertexts and read the XOR of two plaintexts.
//
// The demo runs the attack twice: against a controller without counter
// authentication (the flaw in prior schemes — the attack is silent and the
// pad reuse is shown byte for byte), and against the paper's fix, where
// counters are authenticated as tree leaves when fetched.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"
	"os"

	"secmem/internal/cache"
	"secmem/internal/config"
	"secmem/internal/core"
	"secmem/internal/dram"
	"secmem/internal/obsv"
)

func newSystem(authenticateCounters bool) *core.MemSystem {
	cfg := config.Default()
	cfg.MemBytes = 4 << 20
	cfg.L2 = cache.Config{Name: "L2", SizeBytes: 64 << 10, Ways: 8, BlockBytes: 64, LatencyCycles: 10}
	cfg.CounterCache = cache.Config{Name: "SNC", SizeBytes: 8 << 10, Ways: 8, BlockBytes: 64, LatencyCycles: 2}
	cfg.AuthenticateCounters = authenticateCounters
	cfg.Functional = true
	mem, err := core.NewMemSystem(cfg)
	if err != nil {
		log.Fatal(err)
	}
	return mem
}

func attack(mem *core.MemSystem) (ctA, ctB [64]byte, tampers uint64) {
	const victim = 0x2000
	atk := dram.NewAttacker(mem.Controller().DRAM())

	// Write #1: the block's counter advances to 1.
	mem.WriteBytes(0, victim, bytes.Repeat([]byte{0x11}, 64))
	mem.Drain(100)
	ctrBlk := mem.Controller().Counters().CounterBlockAddr(victim)
	atk.Record(ctrBlk) // snapshot the counter block at value 1

	// Write #2: counter advances to 2 — pad(2)'s first and only legal use.
	ptA := bytes.Repeat([]byte{0x55}, 64)
	mem.WriteBytes(200, victim, ptA)
	mem.Drain(300)
	ctA = atk.Snoop(victim)

	// The paper's premise: the victim block's counter is DISPLACED from
	// the counter cache (while the system keeps running other code). Churn
	// enough other pages' counters through the cache to evict it.
	now := uint64(600)
	for i := uint64(0); i < 512; i++ {
		mem.ReadBytes(now, 0x40000+i*4096, make([]byte, 8))
		now += 300
	}
	mem.Drain(now)

	// The attack: roll the counter block back to 1.
	atk.Replay(ctrBlk)

	// Write #3: the controller re-fetches the (stale) counter, increments
	// 1 -> 2, and encrypts with pad(2) AGAIN.
	ptB := bytes.Repeat([]byte{0x99}, 64)
	mem.WriteBytes(now+1000, victim, ptB)
	mem.Drain(now + 2000)
	ctB = atk.Snoop(victim)
	return ctA, ctB, mem.Controller().Stats.TamperDetected
}

func main() {
	traceOut := flag.String("trace", "", "write a Chrome trace-event timeline of the defended run to this file")
	flag.Parse()

	fmt.Println("Section 4.3 counter replay attack")
	fmt.Println()

	// --- Run 1: prior schemes (counters not authenticated on fetch) -------
	ctA, ctB, tampers := attack(newSystem(false))
	var x [64]byte
	for i := range x {
		x[i] = ctA[i] ^ ctB[i]
	}
	fmt.Println("WITHOUT counter authentication:")
	fmt.Printf("  tamper events:           %d (only indirect, via the data MAC,\n", tampers)
	fmt.Println("                           and only AFTER the pad was already reused)")
	fmt.Printf("  ct_A XOR ct_B (head):    %x\n", x[:16])
	fmt.Printf("  pt_A XOR pt_B would be:  %x\n", bytes.Repeat([]byte{0x55 ^ 0x99}, 16))
	if x == func() (w [64]byte) {
		for i := range w {
			w[i] = 0x55 ^ 0x99
		}
		return
	}() {
		fmt.Println("  => PAD REUSED: the ciphertext XOR equals the plaintext XOR.")
		fmt.Println("     A bus snooper just recovered the XOR of two secrets.")
	} else {
		fmt.Println("  => unexpected: pads differ")
	}
	fmt.Println()

	// --- Run 2: the paper's fix (counters are Merkle leaves) --------------
	defended := newSystem(true)
	rec := obsv.NewRecorder(0)
	if *traceOut != "" {
		// Trace the defended run: the tamper instant on the "txn" track
		// marks the cycle the rolled-back counter block fails its MAC.
		defended.Instrument(nil, rec)
	}
	_, _, tampers = attack(defended)
	fmt.Println("WITH counter authentication (counters as Merkle leaves):")
	fmt.Printf("  tamper events: %d — the rolled-back counter block fails its\n", tampers)
	fmt.Println("  MAC check the moment it is fetched, before any pad is built.")

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := rec.WriteJSON(f); err != nil {
			log.Fatal(err)
		}
		f.Close()
		fmt.Printf("\ntrace of the defended run written to %s (%d events)\n", *traceOut, rec.Len())
		fmt.Println("load it in chrome://tracing or ui.perfetto.dev; look for the")
		fmt.Println("\"tamper\" instant on the txn track.")
	}
}
