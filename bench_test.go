// Package secmem_test holds the benchmark harness that regenerates every
// table and figure of the paper's evaluation as a Go benchmark. Each
// BenchmarkFigN/BenchmarkTableN runs the corresponding experiment over a
// reduced campaign (three representative workloads, short runs) and reports
// the figure's headline metrics via b.ReportMetric; cmd/paperbench runs the
// same experiments over the full 21-benchmark suite with longer runs.
//
// The reported custom metrics are normalized-IPC values (baseline = 1.0),
// so "Split_normIPC: 0.95" reads directly against the paper's bars.
package secmem_test

import (
	"strings"
	"testing"

	"secmem/internal/config"
	"secmem/internal/harness"
)

// benchOpts is the reduced campaign used by the benchmark harness.
func benchOpts() harness.Options {
	return harness.Options{
		Instructions: 500_000,
		Seed:         1,
		Benches:      []string{"swim", "mcf", "crafty"},
	}
}

func reportAvg(b *testing.B, data harness.FigData, schemes ...string) {
	b.Helper()
	clean := strings.NewReplacer(" ", "", "(", "", ")", "", "-", "")
	for _, s := range schemes {
		b.ReportMetric(data[s]["Avg"], clean.Replace(s)+"_normIPC")
	}
}

// BenchmarkFig4 regenerates Figure 4: normalized IPC of the six memory
// encryption schemes with no authentication.
func BenchmarkFig4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := harness.New(benchOpts())
		_, data := r.Fig4()
		if i == b.N-1 {
			reportAvg(b, data, "Split", "Mono8b", "Mono64b", "Direct")
		}
	}
}

// BenchmarkTable2 regenerates Table 2: counter growth rates and time to
// overflow. The reported metric is the average estimated seconds to
// overflow for 8-bit monolithic counters (the paper: ~0.4 s).
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := harness.New(benchOpts())
		_, overflow := r.Table2()
		if i == b.N-1 {
			b.ReportMetric(overflow["Mono8b"]["Avg"], "mono8_overflow_s")
			b.ReportMetric(overflow["Global32b"]["Avg"], "global32_overflow_s")
		}
	}
}

// BenchmarkFig5 regenerates Figure 5: counter cache size sensitivity.
func BenchmarkFig5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := harness.New(benchOpts())
		_, data := r.Fig5()
		if i == b.N-1 {
			reportAvg(b, data, "split 16KB", "split 128KB", "mono 16KB", "mono 128KB")
		}
	}
}

// BenchmarkFig6a regenerates Figure 6(a): split counters versus the
// counter-prediction baseline.
func BenchmarkFig6a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := harness.New(benchOpts())
		_, res := r.Fig6a()
		if i == b.N-1 {
			b.ReportMetric(res.SNCHit, "snc_hit")
			b.ReportMetric(res.PredRate, "pred_rate")
			b.ReportMetric(res.IPCSplit, "split_normIPC")
			b.ReportMetric(res.IPCPred2Engine, "pred2eng_normIPC")
		}
	}
}

// BenchmarkFig6b regenerates Figure 6(b): the prediction-rate trend.
func BenchmarkFig6b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := harness.New(benchOpts())
		_, series := r.Fig6b(5)
		if i == b.N-1 {
			b.ReportMetric(series[0][1], "pred_rate_w1")
			b.ReportMetric(series[len(series)-1][1], "pred_rate_w5")
		}
	}
}

// BenchmarkFig7 regenerates Figure 7: GCM versus SHA-1 authentication.
func BenchmarkFig7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := harness.New(benchOpts())
		_, data := r.Fig7()
		if i == b.N-1 {
			reportAvg(b, data, "GCM", "SHA-1 (80)", "SHA-1 (320)", "SHA-1 (640)")
		}
	}
}

// BenchmarkFig8 regenerates Figure 8: authentication requirements and
// parallel tree authentication.
func BenchmarkFig8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := harness.New(benchOpts())
		_, data := r.Fig8()
		if i == b.N-1 {
			reportAvg(b, data, "GCM lazy", "GCM safe", "SHA lazy", "SHA safe")
		}
	}
}

// BenchmarkFig9 regenerates Figure 9: the five combined schemes.
func BenchmarkFig9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := harness.New(benchOpts())
		_, data := r.Fig9()
		if i == b.N-1 {
			reportAvg(b, data, harness.CombinedNames()...)
		}
	}
}

// BenchmarkFig10 regenerates Figure 10: sensitivity of the combined
// schemes (requirements, parallelism, MAC sizes).
func BenchmarkFig10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := harness.New(benchOpts())
		_, data := r.Fig10()
		if i == b.N-1 {
			b.ReportMetric(data["Split+GCM/safe"]["Avg"], "SplitGCM_safe_normIPC")
			b.ReportMetric(data["Mono+SHA/safe"]["Avg"], "MonoSHA_safe_normIPC")
			b.ReportMetric(data["Split+GCM/mac32"]["Avg"], "SplitGCM_mac32_normIPC")
		}
	}
}

// BenchmarkReencScalars regenerates the Section 6.1 page re-encryption
// scalars (48% of blocks on-chip, mean re-encryption cycles, work ratio).
func BenchmarkReencScalars(b *testing.B) {
	for i := 0; i < b.N; i++ {
		opt := benchOpts()
		opt.Benches = []string{"twolf", "equake", "applu"}
		r := harness.New(opt)
		_, res := r.Scalars()
		if i == b.N-1 {
			b.ReportMetric(res.OnChipFraction, "onchip_fraction")
			b.ReportMetric(res.MeanReencCycles, "mean_reenc_cycles")
		}
	}
}

// BenchmarkSimulatorThroughput measures raw simulation speed: simulated
// instructions per second for the paper's default protected configuration.
func BenchmarkSimulatorThroughput(b *testing.B) {
	r := harness.New(harness.Options{Instructions: 1_000_000, Seed: 1})
	cfg := config.Default()
	b.ResetTimer()
	var instr uint64
	for i := 0; i < b.N; i++ {
		out := r.Run("swim", cfg)
		instr += out.CPU.Instructions
	}
	b.ReportMetric(float64(instr)/b.Elapsed().Seconds(), "sim_instr/s")
}
