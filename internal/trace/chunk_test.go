package trace

import (
	"math/rand"
	"reflect"
	"testing"

	"secmem/internal/cpu"
)

// TestFibSourceMatchesMathRand is the fidelity gate for the copyable
// source: for a spread of seeds (including the normalization edge cases
// of math/rand's Seed — zero, negatives, values beyond int32), the raw
// Uint64 stream must match rand.NewSource bit for bit.
func TestFibSourceMatchesMathRand(t *testing.T) {
	seeds := []int64{0, 1, -1, 2, 42, int32max, int32max + 1, -int32max,
		1 << 40, -(1 << 52), 9151314442816847872, -9000000000000000000}
	for _, seed := range seeds {
		ref := rand.NewSource(seed).(rand.Source64)
		got := newFibSource(seed)
		for i := 0; i < 5000; i++ {
			if w, g := ref.Uint64(), got.Uint64(); w != g {
				t.Fatalf("seed %d draw %d: fibSource %#x, math/rand %#x", seed, i, g, w)
			}
		}
	}
}

// TestFibSourceThroughRand pins the full wrapper: rand.New over a
// fibSource must reproduce rand.New(rand.NewSource(seed)) across exactly
// the distribution methods the trace generator draws from.
func TestFibSourceThroughRand(t *testing.T) {
	for _, seed := range []int64{1, 7, -123456789, 1 << 33} {
		ref := rand.New(rand.NewSource(seed))
		got := rand.New(newFibSource(seed))
		for i := 0; i < 2000; i++ {
			if w, g := ref.ExpFloat64(), got.ExpFloat64(); w != g {
				t.Fatalf("seed %d draw %d: ExpFloat64 %v vs %v", seed, i, g, w)
			}
			if w, g := ref.Float64(), got.Float64(); w != g {
				t.Fatalf("seed %d draw %d: Float64 %v vs %v", seed, i, g, w)
			}
			// 6144 is a non-power-of-two bound (the rejection loop draws a
			// variable number of times), 4096 a power of two (masked).
			if w, g := ref.Int63n(6144), got.Int63n(6144); w != g {
				t.Fatalf("seed %d draw %d: Int63n %v vs %v", seed, i, g, w)
			}
			if w, g := ref.Intn(64), got.Intn(64); w != g {
				t.Fatalf("seed %d draw %d: Intn %v vs %v", seed, i, g, w)
			}
		}
	}
}

// TestGeneratorCloneIndependence: a clone must continue the original's
// stream exactly, and advancing either side must not disturb the other.
func TestGeneratorCloneIndependence(t *testing.T) {
	g := NewGenerator(Get("mcf"), 99)
	for i := 0; i < 1000; i++ {
		g.Next()
	}
	snap := g.Clone()
	var fromOriginal []cpu.Event
	for i := 0; i < 500; i++ {
		ev, _ := g.Next()
		fromOriginal = append(fromOriginal, ev)
	}
	// Perturb the original further; the clone must be unaffected.
	for i := 0; i < 777; i++ {
		g.Next()
	}
	for i, want := range fromOriginal {
		ev, _ := snap.Next()
		if ev != want {
			t.Fatalf("clone diverged at event %d: %+v vs %+v", i, ev, want)
		}
	}
}

// serialWalk is the reference: the exact event sequence and instruction
// accounting of the serial routing loop for a given budget.
func serialWalk(p Profile, seed int64, total uint64) []cpu.Event {
	g := NewGenerator(p, seed)
	var events []cpu.Event
	var done uint64
	for done < total {
		ev, ok := g.Next()
		if !ok {
			break
		}
		events = append(events, ev)
		n := uint64(ev.NonMemBefore)
		if n >= total-done {
			break
		}
		done += n + 1
	}
	return events
}

// chunkedWalk drives the clone-and-replay scheme: the stepper clones and
// advances chunk by chunk; every chunk is then materialized from its
// snapshot — in reverse chunk order, to prove snapshots are
// self-contained — and spliced back in index order.
func chunkedWalk(t *testing.T, p Profile, seed int64, total, chunkInstr uint64) []cpu.Event {
	t.Helper()
	g := NewGenerator(p, seed)
	type chunk struct {
		snap   *Generator
		events int
	}
	var chunks []chunk
	remaining := total
	var covered uint64
	for {
		snap := g.Clone()
		events, instr, final := AdvanceChunk(g, chunkInstr, remaining)
		chunks = append(chunks, chunk{snap, events})
		remaining -= instr
		covered += instr
		if final {
			break
		}
	}
	if covered != total {
		t.Fatalf("chunks cover %d instructions, want %d", covered, total)
	}
	bufs := make([][]cpu.Event, len(chunks))
	for i := len(chunks) - 1; i >= 0; i-- {
		bufs[i] = GenerateChunk(chunks[i].snap, chunks[i].events, nil)
		if len(bufs[i]) != chunks[i].events {
			t.Fatalf("chunk %d materialized %d events, want %d", i, len(bufs[i]), chunks[i].events)
		}
	}
	var spliced []cpu.Event
	for _, b := range bufs {
		spliced = append(spliced, b...)
	}
	return spliced
}

// TestChunkedGenerationMatchesSerial is the tentpole differential: over
// all 21 profiles and chunk sizes 1, 64, and the whole budget, the
// spliced chunked stream must be event-for-event identical to the serial
// walk.
func TestChunkedGenerationMatchesSerial(t *testing.T) {
	const total = 5000
	for _, name := range Names() {
		p := Get(name)
		want := serialWalk(p, 11, total)
		for _, chunkInstr := range []uint64{1, 64, total} {
			got := chunkedWalk(t, p, 11, total, chunkInstr)
			if !reflect.DeepEqual(got, want) {
				limit := len(got)
				if len(want) < limit {
					limit = len(want)
				}
				for i := 0; i < limit; i++ {
					if got[i] != want[i] {
						t.Fatalf("%s chunk=%d: event %d differs: %+v vs %+v",
							name, chunkInstr, i, got[i], want[i])
					}
				}
				t.Fatalf("%s chunk=%d: %d events, want %d", name, chunkInstr, len(got), len(want))
			}
		}
	}
}

// TestAdvanceChunkBudgetEdges pins the cutoff accounting: a zero
// remaining budget yields an empty final chunk; a budget that ends inside
// an event's non-memory prefix includes the crossing event but charges
// only the remaining instructions.
func TestAdvanceChunkBudgetEdges(t *testing.T) {
	g := NewGenerator(Get("swim"), 5)
	events, instr, final := AdvanceChunk(g, 1024, 0)
	if events != 0 || instr != 0 || !final {
		t.Fatalf("zero budget: got events=%d instr=%d final=%v, want 0/0/true", events, instr, final)
	}

	// Find an event with a nonzero prefix, then replay with a budget that
	// ends inside that prefix.
	probe := NewGenerator(Get("swim"), 5)
	var lead uint64
	var prefix uint64
	for {
		ev, _ := probe.Next()
		n := uint64(ev.NonMemBefore)
		if n >= 2 {
			prefix = n
			break
		}
		lead += n + 1
	}
	budget := lead + prefix - 1 // ends strictly inside the prefix
	g2 := NewGenerator(Get("swim"), 5)
	events, instr, final = AdvanceChunk(g2, budget+1024, budget)
	if !final || instr != budget {
		t.Fatalf("mid-prefix cutoff: instr=%d final=%v, want instr=%d final=true", instr, final, budget)
	}
	want := serialWalk(Get("swim"), 5, budget)
	if events != len(want) {
		t.Fatalf("mid-prefix cutoff consumed %d events, serial walk has %d", events, len(want))
	}
}
