// Package trace generates the synthetic workloads that stand in for the 21
// SPEC CPU 2000 benchmarks of the paper's evaluation (Table 1). Running the
// actual benchmarks requires their reference inputs and a compiler
// toolchain; what the paper's results actually depend on is each program's
// memory behaviour along three axes:
//
//   - L2 miss rate and footprint (drives exposure to decryption latency),
//   - write-back volume and concentration (drives counter growth, counter
//     cache pressure, and re-encryption frequency — Table 2), and
//   - load dependence (pointer chasing drives latency sensitivity).
//
// Each profile mixes four address generators — sequential streams, uniform
// random within a working set, pointer chasing (dependent loads), and a
// small hot write set — with per-benchmark weights and working-set sizes
// calibrated to public SPEC 2000 memory characterizations. Generation is
// deterministic for a given (profile, seed).
package trace

import (
	"math/rand"
	"sort"

	"secmem/internal/cpu"
)

// BlockSize is the cache block size assumed by the generators.
const BlockSize = 64

// chaseWindow is the pointer-chase neighbourhood size: hops mostly stay
// within it, so chase traffic exercises a handful of encryption pages at a
// time the way real linked structures allocated together do.
const chaseWindow = 64 << 10

// Region base offsets, chosen to spread the working sets across the
// 512 MB data space without overlap.
const (
	hotBase    = 1 << 20   // 1 MB
	chaseBase  = 32 << 20  // 32 MB (largest chase set: mcf's 160 MB)
	randomBase = 224 << 20 // 224 MB
	streamBase = 256 << 20 // 256 MB (largest stream set: swim's 192 MB)
)

// Profile describes one synthetic benchmark.
type Profile struct {
	Name string

	// MemFraction is the fraction of instructions that access memory.
	MemFraction float64
	// StoreFraction is the fraction of memory accesses that are stores.
	StoreFraction float64

	// Mix weights over the four generators (normalized internally).
	StreamWeight float64
	RandomWeight float64
	ChaseWeight  float64
	HotWeight    float64

	// Working-set sizes in bytes.
	StreamWS uint64
	RandomWS uint64
	ChaseWS  uint64
	HotWS    uint64

	// StreamStride is the byte stride of sequential accesses (smaller
	// stride = more hits per block = lower MPKI).
	StreamStride uint64

	// HotStoreBias is the extra probability that a hot-region access is a
	// store, concentrating write-backs on few blocks (fast counters).
	HotStoreBias float64
}

// Generator produces the instruction stream for one profile run. It
// implements cpu.Source.
//
// The random state lives in a fibSource — a bit-exact, copyable port of
// the math/rand source — wrapped in a *rand.Rand for the distribution
// methods, so streams are identical to the historical
// rand.New(rand.NewSource(seed)) construction while Clone can snapshot
// the full generator state in O(1) for chunk-parallel generation.
type Generator struct {
	p        Profile
	src      *fibSource
	rng      *rand.Rand
	cum      [4]float64 // cumulative weights: stream, random, chase, hot
	streams  [4]uint64  // stream cursors
	sIdx     int
	chasePo  uint64 // pointer-chase PRNG state
	chaseWin uint64 // current chase neighbourhood base
	gapMean  float64
}

// NewGenerator builds a deterministic generator for a profile and seed.
func NewGenerator(p Profile, seed int64) *Generator {
	total := p.StreamWeight + p.RandomWeight + p.ChaseWeight + p.HotWeight
	if total <= 0 {
		panic("trace: profile has no generator weights: " + p.Name)
	}
	if p.MemFraction <= 0 || p.MemFraction >= 1 {
		panic("trace: MemFraction out of (0,1): " + p.Name)
	}
	src := newFibSource(seed ^ int64(hashName(p.Name)))
	g := &Generator{
		p:   p,
		src: src,
		rng: rand.New(src),
	}
	g.cum[0] = p.StreamWeight / total
	g.cum[1] = g.cum[0] + p.RandomWeight/total
	g.cum[2] = g.cum[1] + p.ChaseWeight/total
	g.cum[3] = 1
	for i := range g.streams {
		g.streams[i] = uint64(i) * (p.StreamWS / 4)
	}
	g.gapMean = (1 - p.MemFraction) / p.MemFraction
	return g
}

// Clone snapshots the generator: the copy produces exactly the stream
// the original would have produced from this point, and the two advance
// independently. This is the chunk-handoff primitive of the pipelined
// trace front-end — the serial stepper clones at every chunk boundary
// and a replay worker materializes the chunk's events from the snapshot.
func (g *Generator) Clone() *Generator {
	c := *g
	c.src = g.src.clone()
	// A fresh Rand over the cloned source: Rand itself holds no state
	// that affects the draw methods the generator uses (its readVal/
	// readPos buffer serves only Read, which is never called).
	c.rng = rand.New(c.src)
	return &c
}

// Profile returns the workload profile driving this generator, letting
// routing code derive capacity hints (an expected event count is the
// instruction budget times MemFraction) without re-resolving the name.
func (g *Generator) Profile() Profile { return g.p }

func hashName(s string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// Next produces the next memory event. The stream never ends.
func (g *Generator) Next() (cpu.Event, bool) {
	var ev cpu.Event
	// Geometric gap of non-memory instructions around the configured mean.
	gap := g.rng.ExpFloat64() * g.gapMean
	if gap > 1000 {
		gap = 1000
	}
	ev.NonMemBefore = uint32(gap)

	u := g.rng.Float64()
	storeP := g.p.StoreFraction
	switch {
	case u < g.cum[0]: // stream
		s := &g.streams[g.sIdx]
		g.sIdx = (g.sIdx + 1) % len(g.streams)
		*s += g.p.StreamStride
		if *s >= g.p.StreamWS {
			*s = 0
		}
		ev.Addr = streamBase + *s
	case u < g.cum[1]: // random
		ev.Addr = randomBase + uint64(g.rng.Int63n(int64(g.p.RandomWS/BlockSize)))*BlockSize +
			uint64(g.rng.Intn(BlockSize))&^7
	case u < g.cum[2]: // pointer chase
		// Real pointer chasing has strong neighbourhood locality: most
		// hops land near the current node, with occasional long jumps to
		// another part of the structure. The neighbourhood keeps the
		// counter cache effective (one counter block covers a 4 KB page),
		// while the long jumps still thrash the L2 for big working sets.
		g.chasePo = g.chasePo*6364136223846793005 + 1442695040888963407
		win := uint64(chaseWindow)
		if g.p.ChaseWS < win {
			win = g.p.ChaseWS
		}
		if nw := g.p.ChaseWS / win; nw > 1 && g.chasePo>>32&0xff < 4 {
			// ~16%: long jump moves the neighbourhood.
			g.chaseWin = g.chasePo % nw * win
		}
		ev.Addr = chaseBase + g.chaseWin + g.chasePo>>16%(win/BlockSize)*BlockSize
		ev.Dependent = true
	default: // hot set
		ev.Addr = hotBase + uint64(g.rng.Int63n(int64(g.p.HotWS/BlockSize)))*BlockSize
		storeP += g.p.HotStoreBias
	}
	ev.Write = g.rng.Float64() < storeP
	return ev, true
}

// Profiles returns the 21 benchmark stand-ins, keyed as the paper names
// them. Working sets and mixes are calibrated so the memory-bound floating
// point codes (art, swim, applu, mgrid, equake, wupwise, ammp, apsi) show
// large encryption/authentication overheads, the pointer chasers (mcf,
// twolf, parser, vpr) are latency-sensitive, and the cache-resident integer
// codes (crafty, eon, gzip, perlbmk, mesa...) are nearly unaffected —
// matching which benchmarks the paper plots individually.
func Profiles() map[string]Profile {
	mb := func(n uint64) uint64 { return n << 20 }
	kb := func(n uint64) uint64 { return n << 10 }
	ps := []Profile{
		// SPECfp. The memory-bound codes stream working sets far beyond the
		// 1 MB L2 at an 8-byte stride (one miss per eight accesses), giving
		// MPKIs in the paper-era 10-40 range; their hot write sets are small
		// and store-biased, which is what makes their counters the fastest
		// growing (Table 2).
		{Name: "ammp", MemFraction: 0.30, StoreFraction: 0.25,
			StreamWeight: 0.08, RandomWeight: 0.75, ChaseWeight: 0.02, HotWeight: 0.15,
			StreamWS: mb(24), RandomWS: kb(256), ChaseWS: mb(8), HotWS: kb(96),
			StreamStride: 8, HotStoreBias: 0.30},
		{Name: "applu", MemFraction: 0.32, StoreFraction: 0.30,
			StreamWeight: 0.30, RandomWeight: 0.45, ChaseWeight: 0.05, HotWeight: 0.20,
			StreamWS: mb(128), RandomWS: kb(256), ChaseWS: kb(128), HotWS: kb(48),
			StreamStride: 8, HotStoreBias: 0.45},
		{Name: "apsi", MemFraction: 0.30, StoreFraction: 0.28,
			StreamWeight: 0.20, RandomWeight: 0.60, ChaseWeight: 0.05, HotWeight: 0.15,
			StreamWS: mb(16), RandomWS: kb(256), ChaseWS: kb(128), HotWS: kb(128),
			StreamStride: 8, HotStoreBias: 0.20},
		{Name: "art", MemFraction: 0.34, StoreFraction: 0.18,
			StreamWeight: 0.55, RandomWeight: 0.30, ChaseWeight: 0.0, HotWeight: 0.15,
			StreamWS: mb(4), RandomWS: kb(256), ChaseWS: kb(256), HotWS: kb(48),
			StreamStride: 8, HotStoreBias: 0.50},
		{Name: "equake", MemFraction: 0.31, StoreFraction: 0.24,
			StreamWeight: 0.15, RandomWeight: 0.57, ChaseWeight: 0.03, HotWeight: 0.25,
			StreamWS: mb(40), RandomWS: kb(256), ChaseWS: mb(8), HotWS: kb(32),
			StreamStride: 8, HotStoreBias: 0.45},
		{Name: "mesa", MemFraction: 0.28, StoreFraction: 0.30,
			StreamWeight: 0.30, RandomWeight: 0.55, ChaseWeight: 0.05, HotWeight: 0.10,
			StreamWS: kb(192), RandomWS: kb(192), ChaseWS: kb(64), HotWS: kb(64),
			StreamStride: 8, HotStoreBias: 0.10},
		{Name: "mgrid", MemFraction: 0.33, StoreFraction: 0.20,
			StreamWeight: 0.24, RandomWeight: 0.56, ChaseWeight: 0.05, HotWeight: 0.15,
			StreamWS: mb(56), RandomWS: kb(256), ChaseWS: kb(128), HotWS: kb(96),
			StreamStride: 8, HotStoreBias: 0.25},
		{Name: "swim", MemFraction: 0.32, StoreFraction: 0.34,
			StreamWeight: 0.55, RandomWeight: 0.30, ChaseWeight: 0.0, HotWeight: 0.15,
			StreamWS: mb(192), RandomWS: kb(256), ChaseWS: kb(128), HotWS: kb(96),
			StreamStride: 8, HotStoreBias: 0.25},
		{Name: "wupwise", MemFraction: 0.29, StoreFraction: 0.22,
			StreamWeight: 0.19, RandomWeight: 0.66, ChaseWeight: 0.05, HotWeight: 0.10,
			StreamWS: mb(176), RandomWS: kb(256), ChaseWS: kb(128), HotWS: kb(128),
			StreamStride: 8, HotStoreBias: 0.20},
		// SPECint. Cache-resident working sets; the pointer chasers (mcf,
		// twolf, parser, vpr) carry dependent misses that make them latency-
		// sensitive even at modest miss rates.
		{Name: "bzip2", MemFraction: 0.27, StoreFraction: 0.30,
			StreamWeight: 0.50, RandomWeight: 0.35, ChaseWeight: 0.02, HotWeight: 0.13,
			StreamWS: kb(384), RandomWS: kb(256), ChaseWS: kb(64), HotWS: kb(64),
			StreamStride: 8, HotStoreBias: 0.10},
		{Name: "crafty", MemFraction: 0.28, StoreFraction: 0.22,
			StreamWeight: 0.20, RandomWeight: 0.70, ChaseWeight: 0.02, HotWeight: 0.08,
			StreamWS: kb(128), RandomWS: kb(128), ChaseWS: kb(64), HotWS: kb(32),
			StreamStride: 8, HotStoreBias: 0.05},
		{Name: "eon", MemFraction: 0.26, StoreFraction: 0.28,
			StreamWeight: 0.10, RandomWeight: 0.80, ChaseWeight: 0.02, HotWeight: 0.08,
			StreamWS: kb(64), RandomWS: kb(96), ChaseWS: kb(32), HotWS: kb(16),
			StreamStride: 8, HotStoreBias: 0.05},
		{Name: "gap", MemFraction: 0.27, StoreFraction: 0.25,
			StreamWeight: 0.45, RandomWeight: 0.40, ChaseWeight: 0.05, HotWeight: 0.10,
			StreamWS: kb(256), RandomWS: kb(256), ChaseWS: kb(64), HotWS: kb(64),
			StreamStride: 8, HotStoreBias: 0.10},
		{Name: "gcc", MemFraction: 0.29, StoreFraction: 0.32,
			StreamWeight: 0.05, RandomWeight: 0.76, ChaseWeight: 0.02, HotWeight: 0.17,
			StreamWS: mb(8), RandomWS: kb(512), ChaseWS: mb(4), HotWS: kb(128),
			StreamStride: 8, HotStoreBias: 0.15},
		{Name: "gzip", MemFraction: 0.26, StoreFraction: 0.28,
			StreamWeight: 0.55, RandomWeight: 0.35, ChaseWeight: 0.02, HotWeight: 0.08,
			StreamWS: kb(192), RandomWS: kb(96), ChaseWS: kb(64), HotWS: kb(32),
			StreamStride: 8, HotStoreBias: 0.05},
		{Name: "mcf", MemFraction: 0.36, StoreFraction: 0.22,
			StreamWeight: 0.10, RandomWeight: 0.50, ChaseWeight: 0.25, HotWeight: 0.15,
			StreamWS: mb(16), RandomWS: kb(256), ChaseWS: mb(160), HotWS: kb(64),
			StreamStride: 8, HotStoreBias: 0.40},
		{Name: "parser", MemFraction: 0.29, StoreFraction: 0.26,
			StreamWeight: 0.05, RandomWeight: 0.76, ChaseWeight: 0.015, HotWeight: 0.175,
			StreamWS: mb(4), RandomWS: kb(384), ChaseWS: mb(8), HotWS: kb(64),
			StreamStride: 8, HotStoreBias: 0.15},
		{Name: "perlbmk", MemFraction: 0.28, StoreFraction: 0.30,
			StreamWeight: 0.20, RandomWeight: 0.60, ChaseWeight: 0.12, HotWeight: 0.08,
			StreamWS: kb(192), RandomWS: kb(192), ChaseWS: kb(96), HotWS: kb(32),
			StreamStride: 8, HotStoreBias: 0.05},
		{Name: "twolf", MemFraction: 0.30, StoreFraction: 0.28,
			StreamWeight: 0.05, RandomWeight: 0.63, ChaseWeight: 0.02, HotWeight: 0.30,
			StreamWS: kb(384), RandomWS: kb(256), ChaseWS: mb(8), HotWS: kb(32),
			StreamStride: 8, HotStoreBias: 0.50},
		{Name: "vortex", MemFraction: 0.28, StoreFraction: 0.30,
			StreamWeight: 0.25, RandomWeight: 0.50, ChaseWeight: 0.15, HotWeight: 0.10,
			StreamWS: kb(256), RandomWS: kb(256), ChaseWS: kb(192), HotWS: kb(64),
			StreamStride: 8, HotStoreBias: 0.10},
		{Name: "vpr", MemFraction: 0.29, StoreFraction: 0.27,
			StreamWeight: 0.08, RandomWeight: 0.715, ChaseWeight: 0.012, HotWeight: 0.193,
			StreamWS: kb(512), RandomWS: kb(384), ChaseWS: mb(4), HotWS: kb(64),
			StreamStride: 8, HotStoreBias: 0.20},
	}
	out := make(map[string]Profile, len(ps))
	for _, p := range ps {
		out[p.Name] = p
	}
	return out
}

// Names returns the profile names in sorted order.
func Names() []string {
	ps := Profiles()
	names := make([]string, 0, len(ps))
	for n := range ps {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Get returns a named profile, panicking on unknown names (a typo in an
// experiment spec should fail loudly).
func Get(name string) Profile {
	p, ok := Profiles()[name]
	if !ok {
		panic("trace: unknown benchmark profile " + name)
	}
	return p
}
