package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"secmem/internal/cpu"
)

// This file implements a compact on-disk trace format so workloads can be
// recorded once and replayed exactly — across simulator versions, on other
// machines, or from external trace sources converted into it.
//
// Format:
//
//	magic "SMTR" | u8 version |
//	events: u8 flags | uvarint nonMemBefore | svarint addrDelta
//
// Addresses are delta-encoded against the previous event's address
// (zig-zag), which makes streaming workloads nearly free to store.

// Magic identifies a secmem trace file.
var Magic = [4]byte{'S', 'M', 'T', 'R'}

// FormatVersion is the current trace format version.
const FormatVersion = 1

const (
	flagWrite     = 1 << 0
	flagDependent = 1 << 1
)

// ErrBadTrace reports a malformed trace file.
var ErrBadTrace = errors.New("trace: malformed trace file")

// Writer streams events into the on-disk format.
type Writer struct {
	w        *bufio.Writer
	prevAddr uint64
	events   uint64
}

// NewWriter wraps w for trace recording.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(Magic[:]); err != nil {
		return nil, err
	}
	if err := bw.WriteByte(FormatVersion); err != nil {
		return nil, err
	}
	return &Writer{w: bw}, nil
}

// Write appends one event.
func (t *Writer) Write(ev cpu.Event) error {
	var flags byte
	if ev.Write {
		flags |= flagWrite
	}
	if ev.Dependent {
		flags |= flagDependent
	}
	if err := t.w.WriteByte(flags); err != nil {
		return err
	}
	var buf [2 * binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], uint64(ev.NonMemBefore))
	delta := int64(ev.Addr) - int64(t.prevAddr)
	n += binary.PutVarint(buf[n:], delta)
	if _, err := t.w.Write(buf[:n]); err != nil {
		return err
	}
	t.prevAddr = ev.Addr
	t.events++
	return nil
}

// Events reports how many events have been written.
func (t *Writer) Events() uint64 { return t.events }

// Flush commits buffered bytes to the underlying writer.
func (t *Writer) Flush() error { return t.w.Flush() }

// Record drains n events from src into w.
func Record(w io.Writer, src cpu.Source, n uint64) error {
	tw, err := NewWriter(w)
	if err != nil {
		return err
	}
	for i := uint64(0); i < n; i++ {
		ev, ok := src.Next()
		if !ok {
			break
		}
		if err := tw.Write(ev); err != nil {
			return err
		}
	}
	return tw.Flush()
}

// FileSource replays a recorded trace; it implements cpu.Source.
type FileSource struct {
	r        *bufio.Reader
	prevAddr uint64
	err      error
}

// NewFileSource validates the header and prepares replay.
func NewFileSource(r io.Reader) (*FileSource, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadTrace, err)
	}
	if magic != Magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadTrace, magic[:])
	}
	ver, err := br.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadTrace, err)
	}
	if ver != FormatVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadTrace, ver)
	}
	return &FileSource{r: br}, nil
}

// Next returns the next event; false at end of trace or on error (check
// Err afterwards).
func (s *FileSource) Next() (cpu.Event, bool) {
	if s.err != nil {
		return cpu.Event{}, false
	}
	flags, err := s.r.ReadByte()
	if err != nil {
		if err != io.EOF {
			s.err = err
		}
		return cpu.Event{}, false
	}
	gap, err := binary.ReadUvarint(s.r)
	if err != nil {
		s.err = fmt.Errorf("%w: truncated gap", ErrBadTrace)
		return cpu.Event{}, false
	}
	delta, err := binary.ReadVarint(s.r)
	if err != nil {
		s.err = fmt.Errorf("%w: truncated address", ErrBadTrace)
		return cpu.Event{}, false
	}
	addr := uint64(int64(s.prevAddr) + delta)
	s.prevAddr = addr
	return cpu.Event{
		Addr:         addr,
		Write:        flags&flagWrite != 0,
		Dependent:    flags&flagDependent != 0,
		NonMemBefore: uint32(gap),
	}, true
}

// Err reports a decoding error encountered during replay, if any.
func (s *FileSource) Err() error { return s.err }

// Summary aggregates a trace's workload characteristics; the secmemtrace
// tool prints it.
type Summary struct {
	Events       uint64
	Instructions uint64
	Stores       uint64
	Dependent    uint64
	UniqueBlocks int
	MinAddr      uint64
	MaxAddr      uint64
}

// MemFraction is memory events over instructions.
func (s Summary) MemFraction() float64 {
	if s.Instructions == 0 {
		return 0
	}
	return float64(s.Events) / float64(s.Instructions)
}

// Summarize scans a source (a replayed file or a live generator) for up to
// n events.
func Summarize(src cpu.Source, n uint64) Summary {
	var sum Summary
	blocks := make(map[uint64]struct{})
	sum.MinAddr = ^uint64(0)
	for i := uint64(0); i < n; i++ {
		ev, ok := src.Next()
		if !ok {
			break
		}
		sum.Events++
		sum.Instructions += uint64(ev.NonMemBefore) + 1
		if ev.Write {
			sum.Stores++
		}
		if ev.Dependent {
			sum.Dependent++
		}
		blocks[ev.Addr&^63] = struct{}{}
		if ev.Addr < sum.MinAddr {
			sum.MinAddr = ev.Addr
		}
		if ev.Addr > sum.MaxAddr {
			sum.MaxAddr = ev.Addr
		}
	}
	sum.UniqueBlocks = len(blocks)
	if sum.Events == 0 {
		sum.MinAddr = 0
	}
	return sum
}
