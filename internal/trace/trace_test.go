package trace

import (
	"testing"

	"secmem/internal/cpu"
)

func TestProfilesComplete(t *testing.T) {
	names := Names()
	if len(names) != 21 {
		t.Fatalf("profiles = %d, want the paper's 21", len(names))
	}
	// The paper's Table 1 names, exactly.
	want := []string{
		"ammp", "applu", "apsi", "art", "bzip2", "crafty", "eon", "equake",
		"gap", "gcc", "gzip", "mcf", "mesa", "mgrid", "parser", "perlbmk",
		"swim", "twolf", "vortex", "vpr", "wupwise",
	}
	for i, n := range want {
		if names[i] != n {
			t.Errorf("profile %d = %s, want %s", i, names[i], n)
		}
	}
}

func TestGetUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown profile did not panic")
		}
	}()
	Get("specjbb")
}

func TestDeterminism(t *testing.T) {
	for _, name := range []string{"mcf", "swim", "crafty"} {
		a := NewGenerator(Get(name), 42)
		b := NewGenerator(Get(name), 42)
		for i := 0; i < 10000; i++ {
			ea, _ := a.Next()
			eb, _ := b.Next()
			if ea != eb {
				t.Fatalf("%s: event %d differs: %+v vs %+v", name, i, ea, eb)
			}
		}
	}
	// Different seeds differ.
	a := NewGenerator(Get("mcf"), 1)
	b := NewGenerator(Get("mcf"), 2)
	same := 0
	for i := 0; i < 1000; i++ {
		ea, _ := a.Next()
		eb, _ := b.Next()
		if ea == eb {
			same++
		}
	}
	if same > 900 {
		t.Errorf("seeds 1 and 2 nearly identical: %d/1000 equal", same)
	}
}

func TestAddressesWithinDataRegion(t *testing.T) {
	const memBytes = 512 << 20
	for _, name := range Names() {
		g := NewGenerator(Get(name), 7)
		for i := 0; i < 20000; i++ {
			ev, _ := g.Next()
			if ev.Addr >= memBytes {
				t.Fatalf("%s: address %#x beyond 512MB data region", name, ev.Addr)
			}
		}
	}
}

func collect(name string, n int) []cpu.Event {
	g := NewGenerator(Get(name), 11)
	evs := make([]cpu.Event, n)
	for i := range evs {
		evs[i], _ = g.Next()
	}
	return evs
}

func TestMemFractionRoughlyHonored(t *testing.T) {
	for _, name := range []string{"mcf", "eon", "swim"} {
		p := Get(name)
		evs := collect(name, 50000)
		var instr uint64
		for _, e := range evs {
			instr += uint64(e.NonMemBefore) + 1
		}
		got := float64(len(evs)) / float64(instr)
		if got < p.MemFraction*0.8 || got > p.MemFraction*1.2 {
			t.Errorf("%s: memory fraction %.3f, profile says %.3f", name, got, p.MemFraction)
		}
	}
}

func TestStoreFractionRoughlyHonored(t *testing.T) {
	for _, name := range []string{"swim", "art"} {
		p := Get(name)
		evs := collect(name, 50000)
		stores := 0
		for _, e := range evs {
			if e.Write {
				stores++
			}
		}
		got := float64(stores) / float64(len(evs))
		// Hot-region bias pushes it above the base fraction.
		if got < p.StoreFraction*0.8 || got > p.StoreFraction+0.20 {
			t.Errorf("%s: store fraction %.3f vs base %.3f", name, got, p.StoreFraction)
		}
	}
}

func TestDependenceSeparatesChasersFromStreamers(t *testing.T) {
	frac := func(name string) float64 {
		evs := collect(name, 30000)
		dep := 0
		for _, e := range evs {
			if e.Dependent {
				dep++
			}
		}
		return float64(dep) / float64(len(evs))
	}
	if mcf, swim := frac("mcf"), frac("swim"); mcf < 0.15 || swim > 0.1 {
		t.Errorf("dependence: mcf=%.2f swim=%.2f", mcf, swim)
	}
}

func TestWorkingSetFootprints(t *testing.T) {
	// mcf touches far more unique blocks than eon over the same window.
	unique := func(name string) int {
		seen := map[uint64]bool{}
		for _, e := range collect(name, 30000) {
			seen[e.Addr&^63] = true
		}
		return len(seen)
	}
	if mcf, eon := unique("mcf"), unique("eon"); mcf < 4*eon {
		t.Errorf("footprints: mcf=%d eon=%d", mcf, eon)
	}
}

func TestHotRegionConcentratesWrites(t *testing.T) {
	// For twolf, the hot region must absorb a disproportionate share of
	// stores relative to its size (this is what drives Table 2's fast
	// counters).
	evs := collect("twolf", 50000)
	hotStores, stores := 0, 0
	for _, e := range evs {
		if !e.Write {
			continue
		}
		stores++
		if e.Addr >= hotBase && e.Addr < hotBase+(32<<10) {
			hotStores++
		}
	}
	if stores == 0 || float64(hotStores)/float64(stores) < 0.25 {
		t.Errorf("hot stores %d / %d, want concentrated", hotStores, stores)
	}
}

func TestBadProfilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero-weight profile did not panic")
		}
	}()
	NewGenerator(Profile{Name: "bad", MemFraction: 0.3}, 1)
}
