package trace

// fibSource is a copyable re-implementation of math/rand's unexported
// rngSource: the additive lagged Fibonacci generator x[n] = x[n-273] +
// x[n-607] seeded through the Mitchell–Reeds whitening walk. It exists
// for exactly one capability the standard library withholds — cloning
// the generator state in O(1) — which is what lets the pipelined trace
// front-end hand a chunk's starting state to a replay worker while the
// serial stepper walks on (DESIGN.md §15).
//
// Fidelity is a hard requirement, not a nicety: every campaign
// fingerprint is pinned to the streams rand.New(rand.NewSource(seed))
// produced, so Seed, Uint64, and Int63 are line-for-line ports of
// GOROOT/src/math/rand/rng.go and TestFibSourceMatchesMathRand
// differentially checks long streams for many seeds against the real
// thing on every test run. fibSource implements rand.Source64, so
// rand.New wraps it exactly as it wraps the stdlib source and every
// derived distribution (Float64, ExpFloat64, Int63n, Intn) follows the
// same draw sequence.
type fibSource struct {
	tap  int
	feed int
	vec  [fibLen]int64
}

const (
	fibLen   = 607
	fibTap   = 273
	fibMask  = 1<<63 - 1
	int32max = 1<<31 - 1
)

// newFibSource returns a source in the exact state rand.NewSource(seed)
// would be in.
func newFibSource(seed int64) *fibSource {
	s := &fibSource{}
	s.Seed(seed)
	return s
}

// seedrand advances the Lehmer seeding generator
// x[n+1] = 48271 * x[n] mod (2^31 - 1) without overflow (Schrage).
func seedrand(x int32) int32 {
	const (
		a = 48271
		q = 44488
		r = 3399
	)
	hi := x / q
	lo := x % q
	x = a*lo - r*hi
	if x < 0 {
		x += int32max
	}
	return x
}

// Seed initializes the register to the deterministic state math/rand
// derives from seed.
func (s *fibSource) Seed(seed int64) {
	s.tap = 0
	s.feed = fibLen - fibTap

	seed = seed % int32max
	if seed < 0 {
		seed += int32max
	}
	if seed == 0 {
		seed = 89482311
	}

	x := int32(seed)
	for i := -20; i < fibLen; i++ {
		x = seedrand(x)
		if i >= 0 {
			var u int64
			u = int64(x) << 40
			x = seedrand(x)
			u ^= int64(x) << 20
			x = seedrand(x)
			u ^= int64(x)
			u ^= rngCooked[i]
			s.vec[i] = u
		}
	}
}

// Uint64 returns the next raw 64-bit register sum.
func (s *fibSource) Uint64() uint64 {
	s.tap--
	if s.tap < 0 {
		s.tap += fibLen
	}
	s.feed--
	if s.feed < 0 {
		s.feed += fibLen
	}
	x := s.vec[s.feed] + s.vec[s.tap]
	s.vec[s.feed] = x
	return uint64(x)
}

// Int63 returns the next non-negative 63-bit integer.
func (s *fibSource) Int63() int64 {
	return int64(s.Uint64() & fibMask)
}

// clone returns an independent copy: the two sources produce identical
// streams from this state on and never influence each other.
func (s *fibSource) clone() *fibSource {
	c := *s
	return &c
}
