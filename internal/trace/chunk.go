package trace

import "secmem/internal/cpu"

// Chunked generation splits an instruction budget into spans that can be
// materialized concurrently while remaining byte-identical to a serial
// Generator.Next walk. The scheme is clone-and-replay:
//
//   - a serial stepper owns the canonical generator; at each chunk
//     boundary it takes an O(1) Clone (the chunk's starting state) and
//     then advances the canonical state through the chunk with
//     AdvanceChunk — the cheap serial state-replay that is the scheme's
//     only serial fraction;
//   - replay workers call GenerateChunk on the snapshots, in parallel,
//     to materialize each chunk's events;
//   - the consumer splices chunks in index order, which by construction
//     reproduces the serial stream exactly (pinned by the differential
//     test over all 21 profiles and chunk sizes {1, 64, budget}).
//
// Chunks are denominated in instructions, like the budget itself: an
// event accounts for its NonMemBefore prefix plus itself, and the event
// that crosses the budget is included (its tail is cut by the CPU loop),
// mirroring the serial routing accounting bit for bit.

// AdvanceChunk advances g through one chunk: it consumes events until at
// least chunkInstr instructions are covered or the remaining budget is
// exhausted, whichever comes first. It returns the number of events
// consumed, the instructions they account for (the crossing event
// contributes only the remaining budget, exactly like the serial cutoff),
// and whether the budget was exhausted — after final, the walk is done
// and no further chunks exist. chunkInstr must be at least 1; remaining
// may be zero, in which case the chunk is empty and final.
func AdvanceChunk(g *Generator, chunkInstr, remaining uint64) (events int, instr uint64, final bool) {
	if chunkInstr == 0 {
		panic("trace: AdvanceChunk with zero chunk size")
	}
	for instr < chunkInstr {
		if instr >= remaining {
			return events, instr, true
		}
		ev, ok := g.Next()
		if !ok {
			return events, instr, true
		}
		events++
		n := uint64(ev.NonMemBefore)
		if n >= remaining-instr {
			// The budget ends inside this event's non-memory prefix; the
			// event is part of the chunk (the router delivers it and the
			// CPU loop accounts the partial tail), and the walk is over.
			return events, remaining, true
		}
		instr += n + 1
	}
	return events, instr, instr >= remaining
}

// GenerateChunk materializes a chunk from its starting snapshot: it
// appends exactly events events produced by snap.Next to dst and returns
// the extended slice. Running it on a Clone taken where AdvanceChunk
// started yields the same events the canonical walk consumed.
func GenerateChunk(snap *Generator, events int, dst []cpu.Event) []cpu.Event {
	for i := 0; i < events; i++ {
		ev, ok := snap.Next()
		if !ok {
			break
		}
		dst = append(dst, ev)
	}
	return dst
}
