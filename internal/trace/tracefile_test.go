package trace

import (
	"bytes"
	"errors"
	"testing"

	"secmem/internal/cpu"
)

func TestTraceRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	gen := NewGenerator(Get("mcf"), 7)
	if err := Record(&buf, gen, 20000); err != nil {
		t.Fatal(err)
	}
	// Replay must equal a fresh generation, event for event.
	src, err := NewFileSource(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	ref := NewGenerator(Get("mcf"), 7)
	for i := 0; i < 20000; i++ {
		got, ok := src.Next()
		if !ok {
			t.Fatalf("trace ended early at %d: %v", i, src.Err())
		}
		want, _ := ref.Next()
		if got != want {
			t.Fatalf("event %d: %+v != %+v", i, got, want)
		}
	}
	if _, ok := src.Next(); ok {
		t.Error("trace longer than recorded")
	}
	if src.Err() != nil {
		t.Errorf("clean EOF reported error: %v", src.Err())
	}
}

func TestTraceCompactness(t *testing.T) {
	// Streaming deltas must compress well below the naive 13+ bytes/event.
	var buf bytes.Buffer
	gen := NewGenerator(Get("swim"), 1)
	if err := Record(&buf, gen, 10000); err != nil {
		t.Fatal(err)
	}
	perEvent := float64(buf.Len()) / 10000
	if perEvent > 8 {
		t.Errorf("trace uses %.1f bytes/event, want < 8", perEvent)
	}
}

func TestTraceBadHeader(t *testing.T) {
	if _, err := NewFileSource(bytes.NewReader([]byte("NOPE1234"))); !errors.Is(err, ErrBadTrace) {
		t.Errorf("bad magic: err = %v", err)
	}
	if _, err := NewFileSource(bytes.NewReader([]byte("SM"))); !errors.Is(err, ErrBadTrace) {
		t.Errorf("short header: err = %v", err)
	}
	bad := append([]byte{}, Magic[:]...)
	bad = append(bad, 99) // future version
	if _, err := NewFileSource(bytes.NewReader(bad)); !errors.Is(err, ErrBadTrace) {
		t.Errorf("bad version: err = %v", err)
	}
}

func TestTraceTruncation(t *testing.T) {
	var buf bytes.Buffer
	gen := NewGenerator(Get("gcc"), 3)
	if err := Record(&buf, gen, 100); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()-1]
	src, err := NewFileSource(bytes.NewReader(cut))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		if _, ok := src.Next(); !ok {
			break
		}
		n++
	}
	if n >= 100 {
		t.Errorf("read %d events from truncated trace", n)
	}
	if src.Err() == nil {
		t.Error("truncation not reported")
	}
}

func TestWriterEventCount(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := w.Write(cpu.Event{Addr: uint64(i) * 64}); err != nil {
			t.Fatal(err)
		}
	}
	if w.Events() != 5 {
		t.Errorf("events = %d", w.Events())
	}
}

func TestSummarize(t *testing.T) {
	gen := NewGenerator(Get("twolf"), 5)
	sum := Summarize(gen, 30000)
	if sum.Events != 30000 {
		t.Fatalf("events = %d", sum.Events)
	}
	if sum.Instructions <= sum.Events {
		t.Error("instructions not counting gaps")
	}
	if f := sum.MemFraction(); f < 0.2 || f > 0.4 {
		t.Errorf("mem fraction = %.2f", f)
	}
	if sum.Stores == 0 || sum.Dependent == 0 {
		t.Error("store/dependent counts empty")
	}
	if sum.UniqueBlocks == 0 || sum.MaxAddr <= sum.MinAddr {
		t.Errorf("footprint wrong: %+v", sum)
	}
	var empty Summary
	if empty.MemFraction() != 0 {
		t.Error("empty summary fraction nonzero")
	}
}

func TestSummaryMatchesAcrossReplay(t *testing.T) {
	var buf bytes.Buffer
	if err := Record(&buf, NewGenerator(Get("art"), 9), 5000); err != nil {
		t.Fatal(err)
	}
	live := Summarize(NewGenerator(Get("art"), 9), 5000)
	src, _ := NewFileSource(bytes.NewReader(buf.Bytes()))
	replay := Summarize(src, 5000)
	if live != replay {
		t.Errorf("summaries differ:\nlive   %+v\nreplay %+v", live, replay)
	}
}
