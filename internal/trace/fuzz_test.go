package trace

import (
	"bytes"
	"testing"

	"secmem/internal/cpu"
)

// FuzzFileSource feeds arbitrary bytes to the trace reader: it must never
// panic, and must either parse cleanly or report an error — silent
// corruption is the only wrong answer.
func FuzzFileSource(f *testing.F) {
	// Seed with a real trace and a few mutations.
	var buf bytes.Buffer
	if err := Record(&buf, NewGenerator(Get("gcc"), 1), 50); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte("SMTR"))
	f.Add(append(append([]byte{}, Magic[:]...), FormatVersion, 0xFF, 0xFF, 0xFF))
	f.Fuzz(func(t *testing.T, data []byte) {
		src, err := NewFileSource(bytes.NewReader(data))
		if err != nil {
			return // malformed header rejected: fine
		}
		for i := 0; i < 10000; i++ {
			if _, ok := src.Next(); !ok {
				break
			}
		}
	})
}

// FuzzRoundTrip checks that any event the writer accepts replays exactly.
func FuzzRoundTrip(f *testing.F) {
	f.Add(uint64(0x1000), uint32(5), true, false)
	f.Add(uint64(0), uint32(0), false, true)
	f.Add(^uint64(0)>>1, uint32(1<<20), true, true)
	f.Fuzz(func(t *testing.T, addr uint64, gap uint32, write, dep bool) {
		var buf bytes.Buffer
		w, err := NewWriter(&buf)
		if err != nil {
			t.Fatal(err)
		}
		in := []struct {
			addr uint64
			gap  uint32
		}{{addr, gap}, {addr / 2, gap / 3}, {addr + 64, 0}}
		for _, e := range in {
			if err := w.Write(eventOf(e.addr, e.gap, write, dep)); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		src, err := NewFileSource(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		for i, e := range in {
			got, ok := src.Next()
			if !ok {
				t.Fatalf("event %d missing: %v", i, src.Err())
			}
			want := eventOf(e.addr, e.gap, write, dep)
			if got != want {
				t.Fatalf("event %d: %+v != %+v", i, got, want)
			}
		}
	})
}

func eventOf(addr uint64, gap uint32, write, dep bool) cpu.Event {
	return cpu.Event{Addr: addr, NonMemBefore: gap, Write: write, Dependent: dep}
}
