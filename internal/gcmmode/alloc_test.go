package gcmmode

import (
	"testing"

	"secmem/internal/aescipher"
)

// TestHotPathsZeroAlloc pins the per-block operations the memory pipeline
// pays on every transfer — pad generation, counter-mode encryption, MAC
// generation and verification — to zero heap allocations per call. A
// regression here multiplies straight into campaign wall time, so it is a
// test rather than a benchmark observation.
func TestHotPathsZeroAlloc(t *testing.T) {
	p := newTestPadGen()
	ct := make([]byte, MemBlockSize)
	pt := make([]byte, MemBlockSize)
	tag, n := p.MAC(ct, 0x40, 1, 64)
	mac := tag[:n]

	cases := []struct {
		name string
		fn   func()
	}{
		{"BlockPad", func() { p.BlockPad(0x40, 1) }},
		{"BlockPads", func() {
			var pads [8 * MemBlockSize]byte
			var ctrs [8]uint64
			p.BlockPads(pads[:], 0x40, ctrs[:])
		}},
		{"EncryptBlock", func() { p.EncryptBlock(ct, pt, 0x40, 1) }},
		{"AuthPad", func() { p.AuthPad(0x40, 1) }},
		{"MAC", func() { p.MAC(ct, 0x40, 1, 64) }},
		{"Verify", func() { p.Verify(ct, 0x40, 1, mac) }},
	}
	for _, c := range cases {
		if allocs := testing.AllocsPerRun(100, c.fn); allocs != 0 {
			t.Errorf("%s allocates %.1f objects/op, want 0", c.name, allocs)
		}
	}
}

// TestSealOpenReuseBuffers verifies the dst-append contract: with a
// pre-sized destination, Seal and Open stay allocation-free.
func TestSealOpenReuseBuffers(t *testing.T) {
	a := NewAEAD(aescipher.MustNew(make([]byte, 16)))
	nonce := make([]byte, NonceSize)
	pt := make([]byte, 64)
	sealed := make([]byte, 0, len(pt)+TagSize)
	opened := make([]byte, 0, len(pt))
	sealed = a.Seal(sealed, nonce, pt, nil)
	if allocs := testing.AllocsPerRun(100, func() {
		sealed = a.Seal(sealed[:0], nonce, pt, nil)
	}); allocs != 0 {
		t.Errorf("Seal with reused dst allocates %.1f objects/op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		out, err := a.Open(opened[:0], nonce, sealed, nil)
		if err != nil {
			t.Fatal(err)
		}
		opened = out
	}); allocs != 0 {
		t.Errorf("Open with reused dst allocates %.1f objects/op, want 0", allocs)
	}
}

// TestConstructorsAllocateOnlyTheReceiver pins NewPadGen and NewAEAD to a
// single allocation each (the returned struct): the all-zero block and the
// subkey H now live in stack arrays instead of two per-constructor slices.
func TestConstructorsAllocateOnlyTheReceiver(t *testing.T) {
	cipher := aescipher.MustNew(make([]byte, 16))
	if allocs := testing.AllocsPerRun(100, func() { NewPadGen(cipher, 0, 1) }); allocs > 1 {
		t.Errorf("NewPadGen allocates %.1f objects/op, want <= 1", allocs)
	}
	if allocs := testing.AllocsPerRun(100, func() { NewAEAD(cipher) }); allocs > 1 {
		t.Errorf("NewAEAD allocates %.1f objects/op, want <= 1", allocs)
	}
}
