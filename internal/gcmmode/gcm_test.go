package gcmmode

import (
	"bytes"
	"encoding/hex"
	"testing"
	"testing/quick"

	"secmem/internal/aescipher"
)

func unhex(t *testing.T, s string) []byte {
	t.Helper()
	b, err := hex.DecodeString(s)
	if err != nil {
		t.Fatalf("bad hex %q: %v", s, err)
	}
	return b
}

// NIST / McGrew–Viega GCM test cases 1-4 (AES-128, 96-bit IV).
var gcmVectors = []struct {
	key, iv, pt, aad, ct, tag string
}{
	{
		key: "00000000000000000000000000000000",
		iv:  "000000000000000000000000",
		tag: "58e2fccefa7e3061367f1d57a4e7455a",
	},
	{
		key: "00000000000000000000000000000000",
		iv:  "000000000000000000000000",
		pt:  "00000000000000000000000000000000",
		ct:  "0388dace60b6a392f328c2b971b2fe78",
		tag: "ab6e47d42cec13bdf53a67b21257bddf",
	},
	{
		key: "feffe9928665731c6d6a8f9467308308",
		iv:  "cafebabefacedbaddecaf888",
		pt: "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72" +
			"1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b391aafd255",
		ct: "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e" +
			"21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091473f5985",
		tag: "4d5c2af327cd64a62cf35abd2ba6fab4",
	},
	{
		key: "feffe9928665731c6d6a8f9467308308",
		iv:  "cafebabefacedbaddecaf888",
		pt: "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72" +
			"1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b39",
		aad: "feedfacedeadbeeffeedfacedeadbeefabaddad2",
		ct: "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e" +
			"21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091",
		tag: "5bc94fbc3221a5db94fae95ae7121a47",
	},
}

func TestGCMNISTVectors(t *testing.T) {
	for i, v := range gcmVectors {
		a := NewAEAD(aescipher.MustNew(unhex(t, v.key)))
		sealed := a.Seal(nil, unhex(t, v.iv), unhex(t, v.pt), unhex(t, v.aad))
		wantCT := unhex(t, v.ct)
		wantTag := unhex(t, v.tag)
		if !bytes.Equal(sealed[:len(wantCT)], wantCT) {
			t.Errorf("case %d: ct = %x, want %x", i+1, sealed[:len(wantCT)], wantCT)
		}
		if !bytes.Equal(sealed[len(wantCT):], wantTag) {
			t.Errorf("case %d: tag = %x, want %x", i+1, sealed[len(wantCT):], wantTag)
		}
		pt, err := a.Open(nil, unhex(t, v.iv), sealed, unhex(t, v.aad))
		if err != nil {
			t.Errorf("case %d: Open failed: %v", i+1, err)
		} else if !bytes.Equal(pt, unhex(t, v.pt)) {
			t.Errorf("case %d: Open = %x, want %x", i+1, pt, v.pt)
		}
	}
}

func TestOpenRejectsTamper(t *testing.T) {
	a := NewAEAD(aescipher.MustNew(make([]byte, 16)))
	nonce := make([]byte, 12)
	pt := []byte("sixteen byte msg")
	sealed := a.Seal(nil, nonce, pt, nil)
	for i := range sealed {
		bad := append([]byte(nil), sealed...)
		bad[i] ^= 0x40
		if _, err := a.Open(nil, nonce, bad, nil); err == nil {
			t.Fatalf("tamper at byte %d not detected", i)
		}
	}
	if _, err := a.Open(nil, nonce, sealed, []byte("x")); err == nil {
		t.Fatal("AAD mismatch not detected")
	}
}

func newTestPadGen() *PadGen {
	key := make([]byte, 16)
	for i := range key {
		key[i] = byte(i*31 + 7)
	}
	return NewAES128PadGen(key, 0xA5, 0x5A)
}

func TestEncryptBlockRoundTrip(t *testing.T) {
	p := newTestPadGen()
	f := func(data [64]byte, addrSeed uint32, counter uint64) bool {
		addr := uint64(addrSeed) << 6
		var ct, back [64]byte
		p.EncryptBlock(ct[:], data[:], addr, counter)
		p.EncryptBlock(back[:], ct[:], addr, counter)
		return back == data
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPadDependsOnAddressAndCounter(t *testing.T) {
	p := newTestPadGen()
	base := p.BlockPad(0x1000, 5)
	if p.BlockPad(0x1040, 5) == base {
		t.Error("pad identical for different addresses")
	}
	if p.BlockPad(0x1000, 6) == base {
		t.Error("pad identical for different counters (pad reuse!)")
	}
	if p.BlockPad(0x1000, 5) != base {
		t.Error("pad not deterministic")
	}
}

func TestChunkPadsDistinct(t *testing.T) {
	p := newTestPadGen()
	pad := p.BlockPad(0x2000, 1)
	for i := 0; i < BlockChunks; i++ {
		for j := i + 1; j < BlockChunks; j++ {
			if bytes.Equal(pad[i*16:i*16+16], pad[j*16:j*16+16]) {
				t.Errorf("chunks %d and %d share a pad", i, j)
			}
		}
	}
}

func TestAuthPadDistinctFromEncryptionPads(t *testing.T) {
	p := newTestPadGen()
	enc := p.BlockPad(0x3000, 9)
	auth := p.AuthPad(0x3000, 9)
	for i := 0; i < BlockChunks; i++ {
		if bytes.Equal(enc[i*16:i*16+16], auth[:]) {
			t.Errorf("auth pad equals encryption chunk %d", i)
		}
	}
}

func TestMACDetectsTampering(t *testing.T) {
	p := newTestPadGen()
	ct := make([]byte, 64)
	for i := range ct {
		ct[i] = byte(i)
	}
	const addr, ctr = 0x8040, 17
	for _, bits := range []int{32, 64, 128} {
		tag, n := p.MAC(ct, addr, ctr, bits)
		if n != bits/8 {
			t.Fatalf("MAC length %d for %d bits", n, bits)
		}
		mac := tag[:n]
		if !p.Verify(ct, addr, ctr, mac) {
			t.Fatalf("%d-bit MAC does not verify its own output", bits)
		}
		bad := append([]byte(nil), ct...)
		bad[5] ^= 1
		if p.Verify(bad, addr, ctr, mac) {
			t.Errorf("%d-bit MAC accepted tampered ciphertext", bits)
		}
		if p.Verify(ct, addr+64, ctr, mac) {
			t.Errorf("%d-bit MAC accepted relocated block (splice attack)", bits)
		}
		if p.Verify(ct, addr, ctr+1, mac) {
			t.Errorf("%d-bit MAC accepted wrong counter (counter replay)", bits)
		}
	}
}

// The Section 4.3 scenario: if the attacker rolls a counter back, the MAC
// computed with the rolled-back counter must not match the stored MAC.
func TestCounterRollbackChangesMAC(t *testing.T) {
	p := newTestPadGen()
	pt := make([]byte, 64)
	copy(pt, "secret data that must stay secret")
	var ct1, ct2 [64]byte
	p.EncryptBlock(ct1[:], pt, 0x100, 7)
	p.EncryptBlock(ct2[:], pt, 0x100, 8)
	t1, n1 := p.MAC(ct1[:], 0x100, 7, 64)
	t2, n2 := p.MAC(ct2[:], 0x100, 8, 64)
	m1, m2 := t1[:n1], t2[:n2]
	if bytes.Equal(m1, m2) {
		t.Error("MACs equal across counter bump")
	}
	// Replaying old ciphertext+MAC against the new counter fails.
	if p.Verify(ct1[:], 0x100, 8, m1) {
		t.Error("replayed (ct, MAC) accepted under advanced counter")
	}
}

func TestSeedLayoutSeparatesFields(t *testing.T) {
	a := MakeSeed(0x40, 0, RoleEncrypt, 1, 0)
	b := MakeSeed(0x80, 0, RoleEncrypt, 1, 0)
	c := MakeSeed(0x40, 1, RoleEncrypt, 1, 0)
	d := MakeSeed(0x40, 0, RoleAuth, 1, 0)
	e := MakeSeed(0x40, 0, RoleEncrypt, 2, 0)
	seeds := []Seed{a, b, c, d, e}
	for i := range seeds {
		for j := i + 1; j < len(seeds); j++ {
			if seeds[i] == seeds[j] {
				t.Errorf("seeds %d and %d collide: %x", i, j, seeds[i])
			}
		}
	}
}

func TestMACBadSizePanics(t *testing.T) {
	p := newTestPadGen()
	defer func() {
		if recover() == nil {
			t.Fatal("48-bit MAC did not panic")
		}
	}()
	p.MAC(make([]byte, 64), 0, 0, 48)
}

func BenchmarkBlockPad(b *testing.B) {
	p := newTestPadGen()
	b.SetBytes(64)
	for i := 0; i < b.N; i++ {
		p.BlockPad(uint64(i)<<6, uint64(i))
	}
}

func BenchmarkMAC64(b *testing.B) {
	p := newTestPadGen()
	ct := make([]byte, 64)
	b.SetBytes(64)
	for i := 0; i < b.N; i++ {
		p.MAC(ct, 0x40, uint64(i), 64)
	}
}

// TestBlockPadsMatchesBlockPad pins the batched transfer path to the
// per-block one: the seed template patched across a run must reproduce
// exactly the pads MakeSeed assembles from scratch, for transfers crossing
// counter values, address carries, and single-block degenerate runs.
func TestBlockPadsMatchesBlockPad(t *testing.T) {
	p := newTestPadGen()
	cases := []struct {
		name string
		base uint64
		ctrs []uint64
	}{
		{"single", 0x40, []uint64{7}},
		{"page", 0x1000, []uint64{0, 1, 2, 3, 1 << 40, 0x00ffffffffffffff, 9, 10}},
		{"addr-carry", (1 << 14) - 2*64, []uint64{5, 6, 7, 8}},
		{"high-addr", (1 << 47) - 64, []uint64{1, 2}},
		{"empty", 0x40, nil},
	}
	for _, c := range cases {
		got := make([]byte, len(c.ctrs)*MemBlockSize)
		p.BlockPads(got, c.base, c.ctrs)
		for i, ctr := range c.ctrs {
			want := p.BlockPad(c.base+uint64(i)*MemBlockSize, ctr)
			if !bytes.Equal(got[i*MemBlockSize:(i+1)*MemBlockSize], want[:]) {
				t.Errorf("%s: block %d pad differs from BlockPad", c.name, i)
			}
		}
	}
}

// TestBlockPadsShortDstPanics pins the output-size contract.
func TestBlockPadsShortDstPanics(t *testing.T) {
	p := newTestPadGen()
	defer func() {
		if recover() == nil {
			t.Fatal("short dst did not panic")
		}
	}()
	p.BlockPads(make([]byte, MemBlockSize), 0, make([]uint64, 2))
}

func BenchmarkBlockPads(b *testing.B) {
	p := newTestPadGen()
	// One encryption page per call: the re-encryption transfer shape.
	const blocks = 64
	pads := make([]byte, blocks*MemBlockSize)
	ctrs := make([]uint64, blocks)
	for i := range ctrs {
		ctrs[i] = uint64(i) * 3
	}
	b.SetBytes(blocks * MemBlockSize)
	for i := 0; i < b.N; i++ {
		p.BlockPads(pads, uint64(i%1024)<<12, ctrs)
	}
}
