package gcmmode

import (
	"bytes"
	stdaes "crypto/aes"
	stdcipher "crypto/cipher"
	"crypto/sha1"
	"math/rand"
	"testing"
	"testing/quick"

	"secmem/internal/aescipher"
	"secmem/internal/sha1sum"
)

// These differential tests cross-check the from-scratch crypto against the
// standard library's implementations on random inputs. The production code
// never imports crypto/*; the stdlib is used here purely as an independent
// oracle.

func TestAESMatchesStdlib(t *testing.T) {
	f := func(key [16]byte, block [16]byte) bool {
		ours := aescipher.MustNew(key[:])
		std, err := stdaes.NewCipher(key[:])
		if err != nil {
			return false
		}
		var a, b [16]byte
		ours.Encrypt(a[:], block[:])
		std.Encrypt(b[:], block[:])
		if a != b {
			return false
		}
		ours.Decrypt(a[:], a[:])
		return a == block
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestAES256MatchesStdlib(t *testing.T) {
	f := func(key [32]byte, block [16]byte) bool {
		ours := aescipher.MustNew(key[:])
		std, _ := stdaes.NewCipher(key[:])
		var a, b [16]byte
		ours.Encrypt(a[:], block[:])
		std.Encrypt(b[:], block[:])
		return a == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestGCMSealMatchesStdlib(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 50; i++ {
		key := make([]byte, 16)
		nonce := make([]byte, 12)
		rng.Read(key)
		rng.Read(nonce)
		pt := make([]byte, rng.Intn(200))
		aad := make([]byte, rng.Intn(64))
		rng.Read(pt)
		rng.Read(aad)

		ours := NewAEAD(aescipher.MustNew(key))
		got := ours.Seal(nil, nonce, pt, aad)

		block, _ := stdaes.NewCipher(key)
		std, _ := stdcipher.NewGCM(block)
		want := std.Seal(nil, nonce, pt, aad)

		if !bytes.Equal(got, want) {
			t.Fatalf("case %d: Seal mismatch\nours %x\nstd  %x", i, got, want)
		}
		// And our Open accepts the stdlib's output.
		back, err := ours.Open(nil, nonce, want, aad)
		if err != nil || !bytes.Equal(back, pt) {
			t.Fatalf("case %d: Open of stdlib ciphertext failed: %v", i, err)
		}
	}
}

func TestSHA1MatchesStdlib(t *testing.T) {
	f := func(data []byte) bool {
		ours := sha1sum.Sum20(data)
		std := sha1.Sum(data)
		return ours == std
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
