// Package merkle implements the K-ary Merkle authentication tree of Section
// 4.3: the leaf level covers program data *and* the direct counters used to
// encrypt it (so counter replay is detected), interior nodes are blocks of
// MACs authenticated with derivative counters, and the root MAC lives in an
// on-chip register out of the attacker's reach.
//
// The package provides the tree geometry (address mapping between protected
// blocks and the MAC blocks that cover them) and the functional root
// machinery; the timing walk (parallel or sequential level authentication)
// lives in the core package, which owns the caches and engines the walk
// touches.
package merkle

import "fmt"

// BlockSize is the block granularity of the tree.
const BlockSize = 64

// Geometry describes the tree's address layout.
type Geometry struct {
	// LeafBytes is the size of the protected leaf region: data plus direct
	// counters, starting at address 0.
	LeafBytes uint64
	// MacBits is the per-MAC size (32, 64, or 128 bits).
	MacBits int
	// Arity is how many child blocks one MAC block covers (512/MacBits).
	Arity uint64
	// Levels lists each tree level's base address and block count, level 0
	// covering the leaves.
	Levels []Level
}

// Level is one tier of MAC blocks.
type Level struct {
	Base   uint64
	Blocks uint64
}

// NewGeometry lays out a tree covering leafBytes of protected space with
// macBits-wide MACs, placing MAC blocks starting at macBase.
func NewGeometry(leafBytes, macBase uint64, macBits int) *Geometry {
	switch macBits {
	case 32, 64, 128:
	default:
		panic(fmt.Sprintf("merkle: MAC bits %d not in {32,64,128}", macBits))
	}
	if leafBytes == 0 || leafBytes%BlockSize != 0 || macBase < leafBytes {
		panic("merkle: invalid leaf region")
	}
	g := &Geometry{
		LeafBytes: leafBytes,
		MacBits:   macBits,
		Arity:     uint64(512 / macBits),
	}
	covered := leafBytes / BlockSize // blocks to cover at the next level
	base := macBase
	for covered > 1 {
		blocks := (covered + g.Arity - 1) / g.Arity
		g.Levels = append(g.Levels, Level{Base: base, Blocks: blocks})
		base += blocks * BlockSize
		covered = blocks
	}
	if len(g.Levels) == 0 {
		// A single-leaf region still needs one MAC block so the root
		// register has something to cover.
		g.Levels = append(g.Levels, Level{Base: base, Blocks: 1})
	}
	return g
}

// NumLevels is the number of MAC levels below the on-chip root.
func (g *Geometry) NumLevels() int { return len(g.Levels) }

// LevelName is the canonical metric/trace name for a tree level: "leaf" for
// -1 (the LevelOf convention for leaves), otherwise "levelN". Observability
// names like "merkle.level2.fetch" are built from it.
func LevelName(level int) string {
	if level < 0 {
		return "leaf"
	}
	return fmt.Sprintf("level%d", level)
}

// End returns the first address past the MAC region.
func (g *Geometry) End() uint64 {
	top := g.Levels[len(g.Levels)-1]
	return top.Base + top.Blocks*BlockSize
}

// MacBytes is the total MAC storage, for overhead reporting (the paper's
// "12-level tree = 33% overhead" style numbers).
func (g *Geometry) MacBytes() uint64 {
	var total uint64
	for _, l := range g.Levels {
		total += l.Blocks * BlockSize
	}
	return total
}

// LevelOf classifies a block address: -1 for leaves, otherwise the MAC
// level index. Panics on addresses outside the tree.
func (g *Geometry) LevelOf(addr uint64) int {
	if addr < g.LeafBytes {
		return -1
	}
	for i, l := range g.Levels {
		if addr >= l.Base && addr < l.Base+l.Blocks*BlockSize {
			return i
		}
	}
	panic(fmt.Sprintf("merkle: address %#x outside tree", addr))
}

// Parent returns the MAC block covering addr and the MAC's slot within it.
// ok is false when addr is the top-level block, whose MAC is the on-chip
// root register.
func (g *Geometry) Parent(addr uint64) (macBlock uint64, slot int, ok bool) {
	lvl := g.LevelOf(addr)
	var idx uint64
	if lvl == -1 {
		idx = addr / BlockSize
	} else {
		idx = (addr - g.Levels[lvl].Base) / BlockSize
	}
	next := lvl + 1
	if next >= len(g.Levels) {
		return 0, int(idx % g.Arity), false
	}
	l := g.Levels[next]
	return l.Base + idx/g.Arity*BlockSize, int(idx % g.Arity), true
}

// Chain returns the MAC blocks from the leaf's parent up to (and including)
// the top-level block: the path that must be authenticated on a miss.
func (g *Geometry) Chain(leafAddr uint64) []uint64 {
	var path []uint64
	addr := leafAddr
	for {
		mac, _, ok := g.Parent(addr)
		if !ok {
			return path
		}
		path = append(path, mac)
		addr = mac
	}
}

// MacOffset returns the byte range [lo, hi) of a MAC slot within its block.
func (g *Geometry) MacOffset(slot int) (lo, hi int) {
	w := g.MacBits / 8
	return slot * w, (slot + 1) * w
}

// Root is the on-chip register holding the MAC of the top-level tree block.
// It is the only piece of authentication state the attacker can never
// touch; everything else derives its trust from it.
type Root struct {
	mac   []byte
	valid bool
}

// Set stores the root MAC.
func (r *Root) Set(mac []byte) {
	r.mac = append(r.mac[:0], mac...)
	r.valid = true
}

// Get returns the root MAC and whether one has been set.
func (r *Root) Get() ([]byte, bool) { return r.mac, r.valid }
