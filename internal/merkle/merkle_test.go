package merkle

import (
	"testing"
	"testing/quick"
)

func TestGeometrySmall(t *testing.T) {
	// 64 leaf blocks (4 KB), 64-bit MACs -> arity 8: levels of 8 and 1.
	g := NewGeometry(4096, 4096, 64)
	if g.Arity != 8 {
		t.Fatalf("arity = %d", g.Arity)
	}
	if g.NumLevels() != 2 {
		t.Fatalf("levels = %d, want 2", g.NumLevels())
	}
	if g.Levels[0].Blocks != 8 || g.Levels[1].Blocks != 1 {
		t.Errorf("level blocks = %+v", g.Levels)
	}
	if g.Levels[0].Base != 4096 {
		t.Errorf("level 0 base = %#x", g.Levels[0].Base)
	}
	if g.Levels[1].Base != 4096+8*64 {
		t.Errorf("level 1 base = %#x", g.Levels[1].Base)
	}
	if g.MacBytes() != 9*64 {
		t.Errorf("mac bytes = %d", g.MacBytes())
	}
	if g.End() != 4096+9*64 {
		t.Errorf("end = %#x", g.End())
	}
}

func TestGeometryPaperScale(t *testing.T) {
	// 512 MB data + 64 MB counters of leaves, 64-bit MACs: the paper's
	// configuration. Verify level count is log8-ish and total overhead is
	// about 1/7 of the leaf space (sum of 1/8 + 1/64 + ...).
	leaf := uint64(512+64) << 20
	g := NewGeometry(leaf, leaf, 64)
	if g.NumLevels() != 8 {
		t.Errorf("levels = %d, want 8 for 9M leaf blocks at arity 8", g.NumLevels())
	}
	overhead := float64(g.MacBytes()) / float64(leaf)
	if overhead < 0.13 || overhead > 0.15 {
		t.Errorf("MAC overhead = %.3f, want ~1/7", overhead)
	}
}

func TestGeometry128BitMacs(t *testing.T) {
	// 128-bit MACs -> arity 4 -> deeper tree: paper notes "only four
	// 128-bit codes fit in a 64-byte block".
	g64 := NewGeometry(1<<20, 1<<20, 64)
	g128 := NewGeometry(1<<20, 1<<20, 128)
	if g128.Arity != 4 {
		t.Fatalf("arity = %d", g128.Arity)
	}
	if g128.NumLevels() <= g64.NumLevels() {
		t.Errorf("128-bit tree not deeper: %d vs %d", g128.NumLevels(), g64.NumLevels())
	}
	if g128.MacBytes() <= g64.MacBytes() {
		t.Error("128-bit tree not larger")
	}
}

func TestParentAndChain(t *testing.T) {
	g := NewGeometry(4096, 4096, 64)
	// Leaf block 9 (addr 576): parent MAC block index 9/8=1, slot 1.
	mac, slot, ok := g.Parent(576)
	if !ok || mac != 4096+64 || slot != 1 {
		t.Errorf("Parent(576) = (%#x, %d, %v)", mac, slot, ok)
	}
	// That level-0 block's parent is the single level-1 block, slot 1.
	mac2, slot2, ok := g.Parent(mac)
	if !ok || mac2 != g.Levels[1].Base || slot2 != 1 {
		t.Errorf("Parent(level0) = (%#x, %d, %v)", mac2, slot2, ok)
	}
	// The top block has no in-memory parent.
	_, slot3, ok := g.Parent(mac2)
	if ok {
		t.Error("top block reported an in-memory parent")
	}
	if slot3 != 0 {
		t.Errorf("top block root slot = %d", slot3)
	}
	chain := g.Chain(576)
	if len(chain) != 2 || chain[0] != mac || chain[1] != mac2 {
		t.Errorf("chain = %#v", chain)
	}
}

func TestLevelOf(t *testing.T) {
	g := NewGeometry(4096, 4096, 64)
	if g.LevelOf(0) != -1 || g.LevelOf(4095) != -1 {
		t.Error("leaf classification wrong")
	}
	if g.LevelOf(4096) != 0 {
		t.Error("level 0 classification wrong")
	}
	if g.LevelOf(g.Levels[1].Base) != 1 {
		t.Error("level 1 classification wrong")
	}
}

func TestLevelOfOutsidePanics(t *testing.T) {
	g := NewGeometry(4096, 4096, 64)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-tree address did not panic")
		}
	}()
	g.LevelOf(g.End())
}

func TestMacOffset(t *testing.T) {
	g := NewGeometry(4096, 4096, 64)
	lo, hi := g.MacOffset(3)
	if lo != 24 || hi != 32 {
		t.Errorf("MacOffset(3) = (%d, %d)", lo, hi)
	}
}

func TestChainTerminatesAndDescendsFromAnyLeaf(t *testing.T) {
	g := NewGeometry(1<<22, 1<<22, 32) // arity 16, 4 MB of leaves
	f := func(raw uint32) bool {
		leaf := (uint64(raw) % (1 << 22 / 64)) * 64
		chain := g.Chain(leaf)
		if len(chain) != g.NumLevels() {
			return false
		}
		// Each chain element must be at the next level up.
		for i, mac := range chain {
			if g.LevelOf(mac) != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSiblingLeavesShareParent(t *testing.T) {
	g := NewGeometry(1<<20, 1<<20, 64)
	// Blocks 0..7 share a level-0 MAC block; block 8 does not.
	p0, _, _ := g.Parent(0)
	p7, _, _ := g.Parent(7 * 64)
	p8, _, _ := g.Parent(8 * 64)
	if p0 != p7 {
		t.Error("siblings have different parents")
	}
	if p0 == p8 {
		t.Error("non-siblings share a parent")
	}
	// Slots within the parent are distinct.
	_, s0, _ := g.Parent(0)
	_, s7, _ := g.Parent(7 * 64)
	if s0 == s7 {
		t.Error("distinct children share a slot")
	}
}

func TestRootRegister(t *testing.T) {
	var r Root
	if _, ok := r.Get(); ok {
		t.Error("unset root reported valid")
	}
	r.Set([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	mac, ok := r.Get()
	if !ok || len(mac) != 8 || mac[0] != 1 {
		t.Errorf("root = (%x, %v)", mac, ok)
	}
	// Set must copy, not alias.
	src := []byte{9, 9}
	r.Set(src)
	src[0] = 0
	mac, _ = r.Get()
	if mac[0] != 9 {
		t.Error("Set aliased caller's slice")
	}
}

func TestBadGeometryPanics(t *testing.T) {
	for _, tc := range []struct {
		name               string
		leafBytes, macBase uint64
		bits               int
	}{
		{"bits", 4096, 4096, 48},
		{"empty", 0, 0, 64},
		{"unaligned", 100, 4096, 64},
		{"overlap", 4096, 1024, 64},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", tc.name)
				}
			}()
			NewGeometry(tc.leafBytes, tc.macBase, tc.bits)
		}()
	}
}

func TestLevelName(t *testing.T) {
	cases := []struct {
		level int
		want  string
	}{
		{-1, "leaf"},
		{0, "level0"},
		{2, "level2"},
		{11, "level11"},
	}
	for _, c := range cases {
		if got := LevelName(c.level); got != c.want {
			t.Errorf("LevelName(%d) = %q, want %q", c.level, got, c.want)
		}
	}
}
