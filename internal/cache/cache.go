// Package cache implements the set-associative, write-back, LRU cache model
// used for the L1 data cache, the unified L2, and the counter cache
// (sequence-number cache) of the simulated secure processor.
//
// The model tracks presence, dirtiness, and replacement order only; actual
// data bytes live in the functional layer of the memory controller. That
// split keeps timing simulation fast while letting functional mode reuse the
// same presence/dirty decisions the timing model makes.
package cache

import (
	"fmt"

	"secmem/internal/obsv"
)

// Config describes a cache's geometry.
type Config struct {
	Name       string
	SizeBytes  int
	Ways       int
	BlockBytes int
	// LatencyCycles is the access (hit) latency charged by callers; the
	// cache itself is a zero-time structural model.
	LatencyCycles uint64
}

// Validate checks the geometry for internal consistency.
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.Ways <= 0 || c.BlockBytes <= 0 {
		return fmt.Errorf("cache %s: nonpositive geometry %+v", c.Name, c)
	}
	if c.BlockBytes&(c.BlockBytes-1) != 0 {
		return fmt.Errorf("cache %s: block size %d not a power of two", c.Name, c.BlockBytes)
	}
	if c.SizeBytes%(c.Ways*c.BlockBytes) != 0 {
		return fmt.Errorf("cache %s: size %d not divisible by way*block", c.Name, c.SizeBytes)
	}
	sets := c.SizeBytes / (c.Ways * c.BlockBytes)
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache %s: set count %d not a power of two", c.Name, sets)
	}
	return nil
}

// Eviction describes a block displaced by a fill.
type Eviction struct {
	Addr  uint64 // block-aligned address of the victim
	Dirty bool   // victim needs a write-back
}

// Stats accumulates access statistics.
type Stats struct {
	Reads       uint64
	Writes      uint64
	ReadMisses  uint64
	WriteMisses uint64
	Fills       uint64
	Evictions   uint64
	DirtyEvicts uint64
}

// Accesses is total reads+writes.
func (s Stats) Accesses() uint64 { return s.Reads + s.Writes }

// Misses is total read+write misses.
func (s Stats) Misses() uint64 { return s.ReadMisses + s.WriteMisses }

// HitRate returns hits/accesses, or 1 if there were no accesses.
func (s Stats) HitRate() float64 {
	a := s.Accesses()
	if a == 0 {
		return 1
	}
	return float64(a-s.Misses()) / float64(a)
}

type line struct {
	tag    uint64
	valid  bool
	dirty  bool
	pinned bool
	lru    uint64
}

// Cache is a set-associative write-back cache. Not safe for concurrent use;
// the simulator is single-threaded per run.
type Cache struct {
	cfg       Config
	sets      [][]line
	setMask   uint64
	setBits   uint
	blockMask uint64
	blockBits uint
	lruClock  uint64

	// Observability handles; nil-safe.
	mHit  *obsv.Counter
	mMiss *obsv.Counter

	Stats Stats
}

// Instrument registers hit/miss counters under prefix (e.g. "l2.hit").
// reg may be nil.
func (c *Cache) Instrument(reg *obsv.Registry, prefix string) {
	c.mHit = reg.Counter(prefix + ".hit")
	c.mMiss = reg.Counter(prefix + ".miss")
}

// New builds a cache, panicking on invalid geometry (configuration is
// programmer input, not runtime data).
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	nsets := cfg.SizeBytes / (cfg.Ways * cfg.BlockBytes)
	sets := make([][]line, nsets)
	backing := make([]line, nsets*cfg.Ways)
	for i := range sets {
		sets[i] = backing[i*cfg.Ways : (i+1)*cfg.Ways]
	}
	bb := uint(0)
	for 1<<bb != cfg.BlockBytes {
		bb++
	}
	sb := uint(0)
	for 1<<sb != nsets {
		sb++
	}
	return &Cache{
		cfg:       cfg,
		sets:      sets,
		setMask:   uint64(nsets - 1),
		setBits:   sb,
		blockMask: ^uint64(cfg.BlockBytes - 1),
		blockBits: bb,
	}
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// BlockAddr aligns addr down to its containing block.
func (c *Cache) BlockAddr(addr uint64) uint64 { return addr & c.blockMask }

func (c *Cache) locate(addr uint64) (set []line, tag uint64) {
	blk := addr >> c.blockBits
	return c.sets[blk&c.setMask], blk >> c.setBits
}

// Lookup performs a demand access. On a hit it updates LRU state (and the
// dirty bit for writes) and returns true. On a miss it returns false and
// leaves allocation to the caller via Fill, so the caller can model the
// fill's timing and any victim write-back first.
func (c *Cache) Lookup(addr uint64, write bool) bool {
	if write {
		c.Stats.Writes++
	} else {
		c.Stats.Reads++
	}
	set, tag := c.locate(addr)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			c.lruClock++
			set[i].lru = c.lruClock
			if write {
				set[i].dirty = true
			}
			c.mHit.Inc()
			return true
		}
	}
	if write {
		c.Stats.WriteMisses++
	} else {
		c.Stats.ReadMisses++
	}
	c.mMiss.Inc()
	return false
}

// Fill allocates addr's block (which must not already be present), marking
// it dirty if requested, and reports the evicted victim if any.
func (c *Cache) Fill(addr uint64, dirty bool) (ev Eviction, evicted bool) {
	set, tag := c.locate(addr)
	victim := -1
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			panic(fmt.Sprintf("cache %s: Fill of resident block %#x", c.cfg.Name, addr))
		}
		if !set[i].valid {
			victim = i
			break
		}
		if victim < 0 || set[i].lru < set[victim].lru {
			victim = i
		}
	}
	l := &set[victim]
	if l.valid && l.pinned {
		// Fall back to the least recently used unpinned way.
		victim = -1
		for i := range set {
			if set[i].pinned {
				continue
			}
			if victim < 0 || set[i].lru < set[victim].lru {
				victim = i
			}
		}
		if victim < 0 {
			panic(fmt.Sprintf("cache %s: all ways pinned in set of %#x", c.cfg.Name, addr))
		}
		l = &set[victim]
	}
	if l.valid {
		ev = Eviction{Addr: c.reconstruct(addr, l.tag), Dirty: l.dirty}
		evicted = true
		c.Stats.Evictions++
		if l.dirty {
			c.Stats.DirtyEvicts++
		}
	}
	c.lruClock++
	*l = line{tag: tag, valid: true, dirty: dirty, lru: c.lruClock}
	c.Stats.Fills++
	return ev, evicted
}

// reconstruct rebuilds a victim's block address from its tag and the set
// index shared with addr.
func (c *Cache) reconstruct(addr, tag uint64) uint64 {
	setIdx := (addr >> c.blockBits) & c.setMask
	return (tag<<c.setBits | setIdx) << c.blockBits
}

// Contains reports presence without touching LRU or stats. The RSR file
// uses this to check whether a page's blocks are already on-chip, and the
// Merkle walker to find the first cached tree node.
func (c *Cache) Contains(addr uint64) bool {
	set, tag := c.locate(addr)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			return true
		}
	}
	return false
}

// SetDirty marks a resident block dirty without counting an access,
// reporting whether the block was present. Page re-encryption uses this for
// its "lazy" handling of on-chip blocks (Section 4.2): the block is simply
// dirtied so its eventual natural write-back re-encrypts it.
func (c *Cache) SetDirty(addr uint64) bool {
	set, tag := c.locate(addr)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].dirty = true
			return true
		}
	}
	return false
}

// CleanLine clears the dirty bit of a resident block, reporting presence.
func (c *Cache) CleanLine(addr uint64) bool {
	set, tag := c.locate(addr)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].dirty = false
			return true
		}
	}
	return false
}

// Invalidate removes a block, reporting whether it was present and dirty.
// Pinned blocks are removed too (the pin is a replacement hint, not a lock
// against explicit invalidation).
func (c *Cache) Invalidate(addr uint64) (present, dirty bool) {
	set, tag := c.locate(addr)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			present, dirty = true, set[i].dirty
			set[i] = line{}
			return present, dirty
		}
	}
	return false, false
}

// Pin protects a resident block from replacement until Unpin. The memory
// system pins the demand block while its own miss handling (Merkle fills,
// victim write-backs) churns the cache — the structural analogue of an
// MSHR holding the line. Reports whether the block was present.
func (c *Cache) Pin(addr uint64) bool {
	set, tag := c.locate(addr)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].pinned = true
			return true
		}
	}
	return false
}

// Unpin releases a pinned block, reporting whether it was present.
func (c *Cache) Unpin(addr uint64) bool {
	set, tag := c.locate(addr)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].pinned = false
			return true
		}
	}
	return false
}

// ForEach visits every resident block. Whole-memory re-encryption and the
// functional flush path use it.
func (c *Cache) ForEach(fn func(addr uint64, dirty bool)) {
	for si := range c.sets {
		for wi := range c.sets[si] {
			l := c.sets[si][wi]
			if l.valid {
				addr := (l.tag<<c.setBits | uint64(si)) << c.blockBits
				fn(addr, l.dirty)
			}
		}
	}
}

// ResidentBlocks counts valid lines.
func (c *Cache) ResidentBlocks() int {
	n := 0
	c.ForEach(func(uint64, bool) { n++ })
	return n
}
