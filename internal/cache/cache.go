// Package cache implements the set-associative, write-back, LRU cache model
// used for the L1 data cache, the unified L2, and the counter cache
// (sequence-number cache) of the simulated secure processor.
//
// The model tracks presence, dirtiness, and replacement order only; actual
// data bytes live in the functional layer of the memory controller. That
// split keeps timing simulation fast while letting functional mode reuse the
// same presence/dirty decisions the timing model makes.
package cache

import (
	"fmt"

	"secmem/internal/obsv"
)

// Config describes a cache's geometry.
type Config struct {
	Name       string
	SizeBytes  int
	Ways       int
	BlockBytes int
	// LatencyCycles is the access (hit) latency charged by callers; the
	// cache itself is a zero-time structural model.
	LatencyCycles uint64
}

// Validate checks the geometry for internal consistency.
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.Ways <= 0 || c.BlockBytes <= 0 {
		return fmt.Errorf("cache %s: nonpositive geometry %+v", c.Name, c)
	}
	if c.BlockBytes&(c.BlockBytes-1) != 0 {
		return fmt.Errorf("cache %s: block size %d not a power of two", c.Name, c.BlockBytes)
	}
	if c.SizeBytes%(c.Ways*c.BlockBytes) != 0 {
		return fmt.Errorf("cache %s: size %d not divisible by way*block", c.Name, c.SizeBytes)
	}
	sets := c.SizeBytes / (c.Ways * c.BlockBytes)
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache %s: set count %d not a power of two", c.Name, sets)
	}
	return nil
}

// Eviction describes a block displaced by a fill.
type Eviction struct {
	Addr  uint64 // block-aligned address of the victim
	Dirty bool   // victim needs a write-back
}

// Stats accumulates access statistics.
type Stats struct {
	Reads       uint64
	Writes      uint64
	ReadMisses  uint64
	WriteMisses uint64
	Fills       uint64
	Evictions   uint64
	DirtyEvicts uint64
}

// Accesses is total reads+writes.
func (s Stats) Accesses() uint64 { return s.Reads + s.Writes }

// Misses is total read+write misses.
func (s Stats) Misses() uint64 { return s.ReadMisses + s.WriteMisses }

// HitRate returns hits/accesses, or 1 if there were no accesses.
func (s Stats) HitRate() float64 {
	a := s.Accesses()
	if a == 0 {
		return 1
	}
	return float64(a-s.Misses()) / float64(a)
}

// Per-line state is packed into parallel flat arrays (set-major, way-minor)
// instead of a struct-of-everything: the demand-lookup scan touches only the
// keys array, so an 8-way set costs one cache line of host memory instead of
// three. A key is (tag<<1 | valid) — zero means invalid, and no valid line
// is ever zero since the tag gains the bit. Dirty/pinned bits and the LRU
// stamps are off the compare path and only touched on hits and fills.
const (
	flagDirty  = 1 << 0
	flagPinned = 1 << 1
)

// Cache is a set-associative write-back cache. Not safe for concurrent use;
// the simulator is single-threaded per run.
type Cache struct {
	cfg       Config
	ways      int
	keys      []uint64 // tag<<1|valid per line
	lru       []uint64 // LRU stamp per line
	flags     []uint8  // dirty/pinned per line
	setMask   uint64
	setBits   uint
	blockMask uint64
	blockBits uint
	lruClock  uint64

	// Observability handles; nil-safe.
	mHit  *obsv.Counter
	mMiss *obsv.Counter

	Stats Stats
}

// Instrument registers hit/miss counters under prefix (e.g. "l2.hit").
// reg may be nil.
func (c *Cache) Instrument(reg *obsv.Registry, prefix string) {
	c.mHit = reg.Counter(prefix + ".hit")
	c.mMiss = reg.Counter(prefix + ".miss")
}

// New builds a cache, panicking on invalid geometry (configuration is
// programmer input, not runtime data).
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	nsets := cfg.SizeBytes / (cfg.Ways * cfg.BlockBytes)
	bb := uint(0)
	for 1<<bb != cfg.BlockBytes {
		bb++
	}
	sb := uint(0)
	for 1<<sb != nsets {
		sb++
	}
	nl := nsets * cfg.Ways
	return &Cache{
		cfg:       cfg,
		ways:      cfg.Ways,
		keys:      make([]uint64, nl),
		lru:       make([]uint64, nl),
		flags:     make([]uint8, nl),
		setMask:   uint64(nsets - 1),
		setBits:   sb,
		blockMask: ^uint64(cfg.BlockBytes - 1),
		blockBits: bb,
	}
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// BlockAddr aligns addr down to its containing block.
func (c *Cache) BlockAddr(addr uint64) uint64 { return addr & c.blockMask }

// locate returns the set's base line index and the key (tag<<1|valid) a
// resident copy of addr would carry.
func (c *Cache) locate(addr uint64) (base int, key uint64) {
	blk := addr >> c.blockBits
	return int(blk&c.setMask) * c.ways, (blk>>c.setBits)<<1 | 1
}

// Lookup performs a demand access. On a hit it updates LRU state (and the
// dirty bit for writes) and returns true. On a miss it returns false and
// leaves allocation to the caller via Fill, so the caller can model the
// fill's timing and any victim write-back first.
func (c *Cache) Lookup(addr uint64, write bool) bool {
	if write {
		c.Stats.Writes++
	} else {
		c.Stats.Reads++
	}
	base, key := c.locate(addr)
	keys := c.keys[base : base+c.ways : base+c.ways]
	for i, k := range keys {
		if k == key {
			c.lruClock++
			c.lru[base+i] = c.lruClock
			if write {
				c.flags[base+i] |= flagDirty
			}
			c.mHit.Inc()
			return true
		}
	}
	if write {
		c.Stats.WriteMisses++
	} else {
		c.Stats.ReadMisses++
	}
	c.mMiss.Inc()
	return false
}

// Fill allocates addr's block (which must not already be present), marking
// it dirty if requested, and reports the evicted victim if any.
func (c *Cache) Fill(addr uint64, dirty bool) (ev Eviction, evicted bool) {
	base, key := c.locate(addr)
	victim := -1
	for i := 0; i < c.ways; i++ {
		k := c.keys[base+i]
		if k == key {
			panic(fmt.Sprintf("cache %s: Fill of resident block %#x", c.cfg.Name, addr))
		}
		if k&1 == 0 {
			victim = i
			break
		}
		if victim < 0 || c.lru[base+i] < c.lru[base+victim] {
			victim = i
		}
	}
	vk := c.keys[base+victim]
	if vk&1 != 0 && c.flags[base+victim]&flagPinned != 0 {
		// Fall back to the least recently used unpinned way.
		victim = -1
		for i := 0; i < c.ways; i++ {
			if c.flags[base+i]&flagPinned != 0 {
				continue
			}
			if victim < 0 || c.lru[base+i] < c.lru[base+victim] {
				victim = i
			}
		}
		if victim < 0 {
			panic(fmt.Sprintf("cache %s: all ways pinned in set of %#x", c.cfg.Name, addr))
		}
		vk = c.keys[base+victim]
	}
	if vk&1 != 0 {
		dirtyVictim := c.flags[base+victim]&flagDirty != 0
		ev = Eviction{Addr: c.reconstruct(addr, vk>>1), Dirty: dirtyVictim}
		evicted = true
		c.Stats.Evictions++
		if dirtyVictim {
			c.Stats.DirtyEvicts++
		}
	}
	c.lruClock++
	c.keys[base+victim] = key
	c.lru[base+victim] = c.lruClock
	var f uint8
	if dirty {
		f = flagDirty
	}
	c.flags[base+victim] = f
	c.Stats.Fills++
	return ev, evicted
}

// reconstruct rebuilds a victim's block address from its tag and the set
// index shared with addr.
func (c *Cache) reconstruct(addr, tag uint64) uint64 {
	setIdx := (addr >> c.blockBits) & c.setMask
	return (tag<<c.setBits | setIdx) << c.blockBits
}

// find returns the line index of a resident copy of addr, or -1.
func (c *Cache) find(addr uint64) int {
	base, key := c.locate(addr)
	keys := c.keys[base : base+c.ways : base+c.ways]
	for i, k := range keys {
		if k == key {
			return base + i
		}
	}
	return -1
}

// Contains reports presence without touching LRU or stats. The RSR file
// uses this to check whether a page's blocks are already on-chip, and the
// Merkle walker to find the first cached tree node.
func (c *Cache) Contains(addr uint64) bool {
	return c.find(addr) >= 0
}

// SetDirty marks a resident block dirty without counting an access,
// reporting whether the block was present. Page re-encryption uses this for
// its "lazy" handling of on-chip blocks (Section 4.2): the block is simply
// dirtied so its eventual natural write-back re-encrypts it.
func (c *Cache) SetDirty(addr uint64) bool {
	if i := c.find(addr); i >= 0 {
		c.flags[i] |= flagDirty
		return true
	}
	return false
}

// CleanLine clears the dirty bit of a resident block, reporting presence.
func (c *Cache) CleanLine(addr uint64) bool {
	if i := c.find(addr); i >= 0 {
		c.flags[i] &^= flagDirty
		return true
	}
	return false
}

// Invalidate removes a block, reporting whether it was present and dirty.
// Pinned blocks are removed too (the pin is a replacement hint, not a lock
// against explicit invalidation).
func (c *Cache) Invalidate(addr uint64) (present, dirty bool) {
	if i := c.find(addr); i >= 0 {
		dirty = c.flags[i]&flagDirty != 0
		c.keys[i] = 0
		c.lru[i] = 0
		c.flags[i] = 0
		return true, dirty
	}
	return false, false
}

// Pin protects a resident block from replacement until Unpin. The memory
// system pins the demand block while its own miss handling (Merkle fills,
// victim write-backs) churns the cache — the structural analogue of an
// MSHR holding the line. Reports whether the block was present.
func (c *Cache) Pin(addr uint64) bool {
	if i := c.find(addr); i >= 0 {
		c.flags[i] |= flagPinned
		return true
	}
	return false
}

// Unpin releases a pinned block, reporting whether it was present.
func (c *Cache) Unpin(addr uint64) bool {
	if i := c.find(addr); i >= 0 {
		c.flags[i] &^= flagPinned
		return true
	}
	return false
}

// ForEach visits every resident block. Whole-memory re-encryption and the
// functional flush path use it.
func (c *Cache) ForEach(fn func(addr uint64, dirty bool)) {
	for li, k := range c.keys {
		if k&1 != 0 {
			si := uint64(li / c.ways)
			addr := ((k>>1)<<c.setBits | si) << c.blockBits
			fn(addr, c.flags[li]&flagDirty != 0)
		}
	}
}

// ResidentBlocks counts valid lines.
func (c *Cache) ResidentBlocks() int {
	n := 0
	c.ForEach(func(uint64, bool) { n++ })
	return n
}
