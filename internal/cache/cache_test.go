package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func smallCache() *Cache {
	// 4 sets x 2 ways x 64B = 512B: easy to reason about.
	return New(Config{Name: "test", SizeBytes: 512, Ways: 2, BlockBytes: 64})
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Name: "zero"},
		{Name: "blk", SizeBytes: 512, Ways: 2, BlockBytes: 48},
		{Name: "div", SizeBytes: 500, Ways: 2, BlockBytes: 64},
		{Name: "sets", SizeBytes: 3 * 128, Ways: 2, BlockBytes: 64},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %s unexpectedly valid", c.Name)
		}
	}
	good := Config{Name: "l1", SizeBytes: 16 << 10, Ways: 4, BlockBytes: 64}
	if err := good.Validate(); err != nil {
		t.Errorf("good config rejected: %v", err)
	}
}

func TestNewPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with bad config did not panic")
		}
	}()
	New(Config{Name: "bad", SizeBytes: 100, Ways: 3, BlockBytes: 7})
}

func TestMissFillHit(t *testing.T) {
	c := smallCache()
	if c.Lookup(0x1000, false) {
		t.Fatal("hit in empty cache")
	}
	if _, ev := c.Fill(0x1000, false); ev {
		t.Fatal("eviction from empty set")
	}
	if !c.Lookup(0x1000, false) {
		t.Fatal("miss after fill")
	}
	if !c.Lookup(0x103F, false) {
		t.Fatal("same block, different offset missed")
	}
	if c.Lookup(0x1040, false) {
		t.Fatal("adjacent block hit")
	}
	s := c.Stats
	if s.Reads != 4 || s.ReadMisses != 2 || s.Fills != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestWriteMarksDirtyAndEvictionReportsIt(t *testing.T) {
	c := smallCache()
	// Three blocks mapping to set 0 (stride = sets*block = 256).
	a, b, d := uint64(0), uint64(256), uint64(512)
	c.Fill(a, false)
	c.Lookup(a, true) // dirty a
	c.Fill(b, false)
	ev, evicted := c.Fill(d, false)
	if !evicted {
		t.Fatal("expected an eviction")
	}
	// a was written before b was filled, so a is LRU and must be evicted
	// dirty.
	if ev.Addr != a || !ev.Dirty {
		t.Errorf("victim = %+v, want dirty %#x", ev, a)
	}
	// Next victim is b, which was never written: clean.
	ev, evicted = c.Fill(768, false)
	if !evicted || ev.Addr != b || ev.Dirty {
		t.Errorf("second victim = %+v (evicted=%v), want clean %#x", ev, evicted, b)
	}
	if c.Stats.DirtyEvicts != 1 {
		t.Errorf("dirty evicts = %d, want 1", c.Stats.DirtyEvicts)
	}
}

func TestLRUOrder(t *testing.T) {
	c := smallCache()
	a, b, d := uint64(0), uint64(256), uint64(512)
	c.Fill(a, false)
	c.Fill(b, false)
	c.Lookup(a, false) // a becomes MRU
	ev, evicted := c.Fill(d, false)
	if !evicted || ev.Addr != b {
		t.Errorf("victim = %+v, want %#x (LRU)", ev, b)
	}
}

func TestFillResidentPanics(t *testing.T) {
	c := smallCache()
	c.Fill(0, false)
	defer func() {
		if recover() == nil {
			t.Fatal("double fill did not panic")
		}
	}()
	c.Fill(0, false)
}

func TestContainsNoSideEffects(t *testing.T) {
	c := smallCache()
	c.Fill(0, false)
	c.Fill(256, false)
	before := c.Stats
	if !c.Contains(0) || c.Contains(512) {
		t.Error("Contains wrong")
	}
	if c.Stats != before {
		t.Error("Contains mutated stats")
	}
	// Contains must not refresh LRU: 0 is still LRU and gets evicted.
	c.Contains(0)
	ev, _ := c.Fill(512, false)
	if ev.Addr != 0 {
		t.Errorf("victim = %#x, want 0 (Contains must not touch LRU)", ev.Addr)
	}
}

func TestSetDirtyAndCleanLine(t *testing.T) {
	c := smallCache()
	if c.SetDirty(0) {
		t.Error("SetDirty on absent block returned true")
	}
	c.Fill(0, false)
	if !c.SetDirty(0) {
		t.Error("SetDirty on resident block returned false")
	}
	_, dirty := c.Invalidate(0)
	if !dirty {
		t.Error("block not dirty after SetDirty")
	}
	c.Fill(0, true)
	if !c.CleanLine(0) {
		t.Error("CleanLine on resident block returned false")
	}
	_, dirty = c.Invalidate(0)
	if dirty {
		t.Error("block dirty after CleanLine")
	}
}

func TestInvalidate(t *testing.T) {
	c := smallCache()
	c.Fill(0x40, true)
	present, dirty := c.Invalidate(0x40)
	if !present || !dirty {
		t.Errorf("Invalidate = (%v, %v), want (true, true)", present, dirty)
	}
	if c.Contains(0x40) {
		t.Error("block present after Invalidate")
	}
	present, _ = c.Invalidate(0x40)
	if present {
		t.Error("double Invalidate reported present")
	}
}

func TestForEachAndResidentBlocks(t *testing.T) {
	c := smallCache()
	addrs := []uint64{0, 64, 128, 256}
	for _, a := range addrs {
		c.Fill(a, a == 128)
	}
	seen := map[uint64]bool{}
	c.ForEach(func(addr uint64, dirty bool) {
		seen[addr] = dirty
	})
	if len(seen) != len(addrs) {
		t.Fatalf("ForEach visited %d blocks, want %d", len(seen), len(addrs))
	}
	for _, a := range addrs {
		d, ok := seen[a]
		if !ok {
			t.Errorf("block %#x not visited", a)
		}
		if d != (a == 128) {
			t.Errorf("block %#x dirty = %v", a, d)
		}
	}
	if c.ResidentBlocks() != 4 {
		t.Errorf("ResidentBlocks = %d", c.ResidentBlocks())
	}
}

func TestVictimAddressReconstruction(t *testing.T) {
	// Property: for any fill sequence, evicted addresses are block-aligned
	// addresses that were previously filled and not yet evicted.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := New(Config{Name: "p", SizeBytes: 2048, Ways: 4, BlockBytes: 64})
		live := map[uint64]bool{}
		for i := 0; i < 500; i++ {
			addr := uint64(rng.Intn(64)) * 64 * uint64(rng.Intn(8)+1)
			blk := c.BlockAddr(addr)
			if !c.Lookup(blk, rng.Intn(2) == 0) {
				ev, evicted := c.Fill(blk, false)
				if evicted {
					if !live[ev.Addr] {
						return false
					}
					delete(live, ev.Addr)
				}
				live[blk] = true
			}
		}
		// Every live block must be reported resident.
		for a := range live {
			if !c.Contains(a) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestCapacityNeverExceeded(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := New(Config{Name: "cap", SizeBytes: 1024, Ways: 2, BlockBytes: 64})
		maxBlocks := 1024 / 64
		for i := 0; i < 200; i++ {
			addr := uint64(rng.Intn(1 << 14))
			blk := c.BlockAddr(addr)
			if !c.Lookup(blk, false) {
				c.Fill(blk, false)
			}
			if c.ResidentBlocks() > maxBlocks {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestHitRate(t *testing.T) {
	var s Stats
	if s.HitRate() != 1 {
		t.Error("empty stats hit rate != 1")
	}
	s = Stats{Reads: 8, Writes: 2, ReadMisses: 1, WriteMisses: 1}
	if got := s.HitRate(); got != 0.8 {
		t.Errorf("hit rate = %v, want 0.8", got)
	}
}

func BenchmarkLookupHit(b *testing.B) {
	c := New(Config{Name: "b", SizeBytes: 1 << 20, Ways: 8, BlockBytes: 64})
	for a := uint64(0); a < 1<<20; a += 64 {
		c.Fill(a, false)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Lookup(uint64(i%16384)*64, false)
	}
}

func TestPinProtectsFromReplacement(t *testing.T) {
	c := smallCache() // 4 sets x 2 ways
	a, b, d := uint64(0), uint64(256), uint64(512)
	c.Fill(a, false)
	c.Fill(b, false)
	if !c.Pin(a) {
		t.Fatal("Pin on resident block returned false")
	}
	// a is LRU but pinned: b must be the victim.
	ev, evicted := c.Fill(d, false)
	if !evicted || ev.Addr != b {
		t.Errorf("victim = %+v, want %#x (pinned a protected)", ev, b)
	}
	if !c.Contains(a) {
		t.Error("pinned block evicted")
	}
	// After unpinning, a is evictable again.
	if !c.Unpin(a) {
		t.Fatal("Unpin returned false")
	}
	ev, _ = c.Fill(768, false)
	if ev.Addr != a {
		t.Errorf("victim = %#x, want unpinned %#x", ev.Addr, a)
	}
}

func TestPinAbsentBlock(t *testing.T) {
	c := smallCache()
	if c.Pin(0x40) {
		t.Error("Pin on absent block returned true")
	}
	if c.Unpin(0x40) {
		t.Error("Unpin on absent block returned true")
	}
}

func TestAllWaysPinnedPanics(t *testing.T) {
	c := smallCache() // 2 ways
	c.Fill(0, false)
	c.Fill(256, false)
	c.Pin(0)
	c.Pin(256)
	defer func() {
		if recover() == nil {
			t.Fatal("fill into fully pinned set did not panic")
		}
	}()
	c.Fill(512, false)
}

func TestInvalidateClearsPin(t *testing.T) {
	c := smallCache()
	c.Fill(0, false)
	c.Pin(0)
	c.Invalidate(0)
	// Refill: the line must be a fresh unpinned line.
	c.Fill(0, false)
	c.Fill(256, false)
	ev, evicted := c.Fill(512, false)
	if !evicted || ev.Addr != 0 {
		t.Errorf("stale pin survived invalidate: victim %+v", ev)
	}
}
