package svgchart

import (
	"encoding/xml"
	"strings"
	"testing"
)

func sampleBars() BarChart {
	return BarChart{
		Title:   "Figure X: test & <check>",
		YLabel:  "Normalized IPC",
		RefLine: 1.0,
		YMax:    1.2,
		Groups: []Group{
			{Label: "swim", Bars: []Bar{{"Split", 0.97}, {"Direct", 0.81}}},
			{Label: "mcf", Bars: []Bar{{"Split", 0.63}, {"Direct", 0.78}}},
			{Label: "Avg", Bars: []Bar{{"Split", 0.93}, {"Direct", 0.85}}},
		},
	}
}

func TestBarChartIsWellFormedXML(t *testing.T) {
	out := sampleBars().Render()
	dec := xml.NewDecoder(strings.NewReader(out))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("invalid XML: %v", err)
		}
	}
}

func TestBarChartContents(t *testing.T) {
	out := sampleBars().Render()
	for _, want := range []string{
		"<svg", "</svg>", "Normalized IPC",
		"swim", "mcf", "Avg", "Split", "Direct",
		"stroke-dasharray", // the 1.0 reference line
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
	// Title special characters must be escaped.
	if strings.Contains(out, "<check>") {
		t.Error("unescaped angle brackets in output")
	}
	if !strings.Contains(out, "&amp;") {
		t.Error("ampersand not escaped")
	}
	// 3 groups x 2 series = 6 bars plus the background rect.
	if n := strings.Count(out, "<rect"); n != 6+1+2 { // + 2 legend swatches
		t.Errorf("rect count = %d, want 9", n)
	}
}

func TestBarChartAutoScale(t *testing.T) {
	c := sampleBars()
	c.YMax = 0
	out := c.Render()
	if !strings.Contains(out, "<svg") {
		t.Fatal("render failed with auto scale")
	}
}

func TestNiceMax(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0, 1}, {0.7, 0.8}, {1.0, 1.0}, {1.05, 1.2}, {37, 40}, {9.3, 10},
	}
	for _, c := range cases {
		if got := niceMax(c.in); got != c.want {
			t.Errorf("niceMax(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestLineChart(t *testing.T) {
	c := LineChart{
		Title:   "Figure 6(b)",
		YLabel:  "rate",
		XLabels: []string{"1", "2", "3", "4", "5"},
		YMax:    1.0,
		Series: []Series{
			{Label: "SNC hit (split)", Points: []float64{0.95, 0.94, 0.93, 0.93, 0.93}},
			{Label: "prediction rate", Points: []float64{1.0, 0.99, 0.98, 0.98, 0.97}},
		},
	}
	out := c.Render()
	dec := xml.NewDecoder(strings.NewReader(out))
	for {
		if _, err := dec.Token(); err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("invalid XML: %v", err)
		}
	}
	if n := strings.Count(out, "<polyline"); n != 2 {
		t.Errorf("polyline count = %d, want 2", n)
	}
	if n := strings.Count(out, "<circle"); n != 10 {
		t.Errorf("circle count = %d, want 10", n)
	}
}

func TestEmptyLineChartDoesNotPanic(t *testing.T) {
	out := LineChart{Title: "empty"}.Render()
	if !strings.Contains(out, "</svg>") {
		t.Error("truncated output")
	}
}
