// Package svgchart renders the paper's figures as standalone SVG documents
// using only the standard library. It supports the two shapes the paper
// uses: grouped bar charts (normalized IPC per benchmark per scheme —
// Figures 4, 7, 9) and line charts (trends over execution windows — Figure
// 6(b); sensitivity sweeps — Figure 5).
//
// The output is deliberately plain: light grid, labeled axes, a legend, and
// a muted categorical palette, so the charts read like the originals.
package svgchart

import (
	"fmt"
	"math"
	"strings"
)

// Palette is the default categorical series palette.
var Palette = []string{
	"#4878a8", "#e39046", "#6a9a58", "#c05d5d", "#8578b0",
	"#946f57", "#d884bd", "#7f7f7f",
}

// Bar is one bar within a group.
type Bar struct {
	Series string
	Value  float64
}

// Group is one cluster of bars (typically one benchmark).
type Group struct {
	Label string
	Bars  []Bar
}

// BarChart describes a grouped bar chart.
type BarChart struct {
	Title  string
	YLabel string
	Groups []Group
	// YMax fixes the axis top; 0 auto-scales to the data.
	YMax float64
	// RefLine draws a horizontal reference (e.g. 1.0 for normalized IPC).
	RefLine float64
}

const (
	chartW   = 980
	chartH   = 420
	marginL  = 70
	marginR  = 20
	marginT  = 50
	marginB  = 70
	legendDY = 16
)

func esc(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// niceMax rounds v up to a tidy axis maximum.
func niceMax(v float64) float64 {
	if v <= 0 {
		return 1
	}
	mag := math.Pow(10, math.Floor(math.Log10(v)))
	for _, m := range []float64{1, 1.2, 1.5, 2, 2.5, 3, 4, 5, 6, 8, 10} {
		if v <= m*mag {
			return m * mag
		}
	}
	return 10 * mag
}

type svgBuilder struct {
	strings.Builder
}

func (b *svgBuilder) elem(format string, args ...any) {
	fmt.Fprintf(b, format+"\n", args...)
}

func header(b *svgBuilder, title string) {
	b.elem(`<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d" font-family="Helvetica, Arial, sans-serif">`,
		chartW, chartH, chartW, chartH)
	b.elem(`<rect width="%d" height="%d" fill="white"/>`, chartW, chartH)
	b.elem(`<text x="%d" y="24" font-size="15" font-weight="bold" fill="#222">%s</text>`,
		marginL, esc(title))
}

func yAxis(b *svgBuilder, yMax float64, yLabel string) (plotH float64, y0 float64) {
	plotH = float64(chartH - marginT - marginB)
	y0 = float64(chartH - marginB)
	// Gridlines and tick labels at 5 divisions.
	for i := 0; i <= 5; i++ {
		v := yMax * float64(i) / 5
		y := y0 - plotH*float64(i)/5
		b.elem(`<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#ddd" stroke-width="1"/>`,
			marginL, y, chartW-marginR, y)
		b.elem(`<text x="%d" y="%.1f" font-size="11" fill="#555" text-anchor="end">%.2f</text>`,
			marginL-6, y+4, v)
	}
	b.elem(`<text x="16" y="%.1f" font-size="12" fill="#333" transform="rotate(-90 16 %.1f)" text-anchor="middle">%s</text>`,
		y0-plotH/2, y0-plotH/2, esc(yLabel))
	return plotH, y0
}

func legend(b *svgBuilder, series []string) {
	x := marginL
	y := marginT - 14
	for i, s := range series {
		color := Palette[i%len(Palette)]
		b.elem(`<rect x="%d" y="%d" width="10" height="10" fill="%s"/>`, x, y-9, color)
		b.elem(`<text x="%d" y="%d" font-size="11" fill="#333">%s</text>`, x+14, y, esc(s))
		x += 14 + 8*len(s) + 24
	}
	_ = legendDY
}

// Render produces the SVG document.
func (c BarChart) Render() string {
	var b svgBuilder
	header(&b, c.Title)

	var series []string
	seen := map[string]int{}
	maxV := 0.0
	for _, g := range c.Groups {
		for _, bar := range g.Bars {
			if _, ok := seen[bar.Series]; !ok {
				seen[bar.Series] = len(series)
				series = append(series, bar.Series)
			}
			if bar.Value > maxV {
				maxV = bar.Value
			}
		}
	}
	yMax := c.YMax
	if yMax == 0 {
		yMax = niceMax(maxV)
	}
	plotH, y0 := yAxis(&b, yMax, c.YLabel)
	legend(&b, series)

	plotW := float64(chartW - marginL - marginR)
	groupW := plotW / float64(len(c.Groups))
	for gi, g := range c.Groups {
		gx := float64(marginL) + groupW*float64(gi)
		barW := groupW * 0.8 / float64(len(series))
		for _, bar := range g.Bars {
			si := seen[bar.Series]
			h := plotH * bar.Value / yMax
			if h > plotH {
				h = plotH
			}
			x := gx + groupW*0.1 + barW*float64(si)
			b.elem(`<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"><title>%s %s: %.3f</title></rect>`,
				x, y0-h, barW*0.92, h, Palette[si%len(Palette)],
				esc(g.Label), esc(bar.Series), bar.Value)
		}
		b.elem(`<text x="%.1f" y="%.1f" font-size="11" fill="#333" text-anchor="middle" transform="rotate(-35 %.1f %.1f)">%s</text>`,
			gx+groupW/2, y0+26, gx+groupW/2, y0+26, esc(g.Label))
	}
	if c.RefLine > 0 && c.RefLine <= yMax {
		y := y0 - plotH*c.RefLine/yMax
		b.elem(`<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#888" stroke-width="1" stroke-dasharray="5,4"/>`,
			marginL, y, chartW-marginR, y)
	}
	b.elem(`<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#333" stroke-width="1.5"/>`,
		marginL, y0, chartW-marginR, y0)
	b.elem(`</svg>`)
	return b.String()
}

// Series is one line in a line chart.
type Series struct {
	Label  string
	Points []float64
}

// LineChart describes an X-labeled multi-series line chart.
type LineChart struct {
	Title   string
	YLabel  string
	XLabels []string
	Series  []Series
	YMax    float64
	YMin    float64
}

// Render produces the SVG document.
func (c LineChart) Render() string {
	var b svgBuilder
	header(&b, c.Title)
	maxV := c.YMax
	if maxV == 0 {
		for _, s := range c.Series {
			for _, v := range s.Points {
				if v > maxV {
					maxV = v
				}
			}
		}
		maxV = niceMax(maxV)
	}
	plotH, y0 := yAxis(&b, maxV, c.YLabel)
	names := make([]string, len(c.Series))
	for i, s := range c.Series {
		names[i] = s.Label
	}
	legend(&b, names)

	plotW := float64(chartW - marginL - marginR)
	n := len(c.XLabels)
	if n < 2 {
		n = 2
	}
	xAt := func(i int) float64 {
		return float64(marginL) + plotW*float64(i)/float64(n-1)
	}
	for i, lbl := range c.XLabels {
		b.elem(`<text x="%.1f" y="%.1f" font-size="11" fill="#333" text-anchor="middle">%s</text>`,
			xAt(i), y0+20, esc(lbl))
	}
	for si, s := range c.Series {
		color := Palette[si%len(Palette)]
		var pts []string
		for i, v := range s.Points {
			y := y0 - plotH*(v-c.YMin)/(maxV-c.YMin)
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", xAt(i), y))
		}
		b.elem(`<polyline points="%s" fill="none" stroke="%s" stroke-width="2"/>`,
			strings.Join(pts, " "), color)
		for i, v := range s.Points {
			y := y0 - plotH*(v-c.YMin)/(maxV-c.YMin)
			b.elem(`<circle cx="%.1f" cy="%.1f" r="3" fill="%s"><title>%s[%d] = %.3f</title></circle>`,
				xAt(i), y, color, esc(s.Label), i, v)
		}
	}
	b.elem(`<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#333" stroke-width="1.5"/>`,
		marginL, y0, chartW-marginR, y0)
	b.elem(`</svg>`)
	return b.String()
}
