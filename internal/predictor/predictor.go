// Package predictor implements the counter-prediction and pad-
// precomputation scheme of Shi et al. [16], the comparison point of the
// paper's Figure 6. Instead of caching counters on-chip, the scheme keeps a
// per-page base counter, predicts a missing block's counter as base,
// base+1, ..., base+N-1, and precomputes all N candidate pads while the
// block (and its actual 64-bit counter, stored with the data) travels from
// memory:
//
//   - a correct prediction whose pad finished in time hides decryption
//     entirely (a "timely pad");
//   - a correct prediction with a late pad waits for the AES engine;
//   - a misprediction generates the pad after the counter arrives, like a
//     counter-cache miss.
//
// The costs the paper highlights are modeled: N-fold AES issue bandwidth
// per decryption (hence the one- vs two-engine configurations) and the
// extra bus occupancy of shipping a 64-bit counter with every block.
package predictor

import (
	"secmem/internal/bus"
	"secmem/internal/cache"
	"secmem/internal/config"
	"secmem/internal/core"
	"secmem/internal/dram"
	"secmem/internal/engine"
	"secmem/internal/sim"
)

// BlockSize is the memory block granularity.
const BlockSize = 64

// CounterBytes is the per-block counter shipped with each data transfer.
const CounterBytes = 8

// Config parameterizes the prediction scheme.
type Config struct {
	// System supplies cache geometry, bus, memory, and AES latency.
	System config.SystemConfig
	// N is the number of counter values predicted per decryption (the
	// paper uses the recommended N=5).
	N int
	// Engines is the AES engine count (1 or 2 in Figure 6).
	Engines int
	// PageBytes is the granularity of base counters (4 KB).
	PageBytes uint64
}

// DefaultConfig returns the paper's Figure 6 configuration.
func DefaultConfig(sys config.SystemConfig, engines int) Config {
	return Config{System: sys, N: 5, Engines: engines, PageBytes: 4096}
}

// Stats accumulates the Figure 6 metrics.
type Stats struct {
	Misses       uint64 // L2 misses (decryptions attempted)
	Predicted    uint64 // correct counter predictions
	TimelyPads   uint64 // predictions whose pad beat the data
	WriteBacks   uint64
	CounterBytes uint64 // extra bus traffic for counters
}

// PredictionRate is predictions/misses.
func (s Stats) PredictionRate() float64 {
	if s.Misses == 0 {
		return 1
	}
	return float64(s.Predicted) / float64(s.Misses)
}

// TimelyPadRate is timely pads over misses.
func (s Stats) TimelyPadRate() float64 {
	if s.Misses == 0 {
		return 1
	}
	return float64(s.TimelyPads) / float64(s.Misses)
}

// System is a complete memory hierarchy using counter prediction for
// decryption. It implements cpu.Memory.
type System struct {
	cfg Config
	l1  *cache.Cache
	l2  *cache.Cache
	bus *bus.Bus
	mem *dram.DRAM
	aes *engine.AES

	counters map[uint64]uint64 // per-block counter values
	base     map[uint64]uint64 // per-page base counters

	Stats Stats
}

// New builds the prediction system.
func New(cfg Config) (*System, error) {
	if err := cfg.System.Validate(); err != nil {
		return nil, err
	}
	sys := cfg.System
	s := &System{
		cfg: cfg,
		l1:  cache.New(sys.L1),
		l2:  cache.New(sys.L2),
		bus: bus.New(bus.Config{
			WidthBytes:           sys.BusWidthBytes,
			CPUCyclesPerBusCycle: sys.BusCPUCyclesPerBusCycle,
		}),
		aes:      engine.NewAES(cfg.Engines, sys.AESLatency),
		counters: make(map[uint64]uint64),
		base:     make(map[uint64]uint64),
	}
	s.mem = dram.New(dram.Config{
		SizeBytes:       sys.MemBytes + sys.MemBytes/8,
		LatencyCycles:   sys.MemLatencyCycles,
		ServiceInterval: 16,
	})
	return s, nil
}

// AES exposes the engine for utilization reporting.
func (s *System) AES() *engine.AES { return s.aes }

func (s *System) page(addr uint64) uint64 { return addr / s.cfg.PageBytes * s.cfg.PageBytes }

// Access implements the cpu.Memory interface.
func (s *System) Access(now sim.Time, addr uint64, write bool) core.AccessResult {
	blk := s.l1.BlockAddr(addr)
	l1Lat := s.cfg.System.L1.LatencyCycles
	l2Lat := s.cfg.System.L2.LatencyCycles
	if s.l1.Lookup(blk, write) {
		t := now + l1Lat
		return core.AccessResult{DataReady: t, AuthDone: t}
	}
	var res core.AccessResult
	if s.l2.Lookup(blk, false) {
		t := now + l1Lat + l2Lat
		res = core.AccessResult{DataReady: t, AuthDone: t}
	} else {
		ready := s.readMiss(now+l1Lat+l2Lat, blk)
		if ev, evicted := s.l2.Fill(blk, false); evicted {
			s.evictL2(now, ev)
		}
		res = core.AccessResult{DataReady: ready, AuthDone: ready, L2Miss: true}
	}
	if ev, evicted := s.l1.Fill(blk, write); evicted && ev.Dirty {
		if !s.l2.SetDirty(ev.Addr) {
			if ev2, evicted2 := s.l2.Fill(ev.Addr, true); evicted2 {
				s.evictL2(now, ev2)
			}
		}
	}
	if write {
		s.l1.SetDirty(blk)
	}
	return res
}

func (s *System) evictL2(now sim.Time, ev cache.Eviction) {
	if present, dirty := s.l1.Invalidate(ev.Addr); present && dirty {
		ev.Dirty = true
	}
	if !ev.Dirty {
		return
	}
	s.writeBack(now, ev.Addr)
}

// readMiss models the prediction path for one decryption.
func (s *System) readMiss(now sim.Time, blk uint64) sim.Time {
	s.Stats.Misses++
	// Fetch block + its stored counter (wider transfer).
	start := s.bus.Transfer(now, BlockSize+CounterBytes)
	s.Stats.CounterBytes += CounterBytes
	arrive := s.mem.AccessRead(start)

	// Precompute N candidate pads (each pad is four chunk encryptions).
	base := s.base[s.page(blk)]
	padDone := make([]sim.Time, s.cfg.N)
	for i := range padDone {
		padDone[i] = s.aes.GenerateBlockPads(now)
	}

	actual := s.counters[blk]
	if actual >= base && actual < base+uint64(s.cfg.N) {
		s.Stats.Predicted++
		done := padDone[actual-base]
		if done <= arrive {
			s.Stats.TimelyPads++
		}
		return sim.Max(arrive, done) + 1
	}
	// Misprediction: learn the actual counter and generate the pad after
	// it arrives.
	s.base[s.page(blk)] = actual
	return s.aes.GenerateBlockPads(arrive) + 1
}

// writeBack re-encrypts a dirty block: the counter advances and the page
// base learns the new value.
func (s *System) writeBack(now sim.Time, blk uint64) {
	s.Stats.WriteBacks++
	s.counters[blk]++
	s.base[s.page(blk)] = s.counters[blk]
	padDone := s.aes.GenerateBlockPads(now)
	start := s.bus.Transfer(padDone+1, BlockSize+CounterBytes)
	s.Stats.CounterBytes += CounterBytes
	s.mem.AccessWrite(start)
}

// SnapshotStats returns the stats and resets the windowed counters used by
// the Figure 6(b) trend plot (cumulative fields continue externally).
func (s *System) SnapshotStats() Stats {
	st := s.Stats
	s.Stats = Stats{}
	return st
}
