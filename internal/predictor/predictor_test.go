package predictor

import (
	"testing"

	"secmem/internal/cache"
	"secmem/internal/config"
)

func testCfg(engines int) Config {
	sys := config.Baseline()
	sys.MemBytes = 16 << 20
	sys.L1 = cache.Config{Name: "L1D", SizeBytes: 1 << 10, Ways: 2, BlockBytes: 64, LatencyCycles: 2}
	sys.L2 = cache.Config{Name: "L2", SizeBytes: 8 << 10, Ways: 4, BlockBytes: 64, LatencyCycles: 10}
	return DefaultConfig(sys, engines)
}

func mustNew(t *testing.T, cfg Config) *System {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestFreshCountersPredictPerfectly(t *testing.T) {
	// All counters start at zero, as do the bases: the paper observes the
	// prediction rate "starts off high because all counters have the same
	// initial value".
	s := mustNew(t, testCfg(1))
	for i := 0; i < 100; i++ {
		s.Access(uint64(i)*500, uint64(i)*64, false)
	}
	if r := s.Stats.PredictionRate(); r != 1 {
		t.Errorf("cold prediction rate = %.2f, want 1.0", r)
	}
}

func TestDivergingCountersDegradePrediction(t *testing.T) {
	// Once blocks within a page carry widely divergent counters, a single
	// page base cannot predict them: one misprediction relearns the base,
	// but the next block's counter differs again — the paper's Figure 6(b)
	// degradation. Stage the divergence directly and read the page.
	s := mustNew(t, testCfg(1))
	for b := uint64(0); b < 32; b++ {
		s.counters[b*64] = b * 10 // far beyond any N=5 window
	}
	now := uint64(0)
	for b := uint64(0); b < 32; b++ {
		s.Access(now, b*64, false)
		now += 1000
	}
	if r := s.Stats.PredictionRate(); r > 0.3 {
		t.Errorf("diverged-page prediction rate = %.2f, want low", r)
	}
}

func TestTwoEnginesImproveTimeliness(t *testing.T) {
	run := func(engines int) float64 {
		s := mustNew(t, testCfg(engines))
		now := uint64(0)
		// Closely spaced misses contend for AES issue slots: with N=5
		// pads per miss, one engine cannot keep up.
		for i := 0; i < 400; i++ {
			s.Access(now, uint64(i)*64, false)
			now += 60
		}
		return s.Stats.TimelyPadRate()
	}
	one, two := run(1), run(2)
	if two <= one {
		t.Errorf("timely pads: 2 engines %.2f not better than 1 engine %.2f", two, one)
	}
}

func TestPredictionConsumesNFoldAESBandwidth(t *testing.T) {
	s := mustNew(t, testCfg(1))
	for i := 0; i < 50; i++ {
		s.Access(uint64(i)*10000, uint64(i)*64, false)
	}
	// Each miss precomputes N pads of 4 chunks.
	wantMin := s.Stats.Misses * uint64(s.cfg.N) * 4
	if got := s.AES().Issues(); got < wantMin {
		t.Errorf("AES issues = %d, want >= %d (N-fold precomputation)", got, wantMin)
	}
}

func TestCounterTrafficAccounted(t *testing.T) {
	s := mustNew(t, testCfg(1))
	for i := 0; i < 20; i++ {
		s.Access(uint64(i)*10000, uint64(i)*64, false)
	}
	if s.Stats.CounterBytes != s.Stats.Misses*CounterBytes {
		t.Errorf("counter bytes = %d for %d misses", s.Stats.CounterBytes, s.Stats.Misses)
	}
}

func TestMispredictionLearnsBase(t *testing.T) {
	s := mustNew(t, testCfg(1))
	// Force a counter far ahead of its page base.
	s.counters[0] = 100
	s.Access(0, 0, false) // mispredict; base learns 100
	if s.base[0] != 100 {
		t.Errorf("base after misprediction = %d, want 100", s.base[0])
	}
	if s.Stats.Predicted != 0 {
		t.Error("misprediction counted as predicted")
	}
	// Evict block 0, then re-read: now predicted.
	for k := 1; k < 10; k++ {
		s.Access(uint64(k)*1000, uint64(k)*8192, false)
	}
	before := s.Stats.Predicted
	s.Access(100000, 0, false)
	if s.Stats.Predicted != before+1 {
		t.Errorf("relearned base did not predict: %+v", s.Stats)
	}
}

func TestSnapshotStatsResets(t *testing.T) {
	s := mustNew(t, testCfg(1))
	s.Access(0, 0, false)
	st := s.SnapshotStats()
	if st.Misses != 1 {
		t.Errorf("snapshot misses = %d", st.Misses)
	}
	if s.Stats.Misses != 0 {
		t.Error("stats not reset by snapshot")
	}
}

func TestZeroStatsRates(t *testing.T) {
	var st Stats
	if st.PredictionRate() != 1 || st.TimelyPadRate() != 1 {
		t.Error("zero stats rates should be 1")
	}
}

func TestInvalidSystemRejected(t *testing.T) {
	cfg := testCfg(1)
	cfg.System.IssueWidth = 0
	if _, err := New(cfg); err == nil {
		t.Fatal("invalid system config accepted")
	}
}

func TestWriteBackAdvancesCounterAndBase(t *testing.T) {
	s := mustNew(t, testCfg(1))
	now := uint64(0)
	// Write block 0, then conflict-evict it (L2 is 8KB 4-way: stride 2KB
	// maps to the same set) so its dirty eviction triggers writeBack.
	s.Access(now, 0, true)
	for k := 1; k <= 8; k++ {
		now += 1000
		s.Access(now, uint64(k)*2048, true)
	}
	if s.Stats.WriteBacks == 0 {
		t.Fatal("no write-backs happened")
	}
	if s.counters[0] != 1 {
		t.Errorf("counter after write-back = %d, want 1", s.counters[0])
	}
	if s.base[0] != 1 {
		t.Errorf("page base after write-back = %d, want 1", s.base[0])
	}
	// Write-backs ship the counter too.
	if s.Stats.CounterBytes < (s.Stats.Misses+s.Stats.WriteBacks)*CounterBytes {
		t.Errorf("write-back counter traffic missing: %d bytes", s.Stats.CounterBytes)
	}
}

func TestL2HitAndL1Paths(t *testing.T) {
	s := mustNew(t, testCfg(1))
	r1 := s.Access(0, 0x40, false)
	if !r1.L2Miss {
		t.Fatal("cold access hit")
	}
	// L1 hit.
	r2 := s.Access(r1.DataReady, 0x40, false)
	if r2.L2Miss || r2.DataReady != r1.DataReady+2 {
		t.Errorf("L1 hit wrong: %+v", r2)
	}
	// Evict from tiny L1 (1KB 2-way, stride 512) but keep in L2: L2 hit.
	s.Access(r2.DataReady, 0x40+512, false)
	s.Access(r2.DataReady+100, 0x40+1024, false)
	r3 := s.Access(r2.DataReady+1000, 0x40, false)
	if r3.L2Miss {
		t.Error("block evicted from L2 unexpectedly")
	}
}
