// Package cpu models the three-issue out-of-order core of Section 5 as an
// interval simulator: instructions dispatch in program order at up to
// IssueWidth per cycle, occupy a reorder-buffer window, and retire in order
// at the same width. Memory operations resolve through the secure memory
// hierarchy; their completion times are what couple the core to the
// encryption/authentication machinery:
//
//   - lazy:   loads complete when decrypted data arrives; retirement never
//     waits for authentication.
//   - commit: dependent instructions may use data at decryption, but the
//     load cannot retire before authentication — it holds its ROB entry.
//   - safe:   data may not even be used before authentication completes.
//
// Pointer-chasing is modeled through the trace's Dependent flag: a
// dependent access cannot issue before the previous load's data is usable.
// Memory-level parallelism is bounded by the MSHR count.
//
// Time is tracked in sub-cycle ticks (12 per cycle) so a three-wide
// dispatch advances exactly 4 ticks per instruction with integer math.
package cpu

import (
	"secmem/internal/config"
	"secmem/internal/core"
	"secmem/internal/sim"
)

// SubTicks is the number of sub-cycle ticks per processor cycle.
const SubTicks = 12

// Memory is the interface the core issues accesses through;
// *core.MemSystem implements it.
type Memory interface {
	Access(now sim.Time, addr uint64, write bool) core.AccessResult
}

// Event is one memory operation in the instruction stream, preceded by
// NonMemBefore non-memory instructions.
type Event struct {
	Addr         uint64
	Write        bool
	NonMemBefore uint32
	// Dependent marks this access's address as produced by the previous
	// load (pointer chasing): it cannot issue until that load's data is
	// usable.
	Dependent bool
}

// Source produces the instruction stream. Next returns false when the
// workload is exhausted.
type Source interface {
	Next() (Event, bool)
}

// BudgetSource is an optional Source refinement for streamed workloads
// whose instruction budget is not known up front. Run re-reads Budget
// after every Next, so a source may report a sentinel (^uint64(0)) while
// the true budget is still in flight and tighten it once known — the
// pipelined router learns a slice's budget only when it seals the final
// segment, which by construction carries the budget-crossing event, so
// the tightened value always arrives before the event it cuts. Budget
// must never increase across calls once it has dropped below the
// sentinel.
type BudgetSource interface {
	Source
	Budget() uint64
}

// Result summarizes one simulation.
type Result struct {
	Instructions uint64
	Cycles       sim.Time
	Loads        uint64
	Stores       uint64
	L2Misses     uint64
}

// IPC is retired instructions per cycle.
func (r Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Instructions) / float64(r.Cycles)
}

// Seconds converts the cycle count to wall time at the configured clock.
func (r Result) Seconds(clockGHz float64) float64 {
	return float64(r.Cycles) / (clockGHz * 1e9)
}

// CPU is the core model. Create one per run.
type CPU struct {
	cfg config.SystemConfig
	mem Memory

	dispatch sim.Time // sub-ticks
	retire   sim.Time // sub-ticks: pacing of the in-order retire stage
	index    uint64   // instructions dispatched so far

	// memops is a fixed-capacity ring of in-flight memory instructions'
	// (index, retire-ready in sub-ticks) for the ROB-occupancy constraint.
	// At most ROBSize memops are in flight, so the ring never grows — the
	// run loop stays allocation-free (the hotpathalloc gate).
	memops        []memop
	moHead, moLen int
	moMask        int
	// mshr is a fixed-capacity ring of outstanding-miss completion times
	// (cycles); occupancy is bounded by the MSHR count.
	mshr          []sim.Time
	msHead, msLen int
	msMask        int

	lastLoadData sim.Time // cycles: when the latest load's data became usable

	res Result
}

type memop struct {
	idx       uint64
	retireSub sim.Time
}

// ringCap rounds n up to a power of two so ring indices wrap with a mask.
func ringCap(n int) int {
	c := 1
	for c < n {
		c <<= 1
	}
	return c
}

// New builds a core over a memory system.
func New(cfg config.SystemConfig, mem Memory) *CPU {
	c := &CPU{cfg: cfg, mem: mem}
	c.memops = make([]memop, ringCap(cfg.ROBSize))
	c.moMask = len(c.memops) - 1
	c.mshr = make([]sim.Time, ringCap(cfg.MSHRs))
	c.msMask = len(c.mshr) - 1
	return c
}

func (c *CPU) subPerInstr() sim.Time { return SubTicks / sim.Time(c.cfg.IssueWidth) }

// ensureWindow enforces the ROB bound: instruction at index i cannot
// dispatch until instruction i-ROBSize has retired. Only memory operations
// can hold retirement back, so only they are tracked.
func (c *CPU) ensureWindow(i uint64) {
	rob := uint64(c.cfg.ROBSize)
	for c.moLen > 0 {
		op := c.memops[c.moHead]
		if op.idx+rob > i {
			break
		}
		c.moHead = (c.moHead + 1) & c.moMask
		c.moLen--
		if op.retireSub > c.dispatch {
			c.dispatch = op.retireSub
		}
	}
}

// noteRetire records a memory instruction's retirement constraint, keeping
// retire times monotonic (in-order retirement) and paced at IssueWidth.
func (c *CPU) noteRetire(idx uint64, readySub sim.Time) {
	if readySub < c.retire+c.subPerInstr() {
		readySub = c.retire + c.subPerInstr()
	}
	c.retire = readySub
	c.memops[(c.moHead+c.moLen)&c.moMask] = memop{idx: idx, retireSub: readySub}
	c.moLen++
}

// Run executes up to maxInstructions from src and returns the result.
// If src also implements BudgetSource, the effective budget is re-read
// after every event, letting a streaming source defer the exact cutoff
// until its final segment arrives; the result is identical to running
// with the final budget passed up front.
func (c *CPU) Run(src Source, maxInstructions uint64) Result {
	bs, streamed := src.(BudgetSource)
	spi := c.subPerInstr()
	for c.res.Instructions < maxInstructions {
		ev, ok := src.Next()
		if !ok {
			break
		}
		if streamed {
			maxInstructions = bs.Budget()
		}
		// Bulk-dispatch the preceding non-memory instructions.
		n := uint64(ev.NonMemBefore)
		if rem := maxInstructions - c.res.Instructions; n >= rem {
			// The stream ends mid-batch: account the tail and stop.
			c.dispatch += sim.Time(rem) * spi
			c.res.Instructions += rem
			break
		}
		c.index += n
		c.res.Instructions += n
		c.dispatch += sim.Time(n) * spi
		c.ensureWindow(c.index)

		// Dispatch the memory instruction itself.
		c.index++
		c.res.Instructions++
		c.dispatch += spi
		c.ensureWindow(c.index)

		issue := c.dispatch / SubTicks
		if ev.Dependent && c.lastLoadData > issue {
			issue = c.lastLoadData
		}
		// MSHR bound: a full miss file stalls the next miss until the
		// oldest completes.
		if c.msLen >= c.cfg.MSHRs {
			oldest := c.mshr[c.msHead]
			c.msHead = (c.msHead + 1) & c.msMask
			c.msLen--
			if oldest > issue {
				issue = oldest
			}
		}

		r := c.mem.Access(issue, ev.Addr, ev.Write)
		if r.L2Miss {
			c.res.L2Misses++
			c.mshr[(c.msHead+c.msLen)&c.msMask] = r.DataReady
			c.msLen++
		}

		dataReady, retireReady := c.policyTimes(r)
		if ev.Write {
			c.res.Stores++
			// Stores retire once issued to the cache; the write-back side
			// is off the critical path.
			c.noteRetire(c.index, (issue+1)*SubTicks)
		} else {
			c.res.Loads++
			c.lastLoadData = dataReady
			c.noteRetire(c.index, retireReady*SubTicks)
		}
	}
	// Final cycle count: everything dispatched must also retire.
	end := c.dispatch
	if c.retire > end {
		end = c.retire
	}
	for i := 0; i < c.moLen; i++ {
		op := c.memops[(c.moHead+i)&c.moMask]
		if op.retireSub > end {
			end = op.retireSub
		}
	}
	c.res.Cycles = end/SubTicks + 1
	return c.res
}

// policyTimes applies the authentication requirement to a load's result.
func (c *CPU) policyTimes(r core.AccessResult) (dataReady, retireReady sim.Time) {
	switch c.cfg.Req {
	case config.AuthSafe:
		t := sim.Max(r.DataReady, r.AuthDone)
		return t, t
	case config.AuthCommit:
		return r.DataReady, sim.Max(r.DataReady, r.AuthDone)
	default: // lazy
		return r.DataReady, r.DataReady
	}
}
