package cpu

import (
	"testing"

	"secmem/internal/config"
	"secmem/internal/core"
	"secmem/internal/sim"
)

// fakeMem returns fixed latencies and lets tests observe issue times.
type fakeMem struct {
	dataLat   sim.Time
	authLat   sim.Time
	miss      bool
	issues    []sim.Time
	perfectL1 bool
}

func (f *fakeMem) Access(now sim.Time, addr uint64, write bool) core.AccessResult {
	f.issues = append(f.issues, now)
	if f.perfectL1 {
		return core.AccessResult{DataReady: now + 2, AuthDone: now + 2}
	}
	return core.AccessResult{
		DataReady: now + f.dataLat,
		AuthDone:  now + f.dataLat + f.authLat,
		L2Miss:    f.miss,
	}
}

// sliceSource replays a fixed event list.
type sliceSource struct {
	evs []Event
	i   int
}

func (s *sliceSource) Next() (Event, bool) {
	if s.i >= len(s.evs) {
		return Event{}, false
	}
	e := s.evs[s.i]
	s.i++
	return e, true
}

func testCfg() config.SystemConfig {
	cfg := config.Default()
	cfg.Req = config.AuthLazy
	return cfg
}

func TestIdealIPCApproachesIssueWidth(t *testing.T) {
	// All instructions non-memory except rare perfect-L1 accesses: IPC
	// should approach the issue width (3).
	cfg := testCfg()
	mem := &fakeMem{perfectL1: true}
	evs := make([]Event, 100)
	for i := range evs {
		evs[i] = Event{Addr: uint64(i) * 64, NonMemBefore: 99}
	}
	res := New(cfg, mem).Run(&sliceSource{evs: evs}, 10000)
	if ipc := res.IPC(); ipc < 2.5 || ipc > 3.01 {
		t.Errorf("ideal IPC = %.2f, want close to 3", ipc)
	}
}

func TestMemoryLatencyLowersIPC(t *testing.T) {
	mk := func(lat sim.Time) float64 {
		cfg := testCfg()
		mem := &fakeMem{dataLat: lat, miss: true}
		evs := make([]Event, 500)
		for i := range evs {
			evs[i] = Event{Addr: uint64(i) * 64, NonMemBefore: 9, Dependent: true}
		}
		return New(cfg, mem).Run(&sliceSource{evs: evs}, 1e6).IPC()
	}
	fast, slow := mk(20), mk(400)
	if slow >= fast {
		t.Errorf("IPC with 400-cycle memory (%.3f) not below 20-cycle (%.3f)", slow, fast)
	}
	if fast/slow < 2 {
		t.Errorf("dependent-load IPC barely sensitive to latency: %.3f vs %.3f", fast, slow)
	}
}

func TestDependentLoadsSerialize(t *testing.T) {
	// Two dependent loads: the second must issue no earlier than the
	// first's data-ready time.
	cfg := testCfg()
	mem := &fakeMem{dataLat: 300, miss: true}
	evs := []Event{
		{Addr: 0, NonMemBefore: 0},
		{Addr: 64, NonMemBefore: 0, Dependent: true},
	}
	New(cfg, mem).Run(&sliceSource{evs: evs}, 100)
	if len(mem.issues) != 2 {
		t.Fatalf("issues = %d", len(mem.issues))
	}
	if mem.issues[1] < mem.issues[0]+300 {
		t.Errorf("dependent load issued at %d, before producer data at %d",
			mem.issues[1], mem.issues[0]+300)
	}
}

func TestIndependentLoadsOverlap(t *testing.T) {
	cfg := testCfg()
	mem := &fakeMem{dataLat: 300, miss: true}
	evs := []Event{
		{Addr: 0, NonMemBefore: 0},
		{Addr: 64, NonMemBefore: 0},
	}
	New(cfg, mem).Run(&sliceSource{evs: evs}, 100)
	if mem.issues[1] > mem.issues[0]+5 {
		t.Errorf("independent load issued %d cycles after the first",
			mem.issues[1]-mem.issues[0])
	}
}

func TestMSHRBoundsOutstandingMisses(t *testing.T) {
	cfg := testCfg()
	cfg.MSHRs = 2
	mem := &fakeMem{dataLat: 1000, miss: true}
	evs := make([]Event, 4)
	for i := range evs {
		evs[i] = Event{Addr: uint64(i) * 64}
	}
	New(cfg, mem).Run(&sliceSource{evs: evs}, 100)
	// Third miss must wait for the first to complete.
	if mem.issues[2] < mem.issues[0]+1000 {
		t.Errorf("third miss issued at %d with only 2 MSHRs (first done %d)",
			mem.issues[2], mem.issues[0]+1000)
	}
}

func TestROBLimitsRunahead(t *testing.T) {
	// One very slow load followed by many independent instructions: the
	// dispatch front cannot run more than ROBSize instructions past it.
	cfg := testCfg()
	cfg.ROBSize = 32
	mem := &fakeMem{dataLat: 100000, miss: true}
	evs := []Event{{Addr: 0, NonMemBefore: 0}}
	for i := 0; i < 10; i++ {
		evs = append(evs, Event{Addr: uint64(i+1) * 64, NonMemBefore: 200, Dependent: false})
	}
	// Use perfect misses for followers so only the first is slow.
	res := New(cfg, mem).Run(&sliceSource{evs: evs}, 1e6)
	// The run cannot finish before the slow load retires.
	if res.Cycles < 100000 {
		t.Errorf("cycles = %d, slow load ignored by retirement", res.Cycles)
	}
}

func TestAuthPolicies(t *testing.T) {
	run := func(req config.AuthReq) sim.Time {
		cfg := testCfg()
		cfg.Req = req
		mem := &fakeMem{dataLat: 200, authLat: 500, miss: true}
		// Dependent chain of loads: policy determines how auth latency
		// enters the critical path.
		evs := make([]Event, 50)
		for i := range evs {
			evs[i] = Event{Addr: uint64(i) * 64, NonMemBefore: 0, Dependent: true}
		}
		return New(cfg, mem).Run(&sliceSource{evs: evs}, 1e6).Cycles
	}
	lazy, commit, safe := run(config.AuthLazy), run(config.AuthCommit), run(config.AuthSafe)
	if !(lazy < safe) {
		t.Errorf("lazy (%d) not faster than safe (%d)", lazy, safe)
	}
	if !(commit <= safe) {
		t.Errorf("commit (%d) slower than safe (%d)", commit, safe)
	}
	if !(lazy <= commit) {
		t.Errorf("lazy (%d) slower than commit (%d)", lazy, commit)
	}
	// Safe serializes auth into the dependence chain: ~50 * 700.
	if safe < 30000 {
		t.Errorf("safe cycles = %d, auth latency not serialized", safe)
	}
}

func TestCommitStallsOnlyThroughROB(t *testing.T) {
	// With a huge ROB and independent loads, commit ≈ lazy; with a tiny
	// ROB, commit degrades toward safe.
	run := func(rob int, req config.AuthReq) sim.Time {
		cfg := testCfg()
		cfg.ROBSize = rob
		cfg.Req = req
		mem := &fakeMem{dataLat: 200, authLat: 2000, miss: true}
		evs := make([]Event, 100)
		for i := range evs {
			evs[i] = Event{Addr: uint64(i) * 64, NonMemBefore: 3}
		}
		return New(cfg, mem).Run(&sliceSource{evs: evs}, 1e6).Cycles
	}
	bigCommit := run(4096, config.AuthCommit)
	smallCommit := run(8, config.AuthCommit)
	if smallCommit <= bigCommit {
		t.Errorf("commit with 8-entry ROB (%d) not slower than 4096-entry (%d)",
			smallCommit, bigCommit)
	}
}

func TestInstructionBudgetRespected(t *testing.T) {
	cfg := testCfg()
	mem := &fakeMem{perfectL1: true}
	evs := make([]Event, 1000)
	for i := range evs {
		evs[i] = Event{Addr: uint64(i) * 64, NonMemBefore: 99}
	}
	res := New(cfg, mem).Run(&sliceSource{evs: evs}, 500)
	if res.Instructions > 501 {
		t.Errorf("ran %d instructions, budget 500", res.Instructions)
	}
}

func TestResultAccessors(t *testing.T) {
	r := Result{Instructions: 300, Cycles: 100}
	if r.IPC() != 3 {
		t.Errorf("IPC = %v", r.IPC())
	}
	if s := r.Seconds(5); s != 100/(5e9) {
		t.Errorf("Seconds = %v", s)
	}
	var zero Result
	if zero.IPC() != 0 {
		t.Error("zero-cycle IPC not 0")
	}
}

func TestStoresDoNotBlockDependence(t *testing.T) {
	cfg := testCfg()
	mem := &fakeMem{dataLat: 500, miss: true}
	evs := []Event{
		{Addr: 0, Write: true},
		{Addr: 64, Dependent: true}, // depends on a *load*, none yet: no stall
	}
	New(cfg, mem).Run(&sliceSource{evs: evs}, 100)
	if mem.issues[1] > mem.issues[0]+5 {
		t.Errorf("store blocked a dependent access: %d vs %d", mem.issues[1], mem.issues[0])
	}
}

// deferredBudget wraps a Source, reporting a sentinel budget until
// revealAt events have been served and the true budget afterwards — the
// shape of the pipelined router's segment source, which learns a slice's
// budget only when the final segment arrives.
type deferredBudget struct {
	src    *sliceSource
	budget uint64
	reveal int
}

func (d *deferredBudget) Next() (Event, bool) { return d.src.Next() }

func (d *deferredBudget) Budget() uint64 {
	if d.src.i >= d.reveal {
		return d.budget
	}
	return ^uint64(0)
}

// TestDeferredBudgetMatchesUpFront: running with the budget revealed late
// through BudgetSource must produce the exact Result of passing it to Run
// up front — including budgets that end mid-batch inside an event's
// non-memory prefix and budgets past the end of the stream. The contract
// requires the budget to be known no later than the event it cuts, so
// reveal points are clamped to the crossing event's index (the pipelined
// router guarantees this by carrying the budget on the final segment).
func TestDeferredBudgetMatchesUpFront(t *testing.T) {
	cfg := testCfg()
	evs := make([]Event, 200)
	for i := range evs {
		evs[i] = Event{Addr: uint64(i) * 64, NonMemBefore: uint32(i % 7), Dependent: i%3 == 0}
	}
	// crossing returns the index of the event the budget cuts (or ends on).
	crossing := func(budget uint64) int {
		var done uint64
		for i, ev := range evs {
			n := uint64(ev.NonMemBefore)
			if n >= budget-done {
				return i
			}
			done += n + 1
			if done >= budget {
				return i
			}
		}
		return len(evs)
	}
	for _, budget := range []uint64{0, 1, 5, 100, 333, 700, 1e6} {
		want := New(cfg, &fakeMem{dataLat: 150, authLat: 80, miss: true}).
			Run(&sliceSource{evs: evs}, budget)
		cross := crossing(budget)
		for _, reveal := range []int{0, 1, 50, len(evs)} {
			if reveal > cross {
				reveal = cross
			}
			src := &deferredBudget{src: &sliceSource{evs: evs}, budget: budget, reveal: reveal}
			got := New(cfg, &fakeMem{dataLat: 150, authLat: 80, miss: true}).
				Run(src, ^uint64(0))
			if got != want {
				t.Fatalf("budget %d reveal %d: deferred %+v, up-front %+v", budget, reveal, got, want)
			}
		}
	}
}
