package cpu

import (
	"math/rand"
	"testing"
	"testing/quick"

	"secmem/internal/config"
	"secmem/internal/sim"
)

// randomSource emits a deterministic random event stream for property
// testing the core model's invariants.
type randomSource struct {
	rng *rand.Rand
	n   int
}

func (s *randomSource) Next() (Event, bool) {
	if s.n <= 0 {
		return Event{}, false
	}
	s.n--
	return Event{
		Addr:         uint64(s.rng.Intn(1 << 16)),
		Write:        s.rng.Intn(4) == 0,
		NonMemBefore: uint32(s.rng.Intn(20)),
		Dependent:    s.rng.Intn(3) == 0,
	}, true
}

func TestIPCNeverExceedsIssueWidth(t *testing.T) {
	f := func(seed int64, latRaw uint16) bool {
		lat := sim.Time(latRaw%500) + 1
		cfg := config.Default()
		cfg.Req = config.AuthLazy
		mem := &fakeMem{dataLat: lat, miss: true}
		src := &randomSource{rng: rand.New(rand.NewSource(seed)), n: 300}
		res := New(cfg, mem).Run(src, 1e6)
		return res.IPC() <= float64(cfg.IssueWidth)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestCyclesMonotonicInMemoryLatency(t *testing.T) {
	f := func(seed int64, baseRaw uint16) bool {
		base := sim.Time(baseRaw%300) + 10
		run := func(lat sim.Time) sim.Time {
			cfg := config.Default()
			cfg.Req = config.AuthLazy
			mem := &fakeMem{dataLat: lat, miss: true}
			src := &randomSource{rng: rand.New(rand.NewSource(seed)), n: 200}
			return New(cfg, mem).Run(src, 1e6).Cycles
		}
		return run(base) <= run(base*2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestSafeNeverFasterThanLazy(t *testing.T) {
	f := func(seed int64, authRaw uint16) bool {
		auth := sim.Time(authRaw%800) + 1
		run := func(req config.AuthReq) sim.Time {
			cfg := config.Default()
			cfg.Req = req
			mem := &fakeMem{dataLat: 150, authLat: auth, miss: true}
			src := &randomSource{rng: rand.New(rand.NewSource(seed)), n: 200}
			return New(cfg, mem).Run(src, 1e6).Cycles
		}
		lazy := run(config.AuthLazy)
		commit := run(config.AuthCommit)
		safe := run(config.AuthSafe)
		return lazy <= commit && commit <= safe
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestInstructionAccountingExact(t *testing.T) {
	f := func(seed int64, nRaw uint16) bool {
		budget := uint64(nRaw%5000) + 100
		cfg := config.Default()
		mem := &fakeMem{perfectL1: true}
		src := &randomSource{rng: rand.New(rand.NewSource(seed)), n: 1 << 20}
		res := New(cfg, mem).Run(src, budget)
		// The unbounded source means the run must stop within one batch of
		// the budget.
		return res.Instructions <= budget+20 && res.Instructions >= budget-20
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
