package aescipher

// This file is the production encryption round: the classic 32-bit T-table
// formulation (FIPS-197 section 5.2 equation, Rijndael proposal section
// 4.2). Each table entry fuses SubBytes, the MixColumns column constants,
// and the byte placement of ShiftRows, so one round is sixteen word lookups
// and XORs instead of sixteen S-box lookups plus twelve GF(2^8) doublings.
// The tables are generated at init from the same first-principles S-box the
// reference path uses — nothing is hard-coded — and Encrypt is pinned to
// both EncryptOracle and crypto/aes by the differential tests.
//
// Like the S-box itself, the T-tables are indexed by secret state bytes:
// the canonical AES cache-timing channel. The suppressions below mirror the
// existing subWord ones — this code models the paper's pipelined hardware
// AES engine (Section 5), whose combinational round logic has no cache and
// therefore no timing image; software table timing is out of scope.

// te0..te3 are the four encryption T-tables; te1..te3 are byte rotations of
// te0, matching each state byte's destination column after ShiftRows.
var te0, te1, te2, te3 [256]uint32

// initTTables derives the T-tables from the generated S-box. Called from
// the package init in aes.go after the S-box is built, so table contents
// never depend on init-order subtleties between files.
func initTTables() {
	for i := 0; i < 256; i++ {
		s := sbox[i]
		s2 := mul2(s)
		s3 := s2 ^ s
		w := uint32(s2)<<24 | uint32(s)<<16 | uint32(s)<<8 | uint32(s3)
		te0[i] = w
		te1[i] = w>>8 | w<<24
		te2[i] = w>>16 | w<<16
		te3[i] = w>>24 | w<<8
	}
}

// encryptBlockFast runs the T-table rounds over one block. State words are
// the big-endian column words of the FIPS-197 state, identical to the round
// keys' layout, so AddRoundKey is a word XOR.
func (c *Cipher) encryptBlockFast(dst, src []byte) {
	_ = src[15]
	_ = dst[15]
	xk := c.enc
	s0 := uint32(src[0])<<24 | uint32(src[1])<<16 | uint32(src[2])<<8 | uint32(src[3])
	s1 := uint32(src[4])<<24 | uint32(src[5])<<16 | uint32(src[6])<<8 | uint32(src[7])
	s2 := uint32(src[8])<<24 | uint32(src[9])<<16 | uint32(src[10])<<8 | uint32(src[11])
	s3 := uint32(src[12])<<24 | uint32(src[13])<<16 | uint32(src[14])<<8 | uint32(src[15])
	s0 ^= xk[0]
	s1 ^= xk[1]
	s2 ^= xk[2]
	s3 ^= xk[3]
	k := 4
	for r := 1; r < c.rounds; r++ {
		t0 := te0[s0>>24] ^ te1[s1>>16&0xff] ^ te2[s2>>8&0xff] ^ te3[s3&0xff] ^ xk[k]   //secmemlint:ignore cttiming models the hardware engine's combinational round logic; software table timing out of scope
		t1 := te0[s1>>24] ^ te1[s2>>16&0xff] ^ te2[s3>>8&0xff] ^ te3[s0&0xff] ^ xk[k+1] //secmemlint:ignore cttiming models the hardware engine's combinational round logic; software table timing out of scope
		t2 := te0[s2>>24] ^ te1[s3>>16&0xff] ^ te2[s0>>8&0xff] ^ te3[s1&0xff] ^ xk[k+2] //secmemlint:ignore cttiming models the hardware engine's combinational round logic; software table timing out of scope
		t3 := te0[s3>>24] ^ te1[s0>>16&0xff] ^ te2[s1>>8&0xff] ^ te3[s2&0xff] ^ xk[k+3] //secmemlint:ignore cttiming models the hardware engine's combinational round logic; software table timing out of scope
		s0, s1, s2, s3 = t0, t1, t2, t3
		k += 4
	}
	// Final round: SubBytes and ShiftRows only (no MixColumns), straight
	// from the S-box.
	t0 := uint32(sbox[s0>>24])<<24 | uint32(sbox[s1>>16&0xff])<<16 | uint32(sbox[s2>>8&0xff])<<8 | uint32(sbox[s3&0xff]) //secmemlint:ignore cttiming models the hardware engine's combinational S-box; software table timing out of scope
	t1 := uint32(sbox[s1>>24])<<24 | uint32(sbox[s2>>16&0xff])<<16 | uint32(sbox[s3>>8&0xff])<<8 | uint32(sbox[s0&0xff]) //secmemlint:ignore cttiming models the hardware engine's combinational S-box; software table timing out of scope
	t2 := uint32(sbox[s2>>24])<<24 | uint32(sbox[s3>>16&0xff])<<16 | uint32(sbox[s0>>8&0xff])<<8 | uint32(sbox[s1&0xff]) //secmemlint:ignore cttiming models the hardware engine's combinational S-box; software table timing out of scope
	t3 := uint32(sbox[s3>>24])<<24 | uint32(sbox[s0>>16&0xff])<<16 | uint32(sbox[s1>>8&0xff])<<8 | uint32(sbox[s2&0xff]) //secmemlint:ignore cttiming models the hardware engine's combinational S-box; software table timing out of scope
	t0 ^= xk[k]
	t1 ^= xk[k+1]
	t2 ^= xk[k+2]
	t3 ^= xk[k+3]
	dst[0], dst[1], dst[2], dst[3] = byte(t0>>24), byte(t0>>16), byte(t0>>8), byte(t0)
	dst[4], dst[5], dst[6], dst[7] = byte(t1>>24), byte(t1>>16), byte(t1>>8), byte(t1)
	dst[8], dst[9], dst[10], dst[11] = byte(t2>>24), byte(t2>>16), byte(t2>>8), byte(t2)
	dst[12], dst[13], dst[14], dst[15] = byte(t3>>24), byte(t3>>16), byte(t3>>8), byte(t3)
}
