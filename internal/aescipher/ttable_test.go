package aescipher

import (
	"bytes"
	"crypto/aes"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestEncryptMatchesStdlib pins the T-table path to crypto/aes over random
// keys of every AES size and random blocks.
func TestEncryptMatchesStdlib(t *testing.T) {
	for _, keyLen := range []int{16, 24, 32} {
		f := func(seed int64, blk [16]byte) bool {
			rng := rand.New(rand.NewSource(seed))
			key := make([]byte, keyLen)
			rng.Read(key)
			ours := MustNew(key)
			std, err := aes.NewCipher(key)
			if err != nil {
				t.Fatal(err)
			}
			var got, want [16]byte
			ours.Encrypt(got[:], blk[:])
			std.Encrypt(want[:], blk[:])
			return got == want
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
			t.Errorf("AES-%d: %v", keyLen*8, err)
		}
	}
}

// TestEncryptMatchesOracle pins the T-table path to the byte-wise FIPS-197
// reference rounds, and Decrypt inverts both.
func TestEncryptMatchesOracle(t *testing.T) {
	for _, keyLen := range []int{16, 24, 32} {
		f := func(seed int64, blk [16]byte) bool {
			rng := rand.New(rand.NewSource(seed))
			key := make([]byte, keyLen)
			rng.Read(key)
			c := MustNew(key)
			var fast, ref, back [16]byte
			c.Encrypt(fast[:], blk[:])
			c.EncryptOracle(ref[:], blk[:])
			c.Decrypt(back[:], fast[:])
			return fast == ref && back == blk
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
			t.Errorf("AES-%d: %v", keyLen*8, err)
		}
	}
}

// TestEncryptZeroAlloc keeps the block operation off the heap.
func TestEncryptZeroAlloc(t *testing.T) {
	c := MustNew(bytes.Repeat([]byte{3}, 16))
	var in, out [16]byte
	allocs := testing.AllocsPerRun(200, func() {
		c.Encrypt(out[:], in[:])
	})
	if allocs != 0 {
		t.Errorf("Encrypt allocates %.1f objects/op, want 0", allocs)
	}
}
