package aescipher

import (
	"bytes"
	"encoding/hex"
	"testing"
	"testing/quick"
)

func unhex(t *testing.T, s string) []byte {
	t.Helper()
	b, err := hex.DecodeString(s)
	if err != nil {
		t.Fatalf("bad hex %q: %v", s, err)
	}
	return b
}

// FIPS-197 Appendix C known-answer vectors for all three key sizes.
var fipsVectors = []struct {
	key, plain, cipher string
}{
	{
		"000102030405060708090a0b0c0d0e0f",
		"00112233445566778899aabbccddeeff",
		"69c4e0d86a7b0430d8cdb78070b4c55a",
	},
	{
		"000102030405060708090a0b0c0d0e0f1011121314151617",
		"00112233445566778899aabbccddeeff",
		"dda97ca4864cdfe06eaf70a0ec0d7191",
	},
	{
		"000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f",
		"00112233445566778899aabbccddeeff",
		"8ea2b7ca516745bfeafc49904b496089",
	},
}

func TestFIPS197Vectors(t *testing.T) {
	for _, v := range fipsVectors {
		c := MustNew(unhex(t, v.key))
		got := make([]byte, 16)
		c.Encrypt(got, unhex(t, v.plain))
		if want := unhex(t, v.cipher); !bytes.Equal(got, want) {
			t.Errorf("key %s: encrypt = %x, want %x", v.key, got, want)
		}
		back := make([]byte, 16)
		c.Decrypt(back, got)
		if want := unhex(t, v.plain); !bytes.Equal(back, want) {
			t.Errorf("key %s: decrypt = %x, want %x", v.key, back, want)
		}
	}
}

// FIPS-197 Appendix B worked example (AES-128).
func TestAppendixBExample(t *testing.T) {
	c := MustNew(unhex(t, "2b7e151628aed2a6abf7158809cf4f3c"))
	got := make([]byte, 16)
	c.Encrypt(got, unhex(t, "3243f6a8885a308d313198a2e0370734"))
	if want := unhex(t, "3925841d02dc09fbdc118597196a0b32"); !bytes.Equal(got, want) {
		t.Errorf("encrypt = %x, want %x", got, want)
	}
}

func TestNewRejectsBadKeySizes(t *testing.T) {
	for _, n := range []int{0, 1, 15, 17, 23, 25, 31, 33, 64} {
		if _, err := New(make([]byte, n)); err == nil {
			t.Errorf("New accepted %d-byte key", n)
		}
	}
	for _, n := range []int{16, 24, 32} {
		if _, err := New(make([]byte, n)); err != nil {
			t.Errorf("New rejected %d-byte key: %v", n, err)
		}
	}
}

func TestEncryptInPlace(t *testing.T) {
	c := MustNew(unhex(t, "000102030405060708090a0b0c0d0e0f"))
	buf := unhex(t, "00112233445566778899aabbccddeeff")
	c.Encrypt(buf, buf)
	if want := unhex(t, "69c4e0d86a7b0430d8cdb78070b4c55a"); !bytes.Equal(buf, want) {
		t.Errorf("in-place encrypt = %x, want %x", buf, want)
	}
	c.Decrypt(buf, buf)
	if want := unhex(t, "00112233445566778899aabbccddeeff"); !bytes.Equal(buf, want) {
		t.Errorf("in-place decrypt = %x, want %x", buf, want)
	}
}

func TestShortBlockPanics(t *testing.T) {
	c := MustNew(make([]byte, 16))
	defer func() {
		if recover() == nil {
			t.Fatal("Encrypt on short block did not panic")
		}
	}()
	c.Encrypt(make([]byte, 8), make([]byte, 8))
}

func TestSboxIsPermutationAndInverse(t *testing.T) {
	var seen [256]bool
	for i := 0; i < 256; i++ {
		s := sbox[i]
		if seen[s] {
			t.Fatalf("sbox value %#x repeated", s)
		}
		seen[s] = true
		if invSbox[s] != byte(i) {
			t.Fatalf("invSbox[sbox[%#x]] = %#x", i, invSbox[s])
		}
	}
	// Two spot values from FIPS-197 figure 7.
	if sbox[0x00] != 0x63 || sbox[0x53] != 0xed || sbox[0xff] != 0x16 {
		t.Errorf("sbox spot check failed: %#x %#x %#x", sbox[0x00], sbox[0x53], sbox[0xff])
	}
}

func TestGFMulProperties(t *testing.T) {
	// Commutativity and distributivity over a quick sample.
	comm := func(a, b byte) bool { return Mul(a, b) == Mul(b, a) }
	if err := quick.Check(comm, nil); err != nil {
		t.Error(err)
	}
	dist := func(a, b, c byte) bool { return Mul(a, b^c) == Mul(a, b)^Mul(a, c) }
	if err := quick.Check(dist, nil); err != nil {
		t.Error(err)
	}
	// Identity and annihilator.
	for i := 0; i < 256; i++ {
		if Mul(byte(i), 1) != byte(i) {
			t.Fatalf("Mul(%#x, 1) != %#x", i, i)
		}
		if Mul(byte(i), 0) != 0 {
			t.Fatalf("Mul(%#x, 0) != 0", i)
		}
	}
}

func TestRoundTripQuick(t *testing.T) {
	for _, ks := range []int{16, 24, 32} {
		ks := ks
		f := func(key [32]byte, pt [16]byte) bool {
			c := MustNew(key[:ks])
			var ct, back [16]byte
			c.Encrypt(ct[:], pt[:])
			c.Decrypt(back[:], ct[:])
			return back == pt && ct != pt // SPN should never be identity on random input
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 64}); err != nil {
			t.Errorf("key size %d: %v", ks, err)
		}
	}
}

func TestRoundsPerKeySize(t *testing.T) {
	for _, tc := range []struct{ keyLen, rounds int }{{16, 10}, {24, 12}, {32, 14}} {
		c := MustNew(make([]byte, tc.keyLen))
		if c.Rounds() != tc.rounds {
			t.Errorf("key %d bytes: rounds = %d, want %d", tc.keyLen, c.Rounds(), tc.rounds)
		}
	}
}

func TestKeyAvalanche(t *testing.T) {
	// Flipping one key bit must change the ciphertext (sanity, not a
	// statistical test).
	key := make([]byte, 16)
	pt := make([]byte, 16)
	base := make([]byte, 16)
	MustNew(key).Encrypt(base, pt)
	key[0] ^= 1
	other := make([]byte, 16)
	MustNew(key).Encrypt(other, pt)
	if bytes.Equal(base, other) {
		t.Error("ciphertext unchanged after key bit flip")
	}
}

func BenchmarkEncryptBlock(b *testing.B) {
	c := MustNew(make([]byte, 16))
	buf := make([]byte, 16)
	b.SetBytes(16)
	for i := 0; i < b.N; i++ {
		c.Encrypt(buf, buf)
	}
}

func BenchmarkDecryptBlock(b *testing.B) {
	c := MustNew(make([]byte, 16))
	buf := make([]byte, 16)
	b.SetBytes(16)
	for i := 0; i < b.N; i++ {
		c.Decrypt(buf, buf)
	}
}
