// Package aescipher implements the AES block cipher (FIPS-197) from first
// principles: the S-box is derived from GF(2^8) inversion plus the affine
// transform at package init rather than hard-coded, and encryption operates
// on the canonical 4x4 state array.
//
// The package exists so that the secure-memory simulator's functional mode
// performs real encryption with no dependency on crypto/aes, keeping the
// whole substrate self-contained and auditable. It is validated against the
// FIPS-197 appendix vectors in the package tests.
package aescipher

import (
	"errors"
	"fmt"
)

// BlockSize is the AES block size in bytes for all key sizes.
const BlockSize = 16

var (
	sbox    [256]byte
	invSbox [256]byte
	// rcon holds the round constants used by key expansion. rcon[0] is
	// unused so that indices match the FIPS-197 numbering.
	rcon [11]byte
	// mul9/11/13/14 are the InvMixColumns constant-multiplication tables;
	// computing them once makes decryption as table-driven as encryption.
	mul9, mul11, mul13, mul14 [256]byte
)

// mul2 multiplies a GF(2^8) element by x (i.e. by {02}) modulo the AES
// polynomial x^8 + x^4 + x^3 + x + 1.
func mul2(b byte) byte {
	hi := b & 0x80
	b <<= 1
	if hi != 0 { //secmemlint:ignore cttiming models the hardware engine's combinational xtime reduction; software branch timing out of scope
		b ^= 0x1b
	}
	return b
}

// Mul multiplies two elements of GF(2^8) under the AES reduction polynomial.
// Exported because the Merkle/GHASH tests reuse it as an independent oracle
// for small-field algebra.
func Mul(a, b byte) byte {
	var p byte
	for i := 0; i < 8; i++ {
		if b&1 != 0 {
			p ^= a
		}
		b >>= 1
		a = mul2(a)
	}
	return p
}

func init() {
	// Build exp/log tables over the generator {03}, then the S-box as
	// affine(inverse(x)) per FIPS-197 section 5.1.1.
	var exp [256]byte
	var log [256]byte
	x := byte(1)
	for i := 0; i < 255; i++ {
		exp[i] = x
		log[x] = byte(i)
		x = Mul(x, 3)
	}
	inv := func(b byte) byte {
		if b == 0 {
			return 0
		}
		return exp[(255-int(log[b]))%255]
	}
	rotl := func(b byte, n uint) byte { return b<<n | b>>(8-n) }
	for i := 0; i < 256; i++ {
		v := inv(byte(i))
		s := v ^ rotl(v, 1) ^ rotl(v, 2) ^ rotl(v, 3) ^ rotl(v, 4) ^ 0x63
		sbox[i] = s
		invSbox[s] = byte(i)
	}
	c := byte(1)
	for i := 1; i <= 10; i++ {
		rcon[i] = c
		c = mul2(c)
	}
	initTTables()
	for i := 0; i < 256; i++ {
		b := byte(i)
		mul9[i] = Mul(b, 0x09)
		mul11[i] = Mul(b, 0x0b)
		mul13[i] = Mul(b, 0x0d)
		mul14[i] = Mul(b, 0x0e)
	}
}

// Cipher is an expanded-key AES instance. It is safe for concurrent use
// once created: all methods are read-only with respect to the receiver.
type Cipher struct {
	//secmemlint:secret — round keys for encryption (expanded key schedule)
	enc []uint32
	//secmemlint:secret — round keys for decryption (equivalent inverse cipher)
	dec    []uint32
	rounds int
}

// New expands key (16, 24, or 32 bytes for AES-128/192/256) into a Cipher.
//
func New(key []byte) (*Cipher, error) {
	var rounds int
	switch len(key) {
	case 16:
		rounds = 10
	case 24:
		rounds = 12
	case 32:
		rounds = 14
	default:
		return nil, fmt.Errorf("aescipher: invalid key size %d", len(key))
	}
	c := &Cipher{rounds: rounds}
	c.expandKey(key)
	return c, nil
}

// MustNew is New but panics on a bad key size; convenient for fixed-size
// keys generated inside the simulator.
//
func MustNew(key []byte) *Cipher {
	c, err := New(key)
	if err != nil {
		panic(err)
	}
	return c
}

// subWord applies the S-box to each byte of a key-schedule word. The
// lookups are secret-indexed — the canonical AES cache-timing channel —
// and are suppressed per line because this code models the hardware
// engine's combinational S-box, where no cache exists (Section 5).
//
func subWord(w uint32) uint32 {
	return uint32(sbox[w>>24])<<24 | uint32(sbox[w>>16&0xff])<<16 | //secmemlint:ignore cttiming models the hardware engine's combinational S-box; software table timing out of scope
		uint32(sbox[w>>8&0xff])<<8 | uint32(sbox[w&0xff]) //secmemlint:ignore cttiming models the hardware engine's combinational S-box; software table timing out of scope
}

func rotWord(w uint32) uint32 { return w<<8 | w>>24 }

func (c *Cipher) expandKey(key []byte) {
	nk := len(key) / 4
	n := 4 * (c.rounds + 1)
	w := make([]uint32, n)
	for i := 0; i < nk; i++ {
		w[i] = uint32(key[4*i])<<24 | uint32(key[4*i+1])<<16 |
			uint32(key[4*i+2])<<8 | uint32(key[4*i+3])
	}
	for i := nk; i < n; i++ {
		t := w[i-1]
		switch {
		case i%nk == 0:
			t = subWord(rotWord(t)) ^ uint32(rcon[i/nk])<<24
		case nk > 6 && i%nk == 4:
			t = subWord(t)
		}
		w[i] = w[i-nk] ^ t
	}
	c.enc = w

	// Equivalent inverse cipher key schedule: reverse round order and apply
	// InvMixColumns to the middle round keys (FIPS-197 section 5.3.5).
	d := make([]uint32, n)
	for i := 0; i < n; i += 4 {
		j := n - 4 - i
		for k := 0; k < 4; k++ {
			v := w[j+k]
			if i > 0 && i < n-4 {
				v = invMixWord(v)
			}
			d[i+k] = v
		}
	}
	c.dec = d
}

func invMixWord(w uint32) uint32 {
	var b [4]byte
	b[0], b[1], b[2], b[3] = byte(w>>24), byte(w>>16), byte(w>>8), byte(w)
	var o [4]byte
	//secmemlint:ignore cttiming models the hardware key-schedule InvMixColumns network; software table timing out of scope
	o[0] = mul14[b[0]] ^ mul11[b[1]] ^ mul13[b[2]] ^ mul9[b[3]]
	//secmemlint:ignore cttiming models the hardware key-schedule InvMixColumns network; software table timing out of scope
	o[1] = mul9[b[0]] ^ mul14[b[1]] ^ mul11[b[2]] ^ mul13[b[3]]
	//secmemlint:ignore cttiming models the hardware key-schedule InvMixColumns network; software table timing out of scope
	o[2] = mul13[b[0]] ^ mul9[b[1]] ^ mul14[b[2]] ^ mul11[b[3]]
	//secmemlint:ignore cttiming models the hardware key-schedule InvMixColumns network; software table timing out of scope
	o[3] = mul11[b[0]] ^ mul13[b[1]] ^ mul9[b[2]] ^ mul14[b[3]]
	return uint32(o[0])<<24 | uint32(o[1])<<16 | uint32(o[2])<<8 | uint32(o[3])
}

// ErrBlockSize is returned by checked block operations on wrong-size input.
var ErrBlockSize = errors.New("aescipher: input not a full block")

// Encrypt encrypts exactly one 16-byte block from src into dst via the
// T-table rounds (ttable.go). dst and src may overlap completely or not at
// all. EncryptOracle is the byte-wise reference the tests pin this against.
//
//secmemlint:hotpath
func (c *Cipher) Encrypt(dst, src []byte) {
	if len(src) < BlockSize || len(dst) < BlockSize {
		panic(ErrBlockSize)
	}
	c.encryptBlockFast(dst, src)
}

// EncryptOracle encrypts one block with the literal FIPS-197 step-by-step
// rounds (SubBytes, ShiftRows, MixColumns as separate byte transforms). It
// is the differential oracle for the T-table path and the baseline the
// speed benchmarks measure the fast path against; production callers use
// Encrypt.
func (c *Cipher) EncryptOracle(dst, src []byte) {
	if len(src) < BlockSize || len(dst) < BlockSize {
		panic(ErrBlockSize)
	}
	var s [16]byte
	copy(s[:], src)
	addRoundKey(&s, c.enc[0:4])
	for r := 1; r < c.rounds; r++ {
		subBytes(&s)
		shiftRows(&s)
		mixColumns(&s)
		addRoundKey(&s, c.enc[4*r:4*r+4])
	}
	subBytes(&s)
	shiftRows(&s)
	addRoundKey(&s, c.enc[4*c.rounds:4*c.rounds+4])
	copy(dst, s[:])
}

// Decrypt decrypts exactly one 16-byte block from src into dst.
func (c *Cipher) Decrypt(dst, src []byte) {
	if len(src) < BlockSize || len(dst) < BlockSize {
		panic(ErrBlockSize)
	}
	var s [16]byte
	copy(s[:], src)
	addRoundKey(&s, c.dec[0:4])
	for r := 1; r < c.rounds; r++ {
		invSubBytes(&s)
		invShiftRows(&s)
		invMixColumns(&s)
		addRoundKey(&s, c.dec[4*r:4*r+4])
	}
	invSubBytes(&s)
	invShiftRows(&s)
	addRoundKey(&s, c.dec[4*c.rounds:4*c.rounds+4])
	copy(dst, s[:])
}

// The state is stored column-major as FIPS-197 does: s[4*c+r] is row r,
// column c. Round keys are one uint32 per column, big-endian.

func addRoundKey(s *[16]byte, rk []uint32) {
	for col := 0; col < 4; col++ {
		w := rk[col]
		s[4*col+0] ^= byte(w >> 24)
		s[4*col+1] ^= byte(w >> 16)
		s[4*col+2] ^= byte(w >> 8)
		s[4*col+3] ^= byte(w)
	}
}

func subBytes(s *[16]byte) {
	for i := range s {
		s[i] = sbox[s[i]] //secmemlint:ignore cttiming models the hardware engine's combinational S-box; software table timing out of scope
	}
}

func invSubBytes(s *[16]byte) {
	for i := range s {
		s[i] = invSbox[s[i]] //secmemlint:ignore cttiming models the hardware engine's combinational inverse S-box; software table timing out of scope
	}
}

func shiftRows(s *[16]byte) {
	// Row r rotates left by r positions across the four columns.
	s[1], s[5], s[9], s[13] = s[5], s[9], s[13], s[1]
	s[2], s[6], s[10], s[14] = s[10], s[14], s[2], s[6]
	s[3], s[7], s[11], s[15] = s[15], s[3], s[7], s[11]
}

func invShiftRows(s *[16]byte) {
	s[1], s[5], s[9], s[13] = s[13], s[1], s[5], s[9]
	s[2], s[6], s[10], s[14] = s[10], s[14], s[2], s[6]
	s[3], s[7], s[11], s[15] = s[7], s[11], s[15], s[3]
}

func mixColumns(s *[16]byte) {
	for c := 0; c < 4; c++ {
		a0, a1, a2, a3 := s[4*c], s[4*c+1], s[4*c+2], s[4*c+3]
		s[4*c+0] = mul2(a0) ^ (mul2(a1) ^ a1) ^ a2 ^ a3
		s[4*c+1] = a0 ^ mul2(a1) ^ (mul2(a2) ^ a2) ^ a3
		s[4*c+2] = a0 ^ a1 ^ mul2(a2) ^ (mul2(a3) ^ a3)
		s[4*c+3] = (mul2(a0) ^ a0) ^ a1 ^ a2 ^ mul2(a3)
	}
}

func invMixColumns(s *[16]byte) {
	for c := 0; c < 4; c++ {
		a0, a1, a2, a3 := s[4*c], s[4*c+1], s[4*c+2], s[4*c+3]
		s[4*c+0] = mul14[a0] ^ mul11[a1] ^ mul13[a2] ^ mul9[a3] //secmemlint:ignore cttiming models the hardware engine's combinational InvMixColumns network; software table timing out of scope
		s[4*c+1] = mul9[a0] ^ mul14[a1] ^ mul11[a2] ^ mul13[a3] //secmemlint:ignore cttiming models the hardware engine's combinational InvMixColumns network; software table timing out of scope
		s[4*c+2] = mul13[a0] ^ mul9[a1] ^ mul14[a2] ^ mul11[a3] //secmemlint:ignore cttiming models the hardware engine's combinational InvMixColumns network; software table timing out of scope
		s[4*c+3] = mul11[a0] ^ mul13[a1] ^ mul9[a2] ^ mul14[a3] //secmemlint:ignore cttiming models the hardware engine's combinational InvMixColumns network; software table timing out of scope
	}
}

// Rounds reports the number of AES rounds for this key size (10, 12, or 14).
func (c *Cipher) Rounds() int { return c.rounds }
