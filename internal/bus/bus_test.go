package bus

import "testing"

func TestOccupancy(t *testing.T) {
	b := New(DefaultConfig())
	cases := []struct {
		bytes int
		want  uint64
	}{
		{0, 0}, {1, 8}, {16, 8}, {17, 16}, {64, 32}, {72, 40},
	}
	for _, c := range cases {
		if got := b.Occupancy(c.bytes); got != c.want {
			t.Errorf("Occupancy(%d) = %d, want %d", c.bytes, got, c.want)
		}
	}
}

func TestTransferQueuing(t *testing.T) {
	b := New(DefaultConfig())
	if got := b.Transfer(0, 64); got != 0 {
		t.Errorf("first transfer start = %d", got)
	}
	if got := b.Transfer(0, 64); got != 32 {
		t.Errorf("second transfer start = %d, want 32", got)
	}
	if b.Transfers != 2 || b.Bytes != 128 {
		t.Errorf("stats = %d transfers, %d bytes", b.Transfers, b.Bytes)
	}
	if b.QueueDelay() != 32 {
		t.Errorf("queue delay = %d, want 32", b.QueueDelay())
	}
}

func TestBandwidthSaturation(t *testing.T) {
	// 100 back-to-back 64-byte transfers at cycle 0 must take 100*32 cycles
	// of bus occupancy: the bus is the bandwidth bound.
	b := New(DefaultConfig())
	var last uint64
	for i := 0; i < 100; i++ {
		last = b.Transfer(0, 64)
	}
	if want := uint64(99 * 32); last != want {
		t.Errorf("last start = %d, want %d", last, want)
	}
	if b.BusyCycles() != 100*32 {
		t.Errorf("busy = %d", b.BusyCycles())
	}
}

func TestReset(t *testing.T) {
	b := New(DefaultConfig())
	b.Transfer(0, 64)
	b.Reset()
	if b.Transfers != 0 || b.BusyCycles() != 0 {
		t.Error("Reset did not clear state")
	}
	if got := b.Transfer(0, 64); got != 0 {
		t.Errorf("post-reset start = %d", got)
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid bus config did not panic")
		}
	}()
	New(Config{WidthBytes: 0, CPUCyclesPerBusCycle: 8})
}
