// Package bus models the processor-memory data bus of the simulated system:
// 128 bits wide at 600 MHz under a 5 GHz core, so a 64-byte block transfer
// occupies the bus for four bus cycles, about 33 processor cycles. Transfers
// are served FIFO; queuing delay emerges from the shared timeline.
package bus

import (
	"secmem/internal/obsv"
	"secmem/internal/sim"
)

// Config describes the bus.
type Config struct {
	// WidthBytes is the data width per bus cycle (16 for 128 bits).
	WidthBytes int
	// CPUCyclesPerBusCycle is the core-to-bus clock ratio times one; with a
	// 5 GHz core and 600 MHz bus this is 8 (we round 8.33 down; the paper's
	// 200-cycle round trip subsumes the remainder).
	CPUCyclesPerBusCycle sim.Time
}

// DefaultConfig matches the paper's Section 5 parameters.
func DefaultConfig() Config {
	return Config{WidthBytes: 16, CPUCyclesPerBusCycle: 8}
}

// Bus is the shared transfer resource.
type Bus struct {
	cfg Config
	res sim.Resource

	// Transfers and Bytes accumulate traffic statistics.
	Transfers uint64
	Bytes     uint64

	// Observability handles; all nil-safe, so an uninstrumented bus pays
	// one predicted branch per call.
	mXfer  *obsv.Counter
	mBytes *obsv.Counter
	hWait  *obsv.Histogram
	rec    *obsv.Recorder
}

// Instrument registers the bus's metrics in reg and attaches the trace
// recorder. Either argument may be nil.
func (b *Bus) Instrument(reg *obsv.Registry, rec *obsv.Recorder) {
	b.mXfer = reg.Counter("bus.xfer")
	b.mBytes = reg.Counter("bus.bytes")
	b.hWait = reg.Histogram("bus.wait")
	b.rec = rec
}

// New creates a bus.
func New(cfg Config) *Bus {
	if cfg.WidthBytes <= 0 || cfg.CPUCyclesPerBusCycle == 0 {
		panic("bus: invalid config")
	}
	return &Bus{cfg: cfg}
}

// Occupancy returns the bus cycles (in CPU cycles) needed to move n bytes.
func (b *Bus) Occupancy(n int) sim.Time {
	if n <= 0 {
		return 0
	}
	busCycles := sim.Time((n + b.cfg.WidthBytes - 1) / b.cfg.WidthBytes)
	return busCycles * b.cfg.CPUCyclesPerBusCycle
}

// Transfer reserves the bus for an n-byte transfer arriving at now and
// returns the cycle the transfer starts.
func (b *Bus) Transfer(now sim.Time, n int) sim.Time {
	b.Transfers++
	b.Bytes += uint64(n)
	occ := b.Occupancy(n)
	start := b.res.Acquire(now, occ)
	b.mXfer.Inc()
	b.mBytes.Add(uint64(n))
	b.hWait.Observe(uint64(start - now))
	b.rec.Span("bus", "xfer", uint64(start), uint64(start+occ))
	return start
}

// BusyCycles reports cumulative occupancy, for utilization stats.
func (b *Bus) BusyCycles() sim.Time { return b.res.BusyCycles() }

// QueueDelay reports cumulative queuing delay imposed on transfers.
func (b *Bus) QueueDelay() sim.Time { return b.res.WaitedCycles() }

// Utilization is the fraction of [0, end) the bus spent transferring.
func (b *Bus) Utilization(end sim.Time) float64 { return b.res.Utilization(end) }

// Reset clears the timeline and statistics.
func (b *Bus) Reset() {
	b.res.Reset()
	b.Transfers = 0
	b.Bytes = 0
}
