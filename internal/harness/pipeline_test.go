package harness

import (
	"os"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"secmem/internal/config"
	"secmem/internal/cpu"
	"secmem/internal/sim"
	"secmem/internal/trace"
)

// keyedEvent pairs an event with its calendar key so the differential
// tests compare routing keys, not just event order.
type keyedEvent struct {
	ev  cpu.Event
	key sim.Time
}

// drainCalendar empties a calendar into a keyed event list.
func drainCalendar(c *sim.Calendar[cpu.Event], dst []keyedEvent) []keyedEvent {
	for {
		ev, key, ok := c.Pop()
		if !ok {
			return dst
		}
		dst = append(dst, keyedEvent{ev, key})
	}
}

// drainPipeline runs the pipelined front-end and collects every slice's
// spliced segment stream and budget. Each slice drains concurrently —
// the channels are bounded, so a serial drain could stall the router.
func drainPipeline(t *testing.T, bench string, seed int64, total uint64, workers int, chunk uint64) ([][]keyedEvent, []uint64) {
	t.Helper()
	cfg := config.Default()
	gen := trace.NewGenerator(trace.Get(bench), seed)
	pool := &calPool{}
	pw := &pipeWall{start: time.Now()}
	segCh, pipeWG := startPipeline(gen, cfg, total, workers, chunk, pool, pw)

	events := make([][]keyedEvent, ShardSlices)
	budgets := make([]uint64, ShardSlices)
	var wg sync.WaitGroup
	for s := 0; s < ShardSlices; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			finals := 0
			for seg := range segCh[s] {
				if !seg.cal.Sealed() {
					t.Errorf("slice %d received an unsealed segment", s)
				}
				events[s] = drainCalendar(seg.cal, events[s])
				if seg.final {
					finals++
					budgets[s] = seg.budget
				}
				pool.put(seg.cal)
			}
			if finals != 1 {
				t.Errorf("slice %d saw %d final segments, want exactly 1", s, finals)
			}
		}()
	}
	wg.Wait()
	pipeWG.Wait()
	return events, budgets
}

// TestPipelineMatchesRouteStream is the tentpole differential: for every
// route-worker count and chunk size, the pipeline's per-slice spliced
// segment streams — events, calendar keys, and budgets — must be
// identical to the serial routeStream reference.
func TestPipelineMatchesRouteStream(t *testing.T) {
	const total = 60_000
	for _, bench := range []string{"swim", "mcf", "gcc"} {
		queues, wantBudget := routeStream(trace.NewGenerator(trace.Get(bench), 7), config.Default(), total)
		want := make([][]keyedEvent, ShardSlices)
		for s := range queues {
			want[s] = drainCalendar(queues[s], nil)
		}
		for _, workers := range []int{1, 2, runtime.GOMAXPROCS(0) + 1} {
			for _, chunk := range []uint64{1, 977, defaultRouteChunk, total * 2} {
				events, budgets := drainPipeline(t, bench, 7, total, workers, chunk)
				for s := 0; s < ShardSlices; s++ {
					if budgets[s] != wantBudget[s] {
						t.Fatalf("%s workers=%d chunk=%d slice %d: budget %d, want %d",
							bench, workers, chunk, s, budgets[s], wantBudget[s])
					}
					if !reflect.DeepEqual(events[s], want[s]) {
						limit := len(events[s])
						if len(want[s]) < limit {
							limit = len(want[s])
						}
						for i := 0; i < limit; i++ {
							if events[s][i] != want[s][i] {
								t.Fatalf("%s workers=%d chunk=%d slice %d event %d: %+v, want %+v",
									bench, workers, chunk, s, i, events[s][i], want[s][i])
							}
						}
						t.Fatalf("%s workers=%d chunk=%d slice %d: %d events, want %d",
							bench, workers, chunk, s, len(events[s]), len(want[s]))
					}
				}
			}
		}
	}
}

// TestShardedInvariantAcrossPipelineKnobs: full sharded runs must be
// DeepEqual across every route-worker count and chunk size — the knobs
// move wall time only.
func TestShardedInvariantAcrossPipelineKnobs(t *testing.T) {
	run := func(routeWorkers, routeChunk int) RunOut {
		r := New(Options{Instructions: 120_000, Seed: 1, Shards: 2,
			RouteWorkers: routeWorkers, RouteChunk: routeChunk})
		return r.Run("swim", config.Default())
	}
	want := run(1, 0)
	for _, rw := range []int{2, runtime.GOMAXPROCS(0) + 2} {
		if got := run(rw, 0); !reflect.DeepEqual(want, got) {
			t.Fatalf("routeworkers=%d result differs:\n%+v\nvs\n%+v", rw, got, want)
		}
	}
	for _, chunk := range []int{1000, 8192, 1 << 20} {
		if got := run(1, chunk); !reflect.DeepEqual(want, got) {
			t.Fatalf("routechunk=%d result differs:\n%+v\nvs\n%+v", chunk, got, want)
		}
	}
}

// TestPipelineStats: a sharded run populates the wall-clock accounting
// with ordered, sane fractions; a serial run leaves it at zero.
func TestPipelineStats(t *testing.T) {
	r := New(Options{Instructions: 200_000, Seed: 1, Shards: 2})
	r.Run("swim", config.Default())
	overhead, fill := r.PipelineStats()
	if overhead <= 0 || fill <= 0 {
		t.Fatalf("sharded run left pipeline stats unset: overhead=%v fill=%v", overhead, fill)
	}
	if overhead > fill {
		t.Fatalf("route overhead %v exceeds pipeline fill %v", overhead, fill)
	}
	if fill > 1.05 {
		t.Fatalf("pipeline fill fraction %v exceeds the run's wall time", fill)
	}

	serial := New(Options{Instructions: 50_000, Seed: 1})
	serial.Run("swim", config.Default())
	if o, f := serial.PipelineStats(); o != 0 || f != 0 {
		t.Fatalf("serial run reports pipeline stats %v/%v, want 0/0", o, f)
	}
}

// TestCalPoolRecirculates: after a sharded run, the Runner's scratch pool
// holds recycled segments, and repeated runs keep the pool under the
// pipeline's structural cap — the most calendars that can ever be live
// at once is one open plus segInFlight queued plus one being drained,
// per slice. Scheduling decides how close any given run gets to that
// cap (under the race detector the slices drain slower and more
// segments pile up), so the bound is the cap, not the first run's size.
func TestCalPoolRecirculates(t *testing.T) {
	const maxLive = ShardSlices * (segInFlight + 2)
	r := New(Options{Instructions: 150_000, Seed: 1, Shards: 1})
	r.Run("swim", config.Default())
	if len(r.calScratch.free) == 0 {
		t.Fatal("scratch pool empty after a sharded run; segments are not recycled")
	}
	for i := 0; i < 3; i++ {
		r.Run("swim", config.Default())
		if n := len(r.calScratch.free); n > maxLive {
			t.Fatalf("run %d left %d pooled calendars, above the structural cap %d; segments leak instead of recirculating", i+2, n, maxLive)
		}
	}
}

// TestShardedThroughputBeatsSerial is the bench-parallel-smoke gate for
// multi-core CI runners: with at least two CPUs, the sharded end-to-end
// wall time at GOMAXPROCS workers must not lose to the serial model on
// the same workload. Opt-in via SECMEM_PARALLEL_SMOKE=1 — wall-clock
// assertions are too flaky for the default suite — and skipped on
// single-CPU hosts, where the sharded core cannot win by construction.
func TestShardedThroughputBeatsSerial(t *testing.T) {
	if os.Getenv("SECMEM_PARALLEL_SMOKE") == "" {
		t.Skip("set SECMEM_PARALLEL_SMOKE=1 to run the throughput smoke test")
	}
	procs := runtime.GOMAXPROCS(0)
	if procs < 2 {
		t.Skipf("GOMAXPROCS=%d: parallel speedup needs a multi-core runner", procs)
	}
	const instructions = 2_000_000
	cfg := config.Default()
	bestOf := func(opt Options) time.Duration {
		best := time.Duration(1<<63 - 1)
		for i := 0; i < 3; i++ {
			r := New(opt)
			start := time.Now()
			r.Run("swim", cfg)
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}
	serial := bestOf(Options{Instructions: instructions, Seed: 1})
	sharded := bestOf(Options{Instructions: instructions, Seed: 1, Shards: procs})
	speedup := float64(serial) / float64(sharded)
	t.Logf("serial %v, sharded(%d workers) %v, speedup %.2fx", serial, procs, sharded, speedup)
	if sharded > serial {
		t.Fatalf("sharded run (%v) slower than serial (%v) on %d CPUs", sharded, serial, procs)
	}
}
