package harness

import (
	"bytes"
	"reflect"
	"runtime"
	"testing"

	"secmem/internal/config"
	"secmem/internal/core"
	"secmem/internal/obsv"
	"secmem/internal/trace"
)

// shardedRun executes one sharded run at the given worker count.
func shardedRun(t *testing.T, workers int, functional bool) RunOut {
	t.Helper()
	r := New(Options{Instructions: 120_000, Seed: 1, Shards: workers, Functional: functional})
	return r.Run("swim", config.Default())
}

// TestShardedDeterministicAcrossWorkerCounts is the core guarantee: the
// worker count changes wall time only, never a simulated number.
func TestShardedDeterministicAcrossWorkerCounts(t *testing.T) {
	want := shardedRun(t, 1, false)
	for _, workers := range []int{2, runtime.GOMAXPROCS(0), ShardSlices + 3} {
		got := shardedRun(t, workers, false)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("shards=%d result differs from shards=1:\n%+v\nvs\n%+v", workers, got, want)
		}
	}
}

func TestShardedDeterministicFunctional(t *testing.T) {
	want := shardedRun(t, 1, true)
	got := shardedRun(t, 4, true)
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("functional sharded run differs across worker counts:\n%+v\nvs\n%+v", got, want)
	}
}

// TestShardedInstructionConservation: routing must neither lose nor invent
// instructions — the per-slice budgets sum to the requested count.
func TestShardedInstructionConservation(t *testing.T) {
	const total = 250_000
	r := New(Options{Instructions: total, Seed: 3, Shards: 2})
	out := r.Run("mcf", config.Default())
	if out.CPU.Instructions != total {
		t.Fatalf("merged instruction count %d, want %d", out.CPU.Instructions, total)
	}
}

// TestRouteStreamCoversEveryEvent replays the routing against a direct walk
// of the same generator: every event must land in the slice its address
// maps to, in program order.
func TestRouteStreamCoversEveryEvent(t *testing.T) {
	cfg := config.Default()
	const total = 50_000
	gen := trace.NewGenerator(trace.Get("gcc"), 7)
	queues, budget := routeStream(gen, cfg, total)

	ref := trace.NewGenerator(trace.Get("gcc"), 7)
	pageBytes := uint64(cfg.PageBlocks) * core.BlockSize
	var done uint64
	var wantBudget [ShardSlices]uint64
	perSlice := make([][]uint64, ShardSlices)
	for done < total {
		ev, ok := ref.Next()
		if !ok {
			break
		}
		s := sliceOf(ev.Addr, pageBytes)
		perSlice[s] = append(perSlice[s], ev.Addr)
		n := uint64(ev.NonMemBefore)
		if n >= total-done {
			wantBudget[s] += total - done
			break
		}
		wantBudget[s] += n + 1
		done += n + 1
	}
	var sum uint64
	for s := 0; s < ShardSlices; s++ {
		if budget[s] != wantBudget[s] {
			t.Fatalf("slice %d budget %d, want %d", s, budget[s], wantBudget[s])
		}
		sum += budget[s]
		src := &calSource{queues[s]}
		for i, wantAddr := range perSlice[s] {
			ev, ok := src.Next()
			if !ok {
				t.Fatalf("slice %d queue ended at %d of %d events", s, i, len(perSlice[s]))
			}
			if ev.Addr != wantAddr {
				t.Fatalf("slice %d event %d addr %#x, want %#x", s, i, ev.Addr, wantAddr)
			}
		}
		if _, ok := src.Next(); ok {
			t.Fatalf("slice %d queue has extra events", s)
		}
	}
	if sum != total {
		t.Fatalf("budgets sum to %d, want %d", sum, total)
	}
}

// TestMergeCtlCoversAllFields catches a future core.Stats field that the
// hand-written merge forgets: merging two all-ones structs must yield
// all-twos in every field.
func TestMergeCtlCoversAllFields(t *testing.T) {
	var a, b core.Stats
	fill := func(s *core.Stats) {
		v := reflect.ValueOf(s).Elem()
		for i := 0; i < v.NumField(); i++ {
			f := v.Field(i)
			if f.Kind() != reflect.Uint64 {
				t.Fatalf("core.Stats field %s has kind %s; extend the merge test", v.Type().Field(i).Name, f.Kind())
			}
			f.SetUint(1)
		}
	}
	fill(&a)
	fill(&b)
	m := mergeCtl(a, b)
	v := reflect.ValueOf(m)
	for i := 0; i < v.NumField(); i++ {
		if v.Field(i).Uint() != 2 {
			t.Fatalf("mergeCtl drops field %s", v.Type().Field(i).Name)
		}
	}
}

// TestShardedProbeMerge: the merged time series a sharded run publishes
// must be byte-identical across worker counts, sample for sample — the
// /timeseries.json contract for sharded servers.
func TestShardedProbeMerge(t *testing.T) {
	render := func(workers int) []byte {
		r := New(Options{Instructions: 150_000, Seed: 1, Shards: workers})
		smp := obsv.NewSampler(5000, 0)
		reg := obsv.NewRegistry()
		r.RunObserved("swim", config.Default(), Obs{Reg: reg, Smp: smp})
		var buf bytes.Buffer
		if err := smp.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	serial := render(1)
	if len(serial) == 0 {
		t.Fatal("empty time series")
	}
	for _, workers := range []int{2, runtime.GOMAXPROCS(0) + 1} {
		if got := render(workers); !bytes.Equal(serial, got) {
			t.Fatalf("shards=%d time series differs from shards=1:\n%s\nvs\n%s", workers, got, serial)
		}
	}
}

// TestShardedRegistryMergeDeterministic: merged registry snapshots are
// identical across worker counts too.
func TestShardedRegistryMergeDeterministic(t *testing.T) {
	snap := func(workers int) obsv.Snapshot {
		r := New(Options{Instructions: 100_000, Seed: 2, Shards: workers})
		reg := obsv.NewRegistry()
		r.RunObserved("swim", config.Default(), Obs{Reg: reg})
		return reg.Snapshot()
	}
	if a, b := snap(1), snap(3); !reflect.DeepEqual(a, b) {
		t.Fatalf("registry snapshots differ across worker counts:\n%+v\nvs\n%+v", a, b)
	}
}
