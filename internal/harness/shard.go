package harness

import (
	"sort"
	"sync"
	"time"

	"secmem/internal/config"
	"secmem/internal/core"
	"secmem/internal/cpu"
	"secmem/internal/obsv"
	"secmem/internal/reenc"
	"secmem/internal/sim"
	"secmem/internal/trace"
)

// The sharded sim core (Options.Shards > 0) partitions the physical
// address space into ShardSlices independent slices and simulates each on
// its own machine: private L1/L2, counter cache, RSRs, and the Merkle
// subtree above the slice's split point — the paper's observation that
// independent address shards never touch each other's counter-cache or
// tree state, taken to its logical conclusion. The single deterministic
// instruction stream is routed once, up front, into per-slice calendar
// queues keyed on estimated dispatch cycles; worker goroutines then drain
// whole slices, and the results merge in fixed slice-index order.
//
// Determinism argument, in three steps (DESIGN.md §15):
//
//  1. Routing is serial and depends only on (bench, seed, cfg): each event
//     goes to slice (addr / pageBytes) % ShardSlices with its preceding
//     non-memory instructions, so the per-slice streams are a function of
//     the inputs alone.
//  2. Each slice is a closed system — one CPU, one memory hierarchy, one
//     calendar queue, touched by exactly one worker at a time (the
//     partitioned-index idiom the sharedstate analyzer blesses). Its
//     simulation result is a function of its stream alone.
//  3. The merge visits slices in index order and uses order-insensitive
//     folds (sums, maxima, sorted concatenation, ShardedRegistry.Merge,
//     MergeTimeSeries). No step observes which worker ran what, so every
//     positive Shards value yields byte-identical output.

// ShardSlices is the fixed slice count of the sharded model. It is a model
// parameter, not a throughput knob: changing it changes the simulated
// machine (slice-private caches see different streams), while Options.
// Shards — the worker count — never changes results. Eight slices keep
// per-slice setup cost modest while giving an eight-core host full
// utilization headroom.
const ShardSlices = 8

// sliceOf maps a physical block address to its slice: encryption pages
// interleave across slices, so a page's data blocks, its counter block,
// its RSR re-encryption work, and its Merkle leaf path all live together.
func sliceOf(addr, pageBytes uint64) int {
	return int((addr / pageBytes) % ShardSlices)
}

// calSource adapts a slice's calendar queue to the cpu.Source interface.
type calSource struct {
	q *sim.Calendar[cpu.Event]
}

func (s *calSource) Next() (cpu.Event, bool) {
	v, _, ok := s.q.Pop()
	return v, ok
}

// routeStream generates the workload once and distributes it into
// per-slice calendar queues, keyed by each event's estimated dispatch
// cycle in the unified stream (monotone, so FIFO tie-breaking preserves
// program order exactly). It returns the queues and each slice's
// instruction budget; budgets sum to min(total, stream length), and the
// slice receiving the final, possibly truncated non-memory batch gets the
// same mid-batch cutoff the serial CPU loop applies.
//
// routeStream is the serial reference the pipelined front-end
// (pipeline.go) is differentially tested against; production sharded
// runs go through the pipeline.
func routeStream(gen *trace.Generator, cfg config.SystemConfig, total uint64) ([]*sim.Calendar[cpu.Event], []uint64) {
	queues := make([]*sim.Calendar[cpu.Event], ShardSlices)
	// Pre-size for the expected per-slice event count — the budget times
	// the profile's memory fraction, split across slices — so bulk routing
	// never regrows the bucket arrays.
	hint := int(float64(total)*gen.Profile().MemFraction) / ShardSlices
	for i := range queues {
		queues[i] = sim.NewCalendar[cpu.Event](calWidth, hint)
	}
	budget := make([]uint64, ShardSlices)
	pageBytes := uint64(cfg.PageBlocks) * core.BlockSize
	iw := uint64(cfg.IssueWidth)
	var done uint64
	for done < total {
		ev, ok := gen.Next()
		if !ok {
			break
		}
		s := sliceOf(ev.Addr, pageBytes)
		key := sim.Time(done / iw)
		n := uint64(ev.NonMemBefore)
		queues[s].Push(key, ev)
		if n >= total-done {
			// The budget ends inside this event's non-memory prefix; the
			// slice's CPU loop will account the tail and stop, exactly
			// like the serial loop does.
			budget[s] += total - done
			break
		}
		budget[s] += n + 1
		done += n + 1
	}
	return queues, budget
}

// runSharded is RunObserved for the sharded core, built on the pipelined
// trace front-end (pipeline.go): slice simulation starts as soon as the
// first sealed calendar segment arrives, overlapping generation and
// routing with simulation instead of paying them as a serial prefix. The
// caller-provided registry and sampler receive the deterministic merge of
// the per-slice instruments; span recording (obs.Rec) is limited to the
// merged counter tracks the sampler emits, since slices have no common
// span timeline.
func (r *Runner) runSharded(bench string, cfg config.SystemConfig, obs Obs) RunOut {
	if r.Opt.Functional {
		cfg.Functional = true
	}
	//secmemlint:ignore determinism wall-clock base for the pipeline's speed accounting; readings land in Runner fields only, never in RunOut
	pw := &pipeWall{start: time.Now()}
	gen := trace.NewGenerator(trace.Get(bench), r.Opt.Seed)
	segCh, pipeWG := startPipeline(gen, cfg, r.Opt.Instructions,
		r.routeWorkers(), r.routeChunk(), &r.calScratch, pw)

	var sh *obsv.ShardedRegistry
	if obs.Reg != nil {
		sh = obsv.NewSharded(ShardSlices)
	}
	samplers := make([]*obsv.Sampler, ShardSlices)
	outs := make([]RunOut, ShardSlices)
	// All ShardSlices slice goroutines exist for the whole run so every
	// segment channel always has its consumer, but only Options.Shards of
	// them simulate at once: each holds a semaphore slot while running and
	// hands it back while blocked waiting for a segment (segSource.recv),
	// so a slice the router is still feeding never idles a worker slot.
	workers := r.Opt.Shards
	if workers > ShardSlices {
		workers = ShardSlices
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i := 0; i < ShardSlices; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			mem, err := core.NewMemSystem(cfg)
			if err != nil {
				panic(err) // configurations are code, not input
			}
			if sh != nil {
				mem.Instrument(sh.Shard(i), nil)
			}
			if obs.Smp != nil {
				smp := obsv.NewSampler(obs.Smp.Interval(), obs.Smp.Capacity())
				samplers[i] = smp
				mem.AttachSampler(smp)
			}
			c := cpu.New(cfg, mem)
			src := &segSource{ch: segCh[i], pool: &r.calScratch, sem: sem}
			res := c.Run(src, ^uint64(0))
			if src.cur != nil {
				// A budget exit leaves the drained final segment in hand;
				// recycle it so the pool sees every segment back.
				r.calScratch.put(src.cur)
				src.cur = nil
			}
			samplers[i].SampleAt(uint64(res.Cycles))
			if sh != nil {
				mem.ExportObs(res.Cycles)
			}
			if cfg.ChargeMonoReenc {
				res.Cycles += mem.Controller().Stats.FreezeCycles
			}
			outs[i] = collectRunOut(bench, cfg, mem, res)
		}()
	}
	wg.Wait()
	pipeWG.Wait()

	// The merge fold is the serial tail of a sharded run; its wall time is
	// the shard-merge overhead the parallel speed benchmarks report. Timing
	// it never feeds back into simulation results, so determinism holds.
	//secmemlint:ignore determinism measures host wall time of the merge fold for the speed benchmarks; the reading is stored on the Runner, never in RunOut, so no simulated number depends on it
	mergeStart := time.Now()
	if sh != nil {
		obs.Reg.Absorb(sh.Merge())
	}
	if obs.Smp != nil {
		series := make([]obsv.TimeSeries, ShardSlices)
		for i, smp := range samplers {
			series[i] = smp.Export()
		}
		obs.Smp.Load(obsv.MergeTimeSeries(series, obsv.GaugeSeries))
		obs.Smp.EmitTrace(obs.Rec)
	}
	out := mergeRunOuts(outs)
	r.mergeNanos = time.Since(mergeStart).Nanoseconds() //secmemlint:ignore determinism same wall-clock measurement as above; lands in Runner.mergeNanos only
	r.mu.Lock()
	r.pipeFirstSealNanos = pw.firstSeal.Load()
	r.pipeRouteDoneNanos = pw.routeDone.Load()
	r.pipeTotalNanos = time.Since(pw.start).Nanoseconds() //secmemlint:ignore determinism wall-clock denominator for PipelineStats; Runner fields only, never RunOut
	r.mu.Unlock()
	return out
}

// MergeNanos reports the wall time the most recent sharded run spent in
// its deterministic merge fold (zero for serial runs): the shard-merge
// overhead b.ReportMetric rows in the speed benchmarks are built from.
func (r *Runner) MergeNanos() int64 { return r.mergeNanos }

// mergeRunOuts folds per-slice results into one RunOut in slice-index
// order. Cumulative statistics sum; cycle counts take the maximum (slices
// run concurrently in the modeled machine, so the run lasts as long as its
// slowest slice); high-water marks take the maximum; the per-page counter
// list is a sorted concatenation (pages are disjoint across slices). Every
// fold is order-insensitive, so the merge is independent of which worker
// finished when.
func mergeRunOuts(outs []RunOut) RunOut {
	m := outs[0]
	for _, o := range outs[1:] {
		m.CPU = mergeCPU(m.CPU, o.CPU)
		m.Ctl = mergeCtl(m.Ctl, o.Ctl)
		m.CtrHits += o.CtrHits
		m.CtrHalfMisses += o.CtrHalfMisses
		m.CtrMisses += o.CtrMisses
		m.CtrIncrements += o.CtrIncrements
		if o.FastestIncr > m.FastestIncr {
			m.FastestIncr = o.FastestIncr
		}
		m.RSR = mergeRSR(m.RSR, o.RSR)
		if o.Seconds > m.Seconds {
			m.Seconds = o.Seconds
		}
		m.BusBusy += o.BusBusy
		m.BusWait += o.BusWait
		m.AESIssues += o.AESIssues
		m.PageFastestIncrs = append(m.PageFastestIncrs, o.PageFastestIncrs...)
	}
	sort.Slice(m.PageFastestIncrs, func(i, j int) bool {
		return m.PageFastestIncrs[i] < m.PageFastestIncrs[j]
	})
	m.IPC = m.CPU.IPC()
	return m
}

func mergeCPU(a, b cpu.Result) cpu.Result {
	a.Instructions += b.Instructions
	a.Loads += b.Loads
	a.Stores += b.Stores
	a.L2Misses += b.L2Misses
	if b.Cycles > a.Cycles {
		a.Cycles = b.Cycles
	}
	return a
}

// mergeCtl sums controller statistics field by field. A reflection test
// (TestMergeCtlCoversAllFields) fails the build of any future core.Stats
// field that is not added here.
func mergeCtl(a, b core.Stats) core.Stats {
	a.Fills += b.Fills
	a.WriteBacks += b.WriteBacks
	a.CtrFetches += b.CtrFetches
	a.CtrWriteBacks += b.CtrWriteBacks
	a.MacFetches += b.MacFetches
	a.MacWriteBacks += b.MacWriteBacks
	a.DerivFetches += b.DerivFetches
	a.DerivWBs += b.DerivWBs
	a.ReencFetches += b.ReencFetches
	a.ReencWrites += b.ReencWrites
	a.FullReencEvents += b.FullReencEvents
	a.FreezeCycles += b.FreezeCycles
	a.PadReads += b.PadReads
	a.TimelyPads += b.TimelyPads
	a.TamperDetected += b.TamperDetected
	return a
}

// mergeRSR folds re-encryption statistics: totals sum, per-event maxima
// combine as maxima.
func mergeRSR(a, b reenc.Stats) reenc.Stats {
	a.PageReencs += b.PageReencs
	a.BlocksOnChip += b.BlocksOnChip
	a.BlocksFetched += b.BlocksFetched
	a.TotalCycles += b.TotalCycles
	if b.MaxCycles > a.MaxCycles {
		a.MaxCycles = b.MaxCycles
	}
	a.SamePageStalls += b.SamePageStalls
	a.AllocStalls += b.AllocStalls
	a.StallCycles += b.StallCycles
	if b.MaxConcurrent > a.MaxConcurrent {
		a.MaxConcurrent = b.MaxConcurrent
	}
	return a
}
