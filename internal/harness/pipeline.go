package harness

import (
	"sync"
	"sync/atomic"
	"time"

	"secmem/internal/config"
	"secmem/internal/core"
	"secmem/internal/cpu"
	"secmem/internal/sim"
	"secmem/internal/trace"
)

// The pipelined trace front-end (DESIGN.md §15) dissolves the sharded
// core's route-then-simulate barrier into four overlapped stages:
//
//	stepper ─chunks─▶ replay workers ─buffers─▶ router ─segments─▶ slices
//
//  1. The stepper owns the canonical generator. At every chunk boundary
//     it takes an O(1) Generator.Clone — the chunk's starting state —
//     then advances the canonical state through the chunk with
//     trace.AdvanceChunk. This serial state-replay is the scheme's only
//     serial stage.
//  2. RouteWorkers replay workers materialize chunks from their
//     snapshots concurrently (trace.GenerateChunk), in whatever order
//     the scheduler picks.
//  3. The router consumes materialized chunks strictly in chunk-index
//     order — its event walk is therefore the exact serial stream — and
//     routes each event into its slice's open calendar segment with the
//     same dispatch-cycle key and budget accounting as routeStream. At
//     each chunk boundary it seals the segments the chunk touched and
//     ships them over bounded per-slice channels; the last segment of
//     every slice is marked final and carries the slice's instruction
//     budget.
//  4. Slice workers start simulating as soon as their first sealed
//     segment arrives, while later chunks are still being generated and
//     routed. A slice's cpu.CPU reads the stream through segSource,
//     whose cpu.BudgetSource side reports the budget the moment the
//     final segment arrives — always before the event the budget cuts,
//     because that crossing event is by construction in the final
//     segment.
//
// Determinism: the clone-and-replay split reproduces the serial stream
// byte for byte (the trace package's chunk differential test), and the
// router is a serial fold over that stream, so per-slice event
// sequences, keys, and budgets are functions of (bench, seed, cfg)
// alone. Chunk size only moves seal boundaries — a slice sees the same
// events in the same order however they are cut into segments — and
// RouteWorkers, like Shards, changes wall time only.

// defaultRouteChunk is the pipeline's chunk size in instructions. At the
// profiles' ~0.3 memory fraction a chunk is ~10k events: large enough to
// amortize the clone/handoff machinery, small enough that the serial
// prefix before the first sealed segment — the route_overhead_fraction
// the speed benchmarks report — is a sliver of the run.
const defaultRouteChunk = 32768

// segInFlight bounds the sealed segments queued to one slice. The router
// blocks once a slice falls this far behind, which in turn bounds the
// pipeline's buffered state; slices always drain (they never block while
// holding a worker slot for anything but simulation), so the router can
// never deadlock against a full segment channel.
const segInFlight = 4

// chunkJob is one chunk's handoff: the stepper fills snap/events/final,
// a replay worker delivers the materialized events on out (buffered, so
// workers never block on delivery), and the router receives jobs in
// chunk-index order through a separate ordered channel.
type chunkJob struct {
	snap   *trace.Generator
	events int
	final  bool
	out    chan []cpu.Event
}

// segment is one sealed calendar epoch of one slice's stream. final
// marks the slice's last segment and carries its instruction budget.
type segment struct {
	cal    *sim.Calendar[cpu.Event]
	final  bool
	budget uint64
}

// calPool recycles segment calendars. It is shared across every sharded
// run a Runner executes — campaign benches run concurrently, hence the
// mutex — so steady-state routing reuses the same few pre-carved backing
// arrays for a whole campaign instead of allocating per segment.
type calPool struct {
	mu   sync.Mutex
	free []*sim.Calendar[cpu.Event]
}

// calWidth is the calendar bucket width used by both routeStream and the
// pipeline's segments, so pooled calendars are interchangeable.
const calWidth = 64

func (p *calPool) get(hint int) *sim.Calendar[cpu.Event] {
	p.mu.Lock()
	if n := len(p.free); n > 0 {
		c := p.free[n-1]
		p.free = p.free[:n-1]
		p.mu.Unlock()
		return c
	}
	p.mu.Unlock()
	return sim.NewCalendar[cpu.Event](calWidth, hint)
}

func (p *calPool) put(c *sim.Calendar[cpu.Event]) {
	c.Recycle()
	p.mu.Lock()
	p.free = append(p.free, c)
	p.mu.Unlock()
}

// pipeWall carries the wall-clock accounting of one pipelined run. The
// router writes the stamps while the spawning goroutine later reads
// them, so both live behind atomics. Stamps are host wall time: they
// feed the speed benchmarks' route overhead figures only and never any
// simulated number.
type pipeWall struct {
	start     time.Time
	firstSeal atomic.Int64 // nanos from start until the first sealed segment shipped
	routeDone atomic.Int64 // nanos from start until routing completed
}

func (w *pipeWall) stampFirst() {
	if w.firstSeal.Load() == 0 {
		//secmemlint:ignore determinism wall-clock stamp for the speed benchmarks' route_overhead_fraction; stored on the Runner, never in RunOut
		w.firstSeal.Store(time.Since(w.start).Nanoseconds())
	}
}

// startPipeline launches the stepper, replay workers, and router for one
// sharded run and returns the per-slice segment channels plus the join
// for the three stages. The router closes every channel when routing is
// complete; all stages terminate on their own once the stream is
// exhausted, and waiting on the returned group after draining the
// channels guarantees none outlives the run.
func startPipeline(gen *trace.Generator, cfg config.SystemConfig, total uint64, workers int, chunkInstr uint64, pool *calPool, pw *pipeWall) ([]chan segment, *sync.WaitGroup) {
	inFlight := workers + 2
	jobs := make(chan chunkJob, inFlight)    // replay workers, any order
	ordered := make(chan chunkJob, inFlight) // router, chunk-index order
	// Free list of chunk event buffers, sized so neither the workers nor
	// the router can exhaust it while the pipeline is saturated.
	bufs := make(chan []cpu.Event, inFlight+workers+2)
	for i := 0; i < cap(bufs); i++ {
		bufs <- nil
	}
	segCh := make([]chan segment, ShardSlices)
	for i := range segCh {
		segCh[i] = make(chan segment, segInFlight)
	}

	var wg sync.WaitGroup

	// Stepper: the serial state-replay walk. One Clone per chunk, then the
	// canonical generator advances through it.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(jobs)
		defer close(ordered)
		remaining := total
		for {
			snap := gen.Clone()
			events, instr, final := trace.AdvanceChunk(gen, chunkInstr, remaining)
			remaining -= instr
			job := chunkJob{snap: snap, events: events, final: final,
				out: make(chan []cpu.Event, 1)}
			jobs <- job
			ordered <- job
			if final {
				return
			}
		}
	}()

	// Replay workers: materialize chunks from their snapshots.
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for job := range jobs {
				buf := <-bufs
				if cap(buf) < job.events {
					buf = make([]cpu.Event, 0, job.events+job.events/8+16)
				}
				job.out <- trace.GenerateChunk(job.snap, job.events, buf[:0])
			}
		}()
	}

	// Router: the serial fold that keys, budgets, and seals. It mirrors
	// routeStream's loop exactly — same slice map, same done/IssueWidth
	// key, same mid-batch budget cutoff — chunk splicing in index order
	// makes its input the exact serial stream.
	wg.Add(1)
	go func() {
		defer wg.Done()
		pageBytes := uint64(cfg.PageBlocks) * core.BlockSize
		iw := uint64(cfg.IssueWidth)
		hint := int(float64(chunkInstr)*gen.Profile().MemFraction)/ShardSlices + 16
		var open [ShardSlices]*sim.Calendar[cpu.Event]
		var touched [ShardSlices]bool
		var budget [ShardSlices]uint64
		var done uint64
		for job := range ordered {
			buf := <-job.out
			for _, ev := range buf {
				s := sliceOf(ev.Addr, pageBytes)
				if open[s] == nil {
					open[s] = pool.get(hint)
				}
				open[s].Push(sim.Time(done/iw), ev)
				touched[s] = true
				n := uint64(ev.NonMemBefore)
				if n >= total-done {
					// The budget ends inside this event's non-memory
					// prefix; the slice's CPU accounts the tail and stops,
					// exactly like the serial loop.
					budget[s] += total - done
					done = total
					break
				}
				budget[s] += n + 1
				done += n + 1
			}
			bufs <- buf
			if job.final {
				break
			}
			// Chunk boundary: seal and ship this epoch's touched segments.
			for s := range touched {
				if !touched[s] {
					continue
				}
				open[s].Seal()
				pw.stampFirst()
				segCh[s] <- segment{cal: open[s]}
				open[s] = nil
				touched[s] = false
			}
		}
		// Final segments. Every slice gets exactly one, carrying its
		// budget; the budget-crossing event (if the slice has one) is in
		// it, so segSource learns the budget no later than that event.
		//secmemlint:ignore determinism wall-clock stamp for the speed benchmarks' pipeline_fill_fraction; stored on the Runner, never in RunOut
		pw.routeDone.Store(time.Since(pw.start).Nanoseconds())
		for s := 0; s < ShardSlices; s++ {
			cal := open[s]
			if cal == nil {
				cal = pool.get(0)
			}
			cal.Seal()
			pw.stampFirst()
			segCh[s] <- segment{cal: cal, final: true, budget: budget[s]}
			close(segCh[s])
		}
	}()

	return segCh, &wg
}

// segSource adapts one slice's segment stream to cpu.Source and
// cpu.BudgetSource. It pops the current segment until dry, recycles it
// into the pool, and blocks for the next — releasing its slice-worker
// semaphore slot while it waits, so a stalled slice never starves the
// others of simulation bandwidth.
type segSource struct {
	ch   <-chan segment
	pool *calPool
	sem  chan struct{}

	cur    *sim.Calendar[cpu.Event]
	final  bool
	budget uint64
}

func (s *segSource) Next() (cpu.Event, bool) {
	for {
		if s.cur != nil {
			if ev, _, ok := s.cur.Pop(); ok {
				return ev, true
			}
			s.pool.put(s.cur)
			s.cur = nil
		}
		if s.final {
			return cpu.Event{}, false
		}
		seg, ok := s.recv()
		if !ok {
			return cpu.Event{}, false
		}
		s.cur = seg.cal
		if seg.final {
			s.final = true
			s.budget = seg.budget
		}
	}
}

// Budget reports the slice's instruction budget once the final segment
// has arrived and the no-op sentinel before that — the cpu.BudgetSource
// contract is met because the budget-crossing event travels in the final
// segment, so the real value is always visible before Run reaches it.
func (s *segSource) Budget() uint64 {
	if s.final {
		return s.budget
	}
	return ^uint64(0)
}

// recv receives the next segment, giving up the worker slot while
// blocked so another slice with work ready can simulate.
func (s *segSource) recv() (segment, bool) {
	select {
	case seg, ok := <-s.ch:
		return seg, ok
	default:
	}
	<-s.sem
	seg, ok := <-s.ch
	s.sem <- struct{}{}
	return seg, ok
}
