package harness

import (
	"fmt"
	"sync"

	"secmem/internal/config"
	"secmem/internal/stats"
)

// This file holds the ablation studies for the design choices DESIGN.md
// calls out: how many RSRs the split scheme needs, how wide the minor
// counters should be, and how big the encryption page should be (the
// Section 4.1 block-size discussion). None of these is a paper figure; they
// probe the claims the paper makes in prose ("with a sufficient number of
// RSRs (e.g. 8) the situation does not occur", "little performance
// variation across different block sizes").

// stress shrinks the L2 so hot write sets thrash and minor counters
// actually overflow at campaign scale; counter overflow takes fractions of
// a simulated second on the paper machine (Table 2), far beyond any
// tractable run. The RSR machinery under test is unchanged.
func stress(cfg config.SystemConfig) config.SystemConfig {
	cfg.L2.SizeBytes = 128 << 10
	return cfg
}

// AblationRow is one configuration point of an ablation sweep.
type AblationRow struct {
	Label       string
	NormIPC     float64
	PageReencs  uint64
	StallCycles uint64
	MeanCycles  float64
}

// sweep runs a set of split-counter variants and averages normalized IPC
// and re-encryption statistics over the campaign's benchmarks.
func (r *Runner) sweep(mk func() []config.SystemConfig, labels []string) []AblationRow {
	benches := r.Opt.benches()
	cfgs := mk()
	rows := make([]AblationRow, len(cfgs))
	var mu sync.Mutex
	type job struct{ ci, bi int }
	var jobs []job
	for ci := range cfgs {
		for bi := range benches {
			jobs = append(jobs, job{ci, bi})
		}
	}
	sums := make([]struct {
		ipc    []float64
		reencs uint64
		stalls uint64
		cycles []float64
	}, len(cfgs))
	// Normalize each configuration against an unprotected machine with the
	// SAME cache geometry, so stress-sized L2s don't masquerade as scheme
	// overhead.
	baseIPC := make(map[string]float64)
	var baseMu sync.Mutex
	baselineFor := func(bench string, cfg config.SystemConfig) float64 {
		key := fmt.Sprintf("%s/%d", bench, cfg.L2.SizeBytes)
		baseMu.Lock()
		v, ok := baseIPC[key]
		baseMu.Unlock()
		if ok {
			return v
		}
		b := config.Baseline()
		b.L2 = cfg.L2
		v = r.Run(bench, b).IPC
		baseMu.Lock()
		baseIPC[key] = v
		baseMu.Unlock()
		return v
	}
	r.parallelFor(len(jobs), func(i int) {
		j := jobs[i]
		out := r.Run(benches[j.bi], cfgs[j.ci])
		norm := out.IPC / baselineFor(benches[j.bi], cfgs[j.ci])
		mu.Lock()
		s := &sums[j.ci]
		s.ipc = append(s.ipc, norm)
		s.reencs += out.RSR.PageReencs
		s.stalls += uint64(out.RSR.StallCycles)
		if out.RSR.PageReencs > 0 {
			s.cycles = append(s.cycles, out.RSR.MeanCycles())
		}
		mu.Unlock()
	})
	for ci := range cfgs {
		rows[ci] = AblationRow{
			Label:       labels[ci],
			NormIPC:     stats.Mean(sums[ci].ipc),
			PageReencs:  sums[ci].reencs,
			StallCycles: sums[ci].stalls,
			MeanCycles:  stats.Mean(sums[ci].cycles),
		}
	}
	return rows
}

func (r *Runner) ablationTable(title string, rows []AblationRow) stats.Table {
	tbl := stats.Table{
		Title: title,
		Cols:  []string{"config", "norm IPC", "page reencs", "stall cycles", "mean reenc cyc"},
	}
	for _, row := range rows {
		r.addRow(&tbl, row.Label, stats.F(row.NormIPC),
			fmt.Sprintf("%d", row.PageReencs),
			fmt.Sprintf("%d", row.StallCycles),
			fmt.Sprintf("%.0f", row.MeanCycles))
	}
	return tbl
}

// AblateRSRs sweeps the RSR count. The paper claims 8 registers suffice to
// never stall; fewer should show stall cycles appearing before IPC moves.
func (r *Runner) AblateRSRs() (stats.Table, []AblationRow) {
	counts := []int{1, 2, 4, 8, 16}
	labels := make([]string, len(counts))
	rows := r.sweep(func() []config.SystemConfig {
		var cfgs []config.SystemConfig
		for i, n := range counts {
			cfg := stress(EncOnly(config.EncCounterSplit, 64))
			cfg.MinorBits = 4 // frequent overflows stress the register file
			cfg.RSRs = n
			cfgs = append(cfgs, cfg)
			labels[i] = fmt.Sprintf("%d RSRs", n)
		}
		return cfgs
	}, labels)
	return r.ablationTable("Ablation: RSR count (split, 4-bit minors, 128KB-L2 stress)", rows), rows
}

// AblateMinorBits sweeps the minor counter width: smaller minors mean more
// frequent but individually cheap page re-encryptions; larger minors mean
// more counter storage. The paper settles on 7 bits (one byte of counters
// per 64-byte block including the major's share).
func (r *Runner) AblateMinorBits() (stats.Table, []AblationRow) {
	widths := []int{3, 4, 5, 6, 7, 8}
	labels := make([]string, len(widths))
	rows := r.sweep(func() []config.SystemConfig {
		var cfgs []config.SystemConfig
		for i, w := range widths {
			cfg := stress(EncOnly(config.EncCounterSplit, 64))
			cfg.MinorBits = w
			// Wide minors shrink the page so the major plus all minors
			// still pack into one 64-byte counter block (8-bit minors ->
			// 32-block pages).
			for 64+cfg.PageBlocks*w > 512 {
				cfg.PageBlocks /= 2
			}
			cfgs = append(cfgs, cfg)
			labels[i] = fmt.Sprintf("%d-bit minors (%d-block pages)", w, cfg.PageBlocks)
		}
		return cfgs
	}, labels)
	return r.ablationTable("Ablation: minor counter width (split, 128KB-L2 stress)", rows), rows
}

// AblatePageSize sweeps the encryption page size (Section 4.1: a 32-byte
// block organization gives 1 KB pages; the default is 4 KB). Smaller pages
// re-encrypt more often but each re-encryption touches fewer blocks; the
// paper reports "little performance variation".
func (r *Runner) AblatePageSize() (stats.Table, []AblationRow) {
	pages := []int{16, 32, 64, 128} // blocks per page: 1 KB .. 8 KB
	labels := make([]string, len(pages))
	rows := r.sweep(func() []config.SystemConfig {
		var cfgs []config.SystemConfig
		for i, pb := range pages {
			cfg := stress(EncOnly(config.EncCounterSplit, 64))
			cfg.PageBlocks = pb
			// The major and all minors must pack into one 64-byte counter
			// block, mirroring the paper's 32-byte-block example (one
			// 64-bit major plus 32 six-bit minors).
			if maxMinor := (512 - 64) / pb; cfg.MinorBits > maxMinor {
				cfg.MinorBits = maxMinor
			}
			cfgs = append(cfgs, cfg)
			labels[i] = fmt.Sprintf("%d KB pages (%d-bit minors)", pb*64/1024, cfg.MinorBits)
		}
		return cfgs
	}, labels)
	return r.ablationTable("Ablation: encryption page size (split, 128KB-L2 stress)", rows), rows
}

// AblateMacCache compares caching Merkle nodes in the shared L2 (the
// default) against a dedicated MAC cache, at the cost of extra SRAM. The
// paper observes that sharing "can result in significantly increased cache
// miss rates for data accesses"; a dedicated cache buys that back.
func (r *Runner) AblateMacCache() (stats.Table, []AblationRow) {
	sizes := []int{0, 16 << 10, 32 << 10, 64 << 10}
	labels := make([]string, len(sizes))
	rows := r.sweep(func() []config.SystemConfig {
		var cfgs []config.SystemConfig
		for i, sz := range sizes {
			cfg := Combined("Split+GCM")
			cfg.MacCacheBytes = sz
			cfgs = append(cfgs, cfg)
			if sz == 0 {
				labels[i] = "nodes in L2"
			} else {
				labels[i] = fmt.Sprintf("dedicated %dKB", sz>>10)
			}
		}
		return cfgs
	}, labels)
	return r.ablationTable("Ablation: Merkle node caching (Split+GCM)", rows), rows
}

// AblateMonoCharge quantifies what Figure 4 hides: Mono8b with whole-memory
// re-encryption actually charged (ChargeMonoReenc) versus the paper's
// zero-cost accounting, against split counters whose re-encryption is
// always fully simulated.
func (r *Runner) AblateMonoCharge() (stats.Table, []AblationRow) {
	labels := []string{"Mono8b (free re-enc)", "Mono8b (charged)", "Split (always charged)"}
	rows := r.sweep(func() []config.SystemConfig {
		free := stress(EncOnly(config.EncCounterMono, 8))
		charged := stress(EncOnly(config.EncCounterMono, 8))
		charged.ChargeMonoReenc = true
		split := stress(EncOnly(config.EncCounterSplit, 64))
		return []config.SystemConfig{free, charged, split}
	}, labels)
	return r.ablationTable("Ablation: charging whole-memory re-encryption (Mono8b, 128KB-L2 stress)", rows), rows
}
