package harness

import (
	"fmt"

	"secmem/internal/svgchart"
)

// This file turns figure data into the SVG charts cmd/paperbench writes
// with -svg: grouped bars for the per-benchmark figures and lines for the
// sweeps and trends, shaped like the paper's originals.

// BarSVG renders a FigData grid as a grouped bar chart over the shown
// benchmarks (plus the average), with schemes in the given order.
func BarSVG(title string, data FigData, schemes, shown []string) string {
	c := svgchart.BarChart{
		Title:   title,
		YLabel:  "Normalized IPC",
		YMax:    1.1,
		RefLine: 1.0,
	}
	for _, b := range append(append([]string{}, shown...), "Avg") {
		g := svgchart.Group{Label: b}
		for _, s := range schemes {
			g.Bars = append(g.Bars, svgchart.Bar{Series: s, Value: data[s][b]})
		}
		c.Groups = append(c.Groups, g)
	}
	return c.Render()
}

// Fig5SVG renders the counter-cache size sweep as two lines.
func Fig5SVG(data FigData) string {
	c := svgchart.LineChart{
		Title:  "Figure 5: Sensitivity to counter cache size",
		YLabel: "Average normalized IPC",
		YMax:   1.0,
	}
	var split, mono []float64
	for _, size := range Fig5Sizes {
		kb := size >> 10
		c.XLabels = append(c.XLabels, fmt.Sprintf("%dKB", kb))
		split = append(split, data[fmt.Sprintf("split %dKB", kb)]["Avg"])
		mono = append(mono, data[fmt.Sprintf("mono %dKB", kb)]["Avg"])
	}
	c.Series = []svgchart.Series{
		{Label: "split", Points: split},
		{Label: "mono 64b", Points: mono},
	}
	return c.Render()
}

// Fig6bSVG renders the hit-rate/prediction-rate trend.
func Fig6bSVG(series [][2]float64) string {
	c := svgchart.LineChart{
		Title:  "Figure 6(b): Prediction and counter cache hit rate trends",
		YLabel: "Rate",
		YMax:   1.0,
	}
	var snc, pred []float64
	for i, w := range series {
		c.XLabels = append(c.XLabels, fmt.Sprintf("window %d", i+1))
		snc = append(snc, w[0])
		pred = append(pred, w[1])
	}
	c.Series = []svgchart.Series{
		{Label: "SNC hit (split)", Points: snc},
		{Label: "prediction rate (pred)", Points: pred},
	}
	return c.Render()
}

// Fig8SVG renders the requirement/parallelism comparison.
func Fig8SVG(data FigData) string {
	c := svgchart.BarChart{
		Title:   "Figure 8: Authentication requirements and tree parallelism",
		YLabel:  "Average normalized IPC",
		YMax:    1.1,
		RefLine: 1.0,
	}
	for _, v := range []struct{ label, gcm, sha string }{
		{"lazy", "GCM lazy", "SHA lazy"},
		{"commit", "GCM commit", "SHA commit"},
		{"safe", "GCM safe", "SHA safe"},
		{"parallel", "GCM parallel", "SHA parallel"},
		{"non-par.", "GCM nonpar", "SHA nonpar"},
	} {
		c.Groups = append(c.Groups, svgchart.Group{Label: v.label, Bars: []svgchart.Bar{
			{Series: "GCM", Value: data[v.gcm]["Avg"]},
			{Series: "SHA-1 (320)", Value: data[v.sha]["Avg"]},
		}})
	}
	return c.Render()
}

// Fig10SVG renders the combined-scheme sensitivity grid.
func Fig10SVG(data FigData) string {
	c := svgchart.BarChart{
		Title:   "Figure 10: Sensitivity of combined schemes",
		YLabel:  "Average normalized IPC",
		YMax:    1.1,
		RefLine: 1.0,
	}
	variants := []struct{ label, key string }{
		{"lazy", "/lazy"}, {"commit", "/commit"}, {"safe", "/safe"},
		{"non-par.", "/nonpar"},
		{"128b MAC", "/mac128"}, {"64b MAC", "/mac64"}, {"32b MAC", "/mac32"},
	}
	for _, v := range variants {
		g := svgchart.Group{Label: v.label}
		for _, name := range CombinedNames() {
			g.Bars = append(g.Bars, svgchart.Bar{Series: name, Value: data[name+v.key]["Avg"]})
		}
		c.Groups = append(c.Groups, g)
	}
	return c.Render()
}
