package harness

import (
	"bytes"
	"reflect"
	"testing"

	"secmem/internal/config"
	"secmem/internal/obsv"
)

func obsOpts() Options {
	return Options{Instructions: 200_000, Seed: 1, Benches: []string{"swim", "mcf", "art"}}
}

// TestSamplerIsTimingNeutral pins the tentpole invariant: attaching a
// time-series sampler (with or without a trace recorder) must not change a
// single simulated number. The sampler only reads state at boundaries; if
// it ever perturbed the timing model, every trajectory figure would be
// unrepresentative of the uninstrumented run.
func TestSamplerIsTimingNeutral(t *testing.T) {
	r := New(obsOpts())
	cfg := config.Default()

	plain := r.Run("swim", cfg)

	smp := obsv.NewSampler(1000, 0)
	sampled := r.RunObserved("swim", cfg, Obs{
		Reg: obsv.NewRegistry(),
		Rec: obsv.NewRecorder(0),
		Smp: smp,
	})

	if !reflect.DeepEqual(plain, sampled) {
		t.Errorf("sampling changed simulated results:\nplain   %+v\nsampled %+v", plain, sampled)
	}
	if smp.Len() == 0 {
		t.Error("sampler recorded nothing over a 200k-instruction run")
	}
	for _, name := range []string{"bus.util", "dram.util", "ctl.fills", "ctrcache.hitrate", "rsr.occupancy"} {
		found := false
		for _, n := range smp.Names() {
			if n == name {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("probe %s not registered (have %v)", name, smp.Names())
		}
	}
}

// TestSampledRunDumpsAreDeterministic runs the same sampled simulation
// twice and requires byte-identical time-series and trace artifacts.
func TestSampledRunDumpsAreDeterministic(t *testing.T) {
	render := func() (string, string) {
		r := New(obsOpts())
		smp := obsv.NewSampler(1000, 0)
		rec := obsv.NewRecorder(0)
		r.RunObserved("mcf", config.Default(), Obs{Reg: obsv.NewRegistry(), Rec: rec, Smp: smp})
		var ts, tr bytes.Buffer
		if err := smp.WriteJSON(&ts); err != nil {
			t.Fatal(err)
		}
		if err := rec.WriteJSON(&tr); err != nil {
			t.Fatal(err)
		}
		return ts.String(), tr.String()
	}
	ts1, tr1 := render()
	ts2, tr2 := render()
	if ts1 != ts2 {
		t.Error("time-series dump differs between identical runs")
	}
	if tr1 != tr2 {
		t.Error("trace (with counter tracks) differs between identical runs")
	}
}

// TestCampaignObserved checks the sharded parallel campaign: results match
// the sequential per-benchmark runs, and the merged registry equals the sum
// of what each benchmark contributes — independent of scheduling.
func TestCampaignObserved(t *testing.T) {
	cfg := config.Default()

	seq := New(obsOpts())
	var wantOuts []RunOut
	seqReg := obsv.NewRegistry()
	for _, b := range obsOpts().Benches {
		wantOuts = append(wantOuts, seq.RunObserved(b, cfg, Obs{Reg: seqReg}))
	}

	par := New(obsOpts())
	outs, merged := par.CampaignObserved(cfg)
	if len(outs) != len(wantOuts) {
		t.Fatalf("got %d outs, want %d", len(outs), len(wantOuts))
	}
	for i := range outs {
		if !reflect.DeepEqual(outs[i], wantOuts[i]) {
			t.Errorf("bench %s: parallel sharded result differs from sequential", outs[i].Bench)
		}
	}

	// Counters and histograms accumulate identically whether the benchmarks
	// share one registry sequentially or merge from shards.
	seqSnap, mergedSnap := seqReg.Snapshot(), merged.Snapshot()
	if !reflect.DeepEqual(seqSnap.Counters, mergedSnap.Counters) {
		t.Error("merged counters differ from sequential accumulation")
	}
	if len(mergedSnap.Histograms) != len(seqSnap.Histograms) {
		t.Fatalf("merged histogram set differs: %d vs %d", len(mergedSnap.Histograms), len(seqSnap.Histograms))
	}
	for name, sh := range seqSnap.Histograms {
		mh := mergedSnap.Histograms[name]
		if sh.Count != mh.Count || sh.Sum != mh.Sum || sh.Min != mh.Min || sh.Max != mh.Max {
			t.Errorf("histogram %s: merged %d/%d/%d/%d vs sequential %d/%d/%d/%d",
				name, mh.Count, mh.Sum, mh.Min, mh.Max, sh.Count, sh.Sum, sh.Min, sh.Max)
		}
	}

	// The merge itself is deterministic: a second parallel campaign renders
	// byte-identical registry JSON.
	_, merged2 := New(obsOpts()).CampaignObserved(cfg)
	var a, b bytes.Buffer
	if err := merged.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := merged2.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("merged registry JSON differs between identical parallel campaigns")
	}
}

// TestTraceDroppedSurfaced pins the trace.dropped gauge: a recorder clamped
// far below the run's event volume must report its truncation in the
// metrics snapshot.
func TestTraceDroppedSurfaced(t *testing.T) {
	r := New(obsOpts())
	reg := obsv.NewRegistry()
	rec := obsv.NewRecorder(10)
	r.RunObserved("swim", config.Default(), Obs{Reg: reg, Rec: rec})
	if rec.Dropped() == 0 {
		t.Fatal("10-event recorder dropped nothing over a 200k-instruction run")
	}
	snap := reg.Snapshot()
	if got := snap.Gauges["trace.dropped"]; got != float64(rec.Dropped()) {
		t.Errorf("trace.dropped gauge = %g, want %d", got, rec.Dropped())
	}
}
