package harness

import (
	"strings"
	"testing"
)

// Figure tests run a reduced campaign (three representative benchmarks,
// short runs) and assert the qualitative shapes the paper reports. The full
// 21-benchmark campaign is exercised by cmd/paperbench and the benchmark
// harness.
func figRunner() *Runner {
	return New(Options{
		Instructions: 400_000,
		Seed:         1,
		Benches:      []string{"swim", "mcf", "crafty"},
	})
}

func TestFig4Shape(t *testing.T) {
	r := figRunner()
	tbl, data := r.Fig4()
	if !strings.Contains(tbl.String(), "Figure 4") {
		t.Error("table title missing")
	}
	avg := func(s string) float64 { return data[s]["Avg"] }
	// Split must beat every monolithic size except possibly Mono8b (which
	// gets free whole-memory re-encryption), and clearly beat Direct.
	if avg("Split") < avg("Mono16b") || avg("Split") < avg("Mono64b") {
		t.Errorf("split (%.3f) not best of counter modes: mono16 %.3f mono64 %.3f",
			avg("Split"), avg("Mono16b"), avg("Mono64b"))
	}
	if avg("Split") <= avg("Direct") {
		t.Errorf("split (%.3f) not better than direct (%.3f)", avg("Split"), avg("Direct"))
	}
	// Split ~ Mono8b (within a few percent), the paper's key Figure 4 claim.
	if d := avg("Split") - avg("Mono8b"); d < -0.05 || d > 0.1 {
		t.Errorf("split (%.3f) not comparable to Mono8b (%.3f)", avg("Split"), avg("Mono8b"))
	}
	// Larger monolithic counters do not help IPC.
	if avg("Mono64b") > avg("Mono16b")+0.02 {
		t.Errorf("mono64 (%.3f) better than mono16 (%.3f)", avg("Mono64b"), avg("Mono16b"))
	}
}

func TestTable2Shape(t *testing.T) {
	r := figRunner()
	tbl, overflow := r.Table2()
	if !strings.Contains(tbl.String(), "Table 2") {
		t.Error("table title missing")
	}
	// Larger counters take exponentially longer to overflow.
	for _, b := range []string{"mcf", "Avg"} {
		t8 := overflow["Mono8b"][b]
		t16 := overflow["Mono16b"][b]
		t64 := overflow["Mono64b"][b]
		if !(t8 < t16 && t16 < t64) {
			t.Errorf("%s: overflow times not ordered: %v %v %v", b, t8, t16, t64)
		}
	}
	// The global counter overflows much faster than a 32-bit local one
	// (it advances on every write-back, not just one block's).
	if overflow["Global32b"]["Avg"] >= overflow["Mono32b"]["Avg"] {
		t.Errorf("global32 overflow (%v) not faster than mono32 (%v)",
			overflow["Global32b"]["Avg"], overflow["Mono32b"]["Avg"])
	}
	// 64-bit counters are for practical purposes overflow-free: > 100 years.
	if overflow["Mono64b"]["Avg"] < 100*31557600 {
		t.Errorf("mono64 overflow estimate too small: %v s", overflow["Mono64b"]["Avg"])
	}
}

func TestFig5Shape(t *testing.T) {
	r := figRunner()
	tbl, data := r.Fig5()
	_ = tbl
	// The paper's claim: split with a 16KB counter cache beats monolithic
	// with 128KB.
	if s, m := data["split 16KB"]["Avg"], data["mono 128KB"]["Avg"]; s < m-0.01 {
		t.Errorf("split@16KB (%.3f) below mono@128KB (%.3f)", s, m)
	}
	// Both schemes improve (weakly) with cache size.
	if data["split 128KB"]["Avg"]+0.02 < data["split 16KB"]["Avg"] {
		t.Errorf("split got worse with a bigger counter cache: %.3f -> %.3f",
			data["split 16KB"]["Avg"], data["split 128KB"]["Avg"])
	}
	if data["mono 128KB"]["Avg"]+0.02 < data["mono 16KB"]["Avg"] {
		t.Errorf("mono got worse with a bigger counter cache")
	}
}

func TestFig6aShape(t *testing.T) {
	r := figRunner()
	tbl, res := r.Fig6a()
	_ = tbl
	if res.SNCHitHalf < res.SNCHit {
		t.Error("hit+halfMiss below hit rate")
	}
	// Two engines must improve the prediction scheme's timely pads, and the
	// one-engine scheme must be starved relative to split (N=5 pads per
	// decryption on one engine).
	if res.TimelyPred2 <= res.TimelyPred1 {
		t.Errorf("timely pads: 2 engines (%.2f) not better than 1 (%.2f)",
			res.TimelyPred2, res.TimelyPred1)
	}
	if res.TimelyPred1 >= res.TimelySplit {
		t.Errorf("1-engine prediction timely pads (%.2f) not below split (%.2f)",
			res.TimelyPred1, res.TimelySplit)
	}
	if res.IPCPred2Engine <= res.IPCPred1Engine {
		t.Errorf("pred IPC: 2 engines (%.3f) not better than 1 (%.3f)",
			res.IPCPred2Engine, res.IPCPred1Engine)
	}
}

func TestFig6bShape(t *testing.T) {
	r := figRunner()
	_, series := r.Fig6b(4)
	if len(series) != 4 {
		t.Fatalf("windows = %d", len(series))
	}
	// Prediction rate starts high (fresh counters) and falls; the counter
	// cache hit rate stays roughly flat. Compare first and last windows.
	first, last := series[0], series[len(series)-1]
	if first[1] < last[1] {
		t.Errorf("prediction rate rose over time: %.3f -> %.3f", first[1], last[1])
	}
	if d := first[0] - last[0]; d > 0.15 || d < -0.15 {
		t.Errorf("counter cache hit rate not roughly stable: %.3f -> %.3f", first[0], last[0])
	}
}

func TestFig7Shape(t *testing.T) {
	r := figRunner()
	_, data := r.Fig7()
	avg := func(s string) float64 { return data[s]["Avg"] }
	// SHA-1 degrades monotonically with latency.
	lats := []string{"SHA-1 (80)", "SHA-1 (160)", "SHA-1 (320)", "SHA-1 (640)"}
	for i := 0; i+1 < len(lats); i++ {
		if avg(lats[i]) < avg(lats[i+1])-0.01 {
			t.Errorf("%s (%.3f) worse than %s (%.3f)", lats[i], avg(lats[i]), lats[i+1], avg(lats[i+1]))
		}
	}
	// Per benchmark: GCM at least matches 80-cycle SHA-1 everywhere except
	// mcf — the paper's one noted exception, where GCM's counter-cache
	// misses cause extra bus contention.
	for _, b := range []string{"swim", "crafty"} {
		if data["GCM"][b] < data["SHA-1 (80)"][b]-0.03 {
			t.Errorf("%s: GCM (%.3f) well below SHA-1@80 (%.3f)",
				b, data["GCM"][b], data["SHA-1 (80)"][b])
		}
		if data["GCM"][b] <= data["SHA-1 (320)"][b]-0.01 {
			t.Errorf("%s: GCM (%.3f) not better than SHA-1@320 (%.3f)",
				b, data["GCM"][b], data["SHA-1 (320)"][b])
		}
	}
	if data["GCM"]["mcf"] >= data["SHA-1 (80)"]["mcf"] {
		t.Errorf("mcf: expected GCM (%.3f) below SHA-1@80 (%.3f) — the paper's counter-cache outlier",
			data["GCM"]["mcf"], data["SHA-1 (80)"]["mcf"])
	}
}

func TestFig8Shape(t *testing.T) {
	r := figRunner()
	_, data := r.Fig8()
	avg := func(s string) float64 { return data[s]["Avg"] }
	// Stricter requirements cost more, for both schemes.
	for _, scheme := range []string{"GCM", "SHA"} {
		lazy, commit, safe := avg(scheme+" lazy"), avg(scheme+" commit"), avg(scheme+" safe")
		if !(lazy >= commit-0.01 && commit >= safe-0.01) {
			t.Errorf("%s: lazy %.3f commit %.3f safe %.3f not ordered", scheme, lazy, commit, safe)
		}
	}
	// Under safe, GCM holds up far better than SHA-1 (the paper's 6% vs 24%).
	if avg("GCM safe") <= avg("SHA safe") {
		t.Errorf("GCM safe (%.3f) not better than SHA safe (%.3f)",
			avg("GCM safe"), avg("SHA safe"))
	}
	// Parallel tree authentication helps both.
	if avg("GCM parallel") < avg("GCM nonpar")-0.005 {
		t.Errorf("GCM parallel (%.3f) below sequential (%.3f)",
			avg("GCM parallel"), avg("GCM nonpar"))
	}
	if avg("SHA parallel") < avg("SHA nonpar")-0.005 {
		t.Errorf("SHA parallel (%.3f) below sequential (%.3f)",
			avg("SHA parallel"), avg("SHA nonpar"))
	}
}

func TestFig9Shape(t *testing.T) {
	r := figRunner()
	_, data := r.Fig9()
	avg := func(s string) float64 { return data[s]["Avg"] }
	// The paper's headline: Split+GCM is the best combined scheme, and
	// SHA-based schemes trail the GCM ones.
	best := avg("Split+GCM")
	for _, other := range []string{"Split+SHA", "Mono+SHA", "XOM+SHA"} {
		if best <= avg(other) {
			t.Errorf("Split+GCM (%.3f) not better than %s (%.3f)", best, other, avg(other))
		}
	}
	if best < avg("Mono+GCM")-0.01 {
		t.Errorf("Split+GCM (%.3f) below Mono+GCM (%.3f)", best, avg("Mono+GCM"))
	}
	if avg("Mono+GCM") <= avg("Mono+SHA") {
		t.Errorf("GCM not helping over SHA under mono counters")
	}
}

func TestFig10Shape(t *testing.T) {
	r := figRunner()
	_, data := r.Fig10()
	// Split+GCM stays best across requirement variants and MAC sizes.
	for _, v := range []string{"/lazy", "/commit", "/safe", "/mac128", "/mac64", "/mac32"} {
		sg := data["Split+GCM"+v]["Avg"]
		ms := data["Mono+SHA"+v]["Avg"]
		if sg <= ms {
			t.Errorf("variant %s: Split+GCM (%.3f) not better than Mono+SHA (%.3f)", v, sg, ms)
		}
	}
	// Bigger MACs cost (weakly) more: deeper trees, more traffic.
	sg32 := data["Split+GCM/mac32"]["Avg"]
	sg128 := data["Split+GCM/mac128"]["Avg"]
	if sg128 > sg32+0.02 {
		t.Errorf("128-bit MACs (%.3f) outperform 32-bit (%.3f)", sg128, sg32)
	}
}

func TestScalarsShape(t *testing.T) {
	r := New(Options{
		Instructions: 600_000,
		Seed:         1,
		Benches:      []string{"twolf", "equake", "applu"},
	})
	tbl, res := r.Scalars()
	_ = tbl
	if res.OnChipFraction < 0 || res.OnChipFraction > 1 {
		t.Errorf("on-chip fraction %v out of range", res.OnChipFraction)
	}
	// Split must do far less re-encryption work than mono8 whole-memory
	// re-encryption... when any mono8 overflow happened at this scale.
	if res.WorkRatio > 0.05 && res.WorkRatio != 0 {
		t.Errorf("split/mono8 work ratio %.4f not tiny", res.WorkRatio)
	}
}
