package harness

import "testing"

func ablRunner() *Runner {
	return New(Options{
		Instructions: 400_000,
		Seed:         1,
		Benches:      []string{"twolf", "applu"},
	})
}

func TestAblateRSRs(t *testing.T) {
	r := ablRunner()
	tbl, rows := r.AblateRSRs()
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	_ = tbl.String()
	// Stall cycles must be monotonically non-increasing with more RSRs,
	// and 8+ registers should be (near) stall-free — the paper's claim.
	for i := 0; i+1 < len(rows); i++ {
		if rows[i].StallCycles < rows[i+1].StallCycles {
			t.Errorf("stalls rose with more RSRs: %s=%d -> %s=%d",
				rows[i].Label, rows[i].StallCycles, rows[i+1].Label, rows[i+1].StallCycles)
		}
	}
	eight := rows[3] // 8 RSRs
	if eight.PageReencs > 0 && float64(eight.StallCycles) > 0.01*float64(eight.PageReencs)*5000 {
		t.Errorf("8 RSRs still stalling materially: %d cycles over %d re-encs",
			eight.StallCycles, eight.PageReencs)
	}
	// IPC must not vary wildly across the sweep.
	if d := rows[0].NormIPC - rows[len(rows)-1].NormIPC; d > 0.05 || d < -0.05 {
		t.Errorf("RSR count moved IPC by %.3f", d)
	}
}

func TestAblateMinorBits(t *testing.T) {
	r := ablRunner()
	_, rows := r.AblateMinorBits()
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Narrower minors re-encrypt (weakly) more often.
	for i := 0; i+1 < len(rows); i++ {
		if rows[i].PageReencs < rows[i+1].PageReencs {
			t.Errorf("re-encryptions rose with wider minors: %s=%d -> %s=%d",
				rows[i].Label, rows[i].PageReencs, rows[i+1].Label, rows[i+1].PageReencs)
		}
	}
	// Even 4-bit minors keep the overhead modest (the paper: >4 bits never
	// stalls on same-page overflow).
	first, last := rows[1], rows[len(rows)-1] // 4-bit vs 8-bit
	if last.NormIPC-first.NormIPC > 0.08 {
		t.Errorf("4-bit minors cost %.3f IPC vs 8-bit", last.NormIPC-first.NormIPC)
	}
}

func TestAblatePageSize(t *testing.T) {
	r := ablRunner()
	_, rows := r.AblatePageSize()
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// The paper reports little performance variation across page sizes —
	// for geometries whose minors keep their width (1..4 KB pages). The
	// 8 KB point forces 3-bit minors (pack constraint) and re-encrypts
	// pathologically; it is included as the cautionary extreme.
	lo, hi := rows[0].NormIPC, rows[0].NormIPC
	for _, row := range rows[:3] {
		if row.NormIPC < lo {
			lo = row.NormIPC
		}
		if row.NormIPC > hi {
			hi = row.NormIPC
		}
	}
	// Small pages also shrink the counter cache's reach (one line covers
	// one page), so some variation is expected; it must stay moderate and
	// favour larger pages.
	if hi-lo > 0.12 {
		t.Errorf("page size swings IPC by %.3f (%.3f..%.3f)", hi-lo, lo, hi)
	}
	if rows[0].NormIPC > rows[2].NormIPC+0.02 {
		t.Errorf("1KB pages (%.3f) beat 4KB pages (%.3f): reach effect missing",
			rows[0].NormIPC, rows[2].NormIPC)
	}
	if rows[3].NormIPC > rows[2].NormIPC+0.02 {
		t.Errorf("8KB/3-bit point (%.3f) unexpectedly beats 4KB/7-bit (%.3f)",
			rows[3].NormIPC, rows[2].NormIPC)
	}
}

func TestAblateMacCache(t *testing.T) {
	r := ablRunner()
	_, rows := r.AblateMacCache()
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// A dedicated 64KB MAC cache must not be worse than sharing the L2.
	shared, dedicated := rows[0].NormIPC, rows[3].NormIPC
	if dedicated < shared-0.02 {
		t.Errorf("dedicated 64KB MAC cache (%.3f) worse than shared L2 (%.3f)",
			dedicated, shared)
	}
}

func TestAblateMonoCharge(t *testing.T) {
	r := ablRunner()
	_, rows := r.AblateMonoCharge()
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	free, charged, split := rows[0], rows[1], rows[2]
	// Charging can only hurt (or leave unchanged, if no overflow happened
	// at this scale).
	if charged.NormIPC > free.NormIPC+1e-9 {
		t.Errorf("charged Mono8b (%.3f) better than free (%.3f)", charged.NormIPC, free.NormIPC)
	}
	// Split is fully charged yet competitive with free Mono8b.
	if split.NormIPC < free.NormIPC-0.06 {
		t.Errorf("split (%.3f) well below free Mono8b (%.3f)", split.NormIPC, free.NormIPC)
	}
}
