// Package harness drives the paper's evaluation: it instantiates a
// simulated machine per (benchmark, scheme) pair, runs the synthetic
// workload, normalizes IPC against the unprotected baseline, and formats
// each of the paper's tables and figures.
//
// Runs are independent, so the harness fans them out across CPUs; results
// are deterministic for a given (options, scheme) regardless of
// parallelism.
package harness

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"secmem/internal/config"
	"secmem/internal/core"
	"secmem/internal/cpu"
	"secmem/internal/obsv"
	"secmem/internal/predictor"
	"secmem/internal/reenc"
	"secmem/internal/stats"
	"secmem/internal/trace"
)

// Options controls an evaluation campaign.
type Options struct {
	// Instructions per run (the paper simulates 1B; the default trades
	// that down to something a laptop regenerates in minutes while keeping
	// the relative results stable).
	Instructions uint64
	// Seed feeds the workload generators.
	Seed int64
	// Benches lists the workloads; nil means all 21.
	Benches []string
	// Parallelism bounds concurrent simulation runs within a campaign.
	// Zero and negative values both mean "use GOMAXPROCS workers" — the
	// zero value of Options must behave like DefaultOptions here, and a
	// negative value (e.g. from a miscomputed flag) is clamped rather than
	// silently serializing or panicking. Any positive value is honoured
	// exactly, even above GOMAXPROCS. Parallelism never affects results,
	// only wall time: every run is deterministic in (bench, config, seed).
	Parallelism int
	// Functional runs every campaign simulation with the byte-level
	// crypto layer enabled (real AES pads, GHASH MACs, and tree updates
	// per transfer) on top of the timing model. The simulated numbers are
	// identical either way — the functional layer shares the timing
	// path's presence/dirty decisions — so figure campaigns leave this
	// off for speed; the speed benchmarks turn it on to measure the
	// crypto kernels under a realistic access stream.
	Functional bool
	// Shards selects the sharded sim core (see shard.go): zero keeps the
	// classic single-machine serial model; any positive value runs the
	// ShardSlices-way address-sliced model on that many worker
	// goroutines. The sliced model's results are byte-identical for every
	// positive Shards value — workers only change wall time — but differ
	// from the serial model's (the slices have private caches and trees),
	// so goldens pin the two models separately.
	Shards int
	// RouteWorkers bounds the replay workers of the pipelined trace
	// front-end (pipeline.go) that materialize generator chunks in
	// parallel. Zero and negative mean "use GOMAXPROCS workers", the same
	// contract as Parallelism; any positive value is honoured exactly.
	// Like Shards, it changes wall time only, never results — fingerprints
	// are pinned across worker counts. Ignored for serial (Shards == 0)
	// runs.
	RouteWorkers int
	// RouteChunk is the pipeline's chunk size in instructions. Zero and
	// negative select the built-in default; any positive value is
	// honoured. Chunk size moves segment seal boundaries but never event
	// order, keys, or budgets, so it too changes wall time only.
	RouteChunk int
}

// DefaultOptions returns a campaign sized for interactive use.
func DefaultOptions() Options {
	return Options{Instructions: 2_000_000, Seed: 1}
}

func (o Options) benches() []string {
	if len(o.Benches) > 0 {
		return o.Benches
	}
	return trace.Names()
}

// RunOut captures everything a figure needs from one simulation.
type RunOut struct {
	Bench  string
	Scheme string
	CPU    cpu.Result
	IPC    float64
	Ctl    core.Stats
	// Counter-cache and counter statistics (zero when unused).
	CtrHits, CtrHalfMisses, CtrMisses uint64
	CtrIncrements                     uint64
	FastestIncr                       uint64
	RSR                               reenc.Stats
	Seconds                           float64 // simulated wall time
	BusBusy, BusWait                  uint64  // bus occupancy and queue delay
	AESIssues                         uint64
	// PageFastestIncrs holds, per touched encryption page, the write-back
	// count of its fastest-advancing block (Section 6.1 analysis).
	PageFastestIncrs []uint64
}

// CtrHitRate is hits over all counter-cache lookups.
func (r RunOut) CtrHitRate() float64 {
	n := r.CtrHits + r.CtrHalfMisses + r.CtrMisses
	if n == 0 {
		return 1
	}
	return float64(r.CtrHits) / float64(n)
}

// CtrHitPlusHalf counts half-misses as on-chip (the paper's second bar).
func (r RunOut) CtrHitPlusHalf() float64 {
	n := r.CtrHits + r.CtrHalfMisses + r.CtrMisses
	if n == 0 {
		return 1
	}
	return float64(r.CtrHits+r.CtrHalfMisses) / float64(n)
}

// TimelyPadRate is the fraction of counter-mode decryptions whose pad beat
// the data fetch.
func (r RunOut) TimelyPadRate() float64 {
	if r.Ctl.PadReads == 0 {
		return 1
	}
	return float64(r.Ctl.TimelyPads) / float64(r.Ctl.PadReads)
}

// Runner executes runs and caches baseline IPCs.
type Runner struct {
	Opt Options

	mu        sync.Mutex
	baselines map[string]float64
	tableErr  error

	// mergeNanos is the wall time of the last sharded run's merge fold;
	// see MergeNanos.
	mergeNanos int64

	// calScratch recycles calendar segments across every sharded run the
	// Runner executes, so a campaign's routing reuses a few pre-carved
	// backing arrays instead of allocating per segment (pipeline.go).
	calScratch calPool

	// pipe* hold the wall-clock accounting of the most recent sharded
	// run's pipelined front-end; see PipelineStats. Guarded by mu —
	// campaign runs execute concurrently.
	pipeFirstSealNanos int64
	pipeRouteDoneNanos int64
	pipeTotalNanos     int64
}

// noteTableErr records the first malformed-figure-row error. Figure tables
// are assembled from dynamic slices; an arity bug should fail the whole run
// with context (via Err) rather than panic mid-campaign.
func (r *Runner) noteTableErr(err error) {
	r.mu.Lock()
	if r.tableErr == nil {
		r.tableErr = err
	}
	r.mu.Unlock()
}

// Err reports the first table-assembly error encountered by any figure or
// ablation built so far; drivers check it after rendering and fail the run.
func (r *Runner) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.tableErr
}

// addRow appends a dynamically assembled row via TryAddRow, converting a
// malformed row into a run-failing error that names the table and row.
func (r *Runner) addRow(tbl *stats.Table, cells ...string) {
	if err := tbl.TryAddRow(cells...); err != nil {
		r.noteTableErr(fmt.Errorf("harness: %w (row %q)", err, cells))
	}
}

// New builds a Runner.
func New(opt Options) *Runner {
	if opt.Instructions == 0 {
		opt.Instructions = DefaultOptions().Instructions
	}
	return &Runner{Opt: opt, baselines: make(map[string]float64)}
}

// Obs bundles the observability sinks of an instrumented run. Any field
// may be nil; the zero Obs means "uninstrumented". Smp attaches a cycle-
// driven time-series sampler; when both Smp and Rec are set, the sampled
// trajectories are merged into the trace as Perfetto counter tracks after
// the run.
type Obs struct {
	Reg *obsv.Registry
	Rec *obsv.Recorder
	Smp *obsv.Sampler
}

// Run simulates one (benchmark, configuration) pair.
func (r *Runner) Run(bench string, cfg config.SystemConfig) RunOut {
	return r.RunObserved(bench, cfg, Obs{})
}

// RunObserved is Run with observability attached: the memory system is
// instrumented against obs before the workload starts, and end-of-run
// utilization gauges are exported at the run's final cycle. Counters
// accumulate across successive runs sharing a registry; gauges reflect the
// latest run.
func (r *Runner) RunObserved(bench string, cfg config.SystemConfig, obs Obs) RunOut {
	if r.Opt.Shards > 0 {
		return r.runSharded(bench, cfg, obs)
	}
	if r.Opt.Functional {
		cfg.Functional = true
	}
	mem, err := core.NewMemSystem(cfg)
	if err != nil {
		panic(err) // configurations are code, not input
	}
	if obs.Reg != nil || obs.Rec != nil {
		mem.Instrument(obs.Reg, obs.Rec)
	}
	if obs.Smp != nil {
		mem.AttachSampler(obs.Smp)
	}
	gen := trace.NewGenerator(trace.Get(bench), r.Opt.Seed)
	c := cpu.New(cfg, mem)
	res := c.Run(gen, r.Opt.Instructions)
	if obs.Smp != nil {
		// Close the series at the run's final cycle, then merge the
		// trajectories into the trace as counter tracks (before ExportObs
		// so the trace.dropped gauge counts these events too).
		obs.Smp.SampleAt(uint64(res.Cycles))
		obs.Smp.EmitTrace(obs.Rec)
	}
	if obs.Reg != nil {
		mem.ExportObs(res.Cycles)
	}
	if cfg.ChargeMonoReenc {
		// Whole-memory re-encryption freezes are charged by adding their
		// analytic cost to the run's cycle count (the processor does
		// nothing useful during a freeze).
		res.Cycles += mem.Controller().Stats.FreezeCycles
	}
	return collectRunOut(bench, cfg, mem, res)
}

// collectRunOut assembles a RunOut from a finished machine. Shared by the
// serial path and the sharded core (which collects one per slice and
// merges).
func collectRunOut(bench string, cfg config.SystemConfig, mem *core.MemSystem, res cpu.Result) RunOut {
	out := RunOut{
		Bench:   bench,
		Scheme:  cfg.SchemeName(),
		CPU:     res,
		IPC:     res.IPC(),
		Ctl:     mem.Controller().Stats,
		Seconds: res.Seconds(cfg.ClockGHz),
	}
	if ctrs := mem.Controller().Counters(); ctrs != nil {
		st := ctrs.Stats
		out.CtrHits, out.CtrHalfMisses, out.CtrMisses = st.Hits, st.HalfMisses, st.Misses
		out.CtrIncrements = st.Increments
		out.FastestIncr, _ = ctrs.FastestCounter()
		// Per-page fastest counters, for the Section 6.1 analytic work
		// ratio: a page re-encrypts at the rate of its fastest minor.
		pageFastest := map[uint64]uint64{}
		ctrs.ForEachIncrement(func(addr, count uint64) {
			page := addr / (uint64(cfg.PageBlocks) * 64)
			if count > pageFastest[page] {
				pageFastest[page] = count
			}
		})
		out.PageFastestIncrs = make([]uint64, 0, len(pageFastest))
		for _, v := range pageFastest {
			out.PageFastestIncrs = append(out.PageFastestIncrs, v)
		}
		// Map iteration order would leak into the RunOut otherwise; sorted,
		// identical runs compare DeepEqual and goldens stay byte-stable.
		sort.Slice(out.PageFastestIncrs, func(i, j int) bool {
			return out.PageFastestIncrs[i] < out.PageFastestIncrs[j]
		})
	}
	if rsrs := mem.Controller().RSRs(); rsrs != nil {
		out.RSR = rsrs.Stats
	}
	out.BusBusy = mem.Controller().Bus().BusyCycles()
	out.BusWait = mem.Controller().Bus().QueueDelay()
	out.AESIssues = mem.Controller().AES().Issues()
	return out
}

// CampaignObserved runs every benchmark in the campaign against cfg in
// parallel, each worker recording into its own shard of a sharded
// registry, and returns the per-benchmark results in campaign order plus
// the deterministic name-sorted merge of all shards. This is the
// contention-free instrumentation pattern the parallel sim core and the
// secmemd shards use: no registry is ever touched by two goroutines, and
// the merged snapshot is independent of scheduling.
func (r *Runner) CampaignObserved(cfg config.SystemConfig) ([]RunOut, *obsv.Registry) {
	benches := r.Opt.benches()
	sh := obsv.NewSharded(len(benches))
	outs := make([]RunOut, len(benches))
	r.parallelFor(len(benches), func(i int) {
		outs[i] = r.RunObserved(benches[i], cfg, Obs{Reg: sh.Shard(i)})
	})
	return outs, sh.Merge()
}

// Baseline returns the unprotected-machine IPC for a benchmark, cached.
func (r *Runner) Baseline(bench string) float64 {
	r.mu.Lock()
	v, ok := r.baselines[bench]
	r.mu.Unlock()
	if ok {
		return v
	}
	out := r.Run(bench, config.Baseline())
	r.mu.Lock()
	r.baselines[bench] = out.IPC
	r.mu.Unlock()
	return out.IPC
}

// NormIPC runs a configuration and normalizes its IPC to the baseline.
func (r *Runner) NormIPC(bench string, cfg config.SystemConfig) float64 {
	base := r.Baseline(bench)
	if base == 0 {
		return 0
	}
	return r.Run(bench, cfg).IPC / base
}

// WarmBaselines computes all baselines in parallel so subsequent figure
// loops don't serialize on them.
func (r *Runner) WarmBaselines() {
	benches := r.Opt.benches()
	r.parallelFor(len(benches), func(i int) {
		r.Baseline(benches[i])
	})
}

// workerCount resolves Options.Parallelism to an actual worker count,
// implementing the contract documented on the field: <= 0 maps to
// GOMAXPROCS, positive values pass through.
func (r *Runner) workerCount() int {
	if r.Opt.Parallelism <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return r.Opt.Parallelism
}

// routeWorkers resolves Options.RouteWorkers under the same contract as
// Parallelism: <= 0 maps to GOMAXPROCS, positive values pass through.
func (r *Runner) routeWorkers() int {
	if r.Opt.RouteWorkers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return r.Opt.RouteWorkers
}

// routeChunk resolves Options.RouteChunk: <= 0 selects the default.
func (r *Runner) routeChunk() uint64 {
	if r.Opt.RouteChunk <= 0 {
		return defaultRouteChunk
	}
	return uint64(r.Opt.RouteChunk)
}

// PipelineStats reports the wall-clock accounting of the most recent
// sharded run's pipelined trace front-end, as fractions of that run's
// total wall time: routeOverhead is the serial prefix before the first
// sealed segment reached a slice (no simulation can proceed during it),
// and pipelineFill is the span until routing completed (beyond it the
// slices run free of the front-end). Both are zero for serial runs. The
// readings are host wall time for the speed benchmarks; no simulated
// number depends on them.
func (r *Runner) PipelineStats() (routeOverhead, pipelineFill float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.pipeTotalNanos == 0 {
		return 0, 0
	}
	total := float64(r.pipeTotalNanos)
	return float64(r.pipeFirstSealNanos) / total, float64(r.pipeRouteDoneNanos) / total
}

// parallelFor runs fn(0..n-1) across a bounded worker pool.
func (r *Runner) parallelFor(n int, fn func(i int)) {
	parallelDo(r.workerCount(), n, fn)
}

// parallelDo runs fn(0..n-1) on up to workers goroutines. Which worker runs
// which index is scheduler-dependent; callers must write results into
// per-index slots so the outcome is independent of the assignment (the
// sharded core and the campaign fan-out both do).
func parallelDo(workers, n int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}

// --- configuration constructors for the paper's schemes --------------------

// EncOnly returns an encryption-only machine (no authentication), as used
// by Figure 4, Table 2, and Figure 5.
func EncOnly(mode config.EncryptionMode, monoBits int) config.SystemConfig {
	cfg := config.Default()
	cfg.Enc = mode
	cfg.MonoCounterBits = monoBits
	cfg.Auth = config.AuthNone
	cfg.AuthenticateCounters = false
	return cfg
}

// AuthOnly returns an authentication-only machine (no encryption), as used
// by Figures 7 and 8. GCM still maintains counters, per Section 6.2.
func AuthOnly(auth config.AuthMode, shaLatency uint64, req config.AuthReq, parallel bool) config.SystemConfig {
	cfg := config.Default()
	cfg.Enc = config.EncNone
	cfg.Auth = auth
	cfg.SHA1Latency = shaLatency
	cfg.Req = req
	cfg.ParallelAuth = parallel
	cfg.AuthenticateCounters = auth == config.AuthGCM
	return cfg
}

// Combined returns one of Figure 9's five protection combinations by name:
// "Split+GCM", "Mono+GCM", "Split+SHA", "Mono+SHA", "XOM+SHA".
func Combined(name string) config.SystemConfig {
	cfg := config.Default()
	switch name {
	case "Split+GCM":
		cfg.Enc = config.EncCounterSplit
		cfg.Auth = config.AuthGCM
	case "Mono+GCM":
		cfg.Enc = config.EncCounterMono
		cfg.MonoCounterBits = 64
		cfg.Auth = config.AuthGCM
	case "Split+SHA":
		cfg.Enc = config.EncCounterSplit
		cfg.Auth = config.AuthSHA1
	case "Mono+SHA":
		cfg.Enc = config.EncCounterMono
		cfg.MonoCounterBits = 64
		cfg.Auth = config.AuthSHA1
	case "XOM+SHA":
		cfg.Enc = config.EncDirect
		cfg.Auth = config.AuthSHA1
		cfg.AuthenticateCounters = false
	default:
		panic("harness: unknown combined scheme " + name)
	}
	return cfg
}

// CombinedNames lists Figure 9's schemes in plot order.
func CombinedNames() []string {
	return []string{"Split+GCM", "Mono+GCM", "Split+SHA", "Mono+SHA", "XOM+SHA"}
}

// WithCounterCache resizes the counter cache (Figure 5).
func WithCounterCache(cfg config.SystemConfig, sizeBytes int) config.SystemConfig {
	cc := cfg.CounterCache
	cc.SizeBytes = sizeBytes
	cfg.CounterCache = cc
	return cfg
}

// RunPredictor simulates the counter-prediction baseline for Figure 6.
func (r *Runner) RunPredictor(bench string, engines int) (cpu.Result, predictor.Stats) {
	sys := config.Baseline()
	pcfg := predictor.DefaultConfig(sys, engines)
	p, err := predictor.New(pcfg)
	if err != nil {
		panic(err)
	}
	gen := trace.NewGenerator(trace.Get(bench), r.Opt.Seed)
	c := cpu.New(sys, p)
	res := c.Run(gen, r.Opt.Instructions)
	return res, p.Stats
}

// MetricDelta is one benchmark's observability difference between a
// protected run and the unprotected baseline: counters are protected minus
// baseline; gauges are the protected run's end-of-run values.
type MetricDelta struct {
	Bench    string             `json:"bench"`
	Scheme   string             `json:"scheme"`
	Counters map[string]int64   `json:"counters"`
	Gauges   map[string]float64 `json:"gauges"`
}

// MetricDeltas runs every benchmark in the campaign twice — unprotected
// baseline and cfg — each with its own registry (registries are not safe
// for concurrent use, so runs never share one), and returns per-benchmark
// counter deltas in campaign order.
func (r *Runner) MetricDeltas(cfg config.SystemConfig) []MetricDelta {
	benches := r.Opt.benches()
	out := make([]MetricDelta, len(benches))
	r.parallelFor(len(benches), func(i int) {
		b := benches[i]
		base := obsv.NewRegistry()
		prot := obsv.NewRegistry()
		r.RunObserved(b, config.Baseline(), Obs{Reg: base})
		r.RunObserved(b, cfg, Obs{Reg: prot})
		bs, ps := base.Snapshot(), prot.Snapshot()
		d := MetricDelta{
			Bench:    b,
			Scheme:   cfg.SchemeName(),
			Counters: make(map[string]int64, len(ps.Counters)),
			Gauges:   ps.Gauges,
		}
		for name, v := range ps.Counters {
			d.Counters[name] = int64(v) - int64(bs.Counters[name])
		}
		for name, v := range bs.Counters {
			if _, ok := ps.Counters[name]; !ok {
				d.Counters[name] = -int64(v)
			}
		}
		out[i] = d
	})
	return out
}
