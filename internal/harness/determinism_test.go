package harness

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"runtime"
	"testing"
)

// Campaign-output fingerprints captured BEFORE the fast crypto kernels
// (table-driven GHASH, T-table AES, zero-alloc MAC paths) landed. Pinning
// the rendered tables byte-identical proves the optimizations changed only
// wall time, never a simulated number: the fast paths compute the same
// functions as the oracles they replaced, and the timing model charges
// fixed hardware latencies that are independent of host-side crypto speed.
//
// If a deliberate model change moves these numbers, regenerate with:
//
//	go test ./internal/harness -run TestCampaignDeterminism -v
//
// and paste the printed sha256/length pairs here, noting the change in the
// commit message. An unexplained mismatch is a correctness bug in a kernel.
var campaignGoldens = []struct {
	name   string
	sha256 string
	length int
	run    func() string
}{
	{
		name:   "Fig4",
		sha256: "34afa652fddb588f0a86cb71964dc129760529c0a59619f78d626629daa7b6ea",
		length: 978,
		run: func() string {
			r := New(Options{Instructions: 300_000, Seed: 1,
				Benches: []string{"swim", "mcf", "crafty"}})
			tbl, _ := r.Fig4()
			return tbl.String()
		},
	},
	{
		// The sharded core simulates a different machine than the serial
		// model (ShardSlices slice-private hierarchies), so it carries its
		// own fingerprint. Options.Shards is a worker count, never a model
		// parameter — TestFig4RunToRunDeterminism proves every positive
		// value reproduces this same table.
		name:   "Fig4Sharded",
		sha256: "d47d18c4578b687342128fc013707dd8f5cff01d7816cea22f9125ea08ba57e8",
		length: 978,
		run: func() string {
			r := New(Options{Instructions: 300_000, Seed: 1, Shards: 1,
				Benches: []string{"swim", "mcf", "crafty"}})
			tbl, _ := r.Fig4()
			return tbl.String()
		},
	},
	{
		name:   "Scalars",
		sha256: "cbb68268876dccd7f5502fec017468591328c9c7ca5de91e7a67061263f5bd5c",
		length: 609,
		run: func() string {
			r := New(Options{Instructions: 500_000, Seed: 1,
				Benches: []string{"twolf", "equake", "applu"}})
			tbl, _ := r.Scalars()
			return tbl.String()
		},
	},
}

// TestFig4RunToRunDeterminism runs the Figure 4 campaign twice in-process
// and requires byte-identical output — the rendered table AND the raw
// normalized-IPC grid. The golden test above pins the numbers to a
// committed fingerprint; this meta-test pins the property the determinism
// analyzer enforces statically: with parallelFor fanning the campaign out
// across goroutines, no map-iteration order, scheduling interleaving, or
// float-merge order may reach the output. It keeps failing on
// nondeterminism even right after a deliberate golden regeneration.
func TestFig4RunToRunDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("two multi-scheme campaigns; skipped with -short")
	}
	run := func() (string, string) {
		// Functional: the real byte-level crypto (table-driven GHASH, AES
		// kernels, MAC paths) is in the measured loop, so kernel-level
		// nondeterminism would surface here too.
		r := New(Options{Instructions: 200_000, Seed: 1, Functional: true,
			Benches: []string{"swim", "mcf", "crafty"}})
		tbl, data := r.Fig4()
		raw, err := json.Marshal(data) // map keys marshal sorted: canonical form
		if err != nil {
			t.Fatal(err)
		}
		return tbl.String(), string(raw)
	}
	tbl1, raw1 := run()
	tbl2, raw2 := run()
	if tbl1 != tbl2 {
		t.Errorf("rendered Figure 4 table differs between two identical in-process runs:\nfirst:\n%s\nsecond:\n%s", tbl1, tbl2)
	}
	if raw1 != raw2 {
		t.Errorf("normalized-IPC grid differs between two identical in-process runs:\nfirst: %s\nsecond: %s", raw1, raw2)
	}

	// The sharded core makes the same promise across worker counts:
	// Options.Shards only chooses how many goroutines drain the slice
	// queues, so one worker, two workers, and one per host CPU must render
	// byte-identical tables and grids. This is the dynamic check of the
	// shard.go determinism argument (routing is input-only, slices are
	// closed systems, merges are order-insensitive folds).
	runSharded := func(workers, routeWorkers int) (string, string) {
		r := New(Options{Instructions: 200_000, Seed: 1, Functional: true,
			Benches: []string{"swim", "mcf", "crafty"}, Shards: workers,
			RouteWorkers: routeWorkers})
		tbl, data := r.Fig4()
		raw, err := json.Marshal(data)
		if err != nil {
			t.Fatal(err)
		}
		return tbl.String(), string(raw)
	}
	counts := []int{1, 2, runtime.GOMAXPROCS(0)}
	refTbl, refRaw := runSharded(counts[0], 1)
	for _, w := range counts[1:] {
		tbl, raw := runSharded(w, 1)
		if tbl != refTbl {
			t.Errorf("sharded Figure 4 table differs between %d and %d workers:\n%d workers:\n%s\n%d workers:\n%s",
				counts[0], w, counts[0], refTbl, w, tbl)
		}
		if raw != refRaw {
			t.Errorf("sharded normalized-IPC grid differs between %d and %d workers:\n%d workers: %s\n%d workers: %s",
				counts[0], w, counts[0], refRaw, w, raw)
		}
	}

	// The pipelined front-end's replay-worker count makes the same promise:
	// RouteWorkers parallelizes chunk materialization, and the router's
	// in-order splice erases any trace of which worker produced what, so
	// every count renders the identical campaign.
	for _, rw := range []int{2, runtime.GOMAXPROCS(0)} {
		tbl, raw := runSharded(1, rw)
		if tbl != refTbl {
			t.Errorf("sharded Figure 4 table differs between 1 and %d route workers:\n1:\n%s\n%d:\n%s",
				rw, refTbl, rw, tbl)
		}
		if raw != refRaw {
			t.Errorf("sharded normalized-IPC grid differs between 1 and %d route workers:\n1: %s\n%d: %s",
				rw, refRaw, rw, raw)
		}
	}
}

func TestCampaignDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-scheme campaigns; skipped with -short")
	}
	for _, g := range campaignGoldens {
		g := g
		t.Run(g.name, func(t *testing.T) {
			t.Parallel()
			out := g.run()
			sum := sha256.Sum256([]byte(out))
			got := hex.EncodeToString(sum[:])
			t.Logf("%s: sha256=%s length=%d", g.name, got, len(out))
			if got != g.sha256 || len(out) != g.length {
				t.Errorf("%s output changed: sha256=%s length=%d, want sha256=%s length=%d\n"+
					"rendered table:\n%s", g.name, got, len(out), g.sha256, g.length, out)
			}
		})
	}
}
