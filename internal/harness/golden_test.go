package harness

import (
	"testing"

	"secmem/internal/config"
)

// TestGoldenOutputs pins exact simulator outputs for three representative
// workloads. The simulator is deterministic, so any drift here means a
// timing-model change: if the change was intentional, regenerate the
// values (instructions below); if not, a regression slipped in.
//
// Regenerate by running the three pairs below at 300k instructions, seed 1,
// and printing base.CPU.Cycles, base.CPU.L2Misses, split.CPU.Cycles,
// split.Ctl.MacFetches.
func TestGoldenOutputs(t *testing.T) {
	golden := []struct {
		bench                 string
		baseCycles, baseMiss  uint64
		splitCycles, macFetch uint64
	}{
		{"swim", 637163, 13420, 1082942, 2676},
		{"mcf", 3019256, 38016, 11537616, 44415},
		{"crafty", 365612, 5483, 412059, 881},
	}
	r := New(Options{Instructions: 300_000, Seed: 1})
	for _, g := range golden {
		base := r.Run(g.bench, config.Baseline())
		split := r.Run(g.bench, Combined("Split+GCM"))
		if base.CPU.Cycles != g.baseCycles {
			t.Errorf("%s: baseline cycles = %d, golden %d", g.bench, base.CPU.Cycles, g.baseCycles)
		}
		if base.CPU.L2Misses != g.baseMiss {
			t.Errorf("%s: baseline L2 misses = %d, golden %d", g.bench, base.CPU.L2Misses, g.baseMiss)
		}
		if split.CPU.Cycles != g.splitCycles {
			t.Errorf("%s: Split+GCM cycles = %d, golden %d", g.bench, split.CPU.Cycles, g.splitCycles)
		}
		if split.Ctl.MacFetches != g.macFetch {
			t.Errorf("%s: Merkle fetches = %d, golden %d", g.bench, split.Ctl.MacFetches, g.macFetch)
		}
	}
}
