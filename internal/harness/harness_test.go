package harness

import (
	"runtime"
	"testing"

	"secmem/internal/config"
)

// quickRunner keeps unit-test turnaround fast; the shape assertions below
// hold at this scale and above (the full campaign uses cmd/paperbench).
func quickRunner(benches ...string) *Runner {
	opt := Options{Instructions: 400_000, Seed: 1}
	if len(benches) > 0 {
		opt.Benches = benches
	}
	return New(opt)
}

func TestBaselineCaching(t *testing.T) {
	r := quickRunner("swim")
	a := r.Baseline("swim")
	b := r.Baseline("swim")
	if a != b || a <= 0 {
		t.Fatalf("baseline caching broken: %v vs %v", a, b)
	}
}

func TestRunDeterministic(t *testing.T) {
	r := quickRunner()
	cfg := EncOnly(config.EncCounterSplit, 64)
	x := r.Run("art", cfg)
	y := r.Run("art", cfg)
	if x.IPC != y.IPC || x.CPU.Cycles != y.CPU.Cycles {
		t.Fatalf("nondeterministic run: %+v vs %+v", x.CPU, y.CPU)
	}
}

func TestNormIPCBounds(t *testing.T) {
	r := quickRunner("swim", "crafty")
	for _, b := range []string{"swim", "crafty"} {
		v := r.NormIPC(b, EncOnly(config.EncCounterSplit, 64))
		if v <= 0 || v > 1.05 {
			t.Errorf("%s split normalized IPC = %.3f, out of (0, 1.05]", b, v)
		}
	}
}

func TestMemoryBoundSufferMoreFromDirect(t *testing.T) {
	r := quickRunner("swim", "crafty")
	direct := EncOnly(config.EncDirect, 64)
	swim := r.NormIPC("swim", direct)
	crafty := r.NormIPC("crafty", direct)
	if swim >= crafty {
		t.Errorf("direct: swim %.3f not worse than crafty %.3f", swim, crafty)
	}
}

func TestSplitBeatsDirect(t *testing.T) {
	r := quickRunner("swim", "art", "applu")
	for _, b := range []string{"swim", "art", "applu"} {
		split := r.NormIPC(b, EncOnly(config.EncCounterSplit, 64))
		direct := r.NormIPC(b, EncOnly(config.EncDirect, 64))
		if split <= direct {
			t.Errorf("%s: split %.3f not better than direct %.3f", b, split, direct)
		}
	}
}

func TestSplitBeatsMono64(t *testing.T) {
	r := quickRunner("swim", "art")
	for _, b := range []string{"swim", "art"} {
		split := r.NormIPC(b, EncOnly(config.EncCounterSplit, 64))
		mono := r.NormIPC(b, EncOnly(config.EncCounterMono, 64))
		if split <= mono {
			t.Errorf("%s: split %.3f not better than mono64 %.3f", b, split, mono)
		}
	}
}

func TestMcfIsTheCounterCacheOutlier(t *testing.T) {
	// The paper singles out mcf: its enormous pointer-chased working set
	// defeats the counter cache.
	r := quickRunner("mcf", "swim")
	mcf := r.Run("mcf", EncOnly(config.EncCounterSplit, 64))
	swim := r.Run("swim", EncOnly(config.EncCounterSplit, 64))
	if mcf.CtrHitRate() >= swim.CtrHitRate() {
		t.Errorf("mcf counter hit rate %.2f not below swim's %.2f",
			mcf.CtrHitRate(), swim.CtrHitRate())
	}
}

func TestCombinedConstructors(t *testing.T) {
	for _, name := range CombinedNames() {
		cfg := Combined(name)
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if cfg.SchemeName() == "base" {
			t.Errorf("%s: scheme name empty", name)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("unknown combined scheme did not panic")
		}
	}()
	Combined("Triple+ROT13")
}

func TestAuthOnlyConfigs(t *testing.T) {
	gcm := AuthOnly(config.AuthGCM, 320, config.AuthCommit, true)
	if gcm.Enc != config.EncNone || !gcm.AuthenticateCounters {
		t.Errorf("GCM auth-only config wrong: %+v", gcm.Enc)
	}
	sha := AuthOnly(config.AuthSHA1, 640, config.AuthSafe, false)
	if sha.SHA1Latency != 640 || sha.ParallelAuth || sha.Req != config.AuthSafe {
		t.Error("SHA auth-only config wrong")
	}
	if sha.AuthenticateCounters {
		t.Error("SHA-only config should not authenticate counters")
	}
}

func TestWithCounterCache(t *testing.T) {
	cfg := WithCounterCache(EncOnly(config.EncCounterSplit, 64), 128<<10)
	if cfg.CounterCache.SizeBytes != 128<<10 {
		t.Error("counter cache size not applied")
	}
	if err := cfg.Validate(); err != nil {
		t.Error(err)
	}
}

func TestParallelForCoversAll(t *testing.T) {
	r := New(Options{Instructions: 1, Parallelism: 4})
	seen := make([]bool, 100)
	r.parallelFor(len(seen), func(i int) { seen[i] = true })
	for i, s := range seen {
		if !s {
			t.Fatalf("index %d not visited", i)
		}
	}
}

func TestPredictorRun(t *testing.T) {
	r := quickRunner("gcc")
	res, st := r.RunPredictor("gcc", 1)
	if res.Instructions == 0 || st.Misses == 0 {
		t.Fatalf("predictor run empty: %+v %+v", res, st)
	}
}

func TestParallelismDoesNotChangeResults(t *testing.T) {
	// Runs are independent simulations; fanning them across goroutines must
	// not change any number.
	mk := func(par int) FigData {
		r := New(Options{
			Instructions: 200_000,
			Seed:         1,
			Benches:      []string{"swim", "crafty"},
			Parallelism:  par,
		})
		_, data := r.Fig5()
		return data
	}
	serial := mk(1)
	parallel := mk(4)
	for scheme, row := range serial {
		for bench, v := range row {
			if parallel[scheme][bench] != v {
				t.Errorf("%s/%s: serial %v != parallel %v", scheme, bench, v, parallel[scheme][bench])
			}
		}
	}
}

// TestWorkerCountContract pins the Options.Parallelism resolution rule:
// zero and negative both mean GOMAXPROCS (the zero value must behave like
// DefaultOptions; a negative value is clamped, not serialized), positive
// values pass through untouched.
func TestWorkerCountContract(t *testing.T) {
	max := runtime.GOMAXPROCS(0)
	cases := []struct{ par, want int }{
		{0, max},
		{-1, max},
		{-100, max},
		{1, 1},
		{3, 3},
		{max + 5, max + 5},
	}
	for _, c := range cases {
		r := New(Options{Parallelism: c.par})
		if got := r.workerCount(); got != c.want {
			t.Errorf("Parallelism=%d: workerCount()=%d, want %d", c.par, got, c.want)
		}
	}
	// A negative setting must still drive parallelFor over every index.
	r := New(Options{Parallelism: -2})
	seen := make([]bool, 50)
	r.parallelFor(len(seen), func(i int) { seen[i] = true })
	for i, s := range seen {
		if !s {
			t.Fatalf("Parallelism=-2: index %d not visited", i)
		}
	}
}
