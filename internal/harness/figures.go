package harness

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"secmem/internal/config"
	"secmem/internal/core"
	"secmem/internal/cpu"
	"secmem/internal/predictor"
	"secmem/internal/stats"
	"secmem/internal/trace"
)

// Fig4Benches are the benchmarks the paper plots individually in Figure 4
// (those with at least 5% slowdown under direct encryption).
var Fig4Benches = []string{
	"ammp", "applu", "art", "equake", "mgrid", "swim", "wupwise",
	"mcf", "parser", "twolf",
}

// Fig7Benches are Figure 7's individually plotted benchmarks.
var Fig7Benches = []string{
	"ammp", "applu", "apsi", "art", "equake", "gap", "mcf", "mgrid",
	"parser", "swim", "twolf", "vortex", "vpr", "wupwise",
}

// Fig9Benches are Figure 9's individually plotted benchmarks.
var Fig9Benches = []string{
	"ammp", "applu", "apsi", "art", "equake", "mgrid", "swim", "wupwise",
	"mcf", "parser", "twolf", "vortex", "vpr",
}

// FigData maps scheme -> benchmark (or "Avg") -> value, the structured form
// of every figure for tests and plotting.
type FigData map[string]map[string]float64

func (d FigData) set(scheme, bench string, v float64) {
	if d[scheme] == nil {
		d[scheme] = make(map[string]float64)
	}
	d[scheme][bench] = v
}

// normGrid runs a set of schemes over all benchmarks in parallel and
// returns normalized IPCs plus per-run outputs.
func (r *Runner) normGrid(schemes map[string]config.SystemConfig) (FigData, map[string]map[string]RunOut) {
	r.WarmBaselines()
	benches := r.Opt.benches()
	type job struct{ scheme, bench string }
	var jobs []job
	names := make([]string, 0, len(schemes))
	for name := range schemes {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, s := range names {
		for _, b := range benches {
			jobs = append(jobs, job{s, b})
		}
	}
	data := make(FigData)
	outs := make(map[string]map[string]RunOut)
	var mu sync.Mutex
	r.parallelFor(len(jobs), func(i int) {
		j := jobs[i]
		out := r.Run(j.bench, schemes[j.scheme])
		norm := 0.0
		if base := r.Baseline(j.bench); base > 0 {
			norm = out.IPC / base
		}
		mu.Lock()
		data.set(j.scheme, j.bench, norm)
		if outs[j.scheme] == nil {
			outs[j.scheme] = make(map[string]RunOut)
		}
		outs[j.scheme][j.bench] = out
		mu.Unlock()
	})
	// Averages across all benchmarks in the campaign.
	for _, s := range names {
		var vs []float64
		for _, b := range benches {
			vs = append(vs, data[s][b])
		}
		data.set(s, "Avg", stats.Mean(vs))
	}
	return data, outs
}

func (r *Runner) gridTable(title string, data FigData, schemes, shown []string) stats.Table {
	tbl := stats.Table{Title: title, Cols: append([]string{"bench"}, schemes...)}
	for _, b := range append(append([]string{}, shown...), "Avg") {
		row := []string{b}
		for _, s := range schemes {
			row = append(row, stats.F(data[s][b]))
		}
		r.addRow(&tbl, row...)
	}
	return tbl
}

// Fig4 regenerates Figure 4: normalized IPC under the six encryption
// schemes, no authentication. Monolithic whole-memory re-encryptions are
// counted (the numbers above the bars) but not charged, matching the
// paper's methodology for Mono8b.
func (r *Runner) Fig4() (stats.Table, FigData) {
	schemes := map[string]config.SystemConfig{
		"Split":   EncOnly(config.EncCounterSplit, 64),
		"Mono8b":  EncOnly(config.EncCounterMono, 8),
		"Mono16b": EncOnly(config.EncCounterMono, 16),
		"Mono32b": EncOnly(config.EncCounterMono, 32),
		"Mono64b": EncOnly(config.EncCounterMono, 64),
		"Direct":  EncOnly(config.EncDirect, 64),
	}
	data, outs := r.normGrid(schemes)
	order := []string{"Split", "Mono8b", "Mono16b", "Mono32b", "Mono64b", "Direct"}
	tbl := r.gridTable("Figure 4: Normalized IPC, encryption schemes (no authentication)",
		data, order, Fig4Benches)
	var totalReencs uint64
	for _, out := range outs["Mono8b"] {
		totalReencs += out.Ctl.FullReencEvents
	}
	tbl.AddNote("Mono8b whole-memory re-encryptions observed (zero-cost, counted): %d across %d benchmarks",
		totalReencs, len(r.Opt.benches()))
	return tbl, data
}

// Table2Apps are the five fastest-counter applications the paper tabulates.
var Table2Apps = []string{"applu", "art", "equake", "mcf", "twolf"}

// Table2 regenerates Table 2: counter growth rates and estimated time to
// overflow for monolithic counters of each width and the 32-bit global
// counter.
func (r *Runner) Table2() (stats.Table, FigData) {
	type schemeDef struct {
		name string
		cfg  config.SystemConfig
		bits int
		// global uses total write-backs; local uses the fastest counter.
		global bool
	}
	defs := []schemeDef{
		{"Mono8b", EncOnly(config.EncCounterMono, 8), 8, false},
		{"Mono16b", EncOnly(config.EncCounterMono, 16), 16, false},
		{"Mono32b", EncOnly(config.EncCounterMono, 32), 32, false},
		{"Mono64b", EncOnly(config.EncCounterMono, 64), 64, false},
		{"Global32b", EncOnly(config.EncCounterGlobal, 32), 32, true},
	}
	benches := r.Opt.benches()
	data := make(FigData)
	overflow := make(FigData)
	var mu sync.Mutex
	var jobs []struct {
		d schemeDef
		b string
	}
	for _, d := range defs {
		for _, b := range benches {
			jobs = append(jobs, struct {
				d schemeDef
				b string
			}{d, b})
		}
	}
	r.parallelFor(len(jobs), func(i int) {
		j := jobs[i]
		out := r.Run(j.b, j.d.cfg)
		incr := out.FastestIncr
		if j.d.global {
			incr = out.CtrIncrements
		}
		rate := 0.0
		if out.Seconds > 0 {
			rate = float64(incr) / out.Seconds
		}
		ttf := math.Inf(1)
		if rate > 0 {
			ttf = math.Pow(2, float64(j.d.bits)) / rate
		}
		mu.Lock()
		data.set(j.d.name, j.b, rate)
		overflow.set(j.d.name, j.b, ttf)
		mu.Unlock()
	})
	for _, d := range defs {
		var rates []float64
		for _, b := range benches {
			rates = append(rates, data[d.name][b])
		}
		avg := stats.Mean(rates)
		data.set(d.name, "Avg", avg)
		ttf := math.Inf(1)
		if avg > 0 {
			ttf = math.Pow(2, float64(d.bits)) / avg
		}
		overflow.set(d.name, "Avg", ttf)
	}

	tbl := stats.Table{
		Title: "Table 2: Counter growth rate and estimated time to overflow",
		Cols: []string{"app",
			"Mono8b r/s", "Mono16b r/s", "Mono32b r/s", "Mono64b r/s", "Global32b r/s",
			"Mono8b ovf", "Mono16b ovf", "Mono32b ovf", "Mono64b ovf", "Global32b ovf"},
	}
	for _, b := range append(append([]string{}, Table2Apps...), "Avg") {
		row := []string{b}
		for _, d := range defs {
			row = append(row, fmt.Sprintf("%.0f", data[d.name][b]))
		}
		for _, d := range defs {
			row = append(row, stats.Duration(overflow[d.name][b]))
		}
		r.addRow(&tbl, row...)
	}
	tbl.AddNote("r/s = fastest-counter increments per simulated second (Global32b: total write-backs)")
	return tbl, overflow
}

// Fig5Sizes are the counter-cache sizes swept in Figure 5.
var Fig5Sizes = []int{16 << 10, 32 << 10, 64 << 10, 128 << 10}

// Fig5 regenerates Figure 5: average normalized IPC versus counter cache
// size, split counters against 64-bit monolithic.
func (r *Runner) Fig5() (stats.Table, FigData) {
	schemes := make(map[string]config.SystemConfig)
	for _, size := range Fig5Sizes {
		kb := size >> 10
		schemes[fmt.Sprintf("split %dKB", kb)] = WithCounterCache(EncOnly(config.EncCounterSplit, 64), size)
		schemes[fmt.Sprintf("mono %dKB", kb)] = WithCounterCache(EncOnly(config.EncCounterMono, 64), size)
	}
	data, _ := r.normGrid(schemes)
	tbl := stats.Table{
		Title: "Figure 5: Sensitivity to counter cache size (average normalized IPC)",
		Cols:  []string{"size", "split", "mono64b"},
	}
	for _, size := range Fig5Sizes {
		kb := size >> 10
		tbl.AddRow(fmt.Sprintf("%dKB", kb),
			stats.F(data[fmt.Sprintf("split %dKB", kb)]["Avg"]),
			stats.F(data[fmt.Sprintf("mono %dKB", kb)]["Avg"]))
	}
	return tbl, data
}

// Fig6aResult carries Figure 6(a)'s three bar groups.
type Fig6aResult struct {
	SNCHit         float64 // split: counter cache hit rate
	SNCHitHalf     float64 // split: hit + half-miss
	PredRate       float64 // prediction scheme: prediction rate
	TimelySplit    float64
	TimelyPred1    float64
	TimelyPred2    float64
	IPCSplit       float64
	IPCPred1Engine float64
	IPCPred2Engine float64
}

// Fig6a regenerates Figure 6(a): split counters versus counter prediction.
func (r *Runner) Fig6a() (stats.Table, Fig6aResult) {
	r.WarmBaselines()
	benches := r.Opt.benches()
	var mu sync.Mutex
	var hit, hitHalf, timelySplit, ipcSplit []float64
	var pred1Rate, timely1, ipc1 []float64
	var timely2, ipc2 []float64
	splitCfg := EncOnly(config.EncCounterSplit, 64)
	r.parallelFor(len(benches), func(i int) {
		b := benches[i]
		out := r.Run(b, splitCfg)
		base := r.Baseline(b)
		p1res, p1 := r.RunPredictor(b, 1)
		p2res, p2 := r.RunPredictor(b, 2)
		mu.Lock()
		hit = append(hit, out.CtrHitRate())
		hitHalf = append(hitHalf, out.CtrHitPlusHalf())
		timelySplit = append(timelySplit, out.TimelyPadRate())
		ipcSplit = append(ipcSplit, out.IPC/base)
		pred1Rate = append(pred1Rate, p1.PredictionRate())
		timely1 = append(timely1, p1.TimelyPadRate())
		ipc1 = append(ipc1, p1res.IPC()/base)
		timely2 = append(timely2, p2.TimelyPadRate())
		ipc2 = append(ipc2, p2res.IPC()/base)
		mu.Unlock()
	})
	res := Fig6aResult{
		SNCHit:         stats.Mean(hit),
		SNCHitHalf:     stats.Mean(hitHalf),
		PredRate:       stats.Mean(pred1Rate),
		TimelySplit:    stats.Mean(timelySplit),
		TimelyPred1:    stats.Mean(timely1),
		TimelyPred2:    stats.Mean(timely2),
		IPCSplit:       stats.Mean(ipcSplit),
		IPCPred1Engine: stats.Mean(ipc1),
		IPCPred2Engine: stats.Mean(ipc2),
	}
	tbl := stats.Table{
		Title: "Figure 6(a): Split counters vs counter prediction (averages)",
		Cols:  []string{"metric", "Split", "Pred", "Pred (2Eng)"},
	}
	tbl.AddRow("counter hit / prediction rate", stats.Pct(res.SNCHit), stats.Pct(res.PredRate), stats.Pct(res.PredRate))
	tbl.AddRow("hit+halfMiss", stats.Pct(res.SNCHitHalf), "-", "-")
	tbl.AddRow("timely pads", stats.Pct(res.TimelySplit), stats.Pct(res.TimelyPred1), stats.Pct(res.TimelyPred2))
	tbl.AddRow("normalized IPC", stats.F(res.IPCSplit), stats.F(res.IPCPred1Engine), stats.F(res.IPCPred2Engine))
	return tbl, res
}

// Fig6b regenerates Figure 6(b): counter-cache hit rate (split) and
// prediction rate (pred) trends over execution windows.
func (r *Runner) Fig6b(windows int) (stats.Table, [][2]float64) {
	if windows <= 0 {
		windows = 5
	}
	benches := r.Opt.benches()
	chunk := r.Opt.Instructions / uint64(windows)
	splitRates := make([][]float64, windows)
	predRates := make([][]float64, windows)
	var mu sync.Mutex
	r.parallelFor(len(benches), func(bi int) {
		b := benches[bi]
		// Split machine, windowed counter-cache stats.
		cfg := EncOnly(config.EncCounterSplit, 64)
		mem, err := core.NewMemSystem(cfg)
		if err != nil {
			panic(err)
		}
		gen := trace.NewGenerator(trace.Get(b), r.Opt.Seed)
		c := cpu.New(cfg, mem)
		var prevH, prevHM, prevM uint64
		sRates := make([]float64, windows)
		for w := 0; w < windows; w++ {
			c.Run(gen, uint64(w+1)*chunk)
			st := mem.Controller().Counters().Stats
			dh := st.Hits - prevH
			dhm := st.HalfMisses - prevHM
			dm := st.Misses - prevM
			prevH, prevHM, prevM = st.Hits, st.HalfMisses, st.Misses
			if n := dh + dhm + dm; n > 0 {
				sRates[w] = float64(dh) / float64(n)
			} else {
				sRates[w] = 1
			}
		}
		// Prediction machine, windowed prediction rate.
		psys, err := predictor.New(predictor.DefaultConfig(config.Baseline(), 1))
		if err != nil {
			panic(err)
		}
		pgen := trace.NewGenerator(trace.Get(b), r.Opt.Seed)
		pc := cpu.New(config.Baseline(), psys)
		pRates := make([]float64, windows)
		for w := 0; w < windows; w++ {
			pc.Run(pgen, uint64(w+1)*chunk)
			st := psys.SnapshotStats()
			pRates[w] = st.PredictionRate()
		}
		mu.Lock()
		for w := 0; w < windows; w++ {
			splitRates[w] = append(splitRates[w], sRates[w])
			predRates[w] = append(predRates[w], pRates[w])
		}
		mu.Unlock()
	})
	tbl := stats.Table{
		Title: "Figure 6(b): Prediction and counter cache hit rate trends",
		Cols:  []string{"window", "SNC hit (split)", "prediction rate (pred)"},
	}
	series := make([][2]float64, windows)
	for w := 0; w < windows; w++ {
		s := stats.Mean(splitRates[w])
		p := stats.Mean(predRates[w])
		series[w] = [2]float64{s, p}
		tbl.AddRow(fmt.Sprintf("%d", w+1), stats.Pct(s), stats.Pct(p))
	}
	return tbl, series
}

// Fig7Latencies are the SHA-1 engine latencies swept in Figure 7.
var Fig7Latencies = []uint64{80, 160, 320, 640}

// Fig7 regenerates Figure 7: GCM versus SHA-1 authentication (no
// encryption) under the commit requirement.
func (r *Runner) Fig7() (stats.Table, FigData) {
	schemes := map[string]config.SystemConfig{
		"GCM": AuthOnly(config.AuthGCM, 320, config.AuthCommit, true),
	}
	for _, lat := range Fig7Latencies {
		schemes[fmt.Sprintf("SHA-1 (%d)", lat)] =
			AuthOnly(config.AuthSHA1, lat, config.AuthCommit, true)
	}
	data, _ := r.normGrid(schemes)
	order := []string{"GCM", "SHA-1 (80)", "SHA-1 (160)", "SHA-1 (320)", "SHA-1 (640)"}
	tbl := r.gridTable("Figure 7: Normalized IPC, memory authentication (no encryption)",
		data, order, Fig7Benches)
	return tbl, data
}

// Fig8 regenerates Figure 8: GCM vs SHA-1 (320-cycle) under lazy/commit/
// safe requirements, and parallel vs sequential tree authentication.
func (r *Runner) Fig8() (stats.Table, FigData) {
	schemes := map[string]config.SystemConfig{
		"GCM lazy":     AuthOnly(config.AuthGCM, 320, config.AuthLazy, true),
		"GCM commit":   AuthOnly(config.AuthGCM, 320, config.AuthCommit, true),
		"GCM safe":     AuthOnly(config.AuthGCM, 320, config.AuthSafe, true),
		"SHA lazy":     AuthOnly(config.AuthSHA1, 320, config.AuthLazy, true),
		"SHA commit":   AuthOnly(config.AuthSHA1, 320, config.AuthCommit, true),
		"SHA safe":     AuthOnly(config.AuthSHA1, 320, config.AuthSafe, true),
		"GCM parallel": AuthOnly(config.AuthGCM, 320, config.AuthCommit, true),
		"GCM nonpar":   AuthOnly(config.AuthGCM, 320, config.AuthCommit, false),
		"SHA parallel": AuthOnly(config.AuthSHA1, 320, config.AuthCommit, true),
		"SHA nonpar":   AuthOnly(config.AuthSHA1, 320, config.AuthCommit, false),
	}
	data, _ := r.normGrid(schemes)
	tbl := stats.Table{
		Title: "Figure 8: Authentication requirements and tree parallelism (average normalized IPC)",
		Cols:  []string{"configuration", "GCM", "SHA-1 (320)"},
	}
	for _, req := range []string{"lazy", "commit", "safe"} {
		tbl.AddRow(req, stats.F(data["GCM "+req]["Avg"]), stats.F(data["SHA "+req]["Avg"]))
	}
	tbl.AddRow("parallel auth", stats.F(data["GCM parallel"]["Avg"]), stats.F(data["SHA parallel"]["Avg"]))
	tbl.AddRow("non-parallel auth", stats.F(data["GCM nonpar"]["Avg"]), stats.F(data["SHA nonpar"]["Avg"]))
	return tbl, data
}

// Fig9 regenerates Figure 9: the five combined encryption+authentication
// schemes.
func (r *Runner) Fig9() (stats.Table, FigData) {
	schemes := make(map[string]config.SystemConfig)
	for _, name := range CombinedNames() {
		schemes[name] = Combined(name)
	}
	data, _ := r.normGrid(schemes)
	tbl := r.gridTable("Figure 9: Normalized IPC, combined encryption + authentication",
		data, CombinedNames(), Fig9Benches)
	return tbl, data
}

// Fig10 regenerates Figure 10: sensitivity of the combined schemes to the
// authentication requirement, tree parallelism, and MAC size.
func (r *Runner) Fig10() (stats.Table, FigData) {
	schemes := make(map[string]config.SystemConfig)
	for _, name := range CombinedNames() {
		for _, req := range []config.AuthReq{config.AuthLazy, config.AuthCommit, config.AuthSafe} {
			cfg := Combined(name)
			cfg.Req = req
			schemes[fmt.Sprintf("%s/%s", name, req)] = cfg
		}
		cfg := Combined(name)
		cfg.ParallelAuth = false
		schemes[name+"/nonpar"] = cfg
		for _, mac := range []int{128, 64, 32} {
			cfg := Combined(name)
			cfg.MACBits = mac
			schemes[fmt.Sprintf("%s/mac%d", name, mac)] = cfg
		}
	}
	data, _ := r.normGrid(schemes)
	tbl := stats.Table{
		Title: "Figure 10: Sensitivity of combined schemes (average normalized IPC)",
		Cols:  append([]string{"variant"}, CombinedNames()...),
	}
	variants := []string{"lazy", "commit", "safe", "parallel", "nonpar.", "128b MAC", "64b MAC", "32b MAC"}
	keys := []string{"/lazy", "/commit", "/safe", "/commit", "/nonpar", "/mac128", "/mac64", "/mac32"}
	for vi, v := range variants {
		row := []string{v}
		for _, name := range CombinedNames() {
			row = append(row, stats.F(data[name+keys[vi]]["Avg"]))
		}
		r.addRow(&tbl, row...)
	}
	return tbl, data
}

// ScalarsResult carries the Section 6.1 scalar claims.
type ScalarsResult struct {
	OnChipFraction  float64 // paper: ~48%
	MeanReencCycles float64 // paper: ~5717
	MaxConcurrent   int     // paper: up to 3
	StallCycles     uint64  // paper: none with 8 RSRs and 7-bit minors
	// WorkRatio is split re-encryption work over mono8 whole-memory work,
	// derived analytically from the measured counter-increment rates: a
	// page re-encrypts at (fastest minor rate / 2^7) x 64 blocks, the
	// whole memory at (fastest counter rate / 2^8) x all blocks. The paper
	// reports ~0.3%.
	WorkRatio float64
	// ReencsObserved is how many page re-encryptions the stressed run
	// (narrow minors) actually performed; the RSR behaviour scalars above
	// are measured from it.
	ReencsObserved uint64
}

// Scalars regenerates the Section 6.1 scalar results. The work ratio is
// computed analytically from counter-increment rates (overflows take
// fractions of a simulated second — Table 2 — far beyond a campaign run),
// while the RSR behaviour numbers are measured directly from runs with
// 4-bit minors, which overflow frequently without changing the mechanism
// being measured.
func (r *Runner) Scalars() (stats.Table, ScalarsResult) {
	benches := r.Opt.benches()
	var mu sync.Mutex
	var onchip, meancyc []float64
	// Per-bench rate contributions, reduced in bench order after the join:
	// float addition is not associative, so accumulating across workers in
	// completion order would make the scalars interleaving-dependent.
	splitContrib := make([]float64, len(benches))
	monoContrib := make([]float64, len(benches))
	maxConc := 0
	var stalls, reencs uint64
	// The stressed configuration: 4-bit minors and a small L2 (so the hot
	// write set actually cycles through memory) make page re-encryptions
	// happen at campaign scale.
	stressCfg := stress(EncOnly(config.EncCounterSplit, 64))
	stressCfg.MinorBits = 4
	// The rate-measurement configuration is the paper's default.
	rateCfg := EncOnly(config.EncCounterSplit, 64)
	memBlocks := float64(rateCfg.MemBytes / 64)
	r.parallelFor(len(benches), func(i int) {
		b := benches[i]
		stress := r.Run(b, stressCfg)
		rate := r.Run(b, rateCfg)
		mu.Lock()
		if stress.RSR.PageReencs > 0 {
			onchip = append(onchip, stress.RSR.OnChipFraction())
			meancyc = append(meancyc, stress.RSR.MeanCycles())
		}
		reencs += stress.RSR.PageReencs
		if stress.RSR.MaxConcurrent > maxConc {
			maxConc = stress.RSR.MaxConcurrent
		}
		stalls += uint64(stress.RSR.StallCycles)
		// Analytic rates from the default-geometry run.
		if rate.Seconds > 0 {
			var split float64
			for _, f := range rate.PageFastestIncrs {
				split += float64(f) / 128 * 64 / rate.Seconds
			}
			splitContrib[i] = split
			monoContrib[i] = float64(rate.FastestIncr) / 256 * memBlocks / rate.Seconds
		}
		mu.Unlock()
	})
	var splitRate, monoRate float64 // re-encrypted blocks per second
	for i := range benches {
		splitRate += splitContrib[i]
		monoRate += monoContrib[i]
	}
	res := ScalarsResult{
		OnChipFraction:  stats.Mean(onchip),
		MeanReencCycles: stats.Mean(meancyc),
		MaxConcurrent:   maxConc,
		StallCycles:     stalls,
		ReencsObserved:  reencs,
	}
	if monoRate > 0 {
		res.WorkRatio = splitRate / monoRate
	}
	tbl := stats.Table{
		Title: "Section 6.1 scalars: page re-encryption behaviour",
		Cols:  []string{"metric", "measured", "paper"},
	}
	tbl.AddRow("blocks on-chip at re-encryption", stats.Pct(res.OnChipFraction), "48%")
	tbl.AddRow("mean page re-encryption cycles", fmt.Sprintf("%.0f", res.MeanReencCycles), "5717")
	tbl.AddRow("max concurrent re-encryptions", fmt.Sprintf("%d", res.MaxConcurrent), "up to 3")
	tbl.AddRow("write-back stall cycles (8 RSRs)", fmt.Sprintf("%d", res.StallCycles), "0")
	tbl.AddRow("split/mono8 re-encryption work", stats.Pct(res.WorkRatio), "0.3%")
	tbl.AddNote("RSR behaviour measured with 4-bit minors and a 128KB L2 (%d re-encryptions observed); work ratio derived from 7-bit-geometry counter rates", res.ReencsObserved)
	return tbl, res
}
