// Package engine provides the timing models of the on-chip cryptographic
// engines: the pipelined AES engine shared by encryption and GCM
// authentication, and the SHA-1 engine used by the baseline authentication
// schemes. Parameters follow Section 5 of the paper: the AES engine has a
// 16-stage pipeline with an 80-cycle total latency (initiation interval 5),
// and the SHA-1 engine has 32 stages and a 320-cycle latency (II 10), with
// the SHA-1 latency sweepable for the Figure 7 sensitivity study.
package engine

import (
	"secmem/internal/obsv"
	"secmem/internal/sim"
)

// AES is the AES engine timing model.
type AES struct {
	pipe *sim.Pipeline

	// Observability handles; nil-safe.
	mIssue *obsv.Counter
	hWait  *obsv.Histogram
	rec    *obsv.Recorder
}

// AESDefaults are the paper's AES engine parameters.
const (
	AESLatency = 80
	AESStages  = 16
)

// NewAES builds an AES engine bank with `count` engines of the given total
// latency; the initiation interval is latency/stages per the paper's
// 16-stage pipeline.
func NewAES(count int, latency sim.Time) *AES {
	ii := latency / AESStages
	if ii == 0 {
		ii = 1
	}
	return &AES{pipe: sim.NewPipeline(count, ii, latency)}
}

// Instrument registers the engine's metrics in reg and attaches the trace
// recorder. Either argument may be nil.
func (a *AES) Instrument(reg *obsv.Registry, rec *obsv.Recorder) {
	a.mIssue = reg.Counter("aes.issue")
	a.hWait = reg.Histogram("aes.pipe.wait")
	a.rec = rec
}

func (a *AES) issue(ready sim.Time) sim.Time {
	done, start := a.pipe.IssueStart(ready)
	a.mIssue.Inc()
	a.hWait.Observe(uint64(start - ready))
	a.rec.Span("aes", "pad", uint64(start), uint64(done))
	return done
}

// GeneratePad schedules one 16-byte pad generation whose seed is known at
// `ready`, returning when the pad is available.
func (a *AES) GeneratePad(ready sim.Time) sim.Time { return a.issue(ready) }

// GenerateBlockPads schedules the four chunk pads of a 64-byte block (the
// seeds differ only in the chunk field, so all four issue as soon as the
// counter is known) and returns when the full 64-byte pad is ready.
func (a *AES) GenerateBlockPads(ready sim.Time) sim.Time {
	var done sim.Time
	for i := 0; i < 4; i++ {
		if d := a.issue(ready); d > done {
			done = d
		}
	}
	return done
}

// Issues reports the number of 16-byte operations issued.
func (a *AES) Issues() uint64 { return a.pipe.Issues() }

// Latency reports the engine's configured total latency.
func (a *AES) Latency() sim.Time { return a.pipe.Latency }

// Engines reports the engine count.
func (a *AES) Engines() int { return a.pipe.Engines() }

// Utilization is the engine bank's pipeline occupancy over [0, end).
func (a *AES) Utilization(end sim.Time) float64 { return a.pipe.Utilization(end) }

// SHA1 is the SHA-1 engine timing model used by baseline authentication.
type SHA1 struct {
	pipe *sim.Pipeline

	// Observability handles; nil-safe.
	mIssue *obsv.Counter
	hWait  *obsv.Histogram
	rec    *obsv.Recorder
}

// SHA1Defaults are the paper's SHA-1 engine parameters.
const (
	SHA1Latency = 320
	SHA1Stages  = 32
)

// NewSHA1 builds a SHA-1 engine with the given total latency (80-640 in the
// paper's sweep); II scales with latency to keep the 32-stage pipeline.
func NewSHA1(count int, latency sim.Time) *SHA1 {
	ii := latency / SHA1Stages
	if ii == 0 {
		ii = 1
	}
	return &SHA1{pipe: sim.NewPipeline(count, ii, latency)}
}

// Instrument registers the engine's metrics in reg and attaches the trace
// recorder. Either argument may be nil.
func (s *SHA1) Instrument(reg *obsv.Registry, rec *obsv.Recorder) {
	s.mIssue = reg.Counter("sha.issue")
	s.hWait = reg.Histogram("sha.pipe.wait")
	s.rec = rec
}

// Hash schedules one block authentication whose input is complete at
// `ready` and returns when the digest is available. Unlike GCM, SHA-1
// cannot start until the whole block has arrived, which is exactly the
// latency disadvantage the paper exploits.
func (s *SHA1) Hash(ready sim.Time) sim.Time {
	done, start := s.pipe.IssueStart(ready)
	s.mIssue.Inc()
	s.hWait.Observe(uint64(start - ready))
	s.rec.Span("sha", "hash", uint64(start), uint64(done))
	return done
}

// Issues reports the number of hashes issued.
func (s *SHA1) Issues() uint64 { return s.pipe.Issues() }

// Latency reports the configured digest latency.
func (s *SHA1) Latency() sim.Time { return s.pipe.Latency }

// Utilization is the engine's pipeline occupancy over [0, end).
func (s *SHA1) Utilization(end sim.Time) float64 { return s.pipe.Utilization(end) }

// GHASHCyclesPerChunk is the per-16-byte-chunk cost of the GHASH multiplier:
// one Galois-field multiply-and-XOR per cycle per the GCM proposal the paper
// cites.
const GHASHCyclesPerChunk = 1

// GCMAuthTail returns the cycles needed to finish GCM authentication once
// the ciphertext has fully arrived and the authentication pad is ready:
// chunks field multiplications plus the final pad XOR and compare.
func GCMAuthTail(chunks int) sim.Time {
	return sim.Time(chunks)*GHASHCyclesPerChunk + 1
}
