package engine

import "testing"

func TestAESLatencyAndPipelining(t *testing.T) {
	a := NewAES(1, AESLatency)
	if got := a.GeneratePad(100); got != 180 {
		t.Errorf("pad done = %d, want 180", got)
	}
	// Next issue in the same cycle staggers by the 5-cycle II.
	if got := a.GeneratePad(100); got != 185 {
		t.Errorf("second pad done = %d, want 185", got)
	}
}

func TestAESBlockPads(t *testing.T) {
	a := NewAES(1, AESLatency)
	// Four chunk pads issue back to back: last one is +3*II.
	if got := a.GenerateBlockPads(0); got != 80+3*5 {
		t.Errorf("block pad done = %d, want 95", got)
	}
	if a.Issues() != 4 {
		t.Errorf("issues = %d", a.Issues())
	}
}

func TestTwoAESEngines(t *testing.T) {
	one := NewAES(1, AESLatency)
	two := NewAES(2, AESLatency)
	// Eight pads at cycle 0: one engine finishes at 80+7*5, two engines
	// split the work and finish at 80+3*5.
	var d1, d2 uint64
	for i := 0; i < 8; i++ {
		d1 = one.GeneratePad(0)
		d2 = two.GeneratePad(0)
	}
	if d1 != 115 || d2 != 95 {
		t.Errorf("one engine done %d (want 115), two engines done %d (want 95)", d1, d2)
	}
	if two.Engines() != 2 {
		t.Errorf("engines = %d", two.Engines())
	}
}

func TestSHA1LatencySweep(t *testing.T) {
	for _, lat := range []uint64{80, 160, 320, 640} {
		s := NewSHA1(1, lat)
		if got := s.Hash(50); got != 50+lat {
			t.Errorf("latency %d: hash done = %d, want %d", lat, got, 50+lat)
		}
		if s.Latency() != lat {
			t.Errorf("Latency() = %d", s.Latency())
		}
	}
}

func TestSHA1IIScalesWithLatency(t *testing.T) {
	s := NewSHA1(1, 320)
	s.Hash(0)
	if got := s.Hash(0); got != 330 {
		t.Errorf("second hash done = %d, want 330 (II=10)", got)
	}
}

func TestGCMAuthTail(t *testing.T) {
	if got := GCMAuthTail(4); got != 5 {
		t.Errorf("GCMAuthTail(4) = %d, want 5", got)
	}
}

func TestAESLatencyAccessor(t *testing.T) {
	a := NewAES(1, 64)
	if a.Latency() != 64 {
		t.Errorf("Latency = %d", a.Latency())
	}
}
