package core

import (
	"strings"
	"testing"

	"secmem/internal/config"
)

func TestOverheadSplitIsOneBytePerBlock(t *testing.T) {
	cfg := config.Default()
	cfg.Auth = config.AuthNone
	o := Overhead(cfg)
	// Split counters: one 64-byte counter block per 4 KB page = 1/64 of
	// data = "one byte of counters per block of data" (Section 4.1).
	if want := cfg.MemBytes / 64; o.CounterBytes != want {
		t.Errorf("split counter bytes = %d, want %d", o.CounterBytes, want)
	}
	if o.MacBytes != 0 || o.TreeLevels != 0 {
		t.Error("no-auth config has MAC overhead")
	}
}

func TestOverheadMonoScalesWithBits(t *testing.T) {
	mk := func(bits int) uint64 {
		cfg := config.Default()
		cfg.Enc = config.EncCounterMono
		cfg.MonoCounterBits = bits
		cfg.Auth = config.AuthNone
		return Overhead(cfg).CounterBytes
	}
	if mk(64) != 8*mk(8) {
		t.Errorf("64-bit counters (%d) not 8x the 8-bit footprint (%d)", mk(64), mk(8))
	}
	// Mono64: 8 bytes per 64-byte block = 1/8 of memory; the counter-
	// prediction discussion quotes exactly this.
	cfg := config.Default()
	if mk(64) != cfg.MemBytes/8 {
		t.Errorf("mono64 overhead = %d, want memBytes/8", mk(64))
	}
}

func TestOverheadMacSizesTree(t *testing.T) {
	mk := func(macBits int) OverheadReport {
		cfg := config.Default()
		cfg.MACBits = macBits
		return Overhead(cfg)
	}
	o64, o128 := mk(64), mk(128)
	if o128.MacBytes <= o64.MacBytes {
		t.Error("128-bit MACs not larger than 64-bit")
	}
	if o128.TreeLevels <= o64.TreeLevels {
		t.Error("128-bit MAC tree not deeper")
	}
	// The paper's scale check: 128-bit MACs cost roughly a third of the
	// protected space (1/4 + 1/16 + ... over data+counters).
	frac := float64(o128.MacBytes) / float64(o128.DataBytes)
	if frac < 0.3 || frac > 0.45 {
		t.Errorf("128-bit MAC overhead fraction = %.2f, want ~1/3", frac)
	}
}

func TestOverheadTableRenders(t *testing.T) {
	schemes := map[string]config.SystemConfig{
		"Split+GCM": config.Default(),
		"base":      config.Baseline(),
	}
	tbl := OverheadTable(schemes, []string{"Split+GCM", "base"})
	out := tbl.String()
	if !strings.Contains(out, "Split+GCM") || !strings.Contains(out, "tree levels") {
		t.Errorf("table malformed:\n%s", out)
	}
}

func TestFigure1Shapes(t *testing.T) {
	cfg := config.Default()
	rows := Figure1(cfg)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	direct, hit, miss := rows[0], rows[1], rows[2]
	// Direct: usable strictly after arrival (decrypt serialized).
	if direct.UsableAt <= direct.DataAt {
		t.Error("direct decryption not serialized after arrival")
	}
	// Counter hit: pad beats the data, usable ~ arrival.
	if hit.PadAt >= hit.DataAt {
		t.Errorf("hit-case pad (%d) not overlapped with fetch (%d)", hit.PadAt, hit.DataAt)
	}
	if hit.UsableAt > direct.UsableAt {
		t.Error("counter hit slower than direct")
	}
	// Counter miss: the second fetch dominates; worse than direct.
	if miss.UsableAt <= direct.UsableAt {
		t.Errorf("counter miss (%d) not worse than direct (%d)", miss.UsableAt, direct.UsableAt)
	}
	if got := Figure1Table(cfg).String(); !strings.Contains(got, "Fig 1b") {
		t.Error("figure 1 table missing cases")
	}
}
