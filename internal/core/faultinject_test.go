package core

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"secmem/internal/config"
	"secmem/internal/dram"
)

// TestRandomTamperAlwaysDetected is the failure-injection sweep: write a
// random working set, drain, corrupt a random *written* data or counter
// block in DRAM, and read everything back. Authentication must fire.
func TestRandomTamperAlwaysDetected(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := mustSystemQ(smallCfg())
		// Write 32 random blocks scattered over 256 KB.
		var addrs []uint64
		for i := 0; i < 32; i++ {
			a := uint64(rng.Intn(4096)) * 64
			data := make([]byte, 64)
			rng.Read(data)
			if _, err := m.WriteBytes(uint64(i)*500, a, data); err != nil {
				return false
			}
			addrs = append(addrs, a)
		}
		m.Drain(100_000)

		// Corrupt one written block: either a data block or the counter
		// block of one of them.
		atk := dram.NewAttacker(m.Controller().DRAM())
		victim := addrs[rng.Intn(len(addrs))]
		if rng.Intn(2) == 0 {
			victim = m.Controller().Counters().CounterBlockAddr(victim)
			// Drain leaves counter blocks resident (clean) in the counter
			// cache; churn it so the corrupted block is actually refetched
			// from memory — otherwise the tamper is unexercised, not
			// undetected.
			for i := uint64(0); i < 64; i++ {
				m.ReadBytes(150_000+i*300, 0x40000+i*4096, make([]byte, 8))
			}
		}
		atk.FlipBit(victim, rng.Intn(512))

		// Read everything back; detection must fire somewhere.
		buf := make([]byte, 64)
		for i, a := range addrs {
			m.ReadBytes(uint64(200_000+i*500), a, buf)
		}
		return m.Controller().Stats.TamperDetected > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// mustSystemQ is mustSystem without the *testing.T, for quick.Check bodies.
func mustSystemQ(cfg config.SystemConfig) *MemSystem {
	m, err := NewMemSystem(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// TestHonestWorkloadNeverTrips is the complement: random workloads with
// evictions, page re-encryptions, and counter traffic must never produce a
// false positive.
func TestHonestWorkloadNeverTrips(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := smallCfg()
		cfg.MinorBits = 3 // page re-encryptions in the mix
		m := mustSystemQ(cfg)
		now := uint64(0)
		shadow := map[uint64][]byte{}
		for i := 0; i < 300; i++ {
			a := uint64(rng.Intn(512)) * 64
			if rng.Intn(2) == 0 {
				data := make([]byte, 64)
				rng.Read(data)
				if _, err := m.WriteBytes(now, a, data); err != nil {
					return false
				}
				shadow[a] = data
			} else if want, ok := shadow[a]; ok {
				got := make([]byte, 64)
				if _, err := m.ReadBytes(now, a, got); err != nil {
					return false
				}
				if !bytes.Equal(got, want) {
					return false
				}
			}
			now += 400
			if i%50 == 49 {
				m.Drain(now)
				now += 10_000
			}
		}
		return m.Controller().Stats.TamperDetected == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// TestShadowConsistencyAcrossSchemes runs the same random workload through
// every protection scheme and checks all reads against a shadow memory.
func TestShadowConsistencyAcrossSchemes(t *testing.T) {
	schemes := []struct {
		enc  config.EncryptionMode
		auth config.AuthMode
	}{
		{config.EncCounterSplit, config.AuthGCM},
		{config.EncCounterMono, config.AuthSHA1},
		{config.EncDirect, config.AuthSHA1},
		{config.EncCounterGlobal, config.AuthGCM},
	}
	for _, s := range schemes {
		cfg := smallCfg()
		cfg.Enc = s.enc
		cfg.Auth = s.auth
		m := mustSystemQ(cfg)
		rng := rand.New(rand.NewSource(99))
		shadow := map[uint64][]byte{}
		now := uint64(0)
		for i := 0; i < 400; i++ {
			a := uint64(rng.Intn(1024)) * 64
			if rng.Intn(3) != 0 {
				data := make([]byte, 64)
				rng.Read(data)
				m.WriteBytes(now, a, data)
				shadow[a] = data
			} else if want, ok := shadow[a]; ok {
				got := make([]byte, 64)
				m.ReadBytes(now, a, got)
				if !bytes.Equal(got, want) {
					t.Fatalf("%s: shadow mismatch at %#x op %d", cfg.SchemeName(), a, i)
				}
			}
			now += 300
			if i%100 == 99 {
				m.Drain(now)
			}
		}
		if n := m.Controller().Stats.TamperDetected; n != 0 {
			t.Errorf("%s: %d false tamper positives", cfg.SchemeName(), n)
		}
	}
}
