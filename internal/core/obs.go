package core

import (
	"secmem/internal/merkle"
	"secmem/internal/obsv"
	"secmem/internal/sim"
)

// Instrument registers the controller's metrics in reg and attaches the
// trace recorder, wiring both through every owned substrate (bus, DRAM,
// engines, counter store, RSR file, MAC cache). Either argument may be nil;
// an uninstrumented controller pays one predicted branch per hook.
//
// The Registry and Recorder are not safe for concurrent use, so use one
// pair per simulated machine.
func (c *Controller) Instrument(reg *obsv.Registry, rec *obsv.Recorder) {
	c.reg, c.rec = reg, rec
	c.bus.Instrument(reg, rec)
	c.mem.Instrument(reg, rec)
	c.aes.Instrument(reg, rec)
	if c.sha != nil {
		c.sha.Instrument(reg, rec)
	}
	if c.ctrs != nil {
		c.ctrs.Instrument(reg)
	}
	if c.rsrs != nil {
		c.rsrs.Instrument(reg, rec)
	}
	if c.macCache != nil {
		c.macCache.Instrument(reg, "maccache")
	}
	c.mFill = reg.Counter("ctl.fill")
	c.mWB = reg.Counter("ctl.writeback")
	c.mTamper = reg.Counter("ctl.tamper")
	c.hTxn = reg.Histogram("ctl.read.cycles")
	if c.lay.Geo != nil {
		n := c.lay.Geo.NumLevels()
		c.merkleFetch = make([]*obsv.Counter, n)
		c.merkleVerify = make([]*obsv.Counter, n)
		c.merkleTrack = make([]string, n)
		for i := 0; i < n; i++ {
			name := merkle.LevelName(i)
			c.merkleFetch[i] = reg.Counter("merkle." + name + ".fetch")
			c.merkleVerify[i] = reg.Counter("merkle." + name + ".verify")
			c.merkleTrack[i] = "merkle." + name
		}
	}
}

// noteMerkleNode records one Merkle node fetch+verify against its level's
// counters and emits the two spans that make level overlap visible in the
// trace (fetch issueAt..arrive, verify arrive..done).
func (c *Controller) noteMerkleNode(mac uint64, issueAt, arrive, done sim.Time) {
	if c.merkleFetch == nil {
		return
	}
	lvl := c.lay.Geo.LevelOf(mac)
	if lvl < 0 || lvl >= len(c.merkleFetch) {
		return
	}
	c.merkleFetch[lvl].Inc()
	c.merkleVerify[lvl].Inc()
	if c.rec != nil {
		track := c.merkleTrack[lvl]
		c.rec.Span(track, "fetch", uint64(issueAt), uint64(arrive))
		c.rec.Span(track, "verify", uint64(arrive), uint64(done))
	}
}

// RegisterProbes wires the controller's dynamic state into a time-series
// sampler: the trajectories behind the paper's figures (counter-cache hit
// rate over time, RSR occupancy, bus/DRAM utilization, Merkle verify
// traffic, re-encryption and tamper progress) rather than their end-of-run
// averages. Probes only read state owned by the simulation goroutine and
// never allocate. No-op on a nil sampler.
func (c *Controller) RegisterProbes(s *obsv.Sampler) {
	if s == nil {
		return
	}
	s.Series("bus.util", func(cycle uint64) float64 {
		return c.bus.Utilization(sim.Time(cycle))
	})
	s.Series("dram.util", func(cycle uint64) float64 {
		return c.mem.Utilization(sim.Time(cycle))
	})
	s.Series("ctl.fills", func(uint64) float64 { return float64(c.Stats.Fills) })
	s.Series("merkle.fetches", func(uint64) float64 { return float64(c.Stats.MacFetches) })
	s.Series("ctl.tampers", func(uint64) float64 { return float64(c.Stats.TamperDetected) })
	if c.ctrs != nil {
		s.Series("ctrcache.hitrate", func(uint64) float64 { return c.ctrs.Stats.HitRate() })
	}
	if c.rsrs != nil {
		s.Series("rsr.occupancy", func(cycle uint64) float64 {
			return float64(c.rsrs.BusyCount(sim.Time(cycle)))
		})
		s.Series("rsr.pagereencs", func(uint64) float64 { return float64(c.rsrs.Stats.PageReencs) })
	}
}

// ExportObs writes end-of-run derived metrics (utilizations, hit rates)
// into the registry as gauges. end is the run's final cycle. No-op when the
// controller was never instrumented.
func (c *Controller) ExportObs(end sim.Time) {
	if c.reg == nil {
		return
	}
	c.reg.SetGauge("bus.util", c.bus.Utilization(end))
	c.reg.SetGauge("dram.util", c.mem.Utilization(end))
	c.reg.SetGauge("aes.util", c.aes.Utilization(end))
	if c.sha != nil {
		c.reg.SetGauge("sha.util", c.sha.Utilization(end))
	}
	if c.ctrs != nil {
		c.reg.SetGauge("ctrcache.hitrate", c.ctrs.Stats.HitRate())
	}
	if c.rsrs != nil {
		c.reg.SetGauge("rsr.max_concurrent", float64(c.rsrs.Stats.MaxConcurrent))
		c.reg.SetGauge("rsr.onchip_fraction", c.rsrs.Stats.OnChipFraction())
	}
	if c.macCache != nil {
		c.reg.SetGauge("maccache.hitrate", c.macCache.Stats.HitRate())
	}
	if c.rec != nil {
		// Surface trace truncation in the metrics snapshot so a capped
		// recorder is visible even when only the metrics file is kept.
		c.reg.SetGauge("trace.dropped", float64(c.rec.Dropped()))
	}
}

// Instrument wires the whole hierarchy (L1, L2, controller and its
// substrates) into reg/rec. Either argument may be nil.
func (m *MemSystem) Instrument(reg *obsv.Registry, rec *obsv.Recorder) {
	m.reg = reg
	m.l1.Instrument(reg, "l1")
	m.l2.Instrument(reg, "l2")
	m.ctl.Instrument(reg, rec)
}

// AttachSampler hooks a time-series sampler into the access path and
// registers the controller's probes with it. Sampling is timing-neutral:
// the hook only reads counters at sample boundaries and never touches the
// resource timelines, so an attached sampler changes no simulated number.
// No-op on a nil sampler.
func (m *MemSystem) AttachSampler(s *obsv.Sampler) {
	if s == nil {
		return
	}
	m.smp = s
	m.ctl.RegisterProbes(s)
}

// ExportObs writes end-of-run derived metrics for the hierarchy and the
// controller below it. No-op when uninstrumented.
func (m *MemSystem) ExportObs(end sim.Time) {
	if m.reg == nil {
		return
	}
	m.reg.SetGauge("l1.hitrate", m.l1.Stats.HitRate())
	m.reg.SetGauge("l2.hitrate", m.l2.Stats.HitRate())
	m.ctl.ExportObs(end)
}
