package core

import (
	"fmt"

	"secmem/internal/bus"
	"secmem/internal/cache"
	"secmem/internal/config"
	"secmem/internal/counterstore"
	"secmem/internal/dram"
	"secmem/internal/engine"
	"secmem/internal/obsv"
	"secmem/internal/reenc"
	"secmem/internal/sim"
)

// Stats accumulates controller-level activity for one run.
type Stats struct {
	Fills      uint64 // demand data-block fetches
	WriteBacks uint64 // data-block write-backs

	CtrFetches    uint64 // counter-block fetches (counter cache misses)
	CtrWriteBacks uint64
	MacFetches    uint64 // Merkle node fetches
	MacWriteBacks uint64
	DerivFetches  uint64
	DerivWBs      uint64

	ReencFetches uint64 // RSR background fetches
	ReencWrites  uint64

	FullReencEvents uint64   // whole-memory re-encryptions (mono/global wrap)
	FreezeCycles    sim.Time // analytic freeze cost of those events

	// PadReads counts counter-mode decryptions; TimelyPads counts those
	// whose pad was ready when the data arrived (Figure 6's metric).
	PadReads   uint64
	TimelyPads uint64

	TamperDetected uint64 // functional-mode authentication failures
}

// Controller is the secure memory controller below the L2 cache.
type Controller struct {
	cfg config.SystemConfig
	lay Layout

	bus  *bus.Bus
	mem  *dram.DRAM
	aes  *engine.AES
	sha  *engine.SHA1
	ctrs *counterstore.Store
	rsrs *reenc.File
	l2   *cache.Cache
	// macCache, when non-nil, holds Merkle nodes instead of the L2
	// (Config.MacCacheBytes).
	macCache *cache.Cache

	fn *functional

	// victimHook routes L2 victims produced inside the controller (Merkle
	// node fills) through the memory system, which owns L1 back-
	// invalidation. Set by MemSystem; nil in controller-only tests.
	victimHook func(now sim.Time, ev cache.Eviction)

	// wbQueue serializes eviction cascades so nested fills cannot recurse
	// unboundedly; pendingWB marks queued blocks so a re-fetch can forward
	// from the write-back buffer instead of reading stale DRAM.
	wbQueue   []wbItem
	pendingWB map[uint64]bool
	draining  bool

	// Observability handles (see obs.go); all nil when uninstrumented, so
	// the hot path pays one predicted branch per hook.
	reg          *obsv.Registry
	rec          *obsv.Recorder
	mFill        *obsv.Counter
	mWB          *obsv.Counter
	mTamper      *obsv.Counter
	hTxn         *obsv.Histogram
	merkleFetch  []*obsv.Counter // per tree level
	merkleVerify []*obsv.Counter
	merkleTrack  []string
	txnSeq       uint64

	Stats Stats
}

type wbItem struct {
	now  sim.Time
	addr uint64
}

// NewController builds the controller and its owned substrates. The L2
// cache is attached afterwards by the memory system, which owns it.
func NewController(cfg config.SystemConfig) (*Controller, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	lay := NewLayout(cfg)
	c := &Controller{
		cfg:       cfg,
		lay:       lay,
		pendingWB: make(map[uint64]bool),
		bus: bus.New(bus.Config{
			WidthBytes:           cfg.BusWidthBytes,
			CPUCyclesPerBusCycle: cfg.BusCPUCyclesPerBusCycle,
		}),
		aes: engine.NewAES(cfg.AESEngines, cfg.AESLatency),
	}
	c.mem = dram.New(dram.Config{
		SizeBytes:       lay.TotalBytes,
		LatencyCycles:   cfg.MemLatencyCycles,
		ServiceInterval: 16,
		Functional:      cfg.Functional,
	})
	if cfg.Auth == config.AuthSHA1 {
		c.sha = engine.NewSHA1(1, cfg.SHA1Latency)
	}
	if c.needCounters() {
		c.ctrs = counterstore.New(counterstore.FromSystem(cfg, lay.Regions()))
	}
	if c.ctrs != nil && c.ctrs.Config().Org == counterstore.OrgSplit {
		// Split-organized counters (counter-mode split encryption, or GCM
		// authentication's counters) need the RSR machinery for minor-
		// counter overflow handling.
		c.rsrs = reenc.NewFile(cfg.RSRs, cfg.PageBlocks)
	}
	if mc, ok := cfg.MacCacheConfig(); ok && cfg.Auth != config.AuthNone {
		c.macCache = cache.New(mc)
	}
	if cfg.Functional {
		c.fn = newFunctional(c)
	}
	return c, nil
}

// nodeCache returns the cache holding Merkle tree nodes: the dedicated MAC
// cache when configured, otherwise the shared L2 (the default design).
func (c *Controller) nodeCache() *cache.Cache {
	if c.macCache != nil {
		return c.macCache
	}
	return c.l2
}

// onNodeVictim handles an eviction from the MAC-node cache. Dedicated-cache
// victims never involve L1 (metadata is not cached there); shared-L2
// victims go through the usual routing.
func (c *Controller) onNodeVictim(now sim.Time, ev cache.Eviction) {
	if c.macCache == nil {
		c.onL2Victim(now, ev)
		return
	}
	if ev.Dirty {
		c.enqueueWB(now, ev.Addr)
		return
	}
	if c.fn != nil {
		c.fn.onCleanEvict(ev.Addr)
	}
}

// MacCache exposes the dedicated MAC cache for statistics (nil when tree
// nodes share the L2).
func (c *Controller) MacCache() *cache.Cache { return c.macCache }

// needCounters reports whether any per-block counters are maintained:
// counter-mode encryption or GCM authentication (which consumes counters
// even without encryption, per Section 6.2).
func (c *Controller) needCounters() bool {
	return c.cfg.Enc.UsesCounters() || c.cfg.Auth == config.AuthGCM
}

// AttachL2 wires the L2 cache the controller shares with the memory system
// (Merkle nodes are cached in L2, and the RSR probes it for page blocks).
func (c *Controller) AttachL2(l2 *cache.Cache) { c.l2 = l2 }

// Layout exposes the address map.
func (c *Controller) Layout() Layout { return c.lay }

// Counters exposes the counter store for statistics (nil if unused).
func (c *Controller) Counters() *counterstore.Store { return c.ctrs }

// RSRs exposes the re-encryption register file (nil unless split mode).
func (c *Controller) RSRs() *reenc.File { return c.rsrs }

// Bus exposes the memory bus for statistics.
func (c *Controller) Bus() *bus.Bus { return c.bus }

// AES exposes the AES engine for statistics.
func (c *Controller) AES() *engine.AES { return c.aes }

// DRAM exposes the memory device (functional examples attach attackers).
func (c *Controller) DRAM() *dram.DRAM { return c.mem }

// Tampers returns the functional-mode tamper log.
func (c *Controller) Tampers() []Tamper {
	if c.fn == nil {
		return nil
	}
	return c.fn.tampers
}

// fetch reserves bus and DRAM service for one block read arriving at now
// and returns the data-arrival cycle.
func (c *Controller) fetch(now sim.Time) sim.Time {
	start := c.bus.Transfer(now, BlockSize)
	return c.mem.AccessRead(start)
}

// fetchWide models a transfer of block plus piggybacked metadata (the
// counter-prediction baseline ships a 64-bit counter with each block).
func (c *Controller) fetchWide(now sim.Time, extraBytes int) sim.Time {
	start := c.bus.Transfer(now, BlockSize+extraBytes)
	return c.mem.AccessRead(start)
}

// store reserves bus and DRAM service for one posted block write.
func (c *Controller) store(now sim.Time) sim.Time {
	start := c.bus.Transfer(now, BlockSize)
	return c.mem.AccessWrite(start)
}

// sncLatency is the counter-cache hit latency.
func (c *Controller) sncLatency() sim.Time { return c.cfg.CounterCache.LatencyCycles }

// counterReady ensures the counter for a protected block is on-chip,
// fetching (and, per Section 4.3, authenticating) its counter block on a
// miss. It returns when the counter value is usable for pad generation and
// when its authentication completes (zero when none was needed).
func (c *Controller) counterReady(now sim.Time, addr uint64) (ready, authDone sim.Time) {
	res, readyAt, ctrBlk := c.ctrs.CacheLookup(addr, now)
	switch res {
	case counterstore.Hit:
		return now + c.sncLatency(), 0
	case counterstore.HalfMiss:
		return readyAt, 0
	}
	// Miss: fetch the counter block, or forward it from the write-back
	// buffer if its eviction is still queued (the on-chip values were never
	// discarded, so DRAM would be stale).
	if c.forwardWB(ctrBlk) {
		ready := now + c.sncLatency()
		if ev, evicted := c.ctrs.CacheFill(ctrBlk, ready); evicted && ev.Dirty {
			c.enqueueWB(ready, ev.Addr)
		}
		c.ctrs.CacheDirty(ctrBlk)
		return ready, 0
	}
	switch c.lay.RegionOf(ctrBlk) {
	case RegionDeriv:
		c.Stats.DerivFetches++
	default:
		c.Stats.CtrFetches++
	}
	issueAt := now + c.sncLatency()
	arrive := c.fetch(issueAt)
	c.rec.Span("ctr", "fetch", uint64(issueAt), uint64(arrive))
	if ev, evicted := c.ctrs.CacheFill(ctrBlk, arrive); evicted && ev.Dirty {
		c.enqueueWB(arrive, ev.Addr)
	}
	// Authenticate the fetched counters before they are trusted for
	// encryption (the counter-replay fix). Derivative counter blocks live
	// outside the tree and are only transitively protected.
	if c.cfg.AuthenticateCounters && c.cfg.Auth != config.AuthNone && c.inTree(ctrBlk) {
		authDone = c.authChain(now, ctrBlk, arrive)
	}
	if c.fn != nil {
		c.fn.onCounterFill(now, ctrBlk)
	}
	return arrive, authDone
}

// inTree reports whether a block participates in the Merkle tree — as a
// leaf (data or direct counters) or as a MAC node. Only derivative-counter
// blocks fall outside.
func (c *Controller) inTree(addr uint64) bool {
	return c.lay.Geo != nil && addr < c.lay.Geo.End()
}

// ReadBlock services an L2 demand miss for a data block presented at now.
// It returns when decrypted data is ready for use, when its authentication
// (own MAC, Merkle chain, and any counter authentication) completes, and
// whether the block was forwarded from the write-back buffer — in which
// case the caller must re-install it dirty, since memory was never updated.
func (c *Controller) ReadBlock(now sim.Time, addr uint64) (dataReady, authDone sim.Time, forwarded bool) {
	if c.forwardWB(addr) {
		// Write-back buffer forward: plaintext never left the chip.
		t := now + 1
		return t, t, true
	}
	c.Stats.Fills++
	c.mFill.Inc()
	var txn uint64
	if c.rec != nil {
		c.txnSeq++
		txn = c.txnSeq
		c.rec.Begin("txn", "read", txn, uint64(now))
	}
	arrive := c.fetch(now)

	var ctrReady, ctrAuth sim.Time
	if c.needCounters() {
		ctrReady, ctrAuth = c.counterReady(now, addr)
	}

	switch c.cfg.Enc {
	case config.EncNone:
		dataReady = arrive
	case config.EncDirect:
		// Decryption cannot start until the ciphertext arrives: the
		// Figure 1(a) serialization the counter modes exist to avoid.
		dataReady = c.aes.GenerateBlockPads(arrive)
	default:
		// Counter mode: pad generation overlaps the fetch (Figure 1(b));
		// a counter miss delays the pad, not the fetch (Figure 1(c)).
		padDone := c.aes.GenerateBlockPads(ctrReady)
		c.Stats.PadReads++
		if padDone <= arrive {
			c.Stats.TimelyPads++
		}
		dataReady = sim.Max(arrive, padDone) + 1
	}

	if c.cfg.Auth != config.AuthNone {
		authDone = sim.Max(c.authChain(now, addr, arrive), ctrAuth)
	} else {
		authDone = dataReady
	}
	if c.fn != nil {
		c.fn.onDataFill(now, addr)
	}
	end := sim.Max(dataReady, authDone)
	c.hTxn.Observe(uint64(end - now))
	if c.rec != nil {
		c.rec.End("txn", "read", txn, uint64(end))
	}
	c.drain()
	return dataReady, authDone, false
}

// macCheckDone returns when the MAC of a fetched block, whose content
// arrives at arrive, has been computed and compared. GCM overlaps the
// authentication-pad AES with the fetch and only adds the GHASH tail after
// arrival; SHA-1 cannot start until the block is complete.
func (c *Controller) macCheckDone(now sim.Time, addr uint64, arrive sim.Time) sim.Time {
	switch c.cfg.Auth {
	case config.AuthGCM:
		ctrReady, _ := c.counterReady(now, addr)
		padDone := c.aes.GeneratePad(ctrReady)
		return sim.Max(arrive, padDone) + engine.GCMAuthTail(BlockSize/16)
	case config.AuthSHA1:
		return c.sha.Hash(arrive)
	default:
		return arrive
	}
}

// authChain authenticates a fetched in-tree block: its own MAC plus the
// Merkle walk up to the first on-chip node (or the root register). With
// ParallelAuth all missing levels are fetched concurrently (Section 3);
// otherwise each level's fetch waits for the previous level's MAC check.
func (c *Controller) authChain(now sim.Time, addr uint64, arrive sim.Time) sim.Time {
	if !c.inTree(addr) {
		return arrive
	}
	done := c.macCheckDone(now, addr, arrive)
	c.rec.Span("mac", "check", uint64(arrive), uint64(done))
	prevDone := done
	cur := addr
	for {
		mac, _, ok := c.lay.Geo.Parent(cur)
		if !ok {
			break // parent MAC is the on-chip root register
		}
		nc := c.nodeCache()
		if nc.Contains(mac) {
			// Trusted on-chip node terminates the walk; refresh its LRU.
			nc.Lookup(mac, false)
			break
		}
		issueAt := now
		if !c.cfg.ParallelAuth {
			issueAt = prevDone
		}
		if c.forwardWB(mac) {
			// Write-back buffer forward: trusted dirty copy, no fetch.
			if ev, evicted := nc.Fill(mac, true); evicted {
				c.onNodeVictim(issueAt, ev)
			}
			break
		}
		c.Stats.MacFetches++
		nodeArrive := c.fetch(issueAt)
		if c.fn != nil {
			c.fn.onMacFill(now, mac)
		}
		if ev, evicted := nc.Fill(mac, false); evicted {
			c.onNodeVictim(nodeArrive, ev)
		}
		nodeDone := c.macCheckDone(issueAt, mac, nodeArrive)
		c.noteMerkleNode(mac, issueAt, nodeArrive, nodeDone)
		if nodeDone > done {
			done = nodeDone
		}
		prevDone = nodeDone
		cur = mac
	}
	return done
}

// SetVictimHook registers the memory system's L2-eviction handler so
// controller-internal fills (Merkle nodes) respect inclusion: the hook
// back-invalidates L1 and merges its dirty state before the victim is
// written back or dropped.
func (c *Controller) SetVictimHook(hook func(now sim.Time, ev cache.Eviction)) {
	c.victimHook = hook
}

// onL2Victim routes an L2 eviction produced inside the controller: dirty
// victims queue for write-back, clean data victims just drop their
// functional plaintext. With a victim hook installed, the memory system
// decides (it can see L1).
func (c *Controller) onL2Victim(now sim.Time, ev cache.Eviction) {
	if c.victimHook != nil {
		c.victimHook(now, ev)
		return
	}
	if ev.Dirty {
		c.enqueueWB(now, ev.Addr)
		return
	}
	if c.fn != nil {
		c.fn.onCleanEvict(ev.Addr)
	}
}

// enqueueWB queues a dirty block's write-back.
func (c *Controller) enqueueWB(now sim.Time, addr uint64) {
	c.wbQueue = append(c.wbQueue, wbItem{now: now, addr: addr})
	c.pendingWB[addr] = true
}

// forwardWB models a write-back buffer hit: the block is being re-fetched
// while its write-back is still queued, so the fill is served from the
// buffer (squashing the write-back) and the block stays dirty on-chip. The
// functional on-chip copy was never discarded, so no bytes move. Reports
// whether forwarding happened.
func (c *Controller) forwardWB(addr uint64) bool {
	if !c.pendingWB[addr] {
		return false
	}
	delete(c.pendingWB, addr)
	return true
}

// drain processes queued write-backs. Processing one write-back can fetch
// and fill further blocks, evicting more dirty victims onto the queue; the
// loop is bounded because every iteration writes one dirty block out and
// the dirty population is bounded by the cache sizes.
func (c *Controller) drain() {
	if c.draining {
		return
	}
	c.draining = true
	defer func() { c.draining = false }()
	for guard := 0; len(c.wbQueue) > 0; guard++ {
		if guard > 1<<20 {
			panic("core: write-back cascade did not terminate")
		}
		item := c.wbQueue[0]
		c.wbQueue = c.wbQueue[1:]
		if !c.pendingWB[item.addr] {
			continue // squashed by a write-back buffer forward
		}
		delete(c.pendingWB, item.addr)
		c.writeBackAny(item.now, item.addr)
	}
}

// HandleEviction is the memory system's entry point for dirty L2 evictions.
func (c *Controller) HandleEviction(now sim.Time, addr uint64) {
	c.enqueueWB(now, addr)
	c.drain()
}

// DropClean tells the functional layer a clean block left the chip.
func (c *Controller) DropClean(addr uint64) {
	if c.fn != nil {
		c.fn.onCleanEvict(addr)
	}
}

// writeBackAny dispatches a write-back by region.
func (c *Controller) writeBackAny(now sim.Time, addr uint64) {
	switch c.lay.RegionOf(addr) {
	case RegionData:
		c.writeBackData(now, addr)
	default:
		c.writeBackMeta(now, addr)
	}
}

func (c *Controller) String() string {
	return fmt.Sprintf("Controller(%s, req=%s, mac=%db)", c.cfg.SchemeName(), c.cfg.Req, c.cfg.MACBits)
}
