package core

import (
	"bytes"
	"math/rand"
	"testing"

	"secmem/internal/config"
	"secmem/internal/dram"
)

func macCacheCfg() config.SystemConfig {
	cfg := smallCfg()
	cfg.MacCacheBytes = 4 << 10
	return cfg
}

func TestMacCacheFunctionalRoundTrip(t *testing.T) {
	m := mustSystem(t, macCacheCfg())
	if m.Controller().MacCache() == nil {
		t.Fatal("dedicated MAC cache not created")
	}
	rng := rand.New(rand.NewSource(3))
	shadow := map[uint64][]byte{}
	now := uint64(0)
	for i := 0; i < 200; i++ {
		a := uint64(rng.Intn(512)) * 64
		data := make([]byte, 64)
		rng.Read(data)
		if _, err := m.WriteBytes(now, a, data); err != nil {
			t.Fatal(err)
		}
		shadow[a] = data
		now += 400
		if i%50 == 49 {
			m.Drain(now)
		}
	}
	m.Drain(now)
	buf := make([]byte, 64)
	for a, want := range shadow {
		if _, err := m.ReadBytes(now, a, buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, want) {
			t.Fatalf("block %#x corrupted under dedicated MAC cache", a)
		}
	}
	if n := m.Controller().Stats.TamperDetected; n != 0 {
		t.Fatalf("false positives: %d", n)
	}
	// Tree nodes must actually live in the dedicated cache, not the L2.
	macResident := m.Controller().MacCache().ResidentBlocks()
	if macResident == 0 {
		t.Error("dedicated MAC cache unused")
	}
	lay := m.Controller().Layout()
	m.L2().ForEach(func(addr uint64, _ bool) {
		if lay.RegionOf(addr) == RegionMac {
			t.Errorf("MAC node %#x leaked into the L2", addr)
		}
	})
}

func TestMacCacheStillDetectsTampering(t *testing.T) {
	m := mustSystem(t, macCacheCfg())
	m.WriteBytes(0, 0x2000, bytes.Repeat([]byte{0x5A}, 64))
	m.Drain(100)
	atk := dram.NewAttacker(m.Controller().DRAM())
	atk.FlipBit(0x2000, 17)
	m.ReadBytes(1000, 0x2000, make([]byte, 64))
	if m.Controller().Stats.TamperDetected == 0 {
		t.Fatal("tamper undetected with dedicated MAC cache")
	}
}

func TestMacCacheReducesL2DataPressure(t *testing.T) {
	// With tree nodes out of the L2, data should miss less: the effect the
	// paper predicts when it warns about codes sharing the data cache.
	run := func(macKB int) uint64 {
		cfg := smallCfg()
		cfg.Functional = false
		cfg.MacCacheBytes = macKB << 10
		m := mustSystem(t, cfg)
		rng := rand.New(rand.NewSource(12))
		now := uint64(0)
		var misses uint64
		for i := 0; i < 20000; i++ {
			a := uint64(rng.Intn(512)) * 64 // ~32 KB working set vs 8 KB L2
			r := m.Access(now, a, rng.Intn(4) == 0)
			if r.L2Miss {
				misses++
			}
			now += 60
		}
		return misses
	}
	shared := run(0)
	dedicated := run(8)
	if dedicated >= shared {
		t.Errorf("dedicated MAC cache did not reduce data misses: %d vs %d shared",
			dedicated, shared)
	}
}
