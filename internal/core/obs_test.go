package core

import (
	"bytes"
	"testing"

	"secmem/internal/obsv"
	"secmem/internal/sim"
)

// workload drives enough misses, write-backs, and Merkle walks through the
// system to light up every instrumented subsystem.
func workload(t *testing.T, m *MemSystem) sim.Time {
	t.Helper()
	var now sim.Time
	// Stride past the caches so fills, evictions, and counter misses happen.
	for i := 0; i < 400; i++ {
		addr := uint64(i%200) * 64 * 7
		r := m.Access(now, addr, i%3 == 0)
		if r.AuthDone > now {
			now = r.AuthDone
		}
		now += 10
	}
	return now
}

func TestInstrumentedRunPopulatesRegistry(t *testing.T) {
	cfg := smallCfg()
	cfg.Functional = false
	m := mustSystem(t, cfg)
	reg := obsv.NewRegistry()
	rec := obsv.NewRecorder(0)
	m.Instrument(reg, rec)
	end := workload(t, m)
	m.ExportObs(end)

	snap := reg.Snapshot()
	for _, name := range []string{
		"ctrcache.miss", "ctrcache.hit", "merkle.level0.fetch",
		"merkle.level0.verify", "aes.issue", "bus.xfer", "dram.read",
		"ctl.fill", "l2.miss",
	} {
		if snap.Counters[name] == 0 {
			t.Errorf("counter %q is zero after instrumented run", name)
		}
	}
	for _, name := range []string{"bus.util", "aes.util", "l2.hitrate"} {
		if _, ok := snap.Gauges[name]; !ok {
			t.Errorf("gauge %q missing after ExportObs", name)
		}
	}
	if snap.Histograms["ctl.read.cycles"].Count == 0 {
		t.Error("ctl.read.cycles histogram empty")
	}
	if rec.Len() == 0 {
		t.Error("recorder captured no events")
	}
}

func TestInstrumentedRunMatchesUninstrumented(t *testing.T) {
	// Instrumentation must not perturb timing: the same workload through an
	// instrumented and a bare system ends at the same cycle.
	cfg := smallCfg()
	cfg.Functional = false
	bare := mustSystem(t, cfg)
	inst := mustSystem(t, cfg)
	inst.Instrument(obsv.NewRegistry(), obsv.NewRecorder(0))
	endBare := workload(t, bare)
	endInst := workload(t, inst)
	if endBare != endInst {
		t.Errorf("instrumented run ends at %d, bare at %d", endInst, endBare)
	}
}

func TestObservedRunDeterministic(t *testing.T) {
	run := func() ([]byte, []byte) {
		cfg := smallCfg()
		cfg.Functional = false
		m := mustSystem(t, cfg)
		reg := obsv.NewRegistry()
		rec := obsv.NewRecorder(0)
		m.Instrument(reg, rec)
		end := workload(t, m)
		m.ExportObs(end)
		var mbuf, tbuf bytes.Buffer
		if err := reg.WriteJSON(&mbuf); err != nil {
			t.Fatalf("WriteJSON: %v", err)
		}
		if err := rec.WriteJSON(&tbuf); err != nil {
			t.Fatalf("trace WriteJSON: %v", err)
		}
		return mbuf.Bytes(), tbuf.Bytes()
	}
	m1, t1 := run()
	m2, t2 := run()
	if !bytes.Equal(m1, m2) {
		t.Error("metric JSON differs between identical runs")
	}
	if !bytes.Equal(t1, t2) {
		t.Error("trace JSON differs between identical runs")
	}
}
