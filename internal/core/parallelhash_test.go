package core

import (
	"bytes"
	"math/rand"
	"reflect"
	"sync/atomic"
	"testing"

	"secmem/internal/config"
	"secmem/internal/dram"
)

// runHashWorkload drives one deterministic functional workload — scattered
// writes, cache churn, an optional bit-flip attack, and read-back — and
// returns the read-back bytes plus the tamper log. Everything observable
// must be independent of cfg.HashWorkers.
func runHashWorkload(t *testing.T, cfg config.SystemConfig, seed int64, attack bool) ([]byte, []Tamper, Stats) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	m := mustSystem(t, cfg)
	var addrs []uint64
	for i := 0; i < 48; i++ {
		a := uint64(rng.Intn(4096)) * 64
		data := make([]byte, 64)
		rng.Read(data)
		if _, err := m.WriteBytes(uint64(i)*500, a, data); err != nil {
			t.Fatalf("write: %v", err)
		}
		addrs = append(addrs, a)
	}
	m.Drain(100_000)
	// Churn the metadata caches so read-back walks real off-chip chains.
	for i := uint64(0); i < 64; i++ {
		m.ReadBytes(150_000+i*300, 0x40000+i*4096, make([]byte, 8))
	}
	if attack {
		atk := dram.NewAttacker(m.Controller().DRAM())
		atk.FlipBit(addrs[rng.Intn(len(addrs))], rng.Intn(512))
	}
	var out bytes.Buffer
	buf := make([]byte, 64)
	for i, a := range addrs {
		m.ReadBytes(uint64(200_000+i*500), a, buf)
		out.Write(buf)
	}
	return out.Bytes(), m.Controller().Tampers(), m.Controller().Stats
}

// TestHashWorkersByteIdentical pins the gathered parallel verification path
// (HashWorkers > 1) to the serial recursive walk: same plaintext read-back,
// same tamper log entries in the same order, same statistics — with and
// without an active attacker.
func TestHashWorkersByteIdentical(t *testing.T) {
	tampersSeen := 0
	for _, attack := range []bool{false, true} {
		for seed := int64(1); seed <= 6; seed++ {
			cfg := smallCfg()
			serialBytes, serialTampers, serialStats := runHashWorkload(t, cfg, seed, attack)
			for _, workers := range []int{2, 4} {
				cfg.HashWorkers = workers
				gotBytes, gotTampers, gotStats := runHashWorkload(t, cfg, seed, attack)
				if !bytes.Equal(gotBytes, serialBytes) {
					t.Fatalf("seed %d attack=%v workers=%d: read-back differs from serial", seed, attack, workers)
				}
				if !reflect.DeepEqual(gotTampers, serialTampers) {
					t.Fatalf("seed %d attack=%v workers=%d: tamper log %v != serial %v", seed, attack, workers, gotTampers, serialTampers)
				}
				if gotStats != serialStats {
					t.Fatalf("seed %d attack=%v workers=%d: stats diverge:\n%+v\n%+v", seed, attack, workers, gotStats, serialStats)
				}
			}
			if attack {
				tampersSeen += len(serialTampers)
			}
		}
	}
	if tampersSeen == 0 {
		t.Fatal("no attack seed produced a tamper; the parallel compare/tamper path is unexercised")
	}
}

// TestHashWorkersReencryptAll exercises the parallel level batches of
// rebuildTree/reencryptAll: a monolithic 8-bit counter wraps, forcing a
// whole-memory re-encryption plus tree rebuild, and the resulting backing
// store must read back identically for every worker count.
func TestHashWorkersReencryptAll(t *testing.T) {
	base := smallCfg()
	base.Enc = config.EncCounterMono
	base.MonoCounterBits = 8
	run := func(workers int) ([]byte, uint64) {
		cfg := base
		cfg.HashWorkers = workers
		m := mustSystem(t, cfg)
		data := make([]byte, 64)
		// 300 write-backs of one block wrap its 8-bit counter at least once.
		for i := 0; i < 300; i++ {
			data[0] = byte(i)
			if _, err := m.WriteBytes(uint64(i)*2000, 4096, data); err != nil {
				t.Fatalf("write: %v", err)
			}
			m.WriteBytes(uint64(i)*2000+900, uint64(64*(i%32)), data)
			m.Drain(uint64(i)*2000 + 1500)
		}
		var out bytes.Buffer
		buf := make([]byte, 64)
		for i := 0; i < 32; i++ {
			m.ReadBytes(1_000_000+uint64(i)*500, uint64(64*i), buf)
			out.Write(buf)
		}
		m.ReadBytes(1_100_000, 4096, buf)
		out.Write(buf)
		return out.Bytes(), m.Controller().Stats.FullReencEvents
	}
	serial, events := run(0)
	if events == 0 {
		t.Fatal("workload did not trigger a full re-encryption; the parallel rebuild path is unexercised")
	}
	if tampered := func() bool { _, n := run(0); return n == 0 }(); tampered {
		t.Fatal("second serial run lost the re-encryption event")
	}
	for _, workers := range []int{2, 4} {
		got, gotEvents := run(workers)
		if gotEvents != events {
			t.Fatalf("workers=%d: %d re-encryption events, serial had %d", workers, gotEvents, events)
		}
		if !bytes.Equal(got, serial) {
			t.Fatalf("workers=%d: post-re-encryption read-back differs from serial", workers)
		}
	}
}

// TestParallelMacPartition checks the pool helper itself: every index is
// visited exactly once for worker counts below, at, and above n.
func TestParallelMacPartition(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 8, 64} {
		const n = 37
		var hits [n]int32
		parallelMac(workers, n, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, h)
			}
		}
	}
	parallelMac(4, 0, func(i int) { t.Fatalf("fn called for n=0") })
}
