package core

import (
	"secmem/internal/config"
	"secmem/internal/counterstore"
	"secmem/internal/engine"
	"secmem/internal/sim"
)

// writeBackData writes a dirty data block back to memory: increment its
// counter (fetching and authenticating the counter block first if it was
// displaced — the Section 4.3 requirement), re-encrypt under the new
// counter, emit the block, and update its leaf MAC in the Merkle tree.
func (c *Controller) writeBackData(now sim.Time, addr uint64) {
	c.Stats.WriteBacks++
	c.mWB.Inc()
	if c.needCounters() {
		ctrReady, _ := c.counterReady(now, addr)
		_, ov := c.ctrs.Increment(addr)
		c.ctrs.CacheDirty(c.ctrs.CounterBlockAddr(addr))
		switch ov.Kind {
		case counterstore.PageOverflow:
			// The triggering block is handled by this very write-back, so
			// the page re-encryption skips it.
			c.pageReencrypt(now, ov.PageAddr, addr)
		case counterstore.FullOverflow:
			c.fullReencrypt(now)
		}
		if c.cfg.Enc != config.EncNone && c.cfg.Enc != config.EncDirect {
			// Encryption-pad AES work is charged (engine occupancy), but a
			// posted write sits in the write buffer while its pad computes,
			// so the bus reservation is not pushed into the future where it
			// would block younger demand fetches.
			c.aes.GenerateBlockPads(ctrReady)
		}
	}
	if c.cfg.Enc == config.EncDirect {
		c.aes.GenerateBlockPads(now)
	}
	c.store(now)
	if c.fn != nil {
		c.fn.onDataWriteBack(now, addr)
	}
	if c.cfg.Auth != config.AuthNone {
		c.updateParentMac(now, addr)
	}
}

// writeBackMeta writes a dirty metadata block (counter block, Merkle node,
// or derivative-counter block) back to memory. In-tree metadata advances
// its derivative counter and refreshes its own MAC in the parent node.
func (c *Controller) writeBackMeta(now sim.Time, addr uint64) {
	switch c.lay.RegionOf(addr) {
	case RegionCounter:
		c.Stats.CtrWriteBacks++
	case RegionMac:
		c.Stats.MacWriteBacks++
	case RegionDeriv:
		c.Stats.DerivWBs++
	}
	if c.cfg.Auth != config.AuthNone && c.inTree(addr) && c.ctrs != nil {
		// The block's MAC must change when its contents change; the
		// derivative counter provides the freshness. Its own counter block
		// (in the derivative region) must be on-chip. (SHA-1 without any
		// counter-mode encryption keeps no counters at all; its MACs hash
		// content and address only, as the prior-work schemes did.)
		c.counterReady(now, addr)
		c.ctrs.Increment(addr)
		c.ctrs.CacheDirty(c.ctrs.CounterBlockAddr(addr))
	}
	c.store(now)
	if c.fn != nil {
		c.fn.onMetaWriteBack(now, addr)
	}
	if c.cfg.Auth != config.AuthNone && c.inTree(addr) {
		c.updateParentMac(now, addr)
	}
}

// updateParentMac computes the new MAC for a just-written block and folds
// it into the parent tree node: on-chip parents are simply dirtied (the
// paper's deferred propagation), missing parents are fetched, verified, and
// installed dirty in L2.
func (c *Controller) updateParentMac(now sim.Time, addr uint64) {
	// MAC computation cost for the written block.
	var macDone sim.Time
	switch c.cfg.Auth {
	case config.AuthGCM:
		ctrReady, _ := c.counterReady(now, addr)
		padDone := c.aes.GeneratePad(ctrReady)
		macDone = padDone + engine.GCMAuthTail(BlockSize/16)
	case config.AuthSHA1:
		macDone = c.sha.Hash(now)
	}

	mac, _, ok := c.lay.Geo.Parent(addr)
	if !ok {
		// The block is the top tree node: its MAC lives in the on-chip
		// root register — no memory traffic.
		if c.fn != nil {
			c.fn.updateRoot(addr)
		}
		return
	}
	nc := c.nodeCache()
	if !nc.Contains(mac) {
		if c.forwardWB(mac) {
			// The parent's own write-back is still queued: forward it from
			// the write-back buffer (its on-chip copy was never discarded)
			// instead of reading stale memory.
			if ev, evicted := nc.Fill(mac, true); evicted {
				c.onNodeVictim(macDone, ev)
			}
		} else {
			// Fetch, verify, and install the parent before updating it.
			c.Stats.MacFetches++
			arrive := c.fetch(macDone)
			if c.fn != nil {
				c.fn.onMacFill(now, mac)
			}
			if ev, evicted := nc.Fill(mac, false); evicted {
				c.onNodeVictim(arrive, ev)
			}
			c.authChain(now, mac, arrive)
		}
	}
	nc.SetDirty(mac)
	if c.fn != nil {
		c.fn.updateParentSlot(addr)
	}
}

// pageReencrypt performs the split-counter page re-encryption of Section
// 4.2 under an RSR: blocks already in L2 are lazily dirtied; the rest are
// fetched, decrypted under the old major, re-encrypted under the new one,
// written straight back (uncached), and their MACs refreshed. skipAddr is
// the block whose write-back triggered the overflow; it is re-encrypted by
// that write-back itself.
func (c *Controller) pageReencrypt(now sim.Time, page, skipAddr uint64) {
	oldMajor, _ := c.ctrs.BumpMajor(page)
	r, start := c.rsrs.Allocate(now, page, oldMajor)
	completion := start
	for i := 0; i < c.cfg.PageBlocks; i++ {
		blk := page + uint64(i)*BlockSize
		if blk == skipAddr {
			r.MarkDone(i)
			c.rsrs.NoteOnChip()
			continue
		}
		if c.l2.Contains(blk) {
			// Lazy path: mark dirty; the natural write-back re-encrypts it
			// under the new major. No memory traffic at all.
			c.l2.SetDirty(blk)
			c.ctrs.ResetMinor(blk)
			r.MarkDone(i)
			c.rsrs.NoteOnChip()
			continue
		}
		// Fetch-decrypt-re-encrypt path.
		c.rsrs.NoteFetched()
		c.Stats.ReencFetches++
		arrive := c.fetch(start)
		// Decrypt pad under the old major counter (seed known at start).
		decPad := c.aes.GenerateBlockPads(start)
		dec := sim.Max(arrive, decPad) + 1
		if c.fn != nil {
			c.fn.onReencBlock(now, blk, oldMajor)
		}
		c.ctrs.ResetMinor(blk)
		// Encrypt pad under the new major; write straight back.
		encPad := c.aes.GenerateBlockPads(dec)
		wb := c.store(encPad + 1)
		c.Stats.ReencWrites++
		if c.cfg.Auth != config.AuthNone {
			c.updateParentMac(dec, blk)
		}
		r.MarkDone(i)
		end := wb + c.bus.Occupancy(BlockSize)
		if end > completion {
			completion = end
		}
	}
	c.rsrs.Complete(r, sim.Max(completion, start+1))
}

// fullReencrypt accounts a whole-memory re-encryption (monolithic or global
// counter wrap: the AES key must change). The freeze is not simulated
// inline — the paper's Figure 4 methodology counts Mono8b events at zero
// cost — but its analytic cost is accumulated so harnesses can charge it
// (ChargeMonoReenc), and functional mode really re-encrypts the backing
// store under the new key epoch.
func (c *Controller) fullReencrypt(now sim.Time) {
	c.Stats.FullReencEvents++
	blocks := c.lay.DataBytes / BlockSize
	// Each block must be read and rewritten; the bus bounds the rate.
	c.Stats.FreezeCycles += sim.Time(blocks) * 2 * c.bus.Occupancy(BlockSize)
	if c.fn != nil {
		c.fn.reencryptAll(now)
	}
}
