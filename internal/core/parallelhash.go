package core

import "sync"

// parallelMac runs fn(i) for every i in [0, n) on up to workers goroutines
// (the harness.parallelFor idiom: a per-call bounded pool whose workers
// terminate when the index channel closes, so every goroutine provably
// exits before the call returns). Each index is claimed by exactly one
// worker, so fn bodies may write to the i-th slot of shared slices without
// synchronization — the partitioned-index discipline the sharedstate
// analyzer blesses.
//
// The MAC primitives this feeds (PadGen.MAC, sha1sum.MAC) touch only
// read-only receiver state and per-call stack buffers, which is what makes
// hashing independent Merkle levels concurrently safe.
func parallelMac(workers, n int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}
