package core

import (
	"bytes"
	"testing"

	"secmem/internal/dram"
)

// runCounterReplay stages the Section 4.3 counter replay attack:
//
//  1. The victim writes block B and drains, so B's counter block and
//     ciphertext are in memory. The attacker records the counter block.
//  2. The victim writes B again (counter advances) and drains.
//  3. The attacker rolls the counter block back to its recorded value.
//  4. The victim's next write-back of B fetches the stale counter,
//     increments it to a value it already used, and encrypts with a reused
//     pad.
//
// It returns the two ciphertexts the attacker can now XOR, the matching
// plaintexts, and the tamper count.
func runCounterReplay(t *testing.T, authCounters bool) (ct1, ct2, pt1, pt2 [64]byte, tampers uint64) {
	t.Helper()
	cfg := smallCfg()
	cfg.AuthenticateCounters = authCounters
	m := mustSystem(t, cfg)
	atk := dram.NewAttacker(m.Controller().DRAM())
	const addr = 0x6000

	pt1 = [64]byte{}
	copy(pt1[:], bytes.Repeat([]byte{0x11}, 64))
	pt2 = [64]byte{}
	copy(pt2[:], bytes.Repeat([]byte{0x77}, 64))

	// Write #1: counter becomes 1; pad(1) used. Snapshot ciphertext.
	if _, err := m.WriteBytes(0, addr, pt1[:]); err != nil {
		t.Fatal(err)
	}
	m.Drain(100)
	ct1 = atk.Snoop(addr)
	ctrBlk := m.Controller().Counters().CounterBlockAddr(addr)
	atk.Record(ctrBlk) // counter block holding value 1

	// Write #2: counter becomes 2.
	if _, err := m.WriteBytes(200, addr, bytes.Repeat([]byte{0x55}, 64)); err != nil {
		t.Fatal(err)
	}
	m.Drain(300)

	// The attack: roll the counter block back (now says 1 again).
	atk.Replay(ctrBlk)

	// Write #3: the controller fetches the stale counter (the counter
	// cache was drained), increments 1 -> 2... but 2 was already used.
	if _, err := m.WriteBytes(400, addr, pt2[:]); err != nil {
		t.Fatal(err)
	}
	m.Drain(500)
	ct2 = atk.Snoop(addr)
	return ct1, ct2, pt1, pt2, m.Controller().Stats.TamperDetected
}

func xor64(a, b [64]byte) [64]byte {
	var out [64]byte
	for i := range out {
		out[i] = a[i] ^ b[i]
	}
	return out
}

func TestCounterReplayCausesPadReuseWithoutCounterAuth(t *testing.T) {
	// Without counter authentication the attack is silent and the pad is
	// reused: ct_a XOR ct_b == pt_a XOR pt_b, so the attacker learns the
	// XOR of two plaintexts — exactly the break the paper warns about.
	//
	// Write #2 also used counter 2, so its ciphertext (recorded before the
	// replay as the "first" pad-2 ciphertext) pairs with write #3's.
	cfg := smallCfg()
	cfg.AuthenticateCounters = false
	m := mustSystem(t, cfg)
	atk := dram.NewAttacker(m.Controller().DRAM())
	const addr = 0x6000
	ptA := bytes.Repeat([]byte{0x55}, 64)
	ptB := bytes.Repeat([]byte{0x99}, 64)

	m.WriteBytes(0, addr, bytes.Repeat([]byte{0x11}, 64)) // ctr 1
	m.Drain(100)
	ctrBlk := m.Controller().Counters().CounterBlockAddr(addr)
	atk.Record(ctrBlk)

	m.WriteBytes(200, addr, ptA) // ctr 2: pad(2) first use
	m.Drain(300)
	ctA := atk.Snoop(addr)

	atk.Replay(ctrBlk) // counter rolled back to 1

	m.WriteBytes(400, addr, ptB) // ctr 1+1 = 2 again: pad(2) REUSED
	m.Drain(500)
	ctB := atk.Snoop(addr)

	gotXor := xor64(ctA, ctB)
	var wantXor [64]byte
	for i := range wantXor {
		wantXor[i] = ptA[i%len(ptA)] ^ ptB[i%len(ptB)]
	}
	if gotXor != wantXor {
		t.Fatal("expected pad reuse: ciphertext XOR must equal plaintext XOR")
	}
	// The vulnerability is silent for the write path itself.
	// (Later reads may or may not fail; the damage is already done.)
}

func TestCounterReplayDetectedWithCounterAuth(t *testing.T) {
	_, _, _, _, tampers := runCounterReplay(t, true)
	if tampers == 0 {
		t.Fatal("counter replay not detected despite counter authentication")
	}
}
