// Package core implements the paper's contribution: the secure memory
// controller that sits between the L2 cache and main memory, combining
// split-counter-mode encryption (Section 2), GCM authentication over a
// Merkle tree covering data and direct counters (Sections 3 and 4.3), RSR-
// driven background page re-encryption (Section 4.2), and the prior-work
// comparison points (direct AES, monolithic counters, SHA-1 trees, lazy/
// commit/safe requirements).
//
// The controller exists in two entangled halves. The timing half reserves
// bus, DRAM, and crypto-engine resources on shared timelines and returns
// data-ready and authentication-done cycles for every L2 miss and write-
// back. The functional half (optional, Config.Functional) moves real bytes:
// AES pads, GHASH MACs, packed counter blocks, a Merkle root register — so
// tampering with the simulated DRAM is genuinely detected. Both halves share
// the same presence/dirty decisions, so functional state always agrees with
// what the timing model believes is on-chip.
package core

import (
	"fmt"

	"secmem/internal/config"
	"secmem/internal/counterstore"
	"secmem/internal/merkle"
)

// BlockSize is the block granularity of the whole memory system.
const BlockSize = 64

// Layout is the physical address map of the protected memory:
//
//	[0, DataBytes)             program data
//	[DirectBase, +DirectBytes) direct counters (leaf-protected, Section 4.3)
//	[MacBase, MacEnd)          Merkle MAC levels (when authentication is on)
//	[DerivBase, +DerivBytes)   derivative counters for metadata blocks
//
// The Merkle leaf space is data plus direct counters, so counter replay is
// caught by the tree. Derivative counters sit outside the tree: the paper
// notes their integrity cannot affect data secrecy, and a tampered
// derivative counter still breaks its node's MAC against the parent.
type Layout struct {
	DataBytes   uint64
	DirectBase  uint64
	DirectBytes uint64
	MacBase     uint64
	DerivBase   uint64
	DerivBytes  uint64
	TotalBytes  uint64
	// Geo is the Merkle geometry, nil when authentication is disabled.
	Geo *merkle.Geometry
}

// NewLayout computes the address map for a system configuration.
func NewLayout(cfg config.SystemConfig) Layout {
	l := Layout{DataBytes: cfg.MemBytes}
	l.DirectBase = l.DataBytes
	// Reserve the densest organization's footprint (64-bit monolithic
	// counters: 1/8 of data) so the map does not depend on the counter
	// organization under study.
	l.DirectBytes = l.DataBytes / 8
	leaf := l.DirectBase + l.DirectBytes
	l.MacBase = leaf
	macEnd := leaf
	if cfg.Auth != config.AuthNone {
		l.Geo = merkle.NewGeometry(leaf, leaf, cfg.MACBits)
		macEnd = l.Geo.End()
	}
	l.DerivBase = macEnd
	// One 16-bit derivative counter per metadata block (counter blocks and
	// MAC blocks): 2 bytes per 64, a 32nd of the metadata span.
	l.DerivBytes = (macEnd - l.DirectBase) / 32
	l.TotalBytes = l.DerivBase + l.DerivBytes
	// Round up to a block multiple for the DRAM model.
	if r := l.TotalBytes % BlockSize; r != 0 {
		l.TotalBytes += BlockSize - r
	}
	return l
}

// Regions adapts the layout for the counter store.
func (l Layout) Regions() counterstore.Regions {
	return counterstore.Regions{
		DataBytes:  l.DataBytes,
		DirectBase: l.DirectBase,
		MacBase:    l.MacBase,
		DerivBase:  l.DerivBase,
	}
}

// RegionOf classifies a block address.
func (l Layout) RegionOf(addr uint64) Region {
	switch {
	case addr < l.DataBytes:
		return RegionData
	case addr < l.DirectBase+l.DirectBytes:
		return RegionCounter
	case addr < l.DerivBase && l.Geo != nil && addr >= l.MacBase:
		return RegionMac
	case addr >= l.DerivBase && addr < l.DerivBase+l.DerivBytes:
		return RegionDeriv
	default:
		panic(fmt.Sprintf("core: address %#x in no region", addr))
	}
}

// Region names a part of the address map.
type Region int

// Address map regions.
const (
	RegionData Region = iota
	RegionCounter
	RegionMac
	RegionDeriv
)

// String names the region.
func (r Region) String() string {
	switch r {
	case RegionData:
		return "data"
	case RegionCounter:
		return "counter"
	case RegionMac:
		return "mac"
	case RegionDeriv:
		return "deriv"
	default:
		return fmt.Sprintf("Region(%d)", int(r))
	}
}
