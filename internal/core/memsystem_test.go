package core

import (
	"bytes"
	"math/rand"
	"testing"

	"secmem/internal/config"
)

// TestInclusionProperty: any block resident in L1 must be resident in L2
// (the hierarchy is modeled inclusive so the functional layer's notion of
// on-chip is exactly L2 residence).
func TestInclusionProperty(t *testing.T) {
	cfg := smallCfg()
	cfg.Functional = false
	m := mustSystem(t, cfg)
	rng := rand.New(rand.NewSource(5))
	now := uint64(0)
	for i := 0; i < 5000; i++ {
		a := uint64(rng.Intn(2048)) * 64
		m.Access(now, a, rng.Intn(3) == 0)
		now += 50
		if i%500 == 0 {
			violations := 0
			m.L1().ForEach(func(addr uint64, _ bool) {
				if !m.L2().Contains(addr) {
					violations++
				}
			})
			if violations > 0 {
				t.Fatalf("op %d: %d L1 blocks not in L2", i, violations)
			}
		}
	}
}

// TestDrainLeavesMemoryCurrent: after Drain, the DRAM image must decrypt to
// the latest written values with no on-chip help.
func TestDrainLeavesMemoryCurrent(t *testing.T) {
	m := mustSystem(t, smallCfg())
	rng := rand.New(rand.NewSource(6))
	shadow := map[uint64][]byte{}
	now := uint64(0)
	for i := 0; i < 100; i++ {
		a := uint64(rng.Intn(256)) * 64
		data := make([]byte, 64)
		rng.Read(data)
		if _, err := m.WriteBytes(now, a, data); err != nil {
			t.Fatal(err)
		}
		shadow[a] = data
		now += 500
	}
	m.Drain(now)
	// Fresh reads must reproduce every value.
	buf := make([]byte, 64)
	for a, want := range shadow {
		if _, err := m.ReadBytes(now, a, buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, want) {
			t.Fatalf("block %#x stale after drain", a)
		}
	}
	if n := m.Controller().Stats.TamperDetected; n != 0 {
		t.Fatalf("false positives: %d", n)
	}
}

// TestWriteBackForwardStorm: ping-pong two conflicting sets so blocks are
// constantly evicted and immediately re-fetched; write-back-buffer
// forwarding must keep data intact and never read stale DRAM.
func TestWriteBackForwardStorm(t *testing.T) {
	cfg := smallCfg()
	// Tiny 2-way L2: brutal conflict misses between the two data blocks
	// and the Merkle nodes sharing its sets. (Fully direct-mapped would be
	// a placement livelock — the tree node and the data block that needs
	// it cannot coexist — which no real design ships.)
	cfg.L2.SizeBytes = 2 << 10
	cfg.L2.Ways = 2
	cfg.L1.SizeBytes = 512
	cfg.L1.Ways = 1
	m := mustSystem(t, cfg)
	now := uint64(0)
	// Two addresses mapping to the same L2 set (stride = sets*block).
	a1, a2 := uint64(0x4000), uint64(0x4000+1<<10)
	v1 := bytes.Repeat([]byte{0xA1}, 64)
	v2 := bytes.Repeat([]byte{0xB2}, 64)
	if _, err := m.WriteBytes(now, a1, v1); err != nil {
		t.Fatal(err)
	}
	if _, err := m.WriteBytes(now+100, a2, v2); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	for i := 0; i < 200; i++ {
		now += 200
		x, want := a1, v1
		if i%2 == 1 {
			x, want = a2, v2
		}
		if _, err := m.ReadBytes(now, x, buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, want) {
			t.Fatalf("iteration %d: block %#x corrupted", i, x)
		}
	}
	if n := m.Controller().Stats.TamperDetected; n != 0 {
		t.Fatalf("false positives under forwarding storm: %d", n)
	}
}

// TestVictimHookKeepsDirtyL1Data: the regression behind the victim-hook
// design — a controller-internal L2 fill (Merkle node) evicting a block
// whose only dirty copy is in L1 must not lose that data.
func TestVictimHookKeepsDirtyL1Data(t *testing.T) {
	cfg := smallCfg()
	m := mustSystem(t, cfg)
	rng := rand.New(rand.NewSource(99))
	shadow := map[uint64][]byte{}
	now := uint64(0)
	// Heavy mixed traffic with periodic drains: before the hook existed,
	// this workload lost writes (seed 99 reproduced it deterministically).
	for i := 0; i < 400; i++ {
		a := uint64(rng.Intn(1024)) * 64
		if rng.Intn(3) != 0 {
			data := make([]byte, 64)
			rng.Read(data)
			if _, err := m.WriteBytes(now, a, data); err != nil {
				t.Fatal(err)
			}
			shadow[a] = data
		} else if want, ok := shadow[a]; ok {
			got := make([]byte, 64)
			if _, err := m.ReadBytes(now, a, got); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("op %d: block %#x lost its dirty L1 data", i, a)
			}
		}
		now += 300
		if i%100 == 99 {
			m.Drain(now)
		}
	}
}

func TestAccessResultMonotonic(t *testing.T) {
	// DataReady and AuthDone must never precede the access time.
	cfg := smallCfg()
	cfg.Functional = false
	m := mustSystem(t, cfg)
	rng := rand.New(rand.NewSource(8))
	now := uint64(1000)
	for i := 0; i < 3000; i++ {
		a := uint64(rng.Intn(4096)) * 64
		r := m.Access(now, a, rng.Intn(4) == 0)
		if r.DataReady < now || r.AuthDone < now {
			t.Fatalf("result precedes access: now=%d %+v", now, r)
		}
		now += uint64(rng.Intn(100))
	}
}

func TestSchemeNameOnRunOutput(t *testing.T) {
	cfg := smallCfg()
	if got := cfg.SchemeName(); got != "Split+GCM" {
		t.Errorf("smallCfg scheme = %q", got)
	}
	_ = config.Default()
}
