package core

import (
	"bytes"
	"math/rand"
	"testing"

	"secmem/internal/cache"
	"secmem/internal/config"
	"secmem/internal/dram"
)

// smallCfg returns a functional configuration small enough to exercise
// evictions and re-encryptions quickly.
func smallCfg() config.SystemConfig {
	cfg := config.Default()
	cfg.MemBytes = 1 << 20
	cfg.L1 = cache.Config{Name: "L1D", SizeBytes: 1 << 10, Ways: 2, BlockBytes: 64, LatencyCycles: 2}
	cfg.L2 = cache.Config{Name: "L2", SizeBytes: 8 << 10, Ways: 4, BlockBytes: 64, LatencyCycles: 10}
	cfg.CounterCache = cache.Config{Name: "SNC", SizeBytes: 1 << 10, Ways: 4, BlockBytes: 64, LatencyCycles: 2}
	cfg.Functional = true
	return cfg
}

func mustSystem(t *testing.T, cfg config.SystemConfig) *MemSystem {
	t.Helper()
	m, err := NewMemSystem(cfg)
	if err != nil {
		t.Fatalf("NewMemSystem: %v", err)
	}
	return m
}

func TestLayoutRegions(t *testing.T) {
	lay := NewLayout(config.Default())
	if lay.DataBytes != 512<<20 {
		t.Errorf("data bytes = %d", lay.DataBytes)
	}
	if lay.RegionOf(0) != RegionData || lay.RegionOf(lay.DataBytes-64) != RegionData {
		t.Error("data region misclassified")
	}
	if lay.RegionOf(lay.DirectBase) != RegionCounter {
		t.Error("counter region misclassified")
	}
	if lay.RegionOf(lay.MacBase) != RegionMac {
		t.Error("mac region misclassified")
	}
	if lay.RegionOf(lay.DerivBase) != RegionDeriv {
		t.Error("deriv region misclassified")
	}
	if lay.TotalBytes <= lay.DerivBase {
		t.Error("total does not cover deriv region")
	}
	// No authentication: no MAC region.
	lay2 := NewLayout(config.Baseline())
	if lay2.Geo != nil {
		t.Error("baseline layout has a Merkle geometry")
	}
}

func TestTimingHitVsMiss(t *testing.T) {
	cfg := smallCfg()
	cfg.Functional = false
	m := mustSystem(t, cfg)
	r1 := m.Access(0, 0x40, false)
	if !r1.L2Miss {
		t.Fatal("cold access not an L2 miss")
	}
	if r1.DataReady < cfg.MemLatencyCycles {
		t.Errorf("miss data ready at %d, faster than memory latency", r1.DataReady)
	}
	r2 := m.Access(r1.DataReady, 0x40, false)
	if r2.L2Miss {
		t.Fatal("second access missed")
	}
	if r2.DataReady != r1.DataReady+cfg.L1.LatencyCycles {
		t.Errorf("hit latency = %d", r2.DataReady-r1.DataReady)
	}
}

func TestCounterModeOverlapsDecryption(t *testing.T) {
	// With a counter-cache hit, counter-mode decryption must be roughly as
	// fast as no encryption; direct encryption pays the AES latency after
	// data arrival (Figure 1).
	mk := func(enc config.EncryptionMode) uint64 {
		cfg := smallCfg()
		cfg.Functional = false
		cfg.Enc = enc
		cfg.Auth = config.AuthNone
		cfg.AuthenticateCounters = false
		m := mustSystem(t, cfg)
		// Warm the counter cache with a first access.
		r := m.Access(0, 0x40, false)
		r = m.Access(r.DataReady+100, 0x1040, false) // same counter block page? different page, still fine
		r2 := m.Access(r.DataReady+5000, 0x80, false)
		return r2.DataReady - (r.DataReady + 5000)
	}
	plain := mk(config.EncNone)
	split := mk(config.EncCounterSplit)
	direct := mk(config.EncDirect)
	if direct <= plain+70 {
		t.Errorf("direct (%d) not ~AES latency slower than plain (%d)", direct, plain)
	}
	if split >= direct {
		t.Errorf("split (%d) not faster than direct (%d)", split, direct)
	}
	if split > plain+20 {
		t.Errorf("split with counter hit (%d) much slower than plain (%d)", split, plain)
	}
}

func TestFunctionalRoundTrip(t *testing.T) {
	m := mustSystem(t, smallCfg())
	msg := []byte("the quick brown fox jumps over the lazy dog 0123456789 ABCDEF!")
	if _, err := m.WriteBytes(0, 0x2000, msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if _, err := m.ReadBytes(1000, 0x2000, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("on-chip read = %q", got)
	}
	// Force everything off-chip, then read back through decryption.
	m.Drain(2000)
	if _, err := m.ReadBytes(3000, 0x2000, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("off-chip round trip = %q", got)
	}
	if n := m.Controller().Stats.TamperDetected; n != 0 {
		t.Fatalf("tamper events on honest run: %d", n)
	}
}

func TestCiphertextActuallyEncrypted(t *testing.T) {
	m := mustSystem(t, smallCfg())
	msg := bytes.Repeat([]byte("secret! "), 8)
	m.WriteBytes(0, 0x3000, msg)
	m.Drain(100)
	var ct [64]byte
	m.Controller().DRAM().ReadBlock(0x3000, ct[:])
	if bytes.Contains(ct[:], []byte("secret")) {
		t.Fatal("plaintext visible in DRAM")
	}
	if isZero(ct[:]) {
		t.Fatal("ciphertext is zero")
	}
}

func TestFunctionalRoundTripAllSchemes(t *testing.T) {
	encs := []config.EncryptionMode{config.EncNone, config.EncDirect,
		config.EncCounterMono, config.EncCounterSplit, config.EncCounterGlobal}
	auths := []config.AuthMode{config.AuthNone, config.AuthSHA1, config.AuthGCM}
	for _, enc := range encs {
		for _, auth := range auths {
			cfg := smallCfg()
			cfg.Enc = enc
			cfg.Auth = auth
			if auth == config.AuthNone {
				cfg.AuthenticateCounters = false
			}
			name := cfg.SchemeName()
			t.Run(name, func(t *testing.T) {
				m := mustSystem(t, cfg)
				rng := rand.New(rand.NewSource(7))
				data := make([]byte, 4096)
				rng.Read(data)
				if _, err := m.WriteBytes(0, 0x8000, data); err != nil {
					t.Fatal(err)
				}
				m.Drain(500)
				got := make([]byte, len(data))
				if _, err := m.ReadBytes(1000, 0x8000, got); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, data) {
					t.Fatalf("%s: round trip corrupted", name)
				}
				if n := m.Controller().Stats.TamperDetected; n != 0 {
					t.Fatalf("%s: spurious tamper: %d", name, n)
				}
			})
		}
	}
}

func TestBitFlipDetected(t *testing.T) {
	m := mustSystem(t, smallCfg())
	m.WriteBytes(0, 0x1000, bytes.Repeat([]byte{0xAA}, 64))
	m.Drain(100)
	atk := dram.NewAttacker(m.Controller().DRAM())
	atk.FlipBit(0x1000, 13)
	buf := make([]byte, 64)
	m.ReadBytes(1000, 0x1000, buf)
	if m.Controller().Stats.TamperDetected == 0 {
		t.Fatal("bit flip not detected")
	}
	tampers := m.Controller().Tampers()
	if len(tampers) == 0 || tampers[0].Addr != 0x1000 {
		t.Fatalf("tamper log = %+v", tampers)
	}
}

func TestSpliceDetected(t *testing.T) {
	m := mustSystem(t, smallCfg())
	m.WriteBytes(0, 0x1000, bytes.Repeat([]byte{1}, 64))
	m.WriteBytes(0, 0x2000, bytes.Repeat([]byte{2}, 64))
	m.Drain(100)
	atk := dram.NewAttacker(m.Controller().DRAM())
	atk.Splice(0x1000, 0x2000)
	buf := make([]byte, 64)
	m.ReadBytes(1000, 0x2000, buf)
	if m.Controller().Stats.TamperDetected == 0 {
		t.Fatal("splice not detected")
	}
}

func TestDataReplayDetected(t *testing.T) {
	// Roll (data block) back to an old value while its MAC has moved on:
	// the classic replay the Merkle tree exists to stop.
	m := mustSystem(t, smallCfg())
	m.WriteBytes(0, 0x1000, bytes.Repeat([]byte{1}, 64))
	m.Drain(100)
	atk := dram.NewAttacker(m.Controller().DRAM())
	atk.Record(0x1000)
	m.WriteBytes(200, 0x1000, bytes.Repeat([]byte{9}, 64))
	m.Drain(300)
	atk.Replay(0x1000)
	buf := make([]byte, 64)
	m.ReadBytes(1000, 0x1000, buf)
	if m.Controller().Stats.TamperDetected == 0 {
		t.Fatal("data replay not detected")
	}
}

func TestPageReencryptionPreservesData(t *testing.T) {
	cfg := smallCfg()
	cfg.MinorBits = 2 // minors wrap after 4 write-backs: fast overflow
	m := mustSystem(t, cfg)
	payload := func(i int) []byte { return bytes.Repeat([]byte{byte(i + 1)}, 64) }
	// Write several blocks of one encryption page, then rewrite one block
	// repeatedly to force minor overflow and page re-encryption.
	for i := 0; i < 8; i++ {
		m.WriteBytes(0, uint64(0x4000+i*64), payload(i))
	}
	for w := 0; w < 12; w++ {
		m.WriteBytes(uint64(1000*w), 0x4000, payload(0))
		m.Drain(uint64(1000*w + 500))
	}
	if m.Controller().RSRs().Stats.PageReencs == 0 {
		t.Fatal("no page re-encryption happened")
	}
	// All blocks must still decrypt correctly.
	buf := make([]byte, 64)
	for i := 0; i < 8; i++ {
		if _, err := m.ReadBytes(100000, uint64(0x4000+i*64), buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, payload(i)) {
			t.Fatalf("block %d corrupted after page re-encryption", i)
		}
	}
	if n := m.Controller().Stats.TamperDetected; n != 0 {
		t.Fatalf("spurious tamper during re-encryption: %d", n)
	}
}

func TestMonoOverflowWholeMemoryReencrypt(t *testing.T) {
	cfg := smallCfg()
	cfg.Enc = config.EncCounterMono
	cfg.MonoCounterBits = 8
	m := mustSystem(t, cfg)
	m.WriteBytes(0, 0x5000, bytes.Repeat([]byte{0x77}, 64))
	m.WriteBytes(0, 0x9000, bytes.Repeat([]byte{0x33}, 64))
	m.Drain(10)
	// 256 write-backs of one block wrap its 8-bit counter.
	for w := 0; w < 256; w++ {
		m.WriteBytes(uint64(100*w), 0x5000, bytes.Repeat([]byte{byte(w)}, 64))
		m.Drain(uint64(100*w + 50))
	}
	st := m.Controller().Stats
	if st.FullReencEvents == 0 {
		t.Fatal("no whole-memory re-encryption")
	}
	if st.FreezeCycles == 0 {
		t.Fatal("freeze cycles not accounted")
	}
	// Data written before the key change must still read back.
	buf := make([]byte, 64)
	m.ReadBytes(1<<20, 0x9000, buf)
	if !bytes.Equal(buf, bytes.Repeat([]byte{0x33}, 64)) {
		t.Fatal("pre-overflow data corrupted by key change")
	}
	if st.TamperDetected != 0 {
		t.Fatalf("spurious tamper: %d", st.TamperDetected)
	}
}

func TestSafeVsLazyAuthTiming(t *testing.T) {
	// AuthDone must trail DataReady when authentication is on and a miss
	// walks the tree.
	cfg := smallCfg()
	cfg.Functional = false
	m := mustSystem(t, cfg)
	r := m.Access(0, 0x40, false)
	if r.AuthDone < r.DataReady {
		t.Errorf("authDone %d before dataReady %d", r.AuthDone, r.DataReady)
	}
	if r.AuthDone == r.DataReady {
		t.Error("authentication appears free on a cold miss")
	}
}

func TestParallelAuthFasterThanSequential(t *testing.T) {
	run := func(parallel bool) uint64 {
		cfg := smallCfg()
		cfg.Functional = false
		cfg.ParallelAuth = parallel
		m := mustSystem(t, cfg)
		var worst uint64
		// Scatter accesses so the Merkle walk misses at several levels.
		for i := 0; i < 64; i++ {
			addr := uint64(i) * 12713 * 64 % cfg.MemBytes
			r := m.Access(uint64(i)*4000, m.L1().BlockAddr(addr), false)
			if d := r.AuthDone - r.DataReady; d > worst {
				worst = d
			}
		}
		return worst
	}
	par := run(true)
	seq := run(false)
	if par >= seq {
		t.Errorf("parallel worst-case auth lag (%d) not better than sequential (%d)", par, seq)
	}
}

func TestWriteBytesRequiresFunctional(t *testing.T) {
	cfg := smallCfg()
	cfg.Functional = false
	m := mustSystem(t, cfg)
	if _, err := m.WriteBytes(0, 0, []byte{1}); err == nil {
		t.Fatal("WriteBytes on timing-only system succeeded")
	}
	if _, err := m.ReadBytes(0, 0, make([]byte, 1)); err == nil {
		t.Fatal("ReadBytes on timing-only system succeeded")
	}
}

func TestInvalidConfigRejected(t *testing.T) {
	cfg := smallCfg()
	cfg.MACBits = 48
	if _, err := NewMemSystem(cfg); err == nil {
		t.Fatal("invalid MAC size accepted")
	}
}
