package core

import (
	"fmt"

	"secmem/internal/config"
	"secmem/internal/stats"
)

// OverheadReport summarizes the memory-space cost of a protection
// configuration — the Section 3 discussion ("only four 128-bit AES-based
// authentication codes can fit in a 64-byte block, which for a 1GB memory
// results in a 12-level Merkle tree that represents a 33% memory space
// overhead").
type OverheadReport struct {
	DataBytes    uint64
	CounterBytes uint64 // direct counters actually used by the scheme
	MacBytes     uint64
	DerivBytes   uint64
	TreeLevels   int
}

// TotalOverheadBytes is all metadata.
func (o OverheadReport) TotalOverheadBytes() uint64 {
	return o.CounterBytes + o.MacBytes + o.DerivBytes
}

// OverheadFraction is metadata over data.
func (o OverheadReport) OverheadFraction() float64 {
	return float64(o.TotalOverheadBytes()) / float64(o.DataBytes)
}

// Overhead computes the storage report for a configuration.
func Overhead(cfg config.SystemConfig) OverheadReport {
	lay := NewLayout(cfg)
	o := OverheadReport{DataBytes: lay.DataBytes}
	blocks := lay.DataBytes / BlockSize
	switch cfg.Enc {
	case config.EncCounterSplit:
		// One counter block per encryption page.
		o.CounterBytes = lay.DataBytes / uint64(cfg.PageBlocks)
	case config.EncCounterMono, config.EncCounterGlobal:
		bits := uint64(cfg.MonoCounterBits)
		if cfg.Enc == config.EncCounterGlobal {
			bits = 64 // stored decryption snapshots are full width
		}
		o.CounterBytes = blocks * bits / 8
	default:
		if cfg.Auth == config.AuthGCM {
			// Authentication-only GCM keeps split counters.
			o.CounterBytes = lay.DataBytes / uint64(cfg.PageBlocks)
		}
	}
	if lay.Geo != nil {
		o.MacBytes = lay.Geo.MacBytes()
		o.DerivBytes = lay.DerivBytes
		o.TreeLevels = lay.Geo.NumLevels()
	}
	return o
}

// OverheadTable renders storage overheads for a set of named schemes.
func OverheadTable(schemes map[string]config.SystemConfig, order []string) stats.Table {
	tbl := stats.Table{
		Title: "Memory space overhead by scheme",
		Cols:  []string{"scheme", "counters", "MACs", "deriv ctrs", "total", "of data", "tree levels"},
	}
	mb := func(b uint64) string { return fmt.Sprintf("%.1f MB", float64(b)/(1<<20)) }
	for _, name := range order {
		o := Overhead(schemes[name])
		tbl.AddRow(name, mb(o.CounterBytes), mb(o.MacBytes), mb(o.DerivBytes),
			mb(o.TotalOverheadBytes()), stats.Pct(o.OverheadFraction()),
			fmt.Sprintf("%d", o.TreeLevels))
	}
	return tbl
}

// LatencyBreakdown reproduces Figure 1's L2-miss timelines analytically for
// a configuration: when the data arrives, when the decryption pad is ready,
// and when the plaintext is usable, for the three canonical cases (direct
// encryption, counter-cache hit, counter-cache miss).
type LatencyBreakdown struct {
	Case      string
	DataAt    uint64 // cycles after the miss
	PadAt     uint64
	UsableAt  uint64
	AuthTailC uint64 // extra cycles to authenticate after data+pad
}

// Figure1 computes the three timelines from a configuration's parameters
// (uncontended; queuing effects come from full simulation).
func Figure1(cfg config.SystemConfig) []LatencyBreakdown {
	mem := cfg.MemLatencyCycles
	aes := cfg.AESLatency + 3*(cfg.AESLatency/16) // 4 pipelined chunk pads
	snc := cfg.CounterCache.LatencyCycles
	ghash := uint64(BlockSize/16) + 1
	return []LatencyBreakdown{
		{
			Case:     "direct encryption (Fig 1a)",
			DataAt:   mem,
			PadAt:    mem + aes, // decryption IS the AES, after arrival
			UsableAt: mem + aes,
		},
		{
			Case:      "counter mode, counter cache hit (Fig 1b)",
			DataAt:    mem,
			PadAt:     snc + aes,
			UsableAt:  maxU(mem, snc+aes) + 1,
			AuthTailC: ghash,
		},
		{
			Case:      "counter mode, counter cache miss (Fig 1c)",
			DataAt:    mem,
			PadAt:     snc + mem + aes, // counter fetch first
			UsableAt:  maxU(mem, snc+mem+aes) + 1,
			AuthTailC: ghash,
		},
	}
}

func maxU(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// Figure1Table renders the breakdown.
func Figure1Table(cfg config.SystemConfig) stats.Table {
	tbl := stats.Table{
		Title: "Figure 1: L2 miss timelines (uncontended cycles after the miss)",
		Cols:  []string{"case", "data arrives", "pad ready", "data usable", "GCM auth tail"},
	}
	for _, b := range Figure1(cfg) {
		tbl.AddRow(b.Case,
			fmt.Sprintf("%d", b.DataAt),
			fmt.Sprintf("%d", b.PadAt),
			fmt.Sprintf("%d", b.UsableAt),
			fmt.Sprintf("+%d", b.AuthTailC))
	}
	tbl.AddNote("counter-mode pad generation overlaps the fetch; direct encryption serializes after it")
	return tbl
}
