package core

import (
	"fmt"

	"secmem/internal/cache"
	"secmem/internal/config"
	"secmem/internal/obsv"
	"secmem/internal/sim"
)

// AccessResult is what the CPU model learns about one memory access.
type AccessResult struct {
	// DataReady is when the (decrypted) data can be forwarded to dependent
	// instructions.
	DataReady sim.Time
	// AuthDone is when the data's authentication completes; under the
	// commit requirement the instruction cannot retire before this, and
	// under safe even DataReady is clamped to it by the caller's policy.
	AuthDone sim.Time
	// L2Miss reports that the access went to the memory controller.
	L2Miss bool
}

// MemSystem is the full on-chip memory hierarchy plus the secure memory
// controller: the thing the simulated core issues loads and stores to.
//
// The hierarchy is modeled inclusive: an L2 eviction back-invalidates L1 so
// the functional layer's notion of "on-chip" is simply "L2-resident".
type MemSystem struct {
	cfg config.SystemConfig
	l1  *cache.Cache
	l2  *cache.Cache
	ctl *Controller

	// reg is non-nil once Instrument has run; smp is non-nil once
	// AttachSampler has run (see obs.go).
	reg *obsv.Registry
	smp *obsv.Sampler
}

// NewMemSystem builds the hierarchy for a configuration.
func NewMemSystem(cfg config.SystemConfig) (*MemSystem, error) {
	ctl, err := NewController(cfg)
	if err != nil {
		return nil, err
	}
	m := &MemSystem{
		cfg: cfg,
		l1:  cache.New(cfg.L1),
		l2:  cache.New(cfg.L2),
		ctl: ctl,
	}
	ctl.AttachL2(m.l2)
	ctl.SetVictimHook(m.evictL2)
	return m, nil
}

// Controller exposes the secure memory controller.
func (m *MemSystem) Controller() *Controller { return m.ctl }

// L1 exposes the L1 cache for statistics.
func (m *MemSystem) L1() *cache.Cache { return m.l1 }

// L2 exposes the L2 cache for statistics.
func (m *MemSystem) L2() *cache.Cache { return m.l2 }

// Access performs one load or store at cycle now. Stores are write-allocate
// write-back; a store miss costs a fill like a load.
func (m *MemSystem) Access(now sim.Time, addr uint64, write bool) AccessResult {
	// Cycle-driven sampling: accesses are the points where simulated time
	// advances, so crossing a sample boundary here snapshots the metric
	// trajectories. The uninstrumented cost is the nil check inside Due.
	if m.smp.Due(uint64(now)) {
		m.smp.Tick(uint64(now))
	}
	blk := m.l1.BlockAddr(addr)
	l1Lat := m.cfg.L1.LatencyCycles
	l2Lat := m.cfg.L2.LatencyCycles

	if m.l1.Lookup(blk, write) {
		t := now + l1Lat
		return AccessResult{DataReady: t, AuthDone: t}
	}
	// L1 miss: look in L2.
	var res AccessResult
	if m.l2.Lookup(blk, false) {
		t := now + l1Lat + l2Lat
		res = AccessResult{DataReady: t, AuthDone: t}
	} else {
		dataReady, authDone, forwarded := m.ctl.ReadBlock(now+l1Lat+l2Lat, blk)
		// Pin the demand block before processing the victim: the victim's
		// write-back can fetch Merkle nodes into this set and must not
		// displace the line the requestor is waiting on (the MSHR holds
		// it). Unpinned at the end of the access.
		ev, evicted := m.l2.Fill(blk, forwarded)
		m.l2.Pin(blk)
		if evicted {
			m.evictL2(now, ev)
		}
		res = AccessResult{DataReady: dataReady, AuthDone: authDone, L2Miss: true}
	}
	// Fill L1; a dirty L1 victim folds its data into L2 (inclusive, so the
	// victim's block is resident there unless an L2 eviction raced it).
	// The pin from the miss path (or a fresh one on an L2 hit) keeps the
	// demand block resident through the victim handling.
	m.l2.Pin(blk)
	if ev, evicted := m.l1.Fill(blk, write); evicted && ev.Dirty {
		if !m.l2.SetDirty(ev.Addr) {
			// Non-resident victim (back-invalidation race): allocate it
			// dirty; a full-block write-back needs no fetch.
			if ev2, evicted2 := m.l2.Fill(ev.Addr, true); evicted2 {
				m.evictL2(now, ev2)
			}
		}
	}
	m.l2.Unpin(blk)
	if write {
		// The write dirties L1 (Lookup(write) on the fill path set it via
		// Fill's dirty flag only for the L1 line).
		m.l1.SetDirty(blk)
	}
	return res
}

// evictL2 handles an L2 victim: back-invalidate L1 (merging its dirty
// state) and hand dirty blocks to the controller.
func (m *MemSystem) evictL2(now sim.Time, ev cache.Eviction) {
	if present, dirty := m.l1.Invalidate(ev.Addr); present && dirty {
		ev.Dirty = true
	}
	if ev.Dirty {
		m.ctl.HandleEviction(now, ev.Addr)
	} else {
		m.ctl.DropClean(ev.Addr)
	}
}

// Drain writes every dirty block in the hierarchy back to memory (data,
// then counters), leaving the caches empty. Functional examples use it to
// force the off-chip image current before staging attacks.
func (m *MemSystem) Drain(now sim.Time) {
	// L1 dirty lines merge into L2 first.
	var l1Blocks []uint64
	m.l1.ForEach(func(addr uint64, dirty bool) {
		if dirty {
			l1Blocks = append(l1Blocks, addr)
		}
	})
	for _, a := range l1Blocks {
		if !m.l2.SetDirty(a) {
			if ev, evicted := m.l2.Fill(a, true); evicted {
				m.evictL2(now, ev)
			}
		}
	}
	// Writing one dirty block back can dirty others (parent Merkle nodes,
	// counter blocks), so sweep until a pass finds nothing dirty. Dirtiness
	// is re-read at invalidation time: a snapshot taken before processing
	// would drop blocks dirtied mid-sweep.
	for pass := 0; ; pass++ {
		if pass > 64 {
			panic("core: Drain did not converge")
		}
		var l2Blocks []uint64
		m.l2.ForEach(func(addr uint64, _ bool) { l2Blocks = append(l2Blocks, addr) })
		for _, a := range l2Blocks {
			if present, dirty := m.l2.Invalidate(a); present {
				m.evictL2(now, cache.Eviction{Addr: a, Dirty: dirty})
			}
		}
		if mc := m.ctl.MacCache(); mc != nil {
			var dirtyMacs []uint64
			mc.ForEach(func(addr uint64, dirty bool) {
				if dirty {
					dirtyMacs = append(dirtyMacs, addr)
				}
			})
			for _, a := range dirtyMacs {
				mc.CleanLine(a)
				m.ctl.HandleEviction(now, a)
			}
		}
		dirtyLeft := false
		if ctrs := m.ctl.Counters(); ctrs != nil && ctrs.Cache() != nil {
			var dirtyCtrs []uint64
			ctrs.Cache().ForEach(func(addr uint64, dirty bool) {
				if dirty {
					dirtyCtrs = append(dirtyCtrs, addr)
				}
			})
			for _, a := range dirtyCtrs {
				ctrs.Cache().CleanLine(a)
				m.ctl.HandleEviction(now, a)
			}
			// Counter write-backs may have re-dirtied counter blocks
			// (derivative counters) or refilled L2 nodes dirty.
			ctrs.Cache().ForEach(func(addr uint64, dirty bool) {
				if dirty {
					dirtyLeft = true
				}
			})
		}
		m.l2.ForEach(func(addr uint64, dirty bool) {
			if dirty {
				dirtyLeft = true
			}
		})
		if mc := m.ctl.MacCache(); mc != nil {
			mc.ForEach(func(addr uint64, dirty bool) {
				if dirty {
					dirtyLeft = true
				}
			})
		}
		if !dirtyLeft {
			return
		}
	}
}

// WriteBytes performs a functional+timing write of arbitrary bytes,
// returning when the last block's data was ready. Functional mode only.
func (m *MemSystem) WriteBytes(now sim.Time, addr uint64, data []byte) (sim.Time, error) {
	if m.ctl.fn == nil {
		return 0, fmt.Errorf("core: WriteBytes requires functional mode")
	}
	done := now
	for len(data) > 0 {
		blk := m.l1.BlockAddr(addr)
		off := int(addr - blk)
		n := BlockSize - off
		if n > len(data) {
			n = len(data)
		}
		// A miss's own handling can, very rarely, displace the block again
		// before the bytes land (a deep Merkle-fill cascade into the same
		// set); retry the access like a real store would replay.
		poked := false
		for attempt := 0; attempt < 8 && !poked; attempt++ {
			r := m.Access(now, addr, true)
			if r.DataReady > done {
				done = r.DataReady
			}
			poked = m.ctl.fn.poke(blk, off, data[:n])
		}
		if !poked {
			return 0, fmt.Errorf("core: block %#x kept leaving the chip during write", blk)
		}
		addr += uint64(n)
		data = data[n:]
	}
	return done, nil
}

// ReadBytes performs a functional+timing read into buf, returning the
// access result of the last block touched. Tampering detected during the
// implied fills is visible via Controller().Tampers().
func (m *MemSystem) ReadBytes(now sim.Time, addr uint64, buf []byte) (AccessResult, error) {
	if m.ctl.fn == nil {
		return AccessResult{}, fmt.Errorf("core: ReadBytes requires functional mode")
	}
	var last AccessResult
	for len(buf) > 0 {
		blk := m.l1.BlockAddr(addr)
		off := int(addr - blk)
		n := BlockSize - off
		if n > len(buf) {
			n = len(buf)
		}
		var tmp [BlockSize]byte
		peeked := false
		for attempt := 0; attempt < 8 && !peeked; attempt++ {
			last = m.Access(now, addr, false)
			peeked = m.ctl.fn.peek(blk, tmp[:])
		}
		if !peeked {
			return last, fmt.Errorf("core: block %#x kept leaving the chip during read", blk)
		}
		copy(buf[:n], tmp[off:off+n])
		addr += uint64(n)
		buf = buf[n:]
	}
	return last, nil
}
