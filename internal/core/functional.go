package core

import (
	"crypto/subtle"
	"sort"

	"secmem/internal/aescipher"
	"secmem/internal/config"
	"secmem/internal/gcmmode"
	"secmem/internal/merkle"
	"secmem/internal/sha1sum"
	"secmem/internal/sim"
)

// Tamper records one detected authentication failure.
type Tamper struct {
	Cycle  sim.Time
	Addr   uint64
	Region Region
}

// functional is the byte-moving half of the controller. Every hook is
// invoked from the corresponding timing path, so the functional view of
// what is on-chip always matches the cache models.
type functional struct {
	c *Controller
	//secmemlint:secret — AES memory-encryption key (on-chip only)
	key [16]byte
	//secmemlint:secret — SHA-1 MAC key for the AuthSHA1 configuration
	shaKey []byte
	epoch  byte
	pads   *gcmmode.PadGen
	direct *aescipher.Cipher

	// plain holds decrypted data blocks currently resident on-chip; meta
	// holds the contents of on-chip Merkle nodes. Counter-block contents
	// live in the counter store's maps and are (de)serialized at the edge.
	//
	//secmemlint:secret — plaintext cache-block contents; must never leave the chip unencrypted
	plain map[uint64]*[BlockSize]byte
	meta  map[uint64]*[BlockSize]byte

	root    merkle.Root
	tampers []Tamper

	// chainBuf is the reusable gather buffer for parallel verification
	// chains (HashWorkers > 1). verify is not reentrant on that path — the
	// gathered walk replaces the recursion — so one buffer suffices.
	chainBuf []chainLink
}

// chainLink is one node of a gathered verification chain: its memory image,
// the counter bound into its MAC, its MAC slot within the parent node, and
// (after the hash phase) the MAC itself.
type chainLink struct {
	addr    uint64
	ctr     uint64
	slot    int
	content [BlockSize]byte
	mac     [16]byte
	macLen  int
}

func newFunctional(c *Controller) *functional {
	f := &functional{
		c:     c,
		plain: make(map[uint64]*[BlockSize]byte),
		meta:  make(map[uint64]*[BlockSize]byte),
	}
	// A fixed deterministic key keeps runs reproducible; key management is
	// explicitly out of the paper's scope (Section 4.4).
	for i := range f.key {
		f.key[i] = byte(i*67 + 13)
	}
	f.shaKey = []byte("secmem-sha1-authentication-key!!")
	f.rekey()
	return f
}

// rekey derives the pad generator for the current key epoch. A whole-memory
// re-encryption changes the epoch, which flows into both initialization
// vectors, giving the "new AES key" effect of prior-work counter overflow
// handling.
func (f *functional) rekey() {
	f.pads = gcmmode.NewAES128PadGen(f.key[:], 2*f.epoch, 2*f.epoch+1)
	f.direct = aescipher.MustNew(f.key[:])
}

func (f *functional) tamper(now sim.Time, addr uint64) {
	f.tampers = append(f.tampers, Tamper{Cycle: now, Addr: addr, Region: f.c.lay.RegionOf(addr)})
	f.c.Stats.TamperDetected++
	f.c.mTamper.Inc()
	f.c.rec.Instant("txn", "tamper", uint64(now))
}

// counterFor returns the counter value bound into a block's MAC and pad.
func (f *functional) counterFor(addr uint64) uint64 {
	if f.c.ctrs == nil {
		return 0
	}
	return f.c.ctrs.Value(addr)
}

// encrypt produces the memory image of a data block under counter ctr.
//
//secmemlint:hotpath
func (f *functional) encrypt(dst, src []byte, addr, ctr uint64) {
	switch f.c.cfg.Enc {
	case config.EncNone:
		copy(dst, src[:BlockSize])
	case config.EncDirect:
		for i := 0; i < BlockSize; i += 16 {
			f.direct.Encrypt(dst[i:], src[i:])
		}
	default:
		f.pads.EncryptBlock(dst, src, addr, ctr)
	}
}

// decrypt inverts encrypt.
//
//secmemlint:hotpath
func (f *functional) decrypt(dst, src []byte, addr, ctr uint64) {
	switch f.c.cfg.Enc {
	case config.EncNone:
		copy(dst, src[:BlockSize])
	case config.EncDirect:
		for i := 0; i < BlockSize; i += 16 {
			f.direct.Decrypt(dst[i:], src[i:])
		}
	default:
		f.pads.EncryptBlock(dst, src, addr, ctr) // counter mode is symmetric
	}
}

// computeMac fills mac with the authentication code for a block's memory
// image and returns its length in bytes (0 when authentication is off).
// The out-array form keeps per-transfer MAC generation off the heap on the
// GCM path — this is called for every fill, write-back, and tree walk step.
//
//secmemlint:hotpath
func (f *functional) computeMac(addr uint64, content []byte, ctr uint64, mac *[16]byte) int {
	switch f.c.cfg.Auth {
	case config.AuthGCM:
		tag, n := f.pads.MAC(content, addr, ctr, f.c.cfg.MACBits)
		*mac = tag
		return n
	case config.AuthSHA1:
		return copy(mac[:], sha1sum.MAC(f.shaKey, addr, ctr, content, f.c.cfg.MACBits))
	default:
		return 0
	}
}

// nodeContent returns a Merkle node's bytes, preferring the trusted on-chip
// copy, and reports whether the copy was on-chip.
func (f *functional) nodeContent(addr uint64, buf *[BlockSize]byte) (onChip bool) {
	if m, ok := f.meta[addr]; ok {
		*buf = *m
		return true
	}
	f.c.mem.ReadBlock(addr, buf[:])
	return false
}

// verify checks a fetched block's MAC against its parent, walking up the
// tree through off-chip parents until an on-chip node or the root register.
// Unwritten blocks (never stored by this run) are skipped: their MACs were
// never initialized, exactly like real memory before first use.
func (f *functional) verify(now sim.Time, addr uint64, content []byte, ctr uint64) bool {
	if f.c.cfg.HashWorkers > 1 {
		return f.verifyGathered(now, addr, content, ctr)
	}
	if !f.c.mem.HasBlock(addr) && isZero(content) {
		return true
	}
	var mac [16]byte
	n := f.computeMac(addr, content, ctr, &mac)
	parent, slot, ok := f.c.lay.Geo.Parent(addr)
	if !ok {
		want, set := f.root.Get()
		if !set {
			return true
		}
		if subtle.ConstantTimeCompare(mac[:n], want) != 1 {
			f.tamper(now, addr)
			return false
		}
		return true
	}
	var pbuf [BlockSize]byte
	onChip := f.nodeContent(parent, &pbuf)
	if !onChip {
		// The parent itself came from untrusted memory: verify it first.
		if !f.verify(now, parent, pbuf[:], f.counterFor(parent)) {
			return false
		}
	}
	lo, hi := f.c.lay.Geo.MacOffset(slot)
	if subtle.ConstantTimeCompare(mac[:n], pbuf[lo:hi]) != 1 {
		f.tamper(now, addr)
		return false
	}
	return true
}

// verifyGathered is verify with the paper's level parallelism applied to
// the functional walk: it gathers the whole off-chip verification chain
// first (a serial, read-only ascent), computes every level's MAC
// concurrently on HashWorkers workers, and then compares top-down. The
// serial recursion also effectively compares top-down — each frame
// verifies its parent before its own slot — so tamper order, the
// first-failure early stop, the unwritten-ancestor early stop, and the
// root-register cases all match the serial walk bit for bit.
func (f *functional) verifyGathered(now sim.Time, addr uint64, content []byte, ctr uint64) bool {
	if !f.c.mem.HasBlock(addr) && isZero(content) {
		return true
	}
	geo := f.c.lay.Geo
	links := f.chainBuf[:0]
	var link chainLink
	link.addr, link.ctr = addr, ctr
	copy(link.content[:], content)
	// atRoot: the top link's MAC lives in the root register. Otherwise the
	// top link compares against parentContent — either a trusted on-chip
	// ancestor or an unwritten one (all-zero, trusted like real memory
	// before first use; the serial walk stops ascending there too).
	atRoot := false
	var parentContent [BlockSize]byte
	for {
		parent, slot, ok := geo.Parent(link.addr)
		link.slot = slot
		links = append(links, link)
		if !ok {
			atRoot = true
			break
		}
		onChip := f.nodeContent(parent, &parentContent)
		if onChip || (!f.c.mem.HasBlock(parent) && isZero(parentContent[:])) {
			break
		}
		link = chainLink{addr: parent, ctr: f.counterFor(parent)}
		link.content = parentContent
	}
	f.chainBuf = links // keep the grown buffer for the next chain

	// Hash phase: every level's MAC is independent of the others, so they
	// compute in parallel; computeMac touches only read-only generator
	// state and the link's own slot (partitioned-index discipline).
	parallelMac(f.c.cfg.HashWorkers, len(links), func(i int) {
		l := &links[i]
		l.macLen = f.computeMac(l.addr, l.content[:], l.ctr, &l.mac)
	})

	// Compare phase, top-down: link i checks against link i+1's gathered
	// image (read before any comparison, exactly like the serial walk's
	// pre-recursion fetch), the top link against parentContent or the root
	// register. First mismatch records the tamper and stops.
	for i := len(links) - 1; i >= 0; i-- {
		l := &links[i]
		var want []byte
		if i == len(links)-1 && atRoot {
			rootMac, set := f.root.Get()
			if !set {
				continue
			}
			want = rootMac
		} else {
			lo, hi := geo.MacOffset(l.slot)
			if i == len(links)-1 {
				want = parentContent[lo:hi]
			} else {
				want = links[i+1].content[lo:hi]
			}
		}
		if subtle.ConstantTimeCompare(l.mac[:l.macLen], want) != 1 {
			f.tamper(now, l.addr)
			return false
		}
	}
	return true
}

func isZero(b []byte) bool {
	for _, v := range b {
		if v != 0 {
			return false
		}
	}
	return true
}

// --- fill hooks -----------------------------------------------------------

func (f *functional) onDataFill(now sim.Time, addr uint64) {
	var ct, pt [BlockSize]byte
	f.c.mem.ReadBlock(addr, ct[:])
	if f.c.cfg.Auth != config.AuthNone {
		f.verify(now, addr, ct[:], f.counterFor(addr)) //secmemlint:ignore verifydrop verify records the tamper; the simulator continues to observe post-tamper behavior
	}
	f.decrypt(pt[:], ct[:], addr, f.counterFor(addr))
	f.plain[addr] = &pt
}

func (f *functional) onMacFill(now sim.Time, addr uint64) {
	var buf [BlockSize]byte
	f.c.mem.ReadBlock(addr, buf[:])
	f.verify(now, addr, buf[:], f.counterFor(addr)) //secmemlint:ignore verifydrop verify records the tamper; the simulator continues to observe post-tamper behavior
	f.meta[addr] = &buf
}

func (f *functional) onCounterFill(now sim.Time, ctrBlk uint64) {
	var img [BlockSize]byte
	f.c.mem.ReadBlock(ctrBlk, img[:])
	if f.c.cfg.AuthenticateCounters && f.c.cfg.Auth != config.AuthNone && f.c.inTree(ctrBlk) {
		f.verify(now, ctrBlk, img[:], f.counterFor(ctrBlk)) //secmemlint:ignore verifydrop verify records the tamper; the simulator continues to observe post-tamper behavior
	}
	// The hardware trusts what memory says: install the fetched counters.
	// Without counter authentication this is where a replayed counter block
	// silently rolls counters back — the Section 4.3 vulnerability.
	f.c.ctrs.UnpackBlock(ctrBlk, img[:])
}

// --- write-back hooks ------------------------------------------------------

func (f *functional) onDataWriteBack(now sim.Time, addr uint64) {
	pt, ok := f.plain[addr]
	if !ok {
		pt = new([BlockSize]byte)
	}
	var ct [BlockSize]byte
	f.encrypt(ct[:], pt[:], addr, f.counterFor(addr))
	f.c.mem.WriteBlock(addr, ct[:])
	delete(f.plain, addr)
}

func (f *functional) onMetaWriteBack(now sim.Time, addr uint64) {
	switch f.c.lay.RegionOf(addr) {
	case RegionMac:
		if m, ok := f.meta[addr]; ok {
			f.c.mem.WriteBlock(addr, m[:])
			delete(f.meta, addr)
		}
	default: // counter or derivative block: serialize current values
		img := f.c.ctrs.PackBlock(addr)
		f.c.mem.WriteBlock(addr, img[:])
	}
}

func (f *functional) onCleanEvict(addr uint64) {
	delete(f.plain, addr)
	delete(f.meta, addr)
}

// updateParentSlot recomputes the MAC of the block just written at addr
// (reading its fresh memory image) and stores it into the parent node's
// on-chip copy, which the timing path has just ensured is resident.
func (f *functional) updateParentSlot(addr uint64) {
	var content [BlockSize]byte
	f.c.mem.ReadBlock(addr, content[:])
	var mac [16]byte
	n := f.computeMac(addr, content[:], f.counterFor(addr), &mac)
	parent, slot, ok := f.c.lay.Geo.Parent(addr)
	if !ok {
		f.root.Set(mac[:n])
		return
	}
	node, okNode := f.meta[parent]
	if !okNode {
		// The timing path fetched and filled the parent; mirror it.
		node = new([BlockSize]byte)
		f.c.mem.ReadBlock(parent, node[:])
		f.meta[parent] = node
	}
	lo, hi := f.c.lay.Geo.MacOffset(slot)
	copy(node[lo:hi], mac[:n])
}

// updateRoot refreshes the root register after the top tree node was
// written back.
func (f *functional) updateRoot(addr uint64) {
	var content [BlockSize]byte
	f.c.mem.ReadBlock(addr, content[:])
	var mac [16]byte
	n := f.computeMac(addr, content[:], f.counterFor(addr), &mac)
	f.root.Set(mac[:n])
}

// onReencBlock moves one off-chip block of a re-encrypting page from the
// old major counter to the new one. Called before the minor is reset, so
// the old counter is still reconstructible.
func (f *functional) onReencBlock(now sim.Time, blk, oldMajor uint64) {
	var ct, pt [BlockSize]byte
	f.c.mem.ReadBlock(blk, ct[:])
	oldCtr := f.c.ctrs.ValueWithMajor(blk, oldMajor)
	if f.c.cfg.Auth != config.AuthNone {
		f.verify(now, blk, ct[:], oldCtr) //secmemlint:ignore verifydrop verify records the tamper; re-encryption proceeds to observe post-tamper behavior
	}
	f.decrypt(pt[:], ct[:], blk, oldCtr)
	// New counter: the already-bumped major with a zeroed minor.
	page := f.c.ctrs.PageAddr(blk)
	newCtr := f.c.ctrs.ValueWithMajor(blk, f.c.ctrs.Major(page))
	newCtr &^= (1 << uint(f.c.cfg.MinorBits)) - 1
	var ct2 [BlockSize]byte
	f.encrypt(ct2[:], pt[:], blk, newCtr)
	f.c.mem.WriteBlock(blk, ct2[:])
}

// reencryptAll re-encrypts the entire backing store under a new key epoch
// (monolithic/global counter wrap) and rebuilds the Merkle tree, since
// every MAC is keyed by the epoch too.
func (f *functional) reencryptAll(now sim.Time) {
	// Phase 1: recover plaintext of every written data block under the old
	// epoch (on-chip copies are already plaintext).
	type rec struct {
		addr uint64
		pt   [BlockSize]byte
	}
	var blocks []rec
	f.c.mem.ForEachBlock(func(addr uint64) {
		if f.c.lay.RegionOf(addr) != RegionData {
			return
		}
		var r rec
		r.addr = addr
		if p, ok := f.plain[addr]; ok {
			r.pt = *p
		} else {
			var ct [BlockSize]byte
			f.c.mem.ReadBlock(addr, ct[:])
			f.decrypt(r.pt[:], ct[:], addr, f.counterFor(addr))
		}
		blocks = append(blocks, r)
	})
	// Phase 2: switch epochs and re-encrypt. Pad generation for distinct
	// blocks is independent, so the blocks encrypt in parallel level-batch
	// style and write back serially in address order — the same bytes the
	// interleaved loop would produce, since encryption reads nothing a
	// write-back changes.
	f.epoch++
	f.rekey()
	sort.Slice(blocks, func(i, j int) bool { return blocks[i].addr < blocks[j].addr })
	cts := make([][BlockSize]byte, len(blocks))
	switch f.c.cfg.Enc {
	case config.EncNone, config.EncDirect:
		parallelMac(f.c.cfg.HashWorkers, len(blocks), func(i int) {
			f.encrypt(cts[i][:], blocks[i].pt[:], blocks[i].addr, f.counterFor(blocks[i].addr))
		})
	default:
		// Counter modes: carve the sorted blocks into contiguous runs and
		// generate each run's pads with one batched BlockPads call — the
		// whole-memory re-encryption is the largest transfer the machine
		// ever makes, so it is where amortized per-block seed setup pays.
		ctrs := make([]uint64, len(blocks))
		for i := range blocks {
			ctrs[i] = f.counterFor(blocks[i].addr)
		}
		var runs [][2]int
		for lo := 0; lo < len(blocks); {
			hi := lo + 1
			for hi < len(blocks) && blocks[hi].addr == blocks[hi-1].addr+BlockSize {
				hi++
			}
			runs = append(runs, [2]int{lo, hi})
			lo = hi
		}
		pads := make([]byte, len(blocks)*BlockSize)
		parallelMac(f.c.cfg.HashWorkers, len(runs), func(r int) {
			lo, hi := runs[r][0], runs[r][1]
			f.pads.BlockPads(pads[lo*BlockSize:hi*BlockSize], blocks[lo].addr, ctrs[lo:hi])
		})
		for i := range blocks {
			pad := pads[i*BlockSize : (i+1)*BlockSize]
			for b := 0; b < BlockSize; b++ {
				cts[i][b] = blocks[i].pt[b] ^ pad[b]
			}
		}
	}
	for i, r := range blocks {
		f.c.mem.WriteBlock(r.addr, cts[i][:])
	}
	if f.c.cfg.Auth != config.AuthNone {
		f.rebuildTree(now)
	}
}

// rebuildTree recomputes every MAC bottom-up for all written blocks (the
// epoch key change invalidates them all).
func (f *functional) rebuildTree(now sim.Time) {
	geo := f.c.lay.Geo
	// Collect written in-tree blocks per level (-1 = leaves), including
	// nodes that exist only as on-chip copies.
	level := make(map[int][]uint64)
	add := func(addr uint64) {
		if addr >= geo.LeafBytes {
			if f.c.lay.RegionOf(addr) == RegionMac {
				l := geo.LevelOf(addr)
				if _, seen := sliceContains(level[l], addr); !seen {
					level[l] = append(level[l], addr)
				}
			}
			return
		}
		if _, seen := sliceContains(level[-1], addr); !seen {
			level[-1] = append(level[-1], addr)
		}
	}
	f.c.mem.ForEachBlock(add)
	for addr := range f.meta {
		add(addr)
	}
	var batch []chainLink
	for l := -1; l < geo.NumLevels(); l++ {
		blocks := level[l]
		sort.Slice(blocks, func(i, j int) bool { return blocks[i] < blocks[j] })
		// Level batch, in three phases. Applying a level's MACs only writes
		// into the next level up (parent slots), never into this level, so
		// gathering the whole level's contents up front reads exactly the
		// bytes the one-at-a-time loop would.
		batch = batch[:0]
		for _, addr := range blocks {
			var lk chainLink
			if m, ok := f.meta[addr]; ok {
				lk.content = *m
			} else if f.c.mem.HasBlock(addr) {
				f.c.mem.ReadBlock(addr, lk.content[:])
			} else {
				continue
			}
			lk.addr, lk.ctr = addr, f.counterFor(addr)
			batch = append(batch, lk)
		}
		// All MACs of one level are independent: hash them in parallel —
		// the paper's "levels authenticated in parallel", here applied to
		// the rebuild after an epoch change.
		parallelMac(f.c.cfg.HashWorkers, len(batch), func(i int) {
			lk := &batch[i]
			lk.macLen = f.computeMac(lk.addr, lk.content[:], lk.ctr, &lk.mac)
		})
		for i := range batch {
			addr := batch[i].addr
			mac, n := batch[i].mac, batch[i].macLen
			parent, slot, ok := geo.Parent(addr)
			if !ok {
				f.root.Set(mac[:n])
				continue
			}
			lo, hi := geo.MacOffset(slot)
			if m, okm := f.meta[parent]; okm {
				copy(m[lo:hi], mac[:n])
				// The on-chip copy now differs from memory; it must be
				// written back eventually or the new MAC is lost.
				f.c.l2.SetDirty(parent)
			} else {
				var pc [BlockSize]byte
				f.c.mem.ReadBlock(parent, pc[:])
				copy(pc[lo:hi], mac[:n])
				f.c.mem.WriteBlock(parent, pc[:])
				if _, seen := sliceContains(level[geo.LevelOf(parent)], parent); !seen {
					level[geo.LevelOf(parent)] = append(level[geo.LevelOf(parent)], parent)
				}
			}
		}
	}
}

func sliceContains(s []uint64, v uint64) (int, bool) {
	for i, x := range s {
		if x == v {
			return i, true
		}
	}
	return 0, false
}

// Peek copies the current plaintext of an on-chip data block.
func (f *functional) peek(addr uint64, dst []byte) bool {
	p, ok := f.plain[addr]
	if !ok {
		return false
	}
	copy(dst, p[:])
	return true
}

// Poke overwrites bytes within an on-chip data block's plaintext.
func (f *functional) poke(addr uint64, off int, src []byte) bool {
	p, ok := f.plain[addr]
	if !ok {
		return false
	}
	copy(p[off:], src)
	return true
}
