package core

import (
	"crypto/subtle"
	"sort"

	"secmem/internal/aescipher"
	"secmem/internal/config"
	"secmem/internal/gcmmode"
	"secmem/internal/merkle"
	"secmem/internal/sha1sum"
	"secmem/internal/sim"
)

// Tamper records one detected authentication failure.
type Tamper struct {
	Cycle  sim.Time
	Addr   uint64
	Region Region
}

// functional is the byte-moving half of the controller. Every hook is
// invoked from the corresponding timing path, so the functional view of
// what is on-chip always matches the cache models.
type functional struct {
	c *Controller
	//secmemlint:secret — AES memory-encryption key (on-chip only)
	key [16]byte
	//secmemlint:secret — SHA-1 MAC key for the AuthSHA1 configuration
	shaKey []byte
	epoch  byte
	pads   *gcmmode.PadGen
	direct *aescipher.Cipher

	// plain holds decrypted data blocks currently resident on-chip; meta
	// holds the contents of on-chip Merkle nodes. Counter-block contents
	// live in the counter store's maps and are (de)serialized at the edge.
	//
	//secmemlint:secret — plaintext cache-block contents; must never leave the chip unencrypted
	plain map[uint64]*[BlockSize]byte
	meta  map[uint64]*[BlockSize]byte

	root    merkle.Root
	tampers []Tamper
}

func newFunctional(c *Controller) *functional {
	f := &functional{
		c:     c,
		plain: make(map[uint64]*[BlockSize]byte),
		meta:  make(map[uint64]*[BlockSize]byte),
	}
	// A fixed deterministic key keeps runs reproducible; key management is
	// explicitly out of the paper's scope (Section 4.4).
	for i := range f.key {
		f.key[i] = byte(i*67 + 13)
	}
	f.shaKey = []byte("secmem-sha1-authentication-key!!")
	f.rekey()
	return f
}

// rekey derives the pad generator for the current key epoch. A whole-memory
// re-encryption changes the epoch, which flows into both initialization
// vectors, giving the "new AES key" effect of prior-work counter overflow
// handling.
func (f *functional) rekey() {
	f.pads = gcmmode.NewAES128PadGen(f.key[:], 2*f.epoch, 2*f.epoch+1)
	f.direct = aescipher.MustNew(f.key[:])
}

func (f *functional) tamper(now sim.Time, addr uint64) {
	f.tampers = append(f.tampers, Tamper{Cycle: now, Addr: addr, Region: f.c.lay.RegionOf(addr)})
	f.c.Stats.TamperDetected++
	f.c.mTamper.Inc()
	f.c.rec.Instant("txn", "tamper", uint64(now))
}

// counterFor returns the counter value bound into a block's MAC and pad.
func (f *functional) counterFor(addr uint64) uint64 {
	if f.c.ctrs == nil {
		return 0
	}
	return f.c.ctrs.Value(addr)
}

// encrypt produces the memory image of a data block under counter ctr.
//
//secmemlint:hotpath
func (f *functional) encrypt(dst, src []byte, addr, ctr uint64) {
	switch f.c.cfg.Enc {
	case config.EncNone:
		copy(dst, src[:BlockSize])
	case config.EncDirect:
		for i := 0; i < BlockSize; i += 16 {
			f.direct.Encrypt(dst[i:], src[i:])
		}
	default:
		f.pads.EncryptBlock(dst, src, addr, ctr)
	}
}

// decrypt inverts encrypt.
//
//secmemlint:hotpath
func (f *functional) decrypt(dst, src []byte, addr, ctr uint64) {
	switch f.c.cfg.Enc {
	case config.EncNone:
		copy(dst, src[:BlockSize])
	case config.EncDirect:
		for i := 0; i < BlockSize; i += 16 {
			f.direct.Decrypt(dst[i:], src[i:])
		}
	default:
		f.pads.EncryptBlock(dst, src, addr, ctr) // counter mode is symmetric
	}
}

// computeMac fills mac with the authentication code for a block's memory
// image and returns its length in bytes (0 when authentication is off).
// The out-array form keeps per-transfer MAC generation off the heap on the
// GCM path — this is called for every fill, write-back, and tree walk step.
//
//secmemlint:hotpath
func (f *functional) computeMac(addr uint64, content []byte, ctr uint64, mac *[16]byte) int {
	switch f.c.cfg.Auth {
	case config.AuthGCM:
		tag, n := f.pads.MAC(content, addr, ctr, f.c.cfg.MACBits)
		*mac = tag
		return n
	case config.AuthSHA1:
		return copy(mac[:], sha1sum.MAC(f.shaKey, addr, ctr, content, f.c.cfg.MACBits))
	default:
		return 0
	}
}

// nodeContent returns a Merkle node's bytes, preferring the trusted on-chip
// copy, and reports whether the copy was on-chip.
func (f *functional) nodeContent(addr uint64, buf *[BlockSize]byte) (onChip bool) {
	if m, ok := f.meta[addr]; ok {
		*buf = *m
		return true
	}
	f.c.mem.ReadBlock(addr, buf[:])
	return false
}

// verify checks a fetched block's MAC against its parent, walking up the
// tree through off-chip parents until an on-chip node or the root register.
// Unwritten blocks (never stored by this run) are skipped: their MACs were
// never initialized, exactly like real memory before first use.
func (f *functional) verify(now sim.Time, addr uint64, content []byte, ctr uint64) bool {
	if !f.c.mem.HasBlock(addr) && isZero(content) {
		return true
	}
	var mac [16]byte
	n := f.computeMac(addr, content, ctr, &mac)
	parent, slot, ok := f.c.lay.Geo.Parent(addr)
	if !ok {
		want, set := f.root.Get()
		if !set {
			return true
		}
		if subtle.ConstantTimeCompare(mac[:n], want) != 1 {
			f.tamper(now, addr)
			return false
		}
		return true
	}
	var pbuf [BlockSize]byte
	onChip := f.nodeContent(parent, &pbuf)
	if !onChip {
		// The parent itself came from untrusted memory: verify it first.
		if !f.verify(now, parent, pbuf[:], f.counterFor(parent)) {
			return false
		}
	}
	lo, hi := f.c.lay.Geo.MacOffset(slot)
	if subtle.ConstantTimeCompare(mac[:n], pbuf[lo:hi]) != 1 {
		f.tamper(now, addr)
		return false
	}
	return true
}

func isZero(b []byte) bool {
	for _, v := range b {
		if v != 0 {
			return false
		}
	}
	return true
}

// --- fill hooks -----------------------------------------------------------

func (f *functional) onDataFill(now sim.Time, addr uint64) {
	var ct, pt [BlockSize]byte
	f.c.mem.ReadBlock(addr, ct[:])
	if f.c.cfg.Auth != config.AuthNone {
		f.verify(now, addr, ct[:], f.counterFor(addr)) //secmemlint:ignore verifydrop verify records the tamper; the simulator continues to observe post-tamper behavior
	}
	f.decrypt(pt[:], ct[:], addr, f.counterFor(addr))
	f.plain[addr] = &pt
}

func (f *functional) onMacFill(now sim.Time, addr uint64) {
	var buf [BlockSize]byte
	f.c.mem.ReadBlock(addr, buf[:])
	f.verify(now, addr, buf[:], f.counterFor(addr)) //secmemlint:ignore verifydrop verify records the tamper; the simulator continues to observe post-tamper behavior
	f.meta[addr] = &buf
}

func (f *functional) onCounterFill(now sim.Time, ctrBlk uint64) {
	var img [BlockSize]byte
	f.c.mem.ReadBlock(ctrBlk, img[:])
	if f.c.cfg.AuthenticateCounters && f.c.cfg.Auth != config.AuthNone && f.c.inTree(ctrBlk) {
		f.verify(now, ctrBlk, img[:], f.counterFor(ctrBlk)) //secmemlint:ignore verifydrop verify records the tamper; the simulator continues to observe post-tamper behavior
	}
	// The hardware trusts what memory says: install the fetched counters.
	// Without counter authentication this is where a replayed counter block
	// silently rolls counters back — the Section 4.3 vulnerability.
	f.c.ctrs.UnpackBlock(ctrBlk, img[:])
}

// --- write-back hooks ------------------------------------------------------

func (f *functional) onDataWriteBack(now sim.Time, addr uint64) {
	pt, ok := f.plain[addr]
	if !ok {
		pt = new([BlockSize]byte)
	}
	var ct [BlockSize]byte
	f.encrypt(ct[:], pt[:], addr, f.counterFor(addr))
	f.c.mem.WriteBlock(addr, ct[:])
	delete(f.plain, addr)
}

func (f *functional) onMetaWriteBack(now sim.Time, addr uint64) {
	switch f.c.lay.RegionOf(addr) {
	case RegionMac:
		if m, ok := f.meta[addr]; ok {
			f.c.mem.WriteBlock(addr, m[:])
			delete(f.meta, addr)
		}
	default: // counter or derivative block: serialize current values
		img := f.c.ctrs.PackBlock(addr)
		f.c.mem.WriteBlock(addr, img[:])
	}
}

func (f *functional) onCleanEvict(addr uint64) {
	delete(f.plain, addr)
	delete(f.meta, addr)
}

// updateParentSlot recomputes the MAC of the block just written at addr
// (reading its fresh memory image) and stores it into the parent node's
// on-chip copy, which the timing path has just ensured is resident.
func (f *functional) updateParentSlot(addr uint64) {
	var content [BlockSize]byte
	f.c.mem.ReadBlock(addr, content[:])
	var mac [16]byte
	n := f.computeMac(addr, content[:], f.counterFor(addr), &mac)
	parent, slot, ok := f.c.lay.Geo.Parent(addr)
	if !ok {
		f.root.Set(mac[:n])
		return
	}
	node, okNode := f.meta[parent]
	if !okNode {
		// The timing path fetched and filled the parent; mirror it.
		node = new([BlockSize]byte)
		f.c.mem.ReadBlock(parent, node[:])
		f.meta[parent] = node
	}
	lo, hi := f.c.lay.Geo.MacOffset(slot)
	copy(node[lo:hi], mac[:n])
}

// updateRoot refreshes the root register after the top tree node was
// written back.
func (f *functional) updateRoot(addr uint64) {
	var content [BlockSize]byte
	f.c.mem.ReadBlock(addr, content[:])
	var mac [16]byte
	n := f.computeMac(addr, content[:], f.counterFor(addr), &mac)
	f.root.Set(mac[:n])
}

// onReencBlock moves one off-chip block of a re-encrypting page from the
// old major counter to the new one. Called before the minor is reset, so
// the old counter is still reconstructible.
func (f *functional) onReencBlock(now sim.Time, blk, oldMajor uint64) {
	var ct, pt [BlockSize]byte
	f.c.mem.ReadBlock(blk, ct[:])
	oldCtr := f.c.ctrs.ValueWithMajor(blk, oldMajor)
	if f.c.cfg.Auth != config.AuthNone {
		f.verify(now, blk, ct[:], oldCtr) //secmemlint:ignore verifydrop verify records the tamper; re-encryption proceeds to observe post-tamper behavior
	}
	f.decrypt(pt[:], ct[:], blk, oldCtr)
	// New counter: the already-bumped major with a zeroed minor.
	page := f.c.ctrs.PageAddr(blk)
	newCtr := f.c.ctrs.ValueWithMajor(blk, f.c.ctrs.Major(page))
	newCtr &^= (1 << uint(f.c.cfg.MinorBits)) - 1
	var ct2 [BlockSize]byte
	f.encrypt(ct2[:], pt[:], blk, newCtr)
	f.c.mem.WriteBlock(blk, ct2[:])
}

// reencryptAll re-encrypts the entire backing store under a new key epoch
// (monolithic/global counter wrap) and rebuilds the Merkle tree, since
// every MAC is keyed by the epoch too.
func (f *functional) reencryptAll(now sim.Time) {
	// Phase 1: recover plaintext of every written data block under the old
	// epoch (on-chip copies are already plaintext).
	type rec struct {
		addr uint64
		pt   [BlockSize]byte
	}
	var blocks []rec
	f.c.mem.ForEachBlock(func(addr uint64) {
		if f.c.lay.RegionOf(addr) != RegionData {
			return
		}
		var r rec
		r.addr = addr
		if p, ok := f.plain[addr]; ok {
			r.pt = *p
		} else {
			var ct [BlockSize]byte
			f.c.mem.ReadBlock(addr, ct[:])
			f.decrypt(r.pt[:], ct[:], addr, f.counterFor(addr))
		}
		blocks = append(blocks, r)
	})
	// Phase 2: switch epochs and re-encrypt.
	f.epoch++
	f.rekey()
	for _, r := range blocks {
		var ct [BlockSize]byte
		f.encrypt(ct[:], r.pt[:], r.addr, f.counterFor(r.addr))
		f.c.mem.WriteBlock(r.addr, ct[:])
	}
	if f.c.cfg.Auth != config.AuthNone {
		f.rebuildTree(now)
	}
}

// rebuildTree recomputes every MAC bottom-up for all written blocks (the
// epoch key change invalidates them all).
func (f *functional) rebuildTree(now sim.Time) {
	geo := f.c.lay.Geo
	// Collect written in-tree blocks per level (-1 = leaves), including
	// nodes that exist only as on-chip copies.
	level := make(map[int][]uint64)
	add := func(addr uint64) {
		if addr >= geo.LeafBytes {
			if f.c.lay.RegionOf(addr) == RegionMac {
				l := geo.LevelOf(addr)
				if _, seen := sliceContains(level[l], addr); !seen {
					level[l] = append(level[l], addr)
				}
			}
			return
		}
		if _, seen := sliceContains(level[-1], addr); !seen {
			level[-1] = append(level[-1], addr)
		}
	}
	f.c.mem.ForEachBlock(add)
	for addr := range f.meta {
		add(addr)
	}
	for l := -1; l < geo.NumLevels(); l++ {
		blocks := level[l]
		sort.Slice(blocks, func(i, j int) bool { return blocks[i] < blocks[j] })
		for _, addr := range blocks {
			var content [BlockSize]byte
			if m, ok := f.meta[addr]; ok {
				content = *m
			} else if f.c.mem.HasBlock(addr) {
				f.c.mem.ReadBlock(addr, content[:])
			} else {
				continue
			}
			var mac [16]byte
			n := f.computeMac(addr, content[:], f.counterFor(addr), &mac)
			parent, slot, ok := geo.Parent(addr)
			if !ok {
				f.root.Set(mac[:n])
				continue
			}
			lo, hi := geo.MacOffset(slot)
			if m, okm := f.meta[parent]; okm {
				copy(m[lo:hi], mac[:n])
				// The on-chip copy now differs from memory; it must be
				// written back eventually or the new MAC is lost.
				f.c.l2.SetDirty(parent)
			} else {
				var pc [BlockSize]byte
				f.c.mem.ReadBlock(parent, pc[:])
				copy(pc[lo:hi], mac[:n])
				f.c.mem.WriteBlock(parent, pc[:])
				if _, seen := sliceContains(level[geo.LevelOf(parent)], parent); !seen {
					level[geo.LevelOf(parent)] = append(level[geo.LevelOf(parent)], parent)
				}
			}
		}
	}
}

func sliceContains(s []uint64, v uint64) (int, bool) {
	for i, x := range s {
		if x == v {
			return i, true
		}
	}
	return 0, false
}

// Peek copies the current plaintext of an on-chip data block.
func (f *functional) peek(addr uint64, dst []byte) bool {
	p, ok := f.plain[addr]
	if !ok {
		return false
	}
	copy(dst, p[:])
	return true
}

// Poke overwrites bytes within an on-chip data block's plaintext.
func (f *functional) poke(addr uint64, off int, src []byte) bool {
	p, ok := f.plain[addr]
	if !ok {
		return false
	}
	copy(p[off:], src)
	return true
}
