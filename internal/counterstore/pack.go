package counterstore

import (
	"encoding/binary"
	"fmt"
)

// This file implements the byte-level serialization of counter blocks used
// by functional mode: the processor trusts what it reads from memory, so the
// simulated DRAM must hold real counter bytes that can be rolled back by the
// attacker — that is exactly the Section 4.3 counter-replay surface.
//
// A split counter block packs the 64-bit major counter followed by
// PageBlocks minor counters of MinorBits each, bit-contiguously — for the
// paper's 7-bit minors and 64-block pages that is exactly 512 bits, one
// cache block. Monolithic blocks pack 512/Bits counters of Bits bits.

// PackBlock serializes the counters stored in the counter block at
// ctrBlock into a 64-byte image.
func (s *Store) PackBlock(ctrBlock uint64) [BlockSize]byte {
	var out [BlockSize]byte
	if ctrBlock >= s.cfg.Regions.DerivBase {
		// Derivative counters: 32 x 16-bit values (low 16 bits of the
		// stored counter; the on-chip value is authoritative).
		first := s.cfg.Regions.DirectBase + (ctrBlock-s.cfg.Regions.DerivBase)/BlockSize*derivPerBlock*BlockSize
		for i := 0; i < derivPerBlock; i++ {
			binary.BigEndian.PutUint16(out[i*2:], uint16(s.values[first+uint64(i)*BlockSize]))
		}
		return out
	}
	if ctrBlock < s.cfg.Regions.DirectBase {
		panic(fmt.Sprintf("counterstore: %#x is not a counter block", ctrBlock))
	}
	idx := (ctrBlock - s.cfg.Regions.DirectBase) / BlockSize
	switch s.cfg.Org {
	case OrgSplit:
		page := idx * uint64(s.cfg.PageBlocks) * BlockSize
		bw := newBitWriter(out[:])
		bw.write(s.majors[page], 64)
		for i := 0; i < s.cfg.PageBlocks; i++ {
			bw.write(s.minors[page+uint64(i)*BlockSize], uint(s.cfg.MinorBits))
		}
		return out
	default:
		perBlock := uint64(512 / s.counterBits())
		first := idx * perBlock * BlockSize
		bw := newBitWriter(out[:])
		for i := uint64(0); i < perBlock; i++ {
			bw.write(s.values[first+i*BlockSize], uint(s.counterBits()))
		}
		return out
	}
}

// UnpackBlock deserializes a 64-byte counter block image into the store,
// overwriting the affected counters. This is the "trust what memory says"
// step a real memory controller performs on a counter-cache fill; calling it
// with attacker-modified bytes reproduces the counter-replay vulnerability
// when counter authentication is disabled.
func (s *Store) UnpackBlock(ctrBlock uint64, img []byte) {
	if len(img) < BlockSize {
		panic("counterstore: short counter block image")
	}
	if ctrBlock >= s.cfg.Regions.DerivBase {
		first := s.cfg.Regions.DirectBase + (ctrBlock-s.cfg.Regions.DerivBase)/BlockSize*derivPerBlock*BlockSize
		for i := 0; i < derivPerBlock; i++ {
			s.values[first+uint64(i)*BlockSize] = uint64(binary.BigEndian.Uint16(img[i*2:]))
		}
		return
	}
	if ctrBlock < s.cfg.Regions.DirectBase {
		panic(fmt.Sprintf("counterstore: %#x is not a counter block", ctrBlock))
	}
	idx := (ctrBlock - s.cfg.Regions.DirectBase) / BlockSize
	switch s.cfg.Org {
	case OrgSplit:
		page := idx * uint64(s.cfg.PageBlocks) * BlockSize
		br := newBitReader(img)
		s.majors[page] = br.read(64)
		for i := 0; i < s.cfg.PageBlocks; i++ {
			s.minors[page+uint64(i)*BlockSize] = br.read(uint(s.cfg.MinorBits))
		}
	default:
		perBlock := uint64(512 / s.counterBits())
		first := idx * perBlock * BlockSize
		br := newBitReader(img)
		for i := uint64(0); i < perBlock; i++ {
			s.values[first+i*BlockSize] = br.read(uint(s.counterBits()))
		}
	}
}

type bitWriter struct {
	buf []byte
	pos uint // bit position
}

func newBitWriter(buf []byte) *bitWriter { return &bitWriter{buf: buf} }

func (w *bitWriter) write(v uint64, bits uint) {
	for i := int(bits) - 1; i >= 0; i-- {
		if v>>uint(i)&1 == 1 {
			w.buf[w.pos/8] |= 1 << (7 - w.pos%8)
		}
		w.pos++
	}
}

type bitReader struct {
	buf []byte
	pos uint
}

func newBitReader(buf []byte) *bitReader { return &bitReader{buf: buf} }

func (r *bitReader) read(bits uint) uint64 {
	var v uint64
	for i := uint(0); i < bits; i++ {
		v <<= 1
		if r.buf[r.pos/8]>>(7-r.pos%8)&1 == 1 {
			v |= 1
		}
		r.pos++
	}
	return v
}
