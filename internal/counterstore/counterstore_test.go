package counterstore

import (
	"testing"
	"testing/quick"

	"secmem/internal/cache"
	"secmem/internal/config"
)

func regions() Regions {
	return Regions{
		DataBytes:  1 << 20,
		DirectBase: 1 << 20,
		MacBase:    2 << 20,
		DerivBase:  3 << 20,
	}
}

func splitStore() *Store {
	return New(Config{
		Org: OrgSplit, MinorBits: 7, PageBlocks: 64,
		Regions: regions(),
		Cache:   &cache.Config{Name: "snc", SizeBytes: 4096, Ways: 8, BlockBytes: 64},
	})
}

func monoStore(bits int) *Store {
	return New(Config{
		Org: OrgMono, Bits: bits,
		Regions: regions(),
		Cache:   &cache.Config{Name: "snc", SizeBytes: 4096, Ways: 8, BlockBytes: 64},
	})
}

func TestSplitValueConcatenatesMajorMinor(t *testing.T) {
	s := splitStore()
	const blk = 0x2040
	if got := s.Value(blk); got != 0 {
		t.Fatalf("initial value = %d", got)
	}
	v, ov := s.Increment(blk)
	if v != 1 || ov.Kind != NoOverflow {
		t.Fatalf("first increment = (%d, %v)", v, ov)
	}
	s.BumpMajor(s.PageAddr(blk))
	if got := s.Value(blk); got != 1<<7|1 {
		t.Errorf("value after major bump = %d, want %d", got, 1<<7|1)
	}
	if got := s.ValueWithMajor(blk, 0); got != 1 {
		t.Errorf("ValueWithMajor(0) = %d, want 1", got)
	}
}

func TestSplitMinorOverflowTriggersPageReenc(t *testing.T) {
	s := splitStore()
	const blk = 64 * 100 // page 1 (blocks 64..127)
	var ov Overflow
	for i := 0; i < 127; i++ {
		_, ov = s.Increment(blk)
		if ov.Kind != NoOverflow {
			t.Fatalf("premature overflow at increment %d", i+1)
		}
	}
	_, ov = s.Increment(blk) // 128th: 7-bit minor wraps
	if ov.Kind != PageOverflow {
		t.Fatalf("no page overflow at wrap: %+v", ov)
	}
	if want := uint64(4096); ov.PageAddr != want {
		t.Errorf("page addr = %#x, want %#x", ov.PageAddr, want)
	}
	if s.minors[blk] != 0 {
		t.Errorf("minor not left at zero: %d", s.minors[blk])
	}
	if s.Stats.MinorOverflows != 1 {
		t.Errorf("minor overflows = %d", s.Stats.MinorOverflows)
	}
}

func TestMonoOverflow(t *testing.T) {
	s := monoStore(8)
	const blk = 0
	for i := 0; i < 255; i++ {
		if _, ov := s.Increment(blk); ov.Kind != NoOverflow {
			t.Fatalf("premature overflow at %d", i)
		}
	}
	_, ov := s.Increment(blk)
	if ov.Kind != FullOverflow {
		t.Fatalf("256th increment: %+v", ov)
	}
	if s.Value(blk) != 0 {
		t.Errorf("counter not wrapped: %d", s.Value(blk))
	}
	if s.Stats.FullOverflows != 1 {
		t.Errorf("full overflows = %d", s.Stats.FullOverflows)
	}
}

func TestMono64NeverOverflows(t *testing.T) {
	s := monoStore(64)
	for i := 0; i < 1000; i++ {
		if _, ov := s.Increment(0); ov.Kind != NoOverflow {
			t.Fatal("64-bit counter overflowed")
		}
	}
	if s.Value(0) != 1000 {
		t.Errorf("value = %d", s.Value(0))
	}
}

func TestGlobalCounterSharedAcrossBlocks(t *testing.T) {
	s := New(Config{Org: OrgGlobal, Bits: 32, Regions: regions(),
		Cache: &cache.Config{Name: "snc", SizeBytes: 4096, Ways: 8, BlockBytes: 64}})
	v1, _ := s.Increment(0)
	v2, _ := s.Increment(64)
	v3, _ := s.Increment(0)
	if v1 != 1 || v2 != 2 || v3 != 3 {
		t.Errorf("global sequence = %d,%d,%d", v1, v2, v3)
	}
	// Stored per-block values are the encryption-time snapshots.
	if s.Value(64) != 2 {
		t.Errorf("stored value = %d, want 2", s.Value(64))
	}
}

func TestCounterBlockAddrDensity(t *testing.T) {
	r := regions()
	split := splitStore()
	// Split: one counter block per 4 KB page.
	if a, b := split.CounterBlockAddr(0), split.CounterBlockAddr(4095); a != b {
		t.Error("split: same page mapped to different counter blocks")
	}
	if a, b := split.CounterBlockAddr(0), split.CounterBlockAddr(4096); a == b {
		t.Error("split: adjacent pages share a counter block")
	}
	// Mono64: 8 counters per block -> 512B of data per counter block.
	m64 := monoStore(64)
	if a, b := m64.CounterBlockAddr(0), m64.CounterBlockAddr(511); a != b {
		t.Error("mono64: blocks within 512B straddle counter blocks")
	}
	if a, b := m64.CounterBlockAddr(0), m64.CounterBlockAddr(512); a == b {
		t.Error("mono64: 512B apart share a counter block")
	}
	// Mono8: 64 counters per block -> 4 KB of data per counter block, the
	// same reach as split (which is the point of the comparison).
	m8 := monoStore(8)
	if a, b := m8.CounterBlockAddr(0), m8.CounterBlockAddr(4095); a != b {
		t.Error("mono8: 4KB of data straddles counter blocks")
	}
	// MAC blocks map to the derivative region.
	if a := split.CounterBlockAddr(r.MacBase); a < r.DerivBase {
		t.Errorf("MAC counter at %#x, below derivative base", a)
	}
}

func TestDerivativeCountersIndependent(t *testing.T) {
	s := splitStore()
	mac := regions().MacBase + 128
	v, ov := s.Increment(mac)
	if v != 1 || ov.Kind != NoOverflow {
		t.Fatalf("deriv increment = (%d, %v)", v, ov)
	}
	if s.Stats.DerivIncrements != 1 || s.Stats.Increments != 0 {
		t.Errorf("stats = %+v", s.Stats)
	}
	if s.Value(mac) != 1 {
		t.Errorf("deriv value = %d", s.Value(mac))
	}
}

func TestGrowthTracking(t *testing.T) {
	s := monoStore(64)
	for i := 0; i < 10; i++ {
		s.Increment(0x40)
	}
	for i := 0; i < 3; i++ {
		s.Increment(0x80)
	}
	// MAC-block increments must not count toward data growth.
	s.Increment(regions().MacBase)
	n, blk := s.FastestCounter()
	if n != 10 || blk != 0x40 {
		t.Errorf("fastest = (%d, %#x), want (10, 0x40)", n, blk)
	}
	if s.TotalIncrements() != 13 {
		t.Errorf("total = %d, want 13", s.TotalIncrements())
	}
}

func TestCacheLookupHitMissHalfMiss(t *testing.T) {
	s := splitStore()
	res, _, ctrBlk := s.CacheLookup(0, 100)
	if res != Miss {
		t.Fatalf("first lookup = %v, want Miss", res)
	}
	// Fill completing at cycle 300.
	s.CacheFill(ctrBlk, 300)
	// Lookup at 200 while the fetch is outstanding: half miss ready at 300.
	res, ready, _ := s.CacheLookup(0, 200)
	if res != HalfMiss || ready != 300 {
		t.Fatalf("second lookup = (%v, %d), want (HalfMiss, 300)", res, ready)
	}
	// Lookup after completion: hit.
	res, ready, _ = s.CacheLookup(4000, 400) // same page -> same counter block
	if res != Hit || ready != 400 {
		t.Fatalf("third lookup = (%v, %d), want (Hit, 400)", res, ready)
	}
	st := s.Stats
	if st.Hits != 1 || st.HalfMisses != 1 || st.Misses != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.HitRate() != 1.0/3 {
		t.Errorf("hit rate = %v", st.HitRate())
	}
}

func TestCacheFillEviction(t *testing.T) {
	s := New(Config{
		Org: OrgSplit, MinorBits: 7, PageBlocks: 64,
		Regions: regions(),
		// Tiny fully-mapped cache: 2 blocks total.
		Cache: &cache.Config{Name: "snc", SizeBytes: 128, Ways: 2, BlockBytes: 64},
	})
	_, _, b0 := s.CacheLookup(0, 0)
	s.CacheFill(b0, 10)
	s.CacheDirty(b0)
	_, _, b1 := s.CacheLookup(4096, 0)
	s.CacheFill(b1, 10)
	_, _, b2 := s.CacheLookup(8192, 0)
	ev, evicted := s.CacheFill(b2, 10)
	if !evicted || ev.Addr != b0 || !ev.Dirty {
		t.Errorf("eviction = %+v (%v), want dirty %#x", ev, evicted, b0)
	}
	if s.CacheContains(b0) {
		t.Error("evicted counter block still resident")
	}
}

func TestResetAll(t *testing.T) {
	s := splitStore()
	s.Increment(0)
	s.BumpMajor(0)
	s.ResetAll()
	if s.Value(0) != 0 || s.Major(0) != 0 {
		t.Error("ResetAll left state behind")
	}
}

func TestSeedUniquenessAcrossWritebacks(t *testing.T) {
	// Property: the sequence of (value) returned by repeated increments of
	// one block never repeats until a page re-encryption intervenes, and
	// with major bumps applied on overflow it never repeats at all. This is
	// the pad-reuse-freedom invariant the scheme's security rests on.
	f := func(nRaw uint16) bool {
		n := int(nRaw%2000) + 1
		s := splitStore()
		const blk = 0
		seen := map[uint64]bool{0: true} // initial value used by first encryption
		for i := 0; i < n; i++ {
			v, ov := s.Increment(blk)
			if ov.Kind == PageOverflow {
				s.BumpMajor(s.PageAddr(blk))
				v = s.Value(blk)
			}
			if seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestFromSystem(t *testing.T) {
	sc := config.Default()
	cs := FromSystem(sc, regions())
	if cs.Org != OrgSplit || cs.MinorBits != 7 || cs.PageBlocks != 64 {
		t.Errorf("split mapping wrong: %+v", cs)
	}
	sc.Enc = config.EncCounterMono
	sc.MonoCounterBits = 16
	cs = FromSystem(sc, regions())
	if cs.Org != OrgMono || cs.Bits != 16 {
		t.Errorf("mono mapping wrong: %+v", cs)
	}
	sc.Enc = config.EncCounterGlobal
	cs = FromSystem(sc, regions())
	if cs.Org != OrgGlobal {
		t.Errorf("global mapping wrong: %+v", cs)
	}
	sc.Enc = config.EncNone
	cs = FromSystem(sc, regions())
	if cs.Org != OrgSplit {
		t.Errorf("GCM-only mapping should be split: %+v", cs)
	}
}

func TestBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad split geometry did not panic")
		}
	}()
	New(Config{Org: OrgSplit, MinorBits: 0, PageBlocks: 64, Regions: regions()})
}
