package counterstore

import "testing"

// FuzzUnpackBlock feeds arbitrary 64-byte images to the counter-block
// deserializer — exactly what an attacker controls in the Section 4.3
// threat model. It must never panic, and packing what was unpacked must be
// the identity (the parse is a bijection on the block image).
func FuzzUnpackBlock(f *testing.F) {
	f.Add(make([]byte, 64), uint8(0))
	f.Add(append(make([]byte, 63), 0xFF), uint8(1))
	seed := make([]byte, 64)
	for i := range seed {
		seed[i] = byte(i * 7)
	}
	f.Add(seed, uint8(2))
	f.Fuzz(func(t *testing.T, img []byte, region uint8) {
		if len(img) < 64 {
			return
		}
		img = img[:64]
		s := splitStore()
		var ctrBlock uint64
		switch region % 3 {
		case 0: // split direct counter block
			ctrBlock = s.CounterBlockAddr(0)
		case 1: // another page's counter block
			ctrBlock = s.CounterBlockAddr(8192)
		default: // derivative block
			ctrBlock = s.CounterBlockAddr(regions().MacBase)
		}
		s.UnpackBlock(ctrBlock, img)
		back := s.PackBlock(ctrBlock)
		for i := range back {
			if back[i] != img[i] {
				t.Fatalf("pack(unpack(img)) differs at byte %d: %#x != %#x", i, back[i], img[i])
			}
		}
	})
}

// FuzzMonoUnpack does the same for each monolithic width.
func FuzzMonoUnpack(f *testing.F) {
	f.Add(make([]byte, 64), uint8(8))
	f.Add(make([]byte, 64), uint8(64))
	f.Fuzz(func(t *testing.T, img []byte, bitsRaw uint8) {
		if len(img) < 64 {
			return
		}
		img = img[:64]
		bits := []int{8, 16, 32, 64}[bitsRaw%4]
		s := monoStore(bits)
		ctrBlock := s.CounterBlockAddr(0)
		s.UnpackBlock(ctrBlock, img)
		back := s.PackBlock(ctrBlock)
		for i := range back {
			if back[i] != img[i] {
				t.Fatalf("bits=%d: pack(unpack(img)) differs at byte %d", bits, i)
			}
		}
	})
}
