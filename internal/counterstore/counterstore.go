// Package counterstore implements the counter organizations compared by the
// paper — split counters (the contribution), monolithic per-block counters
// of 8/16/32/64 bits (prior work), and a globally incremented counter — plus
// the on-chip counter cache (sequence-number cache) through which all of
// them are accessed, and the growth-rate accounting behind Table 2.
//
// The store always maintains functional counter values (they are needed for
// seed construction, overflow detection, and growth statistics even in
// timing-only runs). It also manages derivative counters for Merkle-tree MAC
// blocks: those share the counter cache but live in their own region and are
// 64-bit, so they never overflow (Section 4.3).
package counterstore

import (
	"fmt"

	"secmem/internal/cache"
	"secmem/internal/config"
	"secmem/internal/obsv"
	"secmem/internal/sim"
)

// BlockSize is the cache/memory block size in bytes.
const BlockSize = 64

// Derivative counters (Section 4.3) are 16 bits each, packed 32 to a
// block: wide enough that no metadata block plausibly wraps within a run,
// dense enough that the counter cache covers 2 KB of metadata per line.
const (
	derivBits     = 16
	derivPerBlock = BlockSize * 8 / derivBits
)

// Org is the counter organization.
type Org int

const (
	// OrgSplit is the paper's minor/major split counter.
	OrgSplit Org = iota
	// OrgMono is a monolithic per-block counter of Bits bits.
	OrgMono
	// OrgGlobal is a single on-chip counter; per-block values are stored for
	// decryption like 64-bit monolithic counters.
	OrgGlobal
)

// Regions tells the store where counter state lives in the physical address
// map and how to classify block addresses.
type Regions struct {
	// DataBytes is the size of the program-data region starting at 0.
	DataBytes uint64
	// DirectBase is the base of the direct-counter region.
	DirectBase uint64
	// MacBase is the base of the Merkle MAC region. Everything at or above
	// DirectBase (counter blocks and MAC blocks) is metadata covered by
	// derivative counters.
	MacBase uint64
	// DerivBase is the base of the derivative-counter region.
	DerivBase uint64
}

// Config parameterizes the store.
type Config struct {
	Org        Org
	Bits       int // monolithic/global counter width
	MinorBits  int // split minor width
	PageBlocks int // split encryption-page size in blocks
	Regions    Regions
	// Cache is the counter-cache geometry; nil disables caching (every
	// lookup is a miss), which no real configuration uses but tests may.
	Cache *cache.Config
}

// FromSystem derives the store configuration from a system config and the
// memory layout regions.
func FromSystem(sc config.SystemConfig, r Regions) Config {
	c := Config{
		Bits:       sc.MonoCounterBits,
		MinorBits:  sc.MinorBits,
		PageBlocks: sc.PageBlocks,
		Regions:    r,
	}
	switch sc.Enc {
	case config.EncCounterSplit:
		c.Org = OrgSplit
	case config.EncCounterGlobal:
		c.Org = OrgGlobal
	case config.EncCounterMono:
		c.Org = OrgMono
	default:
		// Authentication-only GCM (Figures 7 and 8) still maintains
		// per-block counters; they are organized as the paper's split
		// counters — that is the proposal being evaluated.
		c.Org = OrgSplit
	}
	cc := sc.CounterCache
	c.Cache = &cc
	return c
}

// OverflowKind classifies the consequence of a counter increment.
type OverflowKind int

const (
	// NoOverflow: the common case.
	NoOverflow OverflowKind = iota
	// PageOverflow: a split minor counter wrapped; the block's encryption
	// page must be re-encrypted under the next major counter.
	PageOverflow
	// FullOverflow: a monolithic or global counter wrapped; the whole
	// memory must be re-encrypted under a new key.
	FullOverflow
)

// Overflow describes an increment's overflow consequence.
type Overflow struct {
	Kind OverflowKind
	// PageAddr is the first data address of the affected encryption page
	// (PageOverflow only).
	PageAddr uint64
}

// LookupResult classifies a counter-cache access.
type LookupResult int

const (
	// Hit: counter on-chip and ready.
	Hit LookupResult = iota
	// HalfMiss: counter block already being fetched; ready when the
	// outstanding fetch completes. (The paper's Figure 6 "half miss".)
	HalfMiss
	// Miss: counter block must be fetched from memory.
	Miss
)

// Stats accumulates counter activity.
type Stats struct {
	Hits       uint64
	HalfMisses uint64
	Misses     uint64

	Increments      uint64 // data-block counter increments (write-backs)
	DerivIncrements uint64 // MAC-block counter increments
	MinorOverflows  uint64 // split: page re-encryptions triggered
	FullOverflows   uint64 // mono/global: whole-memory re-encryptions
}

// HitRate is hits over all lookups.
func (s Stats) HitRate() float64 {
	n := s.Hits + s.HalfMisses + s.Misses
	if n == 0 {
		return 1
	}
	return float64(s.Hits) / float64(n)
}

// Store holds all counter state for one simulated machine.
type Store struct {
	cfg Config

	// split state
	minors map[uint64]uint64 // data block addr -> minor value
	majors map[uint64]uint64 // page addr -> major value

	// mono/global/derivative state
	values map[uint64]uint64 // block addr -> counter value
	global uint64

	// growth accounting (Table 2): per-data-block increment counts.
	incr     map[uint64]uint64
	maxIncr  uint64
	maxBlock uint64

	cache   *cache.Cache
	pending map[uint64]sim.Time // counter block addr -> fetch completion

	// Observability handles; nil-safe.
	mHit      *obsv.Counter
	mHalfMiss *obsv.Counter
	mMiss     *obsv.Counter
	mIncr     *obsv.Counter
	mOverflow *obsv.Counter

	Stats Stats
}

// Instrument registers the counter cache's metrics in reg (may be nil).
func (s *Store) Instrument(reg *obsv.Registry) {
	s.mHit = reg.Counter("ctrcache.hit")
	s.mHalfMiss = reg.Counter("ctrcache.halfmiss")
	s.mMiss = reg.Counter("ctrcache.miss")
	s.mIncr = reg.Counter("ctrcache.incr")
	s.mOverflow = reg.Counter("ctrcache.overflow")
}

// New builds a store.
func New(cfg Config) *Store {
	if cfg.Org == OrgSplit {
		if cfg.MinorBits < 1 || cfg.MinorBits > 16 || cfg.PageBlocks <= 0 {
			panic(fmt.Sprintf("counterstore: bad split geometry %+v", cfg))
		}
	} else if cfg.Bits != 8 && cfg.Bits != 16 && cfg.Bits != 32 && cfg.Bits != 64 {
		panic(fmt.Sprintf("counterstore: bad counter width %d", cfg.Bits))
	}
	s := &Store{
		cfg:     cfg,
		minors:  make(map[uint64]uint64),
		majors:  make(map[uint64]uint64),
		values:  make(map[uint64]uint64),
		incr:    make(map[uint64]uint64),
		pending: make(map[uint64]sim.Time),
	}
	if cfg.Cache != nil {
		s.cache = cache.New(*cfg.Cache)
	}
	return s
}

// Config returns the store configuration.
func (s *Store) Config() Config { return s.cfg }

// Cache exposes the counter cache for statistics reporting.
func (s *Store) Cache() *cache.Cache { return s.cache }

// PageAddr returns the first data address of the encryption page holding
// addr (split organization).
func (s *Store) PageAddr(addr uint64) uint64 {
	pageBytes := uint64(s.cfg.PageBlocks) * BlockSize
	return addr / pageBytes * pageBytes
}

// isMeta reports whether addr is a metadata block (a counter block or a
// Merkle MAC block); metadata blocks are covered by derivative counters.
func (s *Store) isMeta(addr uint64) bool {
	return addr >= s.cfg.Regions.DirectBase
}

// CounterBlockAddr maps a protected block to the memory block holding its
// counter. Data blocks map into the direct-counter region with a density
// depending on the organization; MAC blocks map into the derivative-counter
// region at 64 bits per counter.
func (s *Store) CounterBlockAddr(addr uint64) uint64 {
	if s.isMeta(addr) {
		idx := (addr - s.cfg.Regions.DirectBase) / BlockSize
		return s.cfg.Regions.DerivBase + idx/derivPerBlock*BlockSize
	}
	idx := addr / BlockSize
	switch s.cfg.Org {
	case OrgSplit:
		// One counter block per encryption page: the major plus all minors.
		return s.cfg.Regions.DirectBase + idx/uint64(s.cfg.PageBlocks)*BlockSize
	default:
		perBlock := uint64(512 / s.counterBits())
		return s.cfg.Regions.DirectBase + idx/perBlock*BlockSize
	}
}

func (s *Store) counterBits() int {
	if s.cfg.Org == OrgGlobal {
		return 64 // stored per-block values are full width for decryption
	}
	return s.cfg.Bits
}

// Value returns the current counter value for a protected block, as used in
// the encryption/authentication seed. Split counters concatenate major and
// minor (major << minorBits | minor).
func (s *Store) Value(addr uint64) uint64 {
	if s.isMeta(addr) {
		return s.values[addr]
	}
	switch s.cfg.Org {
	case OrgSplit:
		return s.majors[s.PageAddr(addr)]<<uint(s.cfg.MinorBits) | s.minors[addr]
	default:
		return s.values[addr]
	}
}

// ValueWithMajor returns a split-counter value under an explicit major (the
// RSR uses the page's old major to decrypt blocks during re-encryption).
func (s *Store) ValueWithMajor(addr, major uint64) uint64 {
	return major<<uint(s.cfg.MinorBits) | s.minors[addr]
}

// Major returns the page's current major counter.
func (s *Store) Major(pageAddr uint64) uint64 { return s.majors[pageAddr] }

// Increment advances the block's counter for a write-back and reports any
// overflow consequence. For split counters, a wrapping minor is left at zero
// and the overflow handler (the RSR machinery in the core package) must call
// BumpMajor to advance the page; the returned overflow identifies the page.
func (s *Store) Increment(addr uint64) (newValue uint64, ov Overflow) {
	if s.isMeta(addr) {
		s.values[addr]++
		s.Stats.DerivIncrements++
		return s.values[addr], Overflow{}
	}
	s.Stats.Increments++
	s.mIncr.Inc()
	s.trackGrowth(addr)
	switch s.cfg.Org {
	case OrgSplit:
		m := s.minors[addr] + 1
		if m >= 1<<uint(s.cfg.MinorBits) {
			s.Stats.MinorOverflows++
			s.mOverflow.Inc()
			s.minors[addr] = 0
			return s.Value(addr), Overflow{Kind: PageOverflow, PageAddr: s.PageAddr(addr)}
		}
		s.minors[addr] = m
		return s.Value(addr), Overflow{}
	case OrgGlobal:
		s.global++
		var wrapped bool
		if s.cfg.Bits < 64 && s.global >= 1<<uint(s.cfg.Bits) {
			s.global = 0
			wrapped = true
			s.Stats.FullOverflows++
			s.mOverflow.Inc()
		}
		s.values[addr] = s.global
		if wrapped {
			return s.global, Overflow{Kind: FullOverflow}
		}
		return s.global, Overflow{}
	default: // OrgMono
		v := s.values[addr] + 1
		if s.cfg.Bits < 64 && v >= 1<<uint(s.cfg.Bits) {
			s.values[addr] = 0
			s.Stats.FullOverflows++
			s.mOverflow.Inc()
			return 0, Overflow{Kind: FullOverflow}
		}
		s.values[addr] = v
		return v, Overflow{}
	}
}

// BumpMajor advances a page's major counter and zeroes nothing: minors are
// reset per block as the RSR processes them (ResetMinor), matching Section
// 4.2's lazy ordering. It returns the old and new major values.
func (s *Store) BumpMajor(pageAddr uint64) (oldMajor, newMajor uint64) {
	oldMajor = s.majors[pageAddr]
	newMajor = oldMajor + 1
	s.majors[pageAddr] = newMajor
	return oldMajor, newMajor
}

// ResetMinor zeroes a block's minor counter (called as each block of a
// re-encrypting page is handled).
func (s *Store) ResetMinor(addr uint64) { s.minors[addr] = 0 }

// ResetAll zeroes every counter; whole-memory re-encryption (monolithic
// overflow key change) starts all counters over under the new key.
func (s *Store) ResetAll() {
	clear(s.minors)
	clear(s.majors)
	clear(s.values)
	s.global = 0
}

func (s *Store) trackGrowth(addr uint64) {
	if addr >= s.cfg.Regions.DataBytes {
		return
	}
	n := s.incr[addr] + 1
	s.incr[addr] = n
	if n > s.maxIncr {
		s.maxIncr = n
		s.maxBlock = addr
	}
}

// FastestCounter returns the largest per-block increment count seen and the
// block it belongs to — the "fastest-advancing counter" of Table 2.
func (s *Store) FastestCounter() (increments uint64, blockAddr uint64) {
	return s.maxIncr, s.maxBlock
}

// TotalIncrements returns total data write-backs, the global counter's
// growth (Table 2's Global32b column).
func (s *Store) TotalIncrements() uint64 { return s.Stats.Increments }

// ForEachIncrement visits every data block's write-back count. The Section
// 6.1 work-ratio analysis derives whole-memory and per-page re-encryption
// rates from this distribution.
func (s *Store) ForEachIncrement(fn func(blockAddr, count uint64)) {
	for a, n := range s.incr {
		fn(a, n)
	}
}

// ---------------------------------------------------------------------------
// Counter cache (sequence-number cache).

// CacheLookup performs the counter-cache access for a protected block at
// cycle now. It returns the classification, the cycle at which the counter
// is available on-chip (for Hit and HalfMiss), and the counter block address
// (which the caller fetches on a Miss).
func (s *Store) CacheLookup(addr uint64, now sim.Time) (res LookupResult, readyAt sim.Time, ctrBlock uint64) {
	ctrBlock = s.CounterBlockAddr(addr)
	if s.cache == nil {
		s.Stats.Misses++
		s.mMiss.Inc()
		return Miss, 0, ctrBlock
	}
	if s.cache.Lookup(ctrBlock, false) {
		// Skip the map probe outright when nothing is in flight — the
		// common case once fetches complete. No bulk staleness sweep here:
		// lookups are not monotone in now (background RSR fetches and
		// write-backs probe at earlier timestamps), so an entry that looks
		// stale to one access can still be a half-miss to another.
		if len(s.pending) != 0 {
			if t, ok := s.pending[ctrBlock]; ok {
				if t > now {
					s.Stats.HalfMisses++
					s.mHalfMiss.Inc()
					return HalfMiss, t, ctrBlock
				}
				delete(s.pending, ctrBlock)
			}
		}
		s.Stats.Hits++
		s.mHit.Inc()
		return Hit, now, ctrBlock
	}
	s.Stats.Misses++
	s.mMiss.Inc()
	return Miss, 0, ctrBlock
}

// CacheFill installs a fetched counter block that becomes valid at ready,
// returning any dirty victim that must be written back to memory.
func (s *Store) CacheFill(ctrBlock uint64, ready sim.Time) (ev cache.Eviction, evicted bool) {
	if s.cache == nil {
		return cache.Eviction{}, false
	}
	s.pending[ctrBlock] = ready
	return s.cache.Fill(ctrBlock, false)
}

// CacheDirty marks a resident counter block dirty (a counter increment
// modifies it); absent blocks are ignored (the caller has already arranged
// the fetch).
func (s *Store) CacheDirty(ctrBlock uint64) { s.cache.SetDirty(ctrBlock) }

// CacheContains reports counter-cache residence without side effects.
func (s *Store) CacheContains(ctrBlock uint64) bool {
	return s.cache != nil && s.cache.Contains(ctrBlock)
}
