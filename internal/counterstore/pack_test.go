package counterstore

import (
	"testing"
	"testing/quick"
)

func TestSplitPackRoundTrip(t *testing.T) {
	f := func(major uint64, minorSeeds [8]uint8, blkSel uint8) bool {
		s := splitStore()
		page := uint64(blkSel%4) * 4096
		s.majors[page] = major
		for i, m := range minorSeeds {
			s.minors[page+uint64(i)*64] = uint64(m % 128) // 7-bit
		}
		ctrBlk := s.CounterBlockAddr(page)
		img := s.PackBlock(ctrBlk)

		// Unpack into a fresh store and compare.
		s2 := splitStore()
		s2.UnpackBlock(ctrBlk, img[:])
		if s2.majors[page] != major {
			return false
		}
		for i := 0; i < 64; i++ {
			if s2.minors[page+uint64(i)*64] != s.minors[page+uint64(i)*64] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSplitPackIsExactlyOneBlock(t *testing.T) {
	// 64-bit major + 64 x 7-bit minors = 512 bits: the last bit written is
	// bit 511, so all 64 bytes are meaningful and a max-valued state fills
	// the final byte.
	s := splitStore()
	s.majors[0] = ^uint64(0)
	for i := 0; i < 64; i++ {
		s.minors[uint64(i)*64] = 127
	}
	img := s.PackBlock(s.CounterBlockAddr(0))
	for i, b := range img {
		if b != 0xFF {
			t.Fatalf("byte %d = %#x, want 0xFF (512-bit exact pack)", i, b)
		}
	}
}

func TestMonoPackRoundTrip(t *testing.T) {
	for _, bits := range []int{8, 16, 32, 64} {
		s := monoStore(bits)
		perBlock := 512 / bits
		for i := 0; i < perBlock; i++ {
			s.values[uint64(i)*64] = uint64(i*37+1) & (1<<uint(bits) - 1)
		}
		ctrBlk := s.CounterBlockAddr(0)
		img := s.PackBlock(ctrBlk)
		s2 := monoStore(bits)
		s2.UnpackBlock(ctrBlk, img[:])
		for i := 0; i < perBlock; i++ {
			a := uint64(i) * 64
			if s2.values[a] != s.values[a] {
				t.Errorf("bits=%d counter %d: %d != %d", bits, i, s2.values[a], s.values[a])
			}
		}
	}
}

func TestDerivPackRoundTrip(t *testing.T) {
	s := splitStore()
	r := regions()
	// Derivative counters cover metadata blocks starting at DirectBase,
	// 32 16-bit counters per block.
	for i := 0; i < 32; i++ {
		s.values[r.DirectBase+uint64(i)*64] = uint64(i)*1000 + 5
	}
	ctrBlk := s.CounterBlockAddr(r.DirectBase)
	if ctrBlk < r.DerivBase {
		t.Fatalf("metadata counter block %#x below deriv base", ctrBlk)
	}
	if other := s.CounterBlockAddr(r.DirectBase + 31*64); other != ctrBlk {
		t.Fatalf("32 metadata blocks must share one deriv block: %#x vs %#x", other, ctrBlk)
	}
	img := s.PackBlock(ctrBlk)
	s2 := splitStore()
	s2.UnpackBlock(ctrBlk, img[:])
	for i := 0; i < 32; i++ {
		a := r.DirectBase + uint64(i)*64
		if s2.values[a] != s.values[a]&0xFFFF {
			t.Errorf("deriv counter %d: %d != %d", i, s2.values[a], s.values[a]&0xFFFF)
		}
	}
}

func TestPackNonCounterBlockPanics(t *testing.T) {
	s := splitStore()
	defer func() {
		if recover() == nil {
			t.Fatal("PackBlock on data address did not panic")
		}
	}()
	s.PackBlock(0x40) // data region
}

func TestUnpackShortImagePanics(t *testing.T) {
	s := splitStore()
	defer func() {
		if recover() == nil {
			t.Fatal("short image did not panic")
		}
	}()
	s.UnpackBlock(s.CounterBlockAddr(0), make([]byte, 10))
}

func TestCounterReplayViaUnpack(t *testing.T) {
	// The attack surface end-to-end at the store level: pack, advance the
	// counter, then unpack the stale image — the counter rolls back.
	s := splitStore()
	s.Increment(0)
	ctrBlk := s.CounterBlockAddr(0)
	old := s.PackBlock(ctrBlk)
	s.Increment(0)
	if s.Value(0) != 2 {
		t.Fatalf("value = %d", s.Value(0))
	}
	s.UnpackBlock(ctrBlk, old[:]) // attacker replays the old counter block
	if s.Value(0) != 1 {
		t.Fatalf("replay did not roll counter back: %d", s.Value(0))
	}
}
