// Package reenc implements the re-encryption status registers (RSRs) of
// Section 4.2: the small register file that lets page re-encryption proceed
// in the background while the processor keeps executing. Each register tags
// one encryption page, holds the page's old major counter (needed to decrypt
// blocks still encrypted under it), and tracks per-block done bits.
//
// The timing of the re-encryption traffic itself (fetches, AES work, write
// backs) is orchestrated by the core package on the shared resource
// timelines; this package owns the register state, the allocation/stall
// policy, and the statistics behind the paper's Section 6.1 scalars (48% of
// blocks found on-chip, ~5717-cycle mean page re-encryption, stall-free
// operation with 8 RSRs).
package reenc

import (
	"fmt"

	"secmem/internal/obsv"
	"secmem/internal/sim"
)

// Register is one RSR.
type Register struct {
	PageAddr uint64
	OldMajor uint64
	// FreeAt is the cycle at which this register's re-encryption completes
	// and the register becomes reusable. A register is busy at time t iff
	// FreeAt > t and it has been allocated at least once.
	FreeAt    sim.Time
	StartedAt sim.Time
	done      []bool
	remaining int
	inUse     bool
}

// MarkDone sets a block's done bit, returning false if it was already set.
func (r *Register) MarkDone(blockIdx int) bool {
	if r.done[blockIdx] {
		return false
	}
	r.done[blockIdx] = true
	r.remaining--
	return true
}

// Done reports a block's done bit.
func (r *Register) Done(blockIdx int) bool { return r.done[blockIdx] }

// Remaining reports how many blocks are still to be re-encrypted.
func (r *Register) Remaining() int { return r.remaining }

// Stats accumulates re-encryption activity.
type Stats struct {
	PageReencs     uint64
	BlocksOnChip   uint64 // blocks found in L2 and handled lazily
	BlocksFetched  uint64 // blocks fetched from memory by the RSR
	TotalCycles    sim.Time
	MaxCycles      sim.Time
	SamePageStalls uint64   // write-back hit a page already re-encrypting
	AllocStalls    uint64   // no RSR free at request time
	StallCycles    sim.Time // total cycles write-backs waited on RSRs
	MaxConcurrent  int
}

// MeanCycles is the average page re-encryption duration.
func (s Stats) MeanCycles() float64 {
	if s.PageReencs == 0 {
		return 0
	}
	return float64(s.TotalCycles) / float64(s.PageReencs)
}

// OnChipFraction is the average fraction of page blocks found on-chip when
// re-encryption begins (the paper reports 48%).
func (s Stats) OnChipFraction() float64 {
	total := s.BlocksOnChip + s.BlocksFetched
	if total == 0 {
		return 0
	}
	return float64(s.BlocksOnChip) / float64(total)
}

// File is the RSR file.
type File struct {
	regs       []Register
	pageBlocks int
	Stats      Stats

	// Observability handles; nil-safe.
	mReenc  *obsv.Counter
	mStall  *obsv.Counter
	hCycles *obsv.Histogram
	rec     *obsv.Recorder
}

// Instrument registers the RSR file's metrics in reg and attaches the trace
// recorder. Either argument may be nil.
func (f *File) Instrument(reg *obsv.Registry, rec *obsv.Recorder) {
	f.mReenc = reg.Counter("rsr.pagereenc")
	f.mStall = reg.Counter("rsr.stall")
	f.hCycles = reg.Histogram("rsr.cycles")
	f.rec = rec
}

// NewFile builds a file of n registers for pageBlocks-block pages.
func NewFile(n, pageBlocks int) *File {
	if n <= 0 || pageBlocks <= 0 {
		panic(fmt.Sprintf("reenc: invalid file geometry n=%d pageBlocks=%d", n, pageBlocks))
	}
	f := &File{regs: make([]Register, n), pageBlocks: pageBlocks}
	for i := range f.regs {
		f.regs[i].done = make([]bool, pageBlocks)
	}
	return f
}

// Size reports the register count.
func (f *File) Size() int { return len(f.regs) }

// BusyCount reports how many registers are still re-encrypting at time
// now: the RSR occupancy the time-series sampler plots against the
// paper's "8 RSRs suffice" claim.
func (f *File) BusyCount(now sim.Time) int {
	n := 0
	for i := range f.regs {
		if r := &f.regs[i]; r.inUse && r.FreeAt > now {
			n++
		}
	}
	return n
}

// Busy returns the register currently re-encrypting page, if any is still
// in flight at time now.
func (f *File) Busy(now sim.Time, page uint64) *Register {
	for i := range f.regs {
		r := &f.regs[i]
		if r.inUse && r.FreeAt > now && r.PageAddr == page {
			return r
		}
	}
	return nil
}

// Allocate obtains a register for re-encrypting page starting no earlier
// than now, applying the paper's two stall rules: a write-back whose page is
// already being re-encrypted waits for that RSR to free, and a write-back
// that finds no free RSR waits for the earliest one. It returns the register
// and the cycle at which the re-encryption actually begins.
func (f *File) Allocate(now sim.Time, page, oldMajor uint64) (*Register, sim.Time) {
	start := now
	if b := f.Busy(now, page); b != nil {
		// Same-page overflow while still re-encrypting: stall until freed.
		f.Stats.SamePageStalls++
		f.mStall.Inc()
		f.Stats.StallCycles += b.FreeAt - now
		start = b.FreeAt
	}
	// Pick the earliest-free register.
	best := &f.regs[0]
	for i := 1; i < len(f.regs); i++ {
		if f.regs[i].FreeAt < best.FreeAt {
			best = &f.regs[i]
		}
	}
	if best.FreeAt > start {
		f.Stats.AllocStalls++
		f.mStall.Inc()
		f.Stats.StallCycles += best.FreeAt - start
		start = best.FreeAt
	}
	// Concurrency high-water mark: registers still in flight at start.
	inFlight := 1
	for i := range f.regs {
		if r := &f.regs[i]; r.inUse && r.FreeAt > start && r != best {
			inFlight++
		}
	}
	if inFlight > f.Stats.MaxConcurrent {
		f.Stats.MaxConcurrent = inFlight
	}

	best.PageAddr = page
	best.OldMajor = oldMajor
	best.StartedAt = start
	best.FreeAt = start // provisional until Complete
	best.inUse = true
	best.remaining = f.pageBlocks
	for i := range best.done {
		best.done[i] = false
	}
	f.Stats.PageReencs++
	f.mReenc.Inc()
	return best, start
}

// Complete records the re-encryption's finish time, freeing the register
// for allocations at or after completeAt.
func (f *File) Complete(r *Register, completeAt sim.Time) {
	if r.remaining != 0 {
		panic(fmt.Sprintf("reenc: completing page %#x with %d blocks pending", r.PageAddr, r.remaining))
	}
	if completeAt < r.StartedAt {
		panic("reenc: completion before start")
	}
	r.FreeAt = completeAt
	d := completeAt - r.StartedAt
	f.Stats.TotalCycles += d
	if d > f.Stats.MaxCycles {
		f.Stats.MaxCycles = d
	}
	f.hCycles.Observe(uint64(d))
	f.rec.SpanID("rsr", "reenc", uint64(r.StartedAt), uint64(completeAt), r.PageAddr)
}

// NoteOnChip counts a block handled lazily in cache.
func (f *File) NoteOnChip() { f.Stats.BlocksOnChip++ }

// NoteFetched counts a block fetched from memory.
func (f *File) NoteFetched() { f.Stats.BlocksFetched++ }

// StorageBits estimates the hardware cost of the file: per register a valid
// bit, a 20-bit encryption-page tag (a 1 GB memory has 2^18 4 KB pages), a
// 64-bit old major, and one done bit per block. For 8 RSRs this is just
// under the paper's "less than 150 bytes".
func (f *File) StorageBits() int {
	return len(f.regs) * (1 + 20 + 64 + f.pageBlocks)
}
