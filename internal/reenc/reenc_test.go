package reenc

import "testing"

func TestAllocateFreeRegister(t *testing.T) {
	f := NewFile(8, 64)
	r, start := f.Allocate(100, 0x1000, 3)
	if start != 100 {
		t.Errorf("start = %d, want 100 (no stall)", start)
	}
	if r.PageAddr != 0x1000 || r.OldMajor != 3 || r.Remaining() != 64 {
		t.Errorf("register = %+v", r)
	}
	if f.Stats.PageReencs != 1 || f.Stats.StallCycles != 0 {
		t.Errorf("stats = %+v", f.Stats)
	}
}

func TestDoneBits(t *testing.T) {
	f := NewFile(1, 4)
	r, _ := f.Allocate(0, 0, 0)
	if r.Done(2) {
		t.Error("done bit set at allocation")
	}
	if !r.MarkDone(2) {
		t.Error("first MarkDone returned false")
	}
	if r.MarkDone(2) {
		t.Error("second MarkDone returned true")
	}
	if !r.Done(2) || r.Remaining() != 3 {
		t.Errorf("state after MarkDone: done=%v remaining=%d", r.Done(2), r.Remaining())
	}
}

func TestCompleteTracksDuration(t *testing.T) {
	f := NewFile(2, 2)
	r, start := f.Allocate(50, 0x2000, 0)
	r.MarkDone(0)
	r.MarkDone(1)
	f.Complete(r, start+5000)
	if f.Stats.TotalCycles != 5000 || f.Stats.MaxCycles != 5000 {
		t.Errorf("stats = %+v", f.Stats)
	}
	if got := f.Stats.MeanCycles(); got != 5000 {
		t.Errorf("mean = %v", got)
	}
}

func TestCompleteWithPendingPanics(t *testing.T) {
	f := NewFile(1, 2)
	r, _ := f.Allocate(0, 0, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("Complete with pending blocks did not panic")
		}
	}()
	f.Complete(r, 100)
}

func TestSamePageStall(t *testing.T) {
	f := NewFile(8, 1)
	r, _ := f.Allocate(0, 0x3000, 0)
	r.MarkDone(0)
	f.Complete(r, 1000)
	// Another overflow on the same page at cycle 500: must wait until 1000.
	if b := f.Busy(500, 0x3000); b == nil {
		t.Fatal("Busy did not find in-flight page")
	}
	_, start := f.Allocate(500, 0x3000, 1)
	if start != 1000 {
		t.Errorf("start = %d, want 1000", start)
	}
	if f.Stats.SamePageStalls != 1 || f.Stats.StallCycles != 500 {
		t.Errorf("stats = %+v", f.Stats)
	}
	// After completion the page is no longer busy.
	if b := f.Busy(2000, 0x3000); b != nil {
		t.Error("Busy found freed register")
	}
}

func TestAllRegistersBusyStalls(t *testing.T) {
	f := NewFile(2, 1)
	r1, _ := f.Allocate(0, 0x1000, 0)
	r1.MarkDone(0)
	f.Complete(r1, 300)
	r2, _ := f.Allocate(0, 0x2000, 0)
	r2.MarkDone(0)
	f.Complete(r2, 500)
	// Third page at cycle 100: both busy; earliest frees at 300.
	_, start := f.Allocate(100, 0x3000, 0)
	if start != 300 {
		t.Errorf("start = %d, want 300", start)
	}
	if f.Stats.AllocStalls != 1 || f.Stats.StallCycles != 200 {
		t.Errorf("stats = %+v", f.Stats)
	}
}

func TestConcurrencyHighWaterMark(t *testing.T) {
	f := NewFile(4, 1)
	for i := 0; i < 3; i++ {
		r, start := f.Allocate(0, uint64(0x1000*(i+1)), 0)
		r.MarkDone(0)
		f.Complete(r, start+10000)
	}
	if f.Stats.MaxConcurrent != 3 {
		t.Errorf("max concurrent = %d, want 3", f.Stats.MaxConcurrent)
	}
}

func TestOnChipFraction(t *testing.T) {
	f := NewFile(1, 4)
	f.NoteOnChip()
	f.NoteOnChip()
	f.NoteFetched()
	f.NoteFetched()
	if got := f.Stats.OnChipFraction(); got != 0.5 {
		t.Errorf("on-chip fraction = %v", got)
	}
}

func TestStorageBits(t *testing.T) {
	f := NewFile(8, 64)
	bits := f.StorageBits()
	// The paper says the RSR file costs under 150 bytes.
	if bits > 150*8 {
		t.Errorf("storage = %d bits (%d bytes), exceeds paper's 150-byte bound", bits, bits/8)
	}
	if bits == 0 {
		t.Error("storage = 0")
	}
}

func TestZeroStatsAccessors(t *testing.T) {
	var s Stats
	if s.MeanCycles() != 0 || s.OnChipFraction() != 0 {
		t.Error("zero stats accessors nonzero")
	}
}

func TestBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewFile(0, ...) did not panic")
		}
	}()
	NewFile(0, 64)
}
