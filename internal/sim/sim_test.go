package sim

import (
	"testing"
	"testing/quick"
)

func TestResourceUncontended(t *testing.T) {
	var r Resource
	if got := r.Acquire(100, 10); got != 100 {
		t.Errorf("first acquire start = %d, want 100", got)
	}
	if got := r.Acquire(200, 10); got != 200 {
		t.Errorf("idle acquire start = %d, want 200", got)
	}
	if r.WaitedCycles() != 0 {
		t.Errorf("waited = %d, want 0", r.WaitedCycles())
	}
}

func TestResourceQueuing(t *testing.T) {
	var r Resource
	r.Acquire(0, 33)
	if got := r.Acquire(0, 33); got != 33 {
		t.Errorf("second start = %d, want 33", got)
	}
	if got := r.Acquire(10, 33); got != 66 {
		t.Errorf("third start = %d, want 66", got)
	}
	if r.BusyCycles() != 99 {
		t.Errorf("busy = %d, want 99", r.BusyCycles())
	}
	if r.WaitedCycles() != 33+56 {
		t.Errorf("waited = %d, want 89", r.WaitedCycles())
	}
	if r.Requests() != 3 {
		t.Errorf("requests = %d, want 3", r.Requests())
	}
	if r.Waited() != r.WaitedCycles() {
		t.Errorf("Waited() = %d disagrees with WaitedCycles() = %d", r.Waited(), r.WaitedCycles())
	}
}

func TestResourceUtilization(t *testing.T) {
	var r Resource
	if got := r.Utilization(0); got != 0 {
		t.Errorf("empty utilization over zero cycles = %v, want 0", got)
	}
	r.Acquire(0, 25)
	r.Acquire(50, 25)
	if got := r.Utilization(100); got != 0.5 {
		t.Errorf("utilization = %v, want 0.5 (50 busy of 100)", got)
	}
	if got := r.Utilization(200); got != 0.25 {
		t.Errorf("utilization = %v, want 0.25 (50 busy of 200)", got)
	}
	if got := r.Utilization(0); got != 0 {
		t.Errorf("utilization over zero cycles = %v, want 0", got)
	}
}

func TestPipelineUtilization(t *testing.T) {
	p := NewPipeline(2, 5, 80)
	if got := p.Utilization(100); got != 0 {
		t.Errorf("idle utilization = %v, want 0", got)
	}
	// Four issues occupy 4 x II = 20 slot-cycles across 2 engines.
	for i := 0; i < 4; i++ {
		p.Issue(0)
	}
	if got := p.Utilization(100); got != 0.1 {
		t.Errorf("utilization = %v, want 0.1 (20 of 2x100)", got)
	}
	if got := p.Utilization(0); got != 0 {
		t.Errorf("utilization over zero cycles = %v, want 0", got)
	}
}

func TestResourceMonotonicStarts(t *testing.T) {
	f := func(arrivals []uint16, occ uint8) bool {
		var r Resource
		var now, last Time
		o := Time(occ%50) + 1
		for _, a := range arrivals {
			now += Time(a % 100)
			start := r.Acquire(now, o)
			if start < now || start < last {
				return false
			}
			last = start
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestResourceReset(t *testing.T) {
	var r Resource
	r.Acquire(0, 100)
	r.Reset()
	if got := r.Acquire(0, 1); got != 0 {
		t.Errorf("post-reset start = %d, want 0", got)
	}
}

func TestPipelineSingleEngine(t *testing.T) {
	p := NewPipeline(1, 5, 80)
	// Back-to-back issues at cycle 0 stagger by II and complete II apart.
	if got := p.Issue(0); got != 80 {
		t.Errorf("first done = %d, want 80", got)
	}
	if got := p.Issue(0); got != 85 {
		t.Errorf("second done = %d, want 85", got)
	}
	if got := p.Issue(0); got != 90 {
		t.Errorf("third done = %d, want 90", got)
	}
	// After the pipeline drains, a new issue is unqueued.
	if got := p.Issue(1000); got != 1080 {
		t.Errorf("idle done = %d, want 1080", got)
	}
	if p.Issues() != 4 {
		t.Errorf("issues = %d, want 4", p.Issues())
	}
}

func TestPipelineTwoEngines(t *testing.T) {
	p := NewPipeline(2, 5, 80)
	// Two engines absorb two issues in the same cycle with no stagger.
	if got := p.Issue(0); got != 80 {
		t.Errorf("first done = %d", got)
	}
	if got := p.Issue(0); got != 80 {
		t.Errorf("second done = %d, want 80 (second engine)", got)
	}
	if got := p.Issue(0); got != 85 {
		t.Errorf("third done = %d, want 85", got)
	}
	if p.Engines() != 2 {
		t.Errorf("engines = %d", p.Engines())
	}
}

func TestPipelineIssueStart(t *testing.T) {
	p := NewPipeline(1, 10, 320)
	done, start := p.IssueStart(7)
	if start != 7 || done != 327 {
		t.Errorf("IssueStart = (%d, %d), want (327, 7)", done, start)
	}
	done, start = p.IssueStart(8)
	if start != 17 || done != 337 {
		t.Errorf("queued IssueStart = (%d, %d), want (337, 17)", done, start)
	}
}

func TestPipelineThroughputBound(t *testing.T) {
	// N issues at cycle 0 through a k-engine II-interval pipeline must
	// finish no earlier than latency + ceil(N/k - 1)*II.
	f := func(nRaw, kRaw, iiRaw uint8) bool {
		n := int(nRaw%40) + 1
		k := int(kRaw%4) + 1
		ii := Time(iiRaw%10) + 1
		p := NewPipeline(k, ii, 100)
		var last Time
		for i := 0; i < n; i++ {
			last = p.Issue(0)
		}
		perEngine := Time((n + k - 1) / k)
		want := 100 + (perEngine-1)*ii
		return last == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPipelineRejectsZeroEngines(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewPipeline(0, ...) did not panic")
		}
	}()
	NewPipeline(0, 1, 1)
}

func TestMaxHelpers(t *testing.T) {
	if Max(3, 5) != 5 || Max(5, 3) != 5 {
		t.Error("Max wrong")
	}
	if Max3(1, 9, 4) != 9 || Max3(9, 1, 4) != 9 || Max3(1, 4, 9) != 9 {
		t.Error("Max3 wrong")
	}
}
