// Package sim provides the timing primitives of the secure-memory simulator:
// a cycle type and timeline-reservation resource models.
//
// The simulator is transaction-ordered rather than event-driven: the CPU
// model walks the instruction stream in program order and each memory
// transaction greedily reserves the resources it needs (bus slots, DRAM
// service, crypto-engine issue slots) on shared timelines. A resource keeps
// the earliest cycle at which it is next free; a request arriving at cycle t
// starts at max(t, nextFree). This reproduces FIFO queuing delay and
// bandwidth saturation exactly when requests are presented in nondecreasing
// time order, which the in-order transaction walk guarantees up to small
// reordering between overlapping misses. That approximation is standard in
// interval simulation and is far below the noise the paper's relative-IPC
// results care about.
package sim

// Time is a point in simulated time, in processor cycles.
type Time = uint64

// Resource is a unit that serves one request at a time in FIFO order, each
// request occupying it for a caller-specified number of cycles. The zero
// value is a free resource at cycle 0.
type Resource struct {
	nextFree Time
	busy     Time // total occupied cycles, for utilization reporting
	requests uint64
	waited   Time // total queuing delay imposed on requests
}

// Acquire reserves the resource for occupancy cycles starting no earlier
// than now, returning the cycle at which service actually starts.
func (r *Resource) Acquire(now, occupancy Time) Time {
	start := now
	if r.nextFree > start {
		start = r.nextFree
	}
	r.waited += start - now
	r.nextFree = start + occupancy
	r.busy += occupancy
	r.requests++
	return start
}

// NextFree reports when the resource next becomes free.
func (r *Resource) NextFree() Time { return r.nextFree }

// BusyCycles reports the cumulative cycles the resource has been occupied.
func (r *Resource) BusyCycles() Time { return r.busy }

// Requests reports how many acquisitions have been made.
func (r *Resource) Requests() uint64 { return r.requests }

// Waited reports the cumulative queuing delay imposed on requests.
func (r *Resource) Waited() Time { return r.waited }

// WaitedCycles is an alias for Waited, kept alongside BusyCycles for the
// existing statistics call sites.
func (r *Resource) WaitedCycles() Time { return r.waited }

// Utilization reports the fraction of [0, end) the resource was occupied.
// It returns 0 for end == 0 and can exceed 1 only if callers keep acquiring
// past end (the caller chooses end, normally the run's final cycle).
func (r *Resource) Utilization(end Time) float64 {
	if end == 0 {
		return 0
	}
	return float64(r.busy) / float64(end)
}

// Reset returns the resource to its initial idle state.
func (r *Resource) Reset() { *r = Resource{} }

// Pipeline models a k-way pipelined functional unit: each of the k engines
// can accept a new operation every II cycles, and every operation completes
// Latency cycles after it issues. This matches the paper's AES engine
// ("16-stage pipeline and a total latency of 80 processor cycles": II = 5)
// and SHA-1 engine (32 stages, 320 cycles: II = 10), and the two-AES-engine
// counter-prediction configuration (k = 2).
type Pipeline struct {
	II      Time
	Latency Time
	next    []Time // per-engine next issue slot
	issues  uint64
	busy    Time
}

// NewPipeline creates a k-engine pipeline with the given initiation interval
// and latency. k must be >= 1.
func NewPipeline(k int, ii, latency Time) *Pipeline {
	if k < 1 {
		panic("sim: pipeline needs at least one engine")
	}
	return &Pipeline{II: ii, Latency: latency, next: make([]Time, k)}
}

// Issue schedules one operation at or after now on the least-loaded engine
// and returns the cycle at which its result is available.
func (p *Pipeline) Issue(now Time) Time {
	done, _ := p.IssueStart(now)
	return done
}

// IssueStart is Issue but also reports the issue cycle, which callers use
// when an operation's inputs become available at different times.
func (p *Pipeline) IssueStart(now Time) (done, start Time) {
	best := 0
	for i := 1; i < len(p.next); i++ {
		if p.next[i] < p.next[best] {
			best = i
		}
	}
	start = now
	if p.next[best] > start {
		start = p.next[best]
	}
	p.next[best] = start + p.II
	p.issues++
	p.busy += p.II
	return start + p.Latency, start
}

// Issues reports how many operations have been issued.
func (p *Pipeline) Issues() uint64 { return p.issues }

// BusyCycles reports cumulative issue-slot occupancy across engines.
func (p *Pipeline) BusyCycles() Time { return p.busy }

// Utilization reports issue-slot occupancy over [0, end) across all
// engines: busy cycles divided by engines x end. 0 for end == 0.
func (p *Pipeline) Utilization(end Time) float64 {
	if end == 0 {
		return 0
	}
	return float64(p.busy) / (float64(end) * float64(len(p.next)))
}

// Engines reports the configured engine count.
func (p *Pipeline) Engines() int { return len(p.next) }

// Reset clears all engine timelines.
func (p *Pipeline) Reset() {
	for i := range p.next {
		p.next[i] = 0
	}
	p.issues = 0
	p.busy = 0
}

// Max returns the later of two times.
func Max(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// Max3 returns the latest of three times.
func Max3(a, b, c Time) Time { return Max(Max(a, b), c) }
