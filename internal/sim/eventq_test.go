package sim

import (
	"math/rand"
	"sort"
	"testing"
)

// drain pops everything, asserting keys are returned nondecreasing.
func drain(t *testing.T, c *Calendar[int]) []int {
	t.Helper()
	var out []int
	var last Time
	for first := true; ; first = false {
		v, k, ok := c.Pop()
		if !ok {
			break
		}
		if !first && k < last {
			t.Fatalf("keys out of order: %d after %d", k, last)
		}
		last = k
		out = append(out, v)
	}
	if c.Len() != 0 {
		t.Fatalf("Len=%d after drain", c.Len())
	}
	return out
}

func TestCalendarOrdersRandomKeys(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c := NewCalendar[int](16, 0)
	type ev struct {
		key Time
		id  int
	}
	var ref []ev
	for i := 0; i < 5000; i++ {
		k := Time(rng.Intn(4096))
		c.Push(k, i)
		ref = append(ref, ev{k, i})
	}
	// Reference order: stable sort by key preserves insertion order among
	// equal keys — exactly the FIFO tie-break Calendar promises.
	sort.SliceStable(ref, func(i, j int) bool { return ref[i].key < ref[j].key })
	got := drain(t, c)
	if len(got) != len(ref) {
		t.Fatalf("popped %d of %d", len(got), len(ref))
	}
	for i := range ref {
		if got[i] != ref[i].id {
			t.Fatalf("pop %d: got id %d want %d", i, got[i], ref[i].id)
		}
	}
}

func TestCalendarFIFOOnEqualKeys(t *testing.T) {
	c := NewCalendar[int](8, 0)
	for i := 0; i < 100; i++ {
		c.Push(42, i)
	}
	got := drain(t, c)
	for i, v := range got {
		if v != i {
			t.Fatalf("equal-key pop %d: got %d", i, v)
		}
	}
}

func TestCalendarInterleavedPushPop(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	c := NewCalendar[int](4, 0)
	id := 0
	popped := 0
	now := Time(0)
	for round := 0; round < 2000; round++ {
		// Monotone event insertion with occasional same-cycle bursts — the
		// sharded runner's access pattern.
		now += Time(rng.Intn(3))
		burst := 1 + rng.Intn(3)
		for i := 0; i < burst; i++ {
			c.Push(now, id)
			id++
		}
		if rng.Intn(2) == 0 {
			if _, _, ok := c.Pop(); ok {
				popped++
			}
		}
	}
	popped += len(drain(t, c))
	if popped != id {
		t.Fatalf("popped %d of %d pushed", popped, id)
	}
}

func TestCalendarSparseFarFutureKeys(t *testing.T) {
	c := NewCalendar[int](2, 0)
	keys := []Time{1 << 40, 3, 1 << 20, 900000, 5}
	for i, k := range keys {
		c.Push(k, i)
	}
	sorted := append([]Time(nil), keys...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, want := range sorted {
		_, k, ok := c.Pop()
		if !ok || k != want {
			t.Fatalf("got key %d ok=%v, want %d", k, ok, want)
		}
	}
}

func TestCalendarStragglerBehindSweep(t *testing.T) {
	c := NewCalendar[int](1, 0)
	c.Push(100, 0)
	if _, k, _ := c.Pop(); k != 100 {
		t.Fatalf("got %d", k)
	}
	// Key far behind the sweep position must still come out before a
	// larger pending key.
	c.Push(200, 1)
	c.Push(2, 2)
	if v, k, _ := c.Pop(); k != 2 || v != 2 {
		t.Fatalf("straggler lost: key=%d val=%d", k, v)
	}
	if v, k, _ := c.Pop(); k != 200 || v != 1 {
		t.Fatalf("got key=%d val=%d", k, v)
	}
}

func TestCalendarGrowPreservesOrder(t *testing.T) {
	c := NewCalendar[int](8, 0)
	var ids []int
	// Force several doublings with many equal keys in flight.
	for i := 0; i < 10000; i++ {
		c.Push(Time(i/64), i)
		ids = append(ids, i)
	}
	got := drain(t, c)
	for i := range ids {
		if got[i] != ids[i] {
			t.Fatalf("pop %d: got %d want %d", i, got[i], ids[i])
		}
	}
}

func TestCalendarEmptyPop(t *testing.T) {
	c := NewCalendar[int](0, 0) // width clamps to 1
	if _, _, ok := c.Pop(); ok {
		t.Fatal("pop on empty succeeded")
	}
	c.Push(1, 1)
	c.Pop()
	if _, _, ok := c.Pop(); ok {
		t.Fatal("second pop succeeded")
	}
}

// TestCalendarSealSemantics: sealing is idempotent, visible, popped
// through freely, and turns a late Push into a panic.
func TestCalendarSealSemantics(t *testing.T) {
	c := NewCalendar[int](4, 0)
	for i := 0; i < 10; i++ {
		c.Push(Time(i), i)
	}
	if c.Sealed() {
		t.Fatal("new calendar reports sealed")
	}
	c.Seal()
	c.Seal() // idempotent
	if !c.Sealed() {
		t.Fatal("Seal did not stick")
	}
	if got := drain(t, c); len(got) != 10 {
		t.Fatalf("drained %d of 10 after seal", len(got))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Push on sealed calendar did not panic")
		}
	}()
	c.Push(99, 99)
}

// TestCalendarRecycleReuse: a recycled calendar is empty, unsealed, and
// orders a fresh load correctly; steady-state recycling does not allocate
// (the segment-pool contract of the pipelined router).
func TestCalendarRecycleReuse(t *testing.T) {
	c := NewCalendar[int](4, 1024)
	load := func(n int) {
		for i := 0; i < n; i++ {
			c.Push(Time(i/3), i)
		}
	}
	load(500)
	c.Seal()
	if got := drain(t, c); len(got) != 500 {
		t.Fatalf("first load drained %d", len(got))
	}
	c.Recycle()
	if c.Len() != 0 || c.Sealed() {
		t.Fatalf("after Recycle: Len=%d Sealed=%v", c.Len(), c.Sealed())
	}
	load(500)
	got := drain(t, c)
	for i, v := range got {
		if v != i {
			t.Fatalf("recycled order broken at %d: got %d", i, v)
		}
	}
	// Steady state: fill/drain/recycle within the pre-carved capacity must
	// not touch the allocator.
	allocs := testing.AllocsPerRun(20, func() {
		load(200)
		for {
			if _, _, ok := c.Pop(); !ok {
				break
			}
		}
		c.Recycle()
	})
	if allocs != 0 {
		t.Fatalf("recycled fill/drain allocates %.1f per run, want 0", allocs)
	}
}

// TestCalendarStragglerAfterMonotoneRun: after a long monotone fast-path
// run has advanced the sweep deep into a year, a straggler far behind the
// sweep must rewind it and dequeue first.
func TestCalendarStragglerAfterMonotoneRun(t *testing.T) {
	c := NewCalendar[int](8, 0)
	// Monotone run: push and pop in lockstep so the sweep walks forward.
	for i := 0; i < 3000; i++ {
		c.Push(Time(i*2), i)
		if _, k, ok := c.Pop(); !ok || k != Time(i*2) {
			t.Fatalf("monotone pop %d: key %d ok=%v", i, k, ok)
		}
	}
	// Queue now empty, sweep standing near key 6000. A straggler at key 1
	// and a contemporary at key 6100: the straggler must win.
	c.Push(6100, -1)
	c.Push(1, -2)
	if v, k, _ := c.Pop(); k != 1 || v != -2 {
		t.Fatalf("straggler after monotone run: got key=%d val=%d, want key=1 val=-2", k, v)
	}
	if v, k, _ := c.Pop(); k != 6100 || v != -1 {
		t.Fatalf("post-straggler pop: got key=%d val=%d", k, v)
	}
}

// TestCalendarGrowthAtExactLoadBoundary pins the doubling trigger: with
// the minimum 8 buckets, push number 129 (n == 8*calLoad == growAt) must
// grow the array without dropping or reordering anything — including the
// equal-key FIFO runs spanning the boundary.
func TestCalendarGrowthAtExactLoadBoundary(t *testing.T) {
	c := NewCalendar[int](4, 0)
	boundary := minCalBuckets * calLoad
	for i := 0; i <= boundary; i++ { // boundary+1 pushes: the last one grows
		c.Push(Time(i/16), i) // runs of 16 equal keys across the boundary
	}
	if len(c.buckets) != minCalBuckets*2 {
		t.Fatalf("after %d pushes: %d buckets, want %d", boundary+1, len(c.buckets), minCalBuckets*2)
	}
	got := drain(t, c)
	if len(got) != boundary+1 {
		t.Fatalf("drained %d of %d", len(got), boundary+1)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("order broken at %d after boundary growth: got %d", i, v)
		}
	}
}

// TestCalendarSizeHintEdges: zero and negative hints must behave exactly
// like an unhinted calendar — no pre-carving, no panic, correct order.
func TestCalendarSizeHintEdges(t *testing.T) {
	for _, hint := range []int{0, -1, -1 << 20} {
		c := NewCalendar[int](4, hint)
		if len(c.buckets) != minCalBuckets {
			t.Fatalf("hint %d: %d buckets, want %d", hint, len(c.buckets), minCalBuckets)
		}
		for i := 0; i < 1000; i++ {
			c.Push(Time(i/5), i)
		}
		got := drain(t, c)
		for i, v := range got {
			if v != i {
				t.Fatalf("hint %d: order broken at %d: got %d", hint, i, v)
			}
		}
	}
}
