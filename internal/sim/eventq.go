package sim

// Calendar is a deterministic calendar queue: a bucketed priority queue
// keyed on cycle timestamps, the classic O(1) event-list structure for
// discrete-event simulators. Events with equal keys dequeue in insertion
// order (FIFO), so a simulation fed from a Calendar is reproducible
// regardless of how ties arise — the property the sharded sim core's
// determinism argument rests on (DESIGN.md §15).
//
// Keys map to buckets of fixed width; a "year" is one sweep of the bucket
// array. Dequeue scans from the current bucket, consuming only events that
// fall inside the bucket's current-year window, and falls back to a direct
// minimum search when the queue is sparse (all events far in the future).
// Each bucket keeps a head index instead of shifting its slice, so dequeue
// is O(1) and a bucket's capacity is reused year after year; the bucket
// array doubles when occupancy grows.
//
// Calendar is not safe for concurrent use; in the sharded core each slice
// owns one exclusively (the sharedstate analyzer enforces the partition).
type Calendar[T any] struct {
	buckets []calBucket[T]
	shift   uint // log2 of the key span per bucket
	mask    int  // len(buckets)-1; bucket count is a power of two
	n       int
	growAt  int // occupancy that triggers a bucket-array doubling

	cur    int  // bucket the dequeue sweep is standing on
	curTop Time // exclusive upper key bound of buckets[cur] in this year

	// sealed marks the calendar as a closed epoch: the producer has
	// promised no further pushes, so a consumer that drains it empty has
	// seen every event it will ever carry. The pipelined router seals a
	// segment before handing it across the goroutine boundary; Push on a
	// sealed calendar panics, turning an ordering bug into a loud failure
	// instead of a silently reordered stream.
	sealed bool
}

type calEntry[T any] struct {
	key Time
	val T
}

// calBucket is one bucket: entries[head:] are live, sorted by key with
// equal keys in arrival order. Consumed entries advance head; when the
// bucket empties it resets to entries[:0], keeping its capacity.
type calBucket[T any] struct {
	head    int
	entries []calEntry[T]
}

// minCalBuckets keeps the sweep cheap for tiny queues while still
// exercising the wrap-around logic.
const minCalBuckets = 8

// calLoad is the average bucket occupancy that triggers growth. Occupancy
// only governs the straggler insertion walk — in-order pushes append and
// head-index pops are O(1) regardless — so a generous factor trades a
// little walk length for far fewer redistributions.
const calLoad = 16

// NewCalendar builds an empty queue. width is the key span covered by one
// bucket, rounded up to a power of two so bucket indexing is a shift; a
// width near the mean inter-event gap keeps operations O(1). Widths below
// 1 are clamped to 1. The width only steers performance — dequeue order is
// identical for every width. sizeHint, when positive, pre-sizes the bucket
// array and carves all initial bucket capacity from one backing allocation,
// so bulk loads (the sharded runner buffers a slice's whole stream) never
// pay for incremental growth.
func NewCalendar[T any](width Time, sizeHint int) *Calendar[T] {
	var shift uint
	for Time(1)<<shift < width {
		shift++
	}
	c := &Calendar[T]{shift: shift}
	nb := minCalBuckets
	for nb*calLoad < sizeHint {
		nb <<= 1
	}
	c.reset(nb)
	if sizeHint > 0 {
		// One backing array, carved into equal per-bucket capacities with
		// slack for uneven key distributions; a bucket that outgrows its
		// chunk falls back to an ordinary append-copy.
		per := sizeHint/nb + 8
		backing := make([]calEntry[T], nb*per)
		for i := range c.buckets {
			c.buckets[i].entries = backing[i*per : i*per : (i+1)*per]
		}
	}
	return c
}

func (c *Calendar[T]) reset(buckets int) {
	c.buckets = make([]calBucket[T], buckets)
	c.mask = buckets - 1
	c.growAt = buckets * calLoad
	c.cur = 0
	c.curTop = Time(1) << c.shift
}

// Len reports the number of queued events.
func (c *Calendar[T]) Len() int { return c.n }

// Seal closes the calendar's epoch: no further Push is legal. Sealing is
// idempotent and does not affect Pop.
func (c *Calendar[T]) Seal() { c.sealed = true }

// Sealed reports whether the calendar has been sealed.
func (c *Calendar[T]) Sealed() bool { return c.sealed }

// Recycle clears the calendar for reuse, retaining every bucket's backing
// capacity (and the pre-carved sizeHint allocation, where buckets still
// point into it). A recycled calendar is unsealed and empty — the segment
// pool's reset between epochs, so steady-state routing allocates nothing.
func (c *Calendar[T]) Recycle() {
	var zero T
	for i := range c.buckets {
		b := &c.buckets[i]
		for j := b.head; j < len(b.entries); j++ {
			b.entries[j].val = zero // release references for the GC
		}
		b.entries = b.entries[:0]
		b.head = 0
	}
	c.n = 0
	c.cur = 0
	c.curTop = Time(1) << c.shift
	c.sealed = false
}

// Push enqueues val at key. Keys may arrive in any order, including before
// already-dequeued keys; such stragglers dequeue at the next opportunity.
func (c *Calendar[T]) Push(key Time, val T) {
	if c.sealed {
		panic("sim: Push on a sealed Calendar")
	}
	if c.n == c.growAt {
		c.grow()
	}
	b := &c.buckets[int(key>>c.shift)&c.mask]
	// Entries stay sorted by key with a strictly-greater insertion walk, so
	// equal keys keep arrival order — the FIFO tie-break needs no sequence
	// numbers. Pushes are typically in nondecreasing key order, making this
	// an append; the walk only runs for stragglers, and never crosses head
	// into the consumed region.
	q := append(b.entries, calEntry[T]{key: key, val: val})
	for i := len(q) - 1; i > b.head && q[i-1].key > key; i-- {
		q[i], q[i-1] = q[i-1], q[i]
	}
	b.entries = q
	c.n++
	// A straggler behind the sweep would wait a whole year; rewind the
	// sweep so it is picked up immediately.
	if key < c.curTop-Time(1)<<c.shift {
		c.cur = int(key>>c.shift) & c.mask
		c.curTop = (key>>c.shift + 1) << c.shift
	}
}

// grow doubles the bucket array, redistributing live entries. Equal keys
// land in the same bucket in their old order, so growth never perturbs
// dequeue order.
func (c *Calendar[T]) grow() {
	old := c.buckets
	// Resume the sweep at the smallest queued key so no event is skipped.
	min, ok := c.minKey(old)
	c.reset(len(old) * 2)
	if ok {
		c.cur = int(min>>c.shift) & c.mask
		c.curTop = (min>>c.shift + 1) << c.shift
	}
	for oi := range old {
		for _, e := range old[oi].entries[old[oi].head:] {
			b := &c.buckets[int(e.key>>c.shift)&c.mask]
			q := append(b.entries, e)
			for i := len(q) - 1; i > 0 && q[i-1].key > e.key; i-- {
				q[i], q[i-1] = q[i-1], q[i]
			}
			b.entries = q
		}
	}
}

func (c *Calendar[T]) minKey(buckets []calBucket[T]) (Time, bool) {
	var min Time
	found := false
	for bi := range buckets {
		for _, e := range buckets[bi].entries[buckets[bi].head:] {
			if !found || e.key < min {
				min, found = e.key, true
			}
		}
	}
	return min, found
}

// Pop dequeues the event with the smallest key, FIFO among equals. It
// returns the zero value and false when the queue is empty.
func (c *Calendar[T]) Pop() (val T, key Time, ok bool) {
	if c.n == 0 {
		var zero T
		return zero, 0, false
	}
	for sweep := 0; sweep <= len(c.buckets); sweep++ {
		b := &c.buckets[c.cur]
		if b.head < len(b.entries) && b.entries[b.head].key < c.curTop {
			return c.take(b)
		}
		c.cur = (c.cur + 1) & c.mask
		c.curTop += Time(1) << c.shift
	}
	// A full sweep found nothing in-window: the queue is sparse. Jump the
	// sweep to the year of the global minimum and take it directly.
	min, _ := c.minKey(c.buckets)
	c.cur = int(min>>c.shift) & c.mask
	c.curTop = (min>>c.shift + 1) << c.shift
	return c.take(&c.buckets[c.cur])
}

// take removes and returns the bucket's head entry.
func (c *Calendar[T]) take(b *calBucket[T]) (val T, key Time, ok bool) {
	e := b.entries[b.head]
	var zero T
	b.entries[b.head].val = zero // release references for the GC
	b.head++
	if b.head == len(b.entries) {
		b.entries = b.entries[:0]
		b.head = 0
	}
	c.n--
	return e.val, e.key, true
}
