package gf128

// This file is the production GHASH multiplier: Shoup's 8-bit table method,
// the ROADMAP's "4 KB, ~2x again" upgrade over the 4-bit table in table.go.
// The construction is identical in shape — precompute i·H for every value i
// of one lookup unit, then fold the accumulator one unit at a time — but the
// unit is a byte, so a multiplication is 16 byte lookups plus 16
// shift-and-reduce steps instead of 32 of each. The 4-bit table and the
// bit-serial Mul remain as differential oracles (table8_test.go pins all
// three together, and FuzzMulTable cross-checks every path on fuzzed
// operands), mirroring how the T-table AES keeps its S-box reference.

// ProductTable8 holds the 256 products i·H (i an 8-bit field element in GCM
// bit order) for a fixed multiplicand H. It is 4 KB — the size/speed trade
// hardware GHASH engines make with a wider partial-product mux — and is
// read-only after construction, so one table may be shared by concurrent
// readers.
type ProductTable8 struct {
	//secmemlint:secret — multiples of the GHASH subkey H; recovering any entry recovers H
	m [256]Element
}

// reduce8 holds, for each byte shifted out the low end of the accumulator
// during an 8-bit shift, the polynomial that folds back in at the top of the
// high word. Entries are generated at init from mulX — the same reduction
// primitive the 4-bit table and the bit-serial oracle use — rather than
// hard-coded, so all three multipliers share one definition of the field.
var reduce8 [256]uint64

// rev8 reverses the bits of a byte: table indices are the byte as read from
// the element words, whose bit significance is reflected relative to GCM
// polynomial order (the 8-bit analogue of rev4).
var rev8 [256]byte

func init() {
	for i := 0; i < 256; i++ {
		rev8[i] = rev4[i&0xf]<<4 | rev4[i>>4]
		// Shifting Element{Lo: i} right eight times folds each outgoing bit
		// through the reduction polynomial; what accumulates in Hi is exactly
		// the fold an 8-bit shift of a full accumulator must XOR back in
		// (mulX^8 is linear, so the low byte's contribution separates out).
		e := Element{Lo: uint64(i)}
		for j := 0; j < 8; j++ {
			e = mulX(e)
		}
		reduce8[i] = e.Hi
	}
}

// NewProductTable8 precomputes the 8-bit Shoup table for multiplicand h:
// entry rev8[i] is i·h, filled by doubling (i even) and adding h (i odd),
// exactly as NewProductTable does for nibbles.
func NewProductTable8(h Element) ProductTable8 {
	var t ProductTable8
	t.m[rev8[1]] = h
	for i := 2; i < 256; i += 2 {
		t.m[rev8[i]] = mulX(t.m[rev8[i/2]])
		t.m[rev8[i+1]] = t.m[rev8[i]].Xor(h)
	}
	return t
}

// MulTable8 returns e·h where t = NewProductTable8(h): 16 byte-wide table
// lookups instead of the 4-bit path's 32 nibble lookups or Mul's 128 serial
// iterations. The byte-indexed loads model the hardware multiplier's
// parallel partial-product mux; like the oracle's data-dependent XORs, their
// software cache timing is out of scope.
//
//secmemlint:hotpath
func (e Element) MulTable8(t *ProductTable8) Element {
	var z Element
	for _, word := range [2]uint64{e.Lo, e.Hi} {
		for j := 0; j < 64; j += 8 {
			lsb := z.Lo & 0xff
			z.Lo = z.Lo>>8 | z.Hi<<56
			z.Hi >>= 8
			z.Hi ^= reduce8[lsb] //secmemlint:ignore cttiming models the hardware multiplier's reduction network; software table timing out of scope
			p := &t.m[word&0xff] //secmemlint:ignore cttiming models the hardware multiplier's partial-product mux; software table timing out of scope
			z.Hi ^= p.Hi
			z.Lo ^= p.Lo
			word >>= 8
		}
	}
	return z
}

// GHASHTable8 is GHASH_H(aad, ct) computed with a prebuilt 8-bit table for
// H. It matches GHASH and GHASHTable byte for byte and never touches the
// heap, so per-block MAC paths can call it at memory-traffic rates.
//
//secmemlint:hotpath
func GHASHTable8(t *ProductTable8, aad, ct []byte) [16]byte {
	var y Element
	feed := func(p []byte) {
		for len(p) >= 16 {
			y = y.Xor(FromBytes(p[:16])).MulTable8(t)
			p = p[16:]
		}
		if len(p) > 0 {
			var blk [16]byte
			copy(blk[:], p)
			y = y.Xor(FromBytes(blk[:])).MulTable8(t)
		}
	}
	feed(aad)
	feed(ct)
	var lens Element
	lens.Hi = uint64(len(aad)) * 8
	lens.Lo = uint64(len(ct)) * 8
	y = y.Xor(lens).MulTable8(t)
	return y.Bytes()
}
