package gf128

import "testing"

// FuzzMulTable differentially tests both table-driven multiplies — the
// production 8-bit path and the 4-bit oracle — against the bit-serial Mul:
// for any subkey h and operand e, e.MulTable8(table8(h)) and
// e.MulTable(table(h)) must both equal e.Mul(h). The 8-bit path is what
// GHASH runs in the hot loop, so a divergence here is a silent MAC-forgery
// bug.
func FuzzMulTable(f *testing.F) {
	f.Add(
		[]byte{0x66, 0xe9, 0x4b, 0xd4, 0xef, 0x8a, 0x2c, 0x3b, 0x88, 0x4c, 0xfa, 0x59, 0xca, 0x34, 0x2b, 0x2e},
		[]byte{0x03, 0x88, 0xda, 0xce, 0x60, 0xb6, 0xa3, 0x92, 0xf3, 0x28, 0xc2, 0xb9, 0x71, 0xb2, 0xfe, 0x78},
	)
	f.Add(make([]byte, 16), make([]byte, 16))
	f.Add(
		[]byte{0x80, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0},
		[]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1},
	)
	f.Fuzz(func(t *testing.T, hb, eb []byte) {
		if len(hb) < 16 || len(eb) < 16 {
			t.Skip("need 16-byte operands")
		}
		h := FromBytes(hb[:16])
		e := FromBytes(eb[:16])
		tbl := NewProductTable(h)
		fast := e.MulTable(&tbl)
		slow := e.Mul(h)
		if fast != slow {
			fb, sb := fast.Bytes(), slow.Bytes()
			t.Fatalf("MulTable diverges from bit-serial Mul:\n  h    = %x\n  e    = %x\n  fast = %x\n  slow = %x",
				hb[:16], eb[:16], fb[:], sb[:])
		}
		tbl8 := NewProductTable8(h)
		if fast8 := e.MulTable8(&tbl8); fast8 != slow {
			fb, sb := fast8.Bytes(), slow.Bytes()
			t.Fatalf("MulTable8 diverges from bit-serial Mul:\n  h    = %x\n  e    = %x\n  fast = %x\n  slow = %x",
				hb[:16], eb[:16], fb[:], sb[:])
		}
		// Sanity: the table path must also respect the distributive law the
		// GHASH accumulator relies on: (a ^ b) * h == a*h ^ b*h.
		b2 := FromBytes(eb[:16]).Xor(h)
		lhs := b2.MulTable(&tbl)
		rhs := e.MulTable(&tbl).Xor(h.MulTable(&tbl))
		if lhs != rhs {
			t.Fatalf("MulTable violates distributivity for h=%x e=%x", hb[:16], eb[:16])
		}
	})
}
