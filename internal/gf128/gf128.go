// Package gf128 implements arithmetic in GF(2^128) with the GCM reduction
// polynomial x^128 + x^7 + x^2 + x + 1, and the GHASH universal hash defined
// in NIST SP 800-38D. Elements use GCM's reflected bit order: bit 0 of the
// field element is the most significant bit of the first byte.
//
// The paper's authentication scheme (Section 3) is GHASH over the block
// ciphertext XORed with an AES-generated authentication pad; this package is
// the "Galois field multiplication" half of that hardware, validated against
// the NIST GCM test vectors in the gcmmode package.
package gf128

// Element is a GF(2^128) element in GCM bit order. Hi holds bits 0..63
// (first 8 bytes), Lo holds bits 64..127.
type Element struct {
	Hi, Lo uint64
}

// FromBytes loads a 16-byte big-endian block as a field element.
func FromBytes(b []byte) Element {
	_ = b[15]
	var e Element
	for i := 0; i < 8; i++ {
		e.Hi = e.Hi<<8 | uint64(b[i])
		e.Lo = e.Lo<<8 | uint64(b[i+8])
	}
	return e
}

// Bytes stores the element into a 16-byte block.
func (e Element) Bytes() [16]byte {
	var out [16]byte
	for i := 0; i < 8; i++ {
		out[i] = byte(e.Hi >> (56 - 8*i))
		out[i+8] = byte(e.Lo >> (56 - 8*i))
	}
	return out
}

// Xor returns e + other (addition in GF(2^128) is XOR).
func (e Element) Xor(o Element) Element {
	return Element{e.Hi ^ o.Hi, e.Lo ^ o.Lo}
}

// IsZero reports whether e is the additive identity.
func (e Element) IsZero() bool { return e.Hi == 0 && e.Lo == 0 }

// Mul returns the product e*o in GF(2^128) per the NIST SP 800-38D
// right-shift algorithm (Algorithm 1). Bit i of X is X.Hi's (63-i)th bit for
// i<64, reflecting GCM's little-endian bit numbering within big-endian bytes.
//
// The bit-serial loop branches on operand bits. In GHASH one operand is the
// secret subkey H and the accumulator carries tag state, so the software
// loop is variable-time in secrets; the suppressions below record that this
// models the paper's single-cycle combinational GF multiplier (Section 5),
// where the data-dependent branches have no timing image.
//
func (e Element) Mul(o Element) Element {
	var z Element
	v := o
	for i := 0; i < 128; i++ {
		var bit uint64
		if i < 64 {
			bit = e.Hi >> (63 - i) & 1
		} else {
			bit = e.Lo >> (127 - i) & 1
		}
		if bit == 1 { //secmemlint:ignore cttiming models the single-cycle hardware GF multiplier; software bit-serial timing out of scope
			z = z.Xor(v)
		}
		// v = v * x: right shift in GCM bit order, reduce by R if the
		// bit shifted out of position 127 was set.
		lsb := v.Lo & 1
		v.Lo = v.Lo>>1 | v.Hi<<63
		v.Hi >>= 1
		if lsb == 1 { //secmemlint:ignore cttiming models the single-cycle hardware GF multiplier; software bit-serial timing out of scope
			v.Hi ^= 0xe100000000000000 // R = 11100001 || 0^120
		}
	}
	return z
}

// Hash is an incremental GHASH computation keyed with H = CIPH_K(0^128).
// Each 16-byte block folded in costs one field multiplication — the paper's
// "chain of Galois Field Multiplications and XOR operations". The
// multiplication is table-driven (see table8.go): NewHash pays the 255
// table entries once, and every block thereafter is 16 byte lookups instead
// of a 128-iteration bit-serial product.
type Hash struct {
	//secmemlint:secret — Shoup table of the GHASH subkey H = E_K(0^128); knowing H forges tags
	t ProductTable8
	//secmemlint:secret — accumulated GHASH state (tag material until pad-masked)
	y Element
}

// NewHash returns a GHASH instance for hash subkey h (16 bytes).
//
func NewHash(h []byte) *Hash {
	return &Hash{t: NewProductTable8(FromBytes(h))}
}

// Update folds one or more complete 16-byte blocks into the hash state.
// len(p) must be a multiple of 16.
func (g *Hash) Update(p []byte) {
	if len(p)%16 != 0 {
		panic("gf128: GHASH update not block-aligned")
	}
	for len(p) > 0 {
		g.y = g.y.Xor(FromBytes(p[:16])).MulTable8(&g.t)
		p = p[16:]
	}
}

// UpdateLengths folds the final GCM length block: bit lengths of the AAD and
// ciphertext as two big-endian 64-bit integers.
func (g *Hash) UpdateLengths(aadBits, ctBits uint64) {
	var blk [16]byte
	for i := 0; i < 8; i++ {
		blk[i] = byte(aadBits >> (56 - 8*i))
		blk[8+i] = byte(ctBits >> (56 - 8*i))
	}
	g.Update(blk[:])
}

// Sum returns the current GHASH value — tag material that stays secret
// until it is masked with the authentication pad and clipped.
//
func (g *Hash) Sum() [16]byte { return g.y.Bytes() }

// Reset clears the accumulated state, keeping the subkey.
func (g *Hash) Reset() { g.y = Element{} }

// GHASH computes the one-shot GHASH_H(aad, ct) with standard zero padding of
// both regions to block boundaries and the trailing length block.
//
func GHASH(h, aad, ct []byte) [16]byte {
	g := NewHash(h)
	feed := func(p []byte) {
		full := len(p) / 16 * 16
		g.Update(p[:full])
		if rem := len(p) - full; rem > 0 {
			var blk [16]byte
			copy(blk[:], p[full:])
			g.Update(blk[:])
		}
	}
	feed(aad)
	feed(ct)
	g.UpdateLengths(uint64(len(aad))*8, uint64(len(ct))*8)
	return g.Sum()
}
