package gf128

import (
	"bytes"
	"encoding/hex"
	"testing"
	"testing/quick"
)

func elemFromHex(t *testing.T, s string) Element {
	t.Helper()
	b, err := hex.DecodeString(s)
	if err != nil || len(b) != 16 {
		t.Fatalf("bad element hex %q", s)
	}
	return FromBytes(b)
}

func TestBytesRoundTrip(t *testing.T) {
	f := func(b [16]byte) bool {
		e := FromBytes(b[:])
		return e.Bytes() == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Known product from the McGrew–Viega GCM spec test case 2:
// H = 66e94bd4ef8a2c3b884cfa59ca342b2e, C1 = 0388dace60b6a392f328c2b971b2fe78,
// GHASH folds Y1 = C1 * H = 5e2ec746917062882c85b0685353deb7.
func TestKnownProduct(t *testing.T) {
	h := elemFromHex(t, "66e94bd4ef8a2c3b884cfa59ca342b2e")
	c := elemFromHex(t, "0388dace60b6a392f328c2b971b2fe78")
	got := c.Mul(h).Bytes()
	want, _ := hex.DecodeString("5e2ec746917062882c85b0685353deb7")
	if !bytes.Equal(got[:], want) {
		t.Errorf("product = %x, want %x", got, want)
	}
}

func TestMulIdentityAndZero(t *testing.T) {
	// The multiplicative identity in GCM bit order is the byte 0x80
	// followed by zeros (bit 0 set).
	one := Element{Hi: 0x8000000000000000}
	f := func(b [16]byte) bool {
		e := FromBytes(b[:])
		return e.Mul(one) == e && e.Mul(Element{}).IsZero()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMulCommutative(t *testing.T) {
	f := func(a, b [16]byte) bool {
		x, y := FromBytes(a[:]), FromBytes(b[:])
		return x.Mul(y) == y.Mul(x)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMulDistributesOverXor(t *testing.T) {
	f := func(a, b, c [16]byte) bool {
		x, y, z := FromBytes(a[:]), FromBytes(b[:]), FromBytes(c[:])
		return x.Mul(y.Xor(z)) == x.Mul(y).Xor(x.Mul(z))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMulAssociative(t *testing.T) {
	f := func(a, b, c [16]byte) bool {
		x, y, z := FromBytes(a[:]), FromBytes(b[:]), FromBytes(c[:])
		return x.Mul(y).Mul(z) == x.Mul(y.Mul(z))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestGHASHSpecCase2(t *testing.T) {
	// GCM spec test case 2: H as above, single ciphertext block, no AAD.
	h, _ := hex.DecodeString("66e94bd4ef8a2c3b884cfa59ca342b2e")
	ct, _ := hex.DecodeString("0388dace60b6a392f328c2b971b2fe78")
	got := GHASH(h, nil, ct)
	want, _ := hex.DecodeString("f38cbb1ad69223dcc3457ae5b6b0f885")
	if !bytes.Equal(got[:], want) {
		t.Errorf("GHASH = %x, want %x", got, want)
	}
}

func TestGHASHIncrementalMatchesOneShot(t *testing.T) {
	h, _ := hex.DecodeString("66e94bd4ef8a2c3b884cfa59ca342b2e")
	ct := make([]byte, 64)
	for i := range ct {
		ct[i] = byte(i * 7)
	}
	want := GHASH(h, nil, ct)

	g := NewHash(h)
	g.Update(ct[:16])
	g.Update(ct[16:64])
	g.UpdateLengths(0, uint64(len(ct))*8)
	if got := g.Sum(); got != want {
		t.Errorf("incremental = %x, want %x", got, want)
	}

	g.Reset()
	g.Update(ct)
	g.UpdateLengths(0, uint64(len(ct))*8)
	if got := g.Sum(); got != want {
		t.Errorf("after Reset = %x, want %x", got, want)
	}
}

func TestGHASHPartialBlockPadding(t *testing.T) {
	h, _ := hex.DecodeString("66e94bd4ef8a2c3b884cfa59ca342b2e")
	short := []byte{1, 2, 3}
	padded := make([]byte, 16)
	copy(padded, short)
	// Same data zero-padded should give a different hash because the
	// length block differs, even though the folded blocks are identical.
	a := GHASH(h, nil, short)
	b := GHASH(h, nil, padded)
	if a == b {
		t.Error("length block not distinguishing padded inputs")
	}
}

func TestUpdateUnalignedPanics(t *testing.T) {
	g := NewHash(make([]byte, 16))
	defer func() {
		if recover() == nil {
			t.Fatal("unaligned Update did not panic")
		}
	}()
	g.Update(make([]byte, 15))
}

func BenchmarkMul(b *testing.B) {
	x := Element{0x0123456789abcdef, 0xfedcba9876543210}
	y := Element{0xdeadbeefcafebabe, 0x0f1e2d3c4b5a6978}
	for i := 0; i < b.N; i++ {
		x = x.Mul(y)
	}
	_ = x
}

func BenchmarkGHASH64B(b *testing.B) {
	h := make([]byte, 16)
	h[0] = 0x42
	ct := make([]byte, 64)
	b.SetBytes(64)
	for i := 0; i < b.N; i++ {
		GHASH(h, nil, ct)
	}
}
