package gf128

import (
	"bytes"
	"encoding/hex"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestMulTable8MatchesMul pins the 8-bit table multiplier to the bit-serial
// oracle over random operand pairs: for every (x, h),
// x.MulTable8(NewProductTable8(h)) must equal x.Mul(h).
func TestMulTable8MatchesMul(t *testing.T) {
	f := func(x, h [16]byte) bool {
		xe, he := FromBytes(x[:]), FromBytes(h[:])
		tbl := NewProductTable8(he)
		return xe.MulTable8(&tbl) == xe.Mul(he)
	}
	cfg := &quick.Config{MaxCount: 2000}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestMulTable8MatchesMulTable pins the 8-bit path to the retired 4-bit
// production path: two independent table constructions of the same field
// must agree everywhere.
func TestMulTable8MatchesMulTable(t *testing.T) {
	f := func(x, h [16]byte) bool {
		xe, he := FromBytes(x[:]), FromBytes(h[:])
		t4 := NewProductTable(he)
		t8 := NewProductTable8(he)
		return xe.MulTable8(&t8) == xe.MulTable(&t4)
	}
	cfg := &quick.Config{MaxCount: 2000}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestMulTable8KnownProduct replays the McGrew–Viega vector used for Mul.
func TestMulTable8KnownProduct(t *testing.T) {
	h := elemFromHex(t, "66e94bd4ef8a2c3b884cfa59ca342b2e")
	c := elemFromHex(t, "0388dace60b6a392f328c2b971b2fe78")
	tbl := NewProductTable8(h)
	got := c.MulTable8(&tbl).Bytes()
	want, _ := hex.DecodeString("5e2ec746917062882c85b0685353deb7")
	if !bytes.Equal(got[:], want) {
		t.Errorf("8-bit table product = %x, want %x", got, want)
	}
}

// TestMulTable8IdentityZero checks the boundary elements for the 8-bit path.
func TestMulTable8IdentityZero(t *testing.T) {
	one := Element{Hi: 0x8000000000000000}
	oneTbl := NewProductTable8(one)
	zeroTbl := NewProductTable8(Element{})
	f := func(b [16]byte) bool {
		e := FromBytes(b[:])
		tbl := NewProductTable8(e)
		return e.MulTable8(&oneTbl) == e &&
			e.MulTable8(&zeroTbl).IsZero() &&
			(Element{}).MulTable8(&tbl).IsZero()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestReduce8MatchesMulX pins the generated reduction table against its
// definition: an 8-bit shift-and-fold of any accumulator must equal eight
// applications of mulX. This is the step MulTable8 performs between lookups.
func TestReduce8MatchesMulX(t *testing.T) {
	f := func(b [16]byte) bool {
		z := FromBytes(b[:])
		want := z
		for i := 0; i < 8; i++ {
			want = mulX(want)
		}
		got := Element{
			Lo: z.Lo>>8 | z.Hi<<56,
			Hi: z.Hi>>8 ^ reduce8[z.Lo&0xff],
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestRev8IsInvolution sanity-checks the byte bit-reversal table: applying
// it twice is the identity and it extends rev4 consistently.
func TestRev8IsInvolution(t *testing.T) {
	for i := 0; i < 256; i++ {
		if rev8[rev8[i]] != byte(i) {
			t.Fatalf("rev8 is not an involution at %d", i)
		}
	}
	for i := 0; i < 16; i++ {
		if rev8[i]>>4 != rev4[i] || rev8[i]&0xf != 0 {
			t.Fatalf("rev8[%d] = %#x inconsistent with rev4[%d] = %#x", i, rev8[i], i, rev4[i])
		}
	}
}

// TestGHASHTable8MatchesGHASH pins the zero-alloc 8-bit one-shot against both
// the incremental oracle path and the 4-bit one-shot across ragged lengths.
func TestGHASHTable8MatchesGHASH(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 200; i++ {
		h := make([]byte, 16)
		rng.Read(h)
		aad := make([]byte, rng.Intn(70))
		ct := make([]byte, rng.Intn(70))
		rng.Read(aad)
		rng.Read(ct)
		t8 := NewProductTable8(FromBytes(h))
		t4 := NewProductTable(FromBytes(h))
		got := GHASHTable8(&t8, aad, ct)
		want := GHASH(h, aad, ct)
		if got != want {
			t.Fatalf("len(aad)=%d len(ct)=%d: GHASHTable8 = %x, GHASH = %x",
				len(aad), len(ct), got, want)
		}
		if got4 := GHASHTable(&t4, aad, ct); got4 != got {
			t.Fatalf("len(aad)=%d len(ct)=%d: GHASHTable8 = %x, GHASHTable = %x",
				len(aad), len(ct), got, got4)
		}
	}
}

// TestGHASHTable8ZeroAlloc: the per-block MAC path calls GHASHTable8 for
// every memory transfer, so it must never touch the heap.
func TestGHASHTable8ZeroAlloc(t *testing.T) {
	h := make([]byte, 16)
	for i := range h {
		h[i] = byte(i + 1)
	}
	tbl := NewProductTable8(FromBytes(h))
	ct := make([]byte, 64)
	allocs := testing.AllocsPerRun(100, func() {
		_ = GHASHTable8(&tbl, nil, ct)
	})
	if allocs != 0 {
		t.Errorf("GHASHTable8 allocates %.1f objects/op, want 0", allocs)
	}
}
