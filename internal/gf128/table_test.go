package gf128

import (
	"bytes"
	"encoding/hex"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestMulTableMatchesMul pins the table-driven multiplier to the bit-serial
// oracle over random operand pairs: for every (x, h),
// x.MulTable(NewProductTable(h)) must equal x.Mul(h).
func TestMulTableMatchesMul(t *testing.T) {
	f := func(x, h [16]byte) bool {
		xe, he := FromBytes(x[:]), FromBytes(h[:])
		tbl := NewProductTable(he)
		return xe.MulTable(&tbl) == xe.Mul(he)
	}
	cfg := &quick.Config{MaxCount: 2000}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestMulTableKnownProduct replays the McGrew–Viega vector used for Mul.
func TestMulTableKnownProduct(t *testing.T) {
	h := elemFromHex(t, "66e94bd4ef8a2c3b884cfa59ca342b2e")
	c := elemFromHex(t, "0388dace60b6a392f328c2b971b2fe78")
	tbl := NewProductTable(h)
	got := c.MulTable(&tbl).Bytes()
	want, _ := hex.DecodeString("5e2ec746917062882c85b0685353deb7")
	if !bytes.Equal(got[:], want) {
		t.Errorf("table product = %x, want %x", got, want)
	}
}

// TestMulTableIdentityZero checks the boundary elements: multiplying by the
// table of 1 is the identity, by the table of 0 annihilates, and zero times
// anything is zero.
func TestMulTableIdentityZero(t *testing.T) {
	one := Element{Hi: 0x8000000000000000}
	oneTbl := NewProductTable(one)
	zeroTbl := NewProductTable(Element{})
	f := func(b [16]byte) bool {
		e := FromBytes(b[:])
		tbl := NewProductTable(e)
		return e.MulTable(&oneTbl) == e &&
			e.MulTable(&zeroTbl).IsZero() &&
			(Element{}).MulTable(&tbl).IsZero()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestGHASHTableMatchesGHASH pins the zero-alloc one-shot against the
// incremental oracle path across ragged aad/ct lengths.
func TestGHASHTableMatchesGHASH(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		h := make([]byte, 16)
		rng.Read(h)
		aad := make([]byte, rng.Intn(70))
		ct := make([]byte, rng.Intn(70))
		rng.Read(aad)
		rng.Read(ct)
		tbl := NewProductTable(FromBytes(h))
		got := GHASHTable(&tbl, aad, ct)
		want := GHASH(h, aad, ct)
		if got != want {
			t.Fatalf("len(aad)=%d len(ct)=%d: GHASHTable = %x, GHASH = %x",
				len(aad), len(ct), got, want)
		}
	}
}

// TestHashZeroAlloc verifies the incremental path allocates only at
// construction: Update/UpdateLengths/Sum/Reset stay off the heap.
func TestHashZeroAlloc(t *testing.T) {
	h := make([]byte, 16)
	for i := range h {
		h[i] = byte(i + 1)
	}
	g := NewHash(h)
	blk := make([]byte, 64)
	allocs := testing.AllocsPerRun(100, func() {
		g.Reset()
		g.Update(blk)
		g.UpdateLengths(0, 512)
		_ = g.Sum()
	})
	if allocs != 0 {
		t.Errorf("Hash update cycle allocates %.1f objects/op, want 0", allocs)
	}
}
