package gf128

// This file is the production GHASH multiplier: Shoup's 4-bit table method.
// The bit-serial Mul in gf128.go walks all 128 bits of one operand; when
// that operand is fixed (GHASH multiplies everything by the same subkey H),
// the products i·H for every 4-bit i can be precomputed once, turning each
// multiplication into 32 nibble lookups plus 32 shift-and-reduce steps.
// That is the same trade hardware GHASH engines make (wider combinational
// multiplier fed by a fixed H), so the fast path models the same machine as
// the oracle — Mul stays as the independently-validated reference and the
// differential tests in table_test.go pin the two together.

// ProductTable holds the sixteen products i·H (i a 4-bit field element in
// GCM bit order) for a fixed multiplicand H. It is 256 bytes, lives inline
// in Hash and gcmmode.PadGen (no heap allocation per use), and is read-only
// after construction, so one table may be shared by concurrent readers.
type ProductTable struct {
	//secmemlint:secret — multiples of the GHASH subkey H; recovering any entry recovers H
	m [16]Element
}

// reduce4 holds, for each 4-bit value shifted out the low end of the
// accumulator during a 4-bit shift, the polynomial that folds back in at
// the top: reduce4[b] = (bits of b) · (R >> i) packed into the top 16 bits
// of the high word, with R = 11100001 || 0^120.
var reduce4 = [16]uint64{
	0x0000 << 48, 0x1c20 << 48, 0x3840 << 48, 0x2460 << 48,
	0x7080 << 48, 0x6ca0 << 48, 0x48c0 << 48, 0x54e0 << 48,
	0xe100 << 48, 0xfd20 << 48, 0xd940 << 48, 0xc560 << 48,
	0x9180 << 48, 0x8da0 << 48, 0xa9c0 << 48, 0xb5e0 << 48,
}

// rev4 reverses the bits of a 4-bit value: table indices are the nibble as
// read from the element words, whose bit significance is reflected
// relative to GCM polynomial order.
var rev4 = [16]byte{0, 8, 4, 12, 2, 10, 6, 14, 1, 9, 5, 13, 3, 11, 7, 15}

// mulX returns e·x (one right shift in GCM bit order with reduction).
func mulX(e Element) Element {
	lsb := e.Lo & 1
	e.Lo = e.Lo>>1 | e.Hi<<63
	e.Hi >>= 1
	if lsb == 1 { //secmemlint:ignore cttiming models the combinational GF multiplier's reduction mux; software bit timing out of scope
		e.Hi ^= 0xe100000000000000
	}
	return e
}

// NewProductTable precomputes the Shoup table for multiplicand h: entry
// rev4[i] is i·h, filled by doubling (i even) and adding h (i odd).
//
func NewProductTable(h Element) ProductTable {
	var t ProductTable
	t.m[rev4[1]] = h
	for i := 2; i < 16; i += 2 {
		t.m[rev4[i]] = mulX(t.m[rev4[i/2]])
		t.m[rev4[i+1]] = t.m[rev4[i]].Xor(h)
	}
	return t
}

// MulTable returns e·h where t = NewProductTable(h): 32 4-bit table lookups
// instead of Mul's 128 serial iterations. The nibble-indexed loads model
// the hardware multiplier's parallel partial-product mux; like the oracle's
// data-dependent XORs, their software cache timing is out of scope.
//
//secmemlint:hotpath
func (e Element) MulTable(t *ProductTable) Element {
	var z Element
	for _, word := range [2]uint64{e.Lo, e.Hi} {
		for j := 0; j < 64; j += 4 {
			msn := z.Lo & 0xf
			z.Lo = z.Lo>>4 | z.Hi<<60
			z.Hi >>= 4
			z.Hi ^= reduce4[msn]                //secmemlint:ignore cttiming models the hardware multiplier's reduction network; software table timing out of scope
			p := &t.m[word&0xf]                 //secmemlint:ignore cttiming models the hardware multiplier's partial-product mux; software table timing out of scope
			z.Hi ^= p.Hi
			z.Lo ^= p.Lo
			word >>= 4
		}
	}
	return z
}

// GHASHTable is GHASH_H(aad, ct) computed with a prebuilt table for H. It
// matches GHASH byte for byte and never touches the heap, so per-block MAC
// paths can call it at memory-traffic rates.
//
//secmemlint:hotpath
func GHASHTable(t *ProductTable, aad, ct []byte) [16]byte {
	var y Element
	feed := func(p []byte) {
		for len(p) >= 16 {
			y = y.Xor(FromBytes(p[:16])).MulTable(t)
			p = p[16:]
		}
		if len(p) > 0 {
			var blk [16]byte
			copy(blk[:], p)
			y = y.Xor(FromBytes(blk[:])).MulTable(t)
		}
	}
	feed(aad)
	feed(ct)
	var lens Element
	lens.Hi = uint64(len(aad)) * 8
	lens.Lo = uint64(len(ct)) * 8
	y = y.Xor(lens).MulTable(t)
	return y.Bytes()
}
