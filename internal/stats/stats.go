// Package stats provides the tabular reporting used to regenerate the
// paper's tables and figures as text: fixed set of columns, one row per
// benchmark or configuration, aligned plain-text rendering, and small
// aggregation helpers (geometric/arithmetic means over normalized IPC).
package stats

import (
	"fmt"
	"math"
	"strings"
)

// Table is a titled grid of cells.
type Table struct {
	Title string
	Cols  []string
	Rows  [][]string
	Notes []string
}

// TryAddRow appends a row, rejecting arity mismatches with an error that
// names the table. Dynamically assembled rows (figure grids, sweeps) use
// this so a malformed row fails the run with context.
func (t *Table) TryAddRow(cells ...string) error {
	if len(cells) != len(t.Cols) {
		return fmt.Errorf("stats: row has %d cells, table %q has %d columns",
			len(cells), t.Title, len(t.Cols))
	}
	t.Rows = append(t.Rows, cells)
	return nil
}

// AddRow appends a row whose arity is statically known; mismatches panic
// early (they are programming errors at the call site).
func (t *Table) AddRow(cells ...string) {
	if err := t.TryAddRow(cells...); err != nil {
		panic(err.Error())
	}
}

// AddNote appends a footnote line.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table as aligned text.
func (t Table) String() string {
	widths := make([]int, len(t.Cols))
	for i, c := range t.Cols {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
		b.WriteString(strings.Repeat("=", len(t.Title)))
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Cols)
	total := len(t.Cols)*2 - 2
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		b.WriteString("note: ")
		b.WriteString(n)
		b.WriteByte('\n')
	}
	return b.String()
}

// F formats a float with 3 decimals, the figures' usual precision.
func F(v float64) string { return fmt.Sprintf("%.3f", v) }

// Pct formats a ratio as a percentage.
func Pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }

// Mean returns the arithmetic mean; 0 for empty input.
func Mean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	var sum float64
	for _, v := range vs {
		sum += v
	}
	return sum / float64(len(vs))
}

// GeoMean returns the geometric mean; 0 for empty input or nonpositive
// values.
func GeoMean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	var sum float64
	for _, v := range vs {
		if v <= 0 {
			return 0
		}
		sum += math.Log(v)
	}
	return math.Exp(sum / float64(len(vs)))
}

// Duration pretty-prints a time in seconds with an adaptive unit, used for
// Table 2's "estimated time to overflow" column (seconds to millennia).
func Duration(seconds float64) string {
	switch {
	case seconds == math.Inf(1):
		return "never"
	case seconds < 1:
		return fmt.Sprintf("%.2f s", seconds)
	case seconds < 120:
		return fmt.Sprintf("%.1f s", seconds)
	case seconds < 2*3600:
		return fmt.Sprintf("%.1f min", seconds/60)
	case seconds < 2*86400:
		return fmt.Sprintf("%.1f hr", seconds/3600)
	case seconds < 2*31557600:
		return fmt.Sprintf("%.1f days", seconds/86400)
	case seconds < 2000*31557600:
		return fmt.Sprintf("%.1f yr", seconds/31557600)
	default:
		return fmt.Sprintf("%.0f millennia", seconds/(31557600*1000))
	}
}
