package stats

import (
	"math"
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tbl := Table{Title: "T", Cols: []string{"a", "long-header", "c"}}
	tbl.AddRow("x", "1", "2")
	tbl.AddRow("longer-cell", "3", "4")
	tbl.AddNote("n=%d", 2)
	out := tbl.String()
	if !strings.Contains(out, "T\n=") {
		t.Error("title underline missing")
	}
	if !strings.Contains(out, "long-header") || !strings.Contains(out, "longer-cell") {
		t.Error("cells missing")
	}
	if !strings.Contains(out, "note: n=2") {
		t.Error("note missing")
	}
	// Columns align: every data line has the same prefix width up to col 2.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	var dataLines []string
	for _, l := range lines[2:] {
		if !strings.HasPrefix(l, "-") && !strings.HasPrefix(l, "note") {
			dataLines = append(dataLines, l)
		}
	}
	idx := strings.Index(dataLines[0], "long-header")
	for _, l := range dataLines[1:] {
		cell2 := l[idx : idx+1]
		if cell2 == " " {
			t.Errorf("misaligned row: %q", l)
		}
	}
}

func TestAddRowPanicsOnWidthMismatch(t *testing.T) {
	tbl := Table{Cols: []string{"a", "b"}}
	defer func() {
		if recover() == nil {
			t.Fatal("short row did not panic")
		}
	}()
	tbl.AddRow("only-one")
}

func TestTryAddRow(t *testing.T) {
	tbl := Table{Title: "T", Cols: []string{"a", "b"}}
	if err := tbl.TryAddRow("1", "2"); err != nil {
		t.Fatalf("well-formed row rejected: %v", err)
	}
	err := tbl.TryAddRow("only-one")
	if err == nil {
		t.Fatal("short row accepted")
	}
	for _, want := range []string{"1 cells", `"T"`, "2 columns"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}
	if err := tbl.TryAddRow("1", "2", "3"); err == nil {
		t.Fatal("long row accepted")
	}
	if len(tbl.Rows) != 1 {
		t.Errorf("rejected rows were appended: %d rows", len(tbl.Rows))
	}
}

func TestFormatters(t *testing.T) {
	if F(0.12345) != "0.123" {
		t.Errorf("F = %s", F(0.12345))
	}
	if Pct(0.5) != "50.0%" {
		t.Errorf("Pct = %s", Pct(0.5))
	}
}

func TestMeans(t *testing.T) {
	if Mean(nil) != 0 || GeoMean(nil) != 0 {
		t.Error("empty means nonzero")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v", got)
	}
	if got := GeoMean([]float64{1, 4}); math.Abs(got-2) > 1e-12 {
		t.Errorf("GeoMean = %v", got)
	}
	if GeoMean([]float64{1, -1}) != 0 {
		t.Error("GeoMean with nonpositive input should be 0")
	}
}

func TestDurationUnits(t *testing.T) {
	cases := []struct {
		s    float64
		want string
	}{
		{0.1, "0.10 s"},
		{30, "30.0 s"},
		{300, "5.0 min"},
		{7200 * 3, "6.0 hr"},
		{86400 * 40, "40.0 days"},
		{31557600 * 5, "5.0 yr"},
		{31557600 * 1e6, "1000 millennia"},
		{math.Inf(1), "never"},
	}
	for _, c := range cases {
		if got := Duration(c.s); got != c.want {
			t.Errorf("Duration(%v) = %q, want %q", c.s, got, c.want)
		}
	}
}
