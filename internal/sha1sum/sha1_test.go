package sha1sum

import (
	"bytes"
	"encoding/hex"
	"strings"
	"testing"
	"testing/quick"
)

// FIPS 180 / RFC 3174 known-answer vectors.
var vectors = []struct {
	in   string
	want string
}{
	{"", "da39a3ee5e6b4b0d3255bfef95601890afd80709"},
	{"abc", "a9993e364706816aba3e25717850c26c9cd0d89d"},
	{"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
		"84983e441c3bd26ebaae4aa1f95129e5e54670f1"},
	{strings.Repeat("a", 1000000), "34aa973cd4c4daa4f61eeb2bdbad27316534016f"},
	{strings.Repeat("0123456701234567012345670123456701234567012345670123456701234567", 10),
		"dea356a2cddd90c7a7ecedc5ebb563934f460452"},
}

func TestKnownVectors(t *testing.T) {
	for _, v := range vectors {
		got := Sum20([]byte(v.in))
		if hex.EncodeToString(got[:]) != v.want {
			name := v.in
			if len(name) > 32 {
				name = name[:32] + "..."
			}
			t.Errorf("SHA1(%q) = %x, want %s", name, got, v.want)
		}
	}
}

func TestIncrementalMatchesOneShot(t *testing.T) {
	f := func(data []byte, split uint8) bool {
		want := Sum20(data)
		d := New()
		cut := 0
		if len(data) > 0 {
			cut = int(split) % (len(data) + 1)
		}
		d.Write(data[:cut])
		d.Write(data[cut:])
		return bytes.Equal(d.Sum(nil), want[:])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSumDoesNotDisturbState(t *testing.T) {
	d := New()
	d.Write([]byte("ab"))
	first := d.Sum(nil)
	second := d.Sum(nil)
	if !bytes.Equal(first, second) {
		t.Error("repeated Sum differs")
	}
	d.Write([]byte("c"))
	want := Sum20([]byte("abc"))
	if got := d.Sum(nil); !bytes.Equal(got, want[:]) {
		t.Errorf("continued hash = %x, want %x", got, want)
	}
}

func TestSumAppendsToPrefix(t *testing.T) {
	d := New()
	d.Write([]byte("abc"))
	out := d.Sum([]byte{0xDE, 0xAD})
	if len(out) != 2+Size || out[0] != 0xDE || out[1] != 0xAD {
		t.Errorf("prefix not preserved: %x", out)
	}
}

func TestResetRestoresInitialState(t *testing.T) {
	d := New()
	d.Write([]byte("garbage"))
	d.Reset()
	d.Write([]byte("abc"))
	want := Sum20([]byte("abc"))
	if got := d.Sum(nil); !bytes.Equal(got, want[:]) {
		t.Errorf("after Reset: %x, want %x", got, want)
	}
}

func TestPaddingBoundaries(t *testing.T) {
	// Lengths around the 55/56/64 byte padding boundaries are the classic
	// off-by-one traps; compare consecutive lengths for distinctness and
	// determinism.
	seen := map[string]int{}
	for n := 50; n <= 130; n++ {
		in := bytes.Repeat([]byte{0xA7}, n)
		got := Sum20(in)
		again := Sum20(in)
		if got != again {
			t.Fatalf("nondeterministic at length %d", n)
		}
		k := string(got[:])
		if prev, dup := seen[k]; dup {
			t.Fatalf("digest collision between lengths %d and %d", prev, n)
		}
		seen[k] = n
	}
}

func TestMACProperties(t *testing.T) {
	key := []byte("0123456789abcdef")
	data := bytes.Repeat([]byte{0x33}, 64)
	mac := MAC(key, 0x1000, 5, data, 64)
	if len(mac) != 8 {
		t.Fatalf("64-bit MAC has %d bytes", len(mac))
	}
	if bytes.Equal(mac, MAC(key, 0x1040, 5, data, 64)) {
		t.Error("MAC ignores address")
	}
	if bytes.Equal(mac, MAC(key, 0x1000, 6, data, 64)) {
		t.Error("MAC ignores counter")
	}
	tampered := append([]byte(nil), data...)
	tampered[0] ^= 1
	if bytes.Equal(mac, MAC(key, 0x1000, 5, tampered, 64)) {
		t.Error("MAC ignores data")
	}
	if bytes.Equal(mac, MAC([]byte("another-key-...."), 0x1000, 5, data, 64)) {
		t.Error("MAC ignores key")
	}
}

func TestMACBadSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad MAC size did not panic")
		}
	}()
	MAC(nil, 0, 0, nil, 20)
}

func BenchmarkSum64B(b *testing.B) {
	data := make([]byte, 64)
	b.SetBytes(64)
	for i := 0; i < b.N; i++ {
		Sum20(data)
	}
}
