// Package sha1sum implements SHA-1 (FIPS 180-4) from scratch. It backs the
// baseline authentication schemes the paper compares against (Merkle trees
// of SHA-1 MACs with 80-640 cycle engine latencies) so that the functional
// simulation can compute real SHA-1-based authentication codes.
//
// SHA-1 is cryptographically broken for collision resistance; it is included
// here strictly as the historical comparator the 2006 paper evaluates.
package sha1sum

import "encoding/binary"

// Size is the SHA-1 digest size in bytes.
const Size = 20

// BlockSize is the SHA-1 message block size in bytes.
const BlockSize = 64

// Digest is an incremental SHA-1 computation. The zero value is not ready;
// use New.
type Digest struct {
	h   [5]uint32
	buf [BlockSize]byte
	n   int    // bytes buffered in buf
	len uint64 // total message length in bytes
}

// New returns an initialized SHA-1 hash.
func New() *Digest {
	d := &Digest{} //secmemlint:ignore hotpathalloc SHA-1 is the paper's comparator baseline, not the GCM production path; one digest allocation per MAC is the cost being measured
	d.Reset()
	return d
}

// Reset restores the initial hash value.
func (d *Digest) Reset() {
	d.h = [5]uint32{0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0}
	d.n = 0
	d.len = 0
}

// Write absorbs p. It never fails.
func (d *Digest) Write(p []byte) (int, error) {
	n := len(p)
	d.len += uint64(n)
	if d.n > 0 {
		c := copy(d.buf[d.n:], p)
		d.n += c
		p = p[c:]
		if d.n == BlockSize {
			d.block(d.buf[:])
			d.n = 0
		}
	}
	for len(p) >= BlockSize {
		d.block(p[:BlockSize])
		p = p[BlockSize:]
	}
	d.n += copy(d.buf[d.n:], p)
	return n, nil
}

// Sum returns the digest of everything written so far without disturbing
// the running state, appended to prefix.
func (d *Digest) Sum(prefix []byte) []byte {
	c := *d // copy so padding does not alter the stream
	var pad [BlockSize + 8]byte
	pad[0] = 0x80
	padLen := BlockSize - (int(c.len)+9)%BlockSize + 1
	if padLen == BlockSize+1 {
		padLen = 1
	}
	binary.BigEndian.PutUint64(pad[padLen:], c.len*8)
	c.Write(pad[:padLen+8])
	var out [Size]byte
	for i, v := range c.h {
		binary.BigEndian.PutUint32(out[4*i:], v)
	}
	return append(prefix, out[:]...) //secmemlint:ignore hotpathalloc SHA-1 is the paper's comparator baseline, not the GCM production path; MAC's Sum(mac[:0]) reuses the caller's fixed array
}

func (d *Digest) block(p []byte) {
	var w [80]uint32
	for i := 0; i < 16; i++ {
		w[i] = binary.BigEndian.Uint32(p[4*i:])
	}
	for i := 16; i < 80; i++ {
		v := w[i-3] ^ w[i-8] ^ w[i-14] ^ w[i-16]
		w[i] = v<<1 | v>>31
	}
	a, b, c, dd, e := d.h[0], d.h[1], d.h[2], d.h[3], d.h[4]
	for i := 0; i < 80; i++ {
		var f, k uint32
		switch {
		case i < 20:
			f = (b & c) | (^b & dd)
			k = 0x5A827999
		case i < 40:
			f = b ^ c ^ dd
			k = 0x6ED9EBA1
		case i < 60:
			f = (b & c) | (b & dd) | (c & dd)
			k = 0x8F1BBCDC
		default:
			f = b ^ c ^ dd
			k = 0xCA62C1D6
		}
		t := (a<<5 | a>>27) + f + e + k + w[i]
		e, dd, c, b, a = dd, c, b<<30|b>>2, a, t
	}
	d.h[0] += a
	d.h[1] += b
	d.h[2] += c
	d.h[3] += dd
	d.h[4] += e
}

// Sum20 computes the SHA-1 digest of data in one shot.
func Sum20(data []byte) [Size]byte {
	d := New()
	d.Write(data)
	var out [Size]byte
	copy(out[:], d.Sum(nil))
	return out
}

// MAC computes the keyed authentication code used by the SHA-1 baseline
// schemes: SHA-1(key ‖ addr ‖ counter ‖ data), truncated to macBits. The
// 2006-era schemes predate mandatory HMAC in this setting; a prefix-keyed
// truncated hash matches what the comparator designs assumed, and the
// simulator only relies on it detecting tampering, which it does.
//
func MAC(key []byte, addr, counter uint64, data []byte, macBits int) []byte {
	d := New()
	d.Write(key)
	var hdr [16]byte
	binary.BigEndian.PutUint64(hdr[0:], addr)
	binary.BigEndian.PutUint64(hdr[8:], counter)
	d.Write(hdr[:])
	d.Write(data)
	sum := d.Sum(nil)
	switch macBits {
	case 32, 64, 128:
		return sum[:macBits/8]
	default:
		panic("sha1sum: MAC size must be 32, 64, or 128 bits")
	}
}
