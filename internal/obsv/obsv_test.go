package obsv

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestHistogramBucketBoundaries(t *testing.T) {
	cases := []struct {
		v    uint64
		want int
	}{
		{0, 0},
		{1, 1},
		{2, 2}, {3, 2},
		{4, 3}, {7, 3},
		{8, 4}, {15, 4},
		{1 << 30, 31},
		{1<<31 - 1, 31},
		{1 << 31, 32},         // first value in the unbounded bucket
		{1 << 62, 32},         // far beyond the bounded range: clamped
		{^uint64(0), HistBuckets - 1}, // max value clamps to the last bucket
	}
	for _, c := range cases {
		if got := BucketIndex(c.v); got != c.want {
			t.Errorf("BucketIndex(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	// Boundary values land strictly below their bucket's upper bound.
	for i := 0; i < HistBuckets-1; i++ {
		bound := BucketBound(i)
		if bound == 0 {
			t.Fatalf("bounded bucket %d reports unbounded", i)
		}
		if idx := BucketIndex(bound - 1); idx > i {
			t.Errorf("value %d (below bound of bucket %d) classified into bucket %d", bound-1, i, idx)
		}
		if idx := BucketIndex(bound); idx != i+1 {
			t.Errorf("bound %d of bucket %d classified into bucket %d, want %d", bound, i, idx, i+1)
		}
	}
	if BucketBound(HistBuckets-1) != 0 {
		t.Errorf("last bucket should be unbounded")
	}

	h := &Histogram{}
	for _, v := range []uint64{0, 1, 1, 3, 8, 300} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Errorf("count = %d, want 6", h.Count())
	}
	if h.sum != 313 || h.min != 0 || h.max != 300 {
		t.Errorf("sum/min/max = %d/%d/%d, want 313/0/300", h.sum, h.min, h.max)
	}
	want := map[int]uint64{0: 1, 1: 2, 2: 1, 4: 1, 9: 1} // 300 in [256,512)
	for i, n := range h.buckets {
		if n != want[i] {
			t.Errorf("bucket %d = %d, want %d", i, n, want[i])
		}
	}
}

// simulatedRun drives a registry through a fixed sequence, standing in for
// one deterministic simulation.
func simulatedRun(reg *Registry) {
	miss := reg.Counter("ctrcache.miss")
	hit := reg.Counter("ctrcache.hit")
	wait := reg.Histogram("aes.pipe.wait")
	for i := 0; i < 100; i++ {
		if i%7 == 0 {
			miss.Inc()
			wait.Observe(uint64(i * 3))
		} else {
			hit.Inc()
		}
	}
	reg.SetGauge("bus.util", 0.4375)
}

func TestSnapshotDeterminism(t *testing.T) {
	var a, b bytes.Buffer
	r1 := NewRegistry()
	simulatedRun(r1)
	if err := r1.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	r2 := NewRegistry()
	simulatedRun(r2)
	if err := r2.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("two identical runs produced different JSON:\n%s\n---\n%s", a.String(), b.String())
	}

	// Registration order must not leak into the output: same values
	// registered in reverse order serialize identically.
	r3 := NewRegistry()
	r3.SetGauge("bus.util", 0.4375)
	r3.Histogram("aes.pipe.wait")
	r3.Counter("ctrcache.hit")
	r3.Counter("ctrcache.miss")
	simulatedRun(r3)
	var c bytes.Buffer
	if err := r3.WriteJSON(&c); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), c.Bytes()) {
		t.Errorf("registration order changed the JSON output")
	}

	var snap Snapshot
	if err := json.Unmarshal(a.Bytes(), &snap); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v", err)
	}
	if snap.Counters["ctrcache.miss"] != 15 || snap.Counters["ctrcache.hit"] != 85 {
		t.Errorf("counters = %v", snap.Counters)
	}
	if snap.Histograms["aes.pipe.wait"].Count != 15 {
		t.Errorf("histogram count = %d, want 15", snap.Histograms["aes.pipe.wait"].Count)
	}
}

func TestNilSafety(t *testing.T) {
	// Nil handles must be no-ops: this is the uninstrumented hot path.
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Errorf("nil counter value = %d", c.Value())
	}
	var g *Gauge
	g.Set(1)
	if g.Value() != 0 {
		t.Errorf("nil gauge value = %v", g.Value())
	}
	var h *Histogram
	h.Observe(7)
	if h.Count() != 0 || h.Mean() != 0 {
		t.Errorf("nil histogram recorded something")
	}

	// Nil registry hands out nil handles and snapshots empty.
	var reg *Registry
	if reg.Counter("a.b") != nil || reg.Gauge("a.b") != nil || reg.Histogram("a.b") != nil {
		t.Errorf("nil registry returned a live handle")
	}
	reg.SetGauge("a.b", 1)
	if names := reg.CounterNames(); names != nil {
		t.Errorf("nil registry has counters: %v", names)
	}
	s := reg.Snapshot()
	if len(s.Counters) != 0 || len(s.Gauges) != 0 || len(s.Histograms) != 0 {
		t.Errorf("nil registry snapshot not empty: %+v", s)
	}

	// Nil recorder accepts every call and writes a valid empty trace.
	var rec *Recorder
	rec.Span("bus", "xfer", 1, 2)
	rec.SpanID("bus", "xfer", 1, 2, 3)
	rec.Instant("ctl", "tamper", 4)
	rec.Begin("txn", "read", 1, 0)
	rec.End("txn", "read", 1, 9)
	if rec.Len() != 0 || rec.Dropped() != 0 {
		t.Errorf("nil recorder stored events")
	}
	var buf bytes.Buffer
	if err := rec.WriteJSON(&buf); err != nil {
		t.Fatalf("nil recorder WriteJSON: %v", err)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("nil recorder trace is not JSON: %v", err)
	}
	if len(doc.TraceEvents) != 0 {
		t.Errorf("nil recorder trace has %d events", len(doc.TraceEvents))
	}
}

func TestBadMetricNamesPanic(t *testing.T) {
	reg := NewRegistry()
	for _, name := range []string{"", "Upper.case", "sp ace", ".leading", "trailing.", "dash-ed"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q did not panic", name)
				}
			}()
			reg.Counter(name)
		}()
	}
}

func TestRecorderTraceShape(t *testing.T) {
	rec := NewRecorder(0)
	rec.Begin("txn", "read", 1, 100)
	rec.Span("bus", "xfer", 100, 132)
	rec.SpanID("merkle.level0", "fetch", 132, 300, 1)
	rec.SpanID("merkle.level1", "fetch", 132, 310, 1)
	rec.Instant("ctl", "tamper", 305)
	rec.End("txn", "read", 1, 340)
	if rec.Len() != 6 {
		t.Fatalf("len = %d, want 6", rec.Len())
	}

	var buf bytes.Buffer
	if err := rec.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			Ts   uint64         `json:"ts"`
			Dur  *uint64        `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, buf.String())
	}
	// 5 tracks get metadata naming events, then the 6 recorded events.
	if len(doc.TraceEvents) != 5+6 {
		t.Fatalf("trace has %d events, want 11", len(doc.TraceEvents))
	}
	tids := map[string]int{}
	for _, e := range doc.TraceEvents {
		if e.Ph == "M" {
			if e.Name != "thread_name" {
				t.Errorf("metadata event named %q", e.Name)
			}
			tids[e.Args["name"].(string)] = e.Tid
		}
	}
	for _, e := range doc.TraceEvents {
		if e.Ph == "M" {
			continue
		}
		if tids[e.Cat] != e.Tid {
			t.Errorf("event %s/%s on tid %d, track registered as %d", e.Cat, e.Name, e.Tid, tids[e.Cat])
		}
		if e.Ph == "X" && e.Dur == nil {
			t.Errorf("complete event %s/%s missing dur", e.Cat, e.Name)
		}
	}
	// The two Merkle-level fetches overlap in time: that is the parallel
	// authentication picture the trace exists to show.
	if !strings.Contains(buf.String(), "merkle.level1") {
		t.Errorf("trace missing merkle.level1 track")
	}

	// Byte determinism for identical event sequences.
	rec2 := NewRecorder(0)
	rec2.Begin("txn", "read", 1, 100)
	rec2.Span("bus", "xfer", 100, 132)
	rec2.SpanID("merkle.level0", "fetch", 132, 300, 1)
	rec2.SpanID("merkle.level1", "fetch", 132, 310, 1)
	rec2.Instant("ctl", "tamper", 305)
	rec2.End("txn", "read", 1, 340)
	var buf2 bytes.Buffer
	if err := rec2.WriteJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Errorf("identical recordings produced different JSON")
	}
}

func TestRecorderCap(t *testing.T) {
	rec := NewRecorder(3)
	for i := 0; i < 10; i++ {
		rec.Span("bus", "xfer", uint64(i), uint64(i+1))
	}
	if rec.Len() != 3 {
		t.Errorf("len = %d, want 3", rec.Len())
	}
	if rec.Dropped() != 7 {
		t.Errorf("dropped = %d, want 7", rec.Dropped())
	}
}
