package obsv

import (
	"bytes"
	"strings"
	"testing"
)

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("ctl.fill").Add(42)
	r.SetGauge("bus.util", 0.375)
	h := r.Histogram("ctl.read.cycles")
	h.Observe(0)
	h.Observe(3)
	h.Observe(3)
	h.Observe(500)

	var buf bytes.Buffer
	if err := r.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	for _, want := range []string{
		"# TYPE secmem_ctl_fill_total counter\n",
		"secmem_ctl_fill_total 42\n",
		"# TYPE secmem_bus_util gauge\n",
		"secmem_bus_util 0.375\n",
		"# TYPE secmem_ctl_read_cycles histogram\n",
		"secmem_ctl_read_cycles_sum 506\n",
		"secmem_ctl_read_cycles_count 4\n",
		`secmem_ctl_read_cycles_bucket{le="+Inf"} 4` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}

	// Buckets must be cumulative: the zero bucket holds 1, [2,4) adds 2,
	// and the 500 observation lands in [256,512) bringing the total to 4.
	if !strings.Contains(out, `secmem_ctl_read_cycles_bucket{le="1"} 1`+"\n") {
		t.Errorf("zero bucket not cumulative:\n%s", out)
	}
	if !strings.Contains(out, `secmem_ctl_read_cycles_bucket{le="4"} 3`+"\n") {
		t.Errorf("[2,4) bucket not cumulative:\n%s", out)
	}
	if !strings.Contains(out, `secmem_ctl_read_cycles_bucket{le="512"} 4`+"\n") {
		t.Errorf("[256,512) bucket not cumulative:\n%s", out)
	}
}

func TestPrometheusDeterministicAndSorted(t *testing.T) {
	build := func(order []string) string {
		r := NewRegistry()
		for i, n := range order {
			r.Counter(n).Add(uint64(i + 1))
		}
		var buf bytes.Buffer
		if err := r.Snapshot().WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	// Same values, different registration order: identical bytes. The
	// counters are registered with order-dependent values mapped by name so
	// both runs agree on value per name.
	a := build([]string{"a.one", "b.two", "c.three"})
	r := NewRegistry()
	r.Counter("c.three").Add(3)
	r.Counter("a.one").Add(1)
	r.Counter("b.two").Add(2)
	var buf bytes.Buffer
	if err := r.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if a != buf.String() {
		t.Errorf("exposition depends on registration order:\n%s\nvs\n%s", a, buf.String())
	}
	if strings.Index(a, "secmem_a_one") > strings.Index(a, "secmem_b_two") {
		t.Error("metrics not sorted by name")
	}
}

func TestPrometheusEmptyHistogramCloses(t *testing.T) {
	r := NewRegistry()
	r.Histogram("never.observed")
	var buf bytes.Buffer
	if err := r.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `secmem_never_observed_bucket{le="+Inf"} 0`+"\n") {
		t.Errorf("empty histogram has no +Inf bucket:\n%s", out)
	}
}
