package obsv

import "sort"

// Absorb folds src into r using the sharded-merge discipline (see
// ShardedRegistry.Merge): counters add, gauges keep the maximum of set
// values, histograms merge bucket-wise. The sharded sim core uses it to
// land a run's merged shard metrics in the caller-provided registry without
// replacing it (registries accumulate across runs). Call only after the
// goroutines writing src are joined; no-op when either side is nil.
func (r *Registry) Absorb(src *Registry) {
	if r == nil || src == nil {
		return
	}
	for _, name := range src.CounterNames() {
		r.Counter(name).Add(src.counters[name].v)
	}
	for _, name := range src.GaugeNames() {
		v := src.gauges[name].v
		if g, ok := r.gauges[name]; ok {
			if v > g.v {
				g.Set(v)
			}
			continue
		}
		r.Gauge(name).Set(v)
	}
	for _, name := range src.HistogramNames() {
		v := src.hists[name]
		if v.count == 0 {
			continue
		}
		h := r.Histogram(name)
		for i, n := range v.buckets {
			h.buckets[i] += n
		}
		if h.count == 0 || v.min < h.min {
			h.min = v.min
		}
		if v.max > h.max {
			h.max = v.max
		}
		h.count += v.count
		h.sum += v.sum
	}
}

// Capacity reports the sampler's ring capacity in samples (zero for nil).
// The sharded runner uses it to give every shard a ring shaped like the
// caller's.
func (s *Sampler) Capacity() int {
	if s == nil {
		return 0
	}
	return s.capacity
}

// Load replaces the sampler's (empty) ring with an already-merged time
// series, after which Export, WriteJSON, WriteCSV, and EmitTrace serve the
// loaded samples. This is how a sharded run's merged trajectory lands in
// the sampler the caller attached (and the live server polls): the shards
// sample into private rings, MergeTimeSeries combines them, Load publishes
// the result. Panics if the sampler has already recorded samples — Load is
// a publication step, not an append. The ring grows to fit if the merged
// series is larger than the configured capacity.
func (s *Sampler) Load(ts TimeSeries) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.total > 0 {
		panic("obsv: Load on a sampler that has already sampled")
	}
	s.frozen = true
	s.names = append([]string(nil), ts.Series...)
	s.probes = nil
	if len(ts.Samples) > s.capacity {
		s.capacity = len(ts.Samples)
	}
	s.cycles = make([]uint64, s.capacity)
	s.data = make([]float64, s.capacity*len(s.names))
	for i, smp := range ts.Samples {
		s.cycles[i] = smp.Cycle
		copy(s.data[i*len(s.names):(i+1)*len(s.names)], smp.Values)
	}
	s.head = len(ts.Samples) % s.capacity
	s.count = len(ts.Samples)
	s.total = uint64(len(ts.Samples)) + ts.Overwritten
	if n := len(ts.Samples); n > 0 {
		s.next = ts.Samples[n-1].Cycle + 1
	}
}

// GaugeSeries classifies the series names whose cross-shard aggregate is a
// maximum rather than a sum: instantaneous utilizations, rates, and
// occupancies. Everything else (cumulative event counts) sums. The set
// matches Controller.RegisterProbes and the ShardedRegistry gauge
// discipline.
func GaugeSeries(name string) bool {
	switch name {
	case "bus.util", "dram.util", "ctrcache.hitrate", "rsr.occupancy":
		return true
	}
	return false
}

// MergeTimeSeries combines per-shard time series into one, deterministic in
// shard-index order. All inputs must share the interval and series set
// (they come from identically-configured samplers). The merged series
// covers the union of sample cycles; a shard that finished before a given
// cycle contributes its final row (its counters have stopped moving), and a
// shard whose first sample is later contributes zeros. Per cycle, series
// for which gauge(name) is true take the maximum across shards, the rest
// sum. gauge may be nil, meaning "everything sums".
func MergeTimeSeries(shards []TimeSeries, gauge func(name string) bool) TimeSeries {
	out := TimeSeries{Series: []string{}, Samples: []Sample{}}
	live := shards[:0:0]
	for _, ts := range shards {
		if len(ts.Samples) > 0 {
			live = append(live, ts)
		}
		out.Overwritten += ts.Overwritten
	}
	if len(live) == 0 {
		if len(shards) > 0 {
			out.IntervalCycles = shards[0].IntervalCycles
			out.Series = append(out.Series, shards[0].Series...)
		}
		return out
	}
	out.IntervalCycles = live[0].IntervalCycles
	out.Series = append(out.Series, live[0].Series...)
	for _, ts := range live[1:] {
		if ts.IntervalCycles != out.IntervalCycles || len(ts.Series) != len(out.Series) {
			panic("obsv: merging time series from differently-configured samplers")
		}
		for i, n := range ts.Series {
			if n != out.Series[i] {
				panic("obsv: merging time series with different series sets")
			}
		}
	}
	// Union of sample cycles, sorted.
	seen := map[uint64]bool{}
	var cycles []uint64
	for _, ts := range live {
		for _, smp := range ts.Samples {
			if !seen[smp.Cycle] {
				seen[smp.Cycle] = true
				cycles = append(cycles, smp.Cycle)
			}
		}
	}
	sort.Slice(cycles, func(i, j int) bool { return cycles[i] < cycles[j] })
	// Walk all shards in lockstep, carrying each one's last row forward.
	pos := make([]int, len(live))
	ncols := len(out.Series)
	for _, cyc := range cycles {
		row := make([]float64, ncols)
		for si, ts := range live {
			for pos[si] < len(ts.Samples) && ts.Samples[pos[si]].Cycle <= cyc {
				pos[si]++
			}
			if pos[si] == 0 {
				continue // shard hasn't sampled yet: all-zero contribution
			}
			vals := ts.Samples[pos[si]-1].Values
			for ci := 0; ci < ncols; ci++ {
				if gauge != nil && gauge(out.Series[ci]) {
					// Registered gauge series are utilizations and
					// occupancies, never negative, so max-vs-zero is safe
					// even for shards that haven't sampled yet.
					if vals[ci] > row[ci] {
						row[ci] = vals[ci]
					}
				} else {
					row[ci] += vals[ci]
				}
			}
		}
		out.Samples = append(out.Samples, Sample{Cycle: cyc, Values: row})
	}
	return out
}
