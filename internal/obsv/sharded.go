package obsv

import "sort"

// ShardedRegistry gives each worker goroutine its own private Registry and
// merges them deterministically afterwards. It exists because a Registry
// is deliberately unsynchronized (the hot path is one predicted branch and
// one add, and a shared atomic would put a contended cache line in every
// subsystem): when the parallel simulator core or the secmemd shards run N
// machines on N goroutines, each records into its own shard with zero
// cross-goroutine traffic, and the coordinator merges once at the end.
//
// The sharing discipline is the partitioned-index idiom the sharedstate
// analyzer blesses: shard i is touched only by worker i while workers run,
// and Merge is called only after the workers are joined. Nothing here
// locks, because nothing here is ever accessed concurrently.
//
// The nil ShardedRegistry hands out nil shards, which hand out nil
// handles: uninstrumented parallel runs pay the usual single branch.
type ShardedRegistry struct {
	shards []*Registry
}

// NewSharded builds n empty per-worker registries. n must be positive.
func NewSharded(n int) *ShardedRegistry {
	if n <= 0 {
		panic("obsv: sharded registry needs at least one shard")
	}
	s := &ShardedRegistry{shards: make([]*Registry, n)}
	for i := range s.shards {
		s.shards[i] = NewRegistry()
	}
	return s
}

// Shards reports the shard count (zero for nil).
func (s *ShardedRegistry) Shards() int {
	if s == nil {
		return 0
	}
	return len(s.shards)
}

// Shard returns worker i's registry. Returns nil on a nil receiver, so an
// uninstrumented campaign can index unconditionally.
func (s *ShardedRegistry) Shard(i int) *Registry {
	if s == nil {
		return nil
	}
	return s.shards[i]
}

// Merge folds every shard into one new Registry, visiting metric names in
// sorted order so the result is independent of both shard order and map
// iteration order:
//
//   - counters sum across shards;
//   - histograms merge bucket-wise (counts and sums add; min/max combine
//     over shards that observed anything);
//   - gauges take the maximum across shards that set them — the
//     registered gauges are utilizations, hit rates, and high-water marks,
//     for which "worst/ busiest shard" is the meaningful aggregate and,
//     unlike last-writer-wins, is deterministic.
//
// Call after the worker goroutines are joined.
func (s *ShardedRegistry) Merge() *Registry {
	out := NewRegistry()
	if s == nil {
		return out
	}
	for _, name := range s.counterNames() {
		c := out.Counter(name)
		for _, sh := range s.shards {
			if v, ok := sh.counters[name]; ok {
				c.Add(v.v)
			}
		}
	}
	for _, name := range s.gaugeNames() {
		g := out.Gauge(name)
		first := true
		for _, sh := range s.shards {
			if v, ok := sh.gauges[name]; ok {
				if first || v.v > g.v {
					g.Set(v.v)
				}
				first = false
			}
		}
	}
	for _, name := range s.histNames() {
		h := out.Histogram(name)
		for _, sh := range s.shards {
			v, ok := sh.hists[name]
			if !ok || v.count == 0 {
				continue
			}
			for i, n := range v.buckets {
				h.buckets[i] += n
			}
			if h.count == 0 || v.min < h.min {
				h.min = v.min
			}
			if v.max > h.max {
				h.max = v.max
			}
			h.count += v.count
			h.sum += v.sum
		}
	}
	return out
}

// counterNames is the sorted union of counter names across shards.
func (s *ShardedRegistry) counterNames() []string {
	seen := map[string]bool{}
	var names []string
	for _, sh := range s.shards {
		for _, n := range sh.CounterNames() {
			if !seen[n] {
				seen[n] = true
				names = append(names, n)
			}
		}
	}
	return sortedUnion(names)
}

func (s *ShardedRegistry) gaugeNames() []string {
	seen := map[string]bool{}
	var names []string
	for _, sh := range s.shards {
		for _, n := range sh.GaugeNames() {
			if !seen[n] {
				seen[n] = true
				names = append(names, n)
			}
		}
	}
	return sortedUnion(names)
}

func (s *ShardedRegistry) histNames() []string {
	seen := map[string]bool{}
	var names []string
	for _, sh := range s.shards {
		for _, n := range sh.HistogramNames() {
			if !seen[n] {
				seen[n] = true
				names = append(names, n)
			}
		}
	}
	return sortedUnion(names)
}

// sortedUnion sorts a de-duplicated name union in place and returns it.
func sortedUnion(names []string) []string {
	sort.Strings(names)
	return names
}
