package obsv

import (
	"bufio"
	"io"
	"sort"
	"strconv"
	"strings"
)

// promNamespace prefixes every exposed metric so secmem series are
// unambiguous when scraped next to other jobs.
const promNamespace = "secmem"

// promName maps a registry name ("ctrcache.hit") to a Prometheus metric
// name ("secmem_ctrcache_hit"). The registry grammar ([a-z0-9_.]) maps
// cleanly: dots become underscores, nothing else needs escaping.
func promName(name string) string {
	return promNamespace + "_" + strings.ReplaceAll(name, ".", "_")
}

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format (version 0.0.4, the format every scraper accepts):
//
//   - counters expose as "<name>_total" with TYPE counter;
//   - gauges expose as "<name>" with TYPE gauge;
//   - histograms expose the full conventional triple — cumulative
//     "<name>_bucket{le="..."}" series over the power-of-two bounds plus
//     the closing le="+Inf", "<name>_sum", and "<name>_count" — so
//     PromQL's histogram_quantile works unchanged on the scraped series.
//
// Output is sorted by metric name and byte-deterministic for identical
// snapshots, like every other exporter in this package.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)

	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		pn := promName(n) + "_total"
		bw.WriteString("# TYPE " + pn + " counter\n")
		bw.WriteString(pn + " " + strconv.FormatUint(s.Counters[n], 10) + "\n")
	}

	names = names[:0]
	for n := range s.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		pn := promName(n)
		bw.WriteString("# TYPE " + pn + " gauge\n")
		bw.WriteString(pn + " " + strconv.FormatFloat(s.Gauges[n], 'g', -1, 64) + "\n")
	}

	names = names[:0]
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := s.Histograms[n]
		pn := promName(n)
		bw.WriteString("# TYPE " + pn + " histogram\n")
		// The snapshot stores per-bucket counts sparsely; Prometheus wants
		// cumulative counts over the ordered bounds. Snapshot buckets are
		// already in bound order with the unbounded tail (Le == 0) last.
		var cum uint64
		for _, b := range h.Buckets {
			cum += b.N
			le := "+Inf"
			if b.Le != 0 {
				le = strconv.FormatUint(b.Le, 10)
			}
			bw.WriteString(pn + `_bucket{le="` + le + `"} ` + strconv.FormatUint(cum, 10) + "\n")
		}
		if len(h.Buckets) == 0 || h.Buckets[len(h.Buckets)-1].Le != 0 {
			// No observation reached the tail bucket; close the series so
			// histogram_quantile always sees a +Inf bound.
			bw.WriteString(pn + `_bucket{le="+Inf"} ` + strconv.FormatUint(cum, 10) + "\n")
		}
		bw.WriteString(pn + "_sum " + strconv.FormatUint(h.Sum, 10) + "\n")
		bw.WriteString(pn + "_count " + strconv.FormatUint(h.Count, 10) + "\n")
	}
	return bw.Flush()
}
