package obsv

import (
	"math"
	"testing"
)

func snapOf(values ...uint64) HistSnapshot {
	r := NewRegistry()
	h := r.Histogram("h")
	for _, v := range values {
		h.Observe(v)
	}
	return r.Snapshot().Histograms["h"]
}

func TestHistSnapshotMeanEmptyIsZeroNotNaN(t *testing.T) {
	var h HistSnapshot
	if got := h.Mean(); got != 0 || math.IsNaN(got) {
		t.Errorf("empty Mean() = %v, want 0", got)
	}
	var hp *Histogram
	if got := hp.Mean(); got != 0 {
		t.Errorf("nil Histogram Mean() = %v, want 0", got)
	}
	if got := (&Histogram{}).Mean(); got != 0 || math.IsNaN(got) {
		t.Errorf("empty Histogram Mean() = %v, want 0", got)
	}
}

func TestQuantileEdges(t *testing.T) {
	var empty HistSnapshot
	for _, q := range []float64{0, 0.5, 1} {
		if got := empty.Quantile(q); got != 0 {
			t.Errorf("empty Quantile(%g) = %g, want 0", q, got)
		}
	}
	h := snapOf(10, 20, 30, 1000)
	if got := h.Quantile(0); got != 10 {
		t.Errorf("Quantile(0) = %g, want Min 10", got)
	}
	if got := h.Quantile(-1); got != 10 {
		t.Errorf("Quantile(-1) = %g, want Min 10", got)
	}
	if got := h.Quantile(1); got != 1000 {
		t.Errorf("Quantile(1) = %g, want Max 1000", got)
	}
	if got := h.Quantile(2); got != 1000 {
		t.Errorf("Quantile(2) = %g, want Max 1000", got)
	}
}

func TestQuantileWithinBucketError(t *testing.T) {
	// 100 observations of the same value: every quantile must return it
	// exactly (the interpolated value clamps to [Min, Max]).
	vals := make([]uint64, 100)
	for i := range vals {
		vals[i] = 37
	}
	h := snapOf(vals...)
	for _, q := range []float64{0.01, 0.5, 0.95, 0.99} {
		if got := h.Quantile(q); got != 37 {
			t.Errorf("constant hist Quantile(%g) = %g, want 37", q, got)
		}
	}

	// Uniform-ish spread: the estimate must sit within a factor of two of
	// the true quantile (one power-of-two bucket width).
	vals = vals[:0]
	for v := uint64(1); v <= 1024; v++ {
		vals = append(vals, v)
	}
	h = snapOf(vals...)
	for _, tc := range []struct{ q, truth float64 }{
		{0.50, 512}, {0.95, 973}, {0.99, 1014},
	} {
		got := h.Quantile(tc.q)
		if got < tc.truth/2 || got > tc.truth*2 {
			t.Errorf("Quantile(%g) = %g, want within [%g, %g]", tc.q, got, tc.truth/2, tc.truth*2)
		}
	}
}

func TestQuantileMonotone(t *testing.T) {
	h := snapOf(0, 0, 1, 3, 9, 27, 81, 243, 729, 100000)
	prev := math.Inf(-1)
	for q := 0.0; q <= 1.0; q += 0.05 {
		got := h.Quantile(q)
		if got < prev {
			t.Fatalf("Quantile(%g) = %g < previous %g: not monotone", q, got, prev)
		}
		prev = got
	}
}

func TestSnapshotCarriesPercentiles(t *testing.T) {
	h := snapOf(1, 2, 4, 8, 16, 32, 64, 128)
	if h.P50 != h.Quantile(0.50) || h.P95 != h.Quantile(0.95) || h.P99 != h.Quantile(0.99) {
		t.Errorf("snapshot percentiles (%g, %g, %g) disagree with Quantile", h.P50, h.P95, h.P99)
	}
	if h.P50 > h.P95 || h.P95 > h.P99 {
		t.Errorf("percentiles not monotone: %g, %g, %g", h.P50, h.P95, h.P99)
	}
	if h.P50 < float64(h.Min) || h.P99 > float64(h.Max) {
		t.Errorf("percentiles escape [Min, Max]: %g, %g vs [%d, %d]", h.P50, h.P99, h.Min, h.Max)
	}
}

func TestBucketBoundRoundTrip(t *testing.T) {
	// Negative and overflowing indices clamp instead of misbehaving.
	if got := BucketBound(-1); got != 1 {
		t.Errorf("BucketBound(-1) = %d, want 1 (clamped to bucket 0)", got)
	}
	if got := BucketBound(HistBuckets - 1); got != 0 {
		t.Errorf("BucketBound(last) = %d, want 0 (unbounded)", got)
	}
	if got := BucketBound(HistBuckets + 10); got != 0 {
		t.Errorf("BucketBound(overflow) = %d, want 0 (clamped to tail)", got)
	}
	// Round-trip across every bounded bucket, including the 2^31 edge where
	// the bounded range meets the unbounded tail.
	for i := 0; i < HistBuckets-1; i++ {
		b := BucketBound(i)
		if got := BucketIndex(b); got != i+1 {
			t.Errorf("BucketIndex(BucketBound(%d)=%d) = %d, want %d", i, b, got, i+1)
		}
		if got := BucketIndex(b - 1); got > i {
			t.Errorf("BucketIndex(BucketBound(%d)-1) = %d, want <= %d", i, got, i)
		}
	}
	// uint64 extremes land in the tail bucket.
	if got := BucketIndex(math.MaxUint64); got != HistBuckets-1 {
		t.Errorf("BucketIndex(MaxUint64) = %d, want %d", got, HistBuckets-1)
	}
	if got := BucketIndex(0); got != 0 {
		t.Errorf("BucketIndex(0) = %d, want 0", got)
	}
}

func TestRegistryNameLists(t *testing.T) {
	r := NewRegistry()
	r.Counter("z.c")
	r.Counter("a.c")
	r.Gauge("z.g")
	r.Gauge("a.g")
	r.Histogram("z.h")
	r.Histogram("a.h")
	check := func(kind string, got []string, want ...string) {
		t.Helper()
		if len(got) != len(want) {
			t.Fatalf("%s = %v, want %v", kind, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s = %v, want %v", kind, got, want)
			}
		}
	}
	check("CounterNames", r.CounterNames(), "a.c", "z.c")
	check("GaugeNames", r.GaugeNames(), "a.g", "z.g")
	check("HistogramNames", r.HistogramNames(), "a.h", "z.h")
	var nilr *Registry
	if nilr.GaugeNames() != nil || nilr.HistogramNames() != nil {
		t.Error("nil registry returns non-nil name lists")
	}
}
