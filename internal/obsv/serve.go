package obsv

import (
	"net/http"
	"net/http/pprof"
	"sync/atomic"
)

// Server is the live exposition endpoint: an http.Handler that serves the
// observability artifacts of a running simulation without ever touching
// the simulation goroutine's mutable state. It is the first network-facing
// step toward the secmemd service in the ROADMAP.
//
// The safety model is publish-don't-share. The simulation goroutine owns
// its Registry and Recorder (both deliberately unsynchronized); at each
// sample boundary it builds an immutable Snapshot and hands it over via an
// atomic pointer, and when the run finishes it hands over the rendered
// trace bytes the same way. HTTP goroutines only ever read published
// immutable values — the one mutable structure they touch is the Sampler
// ring, which carries its own mutex for exactly this reason.
//
// Routes:
//
//	/metrics          Prometheus text exposition of the latest snapshot
//	/metrics.json     the same snapshot as registry JSON
//	/timeseries.json  the sampler ring (sorted series, oldest first)
//	/timeseries.csv   the same ring as CSV
//	/trace.json       the Chrome trace (503 until the run completes)
//	/debug/pprof/*    the standard Go profiling endpoints
type Server struct {
	mux  *http.ServeMux
	smp  *Sampler // may be nil: /timeseries.* then serve an empty ring
	snap atomic.Pointer[Snapshot]
	trc  atomic.Pointer[[]byte]
}

// NewServer builds a server over an optional sampler. Publish at least one
// snapshot before exposing the address, so /metrics never 503s.
func NewServer(smp *Sampler) *Server {
	s := &Server{mux: http.NewServeMux(), smp: smp}
	s.mux.HandleFunc("/", s.handleIndex)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/metrics.json", s.handleMetricsJSON)
	s.mux.HandleFunc("/timeseries.json", s.handleTimeseriesJSON)
	s.mux.HandleFunc("/timeseries.csv", s.handleTimeseriesCSV)
	s.mux.HandleFunc("/trace.json", s.handleTrace)
	// Register the pprof handlers explicitly on our mux rather than
	// importing the package for its DefaultServeMux side effect: the
	// server stays usable inside other processes (secmemd) without
	// polluting the global mux.
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return s
}

// Publish makes snap the state served by /metrics and /metrics.json. The
// caller must not mutate snap afterwards; build it fresh per publish
// (Registry.Snapshot always does).
func (s *Server) Publish(snap Snapshot) {
	s.snap.Store(&snap)
}

// PublishTrace makes the rendered Chrome-trace bytes available at
// /trace.json. Call once, after the run completes; the caller must not
// mutate b afterwards.
func (s *Server) PublishTrace(b []byte) {
	s.trc.Store(&b)
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

func (s *Server) latest() Snapshot {
	if p := s.snap.Load(); p != nil {
		return *p
	}
	// Nothing published yet: serve the empty (but well-formed) snapshot.
	return Snapshot{
		Counters:   map[string]uint64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistSnapshot{},
	}
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	w.Write([]byte(`<html><head><title>secmem observability</title></head><body>
<h1>secmem observability</h1><ul>
<li><a href="/metrics">/metrics</a> — Prometheus text exposition</li>
<li><a href="/metrics.json">/metrics.json</a> — registry snapshot JSON</li>
<li><a href="/timeseries.json">/timeseries.json</a> — sampled metric trajectories</li>
<li><a href="/timeseries.csv">/timeseries.csv</a> — the same as CSV</li>
<li><a href="/trace.json">/trace.json</a> — Chrome/Perfetto trace (after the run)</li>
<li><a href="/debug/pprof/">/debug/pprof/</a> — Go profiling</li>
</ul></body></html>
`))
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.latest().WritePrometheus(w); err != nil {
		// Headers are gone; nothing useful left to do but drop the conn.
		return
	}
}

func (s *Server) handleMetricsJSON(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	s.latest().WriteJSON(w) //nolint:errcheck // best effort once streaming
}

func (s *Server) handleTimeseriesJSON(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	s.smp.WriteJSON(w) //nolint:errcheck // best effort once streaming
}

func (s *Server) handleTimeseriesCSV(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/csv; charset=utf-8")
	s.smp.WriteCSV(w) //nolint:errcheck // best effort once streaming
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	p := s.trc.Load()
	if p == nil {
		http.Error(w, "trace not available until the run completes", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(*p)
}
