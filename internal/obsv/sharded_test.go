package obsv

import (
	"bytes"
	"testing"
)

func TestShardedMergeSemantics(t *testing.T) {
	sh := NewSharded(3)
	if sh.Shards() != 3 {
		t.Fatalf("Shards() = %d, want 3", sh.Shards())
	}
	// Counters sum; names present in only some shards still merge.
	sh.Shard(0).Counter("ctl.fill").Add(10)
	sh.Shard(1).Counter("ctl.fill").Add(32)
	sh.Shard(2).Counter("only.here").Inc()
	// Gauges take the max across shards that set them.
	sh.Shard(0).SetGauge("bus.util", 0.25)
	sh.Shard(2).SetGauge("bus.util", 0.75)
	sh.Shard(1).SetGauge("solo", -2)
	// Histograms merge bucket-wise with min/max combined.
	sh.Shard(0).Histogram("lat").Observe(4)
	sh.Shard(0).Histogram("lat").Observe(100)
	sh.Shard(2).Histogram("lat").Observe(1)

	m := sh.Merge()
	if got := m.Counter("ctl.fill").Value(); got != 42 {
		t.Errorf("merged ctl.fill = %d, want 42", got)
	}
	if got := m.Counter("only.here").Value(); got != 1 {
		t.Errorf("merged only.here = %d, want 1", got)
	}
	if got := m.Gauge("bus.util").Value(); got != 0.75 {
		t.Errorf("merged bus.util = %g, want 0.75 (max)", got)
	}
	if got := m.Gauge("solo").Value(); got != -2 {
		t.Errorf("merged solo = %g, want -2", got)
	}
	h := m.Snapshot().Histograms["lat"]
	if h.Count != 3 || h.Sum != 105 || h.Min != 1 || h.Max != 100 {
		t.Errorf("merged lat = count %d sum %d min %d max %d, want 3/105/1/100",
			h.Count, h.Sum, h.Min, h.Max)
	}
	var total uint64
	for _, b := range h.Buckets {
		total += b.N
	}
	if total != 3 {
		t.Errorf("merged lat buckets hold %d observations, want 3", total)
	}
}

func TestShardedMergeDeterministic(t *testing.T) {
	build := func(order []int) string {
		sh := NewSharded(4)
		for _, i := range order {
			sh.Shard(i).Counter("c.a").Add(uint64(i + 1))
			sh.Shard(i).SetGauge("g.x", float64(i))
			sh.Shard(i).Histogram("h.l").Observe(uint64(1 << i))
		}
		var buf bytes.Buffer
		if err := sh.Merge().WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a := build([]int{0, 1, 2, 3})
	b := build([]int{3, 1, 0, 2})
	if a != b {
		t.Error("merge output depends on shard fill order")
	}
}

func TestShardedEmptyShardsIgnored(t *testing.T) {
	sh := NewSharded(2)
	sh.Shard(0).Histogram("lat").Observe(7)
	// Shard 1 registers the histogram but never observes: its zero min must
	// not clobber the merged min.
	sh.Shard(1).Histogram("lat")
	h := sh.Merge().Snapshot().Histograms["lat"]
	if h.Min != 7 || h.Max != 7 || h.Count != 1 {
		t.Errorf("empty shard polluted merge: min %d max %d count %d", h.Min, h.Max, h.Count)
	}
}

func TestShardedNilSafety(t *testing.T) {
	var sh *ShardedRegistry
	if sh.Shards() != 0 {
		t.Error("nil sharded registry has shards")
	}
	if sh.Shard(3) != nil {
		t.Error("nil sharded registry hands out non-nil shard")
	}
	// The nil shard's handles must be usable.
	sh.Shard(0).Counter("x").Inc()
	m := sh.Merge()
	if m == nil || len(m.CounterNames()) != 0 {
		t.Error("nil merge not empty")
	}
}

func TestShardedPanicsOnBadCount(t *testing.T) {
	for _, n := range []int{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewSharded(%d) did not panic", n)
				}
			}()
			NewSharded(n)
		}()
	}
}

func TestShardCounterIncDoesNotAllocate(t *testing.T) {
	sh := NewSharded(2)
	c := sh.Shard(1).Counter("hot.path")
	h := sh.Shard(1).Histogram("hot.lat")
	avg := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		h.Observe(17)
	})
	if avg != 0 {
		t.Errorf("shard hot-path metrics allocate %.1f times per op, want 0", avg)
	}
}
