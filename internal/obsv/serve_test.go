package obsv

import (
	"io"
	"net/http/httptest"
	"strings"
	"testing"
)

func get(t *testing.T, srv *Server, path string) (int, string) {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, req)
	res := w.Result()
	body, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	return res.StatusCode, string(body)
}

func TestServerRoutes(t *testing.T) {
	smp := NewSampler(100, 0)
	smp.Series("bus.util", func(cycle uint64) float64 { return float64(cycle) / 1000 })
	smp.Tick(300)

	srv := NewServer(smp)

	// Before any Publish, /metrics serves the empty snapshot, not an error.
	if code, body := get(t, srv, "/metrics"); code != 200 || body != "" {
		t.Errorf("/metrics before publish: code %d body %q", code, body)
	}

	reg := NewRegistry()
	reg.Counter("ctl.fill").Add(7)
	reg.SetGauge("bus.util", 0.5)
	srv.Publish(reg.Snapshot())

	code, body := get(t, srv, "/metrics")
	if code != 200 {
		t.Fatalf("/metrics code %d", code)
	}
	for _, want := range []string{"secmem_ctl_fill_total 7\n", "secmem_bus_util 0.5\n"} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}

	code, body = get(t, srv, "/metrics.json")
	if code != 200 || !strings.Contains(body, `"ctl.fill": 7`) {
		t.Errorf("/metrics.json code %d body %q", code, body)
	}

	code, body = get(t, srv, "/timeseries.json")
	if code != 200 || !strings.Contains(body, `"bus.util"`) {
		t.Errorf("/timeseries.json code %d body %q", code, body)
	}
	code, body = get(t, srv, "/timeseries.csv")
	if code != 200 || !strings.HasPrefix(body, "cycle,bus.util\n") {
		t.Errorf("/timeseries.csv code %d body %q", code, body)
	}

	// The trace 503s until the run publishes it, then serves the bytes.
	if code, _ = get(t, srv, "/trace.json"); code != 503 {
		t.Errorf("/trace.json before publish: code %d, want 503", code)
	}
	srv.PublishTrace([]byte(`{"traceEvents":[]}`))
	code, body = get(t, srv, "/trace.json")
	if code != 200 || body != `{"traceEvents":[]}` {
		t.Errorf("/trace.json after publish: code %d body %q", code, body)
	}

	if code, body = get(t, srv, "/"); code != 200 || !strings.Contains(body, "/metrics") {
		t.Errorf("index: code %d", code)
	}
	if code, _ = get(t, srv, "/no/such"); code != 404 {
		t.Errorf("unknown path: code %d, want 404", code)
	}
	if code, _ = get(t, srv, "/debug/pprof/cmdline"); code != 200 {
		t.Errorf("/debug/pprof/cmdline code %d", code)
	}
}

func TestServerNilSampler(t *testing.T) {
	srv := NewServer(nil)
	if code, body := get(t, srv, "/timeseries.json"); code != 200 || !strings.Contains(body, `"samples": []`) {
		t.Errorf("/timeseries.json with nil sampler: code %d body %q", code, body)
	}
	if code, body := get(t, srv, "/timeseries.csv"); code != 200 || !strings.HasPrefix(body, "cycle\n") {
		t.Errorf("/timeseries.csv with nil sampler: code %d body %q", code, body)
	}
}

// TestServerPublishWhileSampling exercises the publish-don't-share contract
// under the race detector: one goroutine ticks and publishes like the
// simulation does, another hammers the read-only endpoints.
func TestServerPublishWhileSampling(t *testing.T) {
	smp := NewSampler(10, 64)
	reg := NewRegistry()
	c := reg.Counter("ctl.fill")
	smp.Series("fills", func(uint64) float64 { return float64(c.Value()) })
	srv := NewServer(smp)
	smp.OnSample(func(uint64) { srv.Publish(reg.Snapshot()) })
	srv.Publish(reg.Snapshot())

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			get(t, srv, "/metrics")
			get(t, srv, "/timeseries.json")
		}
	}()
	for now := uint64(1); now <= 5000; now += 7 {
		c.Inc()
		if smp.Due(now) {
			smp.Tick(now)
		}
	}
	<-done
}
