package obsv

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// DefaultMaxEvents bounds a recorder's memory: beyond it, new events are
// counted as dropped rather than stored. ~1M events is a few hundred MB of
// JSON, already past what chrome://tracing loads comfortably.
const DefaultMaxEvents = 1 << 20

// Recorder accumulates cycle-timestamped events and renders them as Chrome
// trace-event JSON. Timestamps are simulated processor cycles, written into
// the trace's microsecond field one-to-one, so "1 us" in the viewer reads
// as one cycle.
//
// Each distinct track name becomes one named thread row in the viewer
// ("bus", "dram", "aes", "merkle.level2", ...). Duration events (Span) draw
// the per-resource occupancy slices; async Begin/End pairs draw whole
// memory transactions as open/close ranges on their own track, tying the
// per-resource slices together via the shared transaction id argument.
//
// The nil Recorder discards everything, so subsystems record
// unconditionally at the cost of one branch. A Recorder is not safe for
// concurrent use.
type Recorder struct {
	max     int
	events  []Event
	dropped uint64
	tids    map[string]int
	tracks  []string
}

// Event is one recorded trace event.
type Event struct {
	Track string
	Name  string
	Ph    byte   // 'X' complete, 'i' instant, 'b'/'e' async begin/end, 'C' counter
	Ts    uint64 // start cycle
	Dur   uint64 // 'X' only
	ID    uint64 // async events and span arguments
	HasID bool
	Val   float64 // 'C' only: the counter-track value at Ts
}

// NewRecorder builds a recorder holding at most maxEvents events;
// maxEvents <= 0 selects DefaultMaxEvents.
func NewRecorder(maxEvents int) *Recorder {
	if maxEvents <= 0 {
		maxEvents = DefaultMaxEvents
	}
	return &Recorder{max: maxEvents, tids: make(map[string]int)}
}

func (r *Recorder) add(e Event) {
	if len(r.events) >= r.max {
		r.dropped++
		return
	}
	if e.Ph != 'C' {
		// Counter events render on per-process counter tracks named by the
		// event itself; they never claim a thread row.
		if _, ok := r.tids[e.Track]; !ok {
			r.tids[e.Track] = len(r.tracks) + 1
			r.tracks = append(r.tracks, e.Track)
		}
	}
	r.events = append(r.events, e)
}

// Span records a completed occupancy interval [start, end) on a track.
// Intervals with end <= start are recorded with zero duration.
func (r *Recorder) Span(track, name string, start, end uint64) {
	if r == nil {
		return
	}
	var dur uint64
	if end > start {
		dur = end - start
	}
	r.add(Event{Track: track, Name: name, Ph: 'X', Ts: start, Dur: dur})
}

// SpanID is Span with a transaction id argument, so a resource slice can be
// traced back to the memory transaction that caused it.
func (r *Recorder) SpanID(track, name string, start, end, id uint64) {
	if r == nil {
		return
	}
	var dur uint64
	if end > start {
		dur = end - start
	}
	r.add(Event{Track: track, Name: name, Ph: 'X', Ts: start, Dur: dur, ID: id, HasID: true})
}

// Instant records a point event (tamper detections, overflow events).
func (r *Recorder) Instant(track, name string, ts uint64) {
	if r == nil {
		return
	}
	r.add(Event{Track: track, Name: name, Ph: 'i', Ts: ts})
}

// Begin opens an async range with the given id on a track.
func (r *Recorder) Begin(track, name string, id, ts uint64) {
	if r == nil {
		return
	}
	r.add(Event{Track: track, Name: name, Ph: 'b', Ts: ts, ID: id, HasID: true})
}

// End closes the async range opened by Begin with the same track, name, and
// id.
func (r *Recorder) End(track, name string, id, ts uint64) {
	if r == nil {
		return
	}
	r.add(Event{Track: track, Name: name, Ph: 'e', Ts: ts, ID: id, HasID: true})
}

// CounterValue records one point of a Perfetto counter track: a "C"-phase
// event whose args carry the track's value at ts. Each distinct name is
// its own counter track in the viewer, drawn as a stepped area chart —
// this is how sampled metric trajectories (hit rates, occupancies,
// utilizations) merge into the span timeline.
func (r *Recorder) CounterValue(name string, ts uint64, v float64) {
	if r == nil {
		return
	}
	r.add(Event{Track: "counter", Name: name, Ph: 'C', Ts: ts, Val: v})
}

// Len reports how many events are stored (zero for nil).
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	return len(r.events)
}

// Dropped reports how many events were discarded at the cap.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	return r.dropped
}

// jsonEvent is the Chrome trace-event wire format.
type jsonEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   uint64         `json:"ts"`
	Dur  *uint64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	ID   string         `json:"id,omitempty"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteJSON renders the trace in Chrome trace-event JSON object format:
// thread-name metadata first (one named row per track, in first-use order),
// then the events in record order. Output is byte-stable for identical
// runs; load it in chrome://tracing or https://ui.perfetto.dev.
func (r *Recorder) WriteJSON(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("{\"traceEvents\":[\n"); err != nil {
		return err
	}
	first := true
	emit := func(e jsonEvent) error {
		b, err := json.Marshal(e)
		if err != nil {
			return err
		}
		if !first {
			if _, err := bw.WriteString(",\n"); err != nil {
				return err
			}
		}
		first = false
		_, err = bw.Write(b)
		return err
	}
	if r != nil {
		for _, track := range r.tracks {
			if err := emit(jsonEvent{
				Name: "thread_name", Cat: "__metadata", Ph: "M",
				Pid: 1, Tid: r.tids[track],
				Args: map[string]any{"name": track},
			}); err != nil {
				return err
			}
		}
		for i := range r.events {
			e := &r.events[i]
			je := jsonEvent{
				Name: e.Name, Cat: e.Track, Ph: string(e.Ph),
				Ts: e.Ts, Pid: 1, Tid: r.tids[e.Track],
			}
			if e.Ph == 'X' {
				dur := e.Dur
				je.Dur = &dur
			}
			if e.Ph == 'i' {
				je.S = "t" // thread-scoped instant marker
			}
			if e.Ph == 'C' {
				// Counter tracks are per-process: no tid, value in args.
				je.Tid = 0
				je.Args = map[string]any{"value": e.Val}
			}
			if e.HasID {
				if e.Ph == 'b' || e.Ph == 'e' {
					je.ID = fmt.Sprintf("%#x", e.ID)
				} else {
					je.Args = map[string]any{"txn": e.ID}
				}
			}
			if err := emit(je); err != nil {
				return err
			}
		}
	}
	// otherData carries the dropped-event count so downstream tooling
	// (secmemobs -validate) can flag a truncated trace instead of treating
	// a silently short timeline as complete.
	var dropped uint64
	if r != nil {
		dropped = r.dropped
	}
	tail := fmt.Sprintf("\n],\"displayTimeUnit\":\"ns\",\"otherData\":{\"droppedEvents\":%d,\"timeUnit\":\"processor cycles (1 trace us = 1 cycle)\"}}\n", dropped)
	if _, err := bw.WriteString(tail); err != nil {
		return err
	}
	return bw.Flush()
}
