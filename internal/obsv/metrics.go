// Package obsv is the observability layer of the simulator: a metrics
// registry (counters, gauges, cycle-bucketed latency histograms with
// hierarchical dotted names like "ctrcache.miss" or "merkle.level2.fetch")
// and a cycle-timestamped event recorder that exports Chrome trace-event
// JSON loadable in chrome://tracing and Perfetto.
//
// The design constraint is that instrumentation must be free to leave in:
// every handle type no-ops on a nil receiver, so an uninstrumented subsystem
// holds nil pointers and each metric call costs exactly one predicted
// branch. Registration (Registry.Counter and friends) happens once at
// machine-construction time; the hot path only touches the returned
// pointers and never allocates.
//
// The registry snapshot is deterministic: the same simulated run produces
// byte-identical JSON, which the trace-smoke CI target relies on.
package obsv

import (
	"encoding/json"
	"fmt"
	"io"
	"math/bits"
	"sort"
)

// Counter is a monotonically increasing event count. The nil Counter
// discards updates.
type Counter struct {
	v uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v++
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v += n
	}
}

// Value returns the current count (zero for nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is a last-value-wins measurement (utilizations, rates, high-water
// marks), typically set once at end of run. The nil Gauge discards updates.
type Gauge struct {
	v float64
}

// Set stores the value.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.v = v
	}
}

// Value returns the current value (zero for nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v
}

// HistBuckets is the number of histogram buckets. Bucket 0 counts zero
// observations; bucket i (i >= 1) counts values in [2^(i-1), 2^i); the last
// bucket absorbs everything at or above 2^(HistBuckets-2). 33 buckets cover
// [0, 2^31) cycle latencies exactly, far beyond any realistic queue delay.
const HistBuckets = 33

// Histogram is a latency histogram over power-of-two cycle buckets. The
// fixed bucket array keeps Observe allocation-free. The nil Histogram
// discards observations.
type Histogram struct {
	buckets  [HistBuckets]uint64
	count    uint64
	sum      uint64
	min, max uint64
}

// BucketIndex returns the bucket an observation lands in.
func BucketIndex(v uint64) int {
	i := bits.Len64(v) // 0 for v == 0; k for v in [2^(k-1), 2^k)
	if i >= HistBuckets {
		i = HistBuckets - 1
	}
	return i
}

// BucketBound returns the exclusive upper bound of bucket i, with the last
// bucket unbounded (reported as 0 in snapshots, meaning "+inf") and
// out-of-range indices clamped to the nearest bucket. BucketBound and
// BucketIndex round-trip across the whole uint64 range: for every bounded
// bucket i, BucketIndex(BucketBound(i)) == i+1 and
// BucketIndex(BucketBound(i)-1) <= i, including the 2^31 edge where the
// bounded range meets the unbounded tail bucket.
func BucketBound(i int) uint64 {
	if i < 0 {
		i = 0
	}
	if i >= HistBuckets-1 {
		return 0
	}
	if i == 0 {
		return 1
	}
	return 1 << uint(i)
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	h.buckets[BucketIndex(v)]++
	h.count++
	h.sum += v
	if h.count == 1 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of observations (zero for nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Mean returns the average observation, or 0 when empty.
func (h *Histogram) Mean() float64 {
	if h == nil || h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Registry holds named metrics. Names are hierarchical dotted paths
// ("subsystem.metric" or "subsystem.component.metric") of lowercase
// letters, digits, underscores, and dots; malformed names panic at
// registration time because they are code, not input. Each name belongs to
// exactly one metric kind.
//
// The nil Registry hands out nil handles, so a caller can instrument
// unconditionally and pay only the handles' nil checks. A Registry is not
// safe for concurrent use; the harness attaches one per run.
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

func checkName(name string) {
	if name == "" {
		panic("obsv: empty metric name")
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9', c == '_', c == '.':
		default:
			panic(fmt.Sprintf("obsv: metric name %q: byte %q not in [a-z0-9_.]", name, c))
		}
	}
	if name[0] == '.' || name[len(name)-1] == '.' {
		panic(fmt.Sprintf("obsv: metric name %q starts or ends with a dot", name))
	}
}

// Counter returns the named counter, creating it on first use. Returns nil
// on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	checkName(name)
	if c, ok := r.counters[name]; ok {
		return c
	}
	c := &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the named gauge, creating it on first use. Returns nil on a
// nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	checkName(name)
	if g, ok := r.gauges[name]; ok {
		return g
	}
	g := &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the named histogram, creating it on first use. Returns
// nil on a nil registry.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	checkName(name)
	if h, ok := r.hists[name]; ok {
		return h
	}
	h := &Histogram{}
	r.hists[name] = h
	return h
}

// SetGauge is shorthand for Gauge(name).Set(v), used by end-of-run exports.
func (r *Registry) SetGauge(name string, v float64) { r.Gauge(name).Set(v) }

// BucketCount is one non-empty histogram bucket in a snapshot. Le is the
// bucket's exclusive upper bound in cycles (0 means unbounded).
type BucketCount struct {
	Le uint64 `json:"le"`
	N  uint64 `json:"n"`
}

// HistSnapshot is a histogram's exported state. P50/P95/P99 are quantiles
// interpolated from the power-of-two buckets (see Quantile for the error
// bound); they are derived from Buckets at snapshot time and carried in
// the JSON so downstream tables need no recomputation.
type HistSnapshot struct {
	Count   uint64        `json:"count"`
	Sum     uint64        `json:"sum"`
	Min     uint64        `json:"min"`
	Max     uint64        `json:"max"`
	P50     float64       `json:"p50"`
	P95     float64       `json:"p95"`
	P99     float64       `json:"p99"`
	Buckets []BucketCount `json:"buckets"`
}

// Mean is the average observation, or 0 (never NaN) when the snapshot is
// empty.
func (h HistSnapshot) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Quantile interpolates the q-th quantile (q in [0,1]) from the power-of-
// two buckets, assuming observations are uniformly distributed within each
// bucket. The result is exact at bucket boundaries and otherwise off by at
// most a factor of two (one bucket's width: the true value and the
// estimate share a [2^(i-1), 2^i) bucket); the interpolated value is
// clamped to the observed [Min, Max] so the tails never exceed reality.
// Returns 0 on an empty snapshot.
func (h HistSnapshot) Quantile(q float64) float64 {
	if h.Count == 0 {
		return 0
	}
	if q <= 0 {
		return float64(h.Min)
	}
	if q >= 1 {
		return float64(h.Max)
	}
	rank := q * float64(h.Count)
	var cum float64
	for _, b := range h.Buckets {
		n := float64(b.N)
		if cum+n < rank {
			cum += n
			continue
		}
		// The quantile lands in this bucket: interpolate between its
		// bounds. Le == 0 marks the unbounded tail bucket, whose effective
		// upper bound is the observed Max.
		var lo, hi float64
		switch {
		case b.Le == 0:
			lo = float64(uint64(1) << uint(HistBuckets-2))
			hi = float64(h.Max)
		case b.Le == 1:
			lo, hi = 0, 1 // the zero bucket holds only the value 0
		default:
			lo, hi = float64(b.Le)/2, float64(b.Le)
		}
		v := lo
		if n > 0 {
			v = lo + (rank-cum)/n*(hi-lo)
		}
		if v < float64(h.Min) {
			v = float64(h.Min)
		}
		if v > float64(h.Max) {
			v = float64(h.Max)
		}
		return v
	}
	return float64(h.Max)
}

// Snapshot is the registry's full exported state. Maps serialize with
// sorted keys (encoding/json guarantees this), making the JSON byte-stable
// for identical runs.
type Snapshot struct {
	Counters   map[string]uint64       `json:"counters"`
	Gauges     map[string]float64      `json:"gauges"`
	Histograms map[string]HistSnapshot `json:"histograms"`
}

// Snapshot captures the current metric values. A nil registry yields an
// empty (but non-nil-map) snapshot.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]uint64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistSnapshot{},
	}
	if r == nil {
		return s
	}
	for name, c := range r.counters {
		s.Counters[name] = c.v
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.v
	}
	for name, h := range r.hists {
		hs := HistSnapshot{Count: h.count, Sum: h.sum, Min: h.min, Max: h.max}
		for i, n := range h.buckets {
			if n > 0 {
				hs.Buckets = append(hs.Buckets, BucketCount{Le: BucketBound(i), N: n})
			}
		}
		hs.P50 = hs.Quantile(0.50)
		hs.P95 = hs.Quantile(0.95)
		hs.P99 = hs.Quantile(0.99)
		s.Histograms[name] = hs
	}
	return s
}

// CounterNames returns the registered counter names, sorted.
func (r *Registry) CounterNames() []string {
	if r == nil {
		return nil
	}
	names := make([]string, 0, len(r.counters))
	for n := range r.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// GaugeNames returns the registered gauge names, sorted.
func (r *Registry) GaugeNames() []string {
	if r == nil {
		return nil
	}
	names := make([]string, 0, len(r.gauges))
	for n := range r.gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// HistogramNames returns the registered histogram names, sorted.
func (r *Registry) HistogramNames() []string {
	if r == nil {
		return nil
	}
	names := make([]string, 0, len(r.hists))
	for n := range r.hists {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// WriteJSON writes the registry snapshot as indented JSON. Identical runs
// produce byte-identical output.
func (r *Registry) WriteJSON(w io.Writer) error {
	return r.Snapshot().WriteJSON(w)
}

// WriteJSON writes the snapshot as indented JSON with sorted keys.
func (s Snapshot) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}
