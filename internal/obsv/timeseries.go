package obsv

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
)

// DefaultSamplerCapacity is the ring size a Sampler uses when none is
// given: 8192 samples of, say, 8 series is half a megabyte of float64s —
// enough for a multi-million-cycle run at a 1000-cycle interval before the
// ring starts overwriting its oldest window.
const DefaultSamplerCapacity = 8192

// Probe reads one instantaneous series value at a sample boundary. The
// cycle argument is the boundary being sampled, so rate- and
// utilization-style probes can normalize by elapsed time. Probes must not
// allocate: they run on the simulation hot path.
type Probe func(cycle uint64) float64

// Sampler is the cycle-driven time-series recorder behind the paper's
// trajectory figures: every interval simulated cycles it snapshots a fixed
// set of named probes (counter-cache hit rate, RSR occupancy, bus/DRAM
// utilization, Merkle traffic, re-encryption progress, ...) into a
// fixed-capacity ring. Sample boundaries are exact multiples of the
// interval regardless of how unevenly the simulation touches memory, so
// two identical runs produce byte-identical dumps.
//
// When the ring fills, the oldest samples are overwritten and counted in
// Overwritten — the recorder keeps the most recent window, and dumps say
// how much history they lost instead of silently truncating.
//
// Concurrency: the simulation goroutine is the only caller of Tick and
// SampleAt. The ring is guarded by a mutex so the live exposition server
// can render JSON/CSV mid-run from another goroutine; the uncontended
// lock costs a few nanoseconds per sample, paid once per interval, never
// per access. The nil Sampler discards everything.
type Sampler struct {
	interval uint64
	next     uint64 // next sample boundary; sim goroutine only

	mu     sync.Mutex
	names  []string // sorted; frozen at first sample
	probes []Probe  // parallel to names
	frozen bool

	capacity int
	cycles   []uint64  // ring of sample cycles
	data     []float64 // ring of capacity*len(names) values, row-major
	head     int       // next write slot
	count    int       // stored samples (<= capacity)
	total    uint64    // samples ever taken, including overwritten

	// onSample, when set, runs after each sample outside the ring lock —
	// the live server uses it to publish a fresh registry snapshot.
	onSample func(cycle uint64)
}

// NewSampler builds a sampler taking one sample every interval cycles into
// a ring of capacity samples. interval must be positive; capacity <= 0
// selects DefaultSamplerCapacity. The first sample boundary is at cycle
// interval (cycle 0 holds nothing worth plotting).
func NewSampler(interval uint64, capacity int) *Sampler {
	if interval == 0 {
		panic("obsv: sampler interval must be positive")
	}
	if capacity <= 0 {
		capacity = DefaultSamplerCapacity
	}
	return &Sampler{interval: interval, next: interval, capacity: capacity}
}

// Interval reports the configured sample spacing in cycles (zero for nil).
func (s *Sampler) Interval() uint64 {
	if s == nil {
		return 0
	}
	return s.interval
}

// Series registers a named probe. Names follow the registry grammar
// ([a-z0-9_.], dotted hierarchy) and are kept sorted, so dump column order
// is independent of registration order. Registration must finish before
// the first sample is taken.
func (s *Sampler) Series(name string, p Probe) {
	if s == nil {
		return
	}
	checkName(name)
	if p == nil {
		panic("obsv: nil probe for series " + name)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.frozen {
		panic("obsv: Series(" + name + ") after sampling started")
	}
	i := sort.SearchStrings(s.names, name)
	if i < len(s.names) && s.names[i] == name {
		panic("obsv: duplicate series " + name)
	}
	s.names = append(s.names, "")
	copy(s.names[i+1:], s.names[i:])
	s.names[i] = name
	s.probes = append(s.probes, nil)
	copy(s.probes[i+1:], s.probes[i:])
	s.probes[i] = p
}

// OnSample installs a hook run after every recorded sample, outside the
// ring lock. The live exposition server publishes snapshots from it.
func (s *Sampler) OnSample(fn func(cycle uint64)) {
	if s == nil {
		return
	}
	s.onSample = fn
}

// Due reports whether the simulation has crossed the next sample boundary.
// It is the one-branch hot-path guard: callers check Due before paying for
// Tick. Only the simulation goroutine reads or advances the boundary.
func (s *Sampler) Due(now uint64) bool {
	return s != nil && now >= s.next
}

// Tick records one sample per boundary crossed at or before now, each
// stamped with its exact boundary cycle (a burst of idle cycles yields a
// flat step, not a gap). Call from the simulation goroutine whenever Due.
func (s *Sampler) Tick(now uint64) {
	if s == nil {
		return
	}
	for now >= s.next {
		at := s.next
		s.next += s.interval
		s.record(at)
		if s.onSample != nil {
			s.onSample(at)
		}
	}
}

// SampleAt takes one final off-boundary sample (the end-of-run state) if
// the cycle is past the last recorded sample. Harnesses call it once after
// the workload finishes so the series always covers the whole run.
func (s *Sampler) SampleAt(cycle uint64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	last := uint64(0)
	if s.count > 0 {
		lastIdx := s.head - 1
		if lastIdx < 0 {
			lastIdx += s.capacity
		}
		last = s.cycles[lastIdx]
	}
	take := s.count == 0 || cycle > last
	s.mu.Unlock()
	if !take {
		return
	}
	if cycle >= s.next {
		s.next = cycle + 1 // boundaries already covered by this sample
	}
	s.record(cycle)
	if s.onSample != nil {
		s.onSample(cycle)
	}
}

// record appends one sample row at the given cycle. Probes run under the
// ring lock; they only read simulator state owned by the same goroutine.
func (s *Sampler) record(cycle uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.frozen {
		s.frozen = true
		s.cycles = make([]uint64, s.capacity)
		s.data = make([]float64, s.capacity*len(s.names))
	}
	row := s.data[s.head*len(s.names) : (s.head+1)*len(s.names)]
	for i, p := range s.probes {
		row[i] = p(cycle)
	}
	s.cycles[s.head] = cycle
	s.head++
	if s.head == s.capacity {
		s.head = 0
	}
	if s.count < s.capacity {
		s.count++
	}
	s.total++
}

// Names returns the registered series names, sorted.
func (s *Sampler) Names() []string {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, len(s.names))
	copy(out, s.names)
	return out
}

// Len reports how many samples the ring currently holds.
func (s *Sampler) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}

// Total reports how many samples were ever taken, including overwritten.
func (s *Sampler) Total() uint64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}

// Overwritten reports how many samples the ring has discarded.
func (s *Sampler) Overwritten() uint64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total - uint64(s.count)
}

// Sample is one row of a time-series dump.
type Sample struct {
	Cycle  uint64    `json:"cycle"`
	Values []float64 `json:"values"`
}

// TimeSeries is the exported form of a sampler's ring, oldest sample
// first. Series names are sorted; Values in each sample are parallel to
// Series. Overwritten says how many older samples the ring discarded.
type TimeSeries struct {
	IntervalCycles uint64   `json:"interval_cycles"`
	Series         []string `json:"series"`
	Overwritten    uint64   `json:"overwritten"`
	Samples        []Sample `json:"samples"`
}

// Export copies the ring into a TimeSeries, oldest first. Safe to call
// from any goroutine, including mid-run.
func (s *Sampler) Export() TimeSeries {
	ts := TimeSeries{Series: []string{}, Samples: []Sample{}}
	if s == nil {
		return ts
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	ts.IntervalCycles = s.interval
	ts.Series = append(ts.Series, s.names...)
	ts.Overwritten = s.total - uint64(s.count)
	start := s.head - s.count
	if start < 0 {
		start += s.capacity
	}
	for i := 0; i < s.count; i++ {
		idx := (start + i) % s.capacity
		row := make([]float64, len(s.names))
		copy(row, s.data[idx*len(s.names):(idx+1)*len(s.names)])
		ts.Samples = append(ts.Samples, Sample{Cycle: s.cycles[idx], Values: row})
	}
	return ts
}

// WriteJSON dumps the ring as indented JSON with sorted series columns.
// Identical runs produce byte-identical output.
func (s *Sampler) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(s.Export(), "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// WriteCSV dumps the ring as a CSV table: a "cycle,<series>..." header,
// then one row per sample. Floats render in Go 'g' shortest form, so the
// output is byte-deterministic for identical runs.
func (s *Sampler) WriteCSV(w io.Writer) error {
	ts := s.Export()
	var buf []byte
	buf = append(buf, "cycle"...)
	for _, n := range ts.Series {
		buf = append(buf, ',')
		buf = append(buf, n...)
	}
	buf = append(buf, '\n')
	for _, smp := range ts.Samples {
		buf = strconv.AppendUint(buf, smp.Cycle, 10)
		for _, v := range smp.Values {
			buf = append(buf, ',')
			buf = strconv.AppendFloat(buf, v, 'g', -1, 64)
		}
		buf = append(buf, '\n')
	}
	_, err := w.Write(buf)
	return err
}

// EmitTrace appends the ring's samples to a trace recorder as Perfetto
// counter-track events ("C" phase, one track per series), merging the
// metric trajectories into the same timeline as the span events. Samples
// are emitted oldest-first, so each track's timestamps are monotone — the
// shape secmemobs -validate checks. No-op on a nil recorder or sampler.
func (s *Sampler) EmitTrace(rec *Recorder) {
	if s == nil || rec == nil {
		return
	}
	ts := s.Export()
	for _, smp := range ts.Samples {
		for i, name := range ts.Series {
			rec.CounterValue(name, smp.Cycle, smp.Values[i])
		}
	}
}

// String summarizes the sampler state for logs.
func (s *Sampler) String() string {
	if s == nil {
		return "Sampler(nil)"
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return fmt.Sprintf("Sampler(every %d cycles, %d series, %d/%d samples, %d overwritten)",
		s.interval, len(s.names), s.count, s.capacity, s.total-uint64(s.count))
}
