package obsv

import (
	"bytes"
	"strings"
	"testing"
)

// fill drives a sampler through the same irregular access pattern twice
// callers use to check determinism: samples must land on exact interval
// multiples no matter how unevenly the "simulation" advances.
func fill(s *Sampler, upto uint64) {
	for now := uint64(7); now <= upto; now += 137 {
		if s.Due(now) {
			s.Tick(now)
		}
	}
}

func newTestSampler(capacity int) *Sampler {
	s := NewSampler(100, capacity)
	var calls uint64
	// Register out of order: dumps must still come out sorted.
	s.Series("zz.last", func(cycle uint64) float64 { return float64(cycle) })
	s.Series("aa.first", func(uint64) float64 { calls++; return float64(calls) })
	s.Series("mm.mid", func(uint64) float64 { return 0.5 })
	return s
}

func TestSamplerBoundariesAreExactMultiples(t *testing.T) {
	s := newTestSampler(0)
	fill(s, 1000)
	ts := s.Export()
	if len(ts.Samples) == 0 {
		t.Fatal("no samples recorded")
	}
	for i, smp := range ts.Samples {
		if smp.Cycle%100 != 0 || smp.Cycle == 0 {
			t.Errorf("sample %d at cycle %d: not a positive interval multiple", i, smp.Cycle)
		}
		if i > 0 && smp.Cycle <= ts.Samples[i-1].Cycle {
			t.Errorf("sample cycles not strictly increasing: %d then %d", ts.Samples[i-1].Cycle, smp.Cycle)
		}
	}
	// Advancing from 7 by 137 reaches 967: boundaries 100..900 inclusive.
	if got := len(ts.Samples); got != 9 {
		t.Errorf("got %d samples, want 9 (boundaries 100..900)", got)
	}
}

func TestSamplerSeriesSorted(t *testing.T) {
	s := newTestSampler(0)
	want := []string{"aa.first", "mm.mid", "zz.last"}
	got := s.Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", got, want)
		}
	}
	fill(s, 500)
	ts := s.Export()
	for i := range want {
		if ts.Series[i] != want[i] {
			t.Fatalf("Export().Series = %v, want %v", ts.Series, want)
		}
	}
	// zz.last probes the boundary cycle itself: values must be the exact
	// boundaries, proving probes see the boundary, not the ragged now.
	for _, smp := range ts.Samples {
		if smp.Values[2] != float64(smp.Cycle) {
			t.Errorf("cycle-probe value %g at cycle %d", smp.Values[2], smp.Cycle)
		}
	}
}

func TestSamplerRingOverwrite(t *testing.T) {
	s := NewSampler(10, 4)
	s.Series("c", func(cycle uint64) float64 { return float64(cycle) })
	s.Tick(100) // boundaries 10..100: 10 samples into a 4-slot ring
	if got := s.Len(); got != 4 {
		t.Fatalf("Len = %d, want 4", got)
	}
	if got := s.Total(); got != 10 {
		t.Fatalf("Total = %d, want 10", got)
	}
	if got := s.Overwritten(); got != 6 {
		t.Fatalf("Overwritten = %d, want 6", got)
	}
	ts := s.Export()
	if ts.Overwritten != 6 {
		t.Fatalf("Export Overwritten = %d, want 6", ts.Overwritten)
	}
	// The ring keeps the newest window, oldest first.
	wantCycles := []uint64{70, 80, 90, 100}
	for i, smp := range ts.Samples {
		if smp.Cycle != wantCycles[i] {
			t.Fatalf("sample cycles = %v..., want %v", smp.Cycle, wantCycles)
		}
	}
}

func TestSamplerSampleAt(t *testing.T) {
	s := NewSampler(100, 0)
	s.Series("c", func(cycle uint64) float64 { return float64(cycle) })
	s.Tick(250) // samples at 100, 200
	s.SampleAt(273)
	ts := s.Export()
	if n := len(ts.Samples); n != 3 {
		t.Fatalf("got %d samples, want 3", n)
	}
	if last := ts.Samples[2].Cycle; last != 273 {
		t.Fatalf("final sample at %d, want 273", last)
	}
	// A second SampleAt at the same cycle must not duplicate.
	s.SampleAt(273)
	if n := len(s.Export().Samples); n != 3 {
		t.Fatalf("duplicate end-of-run sample recorded (%d samples)", n)
	}
	// Sampling must not resume behind the final sample.
	if s.Due(273) {
		t.Fatal("sampler still due at the final sampled cycle")
	}
}

func TestSamplerDumpDeterminism(t *testing.T) {
	render := func() (string, string) {
		s := newTestSampler(0)
		fill(s, 2000)
		s.SampleAt(2047)
		var j, c bytes.Buffer
		if err := s.WriteJSON(&j); err != nil {
			t.Fatal(err)
		}
		if err := s.WriteCSV(&c); err != nil {
			t.Fatal(err)
		}
		return j.String(), c.String()
	}
	j1, c1 := render()
	j2, c2 := render()
	if j1 != j2 {
		t.Error("WriteJSON not byte-deterministic across identical runs")
	}
	if c1 != c2 {
		t.Error("WriteCSV not byte-deterministic across identical runs")
	}
	if !strings.HasPrefix(c1, "cycle,aa.first,mm.mid,zz.last\n") {
		t.Errorf("CSV header = %q", strings.SplitN(c1, "\n", 2)[0])
	}
	if !strings.Contains(j1, `"interval_cycles": 100`) {
		t.Error("JSON missing interval_cycles")
	}
}

func TestSamplerEmitTrace(t *testing.T) {
	s := newTestSampler(0)
	fill(s, 1000)
	rec := NewRecorder(0)
	s.EmitTrace(rec)
	wantPerTrack := s.Len()
	last := map[string]uint64{}
	n := map[string]int{}
	for _, e := range rec.events {
		if e.Ph != 'C' {
			t.Fatalf("EmitTrace produced a %q event", e.Ph)
		}
		if prev, ok := last[e.Name]; ok && e.Ts < prev {
			t.Errorf("track %s timestamps not monotone: %d after %d", e.Name, e.Ts, prev)
		}
		last[e.Name] = e.Ts
		n[e.Name]++
	}
	for _, name := range s.Names() {
		if n[name] != wantPerTrack {
			t.Errorf("track %s has %d samples, want %d", name, n[name], wantPerTrack)
		}
	}
	// Counter events render per-process: they must not claim thread rows.
	for _, track := range rec.tracks {
		if track == "counter" {
			t.Error("counter events registered a thread row")
		}
	}
	var buf bytes.Buffer
	if err := rec.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"ph":"C"`) {
		t.Error("rendered trace has no C-phase events")
	}
	if !strings.Contains(buf.String(), `"value":`) {
		t.Error("rendered counter events carry no value arg")
	}
}

func TestSamplerOnSample(t *testing.T) {
	s := NewSampler(100, 0)
	s.Series("c", func(cycle uint64) float64 { return float64(cycle) })
	var got []uint64
	s.OnSample(func(cycle uint64) { got = append(got, cycle) })
	s.Tick(350)
	s.SampleAt(399)
	want := []uint64{100, 200, 300, 399}
	if len(got) != len(want) {
		t.Fatalf("OnSample cycles = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("OnSample cycles = %v, want %v", got, want)
		}
	}
}

func TestSamplerTickDoesNotAllocate(t *testing.T) {
	s := NewSampler(1, 1024)
	s.Series("a", func(uint64) float64 { return 1 })
	s.Series("b", func(cycle uint64) float64 { return float64(cycle) })
	s.Tick(1) // freeze and allocate the ring up front
	now := uint64(1)
	avg := testing.AllocsPerRun(500, func() {
		now++
		if s.Due(now) {
			s.Tick(now)
		}
	})
	if avg != 0 {
		t.Errorf("sampler tick allocates %.1f times per sample, want 0", avg)
	}
}

func TestSamplerNilSafety(t *testing.T) {
	var s *Sampler
	if s.Due(100) {
		t.Error("nil sampler is due")
	}
	s.Tick(100)
	s.SampleAt(5)
	s.Series("x", func(uint64) float64 { return 0 })
	s.OnSample(func(uint64) {})
	s.EmitTrace(nil)
	if s.Len() != 0 || s.Total() != 0 || s.Overwritten() != 0 || s.Interval() != 0 {
		t.Error("nil sampler reports nonzero state")
	}
	if got := s.String(); got != "Sampler(nil)" {
		t.Errorf("nil String() = %q", got)
	}
	ts := s.Export()
	if len(ts.Samples) != 0 || len(ts.Series) != 0 {
		t.Error("nil sampler exports data")
	}
}

func TestSamplerPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("zero interval", func() { NewSampler(0, 8) })
	mustPanic("nil probe", func() {
		NewSampler(10, 8).Series("x", nil)
	})
	mustPanic("duplicate series", func() {
		s := NewSampler(10, 8)
		s.Series("x", func(uint64) float64 { return 0 })
		s.Series("x", func(uint64) float64 { return 0 })
	})
	mustPanic("series after freeze", func() {
		s := NewSampler(10, 8)
		s.Series("x", func(uint64) float64 { return 0 })
		s.Tick(10)
		s.Series("y", func(uint64) float64 { return 0 })
	})
	mustPanic("bad series name", func() {
		NewSampler(10, 8).Series("Bad Name", func(uint64) float64 { return 0 })
	})
}
