package config

import "testing"

func TestDefaultValidates(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("Default invalid: %v", err)
	}
	if err := Baseline().Validate(); err != nil {
		t.Fatalf("Baseline invalid: %v", err)
	}
}

func TestDefaultMatchesPaperSection5(t *testing.T) {
	c := Default()
	checks := []struct {
		name string
		got  any
		want any
	}{
		{"clock", c.ClockGHz, 5.0},
		{"issue width", c.IssueWidth, 3},
		{"L1 size", c.L1.SizeBytes, 16 << 10},
		{"L1 ways", c.L1.Ways, 4},
		{"L1 latency", c.L1.LatencyCycles, uint64(2)},
		{"L2 size", c.L2.SizeBytes, 1 << 20},
		{"L2 ways", c.L2.Ways, 8},
		{"L2 latency", c.L2.LatencyCycles, uint64(10)},
		{"SNC size", c.CounterCache.SizeBytes, 32 << 10},
		{"SNC ways", c.CounterCache.Ways, 8},
		{"memory", c.MemBytes, uint64(512 << 20)},
		{"memory latency", c.MemLatencyCycles, uint64(200)},
		{"AES latency", c.AESLatency, uint64(80)},
		{"SHA1 latency", c.SHA1Latency, uint64(320)},
		{"minor bits", c.MinorBits, 7},
		{"page blocks", c.PageBlocks, 64},
		{"RSRs", c.RSRs, 8},
		{"MAC bits", c.MACBits, 64},
	}
	for _, ch := range checks {
		if ch.got != ch.want {
			t.Errorf("%s = %v, want %v", ch.name, ch.got, ch.want)
		}
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	mutations := []struct {
		name string
		mut  func(*SystemConfig)
	}{
		{"zero issue width", func(c *SystemConfig) { c.IssueWidth = 0 }},
		{"zero clock", func(c *SystemConfig) { c.ClockGHz = 0 }},
		{"bad L1", func(c *SystemConfig) { c.L1.Ways = 0 }},
		{"bad mem size", func(c *SystemConfig) { c.MemBytes = 100 }},
		{"bad mono bits", func(c *SystemConfig) { c.Enc = EncCounterMono; c.MonoCounterBits = 12 }},
		{"bad minor bits", func(c *SystemConfig) { c.MinorBits = 0 }},
		{"bad major bits", func(c *SystemConfig) { c.MajorBits = 32 }},
		{"bad page blocks", func(c *SystemConfig) { c.PageBlocks = 48 }},
		{"no RSRs", func(c *SystemConfig) { c.RSRs = 0 }},
		{"bad MAC bits", func(c *SystemConfig) { c.MACBits = 48 }},
		{"zero AES", func(c *SystemConfig) { c.AESLatency = 0 }},
		{"zero SHA with SHA auth", func(c *SystemConfig) { c.Auth = AuthSHA1; c.SHA1Latency = 0 }},
		{"bad counter cache", func(c *SystemConfig) { c.CounterCache.SizeBytes = 100 }},
	}
	for _, m := range mutations {
		c := Default()
		m.mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: accepted", m.name)
		}
	}
}

func TestSchemeNames(t *testing.T) {
	cases := []struct {
		mut  func(*SystemConfig)
		want string
	}{
		{func(c *SystemConfig) { c.Enc = EncNone; c.Auth = AuthNone }, "base"},
		{func(c *SystemConfig) { c.Enc = EncCounterSplit; c.Auth = AuthGCM }, "Split+GCM"},
		{func(c *SystemConfig) { c.Enc = EncCounterMono; c.MonoCounterBits = 8; c.Auth = AuthNone }, "Mono8b"},
		{func(c *SystemConfig) { c.Enc = EncDirect; c.Auth = AuthSHA1 }, "Direct+SHA"},
		{func(c *SystemConfig) { c.Enc = EncNone; c.Auth = AuthGCM }, "GCM"},
		{func(c *SystemConfig) { c.Enc = EncCounterGlobal; c.MonoCounterBits = 32; c.Auth = AuthNone }, "Global32b"},
	}
	for _, tc := range cases {
		c := Default()
		tc.mut(&c)
		if got := c.SchemeName(); got != tc.want {
			t.Errorf("SchemeName = %q, want %q", got, tc.want)
		}
	}
}

func TestEnumStrings(t *testing.T) {
	if EncCounterSplit.String() != "Split" || EncDirect.String() != "Direct" {
		t.Error("EncryptionMode strings wrong")
	}
	if AuthGCM.String() != "GCM" || AuthSHA1.String() != "SHA" {
		t.Error("AuthMode strings wrong")
	}
	if AuthLazy.String() != "lazy" || AuthCommit.String() != "commit" || AuthSafe.String() != "safe" {
		t.Error("AuthReq strings wrong")
	}
	if EncryptionMode(99).String() == "" || AuthMode(99).String() == "" || AuthReq(99).String() == "" {
		t.Error("unknown enum strings empty")
	}
}

func TestUsesCounters(t *testing.T) {
	if !EncCounterSplit.UsesCounters() || !EncCounterMono.UsesCounters() || !EncCounterGlobal.UsesCounters() {
		t.Error("counter modes must use counters")
	}
	if EncNone.UsesCounters() || EncDirect.UsesCounters() {
		t.Error("non-counter modes must not use counters")
	}
}
