// Package config defines the full parameter space of the simulated secure
// processor and the presets matching Section 5 of the paper. A
// SystemConfig names one point in the evaluation space: one encryption
// scheme, one authentication scheme and requirement, the memory hierarchy
// geometry, and the crypto engine latencies.
package config

import (
	"fmt"

	"secmem/internal/cache"
)

// EncryptionMode selects how memory blocks are encrypted.
type EncryptionMode int

const (
	// EncNone disables encryption (used to isolate authentication cost).
	EncNone EncryptionMode = iota
	// EncDirect applies AES directly to data blocks (XOM-style); decryption
	// latency adds to the miss latency.
	EncDirect
	// EncCounterMono is counter mode with per-block monolithic counters of
	// MonoCounterBits bits.
	EncCounterMono
	// EncCounterSplit is the paper's split-counter mode: per-block minor
	// counters plus a per-page major counter.
	EncCounterSplit
	// EncCounterGlobal is counter mode with a single on-chip global counter;
	// per-block counter values are still stored in memory for decryption.
	EncCounterGlobal
)

// String names the mode as the paper's figures do.
func (m EncryptionMode) String() string {
	switch m {
	case EncNone:
		return "none"
	case EncDirect:
		return "Direct"
	case EncCounterMono:
		return "Mono"
	case EncCounterSplit:
		return "Split"
	case EncCounterGlobal:
		return "Global"
	default:
		return fmt.Sprintf("EncryptionMode(%d)", int(m))
	}
}

// UsesCounters reports whether the mode maintains per-block counters.
func (m EncryptionMode) UsesCounters() bool {
	return m == EncCounterMono || m == EncCounterSplit || m == EncCounterGlobal
}

// AuthMode selects the memory authentication scheme.
type AuthMode int

const (
	// AuthNone disables authentication.
	AuthNone AuthMode = iota
	// AuthSHA1 uses SHA-1 MACs in the Merkle tree (the prior-work baseline).
	AuthSHA1
	// AuthGCM uses the paper's GCM (GHASH + AES pad) MACs.
	AuthGCM
)

// String names the mode.
func (m AuthMode) String() string {
	switch m {
	case AuthNone:
		return "none"
	case AuthSHA1:
		return "SHA"
	case AuthGCM:
		return "GCM"
	default:
		return fmt.Sprintf("AuthMode(%d)", int(m))
	}
}

// AuthReq is the authentication strictness requirement from Section 6.2.
type AuthReq int

const (
	// AuthLazy lets execution continue without waiting for authentication.
	AuthLazy AuthReq = iota
	// AuthCommit forwards data on decryption but blocks instruction
	// retirement until authentication completes.
	AuthCommit
	// AuthSafe blocks even data use until authentication completes.
	AuthSafe
)

// String names the requirement.
func (r AuthReq) String() string {
	switch r {
	case AuthLazy:
		return "lazy"
	case AuthCommit:
		return "commit"
	case AuthSafe:
		return "safe"
	default:
		return fmt.Sprintf("AuthReq(%d)", int(r))
	}
}

// SystemConfig is the complete description of one simulated machine.
type SystemConfig struct {
	// Core parameters (Section 5: 3-issue OoO at 5 GHz).
	ClockGHz   float64
	IssueWidth int
	ROBSize    int
	MSHRs      int

	// Memory hierarchy.
	L1           cache.Config
	L2           cache.Config
	CounterCache cache.Config
	// MemBytes is the protected data region size (512 MB in the paper);
	// metadata regions are laid out above it.
	MemBytes uint64
	// MemLatencyCycles is the uncontended round-trip memory latency.
	MemLatencyCycles uint64
	// BusWidthBytes and BusCPUCyclesPerBusCycle describe the memory bus.
	BusWidthBytes           int
	BusCPUCyclesPerBusCycle uint64

	// Crypto engines.
	AESLatency  uint64
	AESEngines  int
	SHA1Latency uint64

	// Encryption scheme.
	Enc             EncryptionMode
	MonoCounterBits int // 8, 16, 32, or 64 (mono and global modes)
	MinorBits       int // split mode; 7 in the paper
	MajorBits       int // split mode; 64 in the paper
	PageBlocks      int // blocks per encryption page; 64 -> 4 KB pages
	RSRs            int // re-encryption status registers; 8 in the paper
	// ChargeMonoReenc makes monolithic counter overflow actually perform
	// (and charge) whole-memory re-encryption instead of only counting it,
	// which is the paper's Figure 4 methodology for Mono8b.
	ChargeMonoReenc bool

	// Authentication scheme.
	Auth         AuthMode
	Req          AuthReq
	MACBits      int // 32, 64, or 128
	ParallelAuth bool
	// AuthenticateCounters applies the Section 4.3 fix: counter blocks are
	// authenticated when fetched on-chip.
	AuthenticateCounters bool
	// MacCacheBytes, when nonzero, gives Merkle tree nodes a dedicated
	// on-chip cache of this size instead of sharing the L2. The paper notes
	// that caching codes with data "can result in significantly increased
	// cache miss rates for data accesses"; this option quantifies the
	// trade (see the harness ablations).
	MacCacheBytes int

	// Functional enables real byte-level encryption/authentication against
	// the DRAM backing store (used by examples and correctness tests; the
	// big sweeps run timing-only).
	Functional bool

	// HashWorkers, when greater than one, computes the MACs of independent
	// Merkle levels on that many concurrent workers in the functional layer
	// — the paper's "levels authenticated in parallel" applied to the
	// byte-level simulation (verification chains, tree rebuilds, and
	// whole-memory re-encryption). Zero or one keeps hashing serial. The
	// knob only changes wall time: gathered chains hash out of order but
	// compare in the serial walk's order, so results are byte-identical.
	HashWorkers int
}

// Default returns the paper's baseline machine with the paper's preferred
// protection scheme (Split+GCM, commit requirement, parallel tree walk,
// 64-bit MACs, counters authenticated).
func Default() SystemConfig {
	return SystemConfig{
		ClockGHz:   5.0,
		IssueWidth: 3,
		ROBSize:    128,
		MSHRs:      16,
		L1: cache.Config{
			Name: "L1D", SizeBytes: 16 << 10, Ways: 4, BlockBytes: 64, LatencyCycles: 2,
		},
		L2: cache.Config{
			Name: "L2", SizeBytes: 1 << 20, Ways: 8, BlockBytes: 64, LatencyCycles: 10,
		},
		CounterCache: cache.Config{
			Name: "SNC", SizeBytes: 32 << 10, Ways: 8, BlockBytes: 64, LatencyCycles: 2,
		},
		MemBytes:                512 << 20,
		MemLatencyCycles:        200,
		BusWidthBytes:           16,
		BusCPUCyclesPerBusCycle: 8,

		AESLatency:  80,
		AESEngines:  1,
		SHA1Latency: 320,

		Enc:             EncCounterSplit,
		MonoCounterBits: 64,
		MinorBits:       7,
		MajorBits:       64,
		PageBlocks:      64,
		RSRs:            8,

		Auth:                 AuthGCM,
		Req:                  AuthCommit,
		MACBits:              64,
		ParallelAuth:         true,
		AuthenticateCounters: true,
	}
}

// Baseline returns the unprotected machine (no encryption, no
// authentication) that IPC results are normalized against.
func Baseline() SystemConfig {
	c := Default()
	c.Enc = EncNone
	c.Auth = AuthNone
	c.AuthenticateCounters = false
	return c
}

// Validate checks the configuration for consistency.
func (c SystemConfig) Validate() error {
	if c.IssueWidth <= 0 || c.ROBSize <= 0 || c.MSHRs <= 0 {
		return fmt.Errorf("config: nonpositive core parameter")
	}
	if c.ClockGHz <= 0 {
		return fmt.Errorf("config: nonpositive clock")
	}
	for _, cc := range []cache.Config{c.L1, c.L2} {
		if err := cc.Validate(); err != nil {
			return err
		}
	}
	if c.Enc.UsesCounters() || c.Auth == AuthGCM {
		if err := c.CounterCache.Validate(); err != nil {
			return err
		}
	}
	if c.MemBytes == 0 || c.MemBytes%uint64(c.L2.BlockBytes) != 0 {
		return fmt.Errorf("config: memory size %d not block-aligned", c.MemBytes)
	}
	switch c.Enc {
	case EncCounterMono, EncCounterGlobal:
		switch c.MonoCounterBits {
		case 8, 16, 32, 64:
		default:
			return fmt.Errorf("config: monolithic counter bits %d not in {8,16,32,64}", c.MonoCounterBits)
		}
	case EncCounterSplit:
		if c.MinorBits < 1 || c.MinorBits > 16 {
			return fmt.Errorf("config: minor counter bits %d out of range", c.MinorBits)
		}
		if c.MajorBits != 64 {
			return fmt.Errorf("config: major counter bits %d unsupported (want 64)", c.MajorBits)
		}
		if c.PageBlocks <= 0 || c.PageBlocks&(c.PageBlocks-1) != 0 {
			return fmt.Errorf("config: page blocks %d not a power of two", c.PageBlocks)
		}
		if 64+c.PageBlocks*c.MinorBits > 512 {
			return fmt.Errorf("config: major+minors (%d bits) exceed one 512-bit counter block",
				64+c.PageBlocks*c.MinorBits)
		}
		if c.RSRs <= 0 {
			return fmt.Errorf("config: split mode needs at least one RSR")
		}
	}
	if c.Auth != AuthNone {
		switch c.MACBits {
		case 32, 64, 128:
		default:
			return fmt.Errorf("config: MAC bits %d not in {32,64,128}", c.MACBits)
		}
	}
	if c.AESLatency == 0 || c.AESEngines <= 0 {
		return fmt.Errorf("config: invalid AES engine parameters")
	}
	if c.Auth == AuthSHA1 && c.SHA1Latency == 0 {
		return fmt.Errorf("config: SHA-1 auth with zero latency")
	}
	if c.MacCacheBytes != 0 {
		mc := c.macCacheConfig()
		if err := mc.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// macCacheConfig derives the dedicated MAC cache geometry.
func (c SystemConfig) macCacheConfig() cache.Config {
	return cache.Config{
		Name:          "MAC$",
		SizeBytes:     c.MacCacheBytes,
		Ways:          8,
		BlockBytes:    c.L2.BlockBytes,
		LatencyCycles: 2,
	}
}

// MacCacheConfig returns the dedicated MAC cache geometry and whether one
// is configured.
func (c SystemConfig) MacCacheConfig() (cache.Config, bool) {
	if c.MacCacheBytes == 0 {
		return cache.Config{}, false
	}
	return c.macCacheConfig(), true
}

// SchemeName is the figure-style label of the protection combination, e.g.
// "Split+GCM", "Mono8b", "Direct", "XOM+SHA".
func (c SystemConfig) SchemeName() string {
	enc := ""
	switch c.Enc {
	case EncNone:
		enc = ""
	case EncDirect:
		enc = "Direct"
	case EncCounterMono:
		enc = fmt.Sprintf("Mono%db", c.MonoCounterBits)
	case EncCounterSplit:
		enc = "Split"
	case EncCounterGlobal:
		enc = fmt.Sprintf("Global%db", c.MonoCounterBits)
	}
	auth := ""
	switch c.Auth {
	case AuthSHA1:
		auth = "SHA"
	case AuthGCM:
		auth = "GCM"
	}
	switch {
	case enc == "" && auth == "":
		return "base"
	case auth == "":
		return enc
	case enc == "":
		return auth
	default:
		return enc + "+" + auth
	}
}
