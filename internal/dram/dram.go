// Package dram models the main memory of the simulated system: a timing
// model (fixed uncontended round-trip latency below the bus) plus an
// optional functional backing store holding the actual (cipher)bytes that
// the secure memory controller reads and writes.
//
// The backing store is also the attack surface: everything in it sits
// outside the processor chip's trust boundary, so the Attacker type mutates
// it directly, exactly like the bus snoopers and mod chips the paper defends
// against. Sparse storage keeps multi-hundred-megabyte address spaces cheap
// when only a small working set is touched.
package dram

import (
	"fmt"
	"math/rand"

	"secmem/internal/obsv"
	"secmem/internal/sim"
)

// BlockSize is the memory block granularity (matches the cache line size).
const BlockSize = 64

// Config describes the memory device.
type Config struct {
	// SizeBytes is the total physical address space (data + metadata
	// regions). Accesses beyond it panic: layout bugs must not hide.
	SizeBytes uint64
	// LatencyCycles is the uncontended round-trip latency in CPU cycles,
	// measured below the bus (the paper uses 200).
	LatencyCycles sim.Time
	// ServiceInterval is the minimum spacing between row accesses the
	// device sustains (its internal banking limit). The bus is usually the
	// tighter bound; 16 cycles is a reasonable device-side limit.
	ServiceInterval sim.Time
	// Functional enables the byte-level backing store.
	Functional bool
}

// DefaultConfig returns the paper's memory parameters (512 MB, 200-cycle
// round trip) with the functional store disabled.
func DefaultConfig() Config {
	return Config{SizeBytes: 512 << 20, LatencyCycles: 200, ServiceInterval: 16}
}

// DRAM is the device.
type DRAM struct {
	cfg    Config
	pipe   *sim.Pipeline
	blocks map[uint64]*[BlockSize]byte // functional store, block-aligned keys

	Reads  uint64
	Writes uint64

	// Observability handles; nil-safe.
	mRead  *obsv.Counter
	mWrite *obsv.Counter
	rec    *obsv.Recorder
}

// Instrument registers the device's metrics in reg and attaches the trace
// recorder. Either argument may be nil.
func (d *DRAM) Instrument(reg *obsv.Registry, rec *obsv.Recorder) {
	d.mRead = reg.Counter("dram.read")
	d.mWrite = reg.Counter("dram.write")
	d.rec = rec
}

// New creates a DRAM device.
func New(cfg Config) *DRAM {
	if cfg.SizeBytes == 0 || cfg.SizeBytes%BlockSize != 0 {
		panic("dram: size must be a positive multiple of the block size")
	}
	d := &DRAM{
		cfg:  cfg,
		pipe: sim.NewPipeline(1, cfg.ServiceInterval, cfg.LatencyCycles),
	}
	if cfg.Functional {
		d.blocks = make(map[uint64]*[BlockSize]byte)
	}
	return d
}

// Config returns the device configuration.
func (d *DRAM) Config() Config { return d.cfg }

// AccessRead reserves device service for a block read presented at now
// (typically after the bus grant) and returns the data-available cycle.
func (d *DRAM) AccessRead(now sim.Time) sim.Time {
	d.Reads++
	done, start := d.pipe.IssueStart(now)
	d.mRead.Inc()
	d.rec.Span("dram", "read", uint64(start), uint64(done))
	return done
}

// AccessWrite reserves device service for a block write. Writes are posted:
// the returned cycle is when the device has absorbed the data.
func (d *DRAM) AccessWrite(now sim.Time) sim.Time {
	d.Writes++
	done, start := d.pipe.IssueStart(now)
	d.mWrite.Inc()
	d.rec.Span("dram", "write", uint64(start), uint64(done))
	return done
}

// Utilization is the fraction of [0, end) the device spent servicing
// accesses (occupancy of its service pipeline).
func (d *DRAM) Utilization(end sim.Time) float64 { return d.pipe.Utilization(end) }

func (d *DRAM) checkAddr(addr uint64) {
	if addr%BlockSize != 0 {
		panic(fmt.Sprintf("dram: unaligned block address %#x", addr))
	}
	if addr+BlockSize > d.cfg.SizeBytes {
		panic(fmt.Sprintf("dram: address %#x beyond %d-byte memory", addr, d.cfg.SizeBytes))
	}
}

// ReadBlock copies the 64-byte block at addr into dst (functional mode
// only). Unwritten blocks read as zero.
func (d *DRAM) ReadBlock(addr uint64, dst []byte) {
	d.checkAddr(addr)
	if d.blocks == nil {
		panic("dram: functional store disabled")
	}
	if b, ok := d.blocks[addr]; ok {
		copy(dst, b[:])
		return
	}
	for i := 0; i < BlockSize && i < len(dst); i++ {
		dst[i] = 0
	}
}

// WriteBlock stores the 64-byte block at addr (functional mode only).
func (d *DRAM) WriteBlock(addr uint64, src []byte) {
	d.checkAddr(addr)
	if d.blocks == nil { //secmemlint:ignore cttiming nil-ness of the functional store is configuration, independent of the block contents being written
		panic("dram: functional store disabled")
	}
	b, ok := d.blocks[addr]
	if !ok {
		b = new([BlockSize]byte)
		d.blocks[addr] = b
	}
	copy(b[:], src)
}

// Functional reports whether the backing store is enabled.
func (d *DRAM) Functional() bool { return d.blocks != nil }

// HasBlock reports whether the block at addr has ever been written. The
// functional verifier uses this to skip MAC checks on uninitialized memory.
func (d *DRAM) HasBlock(addr uint64) bool {
	_, ok := d.blocks[addr]
	return ok
}

// ForEachBlock visits every written block address (in no particular order).
// Whole-memory re-encryption uses it to find everything that needs a new
// key epoch.
func (d *DRAM) ForEachBlock(fn func(addr uint64)) {
	for addr := range d.blocks {
		fn(addr)
	}
}

// TouchedBlocks reports how many distinct blocks have been written.
func (d *DRAM) TouchedBlocks() int { return len(d.blocks) }

// Attacker provides hardware-attack primitives against the backing store.
// It models a device spliced onto the memory bus or a mod chip on the DIMM:
// it can observe and overwrite anything stored off-chip, but cannot see
// inside the processor.
type Attacker struct {
	d *DRAM
	// snapshots holds block values the attacker recorded for replay.
	snapshots map[uint64][BlockSize]byte
}

// NewAttacker attaches an attacker to the memory. Requires functional mode.
func NewAttacker(d *DRAM) *Attacker {
	if !d.Functional() {
		panic("dram: attacker needs a functional backing store")
	}
	return &Attacker{d: d, snapshots: make(map[uint64][BlockSize]byte)}
}

// Snoop returns a copy of the block at addr, as a bus snooper would capture.
func (a *Attacker) Snoop(addr uint64) [BlockSize]byte {
	var b [BlockSize]byte
	a.d.ReadBlock(addr, b[:])
	return b
}

// FlipBit inverts one bit of the stored block: a spot-tampering attack.
func (a *Attacker) FlipBit(addr uint64, bit int) {
	var b [BlockSize]byte
	a.d.ReadBlock(addr, b[:])
	b[bit/8] ^= 1 << (bit % 8)
	a.d.WriteBlock(addr, b[:])
}

// Overwrite replaces the stored block wholesale.
func (a *Attacker) Overwrite(addr uint64, data []byte) {
	a.d.WriteBlock(addr, data)
}

// Record snapshots the current block value for a later replay.
func (a *Attacker) Record(addr uint64) {
	a.snapshots[addr] = a.Snoop(addr)
}

// Replay rolls the block back to its recorded snapshot (the classic replay
// attack; when addr is a counter block this is the Section 4.3 counter
// replay). It reports whether a snapshot existed.
func (a *Attacker) Replay(addr uint64) bool {
	b, ok := a.snapshots[addr]
	if !ok {
		return false
	}
	a.d.WriteBlock(addr, b[:])
	return true
}

// Splice copies the stored block at src over the one at dst, a relocation
// attack that authentication must catch via the address component.
func (a *Attacker) Splice(src, dst uint64) {
	b := a.Snoop(src)
	a.d.WriteBlock(dst, b[:])
}

// Corrupt randomizes the block at addr using the given source, for failure
// injection sweeps.
func (a *Attacker) Corrupt(addr uint64, rng *rand.Rand) {
	var b [BlockSize]byte
	rng.Read(b[:])
	a.d.WriteBlock(addr, b[:])
}
