package dram

import (
	"bytes"
	"math/rand"
	"testing"
)

func funcDRAM() *DRAM {
	cfg := DefaultConfig()
	cfg.SizeBytes = 1 << 20
	cfg.Functional = true
	return New(cfg)
}

func TestTimingLatency(t *testing.T) {
	d := New(DefaultConfig())
	if got := d.AccessRead(1000); got != 1200 {
		t.Errorf("read done = %d, want 1200", got)
	}
	// Device-side service interval staggers same-cycle accesses.
	if got := d.AccessRead(1000); got != 1216 {
		t.Errorf("second read done = %d, want 1216", got)
	}
	if d.Reads != 2 {
		t.Errorf("reads = %d", d.Reads)
	}
}

func TestFunctionalStore(t *testing.T) {
	d := funcDRAM()
	buf := make([]byte, BlockSize)
	d.ReadBlock(0x1000, buf)
	if !bytes.Equal(buf, make([]byte, BlockSize)) {
		t.Error("unwritten block not zero")
	}
	want := bytes.Repeat([]byte{0xAB}, BlockSize)
	d.WriteBlock(0x1000, want)
	d.ReadBlock(0x1000, buf)
	if !bytes.Equal(buf, want) {
		t.Error("read != write")
	}
	if d.TouchedBlocks() != 1 {
		t.Errorf("touched = %d", d.TouchedBlocks())
	}
}

func TestUnalignedPanics(t *testing.T) {
	d := funcDRAM()
	defer func() {
		if recover() == nil {
			t.Fatal("unaligned access did not panic")
		}
	}()
	d.ReadBlock(0x1001, make([]byte, BlockSize))
}

func TestOutOfRangePanics(t *testing.T) {
	d := funcDRAM()
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range access did not panic")
		}
	}()
	d.WriteBlock(1<<20, make([]byte, BlockSize))
}

func TestFunctionalDisabledPanics(t *testing.T) {
	d := New(DefaultConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("functional read on timing-only DRAM did not panic")
		}
	}()
	d.ReadBlock(0, make([]byte, BlockSize))
}

func TestAttackerFlipAndOverwrite(t *testing.T) {
	d := funcDRAM()
	orig := bytes.Repeat([]byte{0x55}, BlockSize)
	d.WriteBlock(0, orig)
	a := NewAttacker(d)
	a.FlipBit(0, 9)
	got := a.Snoop(0)
	if got[1] != 0x55^0x02 {
		t.Errorf("bit flip wrong: %#x", got[1])
	}
	a.Overwrite(0, make([]byte, BlockSize))
	if got := a.Snoop(0); got != [BlockSize]byte{} {
		t.Error("overwrite failed")
	}
}

func TestAttackerReplay(t *testing.T) {
	d := funcDRAM()
	v1 := bytes.Repeat([]byte{1}, BlockSize)
	v2 := bytes.Repeat([]byte{2}, BlockSize)
	d.WriteBlock(64, v1)
	a := NewAttacker(d)
	if a.Replay(64) {
		t.Error("replay without snapshot succeeded")
	}
	a.Record(64)
	d.WriteBlock(64, v2) // victim updates the block
	if !a.Replay(64) {
		t.Fatal("replay failed")
	}
	got := a.Snoop(64)
	if !bytes.Equal(got[:], v1) {
		t.Error("replay did not restore old value")
	}
}

func TestAttackerSpliceAndCorrupt(t *testing.T) {
	d := funcDRAM()
	v := bytes.Repeat([]byte{7}, BlockSize)
	d.WriteBlock(0, v)
	a := NewAttacker(d)
	a.Splice(0, 128)
	if got := a.Snoop(128); !bytes.Equal(got[:], v) {
		t.Error("splice did not copy block")
	}
	a.Corrupt(0, rand.New(rand.NewSource(1)))
	if got := a.Snoop(0); bytes.Equal(got[:], v) {
		t.Error("corrupt left block unchanged")
	}
}

func TestAttackerRequiresFunctional(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("attacker on timing-only DRAM did not panic")
		}
	}()
	NewAttacker(New(DefaultConfig()))
}
