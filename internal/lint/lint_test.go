package lint

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestRepositoryClean runs the full analyzer suite over the real repository
// and requires zero findings: `go test ./...` permanently enforces the
// paper's crypto invariants. If this test fails, either fix the flagged
// code or — for a deliberate exception — add a
// "//secmemlint:ignore <analyzer> <reason>" comment at the site.
func TestRepositoryClean(t *testing.T) {
	pkgs := loadRepo(t)
	diags := Run(pkgs, All())
	for _, d := range diags {
		t.Errorf("repository violates a crypto invariant: %s", d)
	}
}

// TestRepositoryTypechecks keeps the loader honest: analyzer precision
// depends on type information, so the whole repo must typecheck under the
// stdlib-only loader.
func TestRepositoryTypechecks(t *testing.T) {
	for _, pkg := range loadRepo(t) {
		for _, err := range pkg.TypeErrors {
			t.Errorf("%s: %v", pkg.Path, err)
		}
	}
}

// TestViolationsAreDetected guards against the suite rotting into a no-op:
// the golden fixtures must keep producing findings when run as a whole, the
// same way a reintroduced bytes.Equal MAC compare in the real tree would.
func TestViolationsAreDetected(t *testing.T) {
	fixtures := map[string]string{ // analyzer -> violating fixture dir
		"maccompare":     "maccompare",
		"seeddiscipline": "seeddiscipline",
		"randhygiene":    "randhygiene/cryptoish",
		"verifydrop":     "verifydrop",
		"sliceretain":    "sliceretain/gcmmode",
		"secretflow":     "secretflow/interproc",
		"cttiming":       "cttiming/interproc",
		"taintescape":    "taintescape/alias",
		"sharedstate":    "sharedstate/racy",
		"lockdiscipline": "lockdiscipline/leaky",
		"globalmut":      "globalmut/core",
		"hotpathalloc":   "hotpathalloc/hot",
		"determinism":    "determinism/violating",
		"goroutinelife":  "goroutinelife/leaky",
	}
	for name, dir := range fixtures {
		pkgs, err := Load(filepath.Join("testdata", "src", filepath.FromSlash(dir)), []string{"."})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		diags := Run(pkgs, All())
		found := false
		for _, d := range diags {
			if d.Analyzer == name {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: violating fixture %s produced no %s finding", name, dir, name)
		}
	}
}

// TestSuppressionRequiresReason: a bare ignore comment without a reason must
// not silence anything.
func TestSuppressionRequiresReason(t *testing.T) {
	pkgs := loadRepo(t)
	for _, pkg := range pkgs {
		ignores := collectIgnores(pkg)
		for file, byLine := range ignores {
			for line := range byLine {
				if !strings.HasSuffix(file, ".go") || line <= 0 {
					t.Errorf("malformed ignore record %s:%d", file, line)
				}
			}
		}
	}
}

var repoPkgs []*Package

func loadRepo(t *testing.T) []*Package {
	t.Helper()
	if repoPkgs == nil {
		pkgs, err := Load(filepath.Join("..", ".."), []string{"./..."})
		if err != nil {
			t.Fatalf("loading repository: %v", err)
		}
		repoPkgs = pkgs
	}
	return repoPkgs
}
