package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and typechecked package ready for analysis. Test
// files (*_test.go) are excluded: the invariants guard production paths, and
// tests legitimately compare MACs with bytes.Equal or draw from math/rand.
type Package struct {
	// Path is the import path (module path + relative directory).
	Path string
	// Dir is the absolute directory holding the package sources.
	Dir string
	// Fset is the file set shared by every package of one Load call.
	Fset *token.FileSet
	// Files are the parsed non-test sources, with comments.
	Files []*ast.File
	// Types and Info hold the typechecker's results. Info is always
	// populated even when TypeErrors is non-empty.
	Types *types.Package
	Info  *types.Info
	// TypeErrors collects typechecking problems without aborting the load,
	// so analyzers still run best-effort over partially broken code.
	TypeErrors []error
}

// Segment reports whether the last path segment of the package's import path
// equals name. Analyzers use it for package allow/deny lists so that the
// same rule applies to real packages and to testdata fixtures (whose import
// paths end in the mimicked package name).
func (p *Package) Segment(name string) bool {
	return lastSegment(p.Path) == name
}

func lastSegment(p string) string {
	if i := strings.LastIndexByte(p, '/'); i >= 0 {
		return p[i+1:]
	}
	return p
}

// Load discovers, parses, and typechecks the packages selected by patterns,
// resolved relative to root. A pattern is either a directory ("./internal/core")
// or a recursive form ("./..."), mirroring the go tool; directories named
// testdata, hidden directories, and _-prefixed directories are skipped during
// recursive expansion but may be named explicitly (the golden-fixture tests
// load testdata packages directly).
//
// Only the standard library and packages of the enclosing module can be
// imported: local packages are typechecked from source in dependency order,
// and everything else falls back to go/importer's source importer, keeping
// the loader offline and free of external modules.
func Load(root string, patterns []string) ([]*Package, error) {
	absRoot, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modRoot, modPath, err := findModule(absRoot)
	if err != nil {
		return nil, err
	}
	l := &loader{
		fset:     token.NewFileSet(),
		modRoot:  modRoot,
		modPath:  modPath,
		parsed:   make(map[string]*Package),
		checked:  make(map[string]*types.Package),
		checking: make(map[string]bool),
	}
	l.fallback = importer.ForCompiler(l.fset, "source", nil)

	var selected []string // import paths requested for analysis, in order
	seen := make(map[string]bool)
	for _, pat := range patterns {
		dirs, err := expandPattern(absRoot, pat)
		if err != nil {
			return nil, err
		}
		for _, dir := range dirs {
			pkg, err := l.parseDir(dir)
			if err != nil {
				return nil, err
			}
			if pkg == nil || seen[pkg.Path] {
				continue // no non-test Go files here
			}
			seen[pkg.Path] = true
			selected = append(selected, pkg.Path)
		}
	}
	if len(selected) == 0 {
		return nil, fmt.Errorf("lint: no Go packages match %v under %s", patterns, absRoot)
	}

	var out []*Package
	for _, path := range selected {
		pkg, err := l.check(path)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// LoadScoped loads every package of the module enclosing root in one Load
// call (so type objects are shared) and returns both the full set and the
// subset matched by patterns. Scoped lint runs must analyze the whole
// module — interprocedural summaries for out-of-scope callees are what
// keep a selection like ./internal/core precise — while reporting only on
// the selection; see RunScoped.
func LoadScoped(root string, patterns []string) (all, selected []*Package, err error) {
	absRoot, err := filepath.Abs(root)
	if err != nil {
		return nil, nil, err
	}
	modRoot, _, err := findModule(absRoot)
	if err != nil {
		return nil, nil, err
	}
	want := make(map[string]bool)
	var extra []string // requested dirs the recursive walk skips (e.g. testdata)
	for _, pat := range patterns {
		dirs, err := expandPattern(absRoot, pat)
		if err != nil {
			return nil, nil, err
		}
		for _, d := range dirs {
			if !want[d] {
				want[d] = true
				extra = append(extra, d)
			}
		}
	}
	sort.Strings(extra)
	all, err = Load(modRoot, append([]string{"./..."}, extra...))
	if err != nil {
		return nil, nil, err
	}
	for _, pkg := range all {
		if want[pkg.Dir] {
			selected = append(selected, pkg)
		}
	}
	if len(selected) == 0 {
		return nil, nil, fmt.Errorf("lint: no Go packages match %v under %s", patterns, absRoot)
	}
	return all, selected, nil
}

type loader struct {
	fset     *token.FileSet
	modRoot  string
	modPath  string
	parsed   map[string]*Package // import path -> parsed (maybe unchecked) package
	checked  map[string]*types.Package
	checking map[string]bool // cycle detection
	fallback types.Importer
}

// importPath maps an absolute directory inside the module to its import path.
func (l *loader) importPath(dir string) (string, error) {
	rel, err := filepath.Rel(l.modRoot, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("lint: %s is outside module %s", dir, l.modRoot)
	}
	if rel == "." {
		return l.modPath, nil
	}
	return l.modPath + "/" + filepath.ToSlash(rel), nil
}

// dirOf inverts importPath for local packages.
func (l *loader) dirOf(importPath string) string {
	rel := strings.TrimPrefix(strings.TrimPrefix(importPath, l.modPath), "/")
	return filepath.Join(l.modRoot, filepath.FromSlash(rel))
}

func (l *loader) isLocal(importPath string) bool {
	return importPath == l.modPath || strings.HasPrefix(importPath, l.modPath+"/")
}

// parseDir parses the non-test Go files of one directory. Returns (nil, nil)
// when the directory holds no non-test Go files.
func (l *loader) parseDir(dir string) (*Package, error) {
	path, err := l.importPath(dir)
	if err != nil {
		return nil, err
	}
	if pkg, ok := l.parsed[path]; ok {
		return pkg, nil
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, "_") || strings.HasPrefix(name, ".") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parse %s: %w", filepath.Join(dir, name), err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}
	pkg := &Package{Path: path, Dir: dir, Fset: l.fset, Files: files}
	l.parsed[path] = pkg
	return pkg, nil
}

// check typechecks a local package, recursively checking local imports first.
func (l *loader) check(path string) (*Package, error) {
	pkg, ok := l.parsed[path]
	if ok && pkg.Types != nil {
		return pkg, nil
	}
	if l.checking[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.checking[path] = true
	defer delete(l.checking, path)

	if !ok {
		var err error
		pkg, err = l.parseDir(l.dirOf(path))
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			return nil, fmt.Errorf("lint: no Go files for %s", path)
		}
	}
	// Resolve local dependencies first so the importer can serve them.
	for _, f := range pkg.Files {
		for _, imp := range f.Imports {
			dep := strings.Trim(imp.Path.Value, `"`)
			if l.isLocal(dep) && l.checked[dep] == nil {
				if _, err := l.check(dep); err != nil {
					return nil, err
				}
			}
		}
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{
		Importer: (*loaderImporter)(l),
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	tpkg, _ := conf.Check(path, l.fset, pkg.Files, info) // errors collected above
	pkg.Types = tpkg
	pkg.Info = info
	l.checked[path] = tpkg
	return pkg, nil
}

// loaderImporter serves local packages from the loader and everything else
// (i.e. the standard library) from the source importer.
type loaderImporter loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	l := (*loader)(li)
	if l.isLocal(path) {
		if tp := l.checked[path]; tp != nil {
			return tp, nil
		}
		pkg, err := l.check(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.fallback.Import(path)
}

// expandPattern resolves one pattern to a sorted list of candidate dirs.
func expandPattern(root, pat string) ([]string, error) {
	recursive := false
	switch {
	case pat == "...":
		recursive, pat = true, "."
	case strings.HasSuffix(pat, "/..."):
		recursive, pat = true, strings.TrimSuffix(pat, "/...")
	}
	base := pat
	if !filepath.IsAbs(base) {
		base = filepath.Join(root, base)
	}
	base = filepath.Clean(base)
	if fi, err := os.Stat(base); err != nil {
		return nil, fmt.Errorf("lint: pattern %q: %w", pat, err)
	} else if !fi.IsDir() {
		return nil, fmt.Errorf("lint: pattern %q is not a directory", pat)
	}
	if !recursive {
		return []string{base}, nil
	}
	var dirs []string
	err := filepath.WalkDir(base, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != base && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		dirs = append(dirs, p)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}

// findModule walks upward from dir to the enclosing go.mod.
func findModule(dir string) (root, modPath string, err error) {
	for d := dir; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if strings.HasPrefix(line, "module ") {
					return d, strings.TrimSpace(strings.TrimPrefix(line, "module ")), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module line", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("lint: no go.mod above %s", dir)
		}
		d = parent
	}
}
