package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file is the interprocedural half of the taint engine: per-function
// flow summaries computed by a fixpoint over the call graph's strongly
// connected components (callgraph.go), callees first. A summary answers,
// for one function, "which inputs flow where" — into each result, into the
// receiver's storage, into each parameter's storage (out-params), into
// package-level variables, and into timing/logging sinks inside the body —
// without naming any concrete secret. The intra-procedural engine
// (taint.go) then instantiates summaries at every call site, so a secret
// laundered through an arbitrary chain of unannotated helpers is tracked
// automatically and "//secmemlint:secret" shrinks to true roots.
//
// Inputs are tracked as a small bitset: one bit for "secret" (annotated
// data observed directly), one for the receiver, and one per parameter.
// Summary computation runs the shared fixpoint with each parameter seeded
// by its own bit ("virtual taint"); instantiation maps those bits to the
// labels of the actual arguments at a call site, which keeps the analysis
// context-sensitive — a generic helper is not poisoned for every caller
// just because one caller feeds it a secret.
//
// Soundness caveats (also in DESIGN.md §12): calls through interfaces and
// function values have no summary and fall back to a conservative
// unknown-callee model (results and mutable-reference arguments receive
// the union of all input labels); method values detached from their
// receiver lose the receiver's labels; and effects applied at call sites
// taint only targets that resolve to a plain identifier, so a write into
// x.y.z's storage does not taint x (matching lhsObj's selector-stopping
// rule that keeps field writes from tainting whole structs).

// labelSet is the taint bitset: which function inputs (or the secret
// lattice point itself) an expression's value is derived from.
type labelSet uint64

const (
	// secretLabel marks data derived from an annotated secret.
	secretLabel labelSet = 1 << 0
	// recvLabel marks data derived from the receiver (summary mode).
	recvLabel labelSet = 1 << 1
	// overflowLabel stands in for every parameter past the bitset's
	// capacity; instantiation expands it to the union of all arguments.
	overflowLabel labelSet = 1 << 63
)

// maxParamLabels is how many parameters get their own bit (2..62).
const maxParamLabels = 61

func paramLabel(i int) labelSet {
	if i < 0 || i >= maxParamLabels {
		return overflowLabel
	}
	return 1 << (2 + uint(i))
}

// inputLabels masks the bits that summary sinks may depend on: parameters
// only. Receiver-borne sinks are deliberately excluded — every
// secret-bearing field in this repository is annotated, so receiver flows
// into sinks are reported directly inside the method body, and
// receiver-bit sink facts would flag container bookkeeping (lengths,
// cursors) at every call on a tainted value.
const inputLabels = ^(secretLabel | recvLabel)

// A summary is one function's interprocedural flow table.
type summary struct {
	fn *types.Func
	// results[i] holds the labels flowing into result i.
	results []labelSet
	// aliasResults[i] holds the labels whose backing storage result i may
	// alias (the taintescape notion, composable through helpers).
	aliasResults []labelSet
	// recv holds labels written into the receiver's storage.
	recv labelSet
	// params[i] holds labels written into parameter i's storage
	// (out-parameter flows — the hole the intra-procedural engine
	// documented and could not close).
	params []labelSet
	// globals holds labels written into package-level variables.
	globals map[types.Object]labelSet
	// fields holds labels written into struct-field storage reachable from
	// the receiver, a parameter, or a global. Field objects are tracked
	// per-field, not per-instance (the same approximation labelsOf reads
	// with), which keeps one secret-bearing field from tainting its whole
	// struct — the precision the single recv bit cannot express.
	fields map[types.Object]labelSet
	// sinks lists parameter-indexed sink facts: "data carrying these
	// labels reaches this sink somewhere under this function".
	sinks []sinkFact
}

// A sinkFact records that input data reaches a secretflow or cttiming sink
// inside (or transitively below) a function.
type sinkFact struct {
	labels labelSet
	kind   string // reporting analyzer: "secretflow" or "cttiming"
	desc   string // human description of the ultimate sink
}

// maxSinkFacts bounds per-function sink tables so pathological fan-in
// cannot balloon summaries; beyond the cap facts merge into the last slot.
const maxSinkFacts = 48

func newSummary(fn *types.Func) *summary {
	sig := fn.Type().(*types.Signature)
	return &summary{
		fn:           fn,
		results:      make([]labelSet, sig.Results().Len()),
		aliasResults: make([]labelSet, sig.Results().Len()),
		params:       make([]labelSet, sig.Params().Len()),
		globals:      make(map[types.Object]labelSet),
		fields:       make(map[types.Object]labelSet),
	}
}

func (s *summary) addSink(bits labelSet, kind, desc string) {
	bits &= inputLabels
	if bits == 0 {
		return
	}
	for i := range s.sinks {
		f := &s.sinks[i]
		if f.kind == kind && f.desc == desc {
			f.labels |= bits
			return
		}
	}
	if len(s.sinks) >= maxSinkFacts {
		last := &s.sinks[len(s.sinks)-1]
		last.labels |= bits
		return
	}
	s.sinks = append(s.sinks, sinkFact{labels: bits, kind: kind, desc: desc})
}

func (s *summary) equal(o *summary) bool {
	if o == nil || s.recv != o.recv || len(s.sinks) != len(o.sinks) ||
		len(s.globals) != len(o.globals) || len(s.fields) != len(o.fields) {
		return false
	}
	for i := range s.results {
		if s.results[i] != o.results[i] || s.aliasResults[i] != o.aliasResults[i] {
			return false
		}
	}
	for i := range s.params {
		if s.params[i] != o.params[i] {
			return false
		}
	}
	for g, v := range s.globals {
		if o.globals[g] != v {
			return false
		}
	}
	for fld, v := range s.fields {
		if o.fields[fld] != v {
			return false
		}
	}
	for i := range s.sinks {
		if s.sinks[i] != o.sinks[i] {
			return false
		}
	}
	return true
}

// empty reports whether the summary carries no information worth dumping.
func (s *summary) empty() bool {
	if s.recv != 0 || len(s.sinks) > 0 || len(s.globals) > 0 || len(s.fields) > 0 {
		return false
	}
	for _, v := range s.results {
		if v != 0 {
			return false
		}
	}
	for _, v := range s.aliasResults {
		if v != 0 {
			return false
		}
	}
	for _, v := range s.params {
		if v != 0 {
			return false
		}
	}
	return true
}

// interproc is the module-wide interprocedural state shared by every pass
// of one Run: the call graph, the converged summary table, and the
// module's suppression set (load-bearing here: a suppressed sink site must
// not propagate sink facts to its callers, or hardware-model exemptions
// would resurface at every call site).
type interproc struct {
	graph     *callGraph
	summaries map[*types.Func]*summary
	ignores   ignoreSet
	// secretGlobals records package-level variables promoted to secret
	// because some call chain stores secret-derived data into them.
	secretGlobals map[types.Object]bool
	// shared caches the module-wide concurrency analysis (sharedstate.go),
	// computed on first demand within one Run.
	shared *sharedAnalysis
	// conc caches the concurrent-body fixpoint (scanLiterals +
	// propagateConcurrency) shared by sharedstate and determinism.
	conc *concurrency
	// hot caches the hot-path closure analysis (hotpathalloc.go).
	hot *hotAnalysis
}

// concurrency bundles the module-wide concurrent-body discovery so every
// analyzer that needs "which bodies may run on another goroutine" pays
// for it once per Run.
type concurrency struct {
	scan      *litScan
	conc      map[*ast.FuncLit]bool
	concFuncs map[*types.Func]bool
}

func (ip *interproc) concurrency() *concurrency {
	if ip.conc == nil {
		scan := scanLiterals(ip)
		c, cf := propagateConcurrency(scan)
		ip.conc = &concurrency{scan: scan, conc: c, concFuncs: cf}
	}
	return ip.conc
}

// maxGlobalRounds bounds the outer fixpoint that promotes secret-receiving
// globals and re-runs summary computation with the enlarged root set.
const maxGlobalRounds = 4

// maxSCCIters bounds the within-component iteration for recursive cycles.
const maxSCCIters = 32

// computeInterproc builds the call graph and runs the SCC fixpoint,
// attaching the result to idx so the intra-procedural engine can
// instantiate summaries at call sites.
func computeInterproc(pkgs []*Package, idx *SecretIndex, ignores ignoreSet) *interproc {
	ip := &interproc{
		graph:         buildCallGraph(pkgs),
		ignores:       ignores,
		secretGlobals: make(map[types.Object]bool),
	}
	idx.interp = ip
	comps := ip.graph.sccs()
	for round := 0; round < maxGlobalRounds; round++ {
		ip.summaries = make(map[*types.Func]*summary, len(ip.graph.decls))
		for _, comp := range comps {
			ip.fixpointSCC(idx, comp)
		}
		// Promote globals that received secret-labeled data anywhere in the
		// module, then recompute: reads of those globals are now secret.
		// Fields are deliberately NOT promoted module-wide: the simulator
		// stores ciphertexts and clipped MACs — key-derived but public by
		// the paper's security argument — into device-model fields (DRAM
		// cells, counter images), and promoting those would taint every
		// read of the memory model. Persistent secret state must carry a
		// "//secmemlint:secret" annotation on the field; field effects
		// still flow within a calling function (applySummaryEffects).
		promoted := false
		for _, sum := range ip.summaries {
			for g, bits := range sum.globals {
				if bits&secretLabel != 0 && !idx.objs[g] {
					idx.objs[g] = true
					ip.secretGlobals[g] = true
					promoted = true
				}
			}
		}
		if !promoted {
			break
		}
	}
	return ip
}

// fixpointSCC iterates one strongly connected component until its members'
// summaries stabilize. Singleton components converge in one pass plus the
// equality check; recursive cycles iterate (labels only accumulate, so
// termination is structural; the cap is a safety net).
func (ip *interproc) fixpointSCC(idx *SecretIndex, comp []*types.Func) {
	for _, fn := range comp {
		ip.summaries[fn] = newSummary(fn)
	}
	for iter := 0; iter < maxSCCIters; iter++ {
		changed := false
		for _, fn := range comp {
			next := ip.summarize(idx, fn)
			if !next.equal(ip.summaries[fn]) {
				ip.summaries[fn] = next
				changed = true
			}
		}
		if !changed {
			return
		}
	}
}

// summarize computes one function's summary against the current summary
// table: run the shared fixpoint with virtual input labels, then read off
// result, receiver, out-param, global, and sink flows.
func (ip *interproc) summarize(idx *SecretIndex, fn *types.Func) *summary {
	decl := ip.graph.decls[fn]
	pkg := ip.graph.pkgOf[fn]
	sum := newSummary(fn)
	ft := &funcTaint{
		labels: make(map[types.Object]labelSet),
		alias:  make(map[types.Object]labelSet),
	}
	ctx := &taintCtx{
		idx:   idx,
		pkg:   pkg,
		info:  pkg.Info,
		ft:    ft,
		sum:   sum,
		slots: make(map[types.Object]int),
	}

	// Seed the receiver and each parameter with its own bit.
	if decl.Recv != nil {
		for _, field := range decl.Recv.List {
			for _, name := range field.Names {
				if obj := pkg.Info.Defs[name]; obj != nil {
					ctx.slots[obj] = recvSlot
					ft.labels[obj] |= recvLabel
					ft.alias[obj] |= recvLabel
				}
			}
		}
	}
	if decl.Type.Params != nil {
		i := 0
		for _, field := range decl.Type.Params.List {
			if len(field.Names) == 0 {
				i++
				continue
			}
			for _, name := range field.Names {
				if obj := pkg.Info.Defs[name]; obj != nil {
					ctx.slots[obj] = i
					ft.labels[obj] |= paramLabel(i)
					ft.alias[obj] |= paramLabel(i)
				}
				i++
			}
		}
	}

	ctx.fixpoint(decl.Body)
	ctx.collectResults(decl, sum)

	// Fold whole-variable label growth on receiver/param objects into the
	// out-effects: a callee that taints *p, or a summary-applied effect on
	// the variable itself, is a write into the caller-visible storage.
	for obj, slot := range ctx.slots {
		seed := recvLabel
		if slot != recvSlot {
			seed = paramLabel(slot)
		}
		extra := ft.labels[obj] &^ seed
		if extra == 0 {
			continue
		}
		if slot == recvSlot {
			sum.recv |= extra
		} else if slot < len(sum.params) {
			sum.params[slot] |= extra
		}
	}

	ctx.collectSinks(decl.Body)
	return sum
}

// recvSlot marks the receiver in taintCtx.slots.
const recvSlot = -1

// collectResults unions labels into the summary's result slots from every
// return statement of the function proper (closures return for
// themselves, not for fn).
func (c *taintCtx) collectResults(decl *ast.FuncDecl, sum *summary) {
	nres := len(sum.results)
	if nres == 0 {
		return
	}
	// Named results can be assigned and returned bare.
	var named []types.Object
	if decl.Type.Results != nil {
		for _, field := range decl.Type.Results.List {
			for _, name := range field.Names {
				named = append(named, c.info.Defs[name])
			}
		}
	}
	forEachReturn(decl.Body, func(ret *ast.ReturnStmt) {
		switch {
		case len(ret.Results) == 0:
			for i, obj := range named {
				if obj != nil && i < nres {
					sum.results[i] |= c.ft.labels[obj]
					sum.aliasResults[i] |= c.ft.alias[obj]
				}
			}
		case len(ret.Results) == nres:
			for i, res := range ret.Results {
				sum.results[i] |= c.labelsOf(res)
				sum.aliasResults[i] |= c.aliasLabelsOf(res)
			}
		case len(ret.Results) == 1:
			// return f() forwarding a multi-result call: spread per index
			// when the callee has a summary, else smear the union.
			if call, ok := ast.Unparen(ret.Results[0]).(*ast.CallExpr); ok {
				if per := c.callResultLabels(call); per != nil && len(per) == nres {
					for i := range per {
						sum.results[i] |= per[i]
					}
					return
				}
			}
			bits := c.labelsOf(ret.Results[0])
			for i := range sum.results {
				sum.results[i] |= bits
			}
		}
	})
	// Assignments through named results count even without a bare return.
	for i, obj := range named {
		if obj != nil && i < nres {
			sum.results[i] |= c.ft.labels[obj]
			sum.aliasResults[i] |= c.ft.alias[obj]
		}
	}
}

// forEachReturn visits the return statements belonging to body's own
// function, skipping nested function literals.
func forEachReturn(body *ast.BlockStmt, f func(*ast.ReturnStmt)) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			f(n)
		}
		return true
	})
}

// collectSinks records parameter-indexed sink facts: direct secretflow and
// cttiming sink sites inside the body, plus facts propagated from callee
// summaries. Suppressed sites contribute nothing — the ignore at the site
// is the sanctioned exemption and must silence the whole chain above it.
func (c *taintCtx) collectSinks(body *ast.BlockStmt) {
	add := func(pos token.Pos, bits labelSet, kind, desc string) {
		bits &= inputLabels
		if bits == 0 || c.ignoredAt(pos, kind) {
			return
		}
		c.sum.addSink(bits, kind, desc)
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.IfStmt:
			add(n.Cond.Pos(), c.labelsOf(n.Cond), ctTimingName, "a secret-dependent if condition")
		case *ast.SwitchStmt:
			if n.Tag != nil {
				add(n.Tag.Pos(), c.labelsOf(n.Tag), ctTimingName, "a secret-dependent switch")
			}
		case *ast.ForStmt:
			if n.Cond != nil {
				add(n.Cond.Pos(), c.labelsOf(n.Cond), ctTimingName, "a secret-dependent loop condition")
			}
		case *ast.IndexExpr:
			if tv, ok := c.info.Types[n.X]; ok && tv.IsValue() {
				add(n.Index.Pos(), c.labelsOf(n.Index), ctTimingName, "a secret-indexed table lookup")
			}
		case *ast.SliceExpr:
			for _, bound := range []ast.Expr{n.Low, n.High, n.Max} {
				if bound != nil {
					add(bound.Pos(), c.labelsOf(bound), ctTimingName, "a secret-dependent slice bound")
				}
			}
		case *ast.CallExpr:
			if desc, ok := sinkCallDesc(c.info, n); ok {
				for _, arg := range n.Args {
					add(arg.Pos(), c.labelsOf(arg), secretFlowName, desc)
				}
			}
			if sum, sig := c.calleeSummary(n); sum != nil {
				for _, f := range sum.sinks {
					bits := c.instantiate(f.labels, n, sig)
					add(n.Pos(), bits, f.kind, viaDesc(f.desc, sum.fn.Name()))
				}
			}
		}
		return true
	})
}

// viaDesc tags a propagated sink description with the first hop so call
// site reports name both the immediate callee and the ultimate sink.
func viaDesc(desc, callee string) string {
	if strings.Contains(desc, " (via ") {
		return desc
	}
	return desc + " (via " + callee + ")"
}

// ignoredAt reports whether a finding of analyzer kind at pos is silenced
// by a "//secmemlint:ignore" comment.
func (c *taintCtx) ignoredAt(pos token.Pos, kind string) bool {
	if c.idx.interp == nil {
		return false
	}
	p := c.pkg.Fset.Position(pos)
	return c.idx.interp.ignores.suppresses(Diagnostic{Analyzer: kind, File: p.Filename, Line: p.Line})
}

// checkCallSiteSinks reports, at a call site, secret-derived arguments that
// a callee summary says reach a sink of the given kind somewhere below the
// call. Reports anchor on the offending argument so line suppressions work
// the same as for direct findings.
func checkCallSiteSinks(pass *Pass, ctx *taintCtx, call *ast.CallExpr, kind string) {
	sum, sig := ctx.calleeSummary(call)
	if sum == nil {
		return
	}
	reported := make(map[token.Pos]bool)
	report := func(arg ast.Expr, desc string) {
		if reported[arg.Pos()] || ctx.labelsOf(arg)&secretLabel == 0 {
			return
		}
		reported[arg.Pos()] = true
		if kind == secretFlowName {
			pass.Reportf(arg.Pos(),
				"secret-derived argument flows through %s into %s; key, pad, tag-state, and plaintext material must never leave through logs, errors, metrics, or traces",
				sum.fn.Name(), desc)
		} else {
			pass.Reportf(arg.Pos(),
				"secret-derived argument flows through %s into %s; constant-time discipline forbids secret-dependent control flow and memory indexing",
				sum.fn.Name(), desc)
		}
	}
	nparams := 0
	if sig != nil {
		nparams = sig.Params().Len()
	}
	for _, f := range sum.sinks {
		if f.kind != kind {
			continue
		}
		if f.labels&overflowLabel != 0 {
			for _, arg := range call.Args {
				report(arg, f.desc)
			}
			continue
		}
		for i := 0; i < nparams; i++ {
			if f.labels&paramLabel(i) == 0 {
				continue
			}
			if sig.Variadic() && i == nparams-1 {
				for j := i; j < len(call.Args); j++ {
					report(call.Args[j], f.desc)
				}
			} else if i < len(call.Args) {
				report(call.Args[i], f.desc)
			}
		}
	}
}

// DumpSummaries renders the inferred interprocedural flow table for pkgs,
// the cmd/secmemlint -dump-summaries debug view. Only functions with a
// non-empty summary appear; label sets print as input names.
func DumpSummaries(pkgs []*Package) string {
	idx := collectSecrets(pkgs)
	ignores := collectModuleIgnores(pkgs)
	ip := computeInterproc(pkgs, idx, ignores)
	var b strings.Builder
	for _, fn := range ip.graph.order {
		sum := ip.summaries[fn]
		if sum == nil || sum.empty() {
			continue
		}
		sig := fn.Type().(*types.Signature)
		fmt.Fprintf(&b, "%s\n", fn.FullName())
		for i, bits := range sum.results {
			if bits != 0 {
				fmt.Fprintf(&b, "  result[%d] <- %s\n", i, labelString(bits, sig))
			}
		}
		for i, bits := range sum.aliasResults {
			if bits != 0 {
				fmt.Fprintf(&b, "  result[%d] aliases %s\n", i, labelString(bits, sig))
			}
		}
		if sum.recv != 0 {
			fmt.Fprintf(&b, "  recv <- %s\n", labelString(sum.recv, sig))
		}
		for i, bits := range sum.params {
			if bits != 0 {
				fmt.Fprintf(&b, "  param %s <- %s\n", paramName(sig, i), labelString(bits, sig))
			}
		}
		var effects []string
		for g, bits := range sum.globals {
			effects = append(effects, fmt.Sprintf("  global %s <- %s", g.Name(), labelString(bits, sig)))
		}
		for fld, bits := range sum.fields {
			effects = append(effects, fmt.Sprintf("  field %s <- %s", fld.Name(), labelString(bits, sig)))
		}
		sort.Strings(effects)
		for _, line := range effects {
			b.WriteString(line + "\n")
		}
		for _, f := range sum.sinks {
			fmt.Fprintf(&b, "  sink %s %q <- %s\n", f.kind, f.desc, labelString(f.labels, sig))
		}
	}
	return b.String()
}

func paramName(sig *types.Signature, i int) string {
	if i < sig.Params().Len() {
		if name := sig.Params().At(i).Name(); name != "" {
			return name
		}
	}
	return fmt.Sprintf("#%d", i)
}

func labelString(bits labelSet, sig *types.Signature) string {
	var parts []string
	if bits&secretLabel != 0 {
		parts = append(parts, "secret")
	}
	if bits&recvLabel != 0 {
		parts = append(parts, "recv")
	}
	for i := 0; i < maxParamLabels && i < sig.Params().Len(); i++ {
		if bits&paramLabel(i) != 0 {
			parts = append(parts, paramName(sig, i))
		}
	}
	if bits&overflowLabel != 0 {
		parts = append(parts, "args...")
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, ", ")
}
