package lint

import "strconv"

// RandHygiene keeps math/rand where it belongs: workload generation and
// device modeling. The simulator legitimately draws pseudo-random traffic in
// the trace, DRAM, and harness packages, but a math/rand import in a crypto
// or core path is one refactor away from a predictable IV or key. Production
// randomness, if ever needed, must come from crypto/rand.
var RandHygiene = &Analyzer{
	Name: "randhygiene",
	Doc:  "math/rand only in simulation packages (trace, dram, harness)",
	Run:  runRandHygiene,
}

// randAllowedPkgs are the simulation package name segments allowed to import
// math/rand.
var randAllowedPkgs = []string{"trace", "dram", "harness"}

func runRandHygiene(pass *Pass) {
	for _, seg := range randAllowedPkgs {
		if pass.Pkg.Segment(seg) {
			return
		}
	}
	for _, f := range pass.Pkg.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" || path == "math/rand/v2" {
				pass.Reportf(imp.Path.Pos(),
					"%s imported outside the simulation allowlist (trace, dram, harness); crypto and core paths must not use predictable randomness",
					path)
			}
		}
	}
}
