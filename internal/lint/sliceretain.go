package lint

import (
	"go/ast"
	"go/types"
	"regexp"
)

// SliceRetain prevents aliasing bugs in the crypto substrate: a constructor
// or setter that stores a caller-provided []byte without copying shares the
// backing array with the caller, and the caller's next reuse of its scratch
// buffer silently rewrites what the crypto object believes is key, subkey,
// or MAC material. merkle.Root.Set copies for exactly this reason; the
// analyzer makes that discipline mechanical for every New*/Set*-shaped
// function in the crypto packages.
//
// A parameter that is rebound inside the function (p = append([]byte(nil),
// p...)) is treated as copied and not reported.
var SliceRetain = &Analyzer{
	Name: "sliceretain",
	Doc:  "crypto constructors/setters must copy caller-provided []byte, not alias it",
	Run:  runSliceRetain,
}

// cryptoPkgs are the package name segments holding key/MAC material whose
// lifetime outlives the constructor call.
var cryptoPkgs = []string{"aescipher", "gcmmode", "gf128", "sha1sum", "merkle"}

// retainFuncRe selects constructor/setter-shaped functions: the ones whose
// parameters end up stored in long-lived state.
var retainFuncRe = regexp.MustCompile(`^(New|Make|Set|Init|With|Must)`)

func runSliceRetain(pass *Pass) {
	inScope := false
	for _, seg := range cryptoPkgs {
		if pass.Pkg.Segment(seg) {
			inScope = true
			break
		}
	}
	if !inScope {
		return
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !retainFuncRe.MatchString(fn.Name.Name) {
				continue
			}
			params := byteSliceParams(info, fn)
			if len(params) == 0 {
				continue
			}
			dropReboundParams(info, fn.Body, params)
			checkRetention(pass, info, fn, params)
		}
	}
}

// byteSliceParams returns the objects of fn's []byte parameters.
func byteSliceParams(info *types.Info, fn *ast.FuncDecl) map[types.Object]bool {
	params := make(map[types.Object]bool)
	for _, field := range fn.Type.Params.List {
		for _, name := range field.Names {
			obj := info.Defs[name]
			if obj == nil {
				continue
			}
			sl, ok := obj.Type().Underlying().(*types.Slice)
			if !ok {
				continue
			}
			if b, ok := sl.Elem().Underlying().(*types.Basic); ok && b.Kind() == types.Uint8 {
				params[obj] = true
			}
		}
	}
	return params
}

// dropReboundParams removes parameters that are reassigned in the body —
// the conforming copy idiom rebinds the name to an owned buffer.
func dropReboundParams(info *types.Info, body *ast.BlockStmt, params map[types.Object]bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range assign.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				if obj := info.Uses[id]; obj != nil && params[obj] {
					delete(params, obj)
				}
			}
		}
		return true
	})
}

func checkRetention(pass *Pass, info *types.Info, fn *ast.FuncDecl, params map[types.Object]bool) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if i >= len(n.Lhs) {
					break
				}
				if _, isField := n.Lhs[i].(*ast.SelectorExpr); !isField {
					continue
				}
				if obj := aliasedParam(info, rhs, params); obj != nil {
					pass.Reportf(rhs.Pos(),
						"%s retains caller-provided []byte %q without copying; aliasing lets the caller's buffer reuse corrupt crypto state",
						fn.Name.Name, obj.Name())
				}
			}
		case *ast.CompositeLit:
			if !isStructLit(info, n) {
				return true
			}
			for _, elt := range n.Elts {
				val := elt
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					val = kv.Value
				}
				if obj := aliasedParam(info, val, params); obj != nil {
					pass.Reportf(val.Pos(),
						"%s retains caller-provided []byte %q in a composite literal without copying; aliasing lets the caller's buffer reuse corrupt crypto state",
						fn.Name.Name, obj.Name())
				}
			}
		}
		return true
	})
}

// aliasedParam resolves expressions that alias a watched parameter's backing
// array: the bare name or any reslicing of it.
func aliasedParam(info *types.Info, e ast.Expr, params map[types.Object]bool) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := info.Uses[e]; obj != nil && params[obj] {
			return obj
		}
	case *ast.SliceExpr:
		return aliasedParam(info, e.X, params)
	}
	return nil
}

func isStructLit(info *types.Info, lit *ast.CompositeLit) bool {
	tv, ok := info.Types[lit]
	if !ok || tv.Type == nil {
		return false
	}
	_, ok = tv.Type.Underlying().(*types.Struct)
	return ok
}
