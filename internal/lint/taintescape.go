package lint

import (
	"go/ast"
	"go/types"
)

// TaintEscape generalizes sliceretain to the opposite direction: where
// sliceretain stops caller buffers from aliasing into crypto state, this
// analyzer stops secret state from aliasing out. An exported function that
// returns (or stores into caller-visible memory) a slice backed by secret
// storage hands every caller a live window onto key, subkey, or pad
// material: the caller can read future state changes and — worse — write
// through the alias. Accessors must return a copy; the taint engine's alias
// tracking distinguishes copies (append/make+copy results) from aliases
// (the annotated object or any reslice of it).
var TaintEscape = &Analyzer{
	Name: "taintescape",
	Doc:  "exported APIs must not return or store un-copied aliases of secret state",
	Run:  runTaintEscape,
}

// paramObjects collects fn's parameter and receiver objects — the names
// through which stores become visible to the caller.
func paramObjects(info *types.Info, fn *ast.FuncDecl) map[types.Object]bool {
	params := make(map[types.Object]bool)
	add := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				if obj := info.Defs[name]; obj != nil {
					params[obj] = true
				}
			}
		}
	}
	add(fn.Recv)
	add(fn.Type.Params)
	return params
}

func runTaintEscape(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !fn.Name.IsExported() {
				continue
			}
			ctx := pass.secrets.analyze(pass, fn)
			params := paramObjects(info, fn)
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.FuncLit:
					// Closures have their own escape story (they may be
					// internal callbacks); keep findings attributable to
					// the exported function's own statements.
					return false
				case *ast.ReturnStmt:
					for _, res := range n.Results {
						if isSliceExpr(info, res) && ctx.AliasesSecret(res) {
							pass.Reportf(res.Pos(),
								"exported %s returns an un-copied alias of secret state; return a copy so callers cannot read or rewrite key/pad material",
								fn.Name.Name)
						}
					}
				case *ast.AssignStmt:
					// Storing a secret alias into caller-visible memory
					// (through a pointer/slice/map parameter) leaks the
					// alias just like returning it.
					for i, rhs := range n.Rhs {
						if i >= len(n.Lhs) {
							break
						}
						if !isSliceExpr(info, rhs) || !ctx.AliasesSecret(rhs) {
							continue
						}
						if base := ctx.lhsObj(n.Lhs[i]); base != nil && params[base] {
							if _, direct := ast.Unparen(n.Lhs[i]).(*ast.Ident); direct {
								continue // rebinding a local name, not a store
							}
							pass.Reportf(rhs.Pos(),
								"exported %s stores an un-copied alias of secret state into caller-visible memory; store a copy instead",
								fn.Name.Name)
						}
					}
				}
				return true
			})
		}
	}
}
