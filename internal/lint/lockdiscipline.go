package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockDiscipline is the second concurrency gate for the parallel simulator
// core: every sync.Mutex/RWMutex Lock must be released on all paths
// (defer-unlock preferred — an early return between Lock and a
// non-deferred Unlock leaks the lock), and no lock may be held across a
// channel send/receive, select, or blocking call (WaitGroup.Wait,
// Cond.Wait, time.Sleep) — holding a shard's lock while parking on a
// channel is how event-loop deadlocks are born.
//
// The model is lexical: Lock..Unlock pairs are matched innermost-first by
// mutex expression within one function body, and a deferred Unlock extends
// the interval to the end of the body. Branch-sensitive release patterns
// (unlock in one arm, fall through in another) are out of model — they are
// also exactly the patterns this discipline asks refactors to avoid.
var LockDiscipline = &Analyzer{
	Name: "lockdiscipline",
	Doc:  "locks are released on all paths (defer preferred) and never held across blocking operations",
	Run:  runLockDiscipline,
}

// A lockInterval is one Lock..release span inside one function body.
type lockInterval struct {
	mu       string // render of the mutex expression ("r.mu")
	read     bool   // RLock/RUnlock pair
	lockPos  token.Pos
	endPos   token.Pos // matching Unlock, or body end when deferred/leaked
	deferred bool
	closed   bool // a matching release was seen (deferred or direct)
}

// contains reports whether pos falls strictly inside the held span.
func (iv *lockInterval) contains(pos token.Pos) bool {
	return pos > iv.lockPos && pos < iv.endPos
}

// mutexMethodCall classifies call as a Lock/Unlock/RLock/RUnlock on a
// sync.Mutex or sync.RWMutex and returns the mutex expression's render.
func mutexMethodCall(info *types.Info, call *ast.CallExpr) (mu string, method string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", "", false
	}
	selection, isSel := info.Selections[sel]
	if !isSel {
		return "", "", false
	}
	if !isSyncType(selection.Recv(), "Mutex", "RWMutex") {
		return "", "", false
	}
	return types.ExprString(sel.X), sel.Sel.Name, true
}

// isSyncType reports whether t (or *t) is one of the named types from
// package sync.
func isSyncType(t types.Type, names ...string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil || n.Obj().Pkg().Path() != "sync" {
		return false
	}
	for _, name := range names {
		if n.Obj().Name() == name {
			return true
		}
	}
	return false
}

// funcBodies yields every function-like body in a file — each FuncDecl body
// and each FuncLit body — exactly once, with nested literals excluded from
// their enclosing body's walk (each body has its own lock scope: a
// goroutine launched while the parent holds a lock does not hold it).
func funcBodies(f *ast.File, visit func(body *ast.BlockStmt, where string)) {
	for _, decl := range f.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Body == nil {
			continue
		}
		visit(fn.Body, fn.Name.Name)
		walkBody(fn.Body, fn.Name.Name, visit)
	}
}

func walkBody(body *ast.BlockStmt, where string, visit func(*ast.BlockStmt, string)) {
	inspectSkipFuncLits(body, func(n ast.Node) {
		if lit, ok := n.(*ast.FuncLit); ok {
			name := "func literal in " + where
			visit(lit.Body, name)
			walkBody(lit.Body, where, visit)
		}
	})
}

// inspectSkipFuncLits walks body's own statements, invoking f for every
// node including FuncLit nodes themselves but not their contents.
func inspectSkipFuncLits(body *ast.BlockStmt, f func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if lit, ok := n.(*ast.FuncLit); ok {
			f(lit)
			return false
		}
		f(n)
		return true
	})
}

// lockIntervals computes the Lock..release spans of one body (nested
// literals excluded). Unmatched Locks yield open intervals ending at the
// body's end with closed=false.
func lockIntervals(info *types.Info, body *ast.BlockStmt) []*lockInterval {
	var intervals []*lockInterval
	open := func(mu string, read bool) *lockInterval {
		for i := len(intervals) - 1; i >= 0; i-- {
			iv := intervals[i]
			if !iv.closed && iv.mu == mu && iv.read == read {
				return iv
			}
		}
		return nil
	}
	inspectSkipFuncLits(body, func(n ast.Node) {
		var call *ast.CallExpr
		deferred := false
		switch n := n.(type) {
		case *ast.ExprStmt:
			call, _ = n.X.(*ast.CallExpr)
		case *ast.DeferStmt:
			call = n.Call
			deferred = true
		default:
			return
		}
		if call == nil {
			return
		}
		mu, method, ok := mutexMethodCall(info, call)
		if !ok {
			return
		}
		switch method {
		case "Lock", "RLock":
			if !deferred { // "defer mu.Lock()" is nonsense; ignore
				intervals = append(intervals, &lockInterval{
					mu:      mu,
					read:    method == "RLock",
					lockPos: call.Pos(),
					endPos:  body.End(),
				})
			}
		case "Unlock", "RUnlock":
			iv := open(mu, method == "RUnlock")
			if iv == nil {
				return
			}
			iv.closed = true
			if deferred {
				iv.deferred = true
				iv.endPos = body.End()
			} else {
				iv.endPos = call.Pos()
			}
		}
	})
	return intervals
}

// blockingOp classifies a node as an operation that can park the
// goroutine: channel send/receive, select, WaitGroup/Cond Wait, or
// time.Sleep.
func blockingOp(info *types.Info, n ast.Node) (string, bool) {
	switch n := n.(type) {
	case *ast.SendStmt:
		return "channel send", true
	case *ast.SelectStmt:
		return "select", true
	case *ast.UnaryExpr:
		if n.Op == token.ARROW {
			return "channel receive", true
		}
	case *ast.CallExpr:
		if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
			if selection, ok := info.Selections[sel]; ok {
				if sel.Sel.Name == "Wait" && isSyncType(selection.Recv(), "WaitGroup", "Cond") {
					return "sync." + namedTypeName(selection.Recv()) + ".Wait", true
				}
			} else if fn, pkg := qualifiedCallee(info, n); pkg == "time" && fn == "Sleep" {
				return "time.Sleep", true
			}
		}
	}
	return "", false
}

func runLockDiscipline(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		funcBodies(f, func(body *ast.BlockStmt, where string) {
			intervals := lockIntervals(info, body)
			if len(intervals) == 0 {
				return
			}
			for _, iv := range intervals {
				if !iv.closed {
					pass.Reportf(iv.lockPos,
						"%s.Lock is not released on every path through %s; add a matching Unlock (prefer `defer %s.Unlock()` immediately after locking)",
						iv.mu, where, iv.mu)
				}
			}
			inspectSkipFuncLits(body, func(n ast.Node) {
				if ret, ok := n.(*ast.ReturnStmt); ok {
					for _, iv := range intervals {
						if iv.closed && !iv.deferred && iv.contains(ret.Pos()) {
							pass.Reportf(ret.Pos(),
								"return between %s.Lock and its Unlock leaks the lock on this path; use `defer %s.Unlock()` so every exit releases it",
								iv.mu, iv.mu)
						}
					}
					return
				}
				if op, ok := blockingOp(info, n); ok {
					for _, iv := range intervals {
						if iv.contains(n.Pos()) {
							pass.Reportf(n.Pos(),
								"%s while holding %s; blocking with a lock held stalls every other goroutine contending for it (and can deadlock the event loop)",
								op, iv.mu)
							break
						}
					}
				}
			})
		})
	}
}
