// Package lint is secmemlint's analysis engine: a small, stdlib-only
// static-analysis framework (go/parser + go/ast + go/types, no external
// modules) with domain-specific analyzers that machine-check the crypto
// invariants this repository's security argument rests on:
//
//   - maccompare: MAC/tag comparisons must be constant time (GCM tag check).
//   - seeddiscipline: counter-mode seeds are built only by the canonical
//     builder, so pads are never reused (Section 3 seed uniqueness).
//   - randhygiene: math/rand stays inside simulation packages, away from
//     crypto and core paths.
//   - verifydrop: results of Verify/Authenticate/Open-shaped calls must not
//     be discarded (Section 4.3 verify-before-trust).
//   - sliceretain: crypto constructors/setters must not alias caller []byte.
//   - secretflow: values derived from "//secmemlint:secret" sources must not
//     reach fmt/log/error formatting or obsv metric/trace sinks.
//   - cttiming: no branch condition or memory index may depend on secret
//     data (the constant-time discipline, checked statically).
//   - taintescape: exported APIs must not return or store un-copied aliases
//     of secret state.
//   - sharedstate: state reached from more than one goroutine must be
//     mutex-guarded or accessed via sync/atomic.
//   - lockdiscipline: every Lock is released on all paths (defer
//     preferred) and no lock is held across a blocking operation.
//   - globalmut: no mutable package-level state in the simulator core
//     packages, so shards and tenants stay independently instantiable.
//   - hotpathalloc: code reachable from "//secmemlint:hotpath" roots (the
//     per-access pad/MAC/multiply paths) must not heap-allocate;
//     cross-checked against compiler escape analysis via ESCAPE.json.
//   - determinism: no map-iteration order, wall clock, or cross-goroutine
//     float accumulation may reach simulation outputs.
//   - goroutinelife: every go statement carries a provable termination
//     signal, and spawning in a loop must be bounded (worker pools).
//
// secretflow, cttiming, and taintescape ride on the taint/dataflow engine
// in taint.go, seeded by "//secmemlint:secret" annotations on the real
// key, pad, and plaintext state across aescipher, gcmmode, gf128, and
// core, and extended across function boundaries by the interprocedural
// summaries of summary.go over the call graph of callgraph.go. The
// concurrency analyzers (sharedstate, lockdiscipline, globalmut,
// determinism, goroutinelife) are the static merge gate for the parallel
// event-driven simulator core (ROADMAP); hotpathalloc rides the same call
// graph to hold the per-access closure to the zero-allocation budget the
// speed benchmarks assume.
//
// The compiler cannot see any of these properties; the analyzers keep all
// packages honest through refactors. cmd/secmemlint is the CLI driver and
// lint_test.go pins the real repository to zero findings.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// An Analyzer checks one invariant over one package at a time.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, enable/disable flags,
	// and suppression comments.
	Name string
	// Doc is a one-line description shown by secmemlint -list.
	Doc string
	// Run inspects pass.Pkg and reports findings via pass.Reportf.
	Run func(pass *Pass)
}

// A Pass is one (analyzer, package) execution.
type Pass struct {
	Pkg      *Package
	analyzer *Analyzer
	diags    *[]Diagnostic
	// secrets is the module-wide "//secmemlint:secret" annotation index,
	// shared by every pass of one Run so cross-package secrets (a gf128
	// field read from gcmmode) resolve consistently.
	secrets *SecretIndex
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.analyzer.Name,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

// String renders the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
}

// All returns the full analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		MacCompare,
		SeedDiscipline,
		RandHygiene,
		VerifyDrop,
		SliceRetain,
		SecretFlow,
		CTTiming,
		TaintEscape,
		SharedState,
		LockDiscipline,
		GlobalMut,
		HotPathAlloc,
		Determinism,
		GoroutineLife,
	}
}

// Run executes analyzers over pkgs, drops findings silenced by
// "//secmemlint:ignore" comments, and returns the rest sorted by position.
// Before any analyzer runs it computes the module-wide interprocedural
// summary table (summary.go); the suppression set is collected first
// because suppressed sink sites must not propagate sink facts through
// summaries.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	return RunScoped(pkgs, pkgs, analyzers)
}

// RunScoped analyzes context — which should be every package of the module,
// from one Load call — but reports findings only for the packages in
// selected. The split matters for the interprocedural pass: summaries,
// secret annotations, and suppressions in out-of-scope packages must be
// visible while analyzing a scoped selection, or every call leaving the
// selection degrades to the conservative unknown-callee model and buries
// real findings in noise.
func RunScoped(selected, context []*Package, analyzers []*Analyzer) []Diagnostic {
	secrets := collectSecrets(context)
	ignores := collectModuleIgnores(context)
	computeInterproc(context, secrets, ignores)
	var diags []Diagnostic
	for _, pkg := range selected {
		var pkgDiags []Diagnostic
		for _, a := range analyzers {
			a.Run(&Pass{Pkg: pkg, analyzer: a, diags: &pkgDiags, secrets: secrets})
		}
		for _, d := range pkgDiags {
			if !ignores.suppresses(d) {
				diags = append(diags, d)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// ignoreSet maps file -> line -> analyzer names silenced on that line. A
// suppression comment has the form
//
//	//secmemlint:ignore <analyzer>[,<analyzer>...] <reason>
//
// A trailing comment (code precedes it on the line) suppresses findings on
// its own line and nothing else; a standalone comment line suppresses
// findings on the line directly below it. "all" silences every analyzer.
// The reason is mandatory so intent is documented at the suppression site.
type ignoreSet map[string]map[int][]string

const ignorePrefix = "secmemlint:ignore"

func collectIgnores(pkg *Package) ignoreSet {
	set := make(ignoreSet)
	for _, f := range pkg.Files {
		code := codeLines(pkg.Fset, f)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, ignorePrefix) {
					continue
				}
				fields := strings.Fields(strings.TrimPrefix(text, ignorePrefix))
				if len(fields) < 2 {
					continue // no reason given: suppression does not apply
				}
				pos := pkg.Fset.Position(c.Pos())
				target := pos.Line
				if !code[pos.Line] {
					// Standalone comment line: it guards the statement
					// directly below, where the finding will be reported.
					target = pos.Line + 1
				}
				byLine := set[pos.Filename]
				if byLine == nil {
					byLine = make(map[int][]string)
					set[pos.Filename] = byLine
				}
				byLine[target] = append(byLine[target], strings.Split(fields[0], ",")...)
			}
		}
	}
	return set
}

// codeLines reports which lines of f hold non-comment tokens, so a
// suppression comment can be classified as trailing (shares a line with
// code) or standalone (alone on its line).
func codeLines(fset *token.FileSet, f *ast.File) map[int]bool {
	lines := make(map[int]bool)
	ast.Inspect(f, func(n ast.Node) bool {
		switch n.(type) {
		case nil:
			return false
		case *ast.Comment, *ast.CommentGroup:
			return false
		}
		lines[fset.Position(n.Pos()).Line] = true
		return true
	})
	return lines
}

// collectModuleIgnores merges every package's suppression set into one
// module-wide table (keys are absolute filenames, so the merge is safe).
func collectModuleIgnores(pkgs []*Package) ignoreSet {
	merged := make(ignoreSet)
	for _, pkg := range pkgs {
		for file, byLine := range collectIgnores(pkg) {
			dst := merged[file]
			if dst == nil {
				dst = make(map[int][]string)
				merged[file] = dst
			}
			for line, names := range byLine {
				dst[line] = append(dst[line], names...)
			}
		}
	}
	return merged
}

// A Suppression is one "//secmemlint:ignore" comment in the tree, with its
// mandatory reason — the audit view behind `make lint-fix-audit`.
type Suppression struct {
	File      string   `json:"file"`
	Line      int      `json:"line"`
	Analyzers []string `json:"analyzers"`
	Reason    string   `json:"reason"`
}

// Suppressions lists every well-formed suppression comment in pkgs, sorted
// by file and line, so the allowlisted exemption set stays reviewable.
func Suppressions(pkgs []*Package) []Suppression {
	var out []Suppression
	seen := make(map[string]map[int]bool)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					if !strings.HasPrefix(text, ignorePrefix) {
						continue
					}
					fields := strings.Fields(strings.TrimPrefix(text, ignorePrefix))
					if len(fields) < 2 {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					if seen[pos.Filename][pos.Line] {
						continue // files shared between packages (none today)
					}
					if seen[pos.Filename] == nil {
						seen[pos.Filename] = make(map[int]bool)
					}
					seen[pos.Filename][pos.Line] = true
					out = append(out, Suppression{
						File:      pos.Filename,
						Line:      pos.Line,
						Analyzers: strings.Split(fields[0], ","),
						Reason:    strings.Join(fields[1:], " "),
					})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		return out[i].Line < out[j].Line
	})
	return out
}

func (s ignoreSet) suppresses(d Diagnostic) bool {
	byLine := s[d.File]
	if byLine == nil {
		return false
	}
	for _, name := range byLine[d.Line] {
		if name == d.Analyzer || name == "all" {
			return true
		}
	}
	return false
}

// --- shared expression helpers used by several analyzers -------------------

// coreName digs out the identifier a value expression is "about": the
// receiver-most name of selectors, the array name of index/slice
// expressions, and the callee name of calls. It is the textual handle the
// name-based heuristics match against.
func coreName(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return e.Sel.Name
	case *ast.IndexExpr:
		return coreName(e.X)
	case *ast.SliceExpr:
		return coreName(e.X)
	case *ast.CallExpr:
		return coreName(e.Fun)
	case *ast.ParenExpr:
		return coreName(e.X)
	case *ast.StarExpr:
		return coreName(e.X)
	case *ast.UnaryExpr:
		return coreName(e.X)
	}
	return ""
}

// calleeName returns the final name of a call target ("Verify" for both
// Verify(...) and x.y.Verify(...)), or "" when it has no name.
func calleeName(call *ast.CallExpr) string {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fn.Name
	case *ast.SelectorExpr:
		return fn.Sel.Name
	}
	return ""
}
