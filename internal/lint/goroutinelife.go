package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// GoroutineLife is the leak gate for the parallel simulator core: every
// `go` statement must carry a provable termination signal, and spawning
// inside an unbounded loop must go through a bounded worker pool. A
// goroutine body proves termination by any of:
//
//   - `defer wg.Done()` on a sync.WaitGroup (the join is the signal);
//   - ranging over a channel (terminates when the producer closes it);
//   - a select with a comm clause that returns (the stop-channel idiom,
//     including `case <-ctx.Done(): return`);
//   - a direct blocking receive from a Done()-style channel.
//
// A `go f(...)` launch of a named module function is checked against the
// same rules applied to f's body; a named callee whose signature accepts
// a channel or context.Context parameter is also accepted (the signal is
// threaded in; its use is f's responsibility). External callees cannot be
// proven and are flagged — wrap them in a literal that owns the signal,
// or suppress with a reason for genuinely process-lifetime servers.
//
// The loop rule: a `go` statement inside `for {}` or a condition-only
// `for cond {}` spawns an unbounded number of goroutines; counted loops
// and ranges over data are bounded per call and pass, while ranging a
// channel and spawning per message is flagged (drain the channel with a
// fixed pool of workers instead — the harness.parallelFor shape).
var GoroutineLife = &Analyzer{
	Name: "goroutinelife",
	Doc:  "every go statement needs a provable termination signal; no unbounded spawn loops",
	Run:  runGoroutineLife,
}

func runGoroutineLife(pass *Pass) {
	ip := pass.secrets.interp
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			walkGoStmts(fn.Body, nil, func(g *ast.GoStmt, loop ast.Stmt) {
				checkGoStmt(pass, ip, info, g, loop)
			})
		}
	}
}

// walkGoStmts visits every go statement under body with its innermost
// enclosing loop (crossing function-literal boundaries resets the loop
// context: a loop outside a literal does not multiply spawns inside it).
func walkGoStmts(n ast.Node, loop ast.Stmt, visit func(*ast.GoStmt, ast.Stmt)) {
	switch n := n.(type) {
	case nil:
		return
	case *ast.FuncLit:
		walkGoStmts(n.Body, nil, visit)
		return
	case *ast.ForStmt:
		walkGoStmts(n.Body, n, visit)
		return
	case *ast.RangeStmt:
		walkGoStmts(n.Body, n, visit)
		return
	case *ast.GoStmt:
		visit(n, loop)
		// The launched body may itself spawn; its loops are its own.
		if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
			walkGoStmts(lit.Body, nil, visit)
		}
		return
	}
	// Generic descent preserving the loop context.
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit, *ast.ForStmt, *ast.RangeStmt, *ast.GoStmt:
			if m != n {
				walkGoStmts(m, loop, visit)
				return false
			}
		}
		return true
	})
}

func checkGoStmt(pass *Pass, ip *interproc, info *types.Info, g *ast.GoStmt, loop ast.Stmt) {
	// Loop-boundedness first: it is a property of the spawn site.
	switch l := loop.(type) {
	case *ast.ForStmt:
		if l.Cond == nil {
			pass.Reportf(g.Pos(),
				"goroutine spawned inside an infinite for loop creates unboundedly many goroutines; use a fixed-size worker pool draining a channel")
		} else if l.Init == nil && l.Post == nil {
			pass.Reportf(g.Pos(),
				"goroutine spawned inside a condition-only for loop is not provably bounded; use a counted loop over a fixed worker count")
		}
	case *ast.RangeStmt:
		if tv, ok := info.Types[l.X]; ok && tv.Type != nil {
			if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
				pass.Reportf(g.Pos(),
					"goroutine spawned per channel message is unbounded under load; drain the channel with a fixed pool of workers")
			}
		}
	}

	switch fun := ast.Unparen(g.Call.Fun).(type) {
	case *ast.FuncLit:
		if !terminationSignal(info, fun.Body) {
			pass.Reportf(g.Pos(),
				"goroutine body has no provable termination signal (defer wg.Done, channel range, stop-channel select, or Done-channel receive); a leaked goroutine outlives the run and holds its captures live")
		}
	default:
		callee, _ := calleeObject(info, g.Call).(*types.Func)
		if callee == nil {
			pass.Reportf(g.Pos(),
				"goroutine launches through a function value whose termination cannot be proven; launch a literal that owns the stop signal")
			return
		}
		if sigHasStopParam(callee) {
			return
		}
		if decl, ok := ip.graph.decls[callee]; ok {
			if terminationSignal(ip.graph.pkgOf[callee].Info, decl.Body) {
				return
			}
			pass.Reportf(g.Pos(),
				"goroutine %s has no provable termination signal in its body and no channel/context parameter; thread a stop signal in",
				callee.Name())
			return
		}
		pass.Reportf(g.Pos(),
			"goroutine %s is declared outside the module and takes no channel/context parameter, so its termination cannot be proven; wrap it in a literal that owns the stop signal",
			callee.Name())
	}
}

// GoSite is one go statement, classified for cmd/secmemlint's
// -dump-goroutines view of the module's spawn surface.
type GoSite struct {
	File string `json:"file"`
	Line int    `json:"line"`
	// In names the function declaration containing the spawn site.
	In string `json:"in"`
	// Loop is the enclosing loop shape at the spawn site: "", counted-for,
	// cond-for, infinite-for, range, or range-chan.
	Loop string `json:"loop,omitempty"`
	// Signal is the termination proof the analyzer accepts: literal-body,
	// stop-param, callee-body, or — the flagged cases — none, opaque-value,
	// external.
	Signal string `json:"signal"`
}

// GoroutineSites classifies every go statement in pkgs, the data behind
// the goroutinelife verdicts, so the spawn surface can be reviewed as a
// table rather than reconstructed from findings.
func GoroutineSites(pkgs []*Package) []GoSite {
	idx := collectSecrets(pkgs)
	ignores := collectModuleIgnores(pkgs)
	ip := computeInterproc(pkgs, idx, ignores)
	var out []GoSite
	for _, pkg := range pkgs {
		info := pkg.Info
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				walkGoStmts(fn.Body, nil, func(g *ast.GoStmt, loop ast.Stmt) {
					pos := pkg.Fset.Position(g.Pos())
					out = append(out, GoSite{
						File:   pos.Filename,
						Line:   pos.Line,
						In:     fn.Name.Name,
						Loop:   loopKind(info, loop),
						Signal: signalKind(ip, info, g),
					})
				})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		return out[i].Line < out[j].Line
	})
	return out
}

func loopKind(info *types.Info, loop ast.Stmt) string {
	switch l := loop.(type) {
	case *ast.ForStmt:
		switch {
		case l.Cond == nil:
			return "infinite-for"
		case l.Init == nil && l.Post == nil:
			return "cond-for"
		default:
			return "counted-for"
		}
	case *ast.RangeStmt:
		if tv, ok := info.Types[l.X]; ok && tv.Type != nil {
			if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
				return "range-chan"
			}
		}
		return "range"
	}
	return ""
}

func signalKind(ip *interproc, info *types.Info, g *ast.GoStmt) string {
	switch fun := ast.Unparen(g.Call.Fun).(type) {
	case *ast.FuncLit:
		if terminationSignal(info, fun.Body) {
			return "literal-body"
		}
		return "none"
	default:
		callee, _ := calleeObject(info, g.Call).(*types.Func)
		if callee == nil {
			return "opaque-value"
		}
		if sigHasStopParam(callee) {
			return "stop-param"
		}
		if decl, ok := ip.graph.decls[callee]; ok {
			if terminationSignal(ip.graph.pkgOf[callee].Info, decl.Body) {
				return "callee-body"
			}
			return "none"
		}
		return "external"
	}
}

// sigHasStopParam reports whether a callee's signature threads in a
// termination signal: a channel-typed or context.Context parameter.
func sigHasStopParam(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		t := params.At(i).Type()
		if _, isChan := t.Underlying().(*types.Chan); isChan {
			return true
		}
		if n, ok := t.(*types.Named); ok {
			if pkg := n.Obj().Pkg(); pkg != nil && pkg.Path() == "context" && n.Obj().Name() == "Context" {
				return true
			}
		}
	}
	return false
}

// terminationSignal reports whether a goroutine body carries one of the
// accepted termination proofs. Nested literals are the spawned
// goroutine's own concern and are skipped.
func terminationSignal(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	inspectSkipFuncLits(body, func(n ast.Node) {
		if found {
			return
		}
		switch n := n.(type) {
		case *ast.DeferStmt:
			if sel, ok := ast.Unparen(n.Call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
				if selection, ok := info.Selections[sel]; ok && isSyncType(selection.Recv(), "WaitGroup") {
					found = true
				}
			}
		case *ast.RangeStmt:
			if tv, ok := info.Types[n.X]; ok && tv.Type != nil {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					found = true
				}
			}
		case *ast.SelectStmt:
			for _, clause := range n.Body.List {
				comm, ok := clause.(*ast.CommClause)
				if !ok {
					continue
				}
				for _, stmt := range comm.Body {
					exits := false
					ast.Inspect(stmt, func(m ast.Node) bool {
						if _, ok := m.(*ast.ReturnStmt); ok {
							exits = true
						}
						return !exits
					})
					if exits {
						found = true
					}
				}
			}
		case *ast.UnaryExpr:
			// <-ctx.Done() (or any Done()-channel receive) as a blocker.
			if n.Op != token.ARROW {
				return
			}
			if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok && calleeName(call) == "Done" {
				found = true
			}
		}
	})
	return found
}
