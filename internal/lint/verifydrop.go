package lint

import (
	"go/ast"
	"go/types"
	"regexp"
)

// VerifyDrop enforces verify-before-trust (the Section 4.3 counter-replay
// fix): the result of an authentication check decides whether fetched data
// or counters may be trusted, so it must never be thrown away. The analyzer
// flags calls to Verify-, Authenticate-, and Open-shaped functions that
// return a bool or error when the call's results are discarded — used as a
// bare statement, assigned entirely to blanks, or launched via go/defer
// where the results are unobservable.
//
// Sites that intentionally continue after a failed check (the functional
// simulator records the tamper and keeps running so post-tamper behavior can
// be observed) must carry an explicit "//secmemlint:ignore verifydrop
// <reason>" suppression, documenting the decision in place.
var VerifyDrop = &Analyzer{
	Name: "verifydrop",
	Doc:  "results of Verify/Authenticate/Open-shaped calls must be checked",
	Run:  runVerifyDrop,
}

var verifyNameRe = regexp.MustCompile(`(?i)^(verify|authenticate|open)`)

func runVerifyDrop(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok && droppableVerify(info, call) {
					pass.Reportf(n.Pos(),
						"result of %s discarded; authentication results must gate trust (verify-before-trust, Section 4.3)",
						calleeName(call))
				}
			case *ast.GoStmt:
				if droppableVerify(info, n.Call) {
					pass.Reportf(n.Pos(),
						"result of %s unobservable in go statement; authentication results must gate trust",
						calleeName(n.Call))
				}
			case *ast.DeferStmt:
				if droppableVerify(info, n.Call) {
					pass.Reportf(n.Pos(),
						"result of %s unobservable in defer statement; authentication results must gate trust",
						calleeName(n.Call))
				}
			case *ast.AssignStmt:
				if len(n.Rhs) != 1 {
					return true
				}
				call, ok := n.Rhs[0].(*ast.CallExpr)
				if !ok || !droppableVerify(info, call) {
					return true
				}
				for _, lhs := range n.Lhs {
					if id, ok := lhs.(*ast.Ident); !ok || id.Name != "_" {
						return true
					}
				}
				pass.Reportf(n.Pos(),
					"result of %s assigned to blank; authentication results must gate trust (verify-before-trust, Section 4.3)",
					calleeName(call))
			}
			return true
		})
	}
}

// droppableVerify reports whether call targets a Verify/Authenticate/Open-
// shaped function whose results include a bool or error worth checking.
func droppableVerify(info *types.Info, call *ast.CallExpr) bool {
	name := calleeName(call)
	if name == "" || !verifyNameRe.MatchString(name) {
		return false
	}
	tv, ok := info.Types[call.Fun]
	if !ok || tv.IsType() {
		return false // conversion, or no type info to judge by
	}
	sig, ok := tv.Type.(*types.Signature)
	if !ok {
		return false
	}
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		t := res.At(i).Type()
		if b, ok := t.Underlying().(*types.Basic); ok && b.Kind() == types.Bool {
			return true
		}
		if named, ok := t.(*types.Named); ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil {
			return true
		}
	}
	return false
}
