package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// HotPathAlloc is the zero-allocation gate for the per-access crypto and
// simulator paths. A "//secmemlint:hotpath" comment in a function's doc
// marks it a hot root — code executed for every simulated memory transfer
// (pad generation, per-block MAC, table multiplies, the functional
// read/write paths). The analyzer walks the module call graph
// (callgraph.go) from each root and flags, anywhere in the reachable
// closure, constructs that heap-allocate or defeat the compiler's escape
// analysis:
//
//   - make / new (allocation unless escape analysis proves otherwise)
//   - append (may grow the backing array)
//   - slice and map composite literals
//   - string concatenation and string<->[]byte conversions
//   - fmt calls (formatting boxes arguments and builds strings)
//   - interface boxing of non-pointer-shaped arguments at call sites
//   - calls through interface methods (the callee is unresolvable, so its
//     allocations cannot be proven absent — devirtualize, as PadGen does)
//   - function literals that escape their binding (closure allocation);
//     literals called in place or bound to a local used only in call
//     position compile to stack frames and are exempt
//
// The lexical verdicts are cross-checked against the compiler's real
// escape analysis by cmd/escapeaudit, which parses `go build -gcflags=-m`
// into the committed ESCAPE.json; HotPathAudit below is the shared view of
// the closure both sides use. Struct/array literals, &T{} pointers, defer,
// and calls through function-typed values are deliberately not flagged —
// they are frequently stack-allocated or cold — and the escape audit is
// the backstop for those.
var HotPathAlloc = &Analyzer{
	Name: "hotpathalloc",
	Doc:  "code reachable from //secmemlint:hotpath roots must not heap-allocate",
	Run:  runHotPathAlloc,
}

const hotPathAllocName = "hotpathalloc"

// hotPathPrefix marks hot roots in function doc comments.
const hotPathPrefix = "secmemlint:hotpath"

// hotAnalysis is the module-wide result, computed once per Run and cached
// on the interprocedural state (the sharedstate.go pattern).
type hotAnalysis struct {
	findings map[*Package][]posFinding
	audit    []HotFunc
}

// posFinding is a pre-rendered diagnostic waiting for its package's pass.
type posFinding struct {
	pos token.Pos
	msg string
}

func runHotPathAlloc(pass *Pass) {
	ip := pass.secrets.interp
	if ip == nil {
		return
	}
	if ip.hot == nil {
		ip.hot = analyzeHotPaths(ip)
	}
	for _, f := range ip.hot.findings[pass.Pkg] {
		pass.Reportf(f.pos, "%s", f.msg)
	}
}

// HotFunc is one function on the hot-path closure — the unit the
// ESCAPE.json escape-analysis cross-check (cmd/escapeaudit) audits.
type HotFunc struct {
	// Func is the fully qualified function name.
	Func string `json:"func"`
	// File and the line range locate the declaration (doc comment through
	// closing brace), so compiler escape diagnostics can be mapped in.
	File      string `json:"file"`
	StartLine int    `json:"start_line"`
	EndLine   int    `json:"end_line"`
	// Roots lists the annotated hot roots whose closures include this
	// function; Root marks the function as itself annotated.
	Roots []string `json:"roots"`
	Root  bool     `json:"root,omitempty"`
	// Suppressed reports that the function body carries at least one
	// hotpathalloc suppression: escape diagnostics inside it are sanctioned
	// at function granularity.
	Suppressed bool `json:"suppressed,omitempty"`
}

// HotPathAudit computes the hot-path closure of pkgs and returns one entry
// per member, ordered by file position — the lint side of the ESCAPE.json
// contract.
func HotPathAudit(pkgs []*Package) []HotFunc {
	idx := collectSecrets(pkgs)
	ignores := collectModuleIgnores(pkgs)
	ip := computeInterproc(pkgs, idx, ignores)
	if ip.hot == nil {
		ip.hot = analyzeHotPaths(ip)
	}
	return ip.hot.audit
}

func analyzeHotPaths(ip *interproc) *hotAnalysis {
	res := &hotAnalysis{findings: make(map[*Package][]posFinding)}
	roots := hotPathRoots(ip)
	closure := hotClosure(ip, roots)
	isRoot := make(map[*types.Func]bool, len(roots))
	for _, r := range roots {
		isRoot[r] = true
	}
	for _, fn := range ip.graph.order {
		vias, ok := closure[fn]
		if !ok {
			continue
		}
		decl := ip.graph.decls[fn]
		pkg := ip.graph.pkgOf[fn]
		res.audit = append(res.audit, auditEntry(ip, pkg, fn, decl, vias, isRoot[fn]))
		res.findings[pkg] = append(res.findings[pkg], scanHotBody(pkg, decl, vias)...)
	}
	return res
}

// hotPathRoots returns the annotated functions in deterministic order.
func hotPathRoots(ip *interproc) []*types.Func {
	var roots []*types.Func
	for _, fn := range ip.graph.order {
		if hasHotPathDoc(ip.graph.decls[fn].Doc) {
			roots = append(roots, fn)
		}
	}
	return roots
}

func hasHotPathDoc(g *ast.CommentGroup) bool {
	if g == nil {
		return false
	}
	for _, c := range g.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if text == hotPathPrefix || strings.HasPrefix(text, hotPathPrefix+" ") {
			return true
		}
	}
	return false
}

// hotClosure walks the call graph from each root and maps every reachable
// module function to the sorted names of the roots that reach it. Edges
// are the reference-based over-approximation of callgraph.go, which is the
// safe direction here: a function mentioned on a hot path is held to the
// hot-path standard even if the mention is a stored callback.
func hotClosure(ip *interproc, roots []*types.Func) map[*types.Func][]string {
	reached := make(map[*types.Func]map[string]bool)
	for _, root := range roots {
		name := root.Name()
		queue := []*types.Func{root}
		for len(queue) > 0 {
			fn := queue[0]
			queue = queue[1:]
			m := reached[fn]
			if m == nil {
				m = make(map[string]bool)
				reached[fn] = m
			}
			if m[name] {
				continue
			}
			m[name] = true
			queue = append(queue, ip.graph.callees[fn]...)
		}
	}
	out := make(map[*types.Func][]string, len(reached))
	for fn, m := range reached {
		names := make([]string, 0, len(m))
		for n := range m {
			names = append(names, n)
		}
		sort.Strings(names)
		out[fn] = names
	}
	return out
}

func auditEntry(ip *interproc, pkg *Package, fn *types.Func, decl *ast.FuncDecl, vias []string, isRoot bool) HotFunc {
	start := pkg.Fset.Position(decl.Pos())
	if decl.Doc != nil {
		start = pkg.Fset.Position(decl.Doc.Pos())
	}
	end := pkg.Fset.Position(decl.End())
	h := HotFunc{
		Func:      fn.FullName(),
		File:      start.Filename,
		StartLine: start.Line,
		EndLine:   end.Line,
		Roots:     vias,
		Root:      isRoot,
	}
	for line, names := range ip.ignores[start.Filename] {
		if line < start.Line || line > end.Line {
			continue
		}
		for _, n := range names {
			if n == hotPathAllocName || n == "all" {
				h.Suppressed = true
			}
		}
	}
	return h
}

// scanHotBody reports the allocating constructs in one closure member.
func scanHotBody(pkg *Package, decl *ast.FuncDecl, vias []string) []posFinding {
	info := pkg.Info
	via := strings.Join(vias, ", ")
	var out []posFinding
	report := func(pos token.Pos, what string) {
		out = append(out, posFinding{pos: pos, msg: fmt.Sprintf(
			"%s in %s, which is on the //secmemlint:hotpath closure of %s; per-access code must stay heap-free (cross-checked by ESCAPE.json)",
			what, decl.Name.Name, via)})
	}
	safeLits := classifyFuncLits(info, decl.Body)
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if !safeLits[n] {
				report(n.Pos(), "escaping function literal (closure allocation)")
			}
		case *ast.CompositeLit:
			if tv, ok := info.Types[n]; ok && tv.Type != nil {
				switch tv.Type.Underlying().(type) {
				case *types.Slice:
					report(n.Pos(), "slice literal (backing-array allocation)")
				case *types.Map:
					report(n.Pos(), "map literal (map allocation)")
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if tv, ok := info.Types[n]; ok && tv.Type != nil && tv.Value == nil {
					if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						report(n.Pos(), "string concatenation (result allocation)")
					}
				}
			}
		case *ast.CallExpr:
			scanHotCall(info, n, report)
		}
		return true
	})
	return out
}

func scanHotCall(info *types.Info, call *ast.CallExpr, report func(token.Pos, string)) {
	fun := ast.Unparen(call.Fun)
	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				report(call.Pos(), "make (allocation unless escape analysis proves otherwise)")
			case "new":
				report(call.Pos(), "new (allocation unless escape analysis proves otherwise)")
			case "append":
				report(call.Pos(), "append (may grow the backing array)")
			}
			return
		}
	}
	// Conversions: T(x) where T is a type. Only string<->byte/rune slice
	// conversions copy; numeric and struct conversions are free.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			if atv, ok := info.Types[call.Args[0]]; ok && atv.Type != nil && atv.Value == nil &&
				stringSliceConversion(tv.Type, atv.Type) {
				report(call.Pos(), "string/[]byte conversion (copy allocation)")
			}
		}
		return
	}
	callee, _ := calleeObject(info, call).(*types.Func)
	if callee != nil {
		if pkg := callee.Pkg(); pkg != nil && pkg.Path() == "fmt" {
			report(call.Pos(), "fmt."+callee.Name()+" call (formatting allocates)")
		}
		if sig, ok := callee.Type().(*types.Signature); ok {
			if recv := sig.Recv(); recv != nil && types.IsInterface(recv.Type()) {
				report(call.Pos(), "call through interface method "+callee.Name()+" (unresolvable callee may allocate; devirtualize the hot path)")
			}
			reportBoxing(info, call, sig, report)
		}
	}
}

// reportBoxing flags arguments boxed into interface parameters. Pointer-
// shaped values (pointers, channels, maps, funcs) fit the interface data
// word and constants are interned by the compiler; everything else is a
// runtime allocation at the call site.
func reportBoxing(info *types.Info, call *ast.CallExpr, sig *types.Signature, report func(token.Pos, string)) {
	params := sig.Params()
	np := params.Len()
	for i, arg := range call.Args {
		if call.Ellipsis != token.NoPos && i == len(call.Args)-1 {
			break // f(xs...) passes the slice through, no boxing here
		}
		var pt types.Type
		switch {
		case sig.Variadic() && i >= np-1:
			pt = params.At(np - 1).Type().(*types.Slice).Elem()
		case i < np:
			pt = params.At(i).Type()
		default:
			return
		}
		if !types.IsInterface(pt) {
			continue
		}
		tv, ok := info.Types[arg]
		if !ok || tv.Type == nil || tv.Value != nil {
			continue
		}
		at := tv.Type
		if types.IsInterface(at) || pointerShaped(at) {
			continue
		}
		if b, ok := at.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		report(arg.Pos(), "interface boxing of a non-pointer value")
	}
}

func pointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return t.Underlying().(*types.Basic).Kind() == types.UnsafePointer
	}
	return false
}

func stringSliceConversion(to, from types.Type) bool {
	return (isString(to) && isByteOrRuneSlice(from)) || (isByteOrRuneSlice(to) && isString(from))
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune)
}

// classifyFuncLits separates stack-friendly function literals from
// escaping ones. A literal is safe when it is invoked in place
// ((func(){...})(), including go/defer forms) or bound once via := / var
// to a local whose every use is a direct call — the GHASHTable8 `feed`
// idiom, which the compiler keeps on the stack. Reassignment, or any use
// of the bound name outside call position (argument, return, store),
// makes the closure escape.
func classifyFuncLits(info *types.Info, body *ast.BlockStmt) map[*ast.FuncLit]bool {
	safe := make(map[*ast.FuncLit]bool)
	bound := make(map[types.Object]*ast.FuncLit)
	spoiled := make(map[types.Object]bool)
	callUses := make(map[types.Object]int)
	totalUses := make(map[types.Object]int)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			fun := ast.Unparen(n.Fun)
			if lit, ok := fun.(*ast.FuncLit); ok {
				safe[lit] = true
			}
			if id, ok := fun.(*ast.Ident); ok {
				if obj := info.Uses[id]; obj != nil {
					callUses[obj]++
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if i >= len(n.Rhs) {
					break
				}
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				obj := info.Defs[id]
				if obj == nil {
					obj = info.Uses[id]
				}
				if obj == nil {
					continue
				}
				lit, isLit := ast.Unparen(n.Rhs[i]).(*ast.FuncLit)
				if isLit && n.Tok == token.DEFINE && bound[obj] == nil && !spoiled[obj] {
					bound[obj] = lit
				} else {
					spoiled[obj] = true
				}
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				if i >= len(n.Values) {
					break
				}
				obj := info.Defs[name]
				if obj == nil {
					continue
				}
				if lit, ok := ast.Unparen(n.Values[i]).(*ast.FuncLit); ok {
					bound[obj] = lit
				}
			}
		case *ast.Ident:
			if obj := info.Uses[n]; obj != nil {
				totalUses[obj]++
			}
		}
		return true
	})
	for obj, lit := range bound {
		if !spoiled[obj] && callUses[obj] == totalUses[obj] {
			safe[lit] = true
		}
	}
	return safe
}
