package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// SharedState is the first concurrency gate for the ROADMAP's parallel
// event-driven simulator core: any variable or field reached from more
// than one goroutine must be mutex-guarded on every access path or
// accessed via sync/atomic. The analyzer finds "concurrent bodies" —
// function literals that may run on another goroutine — and flags
// unguarded writes to captured or package-level state inside them, plus
// unguarded reads of state some concurrent body writes.
//
// Concurrent bodies are discovered module-wide, not just at `go`
// statements, because the repo's parallelism is funneled through worker
// pools: a literal passed to harness.parallelFor runs on a worker
// goroutine even though no `go` keyword appears at the call site. The
// propagation rules: (1) a literal in a `go` statement is concurrent; (2)
// a function-typed parameter, variable, or field mentioned inside a
// concurrent body is "hot", and every literal bound to a hot object
// (assignment, composite literal, or call argument) is concurrent — this
// covers worker-pool submissions, locally stored closures invoked from a
// goroutine, and callbacks parked in fields; (3) literals nested inside a
// concurrent body are concurrent; (4) a named function launched with `go
// f()` has its package-variable accesses treated as concurrent.
//
// Exemptions, each matching an intended sharing idiom: channels and sync/
// sync-atomic values (their whole point), function values that are only
// read, read-only captures (nothing writes them concurrently), and
// writes to distinct slice/array elements (`out[i] = v` — the
// partitioned parallel-for idiom where each worker owns index i).
// Guardedness is lexical: the access must sit between Lock and Unlock of
// some mutex in the same body (lockdiscipline.go's interval model).
var SharedState = &Analyzer{
	Name: "sharedstate",
	Doc:  "state reached from more than one goroutine must be mutex-guarded or atomic",
	Run:  runSharedState,
}

// sharedAnalysis is the module-wide result, computed once per Run and
// cached on the interprocedural state; each package pass then emits only
// its own findings.
type sharedAnalysis struct {
	findings map[*Package][]sharedFinding
}

type sharedFinding struct {
	pos token.Pos
	msg string
}

// litScan is the module-wide scan feeding the concurrent-body fixpoint.
type litScan struct {
	// pkgOf maps each literal to its package; parent maps nested literals
	// to their innermost enclosing literal (nil = declared at function
	// level); declOf maps literals to their enclosing named function.
	pkgOf  map[*ast.FuncLit]*Package
	parent map[*ast.FuncLit]*ast.FuncLit
	declOf map[*ast.FuncLit]*types.Func
	// goLits are literals launched directly by a go statement.
	goLits map[*ast.FuncLit]bool
	// goFuncs are named module functions launched by a go statement.
	goFuncs map[*types.Func]bool
	// goVars are function-typed objects invoked by a go statement.
	goVars map[types.Object]bool
	// bindings maps function-typed objects to literals bound to them.
	bindings map[types.Object][]*ast.FuncLit
	// passes maps callee-parameter objects to function-typed argument
	// objects passed for them (hotness flows param -> argument).
	passes map[types.Object][]types.Object
	// mentions maps function-typed objects to the literals (or named
	// functions, via declMentions) whose bodies mention them.
	mentions     map[types.Object][]*ast.FuncLit
	declMentions map[types.Object][]*types.Func
}

func runSharedState(pass *Pass) {
	ip := pass.secrets.interp
	if ip == nil {
		return
	}
	if ip.shared == nil {
		ip.shared = analyzeSharedState(ip)
	}
	for _, f := range ip.shared.findings[pass.Pkg] {
		pass.Reportf(f.pos, "%s", f.msg)
	}
}

func analyzeSharedState(ip *interproc) *sharedAnalysis {
	cc := ip.concurrency()
	scan, conc, concFuncs := cc.scan, cc.conc, cc.concFuncs

	// Order concurrent bodies deterministically by position.
	type body struct {
		pkg  *Package
		node ast.Node       // *ast.FuncLit or *ast.FuncDecl body owner
		blk  *ast.BlockStmt // the body to scan
		// globalsOnly: named functions launched with `go f()` have no
		// captures; only package variables are shared.
		globalsOnly bool
	}
	var bodies []body
	for lit := range conc {
		bodies = append(bodies, body{pkg: scan.pkgOf[lit], node: lit, blk: lit.Body})
	}
	for fn := range concFuncs {
		if decl := ip.graph.decls[fn]; decl != nil {
			bodies = append(bodies, body{pkg: ip.graph.pkgOf[fn], node: decl, blk: decl.Body, globalsOnly: true})
		}
	}
	sort.Slice(bodies, func(i, j int) bool { return bodies[i].blk.Pos() < bodies[j].blk.Pos() })

	type access struct {
		body    int
		pkg     *Package
		obj     types.Object
		pos     token.Pos
		write   bool
		guarded bool
	}
	var accesses []access
	written := make(map[types.Object]bool)

	for bi, b := range bodies {
		info := b.pkg.Info
		intervals := lockIntervals(info, b.blk)
		guarded := func(pos token.Pos) bool {
			for _, iv := range intervals {
				if iv.contains(pos) {
					return true
				}
			}
			return false
		}
		shared := func(obj types.Object) bool {
			v, ok := obj.(*types.Var)
			if !ok || v.IsField() {
				return false
			}
			if sharedExemptType(v.Type()) {
				return false
			}
			if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
				return true // package-level variable
			}
			if b.globalsOnly {
				return false
			}
			// Captured: declared outside this literal but used inside it.
			return v.Pos() < b.blk.Pos() || v.Pos() > b.blk.End()
		}
		writeRoots := make(map[*ast.Ident]bool)
		inspectSkipFuncLits(b.blk, func(n ast.Node) {
			var targets []ast.Expr
			switch n := n.(type) {
			case *ast.AssignStmt:
				targets = n.Lhs
			case *ast.IncDecStmt:
				targets = []ast.Expr{n.X}
			default:
				return
			}
			for _, t := range targets {
				id, element := writeRoot(info, t)
				if id == nil {
					continue
				}
				writeRoots[id] = true
				if element {
					continue // out[i] = v: each worker owns its index
				}
				obj := info.Uses[id]
				if obj == nil {
					obj = info.Defs[id]
				}
				if obj == nil || !shared(obj) {
					continue
				}
				written[obj] = true
				accesses = append(accesses, access{
					body: bi, pkg: b.pkg, obj: obj, pos: id.Pos(),
					write: true, guarded: guarded(id.Pos()),
				})
			}
		})
		inspectSkipFuncLits(b.blk, func(n ast.Node) {
			id, ok := n.(*ast.Ident)
			if !ok || writeRoots[id] {
				return
			}
			obj := info.Uses[id]
			if obj == nil || !shared(obj) {
				return
			}
			if _, isFunc := obj.Type().Underlying().(*types.Signature); isFunc {
				return // calling a captured func value is a read-only use
			}
			accesses = append(accesses, access{
				body: bi, pkg: b.pkg, obj: obj, pos: id.Pos(),
				guarded: guarded(id.Pos()),
			})
		})
	}

	res := &sharedAnalysis{findings: make(map[*Package][]sharedFinding)}
	for _, a := range accesses {
		if a.guarded {
			continue
		}
		if a.write {
			res.findings[a.pkg] = append(res.findings[a.pkg], sharedFinding{
				pos: a.pos,
				msg: "write to " + a.obj.Name() + ", which is reachable from more than one goroutine, is not mutex-guarded; hold one mutex around every access or use sync/atomic",
			})
		} else if written[a.obj] {
			res.findings[a.pkg] = append(res.findings[a.pkg], sharedFinding{
				pos: a.pos,
				msg: "read of " + a.obj.Name() + ", which another goroutine writes, is not mutex-guarded; hold the writer's mutex around every access path",
			})
		}
	}
	return res
}

// scanLiterals walks every module function once, recording function
// literals, go statements, bindings of literals to function-typed
// objects, hotness hand-offs at call sites, and mentions of function-typed
// objects inside literals.
func scanLiterals(ip *interproc) *litScan {
	s := &litScan{
		pkgOf:        make(map[*ast.FuncLit]*Package),
		parent:       make(map[*ast.FuncLit]*ast.FuncLit),
		declOf:       make(map[*ast.FuncLit]*types.Func),
		goLits:       make(map[*ast.FuncLit]bool),
		goFuncs:      make(map[*types.Func]bool),
		goVars:       make(map[types.Object]bool),
		bindings:     make(map[types.Object][]*ast.FuncLit),
		passes:       make(map[types.Object][]types.Object),
		mentions:     make(map[types.Object][]*ast.FuncLit),
		declMentions: make(map[types.Object][]*types.Func),
	}
	// Parameter objects per module function, in declaration order, for
	// resolving call-argument bindings.
	paramObjs := make(map[*types.Func][]types.Object)
	for fn, decl := range ip.graph.decls {
		var objs []types.Object
		if decl.Type.Params != nil {
			info := ip.graph.pkgOf[fn].Info
			for _, field := range decl.Type.Params.List {
				if len(field.Names) == 0 {
					objs = append(objs, nil)
					continue
				}
				for _, name := range field.Names {
					objs = append(objs, info.Defs[name])
				}
			}
		}
		paramObjs[fn] = objs
	}

	funcObj := func(info *types.Info, e ast.Expr) types.Object {
		switch e := ast.Unparen(e).(type) {
		case *ast.Ident:
			if obj := info.Uses[e]; obj != nil {
				return obj
			}
			return info.Defs[e]
		case *ast.SelectorExpr:
			if sel, ok := info.Selections[e]; ok {
				return sel.Obj()
			}
			return info.Uses[e.Sel]
		}
		return nil
	}

	for fn, decl := range ip.graph.decls {
		pkg := ip.graph.pkgOf[fn]
		info := pkg.Info
		var walk func(n ast.Node, enclosing *ast.FuncLit)
		record := func(obj types.Object, enclosing *ast.FuncLit) {
			if obj == nil {
				return
			}
			if _, isFunc := obj.Type().Underlying().(*types.Signature); !isFunc {
				return
			}
			if enclosing != nil {
				s.mentions[obj] = append(s.mentions[obj], enclosing)
			} else {
				s.declMentions[obj] = append(s.declMentions[obj], fn)
			}
		}
		bind := func(obj types.Object, rhs ast.Expr) {
			if obj == nil {
				return
			}
			if lit, ok := ast.Unparen(rhs).(*ast.FuncLit); ok {
				s.bindings[obj] = append(s.bindings[obj], lit)
			}
		}
		walk = func(n ast.Node, enclosing *ast.FuncLit) {
			ast.Inspect(n, func(m ast.Node) bool {
				switch m := m.(type) {
				case *ast.FuncLit:
					if m != n {
						s.pkgOf[m] = pkg
						s.parent[m] = enclosing
						s.declOf[m] = fn
						walk(m.Body, m)
						return false
					}
				case *ast.GoStmt:
					switch fun := ast.Unparen(m.Call.Fun).(type) {
					case *ast.FuncLit:
						s.goLits[fun] = true
					default:
						if obj := funcObj(info, m.Call.Fun); obj != nil {
							if callee, ok := obj.(*types.Func); ok {
								if _, inModule := ip.graph.decls[callee]; inModule {
									s.goFuncs[callee] = true
								}
							} else {
								s.goVars[obj] = true
							}
						}
						_ = fun
					}
				case *ast.Ident:
					if obj := info.Uses[m]; obj != nil {
						record(obj, enclosing)
					}
				case *ast.AssignStmt:
					for i, lhs := range m.Lhs {
						if i >= len(m.Rhs) {
							break
						}
						bind(funcObj(info, lhs), m.Rhs[i])
					}
				case *ast.ValueSpec:
					for i, name := range m.Names {
						if i >= len(m.Values) {
							break
						}
						bind(info.Defs[name], m.Values[i])
					}
				case *ast.KeyValueExpr:
					if key, ok := m.Key.(*ast.Ident); ok {
						bind(info.Uses[key], m.Value)
					}
				case *ast.CallExpr:
					callee, _ := calleeObject(info, m).(*types.Func)
					params := paramObjs[callee]
					if params == nil {
						return true
					}
					for i, arg := range m.Args {
						if i >= len(params) || params[i] == nil {
							continue
						}
						if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
							s.bindings[params[i]] = append(s.bindings[params[i]], lit)
						} else if obj := funcObj(info, arg); obj != nil {
							s.passes[params[i]] = append(s.passes[params[i]], obj)
						}
					}
				}
				return true
			})
		}
		walk(decl.Body, nil)
	}
	return s
}

// propagateConcurrency runs the hot-object/concurrent-literal fixpoint
// described on SharedState.
func propagateConcurrency(s *litScan) (map[*ast.FuncLit]bool, map[*types.Func]bool) {
	conc := make(map[*ast.FuncLit]bool, len(s.goLits))
	hot := make(map[types.Object]bool, len(s.goVars))
	for lit := range s.goLits {
		conc[lit] = true
	}
	for obj := range s.goVars {
		hot[obj] = true
	}
	concFuncs := make(map[*types.Func]bool, len(s.goFuncs))
	for fn := range s.goFuncs {
		concFuncs[fn] = true
	}
	for round := 0; round < 10; round++ {
		changed := false
		mark := func(lit *ast.FuncLit) {
			if !conc[lit] {
				conc[lit] = true
				changed = true
			}
		}
		// Nested literals of concurrent literals run on the same goroutine.
		for lit, parent := range s.parent {
			if parent != nil && conc[parent] {
				mark(lit)
			}
		}
		// A function-typed object mentioned in a concurrent context is hot.
		for obj, lits := range s.mentions {
			if hot[obj] {
				continue
			}
			for _, lit := range lits {
				if conc[lit] {
					hot[obj] = true
					changed = true
					break
				}
			}
		}
		for obj, fns := range s.declMentions {
			if hot[obj] {
				continue
			}
			for _, fn := range fns {
				if concFuncs[fn] {
					hot[obj] = true
					changed = true
					break
				}
			}
		}
		// Literals bound to hot objects are concurrent; function-typed
		// arguments passed into hot parameters become hot.
		for obj, lits := range s.bindings {
			if !hot[obj] {
				continue
			}
			for _, lit := range lits {
				mark(lit)
			}
		}
		for param, args := range s.passes {
			if !hot[param] {
				continue
			}
			for _, arg := range args {
				if fn, ok := arg.(*types.Func); ok {
					if !concFuncs[fn] {
						concFuncs[fn] = true
						changed = true
					}
					continue
				}
				if !hot[arg] {
					hot[arg] = true
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	return conc, concFuncs
}

// writeRoot resolves an assignment target to its root identifier, also
// reporting whether the write lands in a slice or array element (the
// partitioned parallel-for idiom: workers writing out[i] each own index
// i, so element writes are exempt from guarding; map writes are not).
func writeRoot(info *types.Info, e ast.Expr) (*ast.Ident, bool) {
	element := false
	for {
		switch t := ast.Unparen(e).(type) {
		case *ast.Ident:
			return t, element
		case *ast.IndexExpr:
			if tv, ok := info.Types[t.X]; ok && tv.Type != nil {
				switch tv.Type.Underlying().(type) {
				case *types.Slice, *types.Array:
					element = true
				}
			}
			e = t.X
		case *ast.SelectorExpr:
			e = t.X
		case *ast.StarExpr:
			e = t.X
		default:
			return nil, false
		}
	}
}

// sharedExemptType reports types whose sharing is the intended usage:
// channels and the sync / sync/atomic primitives.
func sharedExemptType(t types.Type) bool {
	if _, ok := t.Underlying().(*types.Chan); ok {
		return true
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		if pkg := n.Obj().Pkg(); pkg != nil {
			if path := pkg.Path(); path == "sync" || path == "sync/atomic" {
				return true
			}
		}
	}
	return false
}
