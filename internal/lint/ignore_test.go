package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// ignorePlacementFixture exercises every legal and illegal placement of a
// "//secmemlint:ignore" comment. Lines marked WANT must still be reported;
// every other bytes.Equal call is suppressed by a correctly placed ignore.
const ignorePlacementFixture = `package fixture

import "bytes"

func plain(mac, other []byte) bool {
	return bytes.Equal(mac, other) // WANT
}

func trailing(mac, other []byte) bool {
	return bytes.Equal(mac, other) //secmemlint:ignore maccompare test fixture: trailing comment suppresses its own line
}

func standalone(mac, other []byte) bool {
	//secmemlint:ignore maccompare test fixture: standalone comment suppresses the line below
	return bytes.Equal(mac, other)
}

func noBleed(mac, other []byte) bool {
	a := bytes.Equal(mac, other) //secmemlint:ignore maccompare test fixture: must not leak onto the next line
	b := bytes.Equal(mac, other) // WANT
	return a && b
}

func standaloneGap(mac, other []byte) bool {
	//secmemlint:ignore maccompare test fixture: a blank line breaks the attachment

	return bytes.Equal(mac, other) // WANT
}
`

// TestIgnorePlacement pins the suppression semantics: a trailing ignore
// comment silences only its own line, and a standalone ignore comment
// silences only the line immediately below it.
func TestIgnorePlacement(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module ignorefixture\n\ngo 1.22\n")
	writeFile(t, filepath.Join(dir, "fixture.go"), ignorePlacementFixture)

	pkgs, err := Load(dir, []string{"."})
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			t.Fatalf("fixture does not typecheck: %v", terr)
		}
	}

	wantLines := make(map[int]bool)
	for i, line := range strings.Split(ignorePlacementFixture, "\n") {
		if strings.HasSuffix(line, "// WANT") {
			wantLines[i+1] = true
		}
	}
	if len(wantLines) != 3 {
		t.Fatalf("fixture self-check: expected 3 WANT markers, found %d", len(wantLines))
	}

	gotLines := make(map[int]bool)
	for _, d := range Run(pkgs, []*Analyzer{MacCompare}) {
		if gotLines[d.Line] {
			t.Errorf("duplicate diagnostic on line %d", d.Line)
		}
		gotLines[d.Line] = true
	}
	for line := range wantLines {
		if !gotLines[line] {
			t.Errorf("line %d: expected a maccompare finding, got none", line)
		}
	}
	for line := range gotLines {
		if !wantLines[line] {
			t.Errorf("line %d: unexpected finding; a misplaced ignore failed to suppress (or suppression leaked)", line)
		}
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
