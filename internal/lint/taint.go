package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// This file is the taint/dataflow engine underneath the secretflow,
// cttiming, and taintescape analyzers. Secrecy is a property the Go type
// system cannot express: a []byte holding an AES key schedule and a []byte
// holding a public trace label have the same type. The engine adds that
// missing bit as a two-point lattice (public ⊑ secret) seeded by explicit
// "//secmemlint:secret" annotations and propagated intra-procedurally
// through assignments, composite literals, indexing/slicing, arithmetic and
// XOR, and calls to functions whose results are annotated secret.
//
// Annotation grammar (the sources of taint):
//
//	//secmemlint:secret [prose...]
//	    on a struct field (doc or trailing comment), a var declaration, or
//	    the line directly above either: the declared names are secret.
//	    Trailing prose documents what the secret is.
//
//	//secmemlint:secret name[ name...]
//	    in a function's doc comment: each name is a parameter or receiver
//	    name to treat as secret inside the body; the keyword "return" marks
//	    the function's results as secret at every call site.
//
// Deliberate exceptions (the allowlisted set) use the ordinary
// "//secmemlint:ignore <analyzer> <reason>" mechanism at the finding site,
// so every place the discipline is waived carries its justification.
//
// The analysis is intentionally intra-procedural: cross-function flow is
// declared at boundaries (annotated params, fields, and results) rather
// than inferred, which keeps findings explainable — every report can be
// traced from an annotation through local assignments to the sink. Known
// holes, accepted for predictability: writes through pointer/out
// parameters do not taint the caller's variable, and element writes into a
// struct field do not taint the enclosing struct variable.
const secretPrefix = "secmemlint:secret"

// declassifiedPkgs are import paths whose function results are public even
// when fed secrets: crypto/subtle reduces secrets to publishable decisions
// in constant time, which is exactly the sanctioned exit from the lattice.
var declassifiedPkgs = map[string]bool{
	"crypto/subtle": true,
}

// SecretIndex is the module-wide annotation table built once per Run over
// every loaded package, so a secret declared in gf128 stays secret when
// gcmmode touches it through a selector.
type SecretIndex struct {
	// objs holds annotated objects: struct fields, parameters, receivers,
	// and variables.
	objs map[types.Object]bool
	// results holds functions whose results are annotated secret.
	results map[types.Object]bool
	// taints caches per-function dataflow results across the analyzers of
	// one Run.
	taints map[*ast.FuncDecl]*funcTaint
}

// collectSecrets builds the annotation index over all loaded packages.
func collectSecrets(pkgs []*Package) *SecretIndex {
	idx := &SecretIndex{
		objs:    make(map[types.Object]bool),
		results: make(map[types.Object]bool),
		taints:  make(map[*ast.FuncDecl]*funcTaint),
	}
	for _, pkg := range pkgs {
		idx.collectPackage(pkg)
	}
	return idx
}

// secretComment extracts the argument text of a secret annotation comment,
// reporting ok=false for non-annotation comments.
func secretComment(c *ast.Comment) (args string, ok bool) {
	text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
	if !strings.HasPrefix(text, secretPrefix) {
		return "", false
	}
	return strings.TrimSpace(strings.TrimPrefix(text, secretPrefix)), true
}

func groupHasSecret(g *ast.CommentGroup) bool {
	if g == nil {
		return false
	}
	for _, c := range g.List {
		if _, ok := secretComment(c); ok {
			return true
		}
	}
	return false
}

func (idx *SecretIndex) collectPackage(pkg *Package) {
	info := pkg.Info
	for _, f := range pkg.Files {
		// Attachment pass: struct fields, var specs, and function docs.
		// Comments consumed here are excluded from the line-based pass so a
		// function-level annotation cannot double as a line annotation for
		// whatever sits beneath it.
		consumed := make(map[*ast.Comment]bool)
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.StructType:
				for _, field := range n.Fields.List {
					idx.collectField(info, field, consumed)
				}
			case *ast.ValueSpec:
				if groupHasSecret(n.Doc) || groupHasSecret(n.Comment) {
					for _, name := range n.Names {
						if obj := info.Defs[name]; obj != nil {
							idx.objs[obj] = true
						}
					}
					markConsumed(n.Doc, consumed)
					markConsumed(n.Comment, consumed)
				}
			case *ast.GenDecl:
				if n.Tok == token.VAR && groupHasSecret(n.Doc) {
					for _, spec := range n.Specs {
						vs, ok := spec.(*ast.ValueSpec)
						if !ok {
							continue
						}
						for _, name := range vs.Names {
							if obj := info.Defs[name]; obj != nil {
								idx.objs[obj] = true
							}
						}
					}
					markConsumed(n.Doc, consumed)
				}
			case *ast.FuncDecl:
				idx.collectFuncDoc(info, n, consumed)
			}
			return true
		})

		// Line pass: a bare annotation on a var's line or the line directly
		// above taints the names defined there (covers short declarations
		// and unparenthesized vars, whose trailing comments float free in
		// the AST).
		lines := make(map[int]bool)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if consumed[c] {
					continue
				}
				if _, ok := secretComment(c); ok {
					lines[pkg.Fset.Position(c.Pos()).Line] = true
				}
			}
		}
		if len(lines) == 0 {
			continue
		}
		for ident, obj := range info.Defs {
			v, ok := obj.(*types.Var)
			if !ok {
				continue
			}
			pos := pkg.Fset.Position(ident.Pos())
			if pos.Filename != pkg.Fset.Position(f.Pos()).Filename {
				continue
			}
			if lines[pos.Line] || lines[pos.Line-1] {
				idx.objs[v] = true
			}
		}
	}
}

func markConsumed(g *ast.CommentGroup, consumed map[*ast.Comment]bool) {
	if g == nil {
		return
	}
	for _, c := range g.List {
		consumed[c] = true
	}
}

func (idx *SecretIndex) collectField(info *types.Info, field *ast.Field, consumed map[*ast.Comment]bool) {
	if !groupHasSecret(field.Doc) && !groupHasSecret(field.Comment) {
		return
	}
	for _, name := range field.Names {
		if obj := info.Defs[name]; obj != nil {
			idx.objs[obj] = true
		}
	}
	markConsumed(field.Doc, consumed)
	markConsumed(field.Comment, consumed)
}

// collectFuncDoc handles the named form in function doc comments:
// "//secmemlint:secret key h return" marks params/receiver key and h secret
// and the results secret.
func (idx *SecretIndex) collectFuncDoc(info *types.Info, fn *ast.FuncDecl, consumed map[*ast.Comment]bool) {
	if fn.Doc == nil {
		return
	}
	var names []string
	for _, c := range fn.Doc.List {
		args, ok := secretComment(c)
		if !ok {
			continue
		}
		consumed[c] = true
		names = append(names, strings.FieldsFunc(args, func(r rune) bool {
			return r == ' ' || r == ',' || r == '\t'
		})...)
	}
	if len(names) == 0 {
		return
	}
	// Resolve names among the receiver, parameters, and named results.
	byName := make(map[string]types.Object)
	addFields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, id := range field.Names {
				if obj := info.Defs[id]; obj != nil {
					byName[id.Name] = obj
				}
			}
		}
	}
	addFields(fn.Recv)
	addFields(fn.Type.Params)
	addFields(fn.Type.Results)
	for _, name := range names {
		if name == "return" {
			if obj := info.Defs[fn.Name]; obj != nil {
				idx.results[obj] = true
			}
			continue
		}
		if obj, ok := byName[name]; ok {
			idx.objs[obj] = true
		}
		// Unknown names are ignored: annotations must not break the build,
		// and the golden fixtures pin the resolved behavior.
	}
}

// funcTaint is the fixpoint result for one function body.
type funcTaint struct {
	// tainted holds locals that carry secret-derived data.
	tainted map[types.Object]bool
	// alias holds locals that directly alias secret backing storage
	// (assigned from an annotated object or a reslice of one, with no
	// copying step in between) — the taintescape notion.
	alias map[types.Object]bool
}

// taintCtx bundles what an analyzer needs to query taint inside one
// function: the module index, the package's type info, and the function's
// fixpoint state.
type taintCtx struct {
	idx  *SecretIndex
	info *types.Info
	ft   *funcTaint
}

// analyze returns the taint context for fn, computing and caching the
// intra-procedural fixpoint on first use.
func (idx *SecretIndex) analyze(pass *Pass, fn *ast.FuncDecl) *taintCtx {
	ft, ok := idx.taints[fn]
	if !ok {
		ft = &funcTaint{
			tainted: make(map[types.Object]bool),
			alias:   make(map[types.Object]bool),
		}
		idx.taints[fn] = ft
		if fn.Body != nil {
			ctx := &taintCtx{idx: idx, info: pass.Pkg.Info, ft: ft}
			ctx.fixpoint(fn.Body)
		}
	}
	return &taintCtx{idx: idx, info: pass.Pkg.Info, ft: ft}
}

// fixpoint iterates the transfer functions until the tainted/alias sets
// stop growing. The sets only grow, so termination is bounded by the
// number of objects; the iteration cap is a safety net, not a limit hit in
// practice.
func (c *taintCtx) fixpoint(body *ast.BlockStmt) {
	for i := 0; i < 1000; i++ {
		before := len(c.ft.tainted) + len(c.ft.alias)
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				c.transferAssign(n)
			case *ast.ValueSpec:
				c.transferValueSpec(n)
			case *ast.RangeStmt:
				c.transferRange(n)
			case *ast.CallExpr:
				c.transferCopy(n)
			}
			return true
		})
		if len(c.ft.tainted)+len(c.ft.alias) == before {
			return
		}
	}
}

func (c *taintCtx) taintObj(obj types.Object) {
	if obj != nil {
		c.ft.tainted[obj] = true
	}
}

// lhsObj resolves an assignment target to the object whose contents the
// write lands in: a plain identifier, possibly through index, slice,
// dereference, or parens. Selector chains stop resolution: a write into
// one field must not taint the whole struct variable (f.key[i] = b taints
// neither f nor f.c).
func (c *taintCtx) lhsObj(e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := c.info.Uses[e]; obj != nil {
			return obj
		}
		return c.info.Defs[e]
	case *ast.IndexExpr:
		return c.lhsObj(e.X)
	case *ast.SliceExpr:
		return c.lhsObj(e.X)
	case *ast.StarExpr:
		return c.lhsObj(e.X)
	}
	return nil
}

func (c *taintCtx) transferAssign(n *ast.AssignStmt) {
	// Tuple forms: x, ok := m[k] / v, ok := y.(T) / multi-return call.
	if len(n.Rhs) == 1 && len(n.Lhs) > 1 {
		rhs := ast.Unparen(n.Rhs[0])
		switch rhs.(type) {
		case *ast.IndexExpr, *ast.TypeAssertExpr:
			// The comma-ok bool reveals presence, not contents: taint the
			// value, leave ok public (branching on map presence is how the
			// on-chip residency checks work and is address-, not
			// secret-, dependent).
			if c.Tainted(rhs) {
				c.taintObj(c.lhsObj(n.Lhs[0]))
			}
		case *ast.CallExpr:
			if c.Tainted(rhs) {
				for _, lhs := range n.Lhs {
					c.taintObj(c.lhsObj(lhs))
				}
			}
		}
		return
	}
	for i, rhs := range n.Rhs {
		if i >= len(n.Lhs) {
			break
		}
		lhs := n.Lhs[i]
		if c.Tainted(rhs) {
			c.taintObj(c.lhsObj(lhs))
		} else if n.Tok != token.ASSIGN && n.Tok != token.DEFINE {
			// x op= rhs keeps x's own taint; nothing to add.
			continue
		}
		if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && c.AliasesSecret(rhs) {
			if obj := c.lhsObj(id); obj != nil {
				c.ft.alias[obj] = true
			}
		}
	}
}

func (c *taintCtx) transferValueSpec(n *ast.ValueSpec) {
	for i, v := range n.Values {
		if i >= len(n.Names) {
			break
		}
		if c.Tainted(v) {
			c.taintObj(c.info.Defs[n.Names[i]])
		}
		if c.AliasesSecret(v) {
			if obj := c.info.Defs[n.Names[i]]; obj != nil {
				c.ft.alias[obj] = true
			}
		}
	}
}

func (c *taintCtx) transferRange(n *ast.RangeStmt) {
	if !c.Tainted(n.X) {
		return
	}
	if n.Value != nil {
		c.taintObj(c.lhsObj(n.Value))
	}
	// Keys of slices/arrays are indices (public); map keys share the
	// container's secrecy.
	if n.Key != nil {
		if tv, ok := c.info.Types[n.X]; ok && tv.Type != nil {
			if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
				c.taintObj(c.lhsObj(n.Key))
			}
		}
	}
}

// transferCopy models the copy builtin: copying from a secret source makes
// the destination's contents secret.
func (c *taintCtx) transferCopy(call *ast.CallExpr) {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || len(call.Args) != 2 {
		return
	}
	if b, ok := c.info.Uses[id].(*types.Builtin); !ok || b.Name() != "copy" {
		return
	}
	if c.Tainted(call.Args[1]) {
		c.taintObj(c.lhsObj(call.Args[0]))
	}
}

// Tainted reports whether evaluating e can yield secret-derived data.
func (c *taintCtx) Tainted(e ast.Expr) bool {
	switch e := e.(type) {
	case nil:
		return false
	case *ast.Ident:
		obj := c.info.Uses[e]
		if obj == nil {
			obj = c.info.Defs[e]
		}
		return obj != nil && (c.idx.objs[obj] || c.ft.tainted[obj])
	case *ast.SelectorExpr:
		if sel, ok := c.info.Selections[e]; ok {
			if c.idx.objs[sel.Obj()] {
				return true
			}
			return c.Tainted(e.X) // any field of a secret value is secret
		}
		// Qualified identifier pkg.Name.
		obj := c.info.Uses[e.Sel]
		return obj != nil && c.idx.objs[obj]
	case *ast.IndexExpr:
		// Element of a secret container, or a lookup keyed by a secret
		// index (sbox[k]): both yield secret-correlated data.
		return c.Tainted(e.X) || c.Tainted(e.Index)
	case *ast.SliceExpr:
		return c.Tainted(e.X)
	case *ast.ParenExpr:
		return c.Tainted(e.X)
	case *ast.StarExpr:
		return c.Tainted(e.X)
	case *ast.UnaryExpr:
		return c.Tainted(e.X)
	case *ast.BinaryExpr:
		// Arithmetic, XOR, shifts, and even comparisons propagate: a bool
		// computed from a secret is a secret-dependent decision.
		return c.Tainted(e.X) || c.Tainted(e.Y)
	case *ast.CompositeLit:
		for _, elt := range e.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				elt = kv.Value
			}
			if c.Tainted(elt) {
				return true
			}
		}
		return false
	case *ast.TypeAssertExpr:
		return c.Tainted(e.X)
	case *ast.CallExpr:
		return c.taintedCall(e)
	}
	return false
}

func (c *taintCtx) taintedCall(call *ast.CallExpr) bool {
	// Conversions pass taint through: uint32(k), []byte(s), string(b).
	if tv, ok := c.info.Types[call.Fun]; ok && tv.IsType() {
		return len(call.Args) == 1 && c.Tainted(call.Args[0])
	}
	obj := calleeObject(c.info, call)
	if b, ok := obj.(*types.Builtin); ok {
		switch b.Name() {
		case "append":
			for _, a := range call.Args {
				if c.Tainted(a) {
					return true
				}
			}
			return false
		default:
			// len, cap, make, new, and copy (returns a count) yield
			// lengths or fresh allocations: public by construction.
			return false
		}
	}
	if fn, ok := obj.(*types.Func); ok {
		if pkg := fn.Pkg(); pkg != nil && declassifiedPkgs[pkg.Path()] {
			return false
		}
		return c.idx.results[fn]
	}
	return false
}

// calleeObject resolves a call's target to its types.Object (function,
// method, builtin), or nil for indirect calls through function values.
func calleeObject(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			return sel.Obj()
		}
		return info.Uses[fun.Sel]
	}
	return nil
}

// AliasesSecret reports whether e directly aliases secret backing storage:
// an annotated object or field, a reslice of one, or a local previously
// assigned such an alias. Calls (including append and copy idioms) break
// aliasing — their results are caller-owned memory.
func (c *taintCtx) AliasesSecret(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		obj := c.info.Uses[e]
		if obj == nil {
			obj = c.info.Defs[e]
		}
		return obj != nil && (c.idx.objs[obj] || c.ft.alias[obj])
	case *ast.SelectorExpr:
		if sel, ok := c.info.Selections[e]; ok {
			if c.idx.objs[sel.Obj()] {
				return true
			}
			return c.AliasesSecret(e.X)
		}
		obj := c.info.Uses[e.Sel]
		return obj != nil && c.idx.objs[obj]
	case *ast.SliceExpr:
		return c.AliasesSecret(e.X)
	case *ast.ParenExpr:
		return c.AliasesSecret(e.X)
	case *ast.StarExpr:
		return c.AliasesSecret(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return c.AliasesSecret(e.X)
		}
	}
	return false
}

// isSliceExpr reports whether e's type is a slice (the shape that can
// escape as an alias; arrays are copied by value at return).
func isSliceExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, ok = tv.Type.Underlying().(*types.Slice)
	return ok
}
