package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// This file is the taint/dataflow engine underneath the secretflow,
// cttiming, and taintescape analyzers. Secrecy is a property the Go type
// system cannot express: a []byte holding an AES key schedule and a []byte
// holding a public trace label have the same type. The engine adds that
// missing bit as a lattice of label sets (summary.go) seeded by explicit
// "//secmemlint:secret" annotations and propagated through assignments,
// composite literals, indexing/slicing, arithmetic and XOR, and calls.
//
// Annotation grammar (the sources of taint):
//
//	//secmemlint:secret [prose...]
//	    on a struct field (doc or trailing comment), a var declaration, or
//	    the line directly above either: the declared names are secret.
//	    Trailing prose documents what the secret is.
//
//	//secmemlint:secret name[ name...]
//	    in a function's doc comment: each name is a parameter or receiver
//	    name to treat as secret inside the body; the keyword "return" marks
//	    the function's results as secret at every call site.
//
// Deliberate exceptions (the allowlisted set) use the ordinary
// "//secmemlint:ignore <analyzer> <reason>" mechanism at the finding site,
// so every place the discipline is waived carries its justification.
//
// Cross-function flow is inferred: calls to functions declared anywhere in
// the module are resolved through the interprocedural summaries of
// summary.go, which propagate param/receiver -> result/receiver/out-param
// flows automatically. The named-annotation form above remains only for
// roots the analysis cannot see (and for fixtures); helpers no longer need
// it. Known holes, accepted for predictability: effects applied at call
// sites taint only targets resolving to a plain identifier (a write into
// x.y.z's storage does not taint x), and writes into a struct field taint
// the field object, not the enclosing struct variable.
const secretPrefix = "secmemlint:secret"

// declassifiedPkgs are import paths whose function results are public even
// when fed secrets: crypto/subtle reduces secrets to publishable decisions
// in constant time, which is exactly the sanctioned exit from the lattice.
var declassifiedPkgs = map[string]bool{
	"crypto/subtle": true,
}

// SecretIndex is the module-wide annotation table built once per Run over
// every loaded package, so a secret declared in gf128 stays secret when
// gcmmode touches it through a selector.
type SecretIndex struct {
	// objs holds annotated objects: struct fields, parameters, receivers,
	// and variables — plus package-level vars promoted by the
	// interprocedural engine because secret data flows into them.
	objs map[types.Object]bool
	// results holds functions whose results are annotated secret.
	results map[types.Object]bool
	// taints caches per-function dataflow results across the analyzers of
	// one Run.
	taints map[*ast.FuncDecl]*funcTaint
	// interp is the interprocedural summary table (summary.go), attached
	// by Run before any analyzer executes.
	interp *interproc
}

// collectSecrets builds the annotation index over all loaded packages.
func collectSecrets(pkgs []*Package) *SecretIndex {
	idx := &SecretIndex{
		objs:    make(map[types.Object]bool),
		results: make(map[types.Object]bool),
		taints:  make(map[*ast.FuncDecl]*funcTaint),
	}
	for _, pkg := range pkgs {
		idx.collectPackage(pkg)
	}
	return idx
}

// secretComment extracts the argument text of a secret annotation comment,
// reporting ok=false for non-annotation comments.
func secretComment(c *ast.Comment) (args string, ok bool) {
	text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
	if !strings.HasPrefix(text, secretPrefix) {
		return "", false
	}
	return strings.TrimSpace(strings.TrimPrefix(text, secretPrefix)), true
}

func groupHasSecret(g *ast.CommentGroup) bool {
	if g == nil {
		return false
	}
	for _, c := range g.List {
		if _, ok := secretComment(c); ok {
			return true
		}
	}
	return false
}

func (idx *SecretIndex) collectPackage(pkg *Package) {
	info := pkg.Info
	for _, f := range pkg.Files {
		// Attachment pass: struct fields, var specs, and function docs.
		// Comments consumed here are excluded from the line-based pass so a
		// function-level annotation cannot double as a line annotation for
		// whatever sits beneath it.
		consumed := make(map[*ast.Comment]bool)
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.StructType:
				for _, field := range n.Fields.List {
					idx.collectField(info, field, consumed)
				}
			case *ast.ValueSpec:
				if groupHasSecret(n.Doc) || groupHasSecret(n.Comment) {
					for _, name := range n.Names {
						if obj := info.Defs[name]; obj != nil {
							idx.objs[obj] = true
						}
					}
					markConsumed(n.Doc, consumed)
					markConsumed(n.Comment, consumed)
				}
			case *ast.GenDecl:
				if n.Tok == token.VAR && groupHasSecret(n.Doc) {
					for _, spec := range n.Specs {
						vs, ok := spec.(*ast.ValueSpec)
						if !ok {
							continue
						}
						for _, name := range vs.Names {
							if obj := info.Defs[name]; obj != nil {
								idx.objs[obj] = true
							}
						}
					}
					markConsumed(n.Doc, consumed)
				}
			case *ast.FuncDecl:
				idx.collectFuncDoc(info, n, consumed)
			}
			return true
		})

		// Line pass: a bare annotation on a var's line or the line directly
		// above taints the names defined there (covers short declarations
		// and unparenthesized vars, whose trailing comments float free in
		// the AST).
		lines := make(map[int]bool)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if consumed[c] {
					continue
				}
				if _, ok := secretComment(c); ok {
					lines[pkg.Fset.Position(c.Pos()).Line] = true
				}
			}
		}
		if len(lines) == 0 {
			continue
		}
		for ident, obj := range info.Defs {
			v, ok := obj.(*types.Var)
			if !ok {
				continue
			}
			pos := pkg.Fset.Position(ident.Pos())
			if pos.Filename != pkg.Fset.Position(f.Pos()).Filename {
				continue
			}
			if lines[pos.Line] || lines[pos.Line-1] {
				idx.objs[v] = true
			}
		}
	}
}

func markConsumed(g *ast.CommentGroup, consumed map[*ast.Comment]bool) {
	if g == nil {
		return
	}
	for _, c := range g.List {
		consumed[c] = true
	}
}

func (idx *SecretIndex) collectField(info *types.Info, field *ast.Field, consumed map[*ast.Comment]bool) {
	if !groupHasSecret(field.Doc) && !groupHasSecret(field.Comment) {
		return
	}
	for _, name := range field.Names {
		if obj := info.Defs[name]; obj != nil {
			idx.objs[obj] = true
		}
	}
	markConsumed(field.Doc, consumed)
	markConsumed(field.Comment, consumed)
}

// collectFuncDoc handles the named form in function doc comments:
// "//secmemlint:secret key h return" marks params/receiver key and h secret
// and the results secret.
func (idx *SecretIndex) collectFuncDoc(info *types.Info, fn *ast.FuncDecl, consumed map[*ast.Comment]bool) {
	if fn.Doc == nil {
		return
	}
	var names []string
	for _, c := range fn.Doc.List {
		args, ok := secretComment(c)
		if !ok {
			continue
		}
		consumed[c] = true
		names = append(names, strings.FieldsFunc(args, func(r rune) bool {
			return r == ' ' || r == ',' || r == '\t'
		})...)
	}
	if len(names) == 0 {
		return
	}
	// Resolve names among the receiver, parameters, and named results.
	byName := make(map[string]types.Object)
	addFields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, id := range field.Names {
				if obj := info.Defs[id]; obj != nil {
					byName[id.Name] = obj
				}
			}
		}
	}
	addFields(fn.Recv)
	addFields(fn.Type.Params)
	addFields(fn.Type.Results)
	for _, name := range names {
		if name == "return" {
			if obj := info.Defs[fn.Name]; obj != nil {
				idx.results[obj] = true
			}
			continue
		}
		if obj, ok := byName[name]; ok {
			idx.objs[obj] = true
		}
		// Unknown names are ignored: annotations must not break the build,
		// and the golden fixtures pin the resolved behavior.
	}
}

// funcTaint is the fixpoint result for one function body: the label sets
// carried by each object. In the analyzers' runtime mode only secretLabel
// is ever seeded; summary computation additionally seeds receiver and
// parameter bits (summary.go).
type funcTaint struct {
	// labels holds value taint: which inputs an object's contents derive
	// from. Struct-field objects appear here when a field is written with
	// labeled data (per-field, not per-instance, which is the conservative
	// direction).
	labels map[types.Object]labelSet
	// alias holds storage aliasing: which inputs' backing storage an
	// object may share (the taintescape notion).
	alias map[types.Object]labelSet
}

// taintCtx bundles what an analyzer needs to query taint inside one
// function: the module index, the package's type info, and the function's
// fixpoint state. sum and slots are non-nil only while summary.go computes
// the enclosing function's interprocedural summary.
type taintCtx struct {
	idx  *SecretIndex
	pkg  *Package
	info *types.Info
	ft   *funcTaint
	// sum accumulates out-effects and sink facts during summary mode.
	sum *summary
	// slots maps receiver/parameter objects to their slot (recvSlot for
	// the receiver) during summary mode.
	slots map[types.Object]int
	// changed tracks label growth within one fixpoint sweep.
	changed bool
}

// analyze returns the taint context for fn, computing and caching the
// runtime-mode fixpoint on first use.
func (idx *SecretIndex) analyze(pass *Pass, fn *ast.FuncDecl) *taintCtx {
	ft, ok := idx.taints[fn]
	if !ok {
		ft = &funcTaint{
			labels: make(map[types.Object]labelSet),
			alias:  make(map[types.Object]labelSet),
		}
		idx.taints[fn] = ft
		if fn.Body != nil {
			ctx := &taintCtx{idx: idx, pkg: pass.Pkg, info: pass.Pkg.Info, ft: ft}
			ctx.fixpoint(fn.Body)
		}
	}
	return &taintCtx{idx: idx, pkg: pass.Pkg, info: pass.Pkg.Info, ft: ft}
}

// fixpoint iterates the transfer functions until the label sets stop
// growing. Labels only accumulate, so termination is bounded by objects
// times label bits; the iteration cap is a safety net, not a limit hit in
// practice.
func (c *taintCtx) fixpoint(body *ast.BlockStmt) {
	for i := 0; i < 1000; i++ {
		c.changed = false
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				c.transferAssign(n)
			case *ast.ValueSpec:
				c.transferValueSpec(n)
			case *ast.RangeStmt:
				c.transferRange(n)
			case *ast.CallExpr:
				c.transferCopy(n)
				c.transferCallEffects(n)
			}
			return true
		})
		if !c.changed {
			return
		}
	}
}

// addLabels merges bits into obj's value labels.
func (c *taintCtx) addLabels(obj types.Object, bits labelSet) {
	if obj == nil || bits == 0 {
		return
	}
	if c.ft.labels[obj]&bits != bits {
		c.ft.labels[obj] |= bits
		c.changed = true
	}
}

func (c *taintCtx) addAlias(obj types.Object, bits labelSet) {
	if obj == nil || bits == 0 {
		return
	}
	if c.ft.alias[obj]&bits != bits {
		c.ft.alias[obj] |= bits
		c.changed = true
	}
}

// lhsObj resolves an assignment target to the object whose contents the
// write lands in: a plain identifier, possibly through index, slice,
// dereference, address-of, or parens. Selector chains stop resolution: a
// write into one field must not taint the whole struct variable
// (f.key[i] = b taints neither f nor f.c); the field object itself is
// handled by fieldOf.
func (c *taintCtx) lhsObj(e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := c.info.Uses[e]; obj != nil {
			return obj
		}
		return c.info.Defs[e]
	case *ast.IndexExpr:
		return c.lhsObj(e.X)
	case *ast.SliceExpr:
		return c.lhsObj(e.X)
	case *ast.StarExpr:
		return c.lhsObj(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return c.lhsObj(e.X)
		}
	}
	return nil
}

// fieldOf resolves a write target that lands in a struct field to the
// field object (x.y[i] = v labels field y), or nil.
func (c *taintCtx) fieldOf(e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if sel, ok := c.info.Selections[e]; ok {
			if v, ok := sel.Obj().(*types.Var); ok && v.IsField() {
				return v
			}
		}
	case *ast.IndexExpr:
		return c.fieldOf(e.X)
	case *ast.SliceExpr:
		return c.fieldOf(e.X)
	case *ast.StarExpr:
		return c.fieldOf(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return c.fieldOf(e.X)
		}
	}
	return nil
}

// storageRoot resolves the outermost object a write reaches through any
// chain of selectors, indexes, and dereferences. Used only for recording
// summary out-effects (a write into d.buf is an effect on receiver d).
func (c *taintCtx) storageRoot(e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := c.info.Uses[e]; obj != nil {
			return obj
		}
		return c.info.Defs[e]
	case *ast.IndexExpr:
		return c.storageRoot(e.X)
	case *ast.SliceExpr:
		return c.storageRoot(e.X)
	case *ast.StarExpr:
		return c.storageRoot(e.X)
	case *ast.SelectorExpr:
		return c.storageRoot(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return c.storageRoot(e.X)
		}
	}
	return nil
}

// assign applies a labeled write to target: the plain-identifier root if
// one exists, else the struct field being written; and, in summary mode,
// records the out-effect on receiver/param/field/global storage.
func (c *taintCtx) assign(target ast.Expr, bits labelSet) {
	if bits == 0 {
		return
	}
	if obj := c.lhsObj(target); obj != nil {
		c.addLabels(obj, bits)
		c.recordEffect(target, bits)
	} else if fld := c.fieldOf(target); fld != nil {
		c.addLabels(fld, bits)
		c.recordFieldEffect(fld, c.storageRoot(target), bits)
	}
}

// recordEffect notes, during summary computation, that a write carrying
// bits lands in storage reachable from the receiver, a parameter, or a
// package-level variable.
func (c *taintCtx) recordEffect(target ast.Expr, bits labelSet) {
	if c.sum == nil || bits == 0 {
		return
	}
	root := c.storageRoot(target)
	if root == nil {
		return
	}
	if slot, ok := c.slots[root]; ok {
		// Drop the slot's own seed bit: x = x is not an effect.
		seed := recvLabel
		if slot != recvSlot {
			seed = paramLabel(slot)
		}
		bits &^= seed
		if bits == 0 {
			return
		}
		if slot == recvSlot {
			c.sum.recv |= bits
		} else if slot < len(c.sum.params) {
			c.sum.params[slot] |= bits
		}
		return
	}
	if v, ok := root.(*types.Var); ok && !v.IsField() && v.Parent() != nil &&
		v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
		c.sum.globals[v] |= bits
	}
}

// recordFieldEffect notes, during summary computation, a labeled write into
// a struct field of caller-visible storage (receiver, parameter, or
// package variable). The receiver bit is dropped: labelsOf already folds a
// tainted receiver variable into every field read, so keeping it would
// only let bookkeeping flows (d.n += len(p)) escalate into module-wide
// field promotion.
func (c *taintCtx) recordFieldEffect(fld types.Object, root types.Object, bits labelSet) {
	bits &^= recvLabel
	if c.sum == nil || bits == 0 || root == nil {
		return
	}
	if _, ok := c.slots[root]; !ok {
		v, isVar := root.(*types.Var)
		if !isVar || v.IsField() || v.Parent() == nil || v.Pkg() == nil ||
			v.Parent() != v.Pkg().Scope() {
			return // a local struct's field labels die with this function
		}
	}
	c.sum.fields[fld] |= bits
}

func (c *taintCtx) transferAssign(n *ast.AssignStmt) {
	// Tuple forms: x, ok := m[k] / v, ok := y.(T) / multi-return call.
	if len(n.Rhs) == 1 && len(n.Lhs) > 1 {
		rhs := ast.Unparen(n.Rhs[0])
		switch rhs := rhs.(type) {
		case *ast.IndexExpr, *ast.TypeAssertExpr:
			// The comma-ok bool reveals presence, not contents: taint the
			// value, leave ok public (branching on map presence is how the
			// on-chip residency checks work and is address-, not
			// secret-, dependent).
			c.assign(n.Lhs[0], c.labelsOf(rhs))
		case *ast.CallExpr:
			// Per-result precision when the callee has a summary, so a
			// public second result (count, ok) does not inherit the first
			// result's secrecy.
			if per := c.callResultLabels(rhs); per != nil && len(per) == len(n.Lhs) {
				for i, lhs := range n.Lhs {
					c.assign(lhs, per[i])
				}
				return
			}
			bits := c.labelsOf(rhs)
			for _, lhs := range n.Lhs {
				c.assign(lhs, bits)
			}
		}
		return
	}
	for i, rhs := range n.Rhs {
		if i >= len(n.Lhs) {
			break
		}
		lhs := n.Lhs[i]
		c.assign(lhs, c.labelsOf(rhs))
		if n.Tok != token.ASSIGN && n.Tok != token.DEFINE {
			// x op= rhs keeps x's own labels; no alias rebinding.
			continue
		}
		if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
			if bits := c.aliasLabelsOf(rhs); bits != 0 {
				c.addAlias(c.lhsObj(id), bits)
			}
		}
	}
}

func (c *taintCtx) transferValueSpec(n *ast.ValueSpec) {
	for i, v := range n.Values {
		if i >= len(n.Names) {
			break
		}
		obj := c.info.Defs[n.Names[i]]
		c.addLabels(obj, c.labelsOf(v))
		c.addAlias(obj, c.aliasLabelsOf(v))
	}
}

func (c *taintCtx) transferRange(n *ast.RangeStmt) {
	bits := c.labelsOf(n.X)
	if bits == 0 {
		return
	}
	if n.Value != nil {
		c.assign(n.Value, bits)
	}
	// Keys of slices/arrays are indices (public); map keys share the
	// container's secrecy.
	if n.Key != nil {
		if tv, ok := c.info.Types[n.X]; ok && tv.Type != nil {
			if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
				c.assign(n.Key, bits)
			}
		}
	}
}

// transferCopy models the copy builtin: copying from a labeled source
// labels the destination's contents.
func (c *taintCtx) transferCopy(call *ast.CallExpr) {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || len(call.Args) != 2 {
		return
	}
	if b, ok := c.info.Uses[id].(*types.Builtin); !ok || b.Name() != "copy" {
		return
	}
	c.assign(call.Args[0], c.labelsOf(call.Args[1]))
}

// transferCallEffects applies a callee's out-effects at the call site: the
// summary's receiver/param/global flows for module functions, or the
// conservative unknown-callee model (all inputs flow into every
// mutable-reference argument and the receiver) for everything else except
// declassified packages and builtins.
func (c *taintCtx) transferCallEffects(call *ast.CallExpr) {
	if tv, ok := c.info.Types[call.Fun]; ok && tv.IsType() {
		return // conversion
	}
	obj := calleeObject(c.info, call)
	if _, isBuiltin := obj.(*types.Builtin); isBuiltin {
		return // copy handled by transferCopy; the rest have no effects
	}
	fn, _ := obj.(*types.Func)
	if fn != nil {
		if pkg := fn.Pkg(); pkg != nil && declassifiedPkgs[pkg.Path()] {
			return
		}
		if sum, sig := c.summaryFor(fn); sum != nil {
			c.applySummaryEffects(call, sum, sig)
			return
		}
	}
	// Unknown callee (stdlib, interface method, function value): assume
	// every input can flow into every mutable-reference argument and the
	// receiver. binary.BigEndian.PutUint64(dst, secret) must taint dst.
	bits := c.callInputLabels(call)
	if bits == 0 {
		return
	}
	for _, arg := range call.Args {
		if c.mutableRef(arg) {
			c.assign(arg, bits)
		}
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if _, isSel := c.info.Selections[sel]; isSel {
			c.assign(sel.X, bits)
		}
	}
}

func (c *taintCtx) applySummaryEffects(call *ast.CallExpr, sum *summary, sig *types.Signature) {
	if sum.recv != 0 {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			c.assign(sel.X, c.instantiate(sum.recv, call, sig))
		}
	}
	nparams := sig.Params().Len()
	for i, eff := range sum.params {
		if eff == 0 {
			continue
		}
		bits := c.instantiate(eff, call, sig)
		if bits == 0 {
			continue
		}
		if sig.Variadic() && i == nparams-1 {
			for j := i; j < len(call.Args); j++ {
				c.assign(call.Args[j], bits)
			}
		} else if i < len(call.Args) {
			c.assign(call.Args[i], bits)
		}
	}
	for g, eff := range sum.globals {
		bits := c.instantiate(eff, call, sig)
		if bits == 0 {
			continue
		}
		if c.sum != nil {
			c.sum.globals[g] |= bits
		}
		c.addLabels(g, bits)
	}
	for fld, eff := range sum.fields {
		bits := c.instantiate(eff, call, sig) &^ recvLabel
		if bits == 0 {
			continue
		}
		if c.sum != nil {
			c.sum.fields[fld] |= bits
		}
		c.addLabels(fld, bits)
	}
}

// mutableRef reports whether an argument's type lets the callee write
// through it into caller-visible storage.
func (c *taintCtx) mutableRef(e ast.Expr) bool {
	tv, ok := c.info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	switch tv.Type.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Interface:
		return true
	}
	return false
}

// callInputLabels unions the labels of every argument and the receiver.
func (c *taintCtx) callInputLabels(call *ast.CallExpr) labelSet {
	var bits labelSet
	for _, arg := range call.Args {
		bits |= c.labelsOf(arg)
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if _, isSel := c.info.Selections[sel]; isSel {
			bits |= c.labelsOf(sel.X)
		}
	}
	return bits
}

// summaryFor returns fn's interprocedural summary, if one was computed.
func (c *taintCtx) summaryFor(fn *types.Func) (*summary, *types.Signature) {
	if c.idx.interp == nil {
		return nil, nil
	}
	sum, ok := c.idx.interp.summaries[fn]
	if !ok {
		return nil, nil
	}
	// During summary computation the enclosing function's own (possibly
	// in-progress) summary is read from the table like any other SCC
	// member; the SCC fixpoint iterates to convergence.
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil {
		return nil, nil
	}
	return sum, sig
}

// calleeSummary resolves a call to a module function's summary.
func (c *taintCtx) calleeSummary(call *ast.CallExpr) (*summary, *types.Signature) {
	fn, ok := calleeObject(c.info, call).(*types.Func)
	if !ok {
		return nil, nil
	}
	return c.summaryFor(fn)
}

// instantiate maps a summary label set to call-site labels: the secret bit
// passes through, the receiver bit becomes the receiver expression's
// labels, each parameter bit becomes its argument's labels, and the
// overflow bit becomes the union of everything.
func (c *taintCtx) instantiate(ls labelSet, call *ast.CallExpr, sig *types.Signature) labelSet {
	return c.instantiateWith(ls, call, sig, c.labelsOf)
}

func (c *taintCtx) instantiateWith(ls labelSet, call *ast.CallExpr, sig *types.Signature, labelFn func(ast.Expr) labelSet) labelSet {
	out := ls & secretLabel
	if ls == out {
		return out
	}
	if ls&recvLabel != 0 {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if _, isSel := c.info.Selections[sel]; isSel {
				out |= labelFn(sel.X)
			}
		}
	}
	if ls&overflowLabel != 0 {
		for _, arg := range call.Args {
			out |= labelFn(arg)
		}
	}
	nparams := sig.Params().Len()
	for i := 0; i < nparams && i < maxParamLabels; i++ {
		if ls&paramLabel(i) == 0 {
			continue
		}
		if sig.Variadic() && i == nparams-1 {
			for j := i; j < len(call.Args); j++ {
				out |= labelFn(call.Args[j])
			}
		} else if i < len(call.Args) {
			out |= labelFn(call.Args[i])
		}
	}
	return out
}

// Tainted reports whether evaluating e can yield secret-derived data — the
// analyzers' runtime query.
func (c *taintCtx) Tainted(e ast.Expr) bool {
	return c.labelsOf(e)&secretLabel != 0
}

// labelsOf computes the label set of an expression's value.
func (c *taintCtx) labelsOf(e ast.Expr) labelSet {
	switch e := e.(type) {
	case nil:
		return 0
	case *ast.Ident:
		obj := c.info.Uses[e]
		if obj == nil {
			obj = c.info.Defs[e]
		}
		if obj == nil {
			return 0
		}
		bits := c.ft.labels[obj]
		if c.idx.objs[obj] {
			bits |= secretLabel
		}
		return bits
	case *ast.SelectorExpr:
		if sel, ok := c.info.Selections[e]; ok {
			bits := c.labelsOf(e.X) // any field of a labeled value is labeled
			if c.idx.objs[sel.Obj()] {
				bits |= secretLabel
			}
			bits |= c.ft.labels[sel.Obj()]
			return bits
		}
		// Qualified identifier pkg.Name.
		obj := c.info.Uses[e.Sel]
		if obj == nil {
			return 0
		}
		bits := c.ft.labels[obj]
		if c.idx.objs[obj] {
			bits |= secretLabel
		}
		return bits
	case *ast.IndexExpr:
		// Element of a labeled container, or a lookup keyed by a labeled
		// index (sbox[k]): both yield correlated data.
		return c.labelsOf(e.X) | c.labelsOf(e.Index)
	case *ast.SliceExpr:
		return c.labelsOf(e.X)
	case *ast.ParenExpr:
		return c.labelsOf(e.X)
	case *ast.StarExpr:
		return c.labelsOf(e.X)
	case *ast.UnaryExpr:
		return c.labelsOf(e.X)
	case *ast.BinaryExpr:
		// Arithmetic, XOR, shifts, and even comparisons propagate: a bool
		// computed from a secret is a secret-dependent decision.
		return c.labelsOf(e.X) | c.labelsOf(e.Y)
	case *ast.CompositeLit:
		var bits labelSet
		for _, elt := range e.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				elt = kv.Value
			}
			bits |= c.labelsOf(elt)
		}
		return bits
	case *ast.TypeAssertExpr:
		return c.labelsOf(e.X)
	case *ast.CallExpr:
		return c.callLabels(e)
	}
	return 0
}

// callResultLabels returns per-result label sets for a call with a module
// summary, or nil when no per-result information exists.
func (c *taintCtx) callResultLabels(call *ast.CallExpr) []labelSet {
	if tv, ok := c.info.Types[call.Fun]; ok && tv.IsType() {
		return nil
	}
	fn, ok := calleeObject(c.info, call).(*types.Func)
	if !ok {
		return nil
	}
	sum, sig := c.summaryFor(fn)
	if sum == nil {
		return nil
	}
	extra := labelSet(0)
	if c.idx.results[fn] {
		extra = secretLabel
	}
	out := make([]labelSet, len(sum.results))
	for i, r := range sum.results {
		out[i] = c.instantiate(r, call, sig) | extra
	}
	return out
}

func (c *taintCtx) callLabels(call *ast.CallExpr) labelSet {
	// Conversions pass labels through: uint32(k), []byte(s), string(b).
	if tv, ok := c.info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			return c.labelsOf(call.Args[0])
		}
		return 0
	}
	obj := calleeObject(c.info, call)
	if b, ok := obj.(*types.Builtin); ok {
		switch b.Name() {
		case "append":
			var bits labelSet
			for _, a := range call.Args {
				bits |= c.labelsOf(a)
			}
			return bits
		default:
			// len, cap, make, new, and copy (returns a count) yield
			// lengths or fresh allocations: public by construction.
			return 0
		}
	}
	if fn, ok := obj.(*types.Func); ok {
		if pkg := fn.Pkg(); pkg != nil && declassifiedPkgs[pkg.Path()] {
			return 0
		}
		var bits labelSet
		if c.idx.results[fn] {
			bits |= secretLabel
		}
		if sum, sig := c.summaryFor(fn); sum != nil {
			for _, r := range sum.results {
				bits |= c.instantiate(r, call, sig)
			}
			return bits
		}
		// External function without a summary: conservatively assume the
		// results derive from every input.
		return bits | c.callInputLabels(call)
	}
	// Indirect call through a function value: same conservative model.
	return c.callInputLabels(call)
}

// calleeObject resolves a call's target to its types.Object (function,
// method, builtin), or nil for indirect calls through function values.
func calleeObject(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			return sel.Obj()
		}
		return info.Uses[fun.Sel]
	}
	return nil
}

// AliasesSecret reports whether e directly aliases secret backing storage:
// an annotated object or field, a reslice of one, a local previously
// assigned such an alias, or a call whose summary says the result aliases
// secret-bearing argument storage. append and copy idioms break aliasing —
// their results are caller-owned memory.
func (c *taintCtx) AliasesSecret(e ast.Expr) bool {
	return c.aliasLabelsOf(e)&secretLabel != 0
}

// aliasLabelsOf computes which inputs' backing storage e may alias.
func (c *taintCtx) aliasLabelsOf(e ast.Expr) labelSet {
	switch e := e.(type) {
	case *ast.Ident:
		obj := c.info.Uses[e]
		if obj == nil {
			obj = c.info.Defs[e]
		}
		if obj == nil {
			return 0
		}
		bits := c.ft.alias[obj]
		if c.idx.objs[obj] {
			bits |= secretLabel
		}
		return bits
	case *ast.SelectorExpr:
		if sel, ok := c.info.Selections[e]; ok {
			bits := c.aliasLabelsOf(e.X)
			if c.idx.objs[sel.Obj()] {
				bits |= secretLabel
			}
			return bits
		}
		obj := c.info.Uses[e.Sel]
		if obj != nil && c.idx.objs[obj] {
			return secretLabel
		}
		return 0
	case *ast.SliceExpr:
		return c.aliasLabelsOf(e.X)
	case *ast.ParenExpr:
		return c.aliasLabelsOf(e.X)
	case *ast.StarExpr:
		return c.aliasLabelsOf(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return c.aliasLabelsOf(e.X)
		}
	case *ast.CallExpr:
		// A call aliases what its summary says the result aliases,
		// instantiated with the arguments' own alias labels; everything
		// else (builtins, externals) returns caller-owned memory.
		sum, sig := c.calleeSummary(e)
		if sum == nil {
			return 0
		}
		var bits labelSet
		for _, r := range sum.aliasResults {
			bits |= c.instantiateWith(r, e, sig, c.aliasLabelsOf)
		}
		return bits
	}
	return 0
}

// isSliceExpr reports whether e's type is a slice (the shape that can
// escape as an alias; arrays are copied by value at return).
func isSliceExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, ok = tv.Type.Underlying().(*types.Slice)
	return ok
}
