package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"testing"
)

// The fuzz targets below harden the annotation grammar — the one place
// the analyzers consume free-form user text. Each embeds the fuzz input
// into a source file, parses it, and runs the real collectors: the grammar
// must never panic, and malformed annotations must never register (a bare
// ignore silently eating findings, or a glued hotpath prefix silently
// widening the zero-alloc closure, would be a security-relevant bug).

func fuzzPackage(t *testing.T, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fuzz.go", src, parser.ParseComments)
	if err != nil {
		t.Skip("input does not parse")
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Error: func(error) {}} // best-effort, like the loader
	tpkg, _ := conf.Check("fuzz", fset, []*ast.File{f}, info)
	return &Package{Path: "fuzz", Fset: fset, Files: []*ast.File{f}, Types: tpkg, Info: info}
}

func FuzzCollectIgnores(f *testing.F) {
	f.Add("//secmemlint:ignore cttiming models combinational hardware\nvar x int")
	f.Add("var x int //secmemlint:ignore secretflow demo output is public")
	f.Add("//secmemlint:ignore maccompare")                // no reason: must not register
	f.Add("//secmemlint:ignore a,b reason words")          // multi-analyzer
	f.Add("// secmemlint:ignore\tcttiming\ttabbed reason") // whitespace forms
	f.Add("//secmemlint:ignorecttiming glued prefix")
	f.Fuzz(func(t *testing.T, body string) {
		pkg := fuzzPackage(t, "package p\n"+body+"\n")
		set := collectIgnores(pkg)
		for file, byLine := range set {
			if file == "" {
				t.Error("suppression registered with empty filename")
			}
			for line, names := range byLine {
				if line <= 0 {
					t.Errorf("suppression registered on impossible line %d", line)
				}
				if len(names) == 0 {
					t.Errorf("%s:%d: suppression registered with no analyzer names", file, line)
				}
			}
		}
		// Re-scan the source: every registered suppression must trace back
		// to a comment that carried both an analyzer list and a reason.
		for _, byLine := range set {
			total := 0
			for _, names := range byLine {
				total += len(names)
			}
			if total > 0 && !ignoreWithReasonExists(pkg) {
				t.Error("suppression registered but no well-formed ignore comment exists")
			}
		}
	})
}

// ignoreWithReasonExists reports whether any comment in pkg is a
// well-formed ignore (analyzer list plus at least one reason word).
func ignoreWithReasonExists(pkg *Package) bool {
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, ignorePrefix) {
					continue
				}
				if len(strings.Fields(strings.TrimPrefix(text, ignorePrefix))) >= 2 {
					return true
				}
			}
		}
	}
	return false
}

func FuzzSecretAnnotation(f *testing.F) {
	f.Add("type v struct {\n\t//secmemlint:secret — the key\n\tkey []byte\n}")
	f.Add("//secmemlint:secret key return\nfunc g(key []byte) []byte { return key }")
	f.Add("var k = 1 //secmemlint:secret")
	f.Add("//secmemlint:secret name1 name2 name3\nfunc h(name1, name2 int) int { return name1 }")
	f.Add("//secmemlint:secret\n//secmemlint:secret twice\nvar y int")
	f.Fuzz(func(t *testing.T, body string) {
		pkg := fuzzPackage(t, "package p\n"+body+"\n")
		idx := collectSecrets([]*Package{pkg})
		for obj := range idx.objs {
			if obj == nil {
				t.Error("nil object registered as secret")
			}
		}
		// The index must be usable downstream: summary computation over the
		// fuzzed package must also not panic.
		computeInterproc([]*Package{pkg}, idx, collectIgnores(pkg))
	})
}

func FuzzHotpathAnnotation(f *testing.F) {
	f.Add("//secmemlint:hotpath\nfunc hot() {}")
	f.Add("// MulTable multiplies.\n//secmemlint:hotpath per-block kernel\nfunc mul() {}")
	f.Add("//secmemlint:hotpathglued must not register\nfunc g() {}")
	f.Add("// secmemlint:hotpath spaced marker form\nfunc s() {}")
	f.Add("//secmemlint:hotpath\nfunc root() { helper() }\nfunc helper() { _ = make([]byte, 1) }")
	f.Add("func trailing() {} //secmemlint:hotpath not a doc comment")
	f.Fuzz(func(t *testing.T, body string) {
		pkg := fuzzPackage(t, "package p\n"+body+"\n")
		pkgs := []*Package{pkg}
		idx := collectSecrets(pkgs)
		ip := computeInterproc(pkgs, idx, collectIgnores(pkg))
		// A root must trace back to a doc comment whose marker is exactly
		// the prefix or the prefix followed by a space — a glued suffix like
		// "hotpathglued" widening the closure would silently hold the wrong
		// code to the zero-alloc standard (or miss the right code).
		for _, fn := range hotPathRoots(ip) {
			decl := ip.graph.decls[fn]
			if decl == nil || !hasHotPathDoc(decl.Doc) {
				t.Fatalf("root %s registered without a well-formed hotpath doc comment", fn.Name())
			}
			found := false
			for _, c := range decl.Doc.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if text == hotPathPrefix || strings.HasPrefix(text, hotPathPrefix+" ") {
					found = true
				}
			}
			if !found {
				t.Fatalf("root %s accepted from a malformed marker", fn.Name())
			}
		}
		// The full audit must be well-formed on arbitrary input: valid line
		// ranges, every closure member attributed to at least one root, and
		// the root lists sorted (the artifact contract ESCAPE.json relies on).
		for _, h := range HotPathAudit(pkgs) {
			if h.Func == "" || h.File == "" {
				t.Errorf("audit entry with empty identity: %+v", h)
			}
			if h.StartLine <= 0 || h.EndLine < h.StartLine {
				t.Errorf("%s: impossible line range %d-%d", h.Func, h.StartLine, h.EndLine)
			}
			if len(h.Roots) == 0 {
				t.Errorf("%s: in the hot closure but attributed to no root", h.Func)
			}
			if !sort.StringsAreSorted(h.Roots) {
				t.Errorf("%s: unsorted root list %v", h.Func, h.Roots)
			}
		}
	})
}
