package lint

import (
	"go/ast"
	"go/types"
)

// SecretFlow enforces the observability/secrecy boundary PR 2 made urgent:
// the obsv layer exports metric names, span labels, and trace arguments
// straight into JSON artifacts, and fmt/log/error formatting ends up in
// terminals and CI logs. None of those channels may ever see data derived
// from the AES key schedule, the GHASH subkey, a counter-mode pad, or
// on-chip plaintext — the paper's confidentiality argument (Section 3)
// assumes the only off-chip images of those values are the ciphertexts and
// clipped MACs. The analyzer walks the taint engine's per-function state
// and reports any secret-derived argument reaching a sink.
var SecretFlow = &Analyzer{
	Name: "secretflow",
	Doc:  "secret-derived values must not reach fmt/log/error formatting or obsv sinks",
	Run:  runSecretFlow,
}

// fmtSinkPkgs are stdlib packages whose calls publish their arguments.
var fmtSinkPkgs = map[string]bool{"fmt": true, "log": true, "errors": true}

// obsvSinks maps receiver type name -> method names that publish string
// arguments into metrics or traces. Matching is by type and method name
// (like the other analyzers' shape heuristics) so testdata fixtures can
// mimic the obsv API without importing it.
var obsvSinks = map[string]map[string]bool{
	"Registry": {"Counter": true, "Gauge": true, "Histogram": true, "SetGauge": true},
	"Recorder": {"Span": true, "SpanID": true, "Instant": true, "Begin": true, "End": true},
}

func runSecretFlow(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			ctx := pass.secrets.analyze(pass, fn)
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				checkSinkCall(pass, ctx, call)
				return true
			})
		}
	}
}

func checkSinkCall(pass *Pass, ctx *taintCtx, call *ast.CallExpr) {
	info := pass.Pkg.Info

	// panic(v) prints v's formatted value on the crash path.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "panic" {
			reportTaintedArgs(pass, ctx, call, "panic (panic values are printed with the crash)")
			return
		}
	}

	if fn, pkg := qualifiedCallee(info, call); fn != "" && fmtSinkPkgs[pkg] {
		reportTaintedArgs(pass, ctx, call, pkg+"."+fn)
		return
	}

	// obsv-shaped method sinks: metric registration names and trace labels.
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	selection, ok := info.Selections[sel]
	if !ok {
		return
	}
	recv := namedTypeName(selection.Recv())
	methods, ok := obsvSinks[recv]
	if !ok || !methods[sel.Sel.Name] {
		return
	}
	reportTaintedArgs(pass, ctx, call,
		recv+"."+sel.Sel.Name+" (metric names and trace labels are exported verbatim into observability artifacts)")
}

func reportTaintedArgs(pass *Pass, ctx *taintCtx, call *ast.CallExpr, sink string) {
	for _, arg := range call.Args {
		if ctx.Tainted(arg) {
			pass.Reportf(arg.Pos(),
				"secret-derived value reaches %s; key, pad, tag-state, and plaintext material must never leave through logs, errors, metrics, or traces",
				sink)
		}
	}
}

// namedTypeName returns the name of t's named type, unwrapping one pointer
// level ("Registry" for *obsv.Registry), or "" when unnamed.
func namedTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}
