package lint

import (
	"go/ast"
	"go/types"
)

// SecretFlow enforces the observability/secrecy boundary PR 2 made urgent:
// the obsv layer exports metric names, span labels, and trace arguments
// straight into JSON artifacts, and fmt/log/error formatting ends up in
// terminals and CI logs. None of those channels may ever see data derived
// from the AES key schedule, the GHASH subkey, a counter-mode pad, or
// on-chip plaintext — the paper's confidentiality argument (Section 3)
// assumes the only off-chip images of those values are the ciphertexts and
// clipped MACs. The analyzer walks the taint engine's per-function state
// and reports any secret-derived argument reaching a sink — directly, or
// through any chain of module functions whose interprocedural summaries
// say the argument reaches a sink below the call.
const secretFlowName = "secretflow"

var SecretFlow = &Analyzer{
	Name: secretFlowName,
	Doc:  "secret-derived values must not reach fmt/log/error formatting or obsv sinks",
	Run:  runSecretFlow,
}

// fmtSinkPkgs are stdlib packages whose calls publish their arguments.
var fmtSinkPkgs = map[string]bool{"fmt": true, "log": true, "errors": true}

// obsvSinks maps receiver type name -> method names that publish string
// arguments into metrics or traces. Matching is by type and method name
// (like the other analyzers' shape heuristics) so testdata fixtures can
// mimic the obsv API without importing it.
var obsvSinks = map[string]map[string]bool{
	"Registry": {"Counter": true, "Gauge": true, "Histogram": true, "SetGauge": true},
	"Recorder": {"Span": true, "SpanID": true, "Instant": true, "Begin": true, "End": true},
}

func runSecretFlow(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			ctx := pass.secrets.analyze(pass, fn)
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if desc, ok := sinkCallDesc(pass.Pkg.Info, call); ok {
					reportTaintedArgs(pass, ctx, call, desc)
				}
				checkCallSiteSinks(pass, ctx, call, secretFlowName)
				return true
			})
		}
	}
}

// sinkCallDesc classifies a call as a publishing sink — panic, fmt/log/
// errors formatting, or an obsv-shaped metric/trace method — and returns a
// human description. Shared with the summary engine so sink facts and
// direct findings agree on what counts as a sink.
func sinkCallDesc(info *types.Info, call *ast.CallExpr) (string, bool) {
	// panic(v) prints v's formatted value on the crash path.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "panic" {
			return "panic (panic values are printed with the crash)", true
		}
	}

	if fn, pkg := qualifiedCallee(info, call); fn != "" && fmtSinkPkgs[pkg] {
		return pkg + "." + fn, true
	}

	// obsv-shaped method sinks: metric registration names and trace labels.
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	selection, ok := info.Selections[sel]
	if !ok {
		return "", false
	}
	recv := namedTypeName(selection.Recv())
	methods, ok := obsvSinks[recv]
	if !ok || !methods[sel.Sel.Name] {
		return "", false
	}
	return recv + "." + sel.Sel.Name +
		" (metric names and trace labels are exported verbatim into observability artifacts)", true
}

func reportTaintedArgs(pass *Pass, ctx *taintCtx, call *ast.CallExpr, sink string) {
	for _, arg := range call.Args {
		if ctx.Tainted(arg) {
			pass.Reportf(arg.Pos(),
				"secret-derived value reaches %s; key, pad, tag-state, and plaintext material must never leave through logs, errors, metrics, or traces",
				sink)
		}
	}
}

// namedTypeName returns the name of t's named type, unwrapping one pointer
// level ("Registry" for *obsv.Registry), or "" when unnamed.
func namedTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}
