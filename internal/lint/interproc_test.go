package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// loadSrc writes files (path -> contents) into a throwaway module and loads
// every package recursively, so tests can typecheck small programs without
// touching the repository tree.
func loadSrc(t *testing.T, files map[string]string) []*Package {
	t.Helper()
	root := t.TempDir()
	files["go.mod"] = "module fixture\n\ngo 1.21\n"
	for name, src := range files {
		p := filepath.Join(root, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	pkgs, err := Load(root, []string{"./..."})
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			t.Fatalf("fixture does not typecheck: %v", terr)
		}
	}
	return pkgs
}

func interprocFor(t *testing.T, pkgs []*Package) *interproc {
	t.Helper()
	return computeInterproc(pkgs, collectSecrets(pkgs), collectModuleIgnores(pkgs))
}

func (ip *interproc) funcNamed(t *testing.T, name string) *summary {
	t.Helper()
	for _, fn := range ip.graph.order {
		if fn.Name() == name {
			return ip.summaries[fn]
		}
	}
	t.Fatalf("no function %q in call graph", name)
	return nil
}

// TestCallGraphRecursionCycle pins the SCC machinery: a mutually recursive
// pair must form one component, emitted before the component of its caller
// (callees-first order), and self-recursion must form a singleton cycle
// that still converges.
func TestCallGraphRecursionCycle(t *testing.T) {
	pkgs := loadSrc(t, map[string]string{
		"p/p.go": `package p

func a(x int) int {
	if x == 0 {
		return x
	}
	return b(x - 1)
}

func b(x int) int { return a(x) }

func caller(x int) int { return a(x) }

func selfRec(x int) int {
	if x == 0 {
		return x
	}
	return selfRec(x - 1)
}
`,
	})
	ip := interprocFor(t, pkgs)
	comps := ip.graph.sccs()
	pos := map[string]int{} // function name -> component index
	for i, comp := range comps {
		for _, fn := range comp {
			pos[fn.Name()] = i
		}
	}
	if pos["a"] != pos["b"] {
		t.Errorf("a and b are mutually recursive but landed in components %d and %d", pos["a"], pos["b"])
	}
	if pos["caller"] <= pos["a"] {
		t.Errorf("caller's component (%d) must come after its callee's (%d)", pos["caller"], pos["a"])
	}
	// Taint must flow around both cycle shapes: result <- param through
	// the recursion.
	for _, name := range []string{"a", "b", "selfRec", "caller"} {
		sum := ip.funcNamed(t, name)
		if sum == nil || len(sum.results) == 0 || sum.results[0]&paramLabel(0) == 0 {
			t.Errorf("%s: recursive summary lost the result <- x flow: %+v", name, sum)
		}
	}
}

// TestCallGraphIndirectEdges pins that method values and function
// references stored into callback slots create call-graph edges — the
// over-approximation that keeps stored-callback taint flows visible.
func TestCallGraphIndirectEdges(t *testing.T) {
	pkgs := loadSrc(t, map[string]string{
		"p/p.go": `package p

type dev struct{ n int }

func (d *dev) step(x int) int { return x + d.n }

func helper(x int) int { return x }

type hooks struct{ fn func(int) int }

func wire(d *dev) *hooks {
	h := &hooks{fn: helper} // stored callback: edge wire -> helper
	_ = d.step              // method value: edge wire -> dev.step
	return h
}
`,
	})
	ip := interprocFor(t, pkgs)
	var wireCallees []string
	for fn := range ip.graph.decls {
		if fn.Name() == "wire" {
			for _, c := range ip.graph.callees[fn] {
				wireCallees = append(wireCallees, c.Name())
			}
		}
	}
	for _, want := range []string{"helper", "step"} {
		found := false
		for _, got := range wireCallees {
			if got == want {
				found = true
			}
		}
		if !found {
			t.Errorf("call graph is missing the wire -> %s edge (got %v)", want, wireCallees)
		}
	}
}

// TestSummaryCompositionThreeDeep pins that flows compose across a chain of
// unannotated helpers: the outermost summary must carry result <- param and
// the sink fact inferred three calls down.
func TestSummaryCompositionThreeDeep(t *testing.T) {
	pkgs := loadSrc(t, map[string]string{
		"p/p.go": `package p

import "fmt"

func inner(x []byte) string { return fmt.Sprintf("%x", x) }

func mid(x []byte) string { return inner(x) }

func outer(x []byte) string { return mid(x) }

func fillInner(dst, src []byte) { copy(dst, src) }

func fillOuter(dst, src []byte) { fillInner(dst, src) }
`,
	})
	ip := interprocFor(t, pkgs)
	outer := ip.funcNamed(t, "outer")
	if outer == nil {
		t.Fatal("outer has no summary")
	}
	if len(outer.results) == 0 || outer.results[0]&paramLabel(0) == 0 {
		t.Errorf("outer lost result <- x through the three-deep chain: %+v", outer)
	}
	foundSink := false
	for _, f := range outer.sinks {
		if f.kind == secretFlowName && f.labels&paramLabel(0) != 0 {
			foundSink = true
			if !strings.Contains(f.desc, "fmt.Sprintf") {
				t.Errorf("outer sink fact lost the ultimate sink description: %q", f.desc)
			}
		}
	}
	if !foundSink {
		t.Errorf("outer did not inherit inner's fmt.Sprintf sink fact: %+v", outer.sinks)
	}
	// Out-parameter effects compose the same way.
	fill := ip.funcNamed(t, "fillOuter")
	if fill == nil || len(fill.params) == 0 || fill.params[0]&paramLabel(1) == 0 {
		t.Errorf("fillOuter lost the dst <- src out-parameter flow: %+v", fill)
	}
}

// TestLaunderedSecretDetected is the regression the ISSUE demands: a secret
// pushed through an unannotated helper must still be reported at the sink,
// and the same helper fed public data must stay silent.
func TestLaunderedSecretDetected(t *testing.T) {
	pkgs := loadSrc(t, map[string]string{
		"p/p.go": `package p

import "fmt"

type vault struct {
	//secmemlint:secret — root annotation; helpers below are unannotated
	key []byte
}

func render(b []byte) string { return fmt.Sprintf("%x", b) }

func (v *vault) leak() string { return render(v.key) }

func describe() string { return render([]byte("public")) }
`,
	})
	diags := Run(pkgs, []*Analyzer{SecretFlow})
	if len(diags) != 1 {
		t.Fatalf("want exactly one finding (the laundered key, not the public call), got %d: %v", len(diags), diags)
	}
	if !strings.Contains(diags[0].Message, "flows through render into fmt.Sprintf") {
		t.Errorf("finding does not name the laundering chain: %s", diags[0].Message)
	}
}

// TestDumpSummaries exercises the -dump-summaries debug view end to end.
func TestDumpSummaries(t *testing.T) {
	pkgs := loadSrc(t, map[string]string{
		"p/p.go": `package p

func pass(x int) int { return x }
`,
	})
	out := DumpSummaries(pkgs)
	if !strings.Contains(out, "fixture/p.pass") || !strings.Contains(out, "result[0] <- x") {
		t.Errorf("dump is missing the inferred pass-through flow:\n%s", out)
	}
}
