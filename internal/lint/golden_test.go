package lint

import (
	"bufio"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// TestGoldenFixtures runs each analyzer over its testdata packages and
// checks the findings against the fixtures' "// want \"regexp\"" line
// annotations: every annotated line must produce a matching diagnostic, and
// no diagnostic may appear on an unannotated line.
func TestGoldenFixtures(t *testing.T) {
	cases := []struct {
		analyzer *Analyzer
		fixtures []string // subdirectories of testdata/src
	}{
		{MacCompare, []string{"maccompare"}},
		{SeedDiscipline, []string{"seeddiscipline", "seeddiscipline/gcmmode"}},
		{RandHygiene, []string{"randhygiene/cryptoish", "randhygiene/trace"}},
		{VerifyDrop, []string{"verifydrop"}},
		{SliceRetain, []string{"sliceretain/gcmmode", "sliceretain/plain"}},
		{SecretFlow, []string{"secretflow/leaky", "secretflow/clean", "secretflow/interproc"}},
		{CTTiming, []string{"cttiming/branchy", "cttiming/clean", "cttiming/interproc"}},
		{TaintEscape, []string{"taintescape/alias", "taintescape/clean"}},
		{SharedState, []string{"sharedstate/racy", "sharedstate/clean"}},
		{LockDiscipline, []string{"lockdiscipline/leaky", "lockdiscipline/clean"}},
		{GlobalMut, []string{"globalmut/core", "globalmut/merkle"}},
		{HotPathAlloc, []string{"hotpathalloc/hot", "hotpathalloc/clean"}},
		{Determinism, []string{"determinism/violating", "determinism/clean"}},
		{GoroutineLife, []string{"goroutinelife/leaky", "goroutinelife/clean"}},
	}
	for _, c := range cases {
		for _, fixture := range c.fixtures {
			name := c.analyzer.Name + "/" + strings.ReplaceAll(fixture, "/", "_")
			t.Run(name, func(t *testing.T) {
				runGolden(t, c.analyzer, filepath.Join("testdata", "src", filepath.FromSlash(fixture)))
			})
		}
	}
}

func runGolden(t *testing.T, a *Analyzer, dir string) {
	t.Helper()
	pkgs, err := Load(dir, []string{"."})
	if err != nil {
		t.Fatalf("load %s: %v", dir, err)
	}
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			t.Errorf("fixture %s does not typecheck: %v", pkg.Path, terr)
		}
	}
	wants := parseWants(t, dir)
	diags := Run(pkgs, []*Analyzer{a})
	for _, d := range diags {
		key := wantKey{filepath.Base(d.File), d.Line}
		w, ok := wants[key]
		if !ok {
			t.Errorf("unexpected diagnostic: %s", d)
			continue
		}
		if !w.re.MatchString(d.Message) {
			t.Errorf("%s:%d: diagnostic %q does not match want %q", key.file, key.line, d.Message, w.re)
		}
		w.matched = true
	}
	for key, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: want %q but no diagnostic reported", key.file, key.line, w.re)
		}
	}
}

type wantKey struct {
	file string
	line int
}

type want struct {
	re      *regexp.Regexp
	matched bool
}

var wantRe = regexp.MustCompile(`//\s*want\s+(".*")\s*$`)

func parseWants(t *testing.T, dir string) map[wantKey]*want {
	t.Helper()
	wants := make(map[wantKey]*want)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := os.Open(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			m := wantRe.FindStringSubmatch(sc.Text())
			if m == nil {
				continue
			}
			quoted, err := strconv.Unquote(m[1])
			if err != nil {
				t.Fatalf("%s:%d: bad want annotation %s: %v", e.Name(), line, m[1], err)
			}
			re, err := regexp.Compile(quoted)
			if err != nil {
				t.Fatalf("%s:%d: bad want regexp %q: %v", e.Name(), line, quoted, err)
			}
			if _, dup := wants[wantKey{e.Name(), line}]; dup {
				t.Fatalf("%s:%d: multiple want annotations on one line", e.Name(), line)
			}
			wants[wantKey{e.Name(), line}] = &want{re: re}
		}
		if err := sc.Err(); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	if len(wants) == 0 {
		// A fixture with no annotations is legal (negative fixtures), but a
		// typo'd annotation regexp would silently pass; sanity-log it.
		t.Logf("fixture %s has no want annotations (negative fixture)", dir)
	}
	return wants
}
