package lint

import (
	"path/filepath"
	"testing"
	"time"
)

// lintRepoBudget bounds one full-repository lint run. The interprocedural
// pass added the call-graph build and the SCC summary fixpoint on top of
// loading and typechecking; the gate stays useful only while it is fast
// enough for CI and pre-commit, so a run blowing this budget is a
// regression, not a shrug.
const lintRepoBudget = 5 * time.Second

// BenchmarkLintRepo measures the wall time of a full-repository lint run:
// loading and typechecking every package with the stdlib-only loader,
// building the call graph, computing interprocedural summaries over the
// SCC condensation, then running all eleven analyzers. Run via
// `make lint-bench`; every iteration also enforces lintRepoBudget.
func BenchmarkLintRepo(b *testing.B) {
	for i := 0; i < b.N; i++ {
		start := time.Now()
		pkgs, err := Load(filepath.Join("..", ".."), []string{"./..."})
		if err != nil {
			b.Fatalf("loading repository: %v", err)
		}
		if diags := Run(pkgs, All()); len(diags) > 0 {
			b.Fatalf("repository is not clean: %s", diags[0])
		}
		if elapsed := time.Since(start); elapsed > lintRepoBudget {
			b.Fatalf("full-repo lint took %v, over the %v budget (interprocedural fixpoint regression?)", elapsed, lintRepoBudget)
		}
	}
}
