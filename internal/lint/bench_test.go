package lint

import (
	"path/filepath"
	"testing"
)

// BenchmarkLintRepo measures the wall time of a full-repository lint run:
// loading and typechecking every package with the stdlib-only loader, then
// running all eight analyzers, including the per-function taint fixpoints
// the three secret-tracking analyzers share. Run via `make lint-bench`.
func BenchmarkLintRepo(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pkgs, err := Load(filepath.Join("..", ".."), []string{"./..."})
		if err != nil {
			b.Fatalf("loading repository: %v", err)
		}
		if diags := Run(pkgs, All()); len(diags) > 0 {
			b.Fatalf("repository is not clean: %s", diags[0])
		}
	}
}
