package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
)

// MacCompare enforces the constant-time tag check the GCM construction
// depends on: any comparison of MAC/tag material must go through
// crypto/subtle.ConstantTimeCompare. bytes.Equal, reflect.DeepEqual, and ==
// on byte arrays all short-circuit at the first differing byte, turning the
// authentication check into a timing oracle an attacker can use to forge
// tags one byte at a time.
var MacCompare = &Analyzer{
	Name: "maccompare",
	Doc:  "MAC/tag comparisons must use crypto/subtle.ConstantTimeCompare",
	Run:  runMacCompare,
}

// macNameRe matches names that carry authentication-code material. coreName
// reduces expressions like pbuf[lo:hi] or f.computeMac(...) to a handle this
// regexp can judge.
var macNameRe = regexp.MustCompile(`(?i)(mac|tag|digest|ghash|sig|auth)`)

func runMacCompare(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				fn, pkg := qualifiedCallee(info, n)
				variadicEqual := (pkg == "bytes" && fn == "Equal") ||
					(pkg == "reflect" && fn == "DeepEqual")
				if variadicEqual && len(n.Args) == 2 && (macish(n.Args[0]) || macish(n.Args[1])) {
					pass.Reportf(n.Pos(),
						"MAC/tag compared with %s.%s; use crypto/subtle.ConstantTimeCompare (variable-time comparison leaks a tag-forgery timing oracle)",
						pkg, fn)
				}
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				if !macish(n.X) && !macish(n.Y) {
					return true
				}
				if isByteArray(info, n.X) || isByteArray(info, n.Y) {
					pass.Reportf(n.Pos(),
						"MAC/tag byte arrays compared with %s; use crypto/subtle.ConstantTimeCompare over slices (array comparison is variable time)",
						n.Op)
				}
			}
			return true
		})
	}
}

func macish(e ast.Expr) bool {
	return macNameRe.MatchString(coreName(e))
}

// qualifiedCallee resolves pkgname.Func calls to ("Func", "importpath-base"),
// using type information when available and falling back to the spelled
// package qualifier otherwise.
func qualifiedCallee(info *types.Info, call *ast.CallExpr) (fn, pkg string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", ""
	}
	if obj, ok := info.Uses[id].(*types.PkgName); ok {
		return sel.Sel.Name, lastSegment(obj.Imported().Path())
	}
	return sel.Sel.Name, id.Name
}

func isByteArray(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	arr, ok := tv.Type.Underlying().(*types.Array)
	if !ok {
		return false
	}
	b, ok := arr.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Uint8
}
