package lint

import (
	"go/ast"
	"go/types"
)

// GlobalMut bans mutable package-level state in the simulator-core
// packages. The ROADMAP's parallel event-driven core shards the memory
// system across worker goroutines and instantiates multiple tenants in
// one process; any package-level variable in those packages is state
// silently shared by every shard and tenant — a data race at worst and a
// cross-tenant covert channel at best. Constants, error sentinels
// (immutable by convention), and the blank identifier are fine; anything
// else must live on a struct the caller owns.
//
// The package set mirrors ISSUE/ROADMAP: sim, core, engine, cache,
// counterstore, merkle. Packages outside the set (harness, obsv, lint
// itself) may keep globals — they run on the coordinator, not in shards.
var GlobalMut = &Analyzer{
	Name: "globalmut",
	Doc:  "no mutable package-level state in the simulator-core packages",
	Run:  runGlobalMut,
}

// globalMutPackages are the final path segments of the shard-instantiable
// core packages.
var globalMutPackages = []string{"sim", "core", "engine", "cache", "counterstore", "merkle"}

func runGlobalMut(pass *Pass) {
	match := false
	for _, seg := range globalMutPackages {
		if pass.Pkg.Segment(seg) {
			match = true
			break
		}
	}
	if !match {
		return
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			gen, ok := decl.(*ast.GenDecl)
			if !ok || gen.Tok.String() != "var" {
				continue
			}
			for _, spec := range gen.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					if name.Name == "_" {
						continue
					}
					obj := info.Defs[name]
					if obj == nil {
						continue
					}
					if isErrorSentinel(obj.Type()) {
						continue
					}
					pass.Reportf(name.Pos(),
						"package-level variable %s makes every simulator shard and tenant share state; move it onto a struct the caller instantiates (parallel-core prerequisite)",
						name.Name)
				}
			}
		}
	}
}

// isErrorSentinel reports whether t is the error interface — `var ErrX =
// errors.New(...)` sentinels are assigned once at init and compared by
// identity, the one package-level-var idiom the core packages keep.
func isErrorSentinel(t types.Type) bool {
	it, ok := t.Underlying().(*types.Interface)
	if !ok {
		return false
	}
	return it.NumMethods() == 1 && it.Method(0).Name() == "Error"
}
