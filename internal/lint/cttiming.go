package lint

import (
	"go/ast"
)

// CTTiming machine-checks the constant-time discipline that maccompare only
// spot-checks at comparison sites: no control flow and no memory indexing
// may depend on secret data. Data-dependent branches leak through
// execution-time variation (Kocher-style timing attacks) and
// secret-indexed table lookups leak through the cache (the classic AES
// S-box channel) — the two mechanisms tools like ctgrind and dudect hunt
// dynamically, checked here statically on every CI run.
//
// The sanctioned exits are (a) reducing a secret to a publishable decision
// via crypto/subtle (the taint engine declassifies those results) and (b)
// an explicit "//secmemlint:ignore cttiming <reason>" at sites that model
// combinational hardware, where software timing is out of scope. Both keep
// the allowlist visible in the source.
const ctTimingName = "cttiming"

var CTTiming = &Analyzer{
	Name: ctTimingName,
	Doc:  "no branch condition or memory index may depend on secret data",
	Run:  runCTTiming,
}

func runCTTiming(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			ctx := pass.secrets.analyze(pass, fn)
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.IfStmt:
					if ctx.Tainted(n.Cond) {
						pass.Reportf(n.Cond.Pos(),
							"if condition depends on secret data; branching on secrets leaks through timing (constant-time discipline)")
					}
				case *ast.SwitchStmt:
					if n.Tag != nil && ctx.Tainted(n.Tag) {
						pass.Reportf(n.Tag.Pos(),
							"switch tag depends on secret data; branching on secrets leaks through timing (constant-time discipline)")
					}
				case *ast.ForStmt:
					if n.Cond != nil && ctx.Tainted(n.Cond) {
						pass.Reportf(n.Cond.Pos(),
							"loop condition depends on secret data; secret-dependent trip counts leak through timing")
					}
				case *ast.IndexExpr:
					// Only value indexing: generic instantiations are
					// IndexExprs over types.
					if tv, ok := pass.Pkg.Info.Types[n.X]; ok && tv.IsValue() && ctx.Tainted(n.Index) {
						pass.Reportf(n.Index.Pos(),
							"memory index depends on secret data; secret-indexed lookups leak through the cache (AES S-box channel)")
					}
				case *ast.SliceExpr:
					for _, bound := range []ast.Expr{n.Low, n.High, n.Max} {
						if bound != nil && ctx.Tainted(bound) {
							pass.Reportf(bound.Pos(),
								"slice bound depends on secret data; secret-dependent extents leak through timing and access patterns")
						}
					}
				case *ast.CallExpr:
					// Interprocedural: a secret argument whose callee's
					// summary says it reaches a branch or table index below
					// the call leaks just the same.
					checkCallSiteSinks(pass, ctx, n, ctTimingName)
				}
				return true
			})
		}
	}
}
