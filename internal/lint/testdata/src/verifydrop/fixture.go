// Package verifydrop is the golden fixture for the verifydrop analyzer:
// authentication results that are discarded, blanked, or unobservable must
// be flagged; results that gate control flow are clean.
package verifydrop

type engine struct{}

func (engine) Verify(mac []byte) bool      { return len(mac) == 0 }
func (engine) Authenticate() error         { return nil }
func Open(name string) ([]byte, error)     { return nil, nil }
func (engine) VerifyCounter(v uint64) bool { return v != 0 }
func (engine) record()                     {}
func (engine) OpenSlots() int              { return 4 }

func bad(e engine) {
	e.Verify(nil)          // want "result of Verify discarded"
	e.VerifyCounter(7)     // want "result of VerifyCounter discarded"
	_ = e.Verify(nil)      // want "result of Verify assigned to blank"
	_, _ = Open("region")  // want "result of Open assigned to blank"
	go e.Authenticate()    // want "result of Authenticate unobservable in go statement"
	defer e.Authenticate() // want "result of Authenticate unobservable in defer statement"
}

func good(e engine) {
	if !e.Verify(nil) {
		e.record()
	}
	ok := e.Verify(nil)
	if ok {
		e.record()
	}
	if err := e.Authenticate(); err != nil {
		e.record()
	}
	img, err := Open("region")
	if err != nil || img == nil {
		e.record()
	}
	// Results without a bool or error are not trust decisions.
	e.OpenSlots()
	// An explicit suppression with a reason silences a deliberate site.
	e.Verify(nil) //secmemlint:ignore verifydrop fixture models a simulator that records tampers internally
}
