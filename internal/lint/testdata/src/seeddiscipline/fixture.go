// Package seeddiscipline is the golden fixture for the seeddiscipline
// analyzer. It lives outside the canonical builder packages, so ad-hoc seed
// assembly here must be flagged.
package seeddiscipline

// Seed mimics the canonical seed type's shape (named Seed, byte array).
type Seed [16]byte

func badShiftOr(addr, ctr uint64) uint64 {
	return addr<<16 | ctr // want "ad-hoc seed assembly"
}

func badReversed(counter, blockAddr uint64) uint64 {
	s := counter | blockAddr<<8 // want "ad-hoc seed assembly"
	return s
}

func badChain(addr, ctr, eiv uint64) uint64 {
	return addr<<24 | ctr<<8 | eiv // want "ad-hoc seed assembly"
}

func badAdd(addr, counter uint64) uint64 {
	return addr<<32 + counter // want "ad-hoc seed assembly"
}

func badLiteral(addr, ctr uint64) Seed {
	return Seed{0: byte(addr), 8: byte(ctr)} // want "Seed constructed by hand"
}

// Counter folding combines two counters, never an address: clean, exactly
// like counterstore.Value.
func okCounterFold(major, minor uint64) uint64 {
	return major<<7 | minor
}

// Cache tag math has no counter in it: clean.
func okCacheAddr(tag, setIdx, setBits uint64) uint64 {
	return tag<<setBits | setIdx
}

// Combining without a shift is not seed layout: clean.
func okNoShift(addr, ctr uint64) uint64 {
	return addr | ctr
}
