// Package gcmmode stands in for the canonical seed builder: its import path
// ends in "gcmmode", so seed assembly here is exempt — this is where the
// one true layout lives.
package gcmmode

// Seed mirrors the canonical 16-byte AES input block.
type Seed [16]byte

// MakeSeed is the canonical builder; raw shift-and-combine and Seed
// literals are allowed here and nowhere else.
func MakeSeed(blockAddr, counter uint64, eiv byte) Seed {
	folded := blockAddr<<8 | counter
	return Seed{0: byte(folded >> 56), 15: eiv}
}
