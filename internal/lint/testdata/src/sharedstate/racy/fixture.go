// Package racy exercises the sharedstate analyzer's positive cases: state
// reached from more than one goroutine without a guarding mutex, both via
// a direct go statement and via the harness's worker-pool idiom (a
// function literal handed to a runner that invokes it on worker
// goroutines).
package racy

import "sync"

// parallelFor mimics the harness worker pool: fn runs on worker
// goroutines, so every literal bound to fn is a concurrent body.
func parallelFor(n int, fn func(int)) {
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < n; i++ {
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// racyCounter accumulates into a captured local from worker goroutines
// with no guard — the classic lost-update race.
func racyCounter() int {
	total := 0
	parallelFor(8, func(i int) {
		total += i // want "write to total"
	})
	return total
}

// racyMap writes map entries from a direct go-statement closure; map
// writes are never element-exempt (concurrent map writes fault at
// runtime).
func racyMap() map[string]int {
	m := make(map[string]int)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		m["hits"] = 1 // want "write to m"
	}()
	wg.Wait()
	return m
}

// racyRead: one goroutine writes, the other reads, neither holds a lock.
func racyRead() int {
	cursor := 0
	done := make(chan struct{})
	go func() {
		cursor = 42 // want "write to cursor"
		close(done)
	}()
	go func() {
		_ = cursor + 1 // want "read of cursor"
	}()
	<-done
	return 0
}
