// Package clean exercises the sharedstate analyzer's negatives: properly
// guarded access, partitioned slice-element writes (each worker owns its
// index), channel hand-off, and sync/atomic state.
package clean

import (
	"sync"
	"sync/atomic"
)

func parallelFor(n int, fn func(int)) {
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < n; i++ {
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// guardedCounter holds a mutex around every access to the shared total.
func guardedCounter() int {
	total := 0
	var mu sync.Mutex
	parallelFor(8, func(i int) {
		mu.Lock()
		total += i
		mu.Unlock()
	})
	mu.Lock()
	defer mu.Unlock()
	return total
}

// partitioned writes disjoint slice elements from each worker — the
// canonical shard pattern the analyzer must not flag.
func partitioned() []int {
	out := make([]int, 8)
	parallelFor(8, func(i int) {
		out[i] = i * i
	})
	return out
}

// atomicCounter uses sync/atomic state, which is exempt by type.
func atomicCounter() int64 {
	var total atomic.Int64
	parallelFor(8, func(i int) {
		total.Add(int64(i))
	})
	return total.Load()
}

// channelFanIn shares nothing: results travel over a channel.
func channelFanIn() int {
	ch := make(chan int, 4)
	for w := 0; w < 4; w++ {
		go func() {
			ch <- 1
		}()
	}
	sum := 0
	for w := 0; w < 4; w++ {
		sum += <-ch
	}
	return sum
}
