// Package cryptoish is the golden fixture for randhygiene's flagged side: a
// package outside the simulation allowlist importing math/rand.
package cryptoish

import (
	"math/rand" // want "math/rand imported outside the simulation allowlist"
)

// keyByte is exactly the bug the analyzer exists to prevent: predictable
// "randomness" feeding key material.
func keyByte() byte {
	return byte(rand.Int())
}
