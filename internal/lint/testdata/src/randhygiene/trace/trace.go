// Package trace stands in for the simulation allowlist (trace, dram,
// harness): math/rand is legitimate workload-generation machinery here.
package trace

import "math/rand"

// Addr draws a pseudo-random block address for synthetic traffic.
func Addr(r *rand.Rand) uint64 {
	return uint64(r.Int63()) &^ 63
}
