// Package leaky exercises the goroutinelife analyzer's positive cases:
// goroutines with no provable termination signal, unbounded spawn loops,
// per-message spawns, opaque function-value launches, and external callees
// that cannot be proven to stop.
package leaky

import "runtime"

// leakyLiteral spawns a producer that holds work live forever if the
// receiver goes away; nothing in the body proves termination.
func leakyLiteral(work []int) chan int {
	results := make(chan int, 1)
	go func() { // want "no provable termination signal"
		for _, w := range work {
			results <- w * 2
		}
	}()
	return results
}

// spawnForever launches one goroutine per iteration of an infinite loop.
func spawnForever(jobs chan int) {
	for {
		go drain(jobs) // want "infinite for loop"
	}
}

// spawnWhile is the condition-only variant: boundedness depends on data.
func spawnWhile(busy func() bool, jobs chan int) {
	for busy() {
		go drain(jobs) // want "condition-only for loop"
	}
}

// perMessage spawns a goroutine for every received message.
func perMessage(jobs chan int) {
	for j := range jobs {
		_ = j
		go drain(jobs) // want "per channel message"
	}
}

// launchValue cannot see through the function value.
func launchValue(fn func()) {
	go fn() // want "function value whose termination cannot be proven"
}

// runWorker launches a module function with neither a termination signal
// in its body nor a channel/context parameter.
func runWorker() {
	go pump() // want "goroutine pump has no provable termination signal"
}

func pump() {
	for i := 0; i < 10; i++ {
		_ = i
	}
}

// backgroundGC launches an external function: unprovable.
func backgroundGC() {
	go runtime.GC() // want "declared outside the module"
}

// drain has a channel parameter, so launching it is fine — the loop rules
// above fire on the spawn sites, not on drain.
func drain(jobs chan int) {
	for range jobs {
	}
}
