// Package clean exercises the goroutinelife analyzer's negatives: the
// counted worker pool with WaitGroup join, channel-range consumers, the
// stop-channel select idiom, Done-channel receives, and named launches that
// thread their stop signal through a parameter or prove termination in
// their own body.
package clean

import (
	"context"
	"sync"
)

// workerPool is the harness.parallelFor shape: a counted loop of workers,
// each joining through the WaitGroup.
func workerPool(jobs []int) []int {
	var wg sync.WaitGroup
	out := make([]int, len(jobs))
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(jobs); i += 4 {
				out[i] = jobs[i] * 2
			}
		}(w)
	}
	wg.Wait()
	return out
}

// fanOut spawns once per element of a slice: bounded per call.
func fanOut(parts [][]int) {
	var wg sync.WaitGroup
	for _, p := range parts {
		wg.Add(1)
		go func(p []int) {
			defer wg.Done()
			_ = len(p)
		}(p)
	}
	wg.Wait()
}

// drainChannel terminates when the producer closes jobs.
func drainChannel(jobs chan int) {
	go func() {
		for j := range jobs {
			_ = j
		}
	}()
}

// stopSelect is the stop-channel idiom: the select's stop clause returns.
func stopSelect(stop chan struct{}, ticks chan int) {
	go func() {
		for {
			select {
			case <-stop:
				return
			case t := <-ticks:
				_ = t
			}
		}
	}()
}

// watchContext blocks on the context's Done channel.
func watchContext(ctx context.Context, results chan int) {
	go func() {
		<-ctx.Done()
		close(results)
	}()
}

// launchNamed threads the stop signal (the channel close) through
// consume's parameter.
func launchNamed(jobs chan int) {
	go consume(jobs)
}

func consume(jobs chan int) {
	for range jobs {
	}
}

var poolWG sync.WaitGroup

// runPool launches a module function whose own body proves termination.
func runPool() {
	poolWG.Add(1)
	go pooled()
	poolWG.Wait()
}

func pooled() {
	defer poolWG.Done()
}
