// Package core mimics a simulator-core package (the import path's final
// segment is "core", so the globalmut deny-list applies, exactly as it
// does to the real internal/core). Package-level mutable state here is
// shared by every shard and tenant; only constants, error sentinels, and
// the blank identifier may live at package scope.
package core

import "errors"

// ErrStall is an error sentinel: assigned once at init, compared by
// identity — the one package-level-var idiom the core packages keep.
var ErrStall = errors.New("core: stall")

// blockBytes is a constant: fine.
const blockBytes = 64

var _ = blockBytes // blank identifier: fine

var hitCount int // want "package-level variable hitCount"

var seen = map[uint64]bool{} // want "package-level variable seen"

var (
	defaultLatency uint64 = 40 // want "package-level variable defaultLatency"
)
