// Package merkle mimics a second deny-listed core package whose only
// package-level state is the allowed kind — proving the sentinel and
// const exemptions hold inside the deny-list, not just outside it.
package merkle

import "errors"

var ErrMismatch = errors.New("merkle: mismatch")

const arity = 4

// Fold is ordinary shard-safe code: all state is parameters and locals.
func Fold(b []byte) byte {
	var acc byte
	for _, x := range b {
		acc ^= x
	}
	return acc
}
