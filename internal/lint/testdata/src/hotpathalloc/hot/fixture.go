// Package hot exercises the hotpathalloc analyzer's positive cases: two
// //secmemlint:hotpath roots whose closure heap-allocates in every way the
// analyzer models — builtins, literals, conversions, formatting, interface
// dispatch and boxing, and escaping closures — both directly in a root and
// in a shared helper reached from both roots.
package hot

import "fmt"

// Sink keeps escaping values alive so the fixtures are not dead code.
var Sink interface{}

type hasher interface {
	Sum(p []byte) []byte
}

// record mimics a logging sink with an interface parameter.
func record(v interface{}) {
	Sink = v
}

// Process is a per-access hot root allocating in every direct form.
//
//secmemlint:hotpath
func Process(h hasher, p []byte, n int) []byte {
	buf := make([]byte, n)        // want "make .allocation unless escape analysis proves otherwise. in Process, which is on the .*closure of Process"
	buf = append(buf, p...)       // want "append .may grow the backing array."
	pairs := []int{1, 2}          // want "slice literal .backing-array allocation."
	idx := map[string]int{"a": 1} // want "map literal .map allocation."
	_, _ = pairs, idx
	s := string(p) // want "string/..byte conversion .copy allocation."
	s = s + "!"    // want "string concatenation .result allocation."
	_ = s
	fmt.Println()                         // want "fmt.Println call .formatting allocates."
	record(n)                             // want "interface boxing of a non-pointer value"
	sum := h.Sum(buf)                     // want "call through interface method Sum"
	esc := func() int { return len(sum) } // want "escaping function literal .closure allocation."
	Sink = esc
	scratch := make([]byte, 16) //secmemlint:ignore hotpathalloc fixture: sanctioned allocation proves the suppression path filters hot findings
	_ = helper(scratch)
	return scratch
}

// Tag is a second root so helper's diagnostics name both roots, sorted.
//
//secmemlint:hotpath
func Tag(p []byte) *int {
	return helper(p)
}

// helper is not annotated itself; it is hot because both roots reach it.
func helper(p []byte) *int {
	if len(p) == 0 {
		return nil
	}
	return new(int) // want "new .allocation unless escape analysis proves otherwise. in helper, which is on the .*closure of Process, Tag"
}
