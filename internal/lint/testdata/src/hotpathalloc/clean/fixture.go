// Package clean exercises the hotpathalloc analyzer's negatives: a hot
// root whose whole closure stays on the stack. Fixed-size arrays, struct
// literals, the locally-bound feed-closure idiom, in-place literal calls,
// constant and pointer-shaped interface arguments, and devirtualized
// dispatch are all exempt.
package clean

type state struct {
	h   [4]uint64
	len int
}

// record mimics a logging sink with an interface parameter; constants are
// interned and pointers fit the interface data word, so neither call in
// Digest boxes.
func record(v interface{}) {
	_ = v
}

// Digest is a per-access hot root that never touches the heap.
//
//secmemlint:hotpath
func Digest(p []byte, n int) [4]uint64 {
	var s state
	words := [2]uint64{uint64(len(p)), uint64(n)}
	feed := func(chunk []byte) {
		for _, b := range chunk {
			s.h[s.len&3] ^= uint64(b)
			s.len++
		}
	}
	feed(p)
	feed(p)
	func() { s.h[0] ^= words[0] }()
	defer finish(&s)
	record("digest") // constant: interned, no boxing
	record(&s)       // pointer-shaped: fits the interface word
	mix(&s, words[1])
	return s.h
}

// mix is hot via Digest; integer arithmetic and struct copies are free.
func mix(s *state, w uint64) {
	tmp := state{h: s.h, len: s.len}
	tmp.h[1] ^= w
	*s = tmp
}

func finish(s *state) {
	s.h[3] ^= uint64(s.len)
}
