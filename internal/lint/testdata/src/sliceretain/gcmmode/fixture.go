// Package gcmmode is the golden fixture for the sliceretain analyzer: its
// import path ends in a crypto package name, so constructors and setters
// here must copy caller-provided byte slices.
package gcmmode

type keyed struct {
	key []byte
	buf []byte
}

func NewKeyed(key []byte) *keyed {
	return &keyed{key: key} // want "NewKeyed retains caller-provided \\[\\]byte \"key\""
}

func NewKeyedPositional(key []byte) keyed {
	return keyed{key, nil} // want "NewKeyedPositional retains caller-provided \\[\\]byte \"key\""
}

func (k *keyed) SetBuf(buf []byte) {
	k.buf = buf // want "SetBuf retains caller-provided \\[\\]byte \"buf\""
}

func (k *keyed) SetBufPrefix(buf []byte, n int) {
	k.buf = buf[:n] // want "SetBufPrefix retains caller-provided \\[\\]byte \"buf\""
}

// The conforming idioms: copy into an owned buffer, or rebind the parameter
// to a copy first.
func NewKeyedCopy(key []byte) *keyed {
	return &keyed{key: append([]byte(nil), key...)}
}

func (k *keyed) SetBufCopy(buf []byte) {
	k.buf = append(k.buf[:0], buf...)
}

func (k *keyed) SetBufRebound(buf []byte) {
	buf = append([]byte(nil), buf...)
	k.buf = buf
}

// Reading a parameter without storing it is clean.
func NewSum(data []byte) int {
	total := 0
	for _, b := range data {
		total += int(b)
	}
	return total
}
