// Package plain shows sliceretain's scoping: outside the crypto packages,
// retaining a caller's slice is an ordinary (sometimes intended) Go idiom
// and is not flagged.
package plain

type holder struct {
	data []byte
}

func NewHolder(data []byte) *holder {
	return &holder{data: data} // clean: not a crypto package
}
