// Package clean is the cttiming negative fixture: constant-time handling
// of secrets — linear scans, subtle-declassified decisions, and an
// explicitly allowlisted hardware-model site — must produce no findings.
package clean

import "crypto/subtle"

var sbox [256]byte

// XorFold mixes the secret without any data-dependent control flow: the
// loop bound is the public length and every iteration does the same work.
//
//secmemlint:secret key
func XorFold(key []byte) byte {
	var acc byte
	for i := 0; i < len(key); i++ {
		acc ^= key[i]
	}
	return acc
}

// Gate branches only on the declassified result of a constant-time
// comparison — the sanctioned exit from the secret lattice.
//
//secmemlint:secret key
func Gate(key, candidate []byte) bool {
	if subtle.ConstantTimeCompare(key, candidate) == 1 {
		return true
	}
	return false
}

// HardwareSBox models a combinational hardware S-box; the software table
// lookup is allowlisted with a documented suppression.
//
//secmemlint:secret k
func HardwareSBox(k byte) byte {
	//secmemlint:ignore cttiming models a combinational hardware S-box; software table timing out of scope
	return sbox[k]
}
