// Package branchy exercises the cttiming analyzer's positive cases:
// secret-dependent branches, switch tags, loop conditions, table indexes,
// and slice bounds.
package branchy

var sbox [256]byte

// SubBytes substitutes each byte through the table — the classic
// key-indexed lookup (AES S-box cache channel).
//
//secmemlint:secret key
func SubBytes(key []byte) []byte {
	out := make([]byte, len(key))
	for i, b := range key {
		out[i] = sbox[b] // want "memory index depends on secret data"
	}
	return out
}

// ParityBranch branches directly on a secret-derived bit.
//
//secmemlint:secret k
func ParityBranch(k byte) bool {
	if k&1 == 1 { // want "if condition depends on secret data"
		return true
	}
	return false
}

// RoleSwitch dispatches on a secret byte.
//
//secmemlint:secret role
func RoleSwitch(role byte) int {
	switch role { // want "switch tag depends on secret data"
	case 0:
		return 1
	default:
		return 2
	}
}

// CountLoop runs a secret-dependent number of iterations.
//
//secmemlint:secret n
func CountLoop(n int) int {
	total := 0
	for i := 0; i < n; i++ { // want "loop condition depends on secret data"
		total++
	}
	return total
}

// ClipSecret slices with a secret-derived bound.
//
//secmemlint:secret cut
func ClipSecret(buf []byte, cut int) []byte {
	return buf[:cut] // want "slice bound depends on secret data"
}
