// Package interproc pins interprocedural constant-time checking: a secret
// index that only hits a table inside an unannotated helper is still
// reported at the call site that supplied the secret.
package interproc

var sbox [256]byte

type box struct {
	//secmemlint:secret — the secret byte driving the lookup
	k byte
}

// pick and pickTwice are unannotated; their summaries carry the cttiming
// sink fact (parameter used as a memory index) up the call chain.

func pick(i byte) byte {
	return sbox[i]
}

func pickTwice(i byte) byte {
	return pick(pick(i))
}

func (b *box) leak() byte {
	return pickTwice(b.k) // want "flows through pickTwice into a secret-indexed table lookup"
}

// publicLookup is the context-sensitivity negative: the same helper chain
// with a public index is fine.
func publicLookup(round int) byte {
	return pickTwice(byte(round))
}
