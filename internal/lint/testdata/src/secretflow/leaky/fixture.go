// Package leaky exercises the secretflow analyzer's positive cases:
// secret-derived values reaching fmt/log formatting, error construction,
// panic, and obsv-shaped metric/trace sinks.
package leaky

import (
	"fmt"
	"log"
)

// Registry mimics obsv.Registry's metric-name sinks.
type Registry struct{}

// Counter mimics metric registration by name.
func (r *Registry) Counter(name string) *int { return nil }

// Recorder mimics obsv.Recorder's trace-label sinks.
type Recorder struct{}

// Span mimics a trace span with track and label strings.
func (r *Recorder) Span(track, name string, start, end uint64) {}

type vault struct {
	//secmemlint:secret — the AES key under test
	key []byte
}

func (v *vault) leakError() error {
	return fmt.Errorf("bad key %x", v.key) // want "secret-derived value reaches fmt.Errorf"
}

func (v *vault) leakDerived() {
	derived := make([]byte, 4)
	for i, b := range v.key {
		derived[i%4] ^= b
	}
	log.Printf("derived=%x", derived) // want "secret-derived value reaches log.Printf"
}

func (v *vault) leakMetricName(r *Registry) {
	r.Counter("key." + string(v.key[:1])) // want "reaches Registry.Counter"
}

func (v *vault) leakSpanLabel(rec *Recorder) {
	rec.Span("aes", string(v.key[:4]), 0, 1) // want "reaches Recorder.Span"
}

func (v *vault) leakPanic() {
	panic(string(v.key)) // want "secret-derived value reaches panic"
}
