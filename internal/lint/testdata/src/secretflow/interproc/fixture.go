// Package interproc pins the tentpole capability of the summary engine:
// a secret laundered through a chain of unannotated helpers still reaches
// the sink report at the call site that injected it. Before the
// interprocedural pass, every helper below would have needed its own
// //secmemlint:secret annotation for the leak to be visible; now only the
// true root (the vault.key field) is annotated and the flow is inferred.
package interproc

import "fmt"

type vault struct {
	//secmemlint:secret — the AES key under test; the one annotation in this file
	key []byte
}

// hexify, wrap, and rewrap are deliberately unannotated. Their taint
// behaviour is inferred: hexify's summary records a secretflow sink fact on
// its parameter, wrap and rewrap record result <- param flows.

func hexify(b []byte) string {
	return fmt.Sprintf("%x", b)
}

func wrap(b []byte) []byte {
	return b
}

func rewrap(b []byte) []byte {
	return wrap(b)
}

// fill launders through an out-parameter: the summary records dst <- src.
func fill(dst, src []byte) {
	copy(dst, src)
}

// leakThreeDeep pushes the key through a three-deep unannotated chain
// (rewrap -> wrap -> hexify -> fmt.Sprintf). The finding lands on the
// argument that injects the secret.
func (v *vault) leakThreeDeep() {
	msg := hexify(rewrap(v.key)) // want "flows through hexify into fmt.Sprintf"
	_ = msg
}

// leakOutParam launders through a helper's out-parameter: fill copies the
// key into buf, so the later format call publishes secret bytes even
// though no secret appears syntactically at the sink.
func (v *vault) leakOutParam() string {
	buf := make([]byte, 16)
	fill(buf, v.key)
	return fmt.Sprintf("%x", buf) // want "secret-derived value reaches fmt.Sprintf"
}

// publicUseIsClean exercises context sensitivity: the very same helpers
// carry public data here, so the instantiated summaries are label-free and
// nothing is reported.
func (v *vault) publicUseIsClean() string {
	public := []byte("region-label")
	out := make([]byte, len(public))
	fill(out, public)
	return hexify(rewrap(out))
}
