// Package clean is the secretflow negative fixture: code that handles
// secrets correctly — publishing only lengths, constant labels, and
// subtle-declassified decisions — must produce no findings.
package clean

import (
	"crypto/subtle"
	"fmt"
	"log"
)

// Registry mimics obsv.Registry's metric-name sinks.
type Registry struct{}

// Counter mimics metric registration by name.
func (r *Registry) Counter(name string) *int { return nil }

type vault struct {
	//secmemlint:secret — the AES key under test
	key []byte
}

// sizeError publishes only the key's length: lengths are public.
func (v *vault) sizeError() error {
	return fmt.Errorf("invalid key size %d", len(v.key))
}

// checkAndLog publishes a subtle-declassified comparison decision.
func (v *vault) checkAndLog(other []byte) {
	ok := subtle.ConstantTimeCompare(v.key, other) == 1
	log.Printf("match=%v", ok)
}

// constantMetric registers under a constant name while using the secret.
func (v *vault) constantMetric(r *Registry) *int {
	_ = v.key[0] ^ v.key[1]
	return r.Counter("vault.uses")
}
