// Package clean exercises the determinism analyzer's negatives: the
// collect-then-sort idiom, sorted-key iteration, commutative updates inside
// map ranges, explicitly seeded randomness, and per-worker float
// contributions reduced in a fixed order after the join.
package clean

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
)

func parallelFor(n int, fn func(int)) {
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < n; i++ {
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// render iterates sorted keys before emitting: deterministic output.
func render(m map[string]int) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k) // collect-then-sort: sorted below
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%d\n", k, m[k])
	}
	return b.String()
}

// tally performs commutative updates while ranging a map: the final counts
// are independent of iteration order.
func tally(m map[string]int) (int, map[string]bool) {
	total := 0
	seen := make(map[string]bool)
	for k, v := range m {
		total += v
		seen[k] = true
	}
	return total, seen
}

// deterministicDraw threads an explicitly seeded generator: same seed,
// same sequence, every run.
func deterministicDraw(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(100)
}

// sumParallel accumulates per worker and reduces in index order after the
// join, so the float sum is interleaving-independent.
func sumParallel(parts [][]float64) float64 {
	contrib := make([]float64, len(parts))
	parallelFor(len(parts), func(i int) {
		local := 0.0
		for _, v := range parts[i] {
			local += v // worker-private accumulator
		}
		contrib[i] = local
	})
	var total float64
	for i := range contrib {
		total += contrib[i]
	}
	return total
}
