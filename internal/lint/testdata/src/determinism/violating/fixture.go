// Package violating exercises the determinism analyzer's positive cases:
// ordered sinks and unsorted appends inside map ranges, wall-clock and
// process-global randomness in an internal package, and float accumulation
// across a concurrent merge point.
package violating

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"time"
)

// parallelFor mimics the harness worker pool: fn runs on worker
// goroutines, so every literal bound to fn is a concurrent body.
func parallelFor(n int, fn func(int)) {
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < n; i++ {
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// emitInMapOrder prints while ranging a map: output order changes per run.
func emitInMapOrder(m map[string]int) {
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v) // want "fmt.Printf inside a map range emits in randomized iteration order"
	}
}

// recordInMapOrder streams and collects in iteration order; lines is never
// sorted before it is rendered.
func recordInMapOrder(m map[string]int, b *strings.Builder) []string {
	var lines []string
	for k := range m {
		b.WriteString(k)         // want "WriteString call inside a map range"
		lines = append(lines, k) // want "append to lines inside a map range .* never sorted afterwards"
	}
	return lines
}

// stamp makes simulation output depend on the wall clock.
func stamp() int64 {
	return time.Now().Unix() // want "time.Now in an internal package"
}

// jitter draws from the process-global generator, reseeded every run.
func jitter() int {
	return rand.Intn(8) // want "rand.Intn draws from the process-global generator"
}

var weight float64

// meanLatency merges float partial sums under a lock: the lock serializes
// but does not order, and float addition is not associative.
func meanLatency(xs []float64) float64 {
	var mu sync.Mutex
	total := 0.0
	parallelFor(len(xs), func(i int) {
		mu.Lock()
		total += xs[i]          // want "float accumulation into total inside a concurrent body"
		weight = weight + xs[i] // want "float accumulation into weight inside a concurrent body"
		mu.Unlock()
	})
	return total / float64(len(xs))
}
