// Package maccompare is the golden fixture for the maccompare analyzer:
// every flagged line carries a want annotation, every clean line does not.
package maccompare

import (
	"bytes"
	"crypto/subtle"
	"reflect"
)

func checkTag(mac, want []byte) bool {
	if bytes.Equal(mac, want) { // want "MAC/tag compared with bytes.Equal"
		return true
	}
	if reflect.DeepEqual(mac, want) { // want "MAC/tag compared with reflect.DeepEqual"
		return true
	}
	return subtle.ConstantTimeCompare(mac, want) == 1 // conforming
}

func checkSlot(tag []byte, node []byte, lo, hi int) bool {
	return bytes.Equal(tag, node[lo:hi]) // want "MAC/tag compared with bytes.Equal"
}

func arrayTags(tag, other [16]byte) bool {
	if tag != other { // want "MAC/tag byte arrays compared with !="
		return false
	}
	return tag == other // want "MAC/tag byte arrays compared with =="
}

// unrelated byte comparisons are none of maccompare's business.
func payloadsMatch(a, b []byte) bool {
	return bytes.Equal(a, b)
}

// non-byte comparisons of MAC-named values are fine (e.g. counting tags).
func tagCountsMatch(tagCount, otherCount int) bool {
	return tagCount == otherCount
}
