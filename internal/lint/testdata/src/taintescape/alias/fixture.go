// Package alias exercises the taintescape analyzer's positive cases:
// exported APIs handing out live aliases of secret backing storage.
package alias

// Box holds secret pad material.
type Box struct {
	//secmemlint:secret — counter-mode pad material
	pad []byte
}

// Pad returns the secret slice itself: every caller gets a writable
// window onto the pad.
func (b *Box) Pad() []byte {
	return b.pad // want "returns an un-copied alias of secret state"
}

// PadPrefix reslices the secret before returning — still the same backing
// array, tracked through the local.
func (b *Box) PadPrefix() []byte {
	p := b.pad[:8]
	return p // want "returns an un-copied alias of secret state"
}

// Expose stores the alias into caller-visible memory through a pointer
// parameter.
func (b *Box) Expose(out *[]byte) {
	*out = b.pad // want "stores an un-copied alias of secret state"
}
