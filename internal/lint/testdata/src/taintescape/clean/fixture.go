// Package clean is the taintescape negative fixture: exported accessors
// that copy before handing anything out must produce no findings.
package clean

// Box holds secret pad material.
type Box struct {
	//secmemlint:secret — counter-mode pad material
	pad []byte
}

// PadCopy returns a caller-owned copy: the append breaks aliasing.
func (b *Box) PadCopy() []byte {
	return append([]byte(nil), b.pad...)
}

// PadInto copies into a caller buffer instead of storing an alias.
func (b *Box) PadInto(dst []byte) int {
	return copy(dst, b.pad)
}

// internalAlias returning the raw slice is fine on an unexported helper:
// the package owns both ends.
func (b *Box) internalAlias() []byte {
	return b.pad
}
