// Package clean exercises the lockdiscipline negatives: deferred unlocks
// (returns inside the section are fine), tight Lock/Unlock pairs, read
// locks, and blocking operations performed after release.
package clean

import "sync"

type shard struct {
	mu sync.RWMutex
	n  int
}

// deferred releases on every path via defer; the early return is fine.
func (s *shard) deferred() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.n > 0 {
		return s.n
	}
	return 0
}

// tightPair brackets the write with an explicit pair and no exits inside.
func (s *shard) tightPair(v int) {
	s.mu.Lock()
	s.n = v
	s.mu.Unlock()
}

// sendOutside snapshots under the lock and blocks only after release.
func (s *shard) sendOutside(ch chan int) {
	s.mu.Lock()
	n := s.n
	s.mu.Unlock()
	ch <- n
}

// twoPhases reacquires for a second section; each pair is matched
// independently.
func (s *shard) twoPhases() int {
	s.mu.Lock()
	a := s.n
	s.mu.Unlock()
	s.mu.Lock()
	b := s.n
	s.mu.Unlock()
	return a + b
}
