// Package leaky exercises the lockdiscipline analyzer's positive cases:
// a Lock with no Unlock, an early return inside a non-deferred critical
// section, and blocking operations performed while holding a lock.
package leaky

import "sync"

type shard struct {
	mu sync.Mutex
	ch chan int
	n  int
}

// neverReleases locks and forgets.
func (s *shard) neverReleases() {
	s.mu.Lock() // want "not released on every path"
	s.n++
}

// leakOnEarlyReturn releases on the fall-through path but not on the
// early return.
func (s *shard) leakOnEarlyReturn(cond bool) int {
	s.mu.Lock()
	if cond {
		return 0 // want "leaks the lock on this path"
	}
	n := s.n
	s.mu.Unlock()
	return n
}

// blocksWhileHolding performs a channel send inside the critical section.
func (s *shard) blocksWhileHolding(v int) {
	s.mu.Lock()
	s.ch <- v // want "channel send while holding s.mu"
	s.mu.Unlock()
}

// waitsWhileHolding parks on a WaitGroup with the lock held.
func (s *shard) waitsWhileHolding(wg *sync.WaitGroup) {
	s.mu.Lock()
	wg.Wait() // want "sync.WaitGroup.Wait while holding s.mu"
	s.mu.Unlock()
}
