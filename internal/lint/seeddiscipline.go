package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
)

// SeedDiscipline guards the paper's Section 3 pad-uniqueness argument: a
// counter-mode pad seed is address ‖ counter ‖ EIV, and the argument that no
// (key, seed) pair ever repeats holds only if every seed is laid out by the
// canonical builder (gcmmode.MakeSeed on top of the aescipher substrate).
// Ad-hoc assembly like addr<<k | ctr silently overlaps fields when counter
// widths change, and two writes sharing one pad break confidentiality
// completely (XOR of ciphertexts = XOR of plaintexts).
//
// The analyzer flags, outside the canonical packages:
//
//   - shift-and-combine expressions that mix an address-like value with a
//     counter-like value, and
//   - composite literals of a Seed-shaped byte-array type.
//
// Pure counter folding (major<<bits | minor in the counter store) and cache
// tag math do not mix an address with a counter and stay clean.
var SeedDiscipline = &Analyzer{
	Name: "seeddiscipline",
	Doc:  "counter-mode seeds/pads are built only by the canonical gcmmode builder",
	Run:  runSeedDiscipline,
}

// seedBuilderPkgs are the package name segments allowed to assemble seed
// material by hand: the canonical builder and the cipher substrate it rides on.
var seedBuilderPkgs = []string{"gcmmode", "aescipher"}

var (
	addrNameRe = regexp.MustCompile(`(?i)addr`)
	ctrNameRe  = regexp.MustCompile(`(?i)(ctr|counter|major|minor)`)
)

func runSeedDiscipline(pass *Pass) {
	for _, seg := range seedBuilderPkgs {
		if pass.Pkg.Segment(seg) {
			return
		}
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		reported := make(map[*ast.BinaryExpr]bool)
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if reported[n] {
					return true
				}
				if !combineOp(n.Op) {
					return true
				}
				terms := flattenCombine(n, n.Op, reported)
				if seedAssembly(terms) {
					pass.Reportf(n.Pos(),
						"ad-hoc seed assembly combines an address with a counter; build pad seeds only via the canonical gcmmode seed builder (pad reuse breaks Section 3 uniqueness)")
				}
			case *ast.CompositeLit:
				if isSeedType(info, n) {
					pass.Reportf(n.Pos(),
						"Seed constructed by hand; use the canonical gcmmode seed builder so the field layout cannot drift")
				}
			}
			return true
		})
	}
}

func combineOp(op token.Token) bool {
	return op == token.OR || op == token.XOR || op == token.ADD
}

// flattenCombine collects the terms of a same-operator chain (a | b | c),
// marking interior nodes so they are not reported twice.
func flattenCombine(e *ast.BinaryExpr, op token.Token, seen map[*ast.BinaryExpr]bool) []ast.Expr {
	var terms []ast.Expr
	var walk func(x ast.Expr)
	walk = func(x ast.Expr) {
		if b, ok := ast.Unparen(x).(*ast.BinaryExpr); ok && b.Op == op {
			seen[b] = true
			walk(b.X)
			walk(b.Y)
			return
		}
		terms = append(terms, ast.Unparen(x))
	}
	walk(e)
	return terms
}

// seedAssembly reports whether the combined terms look like pad-seed layout:
// at least one shifted term, one address-like value, and one counter-like
// value. Shifted terms contribute the name of the shifted operand.
func seedAssembly(terms []ast.Expr) bool {
	var hasShift, hasAddr, hasCtr bool
	for _, t := range terms {
		base := t
		if sh, ok := t.(*ast.BinaryExpr); ok && sh.Op == token.SHL {
			hasShift = true
			base = ast.Unparen(sh.X)
		}
		name := coreName(base)
		if addrNameRe.MatchString(name) {
			hasAddr = true
		}
		if ctrNameRe.MatchString(name) {
			hasCtr = true
		}
	}
	return hasShift && hasAddr && hasCtr
}

// isSeedType matches composite literals of a named type "Seed" whose
// underlying type is a byte array — the shape of gcmmode.Seed and of any
// copycat a refactor might introduce.
func isSeedType(info *types.Info, lit *ast.CompositeLit) bool {
	tv, ok := info.Types[lit]
	if !ok || tv.Type == nil {
		return false
	}
	named, ok := tv.Type.(*types.Named)
	if !ok || named.Obj().Name() != "Seed" {
		return false
	}
	arr, ok := named.Underlying().(*types.Array)
	if !ok {
		return false
	}
	b, ok := arr.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Uint8
}
