package lint

import (
	"go/ast"
	"go/types"
	"sort"
)

// This file builds the repo-wide call graph the interprocedural summaries
// (summary.go) are computed over. It is deliberately stdlib-only and
// syntax-driven: nodes are the module's own function and method
// declarations, and an edge A -> B exists when A's body mentions B — a
// static call, a method call on a concrete receiver, a method value, or a
// function reference stored into a callback slot. Treating every reference
// as a potential call over-approximates edges (a stored callback might
// never run), which is the safe direction for taint propagation: extra
// edges can only make summaries more conservative, never miss a flow.
//
// Interface method calls and calls through function-typed values resolve to
// no module node; summary.go models those with the conservative
// unknown-callee transfer instead (see the soundness notes there and in
// DESIGN.md §12).

// callGraph is the module call graph plus the declaration index the
// summary fixpoint walks.
type callGraph struct {
	// decls maps each module function object to its declaration.
	decls map[*types.Func]*ast.FuncDecl
	// pkgOf maps each module function to the package whose type info
	// resolves its body.
	pkgOf map[*types.Func]*Package
	// callees holds the adjacency: every module function referenced by the
	// key's body (including references inside closures, which execute with
	// the enclosing function's taint environment).
	callees map[*types.Func][]*types.Func
	// order lists every node in a deterministic order (file position) so
	// fixpoints and dumps are reproducible.
	order []*types.Func
}

// buildCallGraph indexes all function declarations in pkgs and records
// reference edges between them.
func buildCallGraph(pkgs []*Package) *callGraph {
	g := &callGraph{
		decls:   make(map[*types.Func]*ast.FuncDecl),
		pkgOf:   make(map[*types.Func]*Package),
		callees: make(map[*types.Func][]*types.Func),
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fn.Name].(*types.Func)
				if !ok {
					continue
				}
				g.decls[obj] = fn
				g.pkgOf[obj] = pkg
				g.order = append(g.order, obj)
			}
		}
	}
	for fn, decl := range g.decls {
		info := g.pkgOf[fn].Info
		seen := make(map[*types.Func]bool)
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			callee, ok := info.Uses[id].(*types.Func)
			if !ok || seen[callee] {
				return true
			}
			// Method selections resolve the interface method object for
			// interface receivers; those have no decl and are skipped here
			// (handled by the unknown-callee model).
			if _, inModule := g.decls[callee]; inModule {
				seen[callee] = true
				g.callees[fn] = append(g.callees[fn], callee)
			}
			return true
		})
		sort.Slice(g.callees[fn], func(i, j int) bool {
			return g.callees[fn][i].Pos() < g.callees[fn][j].Pos()
		})
	}
	sort.Slice(g.order, func(i, j int) bool { return g.order[i].Pos() < g.order[j].Pos() })
	return g
}

// sccs returns the strongly connected components of the call graph in
// reverse topological order of the condensation: every callee's component
// appears before its callers'. Processing components in this order lets the
// summary fixpoint see finished callee summaries except inside recursive
// cycles, which iterate within their component. This is Tarjan's algorithm;
// its emission order is exactly the order needed (a component is emitted
// only after everything reachable from it).
func (g *callGraph) sccs() [][]*types.Func {
	type nodeState struct {
		index, lowlink int
		onStack        bool
	}
	states := make(map[*types.Func]*nodeState, len(g.order))
	var stack []*types.Func
	var comps [][]*types.Func
	next := 0

	// Iterative Tarjan: the repo's call chains are shallow, but recursion
	// depth should not depend on analyzed code shape.
	type frame struct {
		fn *types.Func
		ci int // next callee index to visit
	}
	var visit func(root *types.Func)
	visit = func(root *types.Func) {
		frames := []frame{{fn: root}}
		st := &nodeState{index: next, lowlink: next}
		next++
		states[root] = st
		stack = append(stack, root)
		st.onStack = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			fst := states[f.fn]
			advanced := false
			for f.ci < len(g.callees[f.fn]) {
				callee := g.callees[f.fn][f.ci]
				f.ci++
				cst, seen := states[callee]
				if !seen {
					cst = &nodeState{index: next, lowlink: next}
					next++
					states[callee] = cst
					stack = append(stack, callee)
					cst.onStack = true
					frames = append(frames, frame{fn: callee})
					advanced = true
					break
				}
				if cst.onStack && cst.index < fst.lowlink {
					fst.lowlink = cst.index
				}
			}
			if advanced {
				continue
			}
			// All callees visited: pop the frame, fold lowlink into the
			// parent, and emit a component if this node is its root.
			if fst.lowlink == fst.index {
				var comp []*types.Func
				for {
					top := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					states[top].onStack = false
					comp = append(comp, top)
					if top == f.fn {
						break
					}
				}
				sort.Slice(comp, func(i, j int) bool { return comp[i].Pos() < comp[j].Pos() })
				comps = append(comps, comp)
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				parent := states[frames[len(frames)-1].fn]
				if fst.lowlink < parent.lowlink {
					parent.lowlink = fst.lowlink
				}
			}
		}
	}
	for _, fn := range g.order {
		if _, seen := states[fn]; !seen {
			visit(fn)
		}
	}
	return comps
}
