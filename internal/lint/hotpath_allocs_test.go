package lint

import (
	"strings"
	"testing"

	"secmem/internal/aescipher"
	"secmem/internal/gcmmode"
	"secmem/internal/gf128"
)

// TestHotpathVerdictsMatchAllocsPerRun cross-checks the hotpathalloc
// analyzer's lexical zero-allocation verdict against the runtime truth:
// every //secmemlint:hotpath root the repository gate holds clean
// (TestRepositoryClean) must also measure zero allocations per
// steady-state call under testing.AllocsPerRun. The two views fail in
// opposite directions — the analyzer is an over-approximation that cannot
// see escape analysis, AllocsPerRun sees only the inputs exercised here —
// so a disagreement means either the analyzer grew a blind spot or a hot
// kernel actually regressed.
func TestHotpathVerdictsMatchAllocsPerRun(t *testing.T) {
	roots := make(map[string]HotFunc)
	for _, h := range HotPathAudit(loadRepo(t)) {
		if h.Root {
			roots[h.Func] = h
		}
	}

	key := []byte("0123456789abcdef")
	cipher := aescipher.MustNew(key)
	aead := gcmmode.NewAEAD(cipher)
	pg := gcmmode.NewAES128PadGen(key, 0x01, 0x02)
	h := gf128.Element{Hi: 0x66e94bd4ef8a2c3b, Lo: 0x884cfa59ca342b2e}
	pt := gf128.NewProductTable(h)
	pt8 := gf128.NewProductTable8(h)
	x := gf128.Element{Hi: 0x0123456789abcdef, Lo: 0xfedcba9876543210}
	aad := make([]byte, 16)
	ct := make([]byte, 64)
	nonce := make([]byte, gcmmode.NonceSize)
	plaintext := make([]byte, 64)
	sealBuf := make([]byte, 0, len(plaintext)+gcmmode.TagSize)
	sealed := aead.Seal(nil, nonce, plaintext, aad)
	openBuf := make([]byte, 0, len(plaintext))
	var sinkE gf128.Element
	var blk [16]byte

	cases := []struct {
		root string // types.Func.FullName, as HotPathAudit reports it
		run  func()
	}{
		{"(secmem/internal/gf128.Element).MulTable", func() { sinkE = x.MulTable(&pt) }},
		{"secmem/internal/gf128.GHASHTable", func() { blk = gf128.GHASHTable(&pt, aad, ct) }},
		{"(secmem/internal/gf128.Element).MulTable8", func() { sinkE = x.MulTable8(&pt8) }},
		{"secmem/internal/gf128.GHASHTable8", func() { blk = gf128.GHASHTable8(&pt8, aad, ct) }},
		{"(*secmem/internal/aescipher.Cipher).Encrypt", func() { cipher.Encrypt(blk[:], blk[:]) }},
		{"(*secmem/internal/gcmmode.PadGen).BlockPad", func() { _ = pg.BlockPad(0x1000, 7) }},
		{"(*secmem/internal/gcmmode.PadGen).BlockPads", func() {
			var pads [4 * gcmmode.MemBlockSize]byte
			var ctrs [4]uint64
			pg.BlockPads(pads[:], 0x1000, ctrs[:])
		}},
		{"(*secmem/internal/gcmmode.PadGen).AuthPad", func() { _ = pg.AuthPad(0x1000, 7) }},
		{"(*secmem/internal/gcmmode.PadGen).MAC", func() { _, _ = pg.MAC(ct, 0x1000, 7, 64) }},
		{"(*secmem/internal/gcmmode.AEAD).Seal", func() { _ = aead.Seal(sealBuf, nonce, plaintext, aad) }},
		{"(*secmem/internal/gcmmode.AEAD).Open", func() {
			if _, err := aead.Open(openBuf, nonce, sealed, aad); err != nil {
				t.Error("Open rejected its own Seal output:", err)
			}
		}},
	}

	exercised := make(map[string]bool, len(cases))
	for _, c := range cases {
		exercised[c.root] = true
		hf, ok := roots[c.root]
		if !ok {
			t.Errorf("%s is cross-checked here but carries no //secmemlint:hotpath annotation; the table and the audit drifted apart", c.root)
			continue
		}
		if hf.Suppressed {
			continue
		}
		c.run() // warm any one-time paths before measuring
		if n := testing.AllocsPerRun(100, c.run); n != 0 {
			t.Errorf("%s: hotpathalloc holds it zero-alloc but AllocsPerRun measured %.1f allocs/op", c.root, n)
		}
	}
	// Every annotated root must have a runtime cross-check. The core
	// functional-model closures are unexported and exercised through the
	// harness campaign instead; everything else missing here is a gap.
	for name := range roots {
		if strings.Contains(name, "/core.") || exercised[name] {
			continue
		}
		t.Errorf("annotated root %s has no AllocsPerRun cross-check; add a table entry", name)
	}
	_ = sinkE
}
