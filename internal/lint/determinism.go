package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Determinism is the reproducibility gate: two runs of the simulator with
// the same configuration must produce byte-identical artifacts (the
// campaign fingerprints in internal/harness pin this end to end; this
// analyzer pins the code patterns that break it). Three rules:
//
//  1. Map iteration order is randomized per run, so a `range` over a map
//     must not reach an ordered sink. Flagged inside a map-range body:
//     calls that emit in iteration order (fmt print/Fprint variants,
//     Write*/Record/Instant-style writers),
//     and appends to a slice variable declared outside the loop
//     — unless the slice is passed to a sort call after the loop (the
//     collect-then-sort idiom). Appends into indexed or field targets are
//     exempt (per-key state, not an ordered rendering), and so are pure
//     map/set writes, which are order-independent.
//
//  2. Wall-clock and process-global randomness have no place in internal/*
//     simulation or crypto packages: time.Now/Since and the package-level
//     math/rand draw functions (Intn, Float64, ...) are flagged there.
//     Explicitly seeded generators (rand.New(rand.NewSource(seed))) are
//     the sanctioned source and pass; the timing-harness commands under
//     cmd/ measure real wall time and are out of scope by path.
//
//  3. Floating-point accumulation (+= / -= or x = x + y on floats) into
//     state captured from outside a concurrent body reorders across
//     goroutine interleavings, and float addition is not associative.
//     Accumulate into worker-local state and reduce in a fixed order
//     after the join instead.
//
// Lexical soundness caveat (mirrors sharedstate's): rule 1 sees appends
// and sink calls written directly in the range body; an append hidden
// behind a locally bound closure called from the loop is not attributed
// to the loop.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "no map-order, wall-clock, or float-merge nondeterminism in simulation outputs",
	Run:  runDeterminism,
}

// orderedSinkNames are method/function names treated as ordered emission
// when called inside a map-range body: stream writers and the trace/
// flight-recorder event emitters. Metric Inc/Add/Observe are deliberately
// absent — commutative updates are order-independent.
var orderedSinkNames = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Record": true, "Instant": true, "Emit": true,
}

func runDeterminism(pass *Pass) {
	ip := pass.secrets.interp
	if ip == nil {
		return
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		funcBodies(f, func(body *ast.BlockStmt, where string) {
			checkMapRanges(pass, info, body)
		})
	}
	checkWallClock(pass)
	checkFloatMerge(pass)
}

// checkMapRanges applies rule 1 to one function body (nested literals get
// their own visit via funcBodies, so loops and their sorts are matched
// within a single lexical scope).
func checkMapRanges(pass *Pass, info *types.Info, body *ast.BlockStmt) {
	// Collect sort calls once: any call into package sort, with the set of
	// objects mentioned in its arguments.
	type sortCall struct {
		pos  token.Pos
		objs map[types.Object]bool
	}
	var sorts []sortCall
	inspectSkipFuncLits(body, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		callee, _ := calleeObject(info, call).(*types.Func)
		if callee == nil || callee.Pkg() == nil || callee.Pkg().Path() != "sort" {
			return
		}
		sc := sortCall{pos: call.Pos(), objs: make(map[types.Object]bool)}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					if obj := info.Uses[id]; obj != nil {
						sc.objs[obj] = true
					}
				}
				return true
			})
		}
		sorts = append(sorts, sc)
	})
	sortedAfter := func(obj types.Object, after token.Pos) bool {
		for _, sc := range sorts {
			if sc.pos > after && sc.objs[obj] {
				return true
			}
		}
		return false
	}

	inspectSkipFuncLits(body, func(n ast.Node) {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return
		}
		tv, ok := info.Types[rng.X]
		if !ok || tv.Type == nil {
			return
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return
		}
		inspectSkipFuncLits(rng.Body, func(m ast.Node) {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return
			}
			if desc, ok := orderedSinkCall(info, call); ok {
				pass.Reportf(call.Pos(),
					"%s inside a map range emits in randomized iteration order; iterate a sorted key slice instead", desc)
				return
			}
			// dst = append(dst, ...) growing an outer slice in map order.
			id, ok := ast.Unparen(call.Fun).(*ast.Ident)
			if !ok {
				return
			}
			if b, ok := info.Uses[id].(*types.Builtin); !ok || b.Name() != "append" {
				return
			}
			if len(call.Args) == 0 {
				return
			}
			target, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
			if !ok {
				return // indexed/field targets hold per-key state, exempt
			}
			obj := info.Uses[target]
			if obj == nil {
				return
			}
			if obj.Pos() >= rng.Pos() && obj.Pos() <= rng.End() {
				return // loop-local scratch, rebuilt per iteration
			}
			if sortedAfter(obj, rng.End()) {
				return // collect-then-sort idiom
			}
			pass.Reportf(call.Pos(),
				"append to %s inside a map range records randomized iteration order and %s is never sorted afterwards; sort it (or iterate sorted keys) before it is rendered",
				obj.Name(), obj.Name())
		})
	})
}

// orderedSinkCall reports calls that emit output in call order.
func orderedSinkCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	callee, _ := calleeObject(info, call).(*types.Func)
	if callee == nil {
		return "", false
	}
	if pkg := callee.Pkg(); pkg != nil && pkg.Path() == "fmt" {
		switch callee.Name() {
		case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
			return "fmt." + callee.Name(), true
		}
		// Sprint*/Errorf construct values without emitting; whether their
		// results are rendered in map order is the consumer's concern and
		// the append rule below covers the recording side.
		return "", false
	}
	if orderedSinkNames[callee.Name()] {
		return callee.Name() + " call", true
	}
	return "", false
}

// checkWallClock applies rule 2: time.Now/Since and package-level
// math/rand draws in internal/* packages.
func checkWallClock(pass *Pass) {
	if !internalPath(pass.Pkg.Path) {
		return
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee, _ := calleeObject(info, call).(*types.Func)
			if callee == nil || callee.Pkg() == nil {
				return true
			}
			switch path := callee.Pkg().Path(); {
			case path == "time" && (callee.Name() == "Now" || callee.Name() == "Since"):
				pass.Reportf(call.Pos(),
					"time.%s in an internal package makes simulation output depend on wall clock; thread simulated time (sim.Time) or measure in cmd/ harnesses only",
					callee.Name())
			case path == "math/rand" || path == "math/rand/v2":
				sig, _ := callee.Type().(*types.Signature)
				if sig != nil && sig.Recv() != nil {
					return true // method on an explicitly seeded *rand.Rand
				}
				switch callee.Name() {
				case "New", "NewSource", "NewZipf", "NewPCG", "NewChaCha8":
					return true // deterministic constructors
				}
				pass.Reportf(call.Pos(),
					"rand.%s draws from the process-global generator, which is seeded per run; construct rand.New(rand.NewSource(seed)) and thread it explicitly",
					callee.Name())
			}
			return true
		})
	}
}

// internalPath reports whether an import path lies under an internal/
// tree — the simulation and crypto packages rule 2 governs. Fixture
// packages live under internal/lint/testdata and qualify the same way.
func internalPath(path string) bool {
	return path == "internal" || strings.HasPrefix(path, "internal/") ||
		strings.Contains(path, "/internal/") || strings.HasSuffix(path, "/internal")
}

// checkFloatMerge applies rule 3 over the module-wide concurrent-body sets
// (shared with sharedstate via the interproc cache).
func checkFloatMerge(pass *Pass) {
	ip := pass.secrets.interp
	cc := ip.concurrency()
	flagged := make(map[token.Pos]bool)
	check := func(pkg *Package, blk *ast.BlockStmt) {
		if pkg != pass.Pkg {
			return
		}
		info := pkg.Info
		inspectSkipFuncLits(blk, func(n ast.Node) {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return
			}
			var target ast.Expr
			switch as.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN:
				target = as.Lhs[0]
			case token.ASSIGN:
				// x = x + y (or x - y) on floats counts too.
				if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
					return
				}
				bin, ok := ast.Unparen(as.Rhs[0]).(*ast.BinaryExpr)
				if !ok || (bin.Op != token.ADD && bin.Op != token.SUB) {
					return
				}
				if coreName(as.Lhs[0]) == "" || coreName(as.Lhs[0]) != coreName(bin.X) {
					return
				}
				target = as.Lhs[0]
			default:
				return
			}
			id, _ := writeRoot(info, target)
			if id == nil {
				return
			}
			obj := info.Uses[id]
			if obj == nil {
				obj = info.Defs[id]
			}
			if obj == nil || flagged[id.Pos()] {
				return
			}
			v, ok := obj.(*types.Var)
			if !ok {
				return
			}
			if !floatType(info.Types[target].Type) {
				return
			}
			// Only state captured from outside the concurrent body (or
			// package-level) merges across goroutines; body-locals are
			// worker-private and fine.
			if v.Pos() >= blk.Pos() && v.Pos() <= blk.End() &&
				!(v.Pkg() != nil && v.Parent() == v.Pkg().Scope()) {
				return
			}
			flagged[id.Pos()] = true
			pass.Reportf(id.Pos(),
				"float accumulation into %s inside a concurrent body is interleaving-dependent (float addition is not associative); accumulate per worker and reduce in a fixed order after the join",
				v.Name())
		})
	}
	for lit, isConc := range cc.conc {
		if isConc {
			check(cc.scan.pkgOf[lit], lit.Body)
		}
	}
	for fn, isConc := range cc.concFuncs {
		if isConc {
			if decl := ip.graph.decls[fn]; decl != nil {
				check(ip.graph.pkgOf[fn], decl.Body)
			}
		}
	}
}

func floatType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
