// Command secmemlint runs the repository's domain-specific static analyzers
// — the machine-checked crypto invariants behind the paper's security
// argument (see internal/lint and the "Static analysis & invariants"
// sections of README.md and DESIGN.md).
//
// Usage:
//
//	secmemlint [flags] [packages]
//
// Packages are directory patterns like ./... or ./internal/core (default
// ./...). Exit status is 0 when clean, 1 when findings were reported, and 2
// on usage or load errors.
//
// Flags:
//
//	-format f         output format: text (default), json, or github
//	                  (GitHub Actions ::error workflow annotations)
//	-json             shorthand for -format=json
//	-enable  a,b,...  run only the named analyzers
//	-disable a,b,...  skip the named analyzers
//	-list             print the analyzer suite and exit
//	-dump-summaries   print the inferred interprocedural flow table
//	                  (per-function result/param/global/field effects and
//	                  sink facts) instead of findings, then exit 0
//	-dump-hotpaths    print the //secmemlint:hotpath call-graph closure —
//	                  one line (or JSON entry) per function hotpathalloc
//	                  holds to the zero-allocation standard, the same view
//	                  cmd/escapeaudit freezes into ESCAPE.json
//	-dump-goroutines  print every go statement with its enclosing loop
//	                  shape and the termination proof goroutinelife accepts
//	-suppressions     list every "//secmemlint:ignore" comment with
//	                  file:line, analyzers, and reason (make lint-fix-audit)
//
// The suite includes the taint-tracking analyzers (secretflow, cttiming,
// taintescape), which are seeded by "//secmemlint:secret" annotations on
// struct fields, variables, and function parameters/results; see
// internal/lint/taint.go for the annotation grammar.
//
// Deliberate exceptions are silenced at the site with a
// "//secmemlint:ignore <analyzer> <reason>" comment; the reason is required.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"secmem/internal/lint"
)

func main() {
	format := flag.String("format", "text", "output format: text, json, or github")
	jsonOut := flag.Bool("json", false, "shorthand for -format=json")
	enable := flag.String("enable", "", "comma-separated analyzers to run (default: all)")
	disable := flag.String("disable", "", "comma-separated analyzers to skip")
	list := flag.Bool("list", false, "print the analyzer suite and exit")
	dumpSummaries := flag.Bool("dump-summaries", false, "print the inferred interprocedural flow table and exit")
	dumpHotpaths := flag.Bool("dump-hotpaths", false, "print the hotpath call-graph closure and exit")
	dumpGoroutines := flag.Bool("dump-goroutines", false, "print every go statement with its loop shape and termination proof, then exit")
	suppressions := flag.Bool("suppressions", false, "list every suppression comment with its reason and exit")
	flag.Parse()
	if *jsonOut {
		*format = "json"
	}
	switch *format {
	case "text", "json", "github":
	default:
		fmt.Fprintf(os.Stderr, "secmemlint: unknown -format %q (want text, json, or github)\n", *format)
		os.Exit(2)
	}

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-15s %s\n", a.Name, a.Doc)
		}
		return
	}
	analyzers, err := selectAnalyzers(analyzers, *enable, *disable)
	if err != nil {
		fmt.Fprintln(os.Stderr, "secmemlint:", err)
		os.Exit(2)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	// Load the whole module, then report only on the selected patterns:
	// interprocedural summaries for out-of-scope callees keep a scoped run
	// like `secmemlint ./internal/core` as precise as a full one.
	all, pkgs, err := lint.LoadScoped(".", patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "secmemlint:", err)
		os.Exit(2)
	}
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(os.Stderr, "secmemlint: warning: %s: %v\n", pkg.Path, terr)
		}
	}

	if *dumpSummaries {
		fmt.Print(lint.DumpSummaries(all))
		return
	}
	if *dumpHotpaths {
		hot := lint.HotPathAudit(all)
		if *format == "json" {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(hot); err != nil {
				fmt.Fprintln(os.Stderr, "secmemlint:", err)
				os.Exit(2)
			}
			return
		}
		for _, h := range hot {
			mark := ""
			if h.Root {
				mark = " [root]"
			}
			if h.Suppressed {
				mark += " [suppressed]"
			}
			fmt.Printf("%s:%d-%d: %s%s (hot via %s)\n",
				relFile(h.File), h.StartLine, h.EndLine, h.Func, mark, strings.Join(h.Roots, ", "))
		}
		return
	}
	if *dumpGoroutines {
		sites := lint.GoroutineSites(all)
		if *format == "json" {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(sites); err != nil {
				fmt.Fprintln(os.Stderr, "secmemlint:", err)
				os.Exit(2)
			}
			return
		}
		for _, s := range sites {
			loop := ""
			if s.Loop != "" {
				loop = " loop=" + s.Loop
			}
			fmt.Printf("%s:%d: go in %s%s signal=%s\n", relFile(s.File), s.Line, s.In, loop, s.Signal)
		}
		return
	}
	if *suppressions {
		sups := lint.Suppressions(pkgs)
		if *format == "json" {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if sups == nil {
				sups = []lint.Suppression{}
			}
			if err := enc.Encode(sups); err != nil {
				fmt.Fprintln(os.Stderr, "secmemlint:", err)
				os.Exit(2)
			}
			return
		}
		for _, s := range sups {
			fmt.Printf("%s:%d: %s — %s\n", s.File, s.Line, strings.Join(s.Analyzers, ","), s.Reason)
		}
		return
	}

	diags := lint.RunScoped(pkgs, all, analyzers)
	relativize(diags)
	switch *format {
	case "json":
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(os.Stderr, "secmemlint:", err)
			os.Exit(2)
		}
	case "github":
		for _, d := range diags {
			fmt.Println(githubAnnotation(d))
		}
	default:
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

// githubAnnotation renders a diagnostic as a GitHub Actions workflow command
// so findings surface inline on the pull-request diff:
//
//	::error file=internal/core/x.go,line=12,col=3,title=secmemlint/maccompare::message
func githubAnnotation(d lint.Diagnostic) string {
	return fmt.Sprintf("::error file=%s,line=%d,col=%d,title=%s::%s",
		escapeProperty(d.File), d.Line, d.Col,
		escapeProperty("secmemlint/"+d.Analyzer), escapeData(d.Message))
}

// escapeData escapes a workflow-command message per the Actions runner rules.
func escapeData(s string) string {
	r := strings.NewReplacer("%", "%25", "\r", "%0D", "\n", "%0A")
	return r.Replace(s)
}

// escapeProperty additionally escapes the property-value delimiters.
func escapeProperty(s string) string {
	r := strings.NewReplacer("%", "%25", "\r", "%0D", "\n", "%0A", ":", "%3A", ",", "%2C")
	return r.Replace(s)
}

// selectAnalyzers applies -enable / -disable, rejecting unknown names so a
// typo cannot silently skip a check.
func selectAnalyzers(all []*lint.Analyzer, enable, disable string) ([]*lint.Analyzer, error) {
	byName := make(map[string]*lint.Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	parse := func(csv string) (map[string]bool, error) {
		set := make(map[string]bool)
		if csv == "" {
			return set, nil
		}
		for _, name := range strings.Split(csv, ",") {
			name = strings.TrimSpace(name)
			if byName[name] == nil {
				return nil, fmt.Errorf("unknown analyzer %q (see -list)", name)
			}
			set[name] = true
		}
		return set, nil
	}
	enabled, err := parse(enable)
	if err != nil {
		return nil, err
	}
	disabled, err := parse(disable)
	if err != nil {
		return nil, err
	}
	var out []*lint.Analyzer
	for _, a := range all {
		if len(enabled) > 0 && !enabled[a.Name] {
			continue
		}
		if disabled[a.Name] {
			continue
		}
		out = append(out, a)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no analyzers selected")
	}
	return out, nil
}

// relativize rewrites absolute file paths relative to the working directory
// when that makes them shorter and unambiguous.
func relativize(diags []lint.Diagnostic) {
	for i, d := range diags {
		diags[i].File = relFile(d.File)
	}
}

func relFile(file string) string {
	cwd, err := os.Getwd()
	if err != nil {
		return file
	}
	if rel, err := filepath.Rel(cwd, file); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return file
}
