// Command secmemobs renders, validates, and diffs the observability
// artifacts that secmemsim emits: the metrics registry JSON (-metrics) and
// the Chrome trace-event timeline (-trace).
//
// By default it prints plain-text tables: utilization/derived gauges,
// counters, latency histograms with interpolated percentiles, and per-track
// trace summaries. With -validate it instead checks the artifacts for the
// shape an instrumented protected run must have (nonzero ctrcache.*,
// merkle.*, and aes.* series; a loadable trace with overlapped Merkle-level
// work, monotone counter tracks, and no dropped events) and exits non-zero
// on violation — CI's trace-smoke target runs this. With -compare it diffs
// two metrics snapshots as a regression gate and exits non-zero when any
// series moved by more than -tol.
//
//	secmemsim -bench swim -metrics m.json -trace t.json -sample 1000
//	secmemobs -metrics m.json -trace t.json
//	secmemobs -metrics m.json -trace t.json -validate -wanttracks bus.util,dram.util
//	secmemobs -compare -tol 0.05 BENCH_metrics.json fresh.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"

	"secmem/internal/obsv"
	"secmem/internal/stats"
)

func main() {
	var (
		metrics    = flag.String("metrics", "", "metrics registry JSON written by secmemsim -metrics")
		trace      = flag.String("trace", "", "Chrome trace-event JSON written by secmemsim -trace")
		validate   = flag.Bool("validate", false, "validate artifact shape instead of rendering tables")
		wantTracks = flag.String("wanttracks", "", "comma-separated counter tracks that -validate requires in the trace")
		compare    = flag.Bool("compare", false, "regression gate: diff two metrics JSON files (old new) given as arguments")
		tol        = flag.Float64("tol", 0.05, "with -compare: maximum relative drift per series before failing")
	)
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			fatalf("-compare needs exactly two arguments: old.json new.json (got %d)", flag.NArg())
		}
		old := loadSnapshot(flag.Arg(0))
		cur := loadSnapshot(flag.Arg(1))
		viols := compareSnapshots(old, cur, *tol)
		if len(viols) > 0 {
			for _, v := range viols {
				fmt.Fprintf(os.Stderr, "secmemobs: REGRESSION: %s\n", v)
			}
			fmt.Fprintf(os.Stderr, "secmemobs: %d series drifted beyond tol=%.3g between %s and %s\n",
				len(viols), *tol, flag.Arg(0), flag.Arg(1))
			os.Exit(1)
		}
		fmt.Printf("secmemobs: metrics match within tol=%.3g (%d counters, %d gauges, %d histograms)\n",
			*tol, len(cur.Counters), len(cur.Gauges), len(cur.Histograms))
		return
	}

	if *metrics == "" {
		fatalf("-metrics is required")
	}

	snap := loadSnapshot(*metrics)
	var events []traceEvent
	var dropped uint64
	if *trace != "" {
		events, dropped = loadTrace(*trace)
	}

	if *validate {
		errs := validateSnapshot(snap)
		if *trace != "" {
			errs = append(errs, validateTrace(events, dropped, splitTracks(*wantTracks))...)
		}
		if len(errs) > 0 {
			for _, e := range errs {
				fmt.Fprintf(os.Stderr, "secmemobs: FAIL: %s\n", e)
			}
			os.Exit(1)
		}
		fmt.Printf("secmemobs: ok (%d counters, %d gauges, %d histograms",
			len(snap.Counters), len(snap.Gauges), len(snap.Histograms))
		if *trace != "" {
			fmt.Printf(", %d trace events", len(events))
		}
		fmt.Println(")")
		return
	}

	render(snap, events)
}

// splitTracks parses the -wanttracks list, dropping empty entries.
func splitTracks(s string) []string {
	var out []string
	for _, t := range strings.Split(s, ",") {
		if t = strings.TrimSpace(t); t != "" {
			out = append(out, t)
		}
	}
	return out
}

// loadSnapshot parses a registry snapshot JSON file.
func loadSnapshot(path string) obsv.Snapshot {
	b, err := os.ReadFile(path)
	if err != nil {
		fatalf("%v", err)
	}
	var snap obsv.Snapshot
	if err := json.Unmarshal(b, &snap); err != nil {
		fatalf("parsing %s: %v", path, err)
	}
	return snap
}

// traceEvent is the subset of the Chrome trace-event wire format the
// validator and renderer need. Cat carries the track name; counter ("C")
// events carry their value in Args.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   uint64         `json:"ts"`
	Dur  *uint64        `json:"dur"`
	ID   string         `json:"id"`
	Args map[string]any `json:"args"`
}

// loadTrace parses the trace file, returning its events and the recorder's
// dropped-event count from otherData.
func loadTrace(path string) ([]traceEvent, uint64) {
	b, err := os.ReadFile(path)
	if err != nil {
		fatalf("%v", err)
	}
	var tf struct {
		TraceEvents []traceEvent `json:"traceEvents"`
		OtherData   struct {
			DroppedEvents uint64 `json:"droppedEvents"`
		} `json:"otherData"`
	}
	if err := json.Unmarshal(b, &tf); err != nil {
		fatalf("parsing %s: %v", path, err)
	}
	return tf.TraceEvents, tf.OtherData.DroppedEvents
}

// validateSnapshot checks that the protected-run metric series an
// instrumented simulation must produce are present and nonzero, and that
// the run's trace recorder (if any) reported no dropped events.
func validateSnapshot(snap obsv.Snapshot) []string {
	var errs []string
	for _, prefix := range []string{"ctrcache.", "merkle.", "aes."} {
		nonzero := false
		for name, v := range snap.Counters {
			if strings.HasPrefix(name, prefix) && v > 0 {
				nonzero = true
				break
			}
		}
		if !nonzero {
			errs = append(errs, fmt.Sprintf("no nonzero %s* counter in metrics", prefix))
		}
	}
	if d, ok := snap.Gauges["trace.dropped"]; ok && d > 0 {
		errs = append(errs, fmt.Sprintf("trace recorder dropped %.0f events (metrics gauge trace.dropped); raise -tracelimit", d))
	}
	for _, name := range sortedKeys(snap.Histograms) {
		h := snap.Histograms[name]
		if h.Count == 0 {
			continue
		}
		if math.IsNaN(h.Mean()) || math.IsNaN(h.P50) || math.IsNaN(h.P95) || math.IsNaN(h.P99) {
			errs = append(errs, fmt.Sprintf("histogram %s has NaN summary statistics", name))
		}
		if h.P50 > h.P95 || h.P95 > h.P99 {
			errs = append(errs, fmt.Sprintf("histogram %s percentiles not monotone: p50=%g p95=%g p99=%g",
				name, h.P50, h.P95, h.P99))
		}
	}
	return errs
}

// validateTrace checks that the timeline is non-trivial, that every async
// range opened by a 'b' event is closed by a matching 'e' event (same
// cat/name/id, end ts >= begin ts — otherwise Perfetto renders the range at
// a bogus time or never closes it), that it shows at least one pair of
// overlapping spans on different Merkle levels — the parallel level
// authentication the trace exists to make visible — and that the counter
// tracks the sampler merged in are well-formed: each track's timestamps
// monotone non-decreasing, every sample carrying a numeric value, and every
// track named in want present. A nonzero dropped count is a failure: a
// truncated trace must not validate as complete.
func validateTrace(events []traceEvent, dropped uint64, want []string) []string {
	var errs []string
	if dropped > 0 {
		errs = append(errs, fmt.Sprintf("trace dropped %d events at the recorder cap; raise -tracelimit", dropped))
	}
	var complete, txns int
	type span struct {
		track  string
		lo, hi uint64
	}
	var merkle []span
	type rangeKey struct{ cat, name, id string }
	open := map[rangeKey]uint64{}
	lastTs := map[string]uint64{}    // counter track -> last seen ts
	counterN := map[string]int{}     // counter track -> samples
	badValue := map[string]bool{}    // counter track -> missing/mistyped value arg
	nonMonotone := map[string]bool{} // counter track -> ts went backwards
	for _, e := range events {
		switch e.Ph {
		case "X":
			complete++
			if strings.HasPrefix(e.Cat, "merkle.") && e.Dur != nil {
				merkle = append(merkle, span{e.Cat, e.Ts, e.Ts + *e.Dur})
			}
		case "b":
			txns++
			k := rangeKey{e.Cat, e.Name, e.ID}
			if e.ID == "" {
				errs = append(errs, fmt.Sprintf("'b' event %s/%s at ts=%d has no id", e.Cat, e.Name, e.Ts))
			} else if _, dup := open[k]; dup {
				errs = append(errs, fmt.Sprintf("duplicate open 'b' event %s/%s id=%s", e.Cat, e.Name, e.ID))
			} else {
				open[k] = e.Ts
			}
		case "e":
			k := rangeKey{e.Cat, e.Name, e.ID}
			begin, ok := open[k]
			if !ok {
				errs = append(errs, fmt.Sprintf("'e' event %s/%s id=%s has no matching 'b'", e.Cat, e.Name, e.ID))
				continue
			}
			if e.Ts < begin {
				errs = append(errs, fmt.Sprintf("async range %s/%s id=%s ends at ts=%d before it begins at ts=%d",
					e.Cat, e.Name, e.ID, e.Ts, begin))
			}
			delete(open, k)
		case "C":
			if last, seen := lastTs[e.Name]; seen && e.Ts < last {
				nonMonotone[e.Name] = true
			}
			lastTs[e.Name] = e.Ts
			counterN[e.Name]++
			if v, ok := e.Args["value"]; !ok {
				badValue[e.Name] = true
			} else if _, isNum := v.(float64); !isNum {
				badValue[e.Name] = true
			}
		}
	}
	var unclosed []string
	for k := range open {
		unclosed = append(unclosed, fmt.Sprintf("'b' event %s/%s id=%s never closed by an 'e'", k.cat, k.name, k.id))
	}
	sort.Strings(unclosed)
	errs = append(errs, unclosed...)
	if complete == 0 {
		errs = append(errs, "trace has no complete ('X') events")
	}
	if txns == 0 {
		errs = append(errs, "trace has no transaction ('b') events")
	}
	for _, name := range sortedKeys(nonMonotone) {
		errs = append(errs, fmt.Sprintf("counter track %s has non-monotone timestamps", name))
	}
	for _, name := range sortedKeys(badValue) {
		errs = append(errs, fmt.Sprintf("counter track %s has samples without a numeric value arg", name))
	}
	for _, name := range want {
		if counterN[name] == 0 {
			errs = append(errs, fmt.Sprintf("required counter track %s absent from trace (did the run pass -sample?)", name))
		}
	}
	overlap := false
	for i := 0; i < len(merkle) && !overlap; i++ {
		for j := i + 1; j < len(merkle); j++ {
			a, b := merkle[i], merkle[j]
			if a.track != b.track && a.lo < b.hi && b.lo < a.hi {
				overlap = true
				break
			}
		}
	}
	if !overlap {
		errs = append(errs, "no overlapping spans on distinct merkle levels (expected with parallel authentication)")
	}
	return errs
}

// relDrift is |new-old| normalized by |old| (clamped to 1 for fractional
// baselines so sub-unit gauges compare on absolute drift). A baseline of
// exactly zero has no scale to drift against: an identical zero reading is
// clean (drift 0), while any nonzero reading is a new signal — the series
// started firing after the baseline was cut — and returns +Inf so it trips
// every finite tolerance instead of silently dividing by the clamp.
func relDrift(old, cur float64) float64 {
	d := math.Abs(cur - old)
	if d == 0 {
		return 0
	}
	if old == 0 {
		return math.Inf(1)
	}
	base := math.Abs(old)
	if base < 1 {
		base = 1
	}
	return d / base
}

// driftViolation renders one over-tolerance drift. A +Inf drift means the
// series fired from a zero baseline — a new signal, not a scaled drift — so
// it is named as such instead of printing "+Inf".
func driftViolation(kind, name string, d float64, old, cur string) string {
	if math.IsInf(d, 1) {
		return fmt.Sprintf("%s %s fired from zero baseline (new signal, now %s)", kind, name, cur)
	}
	return fmt.Sprintf("%s %s drifted %.3g (old %s, new %s)", kind, name, d, old, cur)
}

// compareSnapshots diffs two metrics snapshots as a regression gate:
// counters and gauges must agree within tol relative drift, histograms must
// agree in count and sum, and both files must expose the same series set —
// a vanished or new series is a violation regardless of tolerance, because
// it means the instrumentation itself changed. Violations are sorted.
func compareSnapshots(old, cur obsv.Snapshot, tol float64) []string {
	var viols []string
	for _, name := range sortedKeys(old.Counters) {
		ov := old.Counters[name]
		nv, ok := cur.Counters[name]
		if !ok {
			viols = append(viols, fmt.Sprintf("counter %s missing from new snapshot (was %d)", name, ov))
			continue
		}
		if d := relDrift(float64(ov), float64(nv)); d > tol {
			viols = append(viols, driftViolation("counter", name, d, fmt.Sprint(ov), fmt.Sprint(nv)))
		}
	}
	for _, name := range sortedKeys(cur.Counters) {
		if _, ok := old.Counters[name]; !ok {
			viols = append(viols, fmt.Sprintf("counter %s new in snapshot (%d); regenerate the baseline", name, cur.Counters[name]))
		}
	}
	for _, name := range sortedKeys(old.Gauges) {
		ov := old.Gauges[name]
		nv, ok := cur.Gauges[name]
		if !ok {
			viols = append(viols, fmt.Sprintf("gauge %s missing from new snapshot (was %g)", name, ov))
			continue
		}
		if d := relDrift(ov, nv); d > tol {
			viols = append(viols, driftViolation("gauge", name, d, fmt.Sprintf("%g", ov), fmt.Sprintf("%g", nv)))
		}
	}
	for _, name := range sortedKeys(cur.Gauges) {
		if _, ok := old.Gauges[name]; !ok {
			viols = append(viols, fmt.Sprintf("gauge %s new in snapshot (%g); regenerate the baseline", name, cur.Gauges[name]))
		}
	}
	for _, name := range sortedKeys(old.Histograms) {
		oh := old.Histograms[name]
		nh, ok := cur.Histograms[name]
		if !ok {
			viols = append(viols, fmt.Sprintf("histogram %s missing from new snapshot", name))
			continue
		}
		if d := relDrift(float64(oh.Count), float64(nh.Count)); d > tol {
			viols = append(viols, driftViolation("histogram", name+" count", d, fmt.Sprint(oh.Count), fmt.Sprint(nh.Count)))
		}
		if d := relDrift(float64(oh.Sum), float64(nh.Sum)); d > tol {
			viols = append(viols, driftViolation("histogram", name+" sum", d, fmt.Sprint(oh.Sum), fmt.Sprint(nh.Sum)))
		}
	}
	for _, name := range sortedKeys(cur.Histograms) {
		if _, ok := old.Histograms[name]; !ok {
			viols = append(viols, fmt.Sprintf("histogram %s new in snapshot; regenerate the baseline", name))
		}
	}
	return viols
}

// render prints the snapshot (and trace summary) as plain-text tables.
func render(snap obsv.Snapshot, events []traceEvent) {
	if len(snap.Gauges) > 0 {
		tbl := stats.Table{
			Title: "Utilization and derived gauges",
			Cols:  []string{"gauge", "value"},
		}
		for _, name := range sortedKeys(snap.Gauges) {
			tbl.AddRow(name, fmt.Sprintf("%.4f", snap.Gauges[name]))
		}
		fmt.Print(tbl.String())
		fmt.Println()
	}
	if len(snap.Counters) > 0 {
		tbl := stats.Table{
			Title: "Counters",
			Cols:  []string{"counter", "count"},
		}
		for _, name := range sortedKeys(snap.Counters) {
			tbl.AddRow(name, fmt.Sprintf("%d", snap.Counters[name]))
		}
		fmt.Print(tbl.String())
		fmt.Println()
	}
	if len(snap.Histograms) > 0 {
		tbl := stats.Table{
			Title: "Latency histograms (cycles)",
			Cols:  []string{"histogram", "count", "mean", "p50", "p95", "p99", "min", "max"},
		}
		for _, name := range sortedKeys(snap.Histograms) {
			h := snap.Histograms[name]
			// Percentiles are recomputed from the buckets rather than read
			// from the p50/p95/p99 fields, so tables render correctly for
			// metrics files written before those fields existed.
			tbl.AddRow(name,
				fmt.Sprintf("%d", h.Count),
				fmt.Sprintf("%.1f", h.Mean()),
				fmt.Sprintf("%.1f", h.Quantile(0.50)),
				fmt.Sprintf("%.1f", h.Quantile(0.95)),
				fmt.Sprintf("%.1f", h.Quantile(0.99)),
				fmt.Sprintf("%d", h.Min),
				fmt.Sprintf("%d", h.Max))
		}
		fmt.Print(tbl.String())
		fmt.Println()
	}
	if len(events) > 0 {
		perTrack := map[string]int{}
		counters := map[string]int{}
		counterLast := map[string]float64{}
		for _, e := range events {
			switch e.Ph {
			case "M":
			case "C":
				counters[e.Name]++
				if v, ok := e.Args["value"].(float64); ok {
					counterLast[e.Name] = v
				}
			default:
				perTrack[e.Cat]++
			}
		}
		tbl := stats.Table{
			Title: "Trace events per track",
			Cols:  []string{"track", "events"},
		}
		for _, name := range sortedKeys(perTrack) {
			tbl.AddRow(name, fmt.Sprintf("%d", perTrack[name]))
		}
		fmt.Print(tbl.String())
		if len(counters) > 0 {
			fmt.Println()
			ctbl := stats.Table{
				Title: "Counter tracks (sampled time-series)",
				Cols:  []string{"track", "samples", "last value"},
			}
			for _, name := range sortedKeys(counters) {
				ctbl.AddRow(name, fmt.Sprintf("%d", counters[name]),
					fmt.Sprintf("%g", counterLast[name]))
			}
			fmt.Print(ctbl.String())
		}
	}
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "secmemobs: "+format+"\n", args...)
	os.Exit(2)
}
