// Command secmemobs renders and validates the observability artifacts that
// secmemsim emits: the metrics registry JSON (-metrics) and the Chrome
// trace-event timeline (-trace).
//
// By default it prints plain-text tables: utilization/derived gauges,
// counters, and latency histograms. With -validate it instead checks the
// artifacts for the shape an instrumented protected run must have (nonzero
// ctrcache.*, merkle.*, and aes.* series; a loadable trace with overlapped
// Merkle-level work) and exits non-zero on violation — CI's trace-smoke
// target runs this.
//
//	secmemsim -bench swim -metrics m.json -trace t.json
//	secmemobs -metrics m.json -trace t.json
//	secmemobs -metrics m.json -trace t.json -validate
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"secmem/internal/obsv"
	"secmem/internal/stats"
)

func main() {
	var (
		metrics  = flag.String("metrics", "", "metrics registry JSON written by secmemsim -metrics")
		trace    = flag.String("trace", "", "Chrome trace-event JSON written by secmemsim -trace")
		validate = flag.Bool("validate", false, "validate artifact shape instead of rendering tables")
	)
	flag.Parse()
	if *metrics == "" {
		fatalf("-metrics is required")
	}

	snap := loadSnapshot(*metrics)
	var events []traceEvent
	if *trace != "" {
		events = loadTrace(*trace)
	}

	if *validate {
		errs := validateSnapshot(snap)
		if *trace != "" {
			errs = append(errs, validateTrace(events)...)
		}
		if len(errs) > 0 {
			for _, e := range errs {
				fmt.Fprintf(os.Stderr, "secmemobs: FAIL: %s\n", e)
			}
			os.Exit(1)
		}
		fmt.Printf("secmemobs: ok (%d counters, %d gauges, %d histograms",
			len(snap.Counters), len(snap.Gauges), len(snap.Histograms))
		if *trace != "" {
			fmt.Printf(", %d trace events", len(events))
		}
		fmt.Println(")")
		return
	}

	render(snap, events)
}

// loadSnapshot parses a registry snapshot JSON file.
func loadSnapshot(path string) obsv.Snapshot {
	b, err := os.ReadFile(path)
	if err != nil {
		fatalf("%v", err)
	}
	var snap obsv.Snapshot
	if err := json.Unmarshal(b, &snap); err != nil {
		fatalf("parsing %s: %v", path, err)
	}
	return snap
}

// traceEvent is the subset of the Chrome trace-event wire format the
// validator and renderer need. Cat carries the track name.
type traceEvent struct {
	Name string  `json:"name"`
	Cat  string  `json:"cat"`
	Ph   string  `json:"ph"`
	Ts   uint64  `json:"ts"`
	Dur  *uint64 `json:"dur"`
	ID   string  `json:"id"`
}

func loadTrace(path string) []traceEvent {
	b, err := os.ReadFile(path)
	if err != nil {
		fatalf("%v", err)
	}
	var tf struct {
		TraceEvents []traceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(b, &tf); err != nil {
		fatalf("parsing %s: %v", path, err)
	}
	return tf.TraceEvents
}

// validateSnapshot checks that the protected-run metric series an
// instrumented simulation must produce are present and nonzero.
func validateSnapshot(snap obsv.Snapshot) []string {
	var errs []string
	for _, prefix := range []string{"ctrcache.", "merkle.", "aes."} {
		nonzero := false
		for name, v := range snap.Counters {
			if strings.HasPrefix(name, prefix) && v > 0 {
				nonzero = true
				break
			}
		}
		if !nonzero {
			errs = append(errs, fmt.Sprintf("no nonzero %s* counter in metrics", prefix))
		}
	}
	return errs
}

// validateTrace checks that the timeline is non-trivial, that every async
// range opened by a 'b' event is closed by a matching 'e' event (same
// cat/name/id, end ts >= begin ts — otherwise Perfetto renders the range at
// a bogus time or never closes it), and that it shows at least one pair of
// overlapping spans on different Merkle levels — the parallel level
// authentication the trace exists to make visible.
func validateTrace(events []traceEvent) []string {
	var errs []string
	var complete, txns int
	type span struct {
		track  string
		lo, hi uint64
	}
	var merkle []span
	type rangeKey struct{ cat, name, id string }
	open := map[rangeKey]uint64{}
	for _, e := range events {
		switch e.Ph {
		case "X":
			complete++
			if strings.HasPrefix(e.Cat, "merkle.") && e.Dur != nil {
				merkle = append(merkle, span{e.Cat, e.Ts, e.Ts + *e.Dur})
			}
		case "b":
			txns++
			k := rangeKey{e.Cat, e.Name, e.ID}
			if e.ID == "" {
				errs = append(errs, fmt.Sprintf("'b' event %s/%s at ts=%d has no id", e.Cat, e.Name, e.Ts))
			} else if _, dup := open[k]; dup {
				errs = append(errs, fmt.Sprintf("duplicate open 'b' event %s/%s id=%s", e.Cat, e.Name, e.ID))
			} else {
				open[k] = e.Ts
			}
		case "e":
			k := rangeKey{e.Cat, e.Name, e.ID}
			begin, ok := open[k]
			if !ok {
				errs = append(errs, fmt.Sprintf("'e' event %s/%s id=%s has no matching 'b'", e.Cat, e.Name, e.ID))
				continue
			}
			if e.Ts < begin {
				errs = append(errs, fmt.Sprintf("async range %s/%s id=%s ends at ts=%d before it begins at ts=%d",
					e.Cat, e.Name, e.ID, e.Ts, begin))
			}
			delete(open, k)
		}
	}
	var unclosed []string
	for k := range open {
		unclosed = append(unclosed, fmt.Sprintf("'b' event %s/%s id=%s never closed by an 'e'", k.cat, k.name, k.id))
	}
	sort.Strings(unclosed)
	errs = append(errs, unclosed...)
	if complete == 0 {
		errs = append(errs, "trace has no complete ('X') events")
	}
	if txns == 0 {
		errs = append(errs, "trace has no transaction ('b') events")
	}
	overlap := false
	for i := 0; i < len(merkle) && !overlap; i++ {
		for j := i + 1; j < len(merkle); j++ {
			a, b := merkle[i], merkle[j]
			if a.track != b.track && a.lo < b.hi && b.lo < a.hi {
				overlap = true
				break
			}
		}
	}
	if !overlap {
		errs = append(errs, "no overlapping spans on distinct merkle levels (expected with parallel authentication)")
	}
	return errs
}

// render prints the snapshot (and trace summary) as plain-text tables.
func render(snap obsv.Snapshot, events []traceEvent) {
	if len(snap.Gauges) > 0 {
		tbl := stats.Table{
			Title: "Utilization and derived gauges",
			Cols:  []string{"gauge", "value"},
		}
		for _, name := range sortedKeys(snap.Gauges) {
			tbl.AddRow(name, fmt.Sprintf("%.4f", snap.Gauges[name]))
		}
		fmt.Print(tbl.String())
		fmt.Println()
	}
	if len(snap.Counters) > 0 {
		tbl := stats.Table{
			Title: "Counters",
			Cols:  []string{"counter", "count"},
		}
		for _, name := range sortedKeys(snap.Counters) {
			tbl.AddRow(name, fmt.Sprintf("%d", snap.Counters[name]))
		}
		fmt.Print(tbl.String())
		fmt.Println()
	}
	if len(snap.Histograms) > 0 {
		tbl := stats.Table{
			Title: "Latency histograms (cycles)",
			Cols:  []string{"histogram", "count", "mean", "min", "max"},
		}
		for _, name := range sortedKeys(snap.Histograms) {
			h := snap.Histograms[name]
			mean := 0.0
			if h.Count > 0 {
				mean = float64(h.Sum) / float64(h.Count)
			}
			tbl.AddRow(name,
				fmt.Sprintf("%d", h.Count),
				fmt.Sprintf("%.1f", mean),
				fmt.Sprintf("%d", h.Min),
				fmt.Sprintf("%d", h.Max))
		}
		fmt.Print(tbl.String())
		fmt.Println()
	}
	if len(events) > 0 {
		perTrack := map[string]int{}
		for _, e := range events {
			if e.Ph != "M" {
				perTrack[e.Cat]++
			}
		}
		tbl := stats.Table{
			Title: "Trace events per track",
			Cols:  []string{"track", "events"},
		}
		for _, name := range sortedKeys(perTrack) {
			tbl.AddRow(name, fmt.Sprintf("%d", perTrack[name]))
		}
		fmt.Print(tbl.String())
	}
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "secmemobs: "+format+"\n", args...)
	os.Exit(2)
}
