package main

import (
	"math"
	"strings"
	"testing"

	"secmem/internal/obsv"
)

// TestRelDrift pins the drift metric's edge behavior, especially around zero
// baselines: a series flat at zero is clean, a series firing from zero is an
// unconditional new-signal violation (+Inf beats any finite tolerance), and
// no input combination divides by zero.
func TestRelDrift(t *testing.T) {
	cases := []struct {
		name     string
		old, cur float64
		want     float64
	}{
		{"zero to zero is clean", 0, 0, 0},
		{"zero to nonzero is new signal", 0, 3, math.Inf(1)},
		{"zero to tiny nonzero is new signal", 0, 1e-9, math.Inf(1)},
		{"zero to negative is new signal", 0, -2, math.Inf(1)},
		{"nonzero unchanged", 42, 42, 0},
		{"relative drift", 100, 150, 0.5},
		{"shrink to zero", 100, 0, 1},
		{"fractional baseline clamps to absolute", 0.25, 0.75, 0.5},
		{"negative baseline uses magnitude", -100, -150, 0.5},
	}
	for _, c := range cases {
		got := relDrift(c.old, c.cur)
		if got != c.want {
			t.Errorf("%s: relDrift(%g, %g) = %g, want %g", c.name, c.old, c.cur, got, c.want)
		}
		if math.IsNaN(got) {
			t.Errorf("%s: relDrift(%g, %g) is NaN", c.name, c.old, c.cur)
		}
	}
}

// TestCompareSnapshotsZeroBaseline drives the full gate across zero-baseline
// series: identical zeros pass, a counter firing from zero fails regardless
// of how loose the tolerance is, and the violation text names the new signal
// rather than printing an infinity.
func TestCompareSnapshotsZeroBaseline(t *testing.T) {
	old := obsv.Snapshot{
		Counters:   map[string]uint64{"aes.stall": 0, "dram.read": 1000},
		Gauges:     map[string]float64{"cache.util": 0},
		Histograms: map[string]obsv.HistSnapshot{"mac.latency": {Count: 0, Sum: 0}},
	}

	same := obsv.Snapshot{
		Counters:   map[string]uint64{"aes.stall": 0, "dram.read": 1000},
		Gauges:     map[string]float64{"cache.util": 0},
		Histograms: map[string]obsv.HistSnapshot{"mac.latency": {Count: 0, Sum: 0}},
	}
	if viols := compareSnapshots(old, same, 0.01); len(viols) != 0 {
		t.Fatalf("identical snapshots with zero-valued series produced violations: %v", viols)
	}

	fired := obsv.Snapshot{
		Counters:   map[string]uint64{"aes.stall": 7, "dram.read": 1000},
		Gauges:     map[string]float64{"cache.util": 0},
		Histograms: map[string]obsv.HistSnapshot{"mac.latency": {Count: 0, Sum: 0}},
	}
	viols := compareSnapshots(old, fired, 1e9) // absurdly loose tolerance
	if len(viols) != 1 {
		t.Fatalf("counter firing from zero: got %d violations %v, want exactly 1", len(viols), viols)
	}
	if !strings.Contains(viols[0], "new signal") || !strings.Contains(viols[0], "aes.stall") {
		t.Errorf("violation should name the new signal: %q", viols[0])
	}
	if strings.Contains(viols[0], "Inf") {
		t.Errorf("violation should not leak +Inf formatting: %q", viols[0])
	}
}

// TestCompareSnapshotsToleranceAndShape covers the ordinary gate paths: drift
// within tolerance passes, drift beyond it fails, and series set mismatches
// (vanished or new) are violations regardless of tolerance.
func TestCompareSnapshotsToleranceAndShape(t *testing.T) {
	old := obsv.Snapshot{
		Counters:   map[string]uint64{"dram.read": 1000},
		Gauges:     map[string]float64{"bus.util": 0.5},
		Histograms: map[string]obsv.HistSnapshot{"mac.latency": {Count: 10, Sum: 200}},
	}

	within := obsv.Snapshot{
		Counters:   map[string]uint64{"dram.read": 1040},
		Gauges:     map[string]float64{"bus.util": 0.52},
		Histograms: map[string]obsv.HistSnapshot{"mac.latency": {Count: 10, Sum: 208}},
	}
	if viols := compareSnapshots(old, within, 0.05); len(viols) != 0 {
		t.Fatalf("within-tolerance drift produced violations: %v", viols)
	}

	beyond := obsv.Snapshot{
		Counters:   map[string]uint64{"dram.read": 2000},
		Gauges:     map[string]float64{"bus.util": 0.5},
		Histograms: map[string]obsv.HistSnapshot{"mac.latency": {Count: 10, Sum: 200}},
	}
	viols := compareSnapshots(old, beyond, 0.05)
	if len(viols) != 1 || !strings.Contains(viols[0], "dram.read") || !strings.Contains(viols[0], "drifted") {
		t.Fatalf("over-tolerance counter drift: got %v, want one dram.read drift violation", viols)
	}

	reshaped := obsv.Snapshot{
		Counters:   map[string]uint64{"dram.write": 5},
		Gauges:     map[string]float64{"bus.util": 0.5},
		Histograms: map[string]obsv.HistSnapshot{"mac.latency": {Count: 10, Sum: 200}},
	}
	viols = compareSnapshots(old, reshaped, 1e9)
	if len(viols) != 2 {
		t.Fatalf("series set change: got %v, want missing dram.read + new dram.write", viols)
	}
	joined := strings.Join(viols, "\n")
	if !strings.Contains(joined, "dram.read missing") || !strings.Contains(joined, "dram.write new") {
		t.Errorf("series set violations should name both directions:\n%s", joined)
	}
}
