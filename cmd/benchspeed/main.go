// Command benchspeed runs the crypto-kernel and end-to-end speed benchmarks
// and records the results as a machine-readable JSON artifact, so raw-speed
// regressions are caught by diffing two artifacts instead of by noticing a
// campaign got slow.
//
//	benchspeed -out BENCH_speed.json             # measure, write artifact
//	benchspeed -benchtime 10ms -e2e=false        # quick kernel-only pass (CI smoke)
//	benchspeed -compare -tol 0.25 -etol 0.5 -ptol 0.6 -rtol 0.15 old.json new.json
//
// Compare mode exits non-zero when any kernel's ns/op in new.json exceeds
// old.json by more than -tol, when the serial (-etol) or parallel
// sharded-core (-ptol) end-to-end throughput drops by more than its own
// tolerance, or when the pipelined front-end's route_overhead_fraction or
// pipeline_fill_fraction grows by more than -rtol absolute points —
// independent knobs because the figures carry very different noise.
// Campaign seconds and speedup ratios stay informational.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"testing"
	"time"

	"secmem/internal/aescipher"
	"secmem/internal/config"
	"secmem/internal/gcmmode"
	"secmem/internal/gf128"
	"secmem/internal/harness"
)

// Artifact is the schema of BENCH_speed.json. Kernels are keyed by a stable
// name so compare mode can pair runs from different commits.
type Artifact struct {
	Schema     string             `json:"schema"`
	GoVersion  string             `json:"go_version"`
	GOARCH     string             `json:"goarch"`
	GOMAXPROCS int                `json:"gomaxprocs"`
	Benchtime  string             `json:"benchtime"`
	Kernels    map[string]Kernel  `json:"kernels"`
	Speedups   map[string]float64 `json:"speedups"`
	EndToEnd   *EndToEnd          `json:"end_to_end,omitempty"`
}

// Kernel is one testing.Benchmark result.
type Kernel struct {
	NsPerOp float64 `json:"ns_per_op"`
	MBPerS  float64 `json:"mb_per_s,omitempty"`
}

// EndToEnd holds the whole-simulator numbers: one reduced Figure 4 campaign
// and the simulated-instruction throughput of the default protected config,
// measured through both the classic serial core and the sharded parallel
// core (ShardSlices address slices on ParallelWorkers goroutines).
type EndToEnd struct {
	CampaignFig4Seconds float64 `json:"campaign_fig4_s"`
	SimInstrPerSecond   float64 `json:"sim_instr_per_s"`
	// SimInstrPerSecondParallel is the sharded-core throughput at
	// ParallelWorkers workers (GOMAXPROCS at measurement time). On a
	// single-core host this bounds below the serial figure — the sharded
	// model routes the stream before simulating it — and scales with
	// cores up to the slice count elsewhere.
	SimInstrPerSecondParallel float64 `json:"sim_instr_per_s_parallel,omitempty"`
	ParallelWorkers           int     `json:"parallel_workers,omitempty"`
	// MergeOverheadFraction is shard-merge wall time over total sharded
	// run time: the serial tail Amdahl charges the parallel core.
	MergeOverheadFraction float64 `json:"merge_overhead_fraction,omitempty"`
	// RouteOverheadFraction is the pipelined front-end's serial prefix:
	// wall time until the first sealed calendar segment reached a slice,
	// over total sharded run time. Before the pipeline, generation and
	// routing ran to completion ahead of any simulation (measured at ~0.39
	// of a one-worker sharded run); now only the first chunk is serial.
	RouteOverheadFraction float64 `json:"route_overhead_fraction,omitempty"`
	// PipelineFillFraction is wall time until routing completed, over
	// total sharded run time: the span during which slice simulation
	// overlaps generation and routing rather than running free.
	PipelineFillFraction float64 `json:"pipeline_fill_fraction,omitempty"`
}

const schemaID = "secmem-bench-speed/v1"

func key() []byte {
	k := make([]byte, 16)
	for i := range k {
		k[i] = byte(i*7 + 3)
	}
	return k
}

// kernels pairs each fast path with the oracle it replaced; the oracle rows
// exist so the artifact carries the speedup, not just an absolute number.
func kernels() map[string]func(b *testing.B) {
	buf := make([]byte, 1024)
	for i := range buf {
		buf[i] = byte(i)
	}
	var hb [16]byte
	copy(hb[:], buf[17:])
	return map[string]func(b *testing.B){
		"aes_block_fast": func(b *testing.B) {
			c := aescipher.MustNew(key())
			var in, out [16]byte
			b.SetBytes(16)
			for i := 0; i < b.N; i++ {
				c.Encrypt(out[:], in[:])
				in = out
			}
		},
		"aes_block_oracle": func(b *testing.B) {
			c := aescipher.MustNew(key())
			var in, out [16]byte
			b.SetBytes(16)
			for i := 0; i < b.N; i++ {
				c.EncryptOracle(out[:], in[:])
				in = out
			}
		},
		"ghash_kb_table": func(b *testing.B) {
			tbl := gf128.NewProductTable8(gf128.FromBytes(hb[:]))
			b.SetBytes(int64(len(buf)))
			for i := 0; i < b.N; i++ {
				gf128.GHASHTable8(&tbl, nil, buf)
			}
		},
		"ghash_kb_table4": func(b *testing.B) {
			tbl := gf128.NewProductTable(gf128.FromBytes(hb[:]))
			b.SetBytes(int64(len(buf)))
			for i := 0; i < b.N; i++ {
				gf128.GHASHTable(&tbl, nil, buf)
			}
		},
		"ghash_kb_serial": func(b *testing.B) {
			h := gf128.FromBytes(hb[:])
			b.SetBytes(int64(len(buf)))
			for i := 0; i < b.N; i++ {
				var y gf128.Element
				for off := 0; off < len(buf); off += 16 {
					y = y.Xor(gf128.FromBytes(buf[off : off+16])).Mul(h)
				}
			}
		},
		"encrypt_block": func(b *testing.B) {
			p := gcmmode.NewPadGen(aescipher.MustNew(key()), 0, 1)
			src := make([]byte, gcmmode.MemBlockSize)
			dst := make([]byte, gcmmode.MemBlockSize)
			b.SetBytes(gcmmode.MemBlockSize)
			for i := 0; i < b.N; i++ {
				p.EncryptBlock(dst, src, uint64(i)<<6, 1)
			}
		},
		"mac64": func(b *testing.B) {
			p := gcmmode.NewPadGen(aescipher.MustNew(key()), 0, 1)
			ct := make([]byte, gcmmode.MemBlockSize)
			for i := range ct {
				ct[i] = byte(i * 5)
			}
			b.SetBytes(gcmmode.MemBlockSize)
			for i := 0; i < b.N; i++ {
				p.MAC(ct, uint64(i)<<6, 1, 64)
			}
		},
	}
}

func measure(benchtime string, e2e bool) (*Artifact, error) {
	// testing.Benchmark reads the package-level -test.benchtime flag;
	// testing.Init registers it so it can be set outside a test binary.
	if err := flag.Set("test.benchtime", benchtime); err != nil {
		return nil, fmt.Errorf("bad -benchtime %q: %v", benchtime, err)
	}
	art := &Artifact{
		Schema:     schemaID,
		GoVersion:  runtime.Version(),
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Benchtime:  benchtime,
		Kernels:    map[string]Kernel{},
		Speedups:   map[string]float64{},
	}
	ks := kernels()
	for _, name := range sortedNames(ks) {
		r := testing.Benchmark(ks[name])
		k := Kernel{NsPerOp: float64(r.T.Nanoseconds()) / float64(r.N)}
		if r.Bytes > 0 && r.T > 0 {
			k.MBPerS = float64(r.Bytes) * float64(r.N) / 1e6 / r.T.Seconds()
		}
		art.Kernels[name] = k
		fmt.Printf("%-18s %12.2f ns/op %10.2f MB/s\n", name, k.NsPerOp, k.MBPerS)
	}
	ratio := func(num, den string) float64 {
		if d := art.Kernels[den].NsPerOp; d > 0 {
			return art.Kernels[num].NsPerOp / d
		}
		return 0
	}
	art.Speedups["aes_block_fast_vs_oracle"] = ratio("aes_block_oracle", "aes_block_fast")
	art.Speedups["ghash_table_vs_serial"] = ratio("ghash_kb_serial", "ghash_kb_table")
	art.Speedups["ghash_table8_vs_table4"] = ratio("ghash_kb_table4", "ghash_kb_table")
	fmt.Printf("speedup aes_block %.2fx, ghash %.2fx (8-bit vs 4-bit table %.2fx)\n",
		art.Speedups["aes_block_fast_vs_oracle"], art.Speedups["ghash_table_vs_serial"],
		art.Speedups["ghash_table8_vs_table4"])

	if e2e {
		// Functional mode makes every simulated transfer pay real pad
		// generation, MAC, and tree maintenance — the figure campaigns
		// themselves run timing-only and would not see kernel changes.
		t0 := time.Now()
		r := harness.New(harness.Options{
			Instructions: 300_000, Seed: 1,
			Benches:    []string{"swim", "mcf", "crafty"},
			Functional: true,
		})
		r.Fig4()
		if err := r.Err(); err != nil {
			return nil, err
		}
		campaign := time.Since(t0).Seconds()

		r2 := harness.New(harness.Options{Instructions: 1_000_000, Seed: 1})
		t0 = time.Now()
		out := r2.Run("swim", config.Default())
		ips := float64(out.CPU.Instructions) / time.Since(t0).Seconds()

		// The same workload through the sharded parallel core, at one
		// worker per available CPU. Best of three: the figure is a
		// capability claim, and a single run on a loaded machine
		// understates it.
		workers := runtime.GOMAXPROCS(0)
		r3 := harness.New(harness.Options{Instructions: 1_000_000, Seed: 1, Shards: workers})
		var pips, mergeFrac, routeFrac, fillFrac float64
		for try := 0; try < 3; try++ {
			t0 = time.Now()
			pout := r3.Run("swim", config.Default())
			el := time.Since(t0)
			if got := float64(pout.CPU.Instructions) / el.Seconds(); got > pips {
				pips = got
				mergeFrac = float64(r3.MergeNanos()) / float64(el.Nanoseconds())
				routeFrac, fillFrac = r3.PipelineStats()
			}
		}
		art.EndToEnd = &EndToEnd{
			CampaignFig4Seconds:       campaign,
			SimInstrPerSecond:         ips,
			SimInstrPerSecondParallel: pips,
			ParallelWorkers:           workers,
			MergeOverheadFraction:     mergeFrac,
			RouteOverheadFraction:     routeFrac,
			PipelineFillFraction:      fillFrac,
		}
		fmt.Printf("end-to-end: fig4 campaign %.2fs, %.0f sim instr/s serial, %.0f sim instr/s sharded (%d workers, merge %.2f%%, route overhead %.2f%%, pipeline fill %.2f%%)\n",
			campaign, ips, pips, workers, mergeFrac*100, routeFrac*100, fillFrac*100)
	}
	return art, nil
}

// sortedNames returns a map's keys in sorted order, so benchmark output and
// compare reports print deterministically run to run.
func sortedNames[V any](m map[string]V) []string {
	names := make([]string, 0, len(m))
	for k := range m {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

func load(path string) (*Artifact, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var a Artifact
	if err := json.Unmarshal(data, &a); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	if a.Schema != schemaID {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, a.Schema, schemaID)
	}
	return &a, nil
}

// compare gates on kernel ns/op (tol), serial end-to-end throughput (etol),
// and parallel sharded-core throughput (ptol) — three independent
// tolerances, because the three figures have very different noise: kernels
// are tight, end-to-end numbers track machine load, and the parallel
// figure additionally tracks how many CPUs the measuring host actually
// has. Campaign seconds and speedup ratios stay informational.
func compare(oldPath, newPath string, tol, etol, ptol, rtol float64) error {
	oldA, err := load(oldPath)
	if err != nil {
		return err
	}
	newA, err := load(newPath)
	if err != nil {
		return err
	}
	regressions := 0
	for _, name := range sortedNames(oldA.Kernels) {
		ok := oldA.Kernels[name]
		nk, present := newA.Kernels[name]
		if !present {
			fmt.Printf("%-18s missing from %s\n", name, newPath)
			regressions++
			continue
		}
		delta := nk.NsPerOp/ok.NsPerOp - 1
		mark := "ok"
		if delta > tol {
			mark = "REGRESSION"
			regressions++
		}
		fmt.Printf("%-18s %12.2f -> %12.2f ns/op  %+6.1f%%  %s\n",
			name, ok.NsPerOp, nk.NsPerOp, delta*100, mark)
	}
	if oldA.EndToEnd != nil && newA.EndToEnd != nil {
		fmt.Printf("%-18s %12.2f -> %12.2f s (informational)\n",
			"campaign_fig4", oldA.EndToEnd.CampaignFig4Seconds, newA.EndToEnd.CampaignFig4Seconds)
		// Throughput figures gate on slowdown: old/new - 1 is the fraction
		// of throughput lost.
		gate := func(name string, old, new, tol float64) {
			if old <= 0 || new <= 0 {
				fmt.Printf("%-18s n/a (absent from one artifact)\n", name)
				return
			}
			slow := old/new - 1
			mark := "ok"
			if slow > tol {
				mark = "REGRESSION"
				regressions++
			}
			fmt.Printf("%-18s %12.0f -> %12.0f instr/s  %+6.1f%%  %s (tol %.0f%%)\n",
				name, old, new, (new/old-1)*100, mark, tol*100)
		}
		gate("sim_speed", oldA.EndToEnd.SimInstrPerSecond, newA.EndToEnd.SimInstrPerSecond, etol)
		gate("sim_speed_parallel", oldA.EndToEnd.SimInstrPerSecondParallel, newA.EndToEnd.SimInstrPerSecondParallel, ptol)
		// Route fractions gate on absolute growth: they are small numbers
		// (first-chunk prefixes, a few percent) whose relative noise is
		// huge, but a refactor that reintroduces a route-then-simulate
		// barrier shows up as tens of points of absolute growth.
		gateFrac := func(name string, old, new float64) {
			if old <= 0 && new <= 0 {
				return
			}
			mark := "ok"
			if new-old > rtol {
				mark = "REGRESSION"
				regressions++
			}
			fmt.Printf("%-18s %11.2f%% -> %11.2f%%  %s (rtol %+.0f pts)\n",
				name, old*100, new*100, mark, rtol*100)
		}
		gateFrac("route_overhead", oldA.EndToEnd.RouteOverheadFraction, newA.EndToEnd.RouteOverheadFraction)
		gateFrac("pipeline_fill", oldA.EndToEnd.PipelineFillFraction, newA.EndToEnd.PipelineFillFraction)
	}
	if regressions > 0 {
		return fmt.Errorf("%d figure(s) regressed beyond tolerance", regressions)
	}
	fmt.Printf("bench-compare: ok (kernels within %.0f%%, end-to-end within %.0f%%, parallel within %.0f%%)\n",
		tol*100, etol*100, ptol*100)
	return nil
}

func main() {
	testing.Init()
	var (
		out       = flag.String("out", "BENCH_speed.json", "write the benchmark artifact to this file")
		benchtime = flag.String("benchtime", "1s", "per-kernel measurement time (testing -benchtime syntax)")
		e2e       = flag.Bool("e2e", true, "also measure the end-to-end campaign and simulator throughput")
		doCompare = flag.Bool("compare", false, "compare two artifacts: benchspeed -compare [-tol F] [-etol F] [-ptol F] old.json new.json")
		tol       = flag.Float64("tol", 0.25, "allowed fractional slowdown per kernel in -compare mode")
		etol      = flag.Float64("etol", 0.5, "allowed fractional serial end-to-end throughput loss in -compare mode")
		ptol      = flag.Float64("ptol", 0.6, "allowed fractional parallel (sharded-core) throughput loss in -compare mode; looser than -etol because the figure also tracks the measuring host's core count")
		rtol      = flag.Float64("rtol", 0.15, "allowed absolute growth (in fraction points) of route_overhead_fraction and pipeline_fill_fraction in -compare mode")
	)
	flag.Parse()

	if *doCompare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: benchspeed -compare [-tol F] old.json new.json")
			os.Exit(2)
		}
		if err := compare(flag.Arg(0), flag.Arg(1), *tol, *etol, *ptol, *rtol); err != nil {
			fmt.Fprintf(os.Stderr, "benchspeed: %v\n", err)
			os.Exit(1)
		}
		return
	}

	art, err := measure(*benchtime, *e2e)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchspeed: %v\n", err)
		os.Exit(1)
	}
	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchspeed: %v\n", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(art); err != nil {
		fmt.Fprintf(os.Stderr, "benchspeed: %v\n", err)
		os.Exit(1)
	}
	f.Close()
	fmt.Printf("speed artifact written to %s\n", *out)
}
