// Command secmemsim runs one secure-memory simulation: a synthetic SPEC
// 2000-like workload over a configurable protection scheme, printing IPC,
// normalized IPC, and the controller/counter/re-encryption statistics.
//
// Examples:
//
//	secmemsim -bench swim -enc split -auth gcm
//	secmemsim -bench mcf -enc mono -bits 16 -auth sha -shalat 320 -req safe
//	secmemsim -bench art -enc direct -instr 5000000
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"secmem/internal/config"
	"secmem/internal/core"
	"secmem/internal/harness"
	"secmem/internal/obsv"
	"secmem/internal/stats"
	"secmem/internal/trace"
)

func main() {
	var (
		bench    = flag.String("bench", "swim", "workload: one of the 21 SPEC 2000 profiles, or 'all'")
		enc      = flag.String("enc", "split", "encryption: none|direct|mono|split|global")
		bits     = flag.Int("bits", 64, "monolithic/global counter bits (8|16|32|64)")
		auth     = flag.String("auth", "gcm", "authentication: none|sha|gcm")
		shaLat   = flag.Uint64("shalat", 320, "SHA-1 engine latency in cycles")
		req      = flag.String("req", "commit", "authentication requirement: lazy|commit|safe")
		macBits  = flag.Int("mac", 64, "MAC size in bits (32|64|128)")
		parallel = flag.Bool("parallel", true, "authenticate Merkle levels in parallel")
		ctrAuth  = flag.Bool("ctrauth", true, "authenticate counters on fetch (Section 4.3 fix)")
		sncKB    = flag.Int("snc", 32, "counter cache size in KB")
		instr    = flag.Uint64("instr", 2_000_000, "instructions to simulate")
		seed     = flag.Int64("seed", 1, "workload seed")
		timeline = flag.Bool("timeline", false, "print the Figure 1 L2-miss timelines for this configuration and exit")
		overhead = flag.Bool("overhead", false, "print memory space overheads for the paper's schemes and exit")

		metricsOut = flag.String("metrics", "", "write the observability registry (counters/gauges/histograms) as JSON to this file")
		traceOut   = flag.String("trace", "", "write a Chrome trace-event JSON timeline (chrome://tracing, Perfetto) to this file")
		traceLimit = flag.Int("tracelimit", 0, "cap on recorded trace events (0 = default cap)")
	)
	flag.Parse()

	cfg := config.Default()
	switch strings.ToLower(*enc) {
	case "none":
		cfg.Enc = config.EncNone
	case "direct":
		cfg.Enc = config.EncDirect
	case "mono":
		cfg.Enc = config.EncCounterMono
	case "split":
		cfg.Enc = config.EncCounterSplit
	case "global":
		cfg.Enc = config.EncCounterGlobal
	default:
		fatalf("unknown -enc %q", *enc)
	}
	cfg.MonoCounterBits = *bits
	switch strings.ToLower(*auth) {
	case "none":
		cfg.Auth = config.AuthNone
		cfg.AuthenticateCounters = false
	case "sha":
		cfg.Auth = config.AuthSHA1
	case "gcm":
		cfg.Auth = config.AuthGCM
	default:
		fatalf("unknown -auth %q", *auth)
	}
	cfg.SHA1Latency = *shaLat
	switch strings.ToLower(*req) {
	case "lazy":
		cfg.Req = config.AuthLazy
	case "commit":
		cfg.Req = config.AuthCommit
	case "safe":
		cfg.Req = config.AuthSafe
	default:
		fatalf("unknown -req %q", *req)
	}
	cfg.MACBits = *macBits
	cfg.ParallelAuth = *parallel
	if cfg.Auth != config.AuthNone {
		cfg.AuthenticateCounters = *ctrAuth
	}
	cfg.CounterCache.SizeBytes = *sncKB << 10
	if err := cfg.Validate(); err != nil {
		fatalf("invalid configuration: %v", err)
	}
	if *timeline {
		fmt.Print(core.Figure1Table(cfg).String())
		return
	}
	if *overhead {
		schemes := map[string]config.SystemConfig{"current": cfg}
		order := []string{"current"}
		for _, name := range harness.CombinedNames() {
			schemes[name] = harness.Combined(name)
			order = append(order, name)
		}
		fmt.Print(core.OverheadTable(schemes, order).String())
		return
	}

	benches := []string{*bench}
	if *bench == "all" {
		benches = trace.Names()
	} else if _, ok := trace.Profiles()[*bench]; !ok {
		fatalf("unknown benchmark %q; available: %s, all", *bench, strings.Join(trace.Names(), " "))
	}

	// One registry is shared across the (sequential) runs: counters
	// accumulate over all selected benchmarks; gauges reflect the last run.
	// The trace recorder is single-benchmark only — every run restarts at
	// cycle 0, so spans from a second run would overlap the first on the
	// same tracks and make the timeline ambiguous. Baseline runs stay
	// uninstrumented so the metrics describe the protected configuration
	// only.
	var obs harness.Obs
	if *metricsOut != "" {
		obs.Reg = obsv.NewRegistry()
	}
	if *traceOut != "" {
		if len(benches) > 1 {
			fatalf("-trace requires a single benchmark (runs restart at cycle 0 and would overlap in the timeline); pick one with -bench")
		}
		obs.Rec = obsv.NewRecorder(*traceLimit)
	}

	r := harness.New(harness.Options{Instructions: *instr, Seed: *seed, Benches: benches})
	tbl := stats.Table{
		Title: fmt.Sprintf("secmemsim: %s, %s requirement, %d instructions", cfg.SchemeName(), cfg.Req, *instr),
		Cols: []string{"bench", "IPC", "norm IPC", "L2 miss", "ctr hit", "timely pad",
			"page reencs", "mac fetch", "tamper"},
	}
	for _, b := range benches {
		base := r.Baseline(b)
		out := r.RunObserved(b, cfg, obs)
		tbl.AddRow(b,
			stats.F(out.IPC),
			stats.F(out.IPC/base),
			fmt.Sprintf("%d", out.CPU.L2Misses),
			stats.Pct(out.CtrHitRate()),
			stats.Pct(out.TimelyPadRate()),
			fmt.Sprintf("%d", out.RSR.PageReencs),
			fmt.Sprintf("%d", out.Ctl.MacFetches),
			fmt.Sprintf("%d", out.Ctl.TamperDetected),
		)
	}
	fmt.Print(tbl.String())

	if obs.Reg != nil {
		if err := writeTo(*metricsOut, obs.Reg.WriteJSON); err != nil {
			fatalf("writing metrics: %v", err)
		}
		fmt.Printf("metrics written to %s\n", *metricsOut)
	}
	if obs.Rec != nil {
		if err := writeTo(*traceOut, obs.Rec.WriteJSON); err != nil {
			fatalf("writing trace: %v", err)
		}
		if d := obs.Rec.Dropped(); d > 0 {
			fmt.Fprintf(os.Stderr, "secmemsim: warning: %d trace events dropped at the cap (raise -tracelimit)\n", d)
		}
		fmt.Printf("trace written to %s (%d events; load in chrome://tracing or ui.perfetto.dev)\n",
			*traceOut, obs.Rec.Len())
	}
}

// writeTo writes via fn into path, creating or truncating it.
func writeTo(path string, fn func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "secmemsim: "+format+"\n", args...)
	os.Exit(2)
}
