// Command secmemsim runs one secure-memory simulation: a synthetic SPEC
// 2000-like workload over a configurable protection scheme, printing IPC,
// normalized IPC, and the controller/counter/re-encryption statistics.
//
// Examples:
//
//	secmemsim -bench swim -enc split -auth gcm
//	secmemsim -bench mcf -enc mono -bits 16 -auth sha -shalat 320 -req safe
//	secmemsim -bench art -enc direct -instr 5000000
//	secmemsim -bench swim -trace t.json -sample 1000 -timeseries ts.json
//	secmemsim -bench swim -instr 5000000 -sample 1000 -serve 127.0.0.1:9190
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"secmem/internal/config"
	"secmem/internal/core"
	"secmem/internal/harness"
	"secmem/internal/obsv"
	"secmem/internal/stats"
	"secmem/internal/trace"
)

func main() {
	var (
		bench    = flag.String("bench", "swim", "workload: one of the 21 SPEC 2000 profiles, or 'all'")
		enc      = flag.String("enc", "split", "encryption: none|direct|mono|split|global")
		bits     = flag.Int("bits", 64, "monolithic/global counter bits (8|16|32|64)")
		auth     = flag.String("auth", "gcm", "authentication: none|sha|gcm")
		shaLat   = flag.Uint64("shalat", 320, "SHA-1 engine latency in cycles")
		req      = flag.String("req", "commit", "authentication requirement: lazy|commit|safe")
		macBits  = flag.Int("mac", 64, "MAC size in bits (32|64|128)")
		parallel = flag.Bool("parallel", true, "authenticate Merkle levels in parallel")
		ctrAuth  = flag.Bool("ctrauth", true, "authenticate counters on fetch (Section 4.3 fix)")
		sncKB    = flag.Int("snc", 32, "counter cache size in KB")
		instr    = flag.Uint64("instr", 2_000_000, "instructions to simulate")
		seed     = flag.Int64("seed", 1, "workload seed")
		funcMode = flag.Bool("functional", false, "enable the byte-level crypto layer (real AES pads, GHASH MACs) under the timing model")
		shards   = flag.Int("shards", 0, "run the address-sliced parallel sim core on N worker goroutines (0 = classic serial model; results are identical for every N > 0)")
		routeWk  = flag.Int("routeworkers", 0, "with -shards: replay-worker count of the pipelined trace front-end (0 = GOMAXPROCS; results are identical for every count)")
		routeChk = flag.Int("routechunk", 0, "with -shards: pipeline chunk size in instructions (0 = default; wall-time knob only, results are identical)")
		hashWk   = flag.Int("hashworkers", 0, "in functional mode, MAC independent Merkle levels on N concurrent workers (0/1 = serial hashing; results are identical)")
		timeline = flag.Bool("timeline", false, "print the Figure 1 L2-miss timelines for this configuration and exit")
		overhead = flag.Bool("overhead", false, "print memory space overheads for the paper's schemes and exit")

		metricsOut = flag.String("metrics", "", "write the observability registry (counters/gauges/histograms) as JSON to this file")
		traceOut   = flag.String("trace", "", "write a Chrome trace-event JSON timeline (chrome://tracing, Perfetto) to this file")
		traceLimit = flag.Int("tracelimit", 0, "cap on recorded trace events (0 = default cap)")
		sample     = flag.Uint64("sample", 0, "snapshot metric time-series every N simulated cycles (0 = off; single benchmark only)")
		sampleCap  = flag.Int("samplecap", 0, "time-series ring capacity in samples (0 = default; ring keeps the newest window)")
		tsOut      = flag.String("timeseries", "", "write the sampled time-series as sorted-column JSON to this file (requires -sample)")
		tsCSV      = flag.String("timeseriescsv", "", "write the sampled time-series as CSV to this file (requires -sample)")
		serveAddr  = flag.String("serve", "", "serve live observability over HTTP on this address: /metrics (Prometheus), /timeseries.json, /trace.json, /debug/pprof/")
		serveFor   = flag.Duration("servefor", 0, "with -serve: keep serving this long after the run completes (0 = until interrupted)")
	)
	flag.Parse()

	cfg := config.Default()
	switch strings.ToLower(*enc) {
	case "none":
		cfg.Enc = config.EncNone
	case "direct":
		cfg.Enc = config.EncDirect
	case "mono":
		cfg.Enc = config.EncCounterMono
	case "split":
		cfg.Enc = config.EncCounterSplit
	case "global":
		cfg.Enc = config.EncCounterGlobal
	default:
		fatalf("unknown -enc %q", *enc)
	}
	cfg.MonoCounterBits = *bits
	switch strings.ToLower(*auth) {
	case "none":
		cfg.Auth = config.AuthNone
		cfg.AuthenticateCounters = false
	case "sha":
		cfg.Auth = config.AuthSHA1
	case "gcm":
		cfg.Auth = config.AuthGCM
	default:
		fatalf("unknown -auth %q", *auth)
	}
	cfg.SHA1Latency = *shaLat
	switch strings.ToLower(*req) {
	case "lazy":
		cfg.Req = config.AuthLazy
	case "commit":
		cfg.Req = config.AuthCommit
	case "safe":
		cfg.Req = config.AuthSafe
	default:
		fatalf("unknown -req %q", *req)
	}
	cfg.MACBits = *macBits
	cfg.ParallelAuth = *parallel
	if cfg.Auth != config.AuthNone {
		cfg.AuthenticateCounters = *ctrAuth
	}
	cfg.CounterCache.SizeBytes = *sncKB << 10
	if *hashWk < 0 {
		fatalf("-hashworkers must be >= 0")
	}
	cfg.HashWorkers = *hashWk
	if err := cfg.Validate(); err != nil {
		fatalf("invalid configuration: %v", err)
	}
	if *timeline {
		fmt.Print(core.Figure1Table(cfg).String())
		return
	}
	if *overhead {
		schemes := map[string]config.SystemConfig{"current": cfg}
		order := []string{"current"}
		for _, name := range harness.CombinedNames() {
			schemes[name] = harness.Combined(name)
			order = append(order, name)
		}
		fmt.Print(core.OverheadTable(schemes, order).String())
		return
	}

	benches := []string{*bench}
	if *bench == "all" {
		benches = trace.Names()
	} else if _, ok := trace.Profiles()[*bench]; !ok {
		fatalf("unknown benchmark %q; available: %s, all", *bench, strings.Join(trace.Names(), " "))
	}

	// The trace recorder and the time-series sampler are single-benchmark
	// only — every run restarts at cycle 0, so a second run's spans and
	// samples would overlap the first's on the same timeline. The live
	// server rides on the sampler, so it inherits the restriction.
	if len(benches) > 1 {
		switch {
		case *traceOut != "":
			fatalf("-trace requires a single benchmark (runs restart at cycle 0 and would overlap in the timeline); pick one with -bench")
		case *sample > 0 || *serveAddr != "":
			fatalf("-sample/-serve require a single benchmark (runs restart at cycle 0); pick one with -bench")
		}
	}
	if (*tsOut != "" || *tsCSV != "") && *sample == 0 {
		fatalf("-timeseries/-timeseriescsv require -sample N")
	}
	if *serveAddr != "" && *sample == 0 {
		// Live exposition needs a publication cadence; default to a sample
		// every 10k cycles rather than serving a frozen snapshot.
		*sample = 10_000
	}

	var obs harness.Obs
	if *metricsOut != "" || *serveAddr != "" {
		obs.Reg = obsv.NewRegistry()
	}
	if *traceOut != "" || (*serveAddr != "" && len(benches) == 1) {
		obs.Rec = obsv.NewRecorder(*traceLimit)
	}
	if *sample > 0 {
		obs.Smp = obsv.NewSampler(*sample, *sampleCap)
	}

	// Live exposition: listen before the run starts so scrapers can
	// connect immediately; each sample boundary publishes a fresh
	// immutable snapshot for /metrics.
	var server *obsv.Server
	if *serveAddr != "" {
		server = obsv.NewServer(obs.Smp)
		server.Publish(obs.Reg.Snapshot())
		reg := obs.Reg
		srv := server
		obs.Smp.OnSample(func(uint64) { srv.Publish(reg.Snapshot()) })
		ln, err := net.Listen("tcp", *serveAddr)
		if err != nil {
			fatalf("-serve %s: %v", *serveAddr, err)
		}
		fmt.Printf("serving observability on http://%s (metrics, timeseries.json, trace.json, debug/pprof)\n", ln.Addr())
		//secmemlint:ignore goroutinelife serves until process exit by design; http.Serve returns only on listener close and the process is the lifetime
		go func() {
			if err := http.Serve(ln, server); err != nil {
				fmt.Fprintf(os.Stderr, "secmemsim: http server: %v\n", err)
			}
		}()
	}

	if *shards < 0 {
		fatalf("-shards must be >= 0")
	}
	r := harness.New(harness.Options{Instructions: *instr, Seed: *seed, Benches: benches,
		Functional: *funcMode, Shards: *shards, RouteWorkers: *routeWk, RouteChunk: *routeChk})
	title := fmt.Sprintf("secmemsim: %s, %s requirement, %d instructions", cfg.SchemeName(), cfg.Req, *instr)
	if *shards > 0 {
		title += fmt.Sprintf(", %d-slice sharded core (%d workers)", harness.ShardSlices, *shards)
	}
	tbl := stats.Table{
		Title: title,
		Cols: []string{"bench", "IPC", "norm IPC", "L2 miss", "ctr hit", "timely pad",
			"page reencs", "mac fetch", "tamper"},
	}
	outs := make([]harness.RunOut, len(benches))
	if obs.Reg != nil && len(benches) > 1 {
		// Multi-benchmark metrics: run the campaign in parallel, one
		// registry shard per worker, and merge deterministically — counters
		// and histograms sum exactly as the old sequential accumulation
		// did; gauges report the busiest benchmark.
		r.WarmBaselines()
		var merged *obsv.Registry
		outs, merged = r.CampaignObserved(cfg)
		obs.Reg = merged
	} else {
		for i, b := range benches {
			outs[i] = r.RunObserved(b, cfg, obs)
		}
	}
	for i, b := range benches {
		out := outs[i]
		tbl.AddRow(b,
			stats.F(out.IPC),
			stats.F(out.IPC/r.Baseline(b)),
			fmt.Sprintf("%d", out.CPU.L2Misses),
			stats.Pct(out.CtrHitRate()),
			stats.Pct(out.TimelyPadRate()),
			fmt.Sprintf("%d", out.RSR.PageReencs),
			fmt.Sprintf("%d", out.Ctl.MacFetches),
			fmt.Sprintf("%d", out.Ctl.TamperDetected),
		)
	}
	fmt.Print(tbl.String())

	if obs.Reg != nil && *metricsOut != "" {
		if err := writeTo(*metricsOut, obs.Reg.WriteJSON); err != nil {
			fatalf("writing metrics: %v", err)
		}
		fmt.Printf("metrics written to %s\n", *metricsOut)
	}
	if obs.Smp != nil {
		if *tsOut != "" {
			if err := writeTo(*tsOut, obs.Smp.WriteJSON); err != nil {
				fatalf("writing timeseries: %v", err)
			}
			fmt.Printf("timeseries written to %s (%s)\n", *tsOut, obs.Smp)
		}
		if *tsCSV != "" {
			if err := writeTo(*tsCSV, obs.Smp.WriteCSV); err != nil {
				fatalf("writing timeseries CSV: %v", err)
			}
			fmt.Printf("timeseries CSV written to %s\n", *tsCSV)
		}
		if over := obs.Smp.Overwritten(); over > 0 {
			fmt.Fprintf(os.Stderr, "secmemsim: warning: time-series ring overwrote %d oldest samples (raise -samplecap or -sample)\n", over)
		}
	}
	if obs.Rec != nil {
		var rendered bytes.Buffer
		if err := obs.Rec.WriteJSON(&rendered); err != nil {
			fatalf("rendering trace: %v", err)
		}
		if *traceOut != "" {
			if err := os.WriteFile(*traceOut, rendered.Bytes(), 0o644); err != nil {
				fatalf("writing trace: %v", err)
			}
			if d := obs.Rec.Dropped(); d > 0 {
				fmt.Fprintf(os.Stderr, "secmemsim: warning: %d trace events dropped at the cap (raise -tracelimit)\n", d)
			}
			fmt.Printf("trace written to %s (%d events; load in chrome://tracing or ui.perfetto.dev)\n",
				*traceOut, obs.Rec.Len())
		}
		if server != nil {
			server.PublishTrace(rendered.Bytes())
		}
	}
	if server != nil {
		server.Publish(obs.Reg.Snapshot())
		if *serveFor > 0 {
			fmt.Printf("run complete; serving for another %s\n", *serveFor)
			time.Sleep(*serveFor)
		} else {
			fmt.Println("run complete; serving until interrupted (Ctrl-C)")
			select {}
		}
	}
}

// writeTo writes via fn into path, creating or truncating it.
func writeTo(path string, fn func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "secmemsim: "+format+"\n", args...)
	os.Exit(2)
}
