// Command secmemtrace records, inspects, and replays workload traces in the
// secmem trace format. Recording a trace freezes a workload exactly: the
// same file replays bit-identically across simulator versions and machines,
// and external traces converted into the format run through the same
// pipeline as the built-in SPEC 2000-like profiles.
//
//	secmemtrace -record -bench mcf -n 2000000 -o mcf.smtr
//	secmemtrace -stats -i mcf.smtr
//	secmemtrace -sim -i mcf.smtr -enc split -auth gcm
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"secmem/internal/config"
	"secmem/internal/core"
	"secmem/internal/cpu"
	"secmem/internal/trace"
)

func main() {
	var (
		record = flag.Bool("record", false, "record a synthetic workload to a trace file")
		stats  = flag.Bool("stats", false, "summarize a trace file")
		sim    = flag.Bool("sim", false, "simulate a trace file")
		bench  = flag.String("bench", "mcf", "profile to record")
		n      = flag.Uint64("n", 1_000_000, "memory events to record or scan")
		seed   = flag.Int64("seed", 1, "generator seed for -record")
		in     = flag.String("i", "", "input trace file")
		out    = flag.String("o", "", "output trace file for -record")
		enc    = flag.String("enc", "split", "encryption for -sim: none|direct|mono|split|global")
		auth   = flag.String("auth", "gcm", "authentication for -sim: none|sha|gcm")
		instr  = flag.Uint64("instr", 2_000_000, "instruction budget for -sim")
	)
	flag.Parse()
	switch {
	case *record:
		doRecord(*bench, *seed, *n, *out)
	case *stats:
		doStats(*in, *n)
	case *sim:
		doSim(*in, *enc, *auth, *instr)
	default:
		fmt.Fprintln(os.Stderr, "secmemtrace: pick one of -record, -stats, -sim")
		os.Exit(2)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "secmemtrace: "+format+"\n", args...)
	os.Exit(1)
}

func doRecord(bench string, seed int64, n uint64, out string) {
	if out == "" {
		fatalf("-record needs -o")
	}
	f, err := os.Create(out)
	if err != nil {
		fatalf("%v", err)
	}
	defer f.Close()
	gen := trace.NewGenerator(trace.Get(bench), seed)
	if err := trace.Record(f, gen, n); err != nil {
		fatalf("recording: %v", err)
	}
	info, _ := f.Stat()
	fmt.Printf("recorded %d events of %s (seed %d) to %s (%.1f MB, %.2f bytes/event)\n",
		n, bench, seed, out, float64(info.Size())/(1<<20), float64(info.Size())/float64(n))
}

func openTrace(in string) *trace.FileSource {
	if in == "" {
		fatalf("need -i <trace file>")
	}
	f, err := os.Open(in)
	if err != nil {
		fatalf("%v", err)
	}
	src, err := trace.NewFileSource(f)
	if err != nil {
		fatalf("%v", err)
	}
	return src
}

func doStats(in string, n uint64) {
	src := openTrace(in)
	sum := trace.Summarize(src, n)
	if err := src.Err(); err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("events:        %d\n", sum.Events)
	fmt.Printf("instructions:  %d\n", sum.Instructions)
	fmt.Printf("mem fraction:  %.3f\n", sum.MemFraction())
	fmt.Printf("stores:        %d (%.1f%% of events)\n", sum.Stores, 100*float64(sum.Stores)/float64(max(1, sum.Events)))
	fmt.Printf("dependent:     %d (%.1f%% of events)\n", sum.Dependent, 100*float64(sum.Dependent)/float64(max(1, sum.Events)))
	fmt.Printf("footprint:     %d blocks (%.1f MB)\n", sum.UniqueBlocks, float64(sum.UniqueBlocks)*64/(1<<20))
	fmt.Printf("address range: %#x .. %#x\n", sum.MinAddr, sum.MaxAddr)
}

func doSim(in, enc, auth string, instr uint64) {
	cfg := config.Default()
	switch strings.ToLower(enc) {
	case "none":
		cfg.Enc = config.EncNone
	case "direct":
		cfg.Enc = config.EncDirect
	case "mono":
		cfg.Enc = config.EncCounterMono
	case "split":
		cfg.Enc = config.EncCounterSplit
	case "global":
		cfg.Enc = config.EncCounterGlobal
	default:
		fatalf("unknown -enc %q", enc)
	}
	switch strings.ToLower(auth) {
	case "none":
		cfg.Auth = config.AuthNone
		cfg.AuthenticateCounters = false
	case "sha":
		cfg.Auth = config.AuthSHA1
	case "gcm":
		cfg.Auth = config.AuthGCM
	default:
		fatalf("unknown -auth %q", auth)
	}
	run := func(c config.SystemConfig, src *trace.FileSource) cpu.Result {
		mem, err := core.NewMemSystem(c)
		if err != nil {
			fatalf("%v", err)
		}
		res := cpu.New(c, mem).Run(src, instr)
		if err := src.Err(); err != nil {
			fatalf("replay: %v", err)
		}
		return res
	}
	base := run(config.Baseline(), openTrace(in))
	prot := run(cfg, openTrace(in))
	fmt.Printf("trace:          %s\n", in)
	fmt.Printf("scheme:         %s (%s requirement)\n", cfg.SchemeName(), cfg.Req)
	fmt.Printf("baseline IPC:   %.3f (%d instructions, %d L2 misses)\n",
		base.IPC(), base.Instructions, base.L2Misses)
	fmt.Printf("protected IPC:  %.3f\n", prot.IPC())
	fmt.Printf("normalized IPC: %.3f\n", prot.IPC()/base.IPC())
}

func max(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
