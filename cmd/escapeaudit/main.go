// Command escapeaudit cross-checks the hotpathalloc analyzer's lexical
// zero-allocation verdicts against the compiler's real escape analysis.
//
// The lint side (internal/lint.HotPathAudit) computes the call-graph closure
// of every "//secmemlint:hotpath" root. This tool compiles the module with
// -gcflags=-m, collects the "escapes to heap" / "moved to heap" diagnostics
// that land inside a closure member's line range, and writes the result as
// ESCAPE.json — a committed artifact, so any change to the hot paths' heap
// behaviour shows up as a reviewable diff (CI regenerates the file and
// fails on drift).
//
//	escapeaudit                 # regenerate ESCAPE.json, fail on unsanctioned escapes
//	escapeaudit -out other.json # write elsewhere
//	escapeaudit -check          # compare a fresh audit against ESCAPE.json, write nothing
//
// A diagnostic is sanctioned when its function carries a hotpathalloc
// suppression ("//secmemlint:ignore hotpathalloc <reason>" anywhere in the
// declaration, matching HotFunc.Suppressed), when the diagnostic's own line
// carries one, or when an identical diagnostic text is sanctioned elsewhere
// in the closure — the compiler attributes an inlined callee's escapes to
// the call site, so grow's sanctioned make reappears verbatim inside Seal
// and Open. Two classes are excluded up front: constant strings boxed for
// panic ("..." escapes to heap), which point into static data and never
// allocate at run time, and everything outside the hot closure.
//
// Exit status: 0 clean, 1 unsanctioned escapes or -check drift, 2 on
// tooling errors.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"secmem/internal/lint"
)

const schemaID = "secmem-escape-audit-v1"

// Artifact is the committed ESCAPE.json shape.
type Artifact struct {
	Schema string `json:"schema"`
	// Funcs lists every hot-closure member with the escape diagnostics
	// inside it, ordered by file and start line. Paths are module-relative.
	Funcs []FuncAudit `json:"funcs"`
}

type FuncAudit struct {
	Func       string   `json:"func"`
	File       string   `json:"file"`
	StartLine  int      `json:"start_line"`
	EndLine    int      `json:"end_line"`
	Roots      []string `json:"roots"`
	Root       bool     `json:"root,omitempty"`
	Suppressed bool     `json:"suppressed,omitempty"`
	Escapes    []Escape `json:"escapes,omitempty"`
}

type Escape struct {
	Line int    `json:"line"`
	Text string `json:"text"`
	// Sanctioned marks diagnostics covered by a hotpathalloc suppression
	// (directly, at function granularity, or as an inlined copy of a
	// sanctioned diagnostic).
	Sanctioned bool `json:"sanctioned,omitempty"`
}

func main() {
	out := flag.String("out", "ESCAPE.json", "artifact path to write")
	check := flag.Bool("check", false, "compare a fresh audit against -out instead of writing")
	flag.Parse()

	art, bad, err := audit()
	if err != nil {
		fmt.Fprintln(os.Stderr, "escapeaudit:", err)
		os.Exit(2)
	}
	data, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "escapeaudit:", err)
		os.Exit(2)
	}
	data = append(data, '\n')

	status := 0
	for _, msg := range bad {
		fmt.Fprintln(os.Stderr, "escapeaudit: unsanctioned escape:", msg)
		status = 1
	}
	if *check {
		committed, err := os.ReadFile(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "escapeaudit:", err)
			os.Exit(2)
		}
		if !bytes.Equal(committed, data) {
			fmt.Fprintf(os.Stderr, "escapeaudit: %s is stale; regenerate with `make escape-audit` and commit the diff\n", *out)
			os.Exit(1)
		}
		fmt.Printf("escapeaudit: %s up to date (%d hot functions)\n", *out, len(art.Funcs))
		os.Exit(status)
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "escapeaudit:", err)
		os.Exit(2)
	}
	fmt.Printf("escapeaudit: wrote %s (%d hot functions)\n", *out, len(art.Funcs))
	os.Exit(status)
}

// diagRe matches one compiler diagnostic line: path:line:col: message.
var diagRe = regexp.MustCompile(`^(.+\.go):(\d+):(\d+): (.*)$`)

// constStringRe matches a constant string boxed for panic/interface use;
// its data pointer targets rodata, so nothing allocates at run time.
var constStringRe = regexp.MustCompile(`^".*" escapes to heap$`)

type diag struct {
	file string // module-relative, slash-separated
	line int
	text string
}

func audit() (*Artifact, []string, error) {
	// The compiler prints paths relative to the working directory, and
	// HotPathAudit's are absolute: resolve both against the module root.
	modRoot, err := moduleRoot()
	if err != nil {
		return nil, nil, err
	}

	diags, err := compilerDiags(modRoot)
	if err != nil {
		return nil, nil, err
	}

	pkgs, err := lint.Load(modRoot, []string{"./..."})
	if err != nil {
		return nil, nil, err
	}
	hot := lint.HotPathAudit(pkgs)
	sort.Slice(hot, func(i, j int) bool {
		if hot[i].File != hot[j].File {
			return hot[i].File < hot[j].File
		}
		return hot[i].StartLine < hot[j].StartLine
	})

	// Site-level sanctions: hotpathalloc (or all-analyzer) suppression
	// comments by file:line.
	siteOK := make(map[string]map[int]bool)
	for _, s := range lint.Suppressions(pkgs) {
		for _, name := range s.Analyzers {
			if name != "hotpathalloc" && name != "all" {
				continue
			}
			rel := relPath(modRoot, s.File)
			if siteOK[rel] == nil {
				siteOK[rel] = make(map[int]bool)
			}
			siteOK[rel][s.Line] = true
		}
	}

	art := &Artifact{Schema: schemaID}
	for _, h := range hot {
		fa := FuncAudit{
			Func:       h.Func,
			File:       relPath(modRoot, h.File),
			StartLine:  h.StartLine,
			EndLine:    h.EndLine,
			Roots:      h.Roots,
			Root:       h.Root,
			Suppressed: h.Suppressed,
		}
		for _, d := range diags {
			if d.file != fa.File || d.line < fa.StartLine || d.line > fa.EndLine {
				continue
			}
			fa.Escapes = append(fa.Escapes, Escape{Line: d.line, Text: d.text,
				Sanctioned: fa.Suppressed || siteOK[d.file][d.line]})
		}
		art.Funcs = append(art.Funcs, fa)
	}
	// Second pass: inlined copies of sanctioned diagnostics carry the same
	// text at the inlining call site.
	sanctionedTexts := make(map[string]bool)
	for i := range art.Funcs {
		for _, e := range art.Funcs[i].Escapes {
			if e.Sanctioned {
				sanctionedTexts[e.Text] = true
			}
		}
	}
	var bad []string
	for i := range art.Funcs {
		fa := &art.Funcs[i]
		for j := range fa.Escapes {
			e := &fa.Escapes[j]
			if !e.Sanctioned && sanctionedTexts[e.Text] {
				e.Sanctioned = true
			}
			if !e.Sanctioned {
				bad = append(bad, fmt.Sprintf("%s:%d: %s (in %s)", fa.File, e.Line, e.Text, fa.Func))
			}
		}
	}
	return art, bad, nil
}

// compilerDiags runs go build -gcflags=-m over the module and keeps the
// heap-allocation verdicts ("escapes to heap", "moved to heap"); inlining
// chatter, "does not escape", and "leaking param" flow facts are dropped,
// as are constant-string boxes (static data).
func compilerDiags(modRoot string) ([]diag, error) {
	cmd := exec.Command("go", "build", "-gcflags=-m", "./...")
	cmd.Dir = modRoot
	out, err := cmd.CombinedOutput()
	if err != nil {
		return nil, fmt.Errorf("go build -gcflags=-m: %v\n%s", err, out)
	}
	var diags []diag
	for _, line := range strings.Split(string(out), "\n") {
		m := diagRe.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		text := m[4]
		if !strings.Contains(text, "escapes to heap") && !strings.Contains(text, "moved to heap") {
			continue
		}
		if constStringRe.MatchString(text) {
			continue
		}
		n, err := strconv.Atoi(m[2])
		if err != nil {
			continue
		}
		diags = append(diags, diag{file: filepath.ToSlash(m[1]), line: n, text: text})
	}
	return diags, nil
}

func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}

func relPath(modRoot, abs string) string {
	if rel, err := filepath.Rel(modRoot, abs); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return filepath.ToSlash(abs)
}
