// Command paperbench regenerates the tables and figures of the paper's
// evaluation section (Section 6) over the synthetic workload suite.
//
//	paperbench -all            # everything (default)
//	paperbench -fig 4          # one figure
//	paperbench -table 2        # Table 2
//	paperbench -scalars        # Section 6.1 scalar results
//	paperbench -quick          # reduced instruction count for a fast pass
//	paperbench -instr 20000000 # longer runs (closer to the paper's 1B)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"time"

	"secmem/internal/harness"
)

func main() {
	var (
		instr   = flag.Uint64("instr", 4_000_000, "instructions per run")
		quick   = flag.Bool("quick", false, "reduced campaign (1M instructions)")
		seed    = flag.Int64("seed", 1, "workload seed")
		fig     = flag.Int("fig", 0, "regenerate one figure (4,5,6,7,8,9,10)")
		table   = flag.Int("table", 0, "regenerate one table (2)")
		scalars = flag.Bool("scalars", false, "regenerate Section 6.1 scalars")
		ablate  = flag.Bool("ablate", false, "run the RSR/minor-width/page-size ablations")
		all     = flag.Bool("all", false, "regenerate everything")
		jsonOut = flag.String("json", "", "also write structured results as JSON to this file")
		svgDir  = flag.String("svg", "", "also render figures as SVG files into this directory")
		metrics = flag.String("metrics", "", "write per-benchmark metric deltas (Split+GCM vs baseline) as JSON to this file")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile of the campaign to this file (go tool pprof)")
		memProf = flag.String("memprofile", "", "write a heap profile taken after the campaign to this file")
	)
	flag.Parse()
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "paperbench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "paperbench: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintf(os.Stderr, "paperbench: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "paperbench: %v\n", err)
			}
		}()
	}
	if *quick {
		*instr = 1_000_000
	}
	if *fig == 0 && *table == 0 && !*scalars && !*ablate && *metrics == "" {
		*all = true
	}
	r := harness.New(harness.Options{Instructions: *instr, Seed: *seed})
	structured := map[string]any{}
	svgs := map[string]string{}
	if *svgDir != "" {
		if err := os.MkdirAll(*svgDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "paperbench: %v\n", err)
			os.Exit(1)
		}
	}

	type job struct {
		name string
		run  func()
	}
	keep := func(name string, tbl fmt.Stringer, data any) {
		fmt.Println(tbl)
		structured[name] = data
	}
	jobs := []job{
		{"fig4", func() {
			tbl, d := r.Fig4()
			keep("fig4", tbl, d)
			svgs["fig4"] = harness.BarSVG("Figure 4: Memory encryption schemes", d,
				[]string{"Split", "Mono8b", "Mono16b", "Mono32b", "Mono64b", "Direct"}, harness.Fig4Benches)
		}},
		{"table2", func() { tbl, d := r.Table2(); keep("table2_overflow_seconds", tbl, d) }},
		{"fig5", func() {
			tbl, d := r.Fig5()
			keep("fig5", tbl, d)
			svgs["fig5"] = harness.Fig5SVG(d)
		}},
		{"fig6a", func() { tbl, d := r.Fig6a(); keep("fig6a", tbl, d) }},
		{"fig6b", func() {
			tbl, d := r.Fig6b(5)
			keep("fig6b", tbl, d)
			svgs["fig6b"] = harness.Fig6bSVG(d)
		}},
		{"fig7", func() {
			tbl, d := r.Fig7()
			keep("fig7", tbl, d)
			svgs["fig7"] = harness.BarSVG("Figure 7: Memory authentication schemes", d,
				[]string{"GCM", "SHA-1 (80)", "SHA-1 (160)", "SHA-1 (320)", "SHA-1 (640)"}, harness.Fig7Benches)
		}},
		{"fig8", func() {
			tbl, d := r.Fig8()
			keep("fig8", tbl, d)
			svgs["fig8"] = harness.Fig8SVG(d)
		}},
		{"fig9", func() {
			tbl, d := r.Fig9()
			keep("fig9", tbl, d)
			svgs["fig9"] = harness.BarSVG("Figure 9: Combined encryption + authentication", d,
				harness.CombinedNames(), harness.Fig9Benches)
		}},
		{"fig10", func() {
			tbl, d := r.Fig10()
			keep("fig10", tbl, d)
			svgs["fig10"] = harness.Fig10SVG(d)
		}},
		{"scalars", func() { tbl, d := r.Scalars(); keep("scalars", tbl, d) }},
		{"ablate-rsrs", func() { tbl, d := r.AblateRSRs(); keep("ablate-rsrs", tbl, d) }},
		{"ablate-minors", func() { tbl, d := r.AblateMinorBits(); keep("ablate-minors", tbl, d) }},
		{"ablate-pages", func() { tbl, d := r.AblatePageSize(); keep("ablate-pages", tbl, d) }},
		{"ablate-maccache", func() { tbl, d := r.AblateMacCache(); keep("ablate-maccache", tbl, d) }},
		{"ablate-charge", func() { tbl, d := r.AblateMonoCharge(); keep("ablate-charge", tbl, d) }},
	}
	want := func(name string) bool {
		if *all {
			// -all regenerates the paper's content; ablations are
			// explicit extensions (-ablate).
			switch name {
			case "ablate-rsrs", "ablate-minors", "ablate-pages", "ablate-maccache", "ablate-charge":
				return false // explicit extensions (-ablate), not paper content
			}
			return true
		}
		switch name {
		case "fig4", "fig5", "fig7", "fig8", "fig9", "fig10":
			return *fig != 0 && fmt.Sprintf("fig%d", *fig) == name
		case "fig6a", "fig6b":
			return *fig == 6
		case "table2":
			return *table == 2
		case "scalars":
			return *scalars
		case "ablate-rsrs", "ablate-minors", "ablate-pages", "ablate-maccache", "ablate-charge":
			return *ablate
		}
		return false
	}
	ran := 0
	for _, j := range jobs {
		if !want(j.name) {
			continue
		}
		t0 := time.Now()
		j.run()
		fmt.Printf("[%s regenerated in %.1fs]\n\n", j.name, time.Since(t0).Seconds())
		ran++
	}
	if ran == 0 && *metrics == "" {
		fmt.Fprintln(os.Stderr, "paperbench: nothing selected (use -all, -fig N, -table 2, or -scalars)")
		os.Exit(2)
	}
	// A malformed figure row is a run failure, not a panic mid-campaign.
	if err := r.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "paperbench: %v\n", err)
		os.Exit(1)
	}
	if *metrics != "" {
		t0 := time.Now()
		deltas := r.MetricDeltas(harness.Combined("Split+GCM"))
		f, err := os.Create(*metrics)
		if err != nil {
			fmt.Fprintf(os.Stderr, "paperbench: %v\n", err)
			os.Exit(1)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(deltas); err != nil {
			fmt.Fprintf(os.Stderr, "paperbench: %v\n", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("per-benchmark metric deltas (Split+GCM vs baseline) written to %s in %.1fs\n",
			*metrics, time.Since(t0).Seconds())
	}
	if *svgDir != "" {
		names := make([]string, 0, len(svgs))
		for name := range svgs {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			path := fmt.Sprintf("%s/%s.svg", *svgDir, name)
			if err := os.WriteFile(path, []byte(svgs[name]), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "paperbench: %v\n", err)
				os.Exit(1)
			}
		}
		fmt.Printf("%d SVG figures written to %s\n", len(svgs), *svgDir)
	}
	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "paperbench: %v\n", err)
			os.Exit(1)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(structured); err != nil {
			fmt.Fprintf(os.Stderr, "paperbench: %v\n", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("structured results written to %s\n", *jsonOut)
	}
}
