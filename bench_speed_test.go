// bench_speed_test.go holds the raw-speed benchmark harness: kernel-level
// benchmarks for the crypto primitives (AES block, GHASH, pad generation,
// MAC) plus end-to-end campaign benchmarks, each fast path paired with the
// oracle it replaced so a run prints the speedup directly.
//
// `make bench-speed` runs these through cmd/benchspeed, which records the
// numbers (and computed fast/oracle ratios) in BENCH_speed.json;
// `make bench-compare` diffs two such files with a tolerance, which is how
// a perf regression shows up in review instead of in a campaign that got
// mysteriously slow.
package secmem_test

import (
	"math/rand"
	"runtime"
	"testing"

	"secmem/internal/aescipher"
	"secmem/internal/config"
	"secmem/internal/gcmmode"
	"secmem/internal/gf128"
	"secmem/internal/harness"
)

func speedKey() []byte {
	key := make([]byte, 16)
	rng := rand.New(rand.NewSource(7))
	rng.Read(key)
	return key
}

// BenchmarkAESBlock measures one 16-byte block encryption on the T-table
// fast path (what every pad generation pays).
func BenchmarkAESBlock(b *testing.B) {
	c := aescipher.MustNew(speedKey())
	var in, out [16]byte
	b.SetBytes(16)
	for i := 0; i < b.N; i++ {
		c.Encrypt(out[:], in[:])
		in = out
	}
}

// BenchmarkAESBlockOracle measures the byte-wise FIPS-197 reference rounds
// the fast path is pinned against. The ratio to BenchmarkAESBlock is the
// T-table speedup.
func BenchmarkAESBlockOracle(b *testing.B) {
	c := aescipher.MustNew(speedKey())
	var in, out [16]byte
	b.SetBytes(16)
	for i := 0; i < b.N; i++ {
		c.EncryptOracle(out[:], in[:])
		in = out
	}
}

// BenchmarkGHASHTable measures table-driven GHASH over 1 KiB of ciphertext
// (64 block multiplies through the production 8-bit Shoup table).
func BenchmarkGHASHTable(b *testing.B) {
	var h [16]byte
	rand.New(rand.NewSource(11)).Read(h[:])
	tbl := gf128.NewProductTable8(gf128.FromBytes(h[:]))
	buf := make([]byte, 1024)
	rand.New(rand.NewSource(13)).Read(buf)
	b.SetBytes(int64(len(buf)))
	for i := 0; i < b.N; i++ {
		gf128.GHASHTable8(&tbl, nil, buf)
	}
}

// BenchmarkGHASHTable4 measures the same hash through the retired 4-bit
// nibble table, kept as a differential oracle. The ratio to
// BenchmarkGHASHTable is the 8-bit upgrade's speedup.
func BenchmarkGHASHTable4(b *testing.B) {
	var h [16]byte
	rand.New(rand.NewSource(11)).Read(h[:])
	tbl := gf128.NewProductTable(gf128.FromBytes(h[:]))
	buf := make([]byte, 1024)
	rand.New(rand.NewSource(13)).Read(buf)
	b.SetBytes(int64(len(buf)))
	for i := 0; i < b.N; i++ {
		gf128.GHASHTable(&tbl, nil, buf)
	}
}

// BenchmarkGHASHSerial measures the same 1 KiB hash through the bit-serial
// oracle multiply (Element.Mul — gf128.GHASH itself now rides the table).
// The ratio to BenchmarkGHASHTable is the table speedup.
func BenchmarkGHASHSerial(b *testing.B) {
	var hb [16]byte
	rand.New(rand.NewSource(11)).Read(hb[:])
	h := gf128.FromBytes(hb[:])
	buf := make([]byte, 1024)
	rand.New(rand.NewSource(13)).Read(buf)
	b.SetBytes(int64(len(buf)))
	for i := 0; i < b.N; i++ {
		var y gf128.Element
		for off := 0; off < len(buf); off += 16 {
			y = y.Xor(gf128.FromBytes(buf[off : off+16])).Mul(h)
		}
	}
}

// BenchmarkEncryptBlock measures counter-mode encryption of one 64-byte
// memory block — four pad generations plus the XOR, the per-transfer cost
// of every protected fill and write-back.
func BenchmarkEncryptBlock(b *testing.B) {
	p := gcmmode.NewPadGen(aescipher.MustNew(speedKey()), 0, 1)
	src := make([]byte, gcmmode.MemBlockSize)
	dst := make([]byte, gcmmode.MemBlockSize)
	b.SetBytes(gcmmode.MemBlockSize)
	for i := 0; i < b.N; i++ {
		p.EncryptBlock(dst, src, uint64(i)<<6, 1)
	}
}

// BenchmarkMAC64 measures GCM MAC generation (GHASH over one 64-byte block
// plus one pad encryption) at the paper's default 64-bit MAC size.
func BenchmarkMAC64(b *testing.B) {
	p := gcmmode.NewPadGen(aescipher.MustNew(speedKey()), 0, 1)
	ct := make([]byte, gcmmode.MemBlockSize)
	rand.New(rand.NewSource(17)).Read(ct)
	b.SetBytes(gcmmode.MemBlockSize)
	for i := 0; i < b.N; i++ {
		p.MAC(ct, uint64(i)<<6, 1, 64)
	}
}

// BenchmarkCampaignFig4 measures the wall time of a full reduced Figure 4
// campaign (six encryption schemes × three workloads) with the functional
// crypto layer on, so every simulated transfer pays real pad generation
// and tree maintenance. This is the end-to-end number the kernel
// optimizations exist to improve; the figure campaigns themselves run
// timing-only and are crypto-free by construction.
func BenchmarkCampaignFig4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := harness.New(harness.Options{
			Instructions: 300_000,
			Seed:         1,
			Benches:      []string{"swim", "mcf", "crafty"},
			Functional:   true,
		})
		r.Fig4()
	}
}

// BenchmarkEndToEndSimSpeed reports simulated instructions per second for
// the paper's default protected configuration (Split+GCM with the
// integrity tree) — the headline "how fast does the simulator go" number.
func BenchmarkEndToEndSimSpeed(b *testing.B) {
	r := harness.New(harness.Options{Instructions: 1_000_000, Seed: 1})
	cfg := config.Default()
	b.ResetTimer()
	var instr uint64
	for i := 0; i < b.N; i++ {
		out := r.Run("swim", cfg)
		instr += out.CPU.Instructions
	}
	b.ReportMetric(float64(instr)/b.Elapsed().Seconds(), "sim_instr/s")
}

// BenchmarkCampaignFig4Parallel runs the same reduced Figure 4 campaign on
// the sharded sim core with one worker per available CPU. The ratio to
// BenchmarkCampaignFig4 is the end-to-end campaign speedup from sharding
// (bounded by the host's core count and the eight-slice partition).
func BenchmarkCampaignFig4Parallel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := harness.New(harness.Options{
			Instructions: 300_000,
			Seed:         1,
			Benches:      []string{"swim", "mcf", "crafty"},
			Functional:   true,
			Shards:       runtime.GOMAXPROCS(0),
		})
		r.Fig4()
	}
}

// BenchmarkEndToEndSimSpeedParallel is BenchmarkEndToEndSimSpeed on the
// sharded core: simulated instructions per second at Shards=GOMAXPROCS,
// plus the wall time of the deterministic merge fold per run (merge_ns/op)
// — the serial tail that caps the achievable speedup.
func BenchmarkEndToEndSimSpeedParallel(b *testing.B) {
	r := harness.New(harness.Options{
		Instructions: 1_000_000,
		Seed:         1,
		Shards:       runtime.GOMAXPROCS(0),
	})
	cfg := config.Default()
	b.ResetTimer()
	var instr uint64
	var mergeNs int64
	for i := 0; i < b.N; i++ {
		out := r.Run("swim", cfg)
		instr += out.CPU.Instructions
		mergeNs += r.MergeNanos()
	}
	b.ReportMetric(float64(instr)/b.Elapsed().Seconds(), "sim_instr/s")
	b.ReportMetric(float64(mergeNs)/float64(b.N), "merge_ns/op")
}
