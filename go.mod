module secmem

go 1.22
